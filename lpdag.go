// Package lpdag is a from-scratch Go implementation of the
// response-time analysis of sporadic DAG tasks under global
// fixed-priority scheduling with limited preemptions, reproducing
//
//	M. A. Serrano, A. Melani, M. Bertogna, E. Quiñones,
//	"Response-Time Analysis of DAG Tasks under Fixed Priority
//	Scheduling with Limited Preemptions", DATE 2016.
//
// The package is the stable public facade over the implementation
// packages: the DAG task model, the three analysis variants (the
// fully-preemptive FP-ideal baseline and the limited-preemptive LP-max
// and LP-ILP blocking bounds), the random task-set generator used by the
// paper's evaluation, a discrete-event scheduler simulator for
// validation, and the preemption-point placement explorer.
//
// # Quick start
//
//	var b lpdag.GraphBuilder
//	src := b.AddNode(2)          // nodes are non-preemptive regions (WCET)
//	a, c := b.AddNode(4), b.AddNode(3)
//	sink := b.AddNode(1)
//	b.AddEdge(src, a)            // edges are precedence constraints
//	b.AddEdge(src, c)
//	b.AddEdge(a, sink)
//	b.AddEdge(c, sink)
//	task := &lpdag.Task{Name: "dag", G: b.MustBuild(), Deadline: 20, Period: 20}
//
//	ts, err := lpdag.NewTaskSet(task)
//	...
//	an, err := lpdag.NewAnalyzer(lpdag.Options{Cores: 4, Method: lpdag.LPILP})
//	...
//	report, err := an.Analyze(ctx, ts)
//	fmt.Print(report)
//
// For interactive what-if and admission-control workloads, hold a
// Session instead of re-analyzing: edits (add/remove/reprioritize a
// task, change the core count) are absorbed statefully and each query
// re-analyzes only what the edits touched:
//
//	s, err := lpdag.NewSession(lpdag.Options{Cores: 4, Method: lpdag.LPILP}, tasks...)
//	...
//	verdict, err := s.TryAdmit(ctx, newTask, -1) // admission probe, no commit
//	_ = s.AddTask(newTask, -1)                   // commit it
//	report, err := s.Report(ctx)
//
// See examples/ for complete programs and DESIGN.md for the mapping from
// the paper's equations to the implementation.
package lpdag

import (
	"context"
	"io"
	"net/http"

	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/engine"
	"repro/internal/engine/cache"
	"repro/internal/experiments"
	"repro/internal/experiments/cluster"
	"repro/internal/fixture"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/ppp"
	"repro/internal/repair"
	"repro/internal/seqlp"
	"repro/internal/session"
	"repro/internal/sim"
)

// Task model types (see internal/model and internal/dag).
type (
	// Task is one sporadic DAG task τ = (G, D, T) with constrained
	// deadline D ≤ T.
	Task = model.Task
	// TaskSet is a priority-ordered set of tasks (index 0 = highest).
	TaskSet = model.TaskSet
	// Graph is an immutable DAG of non-preemptive regions.
	Graph = dag.Graph
	// GraphBuilder accumulates nodes and edges; its zero value is ready
	// to use.
	GraphBuilder = dag.Builder
)

// Analysis types (see internal/core).
type (
	// Analyzer runs the response-time analysis with fixed options.
	Analyzer = core.Analyzer
	// Options configure an Analyzer.
	Options = core.Options
	// Report is the analysis outcome for a task set.
	Report = core.Report
	// TaskReport is the per-task analysis outcome.
	TaskReport = core.TaskReport
	// Method selects the analysis variant.
	Method = core.Method
	// Backend selects the LP-ILP solver implementation.
	Backend = core.Backend
)

// Analysis variants.
const (
	// FPIdeal is the fully-preemptive baseline (Equation (1) of the
	// paper): no blocking, zero preemption cost.
	FPIdeal = core.FPIdeal
	// LPMax bounds lower-priority blocking by the m largest NPRs
	// regardless of precedence (Equation (5)): cheap, pessimistic.
	LPMax = core.LPMax
	// LPILP bounds blocking by the largest NPR sets that can actually
	// run in parallel (Equations (6)-(8)): tighter, costlier.
	LPILP = core.LPILP
)

// LP-ILP solver backends.
const (
	// Combinatorial solves µ and ρ with exact max-weight-clique and
	// assignment algorithms (default, fast).
	Combinatorial = core.Combinatorial
	// PaperILP solves the paper's literal 0-1 ILP encodings with a
	// built-in branch-and-bound solver.
	PaperILP = core.PaperILP
)

// Methods lists the analysis variants in presentation order.
func Methods() []Method { return core.Methods() }

// NewAnalyzer validates the options and returns an Analyzer.
func NewAnalyzer(opts Options) (*Analyzer, error) { return core.New(opts) }

// NewTaskSet validates the tasks and returns a set in the given priority
// order (highest first).
func NewTaskSet(tasks ...*Task) (*TaskSet, error) { return model.NewTaskSet(tasks...) }

// ReadTaskSet reads a task set from JSON (the format written by
// (*TaskSet).WriteJSON and cmd/lpdag-gen).
func ReadTaskSet(r io.Reader) (*TaskSet, error) { return model.ReadJSON(r) }

// Generator types (see internal/gen): the random task-set populations of
// the paper's evaluation (Section VI-A).
type (
	// Generator produces random DAG tasks and task sets.
	Generator = gen.Generator
	// GenParams configure a Generator.
	GenParams = gen.Params
	// DAGParams control the fork-join expansion of one task graph.
	DAGParams = gen.DAGParams
	// Group selects the task population.
	Group = gen.Group
)

// Task populations of the evaluation.
const (
	// GroupMixed mixes highly parallel and sequential tasks (embedded
	// domain, the paper's first group).
	GroupMixed = gen.GroupMixed
	// GroupParallel uses uniformly highly parallel tasks (HPC domain,
	// the paper's second group).
	GroupParallel = gen.GroupParallel
)

// Shape selects an extended DAG structure family (gen.Shape).
type Shape = gen.Shape

// DAG shape families of the extended scenario sweeps.
const (
	// ShapeAuto keeps the population-appropriate paper structure.
	ShapeAuto = gen.ShapeAuto
	// ShapeWide emits flat fork-joins of width ≥ NPar.
	ShapeWide = gen.ShapeWide
	// ShapeDeep emits long chains with occasional two-wide diamonds.
	ShapeDeep = gen.ShapeDeep
	// ShapeOpenMP emits the blocked-LU wavefront of examples/openmp:
	// diagonal steps fanning out to shrinking panel updates.
	ShapeOpenMP = gen.ShapeOpenMP
)

// PaperGenParams returns the Section VI-A generator configuration.
func PaperGenParams(group Group) GenParams { return gen.PaperParams(group) }

// NewGenerator returns a deterministic Generator.
func NewGenerator(seed int64, params GenParams) *Generator { return gen.New(seed, params) }

// Simulator types (see internal/sim): a discrete-event global-FP
// limited-preemptive scheduler used to validate the analysis.
type (
	// SimConfig parameterises one simulation run.
	SimConfig = sim.Config
	// SimResult aggregates a run.
	SimResult = sim.Result
	// JobStat describes one completed job.
	JobStat = sim.JobStat
	// Span is one contiguous node execution on a core.
	Span = sim.Span
)

// Simulate runs the limited-preemptive scheduler simulator.
func Simulate(ts *TaskSet, cfg SimConfig) (*SimResult, error) { return sim.Run(ts, cfg) }

// Placement types (see internal/ppp): preemption-point placement
// exploration.
type (
	// PlacementPoint is the outcome of one NPR-length budget.
	PlacementPoint = ppp.Point
)

// SplitNodes caps every NPR at maxNPR by splitting long nodes into
// chains (finer preemption points, less blocking on others).
func SplitNodes(g *Graph, maxNPR int64) *Graph { return ppp.SplitNodes(g, maxNPR) }

// CoarsenChains merges linear runs of nodes up to maxNPR (fewer
// preemption points, more blocking on others).
func CoarsenChains(g *Graph, maxNPR int64) *Graph { return ppp.CoarsenChains(g, maxNPR) }

// ExplorePlacement sweeps NPR-length budgets over the task set under a
// limited-preemptive analysis method.
func ExplorePlacement(ts *TaskSet, cores int, budgets []int64, method Method, be Backend) ([]PlacementPoint, error) {
	return ppp.Explore(ts, cores, budgets, method, be)
}

// Blocking terms (see internal/blocking), exposed for tooling that wants
// the Δ values without a full analysis.
type (
	// Interference bundles Δ^m and Δ^{m-1}.
	Interference = blocking.Interference
)

// BlockingLPMax computes Δ^m and Δ^{m-1} of a lower-priority set under
// Equation (5).
func BlockingLPMax(graphs []*Graph, cores int) Interference {
	return blocking.Compute(graphs, cores, blocking.LPMax, blocking.Combinatorial)
}

// BlockingLPILP computes Δ^m and Δ^{m-1} under Equations (6)-(8).
func BlockingLPILP(graphs []*Graph, cores int, be Backend) Interference {
	return blocking.Compute(graphs, cores, blocking.LPILP, be)
}

// PaperExample returns the running example of the paper (Figure 1) as a
// five-task set: a synthetic highest-priority task over the four tasks
// τ1-τ4 whose blocking tables the paper works out in Tables I-III.
func PaperExample() *TaskSet { return fixture.TaskSet() }

// PaperExampleGraphs returns just the four Figure 1 DAGs (τ1..τ4).
func PaperExampleGraphs() []*Graph { return fixture.LowerPriorityGraphs() }

// Analyze is a one-shot convenience: analyze ts on the given core count
// with the given method and the default solver backend. Callers needing
// cancellation, non-default options, or warm scratch reuse should hold
// an Analyzer and call its context-aware Analyze.
func Analyze(ts *TaskSet, cores int, method Method) (*Report, error) {
	a, err := NewAnalyzer(Options{Cores: cores, Method: method})
	if err != nil {
		return nil, err
	}
	return a.Analyze(context.Background(), ts)
}

// AnalyzeRefined is Analyze with the final-NPR refinement enabled (the
// paper's future-work item (ii)): for single-sink tasks, interference is
// accounted only until the start of the non-preemptable final region.
// The refined bound never exceeds the plain one.
//
// Deprecated: set Options.FinalNPRRefinement instead — every analysis
// path now returns the one Report shape (this function used to leak the
// internal rta result type). The alias will be removed one release
// after the session API.
func AnalyzeRefined(ts *TaskSet, cores int, method Method) (*Report, error) {
	a, err := NewAnalyzer(Options{Cores: cores, Method: method, FinalNPRRefinement: true})
	if err != nil {
		return nil, err
	}
	return a.Analyze(context.Background(), ts)
}

// Session types (see internal/session and internal/engine): the
// stateful what-if / admission-control API. A Session holds a task set
// and options, absorbs edits, and answers queries at a cost
// proportional to what each edit touched (suffix-aggregate checkpoints
// and per-task fixed points of the previous analysis are reused for
// everything else). Reports are bit-identical to a from-scratch
// Analyze of the same set.
type (
	// Session is a long-lived, incrementally re-analyzed task set.
	Session = session.Session
	// SessionEdit is one element of a transactional Session.Apply batch.
	SessionEdit = session.Edit
	// SessionRegistry owns the live sessions of an engine: bounded
	// count, TTL eviction, id lookup; the lpdag-serve /v1/sessions
	// endpoints are its HTTP face.
	SessionRegistry = engine.SessionRegistry
	// SessionRegistryConfig bounds a SessionRegistry.
	SessionRegistryConfig = engine.SessionRegistryConfig
	// SessionSnapshot is the canonical binary-serializable state of a
	// Session (id, options, ordered task set, edit epoch, last touch);
	// restoring one yields a Session whose Report is bit-identical.
	SessionSnapshot = session.Snapshot
	// SessionStore is the crash-safe on-disk session log behind
	// lpdag-serve -session-dir (fsync per committed edit batch,
	// torn-tail-tolerant recovery, rename-based compaction).
	SessionStore = engine.SessionStore
	// SessionFaultConfig injects storage and hand-off faults into a
	// SessionStore for crash-tolerance tests.
	SessionFaultConfig = engine.FaultConfig
)

// Repair types (see internal/repair): the anytime NPR-placement
// search that turns "unschedulable" into a sequence of split/coarsen/
// priority transforms that fix it. Session.Repair drives it through
// the incremental analyzer; lpdag-serve exposes it as
// POST /v1/sessions/{id}/repair and the REPL as `fix`.
type (
	// RepairConfig parameterises a repair search; the zero value is a
	// usable greedy search with derived split budgets.
	RepairConfig = repair.Config
	// RepairResult is a search outcome: the transform sequence, the
	// repaired task ordering and its report, and the anytime exit flag.
	RepairResult = repair.Result
	// RepairTransform is one placement step (split/coarsen/move).
	RepairTransform = repair.Transform
	// RepairStrategy selects greedy beam search or exhaustive
	// breadth-first enumeration.
	RepairStrategy = repair.Strategy
)

// Repair strategies.
const (
	// RepairGreedy is the blocking-guided beam search (the default).
	RepairGreedy = repair.Greedy
	// RepairExhaustive enumerates sequences breadth-first: minimal
	// transform count, exponential cost.
	RepairExhaustive = repair.Exhaustive
)

// RepairSearch looks for the cheapest transform sequence that makes
// tasks schedulable under eval — see repair.Search. Most callers want
// Session.Repair instead, which binds eval to the session's
// incremental analyzer.
func RepairSearch(ctx context.Context, tasks []*Task, cfg RepairConfig, eval repair.Eval) (*RepairResult, error) {
	return repair.Search(ctx, tasks, cfg, eval)
}

// RepairApply replays a transform sequence onto a priority ordering.
func RepairApply(tasks []*Task, trs []RepairTransform) ([]*Task, error) {
	return repair.Apply(tasks, trs)
}

// NewSession validates the options and initial tasks (highest priority
// first; empty is allowed) and returns a ready Session.
func NewSession(opts Options, tasks ...*Task) (*Session, error) {
	return session.New(opts, tasks...)
}

// NewSessionRegistry returns a session registry whose analyses share
// the engine's cache and worker pool.
func NewSessionRegistry(e *Engine, cfg SessionRegistryConfig) *SessionRegistry {
	return engine.NewSessionRegistry(e, cfg)
}

// OpenSessionStore opens (creating if needed) the durable session log
// in dir, recovering every intact snapshot and truncating a torn tail
// left by a crash mid-append.
func OpenSessionStore(dir string) (*SessionStore, error) {
	return engine.OpenSessionStore(dir)
}

// RestoreSession rebuilds a live Session from a snapshot; its Report is
// bit-identical to the session the snapshot was taken from.
func RestoreSession(snap *SessionSnapshot) (*Session, error) {
	return session.Restore(snap)
}

// Service types (see internal/engine): the long-running concurrent
// analysis engine and its HTTP front end (cmd/lpdag-serve).
type (
	// Engine is a bounded worker pool executing analyze/simulate/
	// generate jobs over a shared content-addressed result cache.
	Engine = engine.Engine
	// EngineConfig sizes an Engine (workers, queue, cache).
	EngineConfig = engine.Config
	// EngineStats snapshots the engine's job and cache counters.
	EngineStats = engine.Stats
	// AnalyzeSpec selects per-request analysis parameters.
	AnalyzeSpec = engine.AnalyzeSpec
	// SimulateSpec parameterises an engine simulation job.
	SimulateSpec = engine.SimulateSpec
	// GenerateSpec parameterises an engine generation job.
	GenerateSpec = engine.GenerateSpec
	// ServerConfig limits the HTTP front end (body size, in-flight
	// requests, batch size).
	ServerConfig = engine.ServerConfig
	// EngineServer is the engine's HTTP front end plus the node's
	// worker state: StartDraining flips /healthz to "draining" (and
	// stops the shard endpoint taking leases), and the shard handler
	// feeds its load gauges.
	EngineServer = engine.Server
	// Cache is the content-addressed memo store for the expensive
	// µ-table computations (clique searches, ILP solves); share one via
	// Options.Cache so structurally identical graphs — however they
	// arrive — solve each table once across analyzers. Cheap derived
	// quantities are recomputed, never cached: a hit must beat
	// recompute, or it isn't worth a lookup.
	Cache = cache.Cache
	// CacheStats snapshots a Cache's hit/miss/wait/eviction counters.
	CacheStats = cache.Stats
	// MetricsRegistry collects the process's metric series and writes
	// Prometheus text exposition. Pass one via EngineConfig.Obs to
	// instrument an engine (pool, cache, sessions, analysis traces);
	// its Handler serves GET /metrics. A nil registry disables all
	// instrumentation at zero cost.
	MetricsRegistry = obs.Registry
)

// NewEngine starts a concurrent analysis engine; Close it when done.
func NewEngine(cfg EngineConfig) *Engine { return engine.New(cfg) }

// NewEngineServer returns the engine's HTTP server (the lpdag-serve
// API: POST /v1/analyze, /v1/simulate, /v1/generate, GET /healthz,
// /stats). The returned server is an http.Handler and also the node's
// worker-state surface for cluster deployments.
func NewEngineServer(e *Engine, cfg ServerConfig) *EngineServer { return engine.NewServer(e, cfg) }

// NewCache returns a bounded content-addressed result cache
// (maxEntries ≤ 0 selects the default bound).
func NewCache(maxEntries int) *Cache { return cache.New(maxEntries) }

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// Experiment-orchestration types (see internal/experiments): the
// parallel sharded campaign sweeps and the differential soundness
// harness.
type (
	// CampaignConfig describes a sweep campaign: the cartesian grid
	// Scenarios × Ms × UFracs with SetsPerPoint task sets per point.
	CampaignConfig = experiments.CampaignConfig
	// CampaignScenario is one task-population family of a campaign.
	CampaignScenario = experiments.Scenario
	// CampaignPoint is one grid point.
	CampaignPoint = experiments.Point
	// CampaignPointResult is the per-point outcome (schedulable counts
	// per method).
	CampaignPointResult = experiments.PointResult
	// CampaignRunOptions control execution and streaming (engine,
	// JSONL/CSV writers, progress callback, resume data).
	CampaignRunOptions = experiments.RunOptions
	// CampaignProgress reports incremental completion with an ETA.
	CampaignProgress = experiments.Progress
	// SoundnessConfig parameterises the simulation-vs-analysis
	// differential soundness harness.
	SoundnessConfig = experiments.SoundnessConfig
	// SoundnessReport aggregates a soundness sweep.
	SoundnessReport = experiments.SoundnessReport
	// SoundnessViolation is one analytical-bound violation with its
	// minimized reproducer.
	SoundnessViolation = experiments.SoundnessViolation
)

// RunCampaign executes a sweep campaign over an engine worker pool,
// streaming per-point results in deterministic index order. Output is
// byte-identical for any worker and shard count (see DESIGN.md,
// "Campaign orchestrator").
func RunCampaign(cfg CampaignConfig, opts CampaignRunOptions) ([]CampaignPointResult, error) {
	return experiments.RunCampaign(cfg, opts)
}

// CampaignScenarios returns the named scenario registry (the paper's
// populations plus heavy/light utilization mixes, wide/deep DAG shapes,
// and NPR-granularity families).
func CampaignScenarios() []CampaignScenario { return experiments.StandardScenarios() }

// CampaignScenarioByName resolves a registry name.
func CampaignScenarioByName(name string) (CampaignScenario, error) {
	return experiments.ScenarioByName(name)
}

// ReadCampaignJSONL decodes a campaign's JSON-lines result stream (for
// resuming via CampaignRunOptions.Completed, or analysis).
func ReadCampaignJSONL(r io.Reader) ([]CampaignPointResult, error) {
	return experiments.ReadCampaignJSONL(r)
}

// RunSoundness sweeps generated (task set, cores) points and checks
// every analytical bound against the discrete-event simulator oracle.
func RunSoundness(cfg SoundnessConfig) (*SoundnessReport, error) {
	return experiments.RunSoundness(cfg)
}

// NewCampaignHandler serves POST /v1/campaign (streamed ndjson results)
// on the given engine; cmd/lpdag-serve mounts it beside the engine API.
func NewCampaignHandler(e *Engine) http.Handler { return experiments.CampaignHandler(e) }

// Cluster types (see internal/experiments/cluster): the coordinator
// that fans a campaign out across lpdag-serve worker nodes over shard
// leases, with failover that never changes a byte of output.
type (
	// ClusterConfig parameterises a cluster campaign run: the campaign,
	// the worker base URLs, and the lease/retry policy.
	ClusterConfig = cluster.Config
	// ClusterLease is one granted shard lease (for introspection).
	ClusterLease = cluster.Lease
	// ClusterWorkerConfig parameterises the worker-side shard handler.
	ClusterWorkerConfig = cluster.WorkerConfig
)

// RunClusterCampaign executes a campaign across remote lpdag-serve
// workers, merging streamed shard results in index order: the JSONL/CSV
// output is byte-identical to a local RunCampaign of the same config,
// regardless of worker count, shard count, retries, or mid-campaign
// worker failures.
func RunClusterCampaign(cfg ClusterConfig, opts CampaignRunOptions) ([]CampaignPointResult, error) {
	return cluster.Run(cfg, opts)
}

// NewShardWorkerHandler serves POST /v1/shard on the given engine: the
// worker half of the cluster protocol. Pass the node's *Server (from
// NewEngineServer) as cfg.Load so shard load and draining state reach
// /healthz and /stats.
func NewShardWorkerHandler(e *Engine, cfg ClusterWorkerConfig) http.Handler {
	return cluster.NewWorkerHandler(e, cfg)
}

// Sequential-task substrate (see internal/seqlp): the RTNS 2015 analysis
// of Thekkilakattil et al. the paper generalises to DAGs.
type (
	// SeqTask is a sequential task: an ordered chain of NPRs.
	SeqTask = seqlp.Task
	// SeqResult is the sequential analysis outcome.
	SeqResult = seqlp.Result
)

// AnalyzeSequential runs the sequential limited-preemptive analysis
// (priority order: index 0 highest).
func AnalyzeSequential(tasks []*SeqTask, cores int) (*SeqResult, error) {
	return seqlp.Analyze(tasks, cores)
}

// Command lpdag-sim simulates a task set under global fixed-priority
// scheduling with limited preemptions, optionally comparing the observed
// response times with the analytic bounds and drawing an ASCII Gantt
// chart.
//
// Usage:
//
//	lpdag-gen -u 2 | lpdag-sim -m 4 -duration 5000 -check
//	lpdag-sim -m 2 -f taskset.json -gantt -horizon 200
//
// Exit status: 0 when no deadline was missed, 1 on misses, 2 on errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lpdag-sim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		m        = fs.Int("m", 4, "number of identical cores")
		duration = fs.Int64("duration", 10000, "simulate releases in [0, duration)")
		jitter   = fs.Int64("jitter", 0, "max random sporadic delay added between releases")
		seed     = fs.Int64("seed", 1, "seed for the sporadic delays")
		gantt    = fs.Bool("gantt", false, "print an ASCII Gantt chart")
		horizon  = fs.Int64("horizon", 120, "Gantt horizon (time units)")
		scale    = fs.Int64("scale", 1, "Gantt time units per character")
		check    = fs.Bool("check", false, "compare max responses with LP-ILP analysis bounds")
		in       = fs.String("f", "", "input task-set JSON (default stdin)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	r := stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintf(stderr, "lpdag-sim: %v\n", err)
			return 2
		}
		defer f.Close()
		r = f
	}
	ts, err := model.ReadJSON(r)
	if err != nil {
		fmt.Fprintf(stderr, "lpdag-sim: %v\n", err)
		return 2
	}

	cfg := sim.Config{M: *m, Duration: *duration, RecordTrace: *gantt}
	if *jitter > 0 {
		rng := rand.New(rand.NewSource(*seed))
		cfg.ReleaseDelay = func(task, job int) int64 { return rng.Int63n(*jitter + 1) }
	}
	res, err := sim.Run(ts, cfg)
	if err != nil {
		fmt.Fprintf(stderr, "lpdag-sim: %v\n", err)
		return 2
	}

	fmt.Fprintf(stdout, "simulated %d jobs on m=%d over %d time units, %d deadline miss(es), busy %.1f%%\n",
		len(res.Jobs), *m, *duration, res.Misses, 100*res.Utilization(*m))
	fmt.Fprintf(stdout, "%-12s %12s %12s\n", "task", "max response", "deadline")
	for i, task := range ts.Tasks {
		fmt.Fprintf(stdout, "%-12s %12d %12d\n", task.Name, res.MaxResponse[i], task.Deadline)
	}

	if *check {
		a, err := core.New(core.Options{Cores: *m, Method: core.LPILP})
		if err != nil {
			fmt.Fprintf(stderr, "lpdag-sim: %v\n", err)
			return 2
		}
		rep, err := a.Analyze(context.Background(), ts)
		if err != nil {
			fmt.Fprintf(stderr, "lpdag-sim: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "\nLP-ILP analysis: schedulable=%v\n", rep.Schedulable)
		fmt.Fprintf(stdout, "%-12s %12s %12s %s\n", "task", "sim max R", "bound R(ub)", "status")
		for i := range ts.Tasks {
			tr := rep.Tasks[i]
			status := "ok"
			if !tr.Analyzed {
				status = "unanalyzed"
			} else if res.MaxResponse[i] > tr.ResponseTime {
				status = "VIOLATION" // would falsify the analysis
			}
			fmt.Fprintf(stdout, "%-12s %12d %12d %s\n",
				ts.Tasks[i].Name, res.MaxResponse[i], tr.ResponseTime, status)
		}
	}

	if *gantt {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, res.Gantt(ts, *horizon, *scale))
	}
	if res.Misses > 0 {
		return 1
	}
	return 0
}

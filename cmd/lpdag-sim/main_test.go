package main

import (
	"bytes"
	"strings"
	"testing"
)

const smallSet = `{"tasks":[
  {"name":"hi","wcet":[2],"edges":[],"deadline":40,"period":40},
  {"name":"lo","wcet":[3,4],"edges":[[0,1]],"deadline":50,"period":50}
]}`

const overloadSet = `{"tasks":[
  {"name":"a","wcet":[3],"edges":[],"deadline":4,"period":4},
  {"name":"b","wcet":[3],"edges":[],"deadline":4,"period":4}
]}`

func TestSimBasic(t *testing.T) {
	var out bytes.Buffer
	code := run([]string{"-m", "2", "-duration", "500"}, strings.NewReader(smallSet), &out, &bytes.Buffer{})
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out.String())
	}
	for _, want := range []string{"simulated", "max response", "hi", "lo"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing %q:\n%s", want, out.String())
		}
	}
}

func TestSimMissesExitCode(t *testing.T) {
	var out bytes.Buffer
	code := run([]string{"-m", "1", "-duration", "100"}, strings.NewReader(overloadSet), &out, &bytes.Buffer{})
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (misses)", code)
	}
}

func TestSimCheckAndGantt(t *testing.T) {
	var out bytes.Buffer
	code := run([]string{"-m", "2", "-duration", "300", "-check", "-gantt", "-horizon", "60"},
		strings.NewReader(smallSet), &out, &bytes.Buffer{})
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"LP-ILP analysis", "bound R(ub)", "core0", "core1"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing %q:\n%s", want, out.String())
		}
	}
	if strings.Contains(out.String(), "VIOLATION") {
		t.Errorf("simulation exceeded the analysis bound:\n%s", out.String())
	}
}

func TestSimJitterDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	run([]string{"-m", "1", "-duration", "200", "-jitter", "5", "-seed", "3"},
		strings.NewReader(smallSet), &a, &bytes.Buffer{})
	run([]string{"-m", "1", "-duration", "200", "-jitter", "5", "-seed", "3"},
		strings.NewReader(smallSet), &b, &bytes.Buffer{})
	if a.String() != b.String() {
		t.Error("same seed produced different simulations")
	}
}

func TestSimBadInputs(t *testing.T) {
	cases := []struct {
		args  []string
		stdin string
	}{
		{[]string{"-badflag"}, smallSet},
		{[]string{}, "garbage"},
		{[]string{"-f", "/nonexistent-xyz.json"}, ""},
		{[]string{"-m", "0"}, smallSet},
	}
	for _, tc := range cases {
		code := run(tc.args, strings.NewReader(tc.stdin), &bytes.Buffer{}, &bytes.Buffer{})
		if code != 2 {
			t.Errorf("args %v: exit %d, want 2", tc.args, code)
		}
	}
}

package main

import (
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkAnalyzePoint-8         	    1000	       950.0 ns/op	      16 B/op	       1 allocs/op
BenchmarkAnalyzePoint-8         	    1000	       710.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkCampaignThroughput     	      50	  47042648 ns/op	15534114 B/op	  372141 allocs/op
BenchmarkNoMem-8                	     100	      1234 ns/op
PASS
ok  	repro	1.234s
`

func TestParseBenchOutput(t *testing.T) {
	got, err := ParseBenchOutput(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	// Best-of-count: the faster AnalyzePoint repetition wins, with its
	// own memory columns.
	ap := got["AnalyzePoint"]
	if ap.NsPerOp != 710.5 || ap.AllocsPerOp != 0 || ap.BytesPerOp != 0 {
		t.Errorf("AnalyzePoint = %+v, want best-of-count {710.5 0 0}", ap)
	}
	if got["CampaignThroughput"].AllocsPerOp != 372141 {
		t.Errorf("CampaignThroughput = %+v", got["CampaignThroughput"])
	}
	if got["NoMem"].NsPerOp != 1234 {
		t.Errorf("NoMem = %+v", got["NoMem"])
	}
}

func TestCompare(t *testing.T) {
	base := Entry{Benchmarks: map[string]Measurement{
		"A": {NsPerOp: 100, AllocsPerOp: 0},
		"B": {NsPerOp: 1000, AllocsPerOp: 5},
		"C": {NsPerOp: 50, AllocsPerOp: 200},
		"E": {NsPerOp: 50, AllocsPerOp: 200},
	}}
	cur := Entry{Benchmarks: map[string]Measurement{
		"A": {NsPerOp: 115, AllocsPerOp: 1},  // +15% ns, +1 alloc — inside both gates
		"B": {NsPerOp: 1300, AllocsPerOp: 5}, // +30% — ns regression
		"C": {NsPerOp: 40, AllocsPerOp: 204}, // faster but allocs grew past 1%+1
		"D": {NsPerOp: 1, AllocsPerOp: 0},    // new benchmark — ignored
		"E": {NsPerOp: 50, AllocsPerOp: 203}, // +3 allocs = 1%+1 of 200 — tolerated
	}}
	regs := Compare(base, cur, 20)
	if len(regs) != 2 {
		t.Fatalf("got %d regressions, want 2: %v", len(regs), regs)
	}
	joined := strings.Join(regs, "\n")
	if !strings.Contains(joined, "B: ns/op") || !strings.Contains(joined, "C: allocs/op") {
		t.Errorf("unexpected regression set: %v", regs)
	}
}

func TestTrajectoryRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	traj := Trajectory{Entries: []Entry{{
		Label: "seed", Date: "2026-07-28", GoVersion: "go1.24.0", Count: 3,
		Benchmarks: map[string]Measurement{"A": {NsPerOp: 1.5, AllocsPerOp: 2, BytesPerOp: 3}},
	}}}
	if err := WriteTrajectory(path, traj); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != 1 || got.Entries[0].Benchmarks["A"] != traj.Entries[0].Benchmarks["A"] {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

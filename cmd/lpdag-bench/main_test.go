package main

import (
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkAnalyzePoint-8         	    1000	       950.0 ns/op	      16 B/op	       1 allocs/op
BenchmarkAnalyzePoint-8         	    1000	       710.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkCampaignThroughput     	      50	  47042648 ns/op	15534114 B/op	  372141 allocs/op
BenchmarkNoMem-8                	     100	      1234 ns/op
PASS
ok  	repro	1.234s
`

func TestParseBenchOutput(t *testing.T) {
	got, err := ParseBenchOutput(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	// Best-of-count: the faster AnalyzePoint repetition wins, with its
	// own memory columns.
	ap := got["AnalyzePoint"]
	if ap.NsPerOp != 710.5 || ap.AllocsPerOp != 0 || ap.BytesPerOp != 0 {
		t.Errorf("AnalyzePoint = %+v, want best-of-count {710.5 0 0}", ap)
	}
	if got["CampaignThroughput"].AllocsPerOp != 372141 {
		t.Errorf("CampaignThroughput = %+v", got["CampaignThroughput"])
	}
	if got["NoMem"].NsPerOp != 1234 {
		t.Errorf("NoMem = %+v", got["NoMem"])
	}
}

func TestCompare(t *testing.T) {
	base := Entry{Benchmarks: map[string]Measurement{
		"A": {NsPerOp: 100, AllocsPerOp: 0},
		"B": {NsPerOp: 1000, AllocsPerOp: 5},
		"C": {NsPerOp: 50, AllocsPerOp: 200},
		"E": {NsPerOp: 50, AllocsPerOp: 200},
	}}
	cur := Entry{Benchmarks: map[string]Measurement{
		"A": {NsPerOp: 115, AllocsPerOp: 1},  // +15% ns, +1 alloc — inside both gates
		"B": {NsPerOp: 1300, AllocsPerOp: 5}, // +30% — ns regression
		"C": {NsPerOp: 40, AllocsPerOp: 204}, // faster but allocs grew past 1%+1
		"D": {NsPerOp: 1, AllocsPerOp: 0},    // new benchmark — ignored
		"E": {NsPerOp: 50, AllocsPerOp: 203}, // +3 allocs = 1%+1 of 200 — tolerated
	}}
	regs := Compare(base, cur, 20)
	if len(regs) != 2 {
		t.Fatalf("got %d regressions, want 2: %v", len(regs), regs)
	}
	joined := strings.Join(regs, "\n")
	if !strings.Contains(joined, "B: ns/op") || !strings.Contains(joined, "C: allocs/op") {
		t.Errorf("unexpected regression set: %v", regs)
	}
}

func TestCheckInversion(t *testing.T) {
	mk := func(cachedNs float64, cachedAllocs int64, uncachedNs float64, uncachedAllocs int64) Entry {
		return Entry{Benchmarks: map[string]Measurement{
			"EngineCachedSweep":   {NsPerOp: cachedNs, AllocsPerOp: cachedAllocs},
			"EngineUncachedSweep": {NsPerOp: uncachedNs, AllocsPerOp: uncachedAllocs},
		}}
	}
	if got := CheckInversion(mk(25000, 96, 26000, 96)); len(got) != 0 {
		t.Errorf("cached faster, equal allocs: want pass, got %v", got)
	}
	// ns/op within the noise slack is tolerated; allocs are exact.
	if got := CheckInversion(mk(26500, 96, 26000, 96)); len(got) != 0 {
		t.Errorf("cached +2%% ns/op: want pass (inside slack), got %v", got)
	}
	if got := CheckInversion(mk(47000, 96, 23000, 96)); len(got) != 1 || !strings.Contains(got[0], "ns/op") {
		t.Errorf("2x ns/op inversion: want 1 ns/op violation, got %v", got)
	}
	if got := CheckInversion(mk(23000, 258, 23000, 96)); len(got) != 1 || !strings.Contains(got[0], "allocs/op") {
		t.Errorf("alloc inversion: want 1 allocs/op violation, got %v", got)
	}
	if got := CheckInversion(mk(47000, 258, 23000, 96)); len(got) != 2 {
		t.Errorf("full inversion: want both violations, got %v", got)
	}
	// A partial -bench run (either sweep absent) can't judge the gate.
	partial := Entry{Benchmarks: map[string]Measurement{
		"EngineCachedSweep": {NsPerOp: 1e9, AllocsPerOp: 1e6},
	}}
	if got := CheckInversion(partial); len(got) != 0 {
		t.Errorf("partial entry: want no judgement, got %v", got)
	}
}

func TestTrajectoryRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	traj := Trajectory{Entries: []Entry{{
		Label: "seed", Date: "2026-07-28", GoVersion: "go1.24.0", Count: 3,
		Benchmarks: map[string]Measurement{"A": {NsPerOp: 1.5, AllocsPerOp: 2, BytesPerOp: 3}},
	}}}
	if err := WriteTrajectory(path, traj); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != 1 || got.Entries[0].Benchmarks["A"] != traj.Entries[0].Benchmarks["A"] {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestCheckServingBudget(t *testing.T) {
	entry := func(allocs int64) Entry {
		return Entry{Benchmarks: map[string]Measurement{
			"CampaignThroughput": {NsPerOp: 1e7, AllocsPerOp: allocs},
		}}
	}
	if v := CheckServingBudget(entry(90000), 90000); len(v) != 0 {
		t.Errorf("at-budget entry flagged: %v", v)
	}
	if v := CheckServingBudget(entry(90001), 90000); len(v) != 1 {
		t.Errorf("over-budget entry not flagged: %v", v)
	}
	// 0 disables the gate entirely.
	if v := CheckServingBudget(entry(1<<40), 0); len(v) != 0 {
		t.Errorf("disabled gate still flagged: %v", v)
	}
	// A partial -bench run without the benchmark can't judge.
	if v := CheckServingBudget(Entry{Benchmarks: map[string]Measurement{}}, 90000); len(v) != 0 {
		t.Errorf("absent benchmark flagged: %v", v)
	}
}

func TestCheckDurabilityBudget(t *testing.T) {
	entry := func(ns float64) Entry {
		return Entry{Benchmarks: map[string]Measurement{
			"SessionEditDurable": {NsPerOp: ns, AllocsPerOp: 100},
		}}
	}
	if v := CheckDurabilityBudget(entry(25e6), 25e6); len(v) != 0 {
		t.Errorf("at-budget entry flagged: %v", v)
	}
	if v := CheckDurabilityBudget(entry(25e6+1), 25e6); len(v) != 1 {
		t.Errorf("over-budget entry not flagged: %v", v)
	}
	// 0 disables the gate entirely.
	if v := CheckDurabilityBudget(entry(1e12), 0); len(v) != 0 {
		t.Errorf("disabled gate still flagged: %v", v)
	}
	// A partial -bench run without the benchmark can't judge.
	if v := CheckDurabilityBudget(Entry{Benchmarks: map[string]Measurement{}}, 25e6); len(v) != 0 {
		t.Errorf("absent benchmark flagged: %v", v)
	}
}

func TestCheckRepairBudget(t *testing.T) {
	entry := func(ns float64) Entry {
		return Entry{Benchmarks: map[string]Measurement{
			"SessionRepair": {NsPerOp: ns, AllocsPerOp: 100},
		}}
	}
	if v := CheckRepairBudget(entry(10e6), 10e6); len(v) != 0 {
		t.Errorf("at-budget entry flagged: %v", v)
	}
	if v := CheckRepairBudget(entry(10e6+1), 10e6); len(v) != 1 {
		t.Errorf("over-budget entry not flagged: %v", v)
	}
	// 0 disables the gate entirely.
	if v := CheckRepairBudget(entry(1e12), 0); len(v) != 0 {
		t.Errorf("disabled gate still flagged: %v", v)
	}
	// A partial -bench run without the benchmark can't judge.
	if v := CheckRepairBudget(Entry{Benchmarks: map[string]Measurement{}}, 10e6); len(v) != 0 {
		t.Errorf("absent benchmark flagged: %v", v)
	}
}

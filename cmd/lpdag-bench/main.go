// Command lpdag-bench runs the tracked performance benchmarks and
// maintains BENCH_analyze.json: the repo's measured perf trajectory.
//
// Usage:
//
//	lpdag-bench [-bench regex] [-count n] [-benchtime t] [-pkg pattern]
//	            [-label s] [-out file] [-baseline file] [-max-regress pct]
//
// It shells out to `go test -run=^$ -bench ... -benchmem -count n`,
// parses the standard benchmark output, and condenses each benchmark to
// its best (minimum) ns/op across the count repetitions with the
// matching B/op and allocs/op — the benchstat-style "min damps noise"
// reading, which suits the CI boxes these runs share.
//
// With -baseline it compares the fresh numbers against the LAST entry
// of the baseline trajectory and exits 1 when, for any benchmark
// present in both:
//
//   - allocs/op grew by more than 1% + 1 (allocation counts are mostly
//     deterministic, but one-time warm-up allocations — scratch growth,
//     cache fills — amortize differently at different -benchtime, so an
//     exact gate would flake; steady-state zero-alloc is asserted
//     exactly by TestAnalyzerSteadyStateZeroAlloc instead), or
//   - ns/op regressed by more than -max-regress percent.
//
// Independently of any baseline, every run checks three standing gates:
//
//   - cache inversion: if both engine-sweep benchmarks are present,
//     EngineCachedSweep exceeding EngineUncachedSweep (ns/op beyond a
//     small noise slack, or allocs/op at all) exits 1 — the cache
//     paying for itself is an invariant, not a point-in-time
//     comparison;
//   - serving allocation budget: CampaignThroughput allocs/op above
//     -max-campaign-allocs exits 1 — the pooled stream encoders keep a
//     campaign's allocation cost O(1) per batch, and the absolute
//     budget catches compounding creep a relative gate would wave
//     through;
//   - durable edit budget: SessionEditDurable ns/op above
//     -max-durable-edit-ns exits 1 — the durable commit path is one
//     snapshot encode + one append + one fsync, and an absolute ceiling
//     (rather than a disk-vs-disk relative gate) catches anything
//     structural joining that path.
//
// With -out it appends the fresh entry to the trajectory file (creating
// it when missing) so each PR can land its measured point.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Measurement is one benchmark's condensed result.
type Measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Entry is one point of the perf trajectory.
type Entry struct {
	Label      string                 `json:"label"`
	Date       string                 `json:"date"`
	GoVersion  string                 `json:"go"`
	Count      int                    `json:"count"`
	Benchmarks map[string]Measurement `json:"benchmarks"`
}

// Trajectory is the BENCH_analyze.json document: oldest entry first.
type Trajectory struct {
	Entries []Entry `json:"entries"`
}

// DefaultBench is the tracked benchmark set.
const DefaultBench = "^(BenchmarkAnalyzePoint|BenchmarkCampaignThroughput|BenchmarkEngineUncachedSweep|BenchmarkEngineCachedSweep|BenchmarkSessionEdit|BenchmarkSessionEditDurable|BenchmarkSessionEditFullReanalysis|BenchmarkSessionAdmitProbe|BenchmarkSessionRepair|BenchmarkServeAnalyze|BenchmarkServeAnalyzeBinary)$"

// DefaultMaxCampaignAllocs is the standing allocation budget of the
// serving data plane: BenchmarkCampaignThroughput (one full campaign —
// generation, three methods, streaming — per op) may not exceed this
// many allocs/op. The pooled solver and wire codecs brought the number
// from ~362k to ~60k; the budget holds a 1.5× headroom over that so
// noise passes but any per-result allocation creeping back into the
// stream path (which multiplies by the point count) fails loudly.
const DefaultMaxCampaignAllocs = 90000

// DefaultMaxDurableEditNs is the standing latency budget of the durable
// session plane: BenchmarkSessionEditDurable (one edit + report +
// snapshot append + fsync per op) may not exceed this many ns/op. The
// op is fsync-bound, so a relative baseline gate would only measure the
// CI box's disk against last PR's CI box; the absolute budget — 25ms,
// an order of magnitude over a worst-case rotational fsync — instead
// catches structural mistakes: a second fsync sneaking onto the commit
// path, compaction running under the append lock, or snapshot encoding
// going quadratic.
const DefaultMaxDurableEditNs = 25_000_000

// DefaultMaxRepairSearchNs is the standing latency budget of the
// repair engine's greedy path: BenchmarkSessionRepair (one full greedy
// search over the 17-task blocked session, query mode) may not exceed
// this many ns/op. Repair backs an interactive verb (the REPL `fix`
// command and POST /repair), so it gets an absolute ceiling rather
// than a relative baseline: the search currently lands well under
// 0.1ms, and the 10ms budget catches structural blow-ups — candidate
// generation going quadratic, the incremental analyzer losing its
// checkpoint reuse under repair's task rewrites — that machine
// variation cannot explain.
const DefaultMaxRepairSearchNs = 10_000_000

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lpdag-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		bench             = fs.String("bench", DefaultBench, "benchmark regex passed to go test -bench")
		count             = fs.Int("count", 3, "repetitions per benchmark (best of n is recorded)")
		benchtime         = fs.String("benchtime", "", "go test -benchtime (empty = go default)")
		pkg               = fs.String("pkg", ".", "package pattern to benchmark")
		label             = fs.String("label", "", "entry label (default: bench-<date>)")
		out               = fs.String("out", "", "trajectory file to append the entry to")
		baseline          = fs.String("baseline", "", "trajectory file to regress against (its last entry)")
		maxRegress        = fs.Float64("max-regress", 20, "max tolerated ns/op regression in percent")
		maxCampaignAllocs = fs.Int64("max-campaign-allocs", DefaultMaxCampaignAllocs,
			"standing allocs/op budget for CampaignThroughput (0 disables)")
		maxDurableEditNs = fs.Float64("max-durable-edit-ns", DefaultMaxDurableEditNs,
			"standing ns/op budget for SessionEditDurable (0 disables)")
		maxRepairSearchNs = fs.Float64("max-repair-search-ns", DefaultMaxRepairSearchNs,
			"standing ns/op budget for SessionRepair's greedy search (0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cmdArgs := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem",
		"-count", strconv.Itoa(*count)}
	if *benchtime != "" {
		cmdArgs = append(cmdArgs, "-benchtime", *benchtime)
	}
	cmdArgs = append(cmdArgs, *pkg)
	cmd := exec.Command("go", cmdArgs...)
	cmd.Stderr = stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(stderr, "lpdag-bench: go %s: %v\n%s", strings.Join(cmdArgs, " "), err, raw)
		return 1
	}
	fmt.Fprintf(stdout, "%s", raw)

	benches, err := ParseBenchOutput(strings.NewReader(string(raw)))
	if err != nil {
		fmt.Fprintf(stderr, "lpdag-bench: %v\n", err)
		return 1
	}
	if len(benches) == 0 {
		fmt.Fprintf(stderr, "lpdag-bench: no benchmarks matched %q\n", *bench)
		return 1
	}
	entry := Entry{
		Label:      *label,
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		Count:      *count,
		Benchmarks: benches,
	}
	if entry.Label == "" {
		entry.Label = "bench-" + entry.Date
	}

	status := 0
	for _, inv := range CheckInversion(entry) {
		fmt.Fprintf(stderr, "lpdag-bench: INVERSION: %s\n", inv)
		status = 1
	}
	for _, over := range CheckServingBudget(entry, *maxCampaignAllocs) {
		fmt.Fprintf(stderr, "lpdag-bench: BUDGET: %s\n", over)
		status = 1
	}
	for _, over := range CheckDurabilityBudget(entry, *maxDurableEditNs) {
		fmt.Fprintf(stderr, "lpdag-bench: BUDGET: %s\n", over)
		status = 1
	}
	for _, over := range CheckRepairBudget(entry, *maxRepairSearchNs) {
		fmt.Fprintf(stderr, "lpdag-bench: BUDGET: %s\n", over)
		status = 1
	}
	if *baseline != "" {
		base, err := ReadTrajectory(*baseline)
		if err != nil {
			fmt.Fprintf(stderr, "lpdag-bench: baseline: %v\n", err)
			return 1
		}
		if len(base.Entries) == 0 {
			fmt.Fprintf(stderr, "lpdag-bench: baseline %s has no entries\n", *baseline)
			return 1
		}
		last := base.Entries[len(base.Entries)-1]
		regressions := Compare(last, entry, *maxRegress)
		for _, r := range regressions {
			fmt.Fprintf(stderr, "lpdag-bench: REGRESSION: %s\n", r)
		}
		if len(regressions) > 0 {
			status = 1
		} else {
			fmt.Fprintf(stderr, "lpdag-bench: no regressions vs %q (gate: allocs +1%%+1, ns/op +%.0f%%)\n",
				last.Label, *maxRegress)
		}
	}

	if *out != "" {
		traj, err := ReadTrajectory(*out)
		if err != nil && !os.IsNotExist(err) {
			fmt.Fprintf(stderr, "lpdag-bench: out: %v\n", err)
			return 1
		}
		traj.Entries = append(traj.Entries, entry)
		if err := WriteTrajectory(*out, traj); err != nil {
			fmt.Fprintf(stderr, "lpdag-bench: out: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "lpdag-bench: appended entry %q to %s (%d entries)\n",
			entry.Label, *out, len(traj.Entries))
	}
	return status
}

// benchLineRE matches `go test -bench -benchmem` result lines, e.g.
// "BenchmarkAnalyzePoint-8  1000  710 ns/op  0 B/op  0 allocs/op".
var benchLineRE = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op)?(?:\s+([0-9.]+) allocs/op)?`)

// ParseBenchOutput condenses benchmark output to the best (minimum)
// ns/op per benchmark name across repetitions, keeping the memory
// columns of the selected repetition.
func ParseBenchOutput(r io.Reader) (map[string]Measurement, error) {
	out := make(map[string]Measurement)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLineRE.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("parse %q: %w", sc.Text(), err)
		}
		meas := Measurement{NsPerOp: ns}
		if m[3] != "" {
			b, _ := strconv.ParseFloat(m[3], 64)
			meas.BytesPerOp = int64(b)
		}
		if m[4] != "" {
			a, _ := strconv.ParseFloat(m[4], 64)
			meas.AllocsPerOp = int64(a)
		}
		if prev, ok := out[name]; !ok || meas.NsPerOp < prev.NsPerOp {
			out[name] = meas
		}
	}
	return out, sc.Err()
}

// inversionNsSlack is the multiplicative tolerance of the cache
// inversion gate's ns/op leg. Cached and uncached sweeps share the
// same steady-state code path (the analyzer-local memo), so their
// times differ only by run-to-run noise; 5% covers that noise while
// still catching anything like the 2× inversion the gate exists for.
// The allocs/op leg is exact — allocation counts are deterministic.
const inversionNsSlack = 1.05

// CheckInversion enforces the cache's reason to exist: on the
// recurring-workload sweep, running WITH the cache must not be slower
// or more allocation-heavy than running without it. Returns violation
// descriptions for the entry, empty when the gate passes or either
// benchmark is absent (a partial -bench run can't judge).
func CheckInversion(e Entry) []string {
	cached, okC := e.Benchmarks["EngineCachedSweep"]
	uncached, okU := e.Benchmarks["EngineUncachedSweep"]
	if !okC || !okU {
		return nil
	}
	var out []string
	if cached.NsPerOp > uncached.NsPerOp*inversionNsSlack {
		out = append(out, fmt.Sprintf(
			"EngineCachedSweep %.4g ns/op exceeds EngineUncachedSweep %.4g ns/op (+%.0f%% slack): the cache costs more than it saves",
			cached.NsPerOp, uncached.NsPerOp, 100*(inversionNsSlack-1)))
	}
	if cached.AllocsPerOp > uncached.AllocsPerOp {
		out = append(out, fmt.Sprintf(
			"EngineCachedSweep %d allocs/op exceeds EngineUncachedSweep %d: the cache allocates on the hot path",
			cached.AllocsPerOp, uncached.AllocsPerOp))
	}
	return out
}

// CheckServingBudget enforces the serving data plane's standing
// allocation budget: CampaignThroughput allocs/op at or under
// maxCampaignAllocs. Unlike Compare this is absolute, not relative to a
// baseline — small per-PR creep can pass a 1%+1 gate every time yet
// compound; the budget is the line that cannot be crossed by
// accumulation. Returns violation descriptions; empty when the gate
// passes, the benchmark is absent (a partial -bench run can't judge),
// or the budget is 0 (disabled).
func CheckServingBudget(e Entry, maxCampaignAllocs int64) []string {
	if maxCampaignAllocs <= 0 {
		return nil
	}
	var out []string
	if m, ok := e.Benchmarks["CampaignThroughput"]; ok && m.AllocsPerOp > maxCampaignAllocs {
		out = append(out, fmt.Sprintf(
			"CampaignThroughput %d allocs/op exceeds the serving budget %d: per-result allocation is back on the stream path",
			m.AllocsPerOp, maxCampaignAllocs))
	}
	return out
}

// CheckDurabilityBudget enforces the durable session plane's standing
// latency budget: SessionEditDurable ns/op at or under maxNs. The op is
// fsync-bound, so relative gating across heterogeneous CI disks flakes;
// the absolute ceiling catches structural regressions (extra fsyncs on
// the commit path, compaction under the append lock) that disk
// variation cannot explain. Returns violation descriptions; empty when
// the gate passes, the benchmark is absent, or the budget is 0.
func CheckDurabilityBudget(e Entry, maxNs float64) []string {
	if maxNs <= 0 {
		return nil
	}
	var out []string
	if m, ok := e.Benchmarks["SessionEditDurable"]; ok && m.NsPerOp > maxNs {
		out = append(out, fmt.Sprintf(
			"SessionEditDurable %.4g ns/op exceeds the %.4g ns fsync budget: something structural joined the durable commit path",
			m.NsPerOp, maxNs))
	}
	return out
}

// CheckRepairBudget enforces the repair engine's standing interactive
// latency budget: SessionRepair (one greedy search in query mode) ns/op
// at or under maxNs. Returns violation descriptions; empty when the
// gate passes, the benchmark is absent, or the budget is 0.
func CheckRepairBudget(e Entry, maxNs float64) []string {
	if maxNs <= 0 {
		return nil
	}
	var out []string
	if m, ok := e.Benchmarks["SessionRepair"]; ok && m.NsPerOp > maxNs {
		out = append(out, fmt.Sprintf(
			"SessionRepair %.4g ns/op exceeds the %.4g ns interactive budget: the greedy search path regressed structurally",
			m.NsPerOp, maxNs))
	}
	return out
}

// Compare reports the regressions of cur vs base: an allocs/op increase
// beyond 1% + 1 (warm-up allocations amortize differently at different
// -benchtime, so exact equality flakes), or an ns/op slowdown beyond
// maxRegressPct, for benchmarks present in both entries. Benchmarks only
// on one side are ignored (new benchmarks must be able to land without a
// baseline).
func Compare(base, cur Entry, maxRegressPct float64) []string {
	var out []string
	for name, b := range base.Benchmarks {
		c, ok := cur.Benchmarks[name]
		if !ok {
			continue
		}
		if allowed := b.AllocsPerOp + b.AllocsPerOp/100 + 1; c.AllocsPerOp > allowed {
			out = append(out, fmt.Sprintf("%s: allocs/op %d -> %d (> %d, the 1%%+1 tolerance)",
				name, b.AllocsPerOp, c.AllocsPerOp, allowed))
		}
		if b.NsPerOp > 0 {
			pct := 100 * (c.NsPerOp - b.NsPerOp) / b.NsPerOp
			if pct > maxRegressPct {
				out = append(out, fmt.Sprintf("%s: ns/op %.4g -> %.4g (%+.1f%% > %+.1f%%)",
					name, b.NsPerOp, c.NsPerOp, pct, maxRegressPct))
			}
		}
	}
	return out
}

// ReadTrajectory loads a trajectory file; a missing file yields an
// empty trajectory and an os.IsNotExist error the caller may ignore.
func ReadTrajectory(path string) (Trajectory, error) {
	var t Trajectory
	data, err := os.ReadFile(path)
	if err != nil {
		return t, err
	}
	if err := json.Unmarshal(data, &t); err != nil {
		return t, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// WriteTrajectory stores the trajectory, indented for reviewable diffs.
func WriteTrajectory(path string, t Trajectory) error {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

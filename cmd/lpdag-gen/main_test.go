package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/model"
)

func TestRunStdout(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-u", "1.5", "-seed", "9"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	ts, err := model.ReadJSON(&out)
	if err != nil {
		t.Fatalf("output is not a valid task set: %v", err)
	}
	if ts.N() < 1 {
		t.Fatal("empty set")
	}
	if !strings.Contains(errb.String(), "total utilization") {
		t.Errorf("missing summary: %q", errb.String())
	}
}

func TestRunExactN(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-n", "5", "-u", "2", "-group", "parallel"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d", code)
	}
	ts, err := model.ReadJSON(&out)
	if err != nil {
		t.Fatal(err)
	}
	if ts.N() != 5 {
		t.Fatalf("N = %d, want 5", ts.N())
	}
}

func TestRunToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ts.json")
	var out, errb bytes.Buffer
	if code := run([]string{"-o", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := model.ReadJSON(f); err != nil {
		t.Fatalf("file content invalid: %v", err)
	}
}

func TestRunDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	run([]string{"-seed", "4", "-u", "2"}, &a, &bytes.Buffer{})
	run([]string{"-seed", "4", "-u", "2"}, &b, &bytes.Buffer{})
	if a.String() != b.String() {
		t.Error("same seed produced different output")
	}
}

func TestRunBadArgs(t *testing.T) {
	cases := [][]string{
		{"-group", "bogus"},
		{"-badflag"},
		{"-o", "/nonexistent-dir-xyz/out.json"},
	}
	for _, args := range cases {
		if code := run(args, &bytes.Buffer{}, &bytes.Buffer{}); code == 0 {
			t.Errorf("args %v accepted", args)
		}
	}
}

// Command lpdag-gen generates random sporadic DAG task sets with the
// evaluation parameters of Serrano et al. (DATE 2016) and writes them as
// JSON for lpdag-analyze and lpdag-sim.
//
// Usage:
//
//	lpdag-gen -u 2.5 -group mixed -seed 7 > taskset.json
//	lpdag-gen -n 6 -u 4 -group parallel -o sets/hpc.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/gen"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lpdag-gen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed    = fs.Int64("seed", 1, "random seed (generation is deterministic)")
		target  = fs.Float64("u", 2.0, "target total utilization")
		nTasks  = fs.Int("n", 0, "exact number of tasks (0 = add tasks until -u is reached)")
		group   = fs.String("group", "mixed", "task population: mixed | parallel")
		seqProb = fs.Float64("seqprob", 0, "override sequential-task probability for the mixed group (0 = default 0.5)")
		out     = fs.String("o", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var g gen.Group
	switch *group {
	case "mixed":
		g = gen.GroupMixed
	case "parallel":
		g = gen.GroupParallel
	default:
		fmt.Fprintf(stderr, "lpdag-gen: unknown group %q (want mixed or parallel)\n", *group)
		return 2
	}
	params := gen.PaperParams(g)
	if *seqProb > 0 {
		params.SeqProb = *seqProb
	}
	generator := gen.New(*seed, params)

	ts := generator.TaskSet(*target)
	if *nTasks > 0 {
		ts = generator.TaskSetN(*nTasks, *target)
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "lpdag-gen: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if err := ts.WriteJSON(w); err != nil {
		fmt.Fprintf(stderr, "lpdag-gen: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "lpdag-gen: %d tasks, total utilization %.3f\n", ts.N(), ts.Utilization())
	return 0
}

package main

// Remote backend for the -session REPL: the same interactive shell, but
// the session lives in an lpdag-serve cluster instead of this process.
// The client holds a mirror of the task list and options purely for
// local display (tasks listing, verdict strings); every analysis
// question goes over the wire.
//
// Fault tolerance matches the serving side's design: transport errors
// rotate to the next peer with capped jittered backoff (a killed node's
// replacement, or a surviving peer holding the handed-off session,
// answers eventually), and 307 responses re-aim the whole conversation
// at the owner named by X-Lpdag-Session-Owner.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/repair"
	"repro/internal/session"
)

// sessionBackend is what the REPL loop drives: the local
// *session.Session satisfies it directly, remoteSession speaks it over
// HTTP.
type sessionBackend interface {
	Len() int
	Tasks() []*model.Task
	TaskIndex(name string) int
	AddTask(t *model.Task, at int) error
	RemoveTask(i int) (*model.Task, error)
	SetPriority(from, to int) error
	SetCores(m int) error
	SetMethod(m core.Method) error
	Report(ctx context.Context) (*core.Report, error)
	TryAdmit(ctx context.Context, t *model.Task, at int) (*core.Report, error)
	Sensitivity(ctx context.Context, i, maxPermille int) (int, error)
	Repair(ctx context.Context, cfg repair.Config, apply bool) (*repair.Result, error)
}

var _ sessionBackend = (*session.Session)(nil)

const (
	remoteMaxAttempts = 8
	remoteBackoffBase = 100 * time.Millisecond
	remoteBackoffCap  = 2 * time.Second
)

// remoteSession drives a server-side session over the /v1/sessions API.
// Not safe for concurrent use (the REPL is sequential).
type remoteSession struct {
	peers  []string // candidate base URLs, rotated on transport failure
	cur    int      // index into peers currently targeted
	id     string
	client *http.Client
	opts   core.Options  // mirror: cores/method for display
	tasks  []*model.Task // mirror: priority order, for tasks/TaskIndex/save
	epoch  uint64        // last X-Lpdag-Session-Epoch seen
	sleep  func(time.Duration)
}

// newRemoteSession creates the server-side session on one of peers.
func newRemoteSession(peers []string, opts core.Options, tasks []*model.Task) (*remoteSession, error) {
	methodWire, err := engine.MethodWire(opts.Method)
	if err != nil {
		return nil, err
	}
	backendWire, err := engine.BackendWire(opts.Backend)
	if err != nil {
		return nil, err
	}
	rs := &remoteSession{
		peers: peers,
		// Redirects are followed manually: a 307 carries the owner's base
		// URL, which must re-aim every later request, not just this one.
		client: &http.Client{
			Timeout:       60 * time.Second,
			CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
		},
		opts:  opts,
		tasks: append([]*model.Task(nil), tasks...),
		sleep: time.Sleep,
	}
	body := map[string]any{
		"cores": opts.Cores, "method": methodWire, "backend": backendWire,
		"final_npr": opts.FinalNPRRefinement,
	}
	if len(tasks) > 0 {
		body["taskset"] = &model.TaskSet{Tasks: rs.tasks}
	}
	var resp struct {
		ID     string          `json:"id"`
		Report json.RawMessage `json:"report"`
	}
	if err := rs.do(http.MethodPost, "/v1/sessions", body, &resp); err != nil {
		return nil, err
	}
	rs.id = resp.ID
	return rs, nil
}

// do issues one API call with peer rotation, capped jittered backoff,
// and manual 307 following, then decodes the JSON response into out.
func (rs *remoteSession) do(method, path string, body any, out any) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return err
		}
	}
	var lastErr error
	for attempt := 0; attempt < remoteMaxAttempts; attempt++ {
		base := rs.peers[rs.cur]
		req, err := http.NewRequest(method, base+path, bytes.NewReader(payload))
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := rs.client.Do(req)
		if err != nil {
			// Transport failure: the node may be gone. Rotate to the next
			// peer after a capped, jittered pause — a redeploying node
			// needs a beat, and synchronized clients must not stampede.
			lastErr = err
			rs.cur = (rs.cur + 1) % len(rs.peers)
			rs.sleep(jitteredBackoff(attempt))
			continue
		}
		if resp.StatusCode == http.StatusTemporaryRedirect {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			owner := resp.Header.Get("X-Lpdag-Session-Owner")
			if owner == "" {
				return errors.New("redirect without X-Lpdag-Session-Owner")
			}
			rs.retarget(owner)
			lastErr = fmt.Errorf("redirected to %s", owner)
			continue // no sleep: the owner is presumed alive
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			rs.cur = (rs.cur + 1) % len(rs.peers)
			rs.sleep(jitteredBackoff(attempt))
			continue
		}
		if e := resp.Header.Get("X-Lpdag-Session-Epoch"); e != "" {
			if v, err := strconv.ParseUint(e, 10, 64); err == nil {
				rs.epoch = v
			}
		}
		if resp.StatusCode >= 400 {
			var apiErr struct {
				Error string `json:"error"`
			}
			if json.Unmarshal(data, &apiErr) == nil && apiErr.Error != "" {
				return errors.New(apiErr.Error)
			}
			return fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
		}
		if out != nil {
			return json.Unmarshal(data, out)
		}
		return nil
	}
	return fmt.Errorf("no reachable session node after %d attempts: %w", remoteMaxAttempts, lastErr)
}

// retarget makes owner the current peer, adding it if the configured
// list does not name it (a replacement node the operator spun up).
func (rs *remoteSession) retarget(owner string) {
	for i, p := range rs.peers {
		if p == owner {
			rs.cur = i
			return
		}
	}
	rs.peers = append(rs.peers, owner)
	rs.cur = len(rs.peers) - 1
}

// jitteredBackoff is min(cap, base<<attempt), halved plus a random half
// so synchronized retriers spread out.
func jitteredBackoff(attempt int) time.Duration {
	d := remoteBackoffBase << attempt
	if d > remoteBackoffCap || d <= 0 {
		d = remoteBackoffCap
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// coreReport lifts the API's report JSON back into a *core.Report so
// the REPL prints identically against both backends. Method is taken
// from the client mirror (the wire carries the display spelling).
func (rs *remoteSession) coreReport(raw json.RawMessage) (*core.Report, error) {
	var rep struct {
		Schedulable bool    `json:"schedulable"`
		Cores       int     `json:"cores"`
		Utilization float64 `json:"utilization"`
		Tasks       []struct {
			Name         string `json:"name"`
			Schedulable  bool   `json:"schedulable"`
			Analyzed     bool   `json:"analyzed"`
			ResponseTime int64  `json:"response_time"`
			Deadline     int64  `json:"deadline"`
			DeltaM       int64  `json:"delta_m"`
			DeltaM1      int64  `json:"delta_m1"`
			Preemptions  int64  `json:"preemptions"`
			Iterations   int    `json:"iterations"`
		} `json:"tasks"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, err
	}
	out := &core.Report{
		Schedulable: rep.Schedulable,
		Method:      rs.opts.Method,
		Cores:       rep.Cores,
		Utilization: rep.Utilization,
		Tasks:       make([]core.TaskReport, len(rep.Tasks)),
	}
	for i, t := range rep.Tasks {
		out.Tasks[i] = core.TaskReport{
			Name: t.Name, Schedulable: t.Schedulable, Analyzed: t.Analyzed,
			ResponseTime: t.ResponseTime, Deadline: t.Deadline,
			DeltaM: t.DeltaM, DeltaM1: t.DeltaM1,
			Preemptions: t.Preemptions, Iterations: t.Iterations,
		}
	}
	return out, nil
}

func (rs *remoteSession) Len() int             { return len(rs.tasks) }
func (rs *remoteSession) Tasks() []*model.Task { return append([]*model.Task(nil), rs.tasks...) }

func (rs *remoteSession) TaskIndex(name string) int {
	for i, t := range rs.tasks {
		if t.Name == name {
			return i
		}
	}
	return -1
}

// editResponse is the POST edits reply.
type editResponse struct {
	Report json.RawMessage `json:"report"`
}

func (rs *remoteSession) edits(batch []map[string]any) error {
	var resp editResponse
	return rs.do(http.MethodPost, "/v1/sessions/"+rs.id+"/edits",
		map[string]any{"edits": batch}, &resp)
}

func (rs *remoteSession) AddTask(t *model.Task, at int) error {
	raw, err := json.Marshal(t)
	if err != nil {
		return err
	}
	edit := map[string]any{"op": session.OpAdd, "task": json.RawMessage(raw)}
	if at >= 0 {
		edit["at"] = at
	}
	if err := rs.edits([]map[string]any{edit}); err != nil {
		return err
	}
	if at < 0 || at > len(rs.tasks) {
		at = len(rs.tasks)
	}
	rs.tasks = append(rs.tasks[:at], append([]*model.Task{t}, rs.tasks[at:]...)...)
	return nil
}

func (rs *remoteSession) RemoveTask(i int) (*model.Task, error) {
	if err := rs.edits([]map[string]any{{"op": session.OpRemove, "index": i}}); err != nil {
		return nil, err
	}
	t := rs.tasks[i]
	rs.tasks = append(rs.tasks[:i], rs.tasks[i+1:]...)
	return t, nil
}

func (rs *remoteSession) SetPriority(from, to int) error {
	if err := rs.edits([]map[string]any{{"op": session.OpSetPriority, "from": from, "to": to}}); err != nil {
		return err
	}
	t := rs.tasks[from]
	rest := append(rs.tasks[:from:from], rs.tasks[from+1:]...)
	rs.tasks = append(rest[:to:to], append([]*model.Task{t}, rest[to:]...)...)
	return nil
}

func (rs *remoteSession) SetCores(m int) error {
	if err := rs.edits([]map[string]any{{"op": session.OpSetCores, "cores": m}}); err != nil {
		return err
	}
	rs.opts.Cores = m
	return nil
}

func (rs *remoteSession) SetMethod(m core.Method) error {
	wire, err := engine.MethodWire(m)
	if err != nil {
		return err
	}
	if err := rs.edits([]map[string]any{{"op": session.OpSetMethod, "method": wire}}); err != nil {
		return err
	}
	rs.opts.Method = m
	return nil
}

func (rs *remoteSession) Report(ctx context.Context) (*core.Report, error) {
	var resp struct {
		Report json.RawMessage `json:"report"`
	}
	if err := rs.do(http.MethodGet, "/v1/sessions/"+rs.id+"/report", nil, &resp); err != nil {
		return nil, err
	}
	return rs.coreReport(resp.Report)
}

func (rs *remoteSession) TryAdmit(ctx context.Context, t *model.Task, at int) (*core.Report, error) {
	raw, err := json.Marshal(t)
	if err != nil {
		return nil, err
	}
	body := map[string]any{"task": json.RawMessage(raw)}
	if at >= 0 {
		body["at"] = at
	}
	var resp struct {
		Admitted bool            `json:"admitted"`
		Report   json.RawMessage `json:"report"`
	}
	if err := rs.do(http.MethodPost, "/v1/sessions/"+rs.id+"/admit", body, &resp); err != nil {
		return nil, err
	}
	return rs.coreReport(resp.Report)
}

func (rs *remoteSession) Sensitivity(ctx context.Context, i, maxPermille int) (int, error) {
	var resp struct {
		Permille int `json:"permille"`
	}
	err := rs.do(http.MethodPost, "/v1/sessions/"+rs.id+"/sensitivity",
		map[string]any{"index": i, "max_permille": maxPermille}, &resp)
	return resp.Permille, err
}

// Repair runs the server-side placement search. The response carries
// the transform sequence, so a server-applied repair can be replayed
// onto the local task mirror with repair.Apply; Result.Tasks is left
// nil (the REPL prints transforms and the lifted report, not tasks).
func (rs *remoteSession) Repair(ctx context.Context, cfg repair.Config, apply bool) (*repair.Result, error) {
	body := map[string]any{"strategy": cfg.Strategy.String(), "apply": apply}
	if cfg.MaxSteps > 0 {
		body["max_steps"] = cfg.MaxSteps
	}
	if len(cfg.Budgets) > 0 {
		body["budgets"] = cfg.Budgets
	}
	if cfg.Coarsen {
		body["coarsen"] = true
	}
	if cfg.Reprioritize {
		body["reprioritize"] = true
	}
	if cfg.Beam > 0 {
		body["beam"] = cfg.Beam
	}
	if cfg.MaxCandidates > 0 {
		body["max_candidates"] = cfg.MaxCandidates
	}
	if cfg.Seed != 0 {
		body["seed"] = cfg.Seed
	}
	var resp struct {
		Fixed         bool  `json:"fixed"`
		Stopped       bool  `json:"stopped"`
		Applied       bool  `json:"applied"`
		Candidates    int   `json:"candidates"`
		FailingBefore int   `json:"failing_before"`
		FailingAfter  int   `json:"failing_after"`
		SlackBefore   int64 `json:"slack_before"`
		SlackAfter    int64 `json:"slack_after"`
		Transforms    []struct {
			Op     string `json:"op"`
			Task   string `json:"task"`
			MaxNPR int64  `json:"max_npr"`
			To     int    `json:"to"`
		} `json:"transforms"`
		Report json.RawMessage `json:"report"`
	}
	if err := rs.do(http.MethodPost, "/v1/sessions/"+rs.id+"/repair", body, &resp); err != nil {
		return nil, err
	}
	res := &repair.Result{
		Fixed:         resp.Fixed,
		Stopped:       resp.Stopped,
		Candidates:    resp.Candidates,
		FailingBefore: resp.FailingBefore,
		FailingAfter:  resp.FailingAfter,
		SlackBefore:   resp.SlackBefore,
		SlackAfter:    resp.SlackAfter,
		Transforms:    make([]repair.Transform, len(resp.Transforms)),
	}
	for i, t := range resp.Transforms {
		op, err := repair.ParseOp(t.Op)
		if err != nil {
			return nil, err
		}
		res.Transforms[i] = repair.Transform{Op: op, Task: t.Task, MaxNPR: t.MaxNPR, To: t.To}
	}
	rep, err := rs.coreReport(resp.Report)
	if err != nil {
		return nil, err
	}
	res.Report = rep
	if resp.Applied {
		tasks, err := repair.Apply(rs.tasks, res.Transforms)
		if err != nil {
			return nil, fmt.Errorf("replaying applied repair onto local mirror: %w", err)
		}
		rs.tasks = tasks
	}
	return res, nil
}

// Close drops the server-side session (best effort: TTL expiry cleans
// up after unreachable servers).
func (rs *remoteSession) Close() {
	rs.do(http.MethodDelete, "/v1/sessions/"+rs.id, nil, nil)
}

package main

import (
	"bytes"
	"strings"
	"testing"
)

const schedulableSet = `{"tasks":[
  {"name":"hi","wcet":[2],"edges":[],"deadline":40,"period":40},
  {"name":"lo","wcet":[3,4],"edges":[[0,1]],"deadline":50,"period":50}
]}`

const doomedSet = `{"tasks":[
  {"name":"bad","wcet":[90],"edges":[],"deadline":10,"period":10}
]}`

func TestAnalyzeSchedulable(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-m", "2", "-method", "lp-ilp"},
		strings.NewReader(schedulableSet), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"SCHEDULABLE", "hi", "lo", "LP-ILP"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestAnalyzeUnschedulableExitCode(t *testing.T) {
	var out bytes.Buffer
	code := run([]string{"-m", "2"}, strings.NewReader(doomedSet), &out, &bytes.Buffer{})
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(out.String(), "NOT SCHEDULABLE") {
		t.Errorf("missing verdict:\n%s", out.String())
	}
}

func TestAnalyzeCompare(t *testing.T) {
	var out bytes.Buffer
	code := run([]string{"-m", "2", "-compare"}, strings.NewReader(schedulableSet), &out, &bytes.Buffer{})
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"FP-ideal", "LP-ILP", "LP-max"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("compare output missing %q", want)
		}
	}
}

func TestAnalyzeFinalNPRFlag(t *testing.T) {
	var plain, refined bytes.Buffer
	run([]string{"-m", "2"}, strings.NewReader(schedulableSet), &plain, &bytes.Buffer{})
	run([]string{"-m", "2", "-final-npr"}, strings.NewReader(schedulableSet), &refined, &bytes.Buffer{})
	if plain.Len() == 0 || refined.Len() == 0 {
		t.Fatal("no output")
	}
}

func TestAnalyzeBadInputs(t *testing.T) {
	cases := []struct {
		args  []string
		stdin string
	}{
		{[]string{"-method", "bogus"}, schedulableSet},
		{[]string{"-backend", "bogus"}, schedulableSet},
		{[]string{"-badflag"}, schedulableSet},
		{[]string{}, "not json"},
		{[]string{"-f", "/nonexistent-xyz.json"}, ""},
	}
	for _, tc := range cases {
		code := run(tc.args, strings.NewReader(tc.stdin), &bytes.Buffer{}, &bytes.Buffer{})
		if code != 2 {
			t.Errorf("args %v: exit %d, want 2", tc.args, code)
		}
	}
}

func TestAnalyzePaperILPBackend(t *testing.T) {
	var out bytes.Buffer
	code := run([]string{"-m", "2", "-backend", "paper-ilp"},
		strings.NewReader(schedulableSet), &out, &bytes.Buffer{})
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
}

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const schedulableSet = `{"tasks":[
  {"name":"hi","wcet":[2],"edges":[],"deadline":40,"period":40},
  {"name":"lo","wcet":[3,4],"edges":[[0,1]],"deadline":50,"period":50}
]}`

const doomedSet = `{"tasks":[
  {"name":"bad","wcet":[90],"edges":[],"deadline":10,"period":10}
]}`

func TestAnalyzeSchedulable(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-m", "2", "-method", "lp-ilp"},
		strings.NewReader(schedulableSet), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"SCHEDULABLE", "hi", "lo", "LP-ILP"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestAnalyzeUnschedulableExitCode(t *testing.T) {
	var out bytes.Buffer
	code := run([]string{"-m", "2"}, strings.NewReader(doomedSet), &out, &bytes.Buffer{})
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(out.String(), "NOT SCHEDULABLE") {
		t.Errorf("missing verdict:\n%s", out.String())
	}
}

func TestAnalyzeCompare(t *testing.T) {
	var out bytes.Buffer
	code := run([]string{"-m", "2", "-compare"}, strings.NewReader(schedulableSet), &out, &bytes.Buffer{})
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"FP-ideal", "LP-ILP", "LP-max"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("compare output missing %q", want)
		}
	}
}

func TestAnalyzeFinalNPRFlag(t *testing.T) {
	var plain, refined bytes.Buffer
	run([]string{"-m", "2"}, strings.NewReader(schedulableSet), &plain, &bytes.Buffer{})
	run([]string{"-m", "2", "-final-npr"}, strings.NewReader(schedulableSet), &refined, &bytes.Buffer{})
	if plain.Len() == 0 || refined.Len() == 0 {
		t.Fatal("no output")
	}
}

func TestAnalyzeBadInputs(t *testing.T) {
	cases := []struct {
		args  []string
		stdin string
	}{
		{[]string{"-method", "bogus"}, schedulableSet},
		{[]string{"-backend", "bogus"}, schedulableSet},
		{[]string{"-badflag"}, schedulableSet},
		{[]string{}, "not json"},
		{[]string{"-f", "/nonexistent-xyz.json"}, ""},
	}
	for _, tc := range cases {
		code := run(tc.args, strings.NewReader(tc.stdin), &bytes.Buffer{}, &bytes.Buffer{})
		if code != 2 {
			t.Errorf("args %v: exit %d, want 2", tc.args, code)
		}
	}
}

func TestAnalyzePaperILPBackend(t *testing.T) {
	var out bytes.Buffer
	code := run([]string{"-m", "2", "-backend", "paper-ilp"},
		strings.NewReader(schedulableSet), &out, &bytes.Buffer{})
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
}

// TestSessionREPL drives the -session shell with a scripted what-if
// dialogue: report, admission probe (no commit), commit, reprioritize,
// sensitivity, remove.
func TestSessionREPL(t *testing.T) {
	f := writeTemp(t, schedulableSet)
	script := strings.Join([]string{
		`report`,
		`tasks`,
		`admit {"name":"new","wcet":[5],"edges":[],"deadline":60,"period":60}`,
		`tasks`,
		`add 0 {"name":"new","wcet":[5],"edges":[],"deadline":60,"period":60}`,
		`move 0 2`,
		`sensitivity new`,
		`rm new`,
		`cores 4`,
		`report`,
		`quit`,
	}, "\n") + "\n"
	var out, errb bytes.Buffer
	code := run([]string{"-m", "2", "-session", "-f", f}, strings.NewReader(script), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{
		"session: 2 tasks",
		"SCHEDULABLE",
		`ADMIT "new"`,
		`added "new" at priority 0`,
		"sustains WCET",
		`removed "new"`,
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\nstdout: %s\nstderr: %s", want, out.String(), errb.String())
		}
	}
	// The admit probe must not commit: between `admit` and `add` the
	// session still lists 2 tasks (the second `tasks` dump).
	if strings.Count(out.String(), "new") < 3 {
		t.Errorf("expected new task to appear in later output:\n%s", out.String())
	}
}

// TestSessionREPLUnschedulableExit pins the exit status on a doomed
// final set.
func TestSessionREPLUnschedulableExit(t *testing.T) {
	f := writeTemp(t, doomedSet)
	var out, errb bytes.Buffer
	code := run([]string{"-m", "2", "-session", "-f", f}, strings.NewReader("quit\n"), &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", code, errb.String())
	}
}

// TestSessionREPLBadCommandKeepsGoing pins that errors are reported and
// the shell continues.
func TestSessionREPLBadCommandKeepsGoing(t *testing.T) {
	f := writeTemp(t, schedulableSet)
	script := "bogus\nmove 9 0\nreport\nquit\n"
	var out, errb bytes.Buffer
	code := run([]string{"-m", "2", "-session", "-f", f}, strings.NewReader(script), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(errb.String(), `unknown command "bogus"`) {
		t.Errorf("missing unknown-command error: %s", errb.String())
	}
	if !strings.Contains(errb.String(), "invalid from: 9") {
		t.Errorf("missing move error: %s", errb.String())
	}
	if !strings.Contains(out.String(), "SCHEDULABLE") {
		t.Errorf("report after errors missing: %s", out.String())
	}
}

// writeTemp writes content to a temp file and returns its path.
func writeTemp(t *testing.T, content string) string {
	t.Helper()
	f := filepath.Join(t.TempDir(), "set.json")
	if err := os.WriteFile(f, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return f
}

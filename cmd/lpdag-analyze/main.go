// Command lpdag-analyze runs the response-time analysis of Serrano et
// al. (DATE 2016) on a task set in the lpdag JSON format.
//
// Usage:
//
//	lpdag-gen -u 2 | lpdag-analyze -m 4 -method lp-ilp
//	lpdag-analyze -m 8 -compare -f taskset.json
//	lpdag-analyze -session -f taskset.json
//
// With -session the command becomes an interactive what-if shell over a
// stateful analysis session: edits re-analyze incrementally, so each
// question costs what it touched, not a full re-analysis. Commands
// (one per line; `help` prints this list):
//
//	report                      print the current analysis report
//	tasks                       list tasks in priority order
//	add [at] {task json}        insert a task (at = priority index, default lowest)
//	admit [at] {task json}      admission probe: analyze without committing
//	rm <index|name>             remove a task
//	move <from> <to>            change a task's priority
//	cores <m>                   change the core count
//	method <fp-ideal|lp-ilp|lp-max>
//	sensitivity <index|name>    per-task WCET headroom (permille)
//	fix [exhaustive] [apply]    search NPR placements that repair an unschedulable set
//	save <file>                 write the current set as JSON
//	quit
//
// Exit status: 0 when (all requested analyses say) schedulable — in
// session mode, when the final committed set is schedulable — 1 when
// not, 2 on usage or input errors.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/repair"
	"repro/internal/session"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lpdag-analyze", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		m       = fs.Int("m", 4, "number of identical cores")
		method  = fs.String("method", "lp-ilp", "analysis: fp-ideal | lp-ilp | lp-max")
		backend = fs.String("backend", "combinatorial", "LP-ILP solver: combinatorial | paper-ilp")
		compare = fs.Bool("compare", false, "run all three methods and print all reports")
		refine  = fs.Bool("final-npr", false, "enable the final-NPR refinement (future-work (ii))")
		repl    = fs.Bool("session", false, "interactive what-if shell (reads commands from stdin)")
		server  = fs.String("server", "", "with -session: comma-separated lpdag-serve base URLs; the session lives server-side, the client follows 307 session redirects and retries dead peers")
		in      = fs.String("f", "", "input task-set JSON (default stdin; optional with -session)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	meth, err := engine.ParseMethod(*method)
	if err != nil {
		fmt.Fprintf(stderr, "lpdag-analyze: %v\n", err)
		return 2
	}
	be, err := engine.ParseBackend(*backend)
	if err != nil {
		fmt.Fprintf(stderr, "lpdag-analyze: %v\n", err)
		return 2
	}
	opts := core.Options{Cores: *m, Method: meth, Backend: be, FinalNPRRefinement: *refine}

	// In session mode stdin carries commands, so the task set (if any)
	// must come from -f.
	var ts *model.TaskSet
	if !*repl || *in != "" {
		r := stdin
		if *in != "" {
			f, err := os.Open(*in)
			if err != nil {
				fmt.Fprintf(stderr, "lpdag-analyze: %v\n", err)
				return 2
			}
			defer f.Close()
			r = f
		}
		if ts, err = model.ReadJSON(r); err != nil {
			fmt.Fprintf(stderr, "lpdag-analyze: %v\n", err)
			return 2
		}
	}

	if *repl {
		return runSession(opts, ts, *server, stdin, stdout, stderr)
	}
	if *server != "" {
		fmt.Fprintln(stderr, "lpdag-analyze: -server requires -session")
		return 2
	}

	if *compare {
		a, err := core.New(opts)
		if err != nil {
			fmt.Fprintf(stderr, "lpdag-analyze: %v\n", err)
			return 2
		}
		reps, err := a.CompareMethods(context.Background(), ts)
		if err != nil {
			fmt.Fprintf(stderr, "lpdag-analyze: %v\n", err)
			return 2
		}
		exit := 0
		for _, meth := range core.Methods() {
			fmt.Fprintln(stdout, reps[meth])
			if !reps[meth].Schedulable {
				exit = 1
			}
		}
		return exit
	}

	a, err := core.New(opts)
	if err != nil {
		fmt.Fprintf(stderr, "lpdag-analyze: %v\n", err)
		return 2
	}
	rep, err := a.Analyze(context.Background(), ts)
	if err != nil {
		fmt.Fprintf(stderr, "lpdag-analyze: %v\n", err)
		return 2
	}
	fmt.Fprint(stdout, rep)
	if !rep.Schedulable {
		return 1
	}
	return 0
}

// runSession is the -session REPL loop; servers == "" runs the session
// in-process, otherwise it lives on an lpdag-serve cluster.
func runSession(opts core.Options, ts *model.TaskSet, servers string, stdin io.Reader, stdout, stderr io.Writer) int {
	var tasks []*model.Task
	if ts != nil {
		tasks = ts.Tasks
	}
	var sess sessionBackend
	if servers != "" {
		var peers []string
		for _, p := range strings.Split(servers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, p)
			}
		}
		if len(peers) == 0 {
			fmt.Fprintln(stderr, "lpdag-analyze: -server lists no URLs")
			return 2
		}
		remote, err := newRemoteSession(peers, opts, tasks)
		if err != nil {
			fmt.Fprintf(stderr, "lpdag-analyze: %v\n", err)
			return 2
		}
		defer remote.Close()
		sess = remote
	} else {
		local, err := session.New(opts, tasks...)
		if err != nil {
			fmt.Fprintf(stderr, "lpdag-analyze: %v\n", err)
			return 2
		}
		sess = local
	}
	ctx := context.Background()
	fmt.Fprintf(stdout, "session: %d tasks, m=%d, %v (type `help` for commands)\n",
		sess.Len(), opts.Cores, opts.Method)
	sc := bufio.NewScanner(stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		cmd, rest, _ := strings.Cut(line, " ")
		rest = strings.TrimSpace(rest)
		switch cmd {
		case "quit", "exit":
			return sessionExit(ctx, sess, stderr)
		case "help":
			fmt.Fprint(stdout, sessionHelp)
		case "report":
			if rep, err := sess.Report(ctx); err != nil {
				fmt.Fprintf(stderr, "error: %v\n", err)
			} else {
				fmt.Fprint(stdout, rep)
			}
		case "tasks":
			for i, t := range sess.Tasks() {
				fmt.Fprintf(stdout, "%3d  %-12s vol=%-6d L=%-6d D=%-6d T=%d\n",
					i, t.Name, t.G.Volume(), t.G.LongestPath(), t.Deadline, t.Period)
			}
		case "add", "admit":
			at, taskJSON := splitAtArg(rest)
			t := new(model.Task)
			if err := t.UnmarshalJSON([]byte(taskJSON)); err != nil {
				fmt.Fprintf(stderr, "error: %v\n", err)
				continue
			}
			if cmd == "admit" {
				rep, err := sess.TryAdmit(ctx, t, at)
				if err != nil {
					fmt.Fprintf(stderr, "error: %v\n", err)
					continue
				}
				verdict := "ADMIT"
				if !rep.Schedulable {
					verdict = "REJECT"
				}
				fmt.Fprintf(stdout, "%s %q\n%s", verdict, t.Name, rep)
				continue
			}
			if err := sess.AddTask(t, at); err != nil {
				fmt.Fprintf(stderr, "error: %v\n", err)
				continue
			}
			fmt.Fprintf(stdout, "added %q at priority %d\n", t.Name, sess.TaskIndex(t.Name))
		case "rm":
			i, ok := resolveTask(sess, rest, stderr)
			if !ok {
				continue
			}
			t, err := sess.RemoveTask(i)
			if err != nil {
				fmt.Fprintf(stderr, "error: %v\n", err)
				continue
			}
			fmt.Fprintf(stdout, "removed %q\n", t.Name)
		case "move":
			parts := strings.Fields(rest)
			if len(parts) != 2 {
				fmt.Fprintf(stderr, "error: usage: move <from> <to>\n")
				continue
			}
			from, err1 := strconv.Atoi(parts[0])
			to, err2 := strconv.Atoi(parts[1])
			if err1 != nil || err2 != nil {
				fmt.Fprintf(stderr, "error: usage: move <from> <to>\n")
				continue
			}
			if err := sess.SetPriority(from, to); err != nil {
				fmt.Fprintf(stderr, "error: %v\n", err)
			}
		case "cores":
			mv, err := strconv.Atoi(rest)
			if err != nil {
				fmt.Fprintf(stderr, "error: usage: cores <m>\n")
				continue
			}
			if err := sess.SetCores(mv); err != nil {
				fmt.Fprintf(stderr, "error: %v\n", err)
			}
		case "method":
			meth, err := engine.ParseMethod(rest)
			if err != nil {
				fmt.Fprintf(stderr, "error: %v\n", err)
				continue
			}
			if err := sess.SetMethod(meth); err != nil {
				fmt.Fprintf(stderr, "error: %v\n", err)
			}
		case "sensitivity":
			i, ok := resolveTask(sess, rest, stderr)
			if !ok {
				continue
			}
			permille, err := sess.Sensitivity(ctx, i, 100_000)
			if err != nil {
				fmt.Fprintf(stderr, "error: %v\n", err)
				continue
			}
			fmt.Fprintf(stdout, "task %d sustains WCET × %d.%03d\n", i, permille/1000, permille%1000)
		case "fix":
			cfg, apply, err := parseFixArgs(rest)
			if err != nil {
				fmt.Fprintf(stderr, "error: %v\n", err)
				continue
			}
			res, err := sess.Repair(ctx, cfg, apply)
			if err != nil {
				fmt.Fprintf(stderr, "error: %v\n", err)
				continue
			}
			printRepair(stdout, res, apply)
		case "save":
			if rest == "" {
				fmt.Fprintf(stderr, "error: usage: save <file>\n")
				continue
			}
			f, err := os.Create(rest)
			if err != nil {
				fmt.Fprintf(stderr, "error: %v\n", err)
				continue
			}
			set := &model.TaskSet{Tasks: sess.Tasks()}
			if err := set.WriteJSON(f); err != nil {
				fmt.Fprintf(stderr, "error: %v\n", err)
			}
			f.Close()
		default:
			fmt.Fprintf(stderr, "error: unknown command %q (type `help`)\n", cmd)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(stderr, "lpdag-analyze: %v\n", err)
		return 2
	}
	return sessionExit(ctx, sess, stderr)
}

const sessionHelp = `commands:
  report                     print the current analysis report
  tasks                      list tasks in priority order
  add [at] {task json}       insert a task (at = priority index, default lowest)
  admit [at] {task json}     admission probe: analyze without committing
  rm <index|name>            remove a task
  move <from> <to>           change a task's priority
  cores <m>                  change the core count
  method <fp-ideal|lp-ilp|lp-max>
  sensitivity <index|name>   per-task WCET headroom (permille)
  fix [exhaustive] [apply]   search NPR placements that repair an unschedulable set
  save <file>                write the current set as JSON
  quit
`

// parseFixArgs interprets the `fix` command's tokens: `exhaustive`
// switches strategy, `apply` commits a full fix. Defaults stay zero so
// local and remote backends resolve identical search parameters.
func parseFixArgs(rest string) (cfg repair.Config, apply bool, err error) {
	for _, tok := range strings.Fields(rest) {
		switch tok {
		case "apply":
			apply = true
		case "greedy":
			cfg.Strategy = repair.Greedy
		case "exhaustive":
			cfg.Strategy = repair.Exhaustive
		default:
			return cfg, false, fmt.Errorf("usage: fix [greedy|exhaustive] [apply]")
		}
	}
	return cfg, apply, nil
}

// printRepair renders a repair result for the REPL.
func printRepair(stdout io.Writer, res *repair.Result, apply bool) {
	if res.Fixed && len(res.Transforms) == 0 {
		fmt.Fprintf(stdout, "already schedulable (nothing to fix)\n")
		return
	}
	if res.Fixed {
		fmt.Fprintf(stdout, "FIXED in %d transform(s), %d candidate(s) searched:\n",
			len(res.Transforms), res.Candidates)
		for i, tr := range res.Transforms {
			fmt.Fprintf(stdout, "  %d. %s\n", i+1, tr)
		}
		if apply {
			fmt.Fprintf(stdout, "applied; session is schedulable\n")
		} else {
			fmt.Fprintf(stdout, "not applied (rerun with `fix apply` to commit)\n")
		}
		return
	}
	note := ""
	if res.Stopped {
		note = "; search budget struck"
	}
	fmt.Fprintf(stdout, "NO FIX found in %d candidate(s)%s: best leaves %d of %d failing task(s), slack %d -> %d\n",
		res.Candidates, note, res.FailingAfter, res.FailingBefore, res.SlackBefore, res.SlackAfter)
	for i, tr := range res.Transforms {
		fmt.Fprintf(stdout, "  %d. %s\n", i+1, tr)
	}
}

// sessionExit computes the final verdict for the exit status.
func sessionExit(ctx context.Context, sess sessionBackend, stderr io.Writer) int {
	rep, err := sess.Report(ctx)
	if err != nil {
		fmt.Fprintf(stderr, "lpdag-analyze: %v\n", err)
		return 2
	}
	if !rep.Schedulable {
		return 1
	}
	return 0
}

// splitAtArg splits an optional leading priority index off a task-JSON
// argument: "3 {...}" → (3, "{...}"), "{...}" → (-1, "{...}").
func splitAtArg(rest string) (int, string) {
	head, tail, ok := strings.Cut(rest, " ")
	if ok {
		if at, err := strconv.Atoi(head); err == nil {
			return at, strings.TrimSpace(tail)
		}
	}
	return -1, rest
}

// resolveTask parses a task reference (priority index or name).
func resolveTask(sess sessionBackend, ref string, stderr io.Writer) (int, bool) {
	if ref == "" {
		fmt.Fprintf(stderr, "error: missing task index or name\n")
		return 0, false
	}
	if i, err := strconv.Atoi(ref); err == nil {
		return i, true
	}
	i := sess.TaskIndex(ref)
	if i < 0 {
		fmt.Fprintf(stderr, "error: unknown task %q\n", ref)
		return 0, false
	}
	return i, true
}

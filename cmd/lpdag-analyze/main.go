// Command lpdag-analyze runs the response-time analysis of Serrano et
// al. (DATE 2016) on a task set in the lpdag JSON format.
//
// Usage:
//
//	lpdag-gen -u 2 | lpdag-analyze -m 4 -method lp-ilp
//	lpdag-analyze -m 8 -compare -f taskset.json
//
// Exit status: 0 when (all requested analyses say) schedulable, 1 when
// not, 2 on usage or input errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/rta"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lpdag-analyze", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		m       = fs.Int("m", 4, "number of identical cores")
		method  = fs.String("method", "lp-ilp", "analysis: fp-ideal | lp-ilp | lp-max")
		backend = fs.String("backend", "combinatorial", "LP-ILP solver: combinatorial | paper-ilp")
		compare = fs.Bool("compare", false, "run all three methods and print all reports")
		refine  = fs.Bool("final-npr", false, "enable the final-NPR refinement (future-work (ii))")
		in      = fs.String("f", "", "input task-set JSON (default stdin)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	r := stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintf(stderr, "lpdag-analyze: %v\n", err)
			return 2
		}
		defer f.Close()
		r = f
	}
	ts, err := model.ReadJSON(r)
	if err != nil {
		fmt.Fprintf(stderr, "lpdag-analyze: %v\n", err)
		return 2
	}

	var be core.Backend
	switch *backend {
	case "combinatorial":
		be = core.Combinatorial
	case "paper-ilp":
		be = core.PaperILP
	default:
		fmt.Fprintf(stderr, "lpdag-analyze: unknown backend %q\n", *backend)
		return 2
	}

	if *compare {
		a, err := core.New(core.Options{Cores: *m, Method: core.FPIdeal, Backend: be})
		if err != nil {
			fmt.Fprintf(stderr, "lpdag-analyze: %v\n", err)
			return 2
		}
		reps, err := a.CompareMethods(ts)
		if err != nil {
			fmt.Fprintf(stderr, "lpdag-analyze: %v\n", err)
			return 2
		}
		exit := 0
		for _, meth := range core.Methods() {
			fmt.Fprintln(stdout, reps[meth])
			if !reps[meth].Schedulable {
				exit = 1
			}
		}
		return exit
	}

	var meth core.Method
	switch *method {
	case "fp-ideal":
		meth = core.FPIdeal
	case "lp-ilp":
		meth = core.LPILP
	case "lp-max":
		meth = core.LPMax
	default:
		fmt.Fprintf(stderr, "lpdag-analyze: unknown method %q\n", *method)
		return 2
	}
	// The refinement flag needs the rta-level config, so go one level
	// below the core facade here.
	res, err := rta.Analyze(ts, rta.Config{
		M: *m, Method: meth, Backend: be, FinalNPRRefinement: *refine,
	})
	if err != nil {
		fmt.Fprintf(stderr, "lpdag-analyze: %v\n", err)
		return 2
	}
	verdict := "SCHEDULABLE"
	if !res.Schedulable {
		verdict = "NOT SCHEDULABLE"
	}
	fmt.Fprintf(stdout, "%s on m=%d cores (U=%.3f): %s\n", meth, *m, ts.Utilization(), verdict)
	fmt.Fprintf(stdout, "%-12s %10s %10s %8s %8s %6s %s\n",
		"task", "R(ub)", "D", "Dm", "Dm-1", "p", "verdict")
	for i, tr := range res.Tasks {
		status := "ok"
		switch {
		case !tr.Analyzed:
			status = "skipped"
		case !tr.Schedulable:
			status = "MISS"
		}
		rStr := "-"
		if tr.Analyzed {
			rStr = fmt.Sprintf("%d", tr.ResponseTimeCeil(*m))
		}
		fmt.Fprintf(stdout, "%-12s %10s %10d %8d %8d %6d %s\n",
			tr.Name, rStr, ts.Tasks[i].Deadline, tr.DeltaM, tr.DeltaM1, tr.Preemptions, status)
	}
	if !res.Schedulable {
		return 1
	}
	return 0
}

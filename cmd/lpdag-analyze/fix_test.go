package main

// Tests of the REPL `fix` command: the repair search over the session
// backend, local and remote (the remote path is the acceptance check
// that the REPL and POST /v1/sessions/{id}/repair resolve the same
// deterministic transform sequence — the remote REPL is a thin client
// of that endpoint).

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/engine"
)

// blockedREPLSet is the pinned unschedulable fixture: on two cores
// under LP-ILP, lo's single 200-long NPR blocks hi past its deadline;
// splitting it is the repair.
const blockedREPLSet = `{"tasks":[
  {"name":"hi","wcet":[5,5],"edges":[[0,1]],"deadline":25,"period":40},
  {"name":"lo","wcet":[200],"edges":[],"deadline":900,"period":1000}
]}`

const fixScript = `report
fix
tasks
fix exhaustive
fix apply
report
quit
`

func runFixREPL(t *testing.T, extra ...string) (string, int) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "set.json")
	if err := os.WriteFile(path, []byte(blockedREPLSet), 0o644); err != nil {
		t.Fatal(err)
	}
	args := append([]string{"-session", "-m", "2", "-method", "lp-ilp", "-f", path}, extra...)
	var out, errb bytes.Buffer
	code := run(args, strings.NewReader(fixScript), &out, &errb)
	if s := errb.String(); s != "" {
		t.Fatalf("stderr not empty: %s", s)
	}
	return out.String(), code
}

func TestSessionREPLFix(t *testing.T) {
	out, code := runFixREPL(t)
	if code != 0 {
		t.Fatalf("exit %d (applied fix must leave the set schedulable):\n%s", code, out)
	}
	for _, want := range []string{
		"NOT SCHEDULABLE",                 // initial report
		"FIXED in",                        // fix found a repair
		"split lo at",                     // the expected transform family
		"not applied",                     // plain fix is a query
		"applied; session is schedulable", // fix apply commits
		"SCHEDULABLE",                     // final report
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The query `fix` must not commit: the `tasks` dump after it still
	// shows the unsplit 200-volume task.
	if !strings.Contains(out, "vol=200") {
		t.Errorf("fix query mutated the session (no vol=200 task left):\n%s", out)
	}
}

func TestSessionREPLFixBadArgs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "set.json")
	if err := os.WriteFile(path, []byte(blockedREPLSet), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	run([]string{"-session", "-m", "2", "-f", path},
		strings.NewReader("fix sideways\nquit\n"), &out, &errb)
	if !strings.Contains(errb.String(), "usage: fix") {
		t.Errorf("bad fix args not rejected: %s", errb.String())
	}
}

// TestSessionREPLFixRemoteMatchesLocal is the acceptance criterion:
// the whole fix conversation — search, verdicts, transform sequences,
// apply — prints byte-for-byte the same against a live server (where
// fix is a POST /repair) as against the in-process session.
func TestSessionREPLFixRemoteMatchesLocal(t *testing.T) {
	eng := engine.New(engine.Config{Workers: 2})
	defer eng.Close()
	srv := httptest.NewServer(engine.NewServer(eng, engine.ServerConfig{SessionTTL: -1}))
	defer srv.Close()

	local, localCode := runFixREPL(t)
	remote, remoteCode := runFixREPL(t, "-server", srv.URL)
	if localCode != remoteCode {
		t.Fatalf("exit codes differ: local %d, remote %d", localCode, remoteCode)
	}
	if local != remote {
		t.Fatalf("remote fix diverged from local:\n--- local ---\n%s\n--- remote ---\n%s", local, remote)
	}
	if !strings.Contains(local, "FIXED in") {
		t.Fatalf("script found no fix:\n%s", local)
	}
}

package main

// Tests of the -server remote session backend: the REPL over a live
// lpdag-serve handler must behave exactly like the in-process session,
// and the client must survive a dead peer in its list.

import (
	"bytes"
	"net"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/engine"
)

// replScript drives every remote-capable command through one
// conversation: queries, edits, an admission probe, a method switch,
// sensitivity, and the exit report.
const replScript = `report
tasks
add {"name":"mid","wcet":[2,2],"edges":[[0,1]],"deadline":45,"period":45}
admit {"name":"probe","wcet":[30],"edges":[],"deadline":35,"period":35}
move 2 0
cores 3
method lp-max
sensitivity 0
report
rm mid
tasks
quit
`

// runREPL executes the -session REPL over the script and returns its
// stdout; extra appends backend-selecting flags.
func runREPL(t *testing.T, extra ...string) (string, int) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "set.json")
	if err := os.WriteFile(path, []byte(schedulableSet), 0o644); err != nil {
		t.Fatal(err)
	}
	args := append([]string{"-session", "-m", "2", "-method", "lp-ilp", "-f", path}, extra...)
	var out, errb bytes.Buffer
	code := run(args, strings.NewReader(replScript), &out, &errb)
	if s := errb.String(); s != "" {
		t.Fatalf("stderr not empty: %s", s)
	}
	return out.String(), code
}

// TestSessionREPLRemoteMatchesLocal pins the remote backend's contract:
// the full conversation, run against a live server, prints byte-for-byte
// what the in-process session prints.
func TestSessionREPLRemoteMatchesLocal(t *testing.T) {
	eng := engine.New(engine.Config{Workers: 2})
	defer eng.Close()
	srv := httptest.NewServer(engine.NewServer(eng, engine.ServerConfig{SessionTTL: -1}))
	defer srv.Close()

	local, localCode := runREPL(t)
	remote, remoteCode := runREPL(t, "-server", srv.URL)
	if localCode != remoteCode {
		t.Fatalf("exit codes differ: local %d, remote %d", localCode, remoteCode)
	}
	if local != remote {
		t.Fatalf("remote REPL output diverged from local:\n--- local ---\n%s\n--- remote ---\n%s", local, remote)
	}
	if !strings.Contains(local, "ADMIT") && !strings.Contains(local, "REJECT") {
		t.Fatalf("script exercised no admission probe:\n%s", local)
	}
}

// TestSessionREPLSurvivesDeadPeer lists a dead peer first: the client
// must rotate past the refused connection and run the whole
// conversation against the live one.
func TestSessionREPLSurvivesDeadPeer(t *testing.T) {
	eng := engine.New(engine.Config{Workers: 2})
	defer eng.Close()
	srv := httptest.NewServer(engine.NewServer(eng, engine.ServerConfig{SessionTTL: -1}))
	defer srv.Close()

	// A listener opened and immediately closed: its address refuses
	// connections but belongs to no other process.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + ln.Addr().String()
	ln.Close()

	local, _ := runREPL(t)
	remote, _ := runREPL(t, "-server", deadURL+","+srv.URL)
	if local != remote {
		t.Fatalf("output with a dead peer diverged:\n--- local ---\n%s\n--- remote ---\n%s", local, remote)
	}
}

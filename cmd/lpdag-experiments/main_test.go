package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	lpdag "repro"
)

func TestTables(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-tables"}, &out, &bytes.Buffer{}); code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{
		"Table I", "Table II", "Table III",
		"Δ⁴ = 19, Δ³ = 15", "Δ⁴ = 20, Δ³ = 16", "p(4) = 5",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestFig2SmallWithCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fig.csv")
	var out bytes.Buffer
	code := run([]string{"-fig2", "-m", "2", "-sets", "5", "-csv", path}, &out, &bytes.Buffer{})
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "utilization,FP-ideal,LP-ILP,LP-max\n") {
		t.Errorf("bad CSV: %q", string(data)[:40])
	}
}

func TestGroup2Small(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-group2", "-m", "2", "-sets", "5"}, &out, &bytes.Buffer{}); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "gap") {
		t.Errorf("missing gap summary:\n%s", out.String())
	}
}

func TestVariantsSmall(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-variants", "-m", "2", "-sets", "5"}, &out, &bytes.Buffer{}); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "finalNPR") {
		t.Errorf("missing variants output:\n%s", out.String())
	}
}

func TestPessimismSmall(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-pessimism", "-m", "2", "-u", "1.2", "-sets", "5"}, &out, &bytes.Buffer{}); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "pessimism") {
		t.Errorf("missing pessimism output:\n%s", out.String())
	}
}

func TestTimingSmall(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-timing", "-sets", "2"}, &out, &bytes.Buffer{}); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "avg/set") {
		t.Errorf("missing timing table:\n%s", out.String())
	}
}

// TestCampaignByteIdenticalAcrossWorkers is the acceptance contract of
// the orchestrator: -workers 1 and -workers N produce byte-identical
// JSONL for the same campaign seed.
func TestCampaignByteIdenticalAcrossWorkers(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.jsonl")
	b := filepath.Join(dir, "b.jsonl")
	base := []string{"-campaign", "-ms", "2,4", "-ufracs", "0.3,0.6", "-sets", "3",
		"-scenarios", "mixed,wide", "-seed", "99"}
	var out bytes.Buffer
	if code := run(append(base, "-workers", "1", "-jsonl", a), &out, &bytes.Buffer{}); code != 0 {
		t.Fatalf("exit %d:\n%s", code, out.String())
	}
	if code := run(append(base, "-workers", "8", "-shards", "3", "-jsonl", b), &out, &bytes.Buffer{}); code != 0 {
		t.Fatalf("exit %d:\n%s", code, out.String())
	}
	da, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(da) == 0 || !bytes.Equal(da, db) {
		t.Errorf("JSONL differs between -workers 1 and -workers 8 (%d vs %d bytes)", len(da), len(db))
	}
}

// TestCampaignClusterFlag runs the same campaign locally and through
// -cluster against two in-process worker nodes (wired via the public
// facade, like cmd/lpdag-serve): the JSONL files must be byte-equal.
func TestCampaignClusterFlag(t *testing.T) {
	newWorker := func() *httptest.Server {
		eng := lpdag.NewEngine(lpdag.EngineConfig{Workers: 2})
		t.Cleanup(eng.Close)
		srv := lpdag.NewEngineServer(eng, lpdag.ServerConfig{})
		mux := http.NewServeMux()
		mux.Handle("/v1/shard", lpdag.NewShardWorkerHandler(eng, lpdag.ClusterWorkerConfig{Load: srv}))
		mux.Handle("/", srv)
		ts := httptest.NewServer(mux)
		t.Cleanup(ts.Close)
		return ts
	}
	w1, w2 := newWorker(), newWorker()

	dir := t.TempDir()
	local := filepath.Join(dir, "local.jsonl")
	remote := filepath.Join(dir, "remote.jsonl")
	base := []string{"-campaign", "-ms", "2,4", "-ufracs", "0.3,0.6", "-sets", "3",
		"-scenarios", "mixed,light", "-seed", "99"}
	var out bytes.Buffer
	if code := run(append(base, "-workers", "1", "-jsonl", local), &out, &bytes.Buffer{}); code != 0 {
		t.Fatalf("local exit %d:\n%s", code, out.String())
	}
	var errBuf bytes.Buffer
	if code := run(append(base, "-cluster", w1.URL+","+w2.URL, "-jsonl", remote), &out, &errBuf); code != 0 {
		t.Fatalf("cluster exit %d:\n%s%s", code, out.String(), errBuf.String())
	}
	da, err := os.ReadFile(local)
	if err != nil {
		t.Fatal(err)
	}
	db, err := os.ReadFile(remote)
	if err != nil {
		t.Fatal(err)
	}
	if len(da) == 0 || !bytes.Equal(da, db) {
		t.Errorf("cluster JSONL differs from local (%d vs %d bytes)", len(da), len(db))
	}

	// A cluster of only unreachable workers must fail, not hang.
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	code := run([]string{"-campaign", "-ms", "2", "-ufracs", "0.5", "-sets", "1",
		"-cluster", dead.URL, "-lease-timeout", "500ms"}, &out, &errBuf)
	if code == 0 {
		t.Error("campaign against dead cluster should fail")
	}
}

func TestCampaignSummaryAndCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.csv")
	var out bytes.Buffer
	code := run([]string{"-campaign", "-ms", "2", "-ufracs", "0.4,0.8", "-sets", "2",
		"-scenarios", "mixed", "-csv", path}, &out, &bytes.Buffer{})
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "campaign: 2 points") {
		t.Errorf("missing summary:\n%s", out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "index,scenario,m,u,sets,") {
		t.Errorf("bad campaign CSV header: %q", string(data))
	}
}

func TestCampaignResumeFlag(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.jsonl")
	base := []string{"-campaign", "-ms", "2", "-ufracs", "0.4,0.8", "-sets", "2", "-seed", "5"}
	if code := run(append(base, "-jsonl", full), &bytes.Buffer{}, &bytes.Buffer{}); code != 0 {
		t.Fatalf("exit %d", code)
	}
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	partial := filepath.Join(dir, "partial.jsonl")
	if err := os.WriteFile(partial, []byte(lines[0]), 0o644); err != nil {
		t.Fatal(err)
	}
	resumed := filepath.Join(dir, "resumed.jsonl")
	var errBuf bytes.Buffer
	if code := run(append(base, "-resume", partial, "-jsonl", resumed), &bytes.Buffer{}, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	got, err := os.ReadFile(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("resumed campaign JSONL differs from the uninterrupted run")
	}
	if !strings.Contains(errBuf.String(), "resuming: 1 points") {
		t.Errorf("missing resume note: %s", errBuf.String())
	}
}

// TestCampaignJSONLStdoutIsPure: with -jsonl -, stdout must be a clean
// JSONL stream (the summary moves to stderr) so it can feed -resume.
func TestCampaignJSONLStdoutIsPure(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-campaign", "-ms", "2", "-ufracs", "0.4,0.8", "-sets", "2",
		"-jsonl", "-"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for i, line := range strings.Split(strings.TrimRight(out.String(), "\n"), "\n") {
		if !strings.HasPrefix(line, "{") {
			t.Fatalf("stdout line %d is not JSON: %q", i+1, line)
		}
	}
	if !strings.Contains(errBuf.String(), "campaign: 2 points") {
		t.Errorf("summary missing from stderr: %s", errBuf.String())
	}
}

// TestCampaignResumeForeignFileRejected: resuming with a file from a
// different campaign must fail, not silently corrupt output.
func TestCampaignResumeForeignFileRejected(t *testing.T) {
	dir := t.TempDir()
	foreign := filepath.Join(dir, "foreign.jsonl")
	if code := run([]string{"-campaign", "-ms", "4", "-ufracs", "0.9", "-sets", "5", "-seed", "1",
		"-scenarios", "wide", "-jsonl", foreign}, &bytes.Buffer{}, &bytes.Buffer{}); code != 0 {
		t.Fatalf("exit %d", code)
	}
	var errBuf bytes.Buffer
	if code := run([]string{"-campaign", "-ms", "2", "-ufracs", "0.5", "-sets", "2", "-seed", "9",
		"-resume", foreign}, &bytes.Buffer{}, &errBuf); code != 1 {
		t.Fatalf("foreign resume exited %d, want 1 (%s)", code, errBuf.String())
	}
}

func TestSoundnessSmall(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-soundness", "-points", "16"}, &out, &bytes.Buffer{}); code != 0 {
		t.Fatalf("exit %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "0 violations") {
		t.Errorf("soundness summary missing:\n%s", out.String())
	}
}

func TestListScenarios(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-list-scenarios"}, &out, &bytes.Buffer{}); code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"mixed", "wide", "deep", "npr-fine", "heavy"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("scenario list missing %q", want)
		}
	}
}

func TestCampaignBadFlags(t *testing.T) {
	for name, args := range map[string][]string{
		"bad ms":       {"-campaign", "-ms", "2,x"},
		"bad ufracs":   {"-campaign", "-ufracs", "0.1,?"},
		"bad scenario": {"-campaign", "-scenarios", "bogus"},
	} {
		if code := run(args, &bytes.Buffer{}, &bytes.Buffer{}); code != 2 {
			t.Errorf("%s: exit %d, want 2", name, code)
		}
	}
	if code := run([]string{"-campaign", "-ms", "2", "-ufracs", "0.4", "-sets", "1",
		"-resume", "/nonexistent-xyz.jsonl"}, &bytes.Buffer{}, &bytes.Buffer{}); code != 1 {
		t.Error("missing resume file not reported")
	}
}

func TestNoActionShowsUsage(t *testing.T) {
	if code := run([]string{}, &bytes.Buffer{}, &bytes.Buffer{}); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestBadFlagsAndBackend(t *testing.T) {
	if code := run([]string{"-badflag"}, &bytes.Buffer{}, &bytes.Buffer{}); code != 2 {
		t.Error("bad flag accepted")
	}
	if code := run([]string{"-tables", "-backend", "bogus"}, &bytes.Buffer{}, &bytes.Buffer{}); code != 2 {
		t.Error("bad backend accepted")
	}
	if code := run([]string{"-fig2", "-m", "2", "-sets", "2", "-csv", "/nonexistent-dir-xyz/x.csv"},
		&bytes.Buffer{}, &bytes.Buffer{}); code != 1 {
		t.Error("unwritable CSV path not reported")
	}
}

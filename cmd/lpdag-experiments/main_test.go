package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTables(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-tables"}, &out, &bytes.Buffer{}); code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{
		"Table I", "Table II", "Table III",
		"Δ⁴ = 19, Δ³ = 15", "Δ⁴ = 20, Δ³ = 16", "p(4) = 5",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestFig2SmallWithCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fig.csv")
	var out bytes.Buffer
	code := run([]string{"-fig2", "-m", "2", "-sets", "5", "-csv", path}, &out, &bytes.Buffer{})
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "utilization,FP-ideal,LP-ILP,LP-max\n") {
		t.Errorf("bad CSV: %q", string(data)[:40])
	}
}

func TestGroup2Small(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-group2", "-m", "2", "-sets", "5"}, &out, &bytes.Buffer{}); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "gap") {
		t.Errorf("missing gap summary:\n%s", out.String())
	}
}

func TestVariantsSmall(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-variants", "-m", "2", "-sets", "5"}, &out, &bytes.Buffer{}); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "finalNPR") {
		t.Errorf("missing variants output:\n%s", out.String())
	}
}

func TestPessimismSmall(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-pessimism", "-m", "2", "-u", "1.2", "-sets", "5"}, &out, &bytes.Buffer{}); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "pessimism") {
		t.Errorf("missing pessimism output:\n%s", out.String())
	}
}

func TestTimingSmall(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-timing", "-sets", "2"}, &out, &bytes.Buffer{}); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "avg/set") {
		t.Errorf("missing timing table:\n%s", out.String())
	}
}

func TestNoActionShowsUsage(t *testing.T) {
	if code := run([]string{}, &bytes.Buffer{}, &bytes.Buffer{}); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestBadFlagsAndBackend(t *testing.T) {
	if code := run([]string{"-badflag"}, &bytes.Buffer{}, &bytes.Buffer{}); code != 2 {
		t.Error("bad flag accepted")
	}
	if code := run([]string{"-tables", "-backend", "bogus"}, &bytes.Buffer{}, &bytes.Buffer{}); code != 2 {
		t.Error("bad backend accepted")
	}
	if code := run([]string{"-fig2", "-m", "2", "-sets", "2", "-csv", "/nonexistent-dir-xyz/x.csv"},
		&bytes.Buffer{}, &bytes.Buffer{}); code != 1 {
		t.Error("unwritable CSV path not reported")
	}
}

// Command lpdag-experiments regenerates the tables and figures of the
// evaluation of Serrano et al. (DATE 2016), plus the extension studies
// of this reproduction (analysis-variant ablation and the
// analysis-vs-simulation pessimism gap).
//
// Usage:
//
//	lpdag-experiments -tables                 # Tables I, II, III
//	lpdag-experiments -fig2 -m 4 -sets 300    # Figure 2(a), full scale
//	lpdag-experiments -fig2 -m 8 -sets 50 -csv fig2b.csv
//	lpdag-experiments -group2 -m 4 -sets 100  # Section VI-B, group 2
//	lpdag-experiments -tasks-sweep -m 16      # Fig 2(c), alt. reading
//	lpdag-experiments -timing                 # Section VI-B runtimes
//	lpdag-experiments -variants -m 4          # refinement/ablation study
//	lpdag-experiments -pessimism -m 4 -u 2    # analysis vs simulation
//	lpdag-experiments -all -sets 50           # everything, reduced size
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lpdag-experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		tables     = fs.Bool("tables", false, "print Tables I, II and III")
		fig2       = fs.Bool("fig2", false, "run the Figure 2 utilization sweep")
		group2     = fs.Bool("group2", false, "run the group-2 (uniformly parallel) sweep")
		tasksSweep = fs.Bool("tasks-sweep", false, "run the task-count sweep (Figure 2(c) alternative reading)")
		timing     = fs.Bool("timing", false, "measure analysis runtimes for m = 4, 8, 16")
		variants   = fs.Bool("variants", false, "run the analysis-variant ablation (final-NPR refinement, repeated-blocking term)")
		pessimism  = fs.Bool("pessimism", false, "run the analysis-vs-simulation pessimism study")
		all        = fs.Bool("all", false, "run everything")
		m          = fs.Int("m", 4, "cores for the sweeps")
		u          = fs.Float64("u", 2.0, "utilization for -pessimism")
		sets       = fs.Int("sets", 300, "task sets per grid point (paper: 300)")
		seed       = fs.Int64("seed", 2016, "base random seed")
		seqProb    = fs.Float64("seqprob", 0, "override mixed-group sequential-task probability")
		csvPath    = fs.String("csv", "", "also write the active sweep as CSV to this file")
		backend    = fs.String("backend", "combinatorial", "LP-ILP solver: combinatorial | paper-ilp")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var be core.Backend
	switch *backend {
	case "combinatorial":
		be = core.Combinatorial
	case "paper-ilp":
		be = core.PaperILP
	default:
		fmt.Fprintf(stderr, "lpdag-experiments: unknown backend %q\n", *backend)
		return 2
	}

	ran := false
	if *tables || *all {
		ran = true
		fmt.Fprintln(stdout, experiments.TableIText())
		fmt.Fprintln(stdout, experiments.TableIIText())
		fmt.Fprintln(stdout, experiments.TableIIIText())
	}
	if *fig2 || *all {
		ran = true
		cfg := experiments.PaperFig2Config(*m, *sets, *seed)
		cfg.Backend = be
		cfg.SeqProbOverride = *seqProb
		points := experiments.Figure2(cfg)
		title := fmt.Sprintf("Figure 2: %% schedulable task sets, m=%d (group 1, %d sets/point)", *m, *sets)
		fmt.Fprintln(stdout, experiments.CurveChart(title, points))
		fmt.Fprintln(stdout, experiments.CurveCSV(points))
		if issues := experiments.CheckCurveShape(points); len(issues) > 0 {
			fmt.Fprintln(stdout, "shape notes:")
			for _, s := range issues {
				fmt.Fprintln(stdout, "  -", s)
			}
		} else {
			fmt.Fprintln(stdout, "shape check: all qualitative properties of the paper hold")
		}
		if code := writeCSV(stderr, *csvPath, experiments.CurveCSV(points)); code != 0 {
			return code
		}
	}
	if *group2 || *all {
		ran = true
		cfg := experiments.PaperFig2Config(*m, *sets, *seed+1)
		cfg.Backend = be
		res := experiments.Group2(cfg)
		title := fmt.Sprintf("Group 2 (uniformly parallel), m=%d", *m)
		fmt.Fprintln(stdout, experiments.CurveChart(title, res.Points))
		fmt.Fprintf(stdout, "LP-ILP vs LP-max gap: mean %.2f%%, max %.2f%% (paper: \"very similar\")\n\n",
			res.MeanGap, res.MaxGap)
		if code := writeCSV(stderr, *csvPath, experiments.CurveCSV(res.Points)); code != 0 {
			return code
		}
	}
	if *tasksSweep || *all {
		ran = true
		cfg := experiments.TasksSweepConfig{
			M: *m, U: float64(*m) / 4, NStart: 2, NEnd: 16,
			SetsPerPoint: *sets, Seed: *seed + 2, Backend: be,
		}
		points := experiments.TasksSweep(cfg)
		fmt.Fprintf(stdout, "Task-count sweep (Figure 2(c) alternative reading), m=%d, U=%.1f\n",
			cfg.M, cfg.U)
		fmt.Fprint(stdout, experiments.TasksSweepCSV(points))
		fmt.Fprintln(stdout)
		if code := writeCSV(stderr, *csvPath, experiments.TasksSweepCSV(points)); code != 0 {
			return code
		}
	}
	if *variants || *all {
		ran = true
		cfg := experiments.PaperFig2Config(*m, *sets, *seed+4)
		cfg.Backend = be
		points := experiments.Variants(cfg)
		fmt.Fprintf(stdout, "Analysis-variant ablation, m=%d (%% schedulable)\n", *m)
		fmt.Fprint(stdout, experiments.VariantsCSV(points))
		fmt.Fprintln(stdout, "\n(+finalNPR = future-work (ii) refinement, sound;")
		fmt.Fprintln(stdout, " -noRepeatBlocking drops p·Δ^{m-1}, diagnostic only)")
		fmt.Fprintln(stdout)
		if code := writeCSV(stderr, *csvPath, experiments.VariantsCSV(points)); code != 0 {
			return code
		}
	}
	if *pessimism || *all {
		ran = true
		res := experiments.Pessimism(experiments.PessimismConfig{
			M: *m, U: *u, Sets: *sets, Seed: *seed + 5, Backend: be,
		})
		fmt.Fprintf(stdout, "Pessimism study, m=%d U=%.2f: %d sets, %d accepted, %d rejected,\n",
			*m, *u, res.Sets, res.Accepted, res.Rejected)
		fmt.Fprintf(stdout, "%d rejected sets survive synchronous-periodic simulation\n", res.RejectedAlive)
		fmt.Fprintf(stdout, "=> analysis pessimism at this point is at most %.1f%% of all sets\n", res.UpperBoundPct)
		fmt.Fprintln(stdout, "(simulation is a necessary test only; the true gap is smaller)")
		fmt.Fprintln(stdout)
	}
	if *timing || *all {
		ran = true
		res := experiments.Timing(experiments.TimingConfig{
			Ms: []int{4, 8, 16}, Sets: minInt(*sets, 20), Seed: *seed + 3, Backend: be,
		})
		fmt.Fprintln(stdout, "Analysis runtime (Section VI-B):")
		fmt.Fprint(stdout, experiments.TimingTable(res))
	}
	if !ran {
		fs.Usage()
		return 2
	}
	return 0
}

func writeCSV(stderr io.Writer, path, content string) int {
	if path == "" {
		return 0
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		fmt.Fprintf(stderr, "lpdag-experiments: writing %s: %v\n", path, err)
		return 1
	}
	fmt.Fprintf(stderr, "wrote %s\n", path)
	return 0
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

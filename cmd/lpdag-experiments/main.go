// Command lpdag-experiments regenerates the tables and figures of the
// evaluation of Serrano et al. (DATE 2016), plus the extension studies
// of this reproduction (analysis-variant ablation and the
// analysis-vs-simulation pessimism gap).
//
// Usage:
//
//	lpdag-experiments -tables                 # Tables I, II, III
//	lpdag-experiments -fig2 -m 4 -sets 300    # Figure 2(a), full scale
//	lpdag-experiments -fig2 -m 8 -sets 50 -csv fig2b.csv
//	lpdag-experiments -group2 -m 4 -sets 100  # Section VI-B, group 2
//	lpdag-experiments -tasks-sweep -m 16      # Fig 2(c), alt. reading
//	lpdag-experiments -timing                 # Section VI-B runtimes
//	lpdag-experiments -variants -m 4          # refinement/ablation study
//	lpdag-experiments -pessimism -m 4 -u 2    # analysis vs simulation
//	lpdag-experiments -all -sets 50           # everything, reduced size
//
// The extended campaign orchestrator sweeps scenario families × core
// counts × utilizations in parallel, streaming results as JSON lines
// (byte-identical for any -workers / -shards):
//
//	lpdag-experiments -campaign -scenarios mixed,wide,deep \
//	    -ms 4,8,16,32,64 -sets 100 -workers 8 -jsonl out.jsonl -progress
//	lpdag-experiments -campaign -resume out.partial.jsonl -jsonl out.jsonl
//	lpdag-experiments -campaign -cluster http://host1:8080,http://host2:8080 \
//	    -jsonl out.jsonl        # same bytes, computed on remote workers
//	lpdag-experiments -soundness -points 2000   # sim-vs-analysis harness
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/experiments/cluster"
	"repro/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lpdag-experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		tables     = fs.Bool("tables", false, "print Tables I, II and III")
		fig2       = fs.Bool("fig2", false, "run the Figure 2 utilization sweep")
		group2     = fs.Bool("group2", false, "run the group-2 (uniformly parallel) sweep")
		tasksSweep = fs.Bool("tasks-sweep", false, "run the task-count sweep (Figure 2(c) alternative reading)")
		timing     = fs.Bool("timing", false, "measure analysis runtimes for m = 4, 8, 16")
		variants   = fs.Bool("variants", false, "run the analysis-variant ablation (final-NPR refinement, repeated-blocking term)")
		pessimism  = fs.Bool("pessimism", false, "run the analysis-vs-simulation pessimism study")
		all        = fs.Bool("all", false, "run everything")
		m          = fs.Int("m", 4, "cores for the sweeps")
		u          = fs.Float64("u", 2.0, "utilization for -pessimism")
		sets       = fs.Int("sets", 300, "task sets per grid point (paper: 300)")
		seed       = fs.Int64("seed", 2016, "base random seed")
		seqProb    = fs.Float64("seqprob", 0, "override mixed-group sequential-task probability")
		csvPath    = fs.String("csv", "", "also write the active sweep as CSV to this file")
		backend    = fs.String("backend", "combinatorial", "LP-ILP solver: combinatorial | paper-ilp")

		campaign  = fs.Bool("campaign", false, "run the parallel sharded sweep campaign")
		ms        = fs.String("ms", "4,8,16", "campaign core counts (comma-separated, up to 64)")
		ufracs    = fs.String("ufracs", "0.1,0.2,0.3,0.4,0.5,0.6,0.7,0.8,0.9", "campaign utilizations as fractions of m")
		scenarios = fs.String("scenarios", "mixed", "campaign scenario families (comma-separated; see -list-scenarios)")
		listScen  = fs.Bool("list-scenarios", false, "list the scenario registry and exit")
		workers   = fs.Int("workers", 0, "campaign worker goroutines (0 = GOMAXPROCS)")
		shards    = fs.Int("shards", 0, "campaign shard count (0 = auto; never affects results)")
		jsonlPath = fs.String("jsonl", "", "stream campaign results as JSON lines to this file (- = stdout)")
		resume    = fs.String("resume", "", "resume a campaign from a partial JSONL file (same seed and grid)")
		progress  = fs.Bool("progress", false, "report campaign progress and ETA on stderr")

		clusterHosts = fs.String("cluster", "", "run the campaign on remote lpdag-serve workers (comma-separated base URLs, e.g. http://host1:8080,http://host2:8080); output is byte-identical to a local run")
		leaseTimeout = fs.Duration("lease-timeout", cluster.DefaultLeaseTimeout, "cluster shard lease: max stream silence before requeueing to another worker")
		shardRetries = fs.Int("shard-retries", cluster.DefaultMaxShardRetries, "cluster shard lease: failure requeues per shard before the campaign fails")
		maxLease     = fs.Int("max-lease-points", cluster.DefaultMaxShardPoints, "cluster shard lease: points per lease, at most the smallest -max-shard-points across the workers")
		noBinary     = fs.Bool("no-binary", false, "cluster: force JSONL shard streams instead of the negotiated binary wire codec (output bytes are identical either way)")

		soundness = fs.Bool("soundness", false, "run the simulation-vs-analysis soundness harness")
		points    = fs.Int("points", 1000, "generated points for -soundness")

		metricsAddr = fs.String("metrics-addr", "", "serve GET /metrics (Prometheus text) on this address while the run is active; empty = disabled")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// A long campaign (local or coordinating a cluster) is watchable
	// from outside: -metrics-addr serves the lpdag_campaign_* and
	// lpdag_cluster_lease_* series on a side listener for its duration.
	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		reg.RegisterRuntime(time.Now())
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintf(stderr, "lpdag-experiments: -metrics-addr: %v\n", err)
			return 2
		}
		defer mln.Close()
		mmux := http.NewServeMux()
		mmux.Handle("GET /metrics", reg.Handler())
		fmt.Fprintf(stderr, "lpdag-experiments: metrics on http://%s/metrics\n", mln.Addr())
		msrv := &http.Server{Handler: mmux, ReadHeaderTimeout: 10 * time.Second}
		go msrv.Serve(mln)
	}

	var be core.Backend
	switch *backend {
	case "combinatorial":
		be = core.Combinatorial
	case "paper-ilp":
		be = core.PaperILP
	default:
		fmt.Fprintf(stderr, "lpdag-experiments: unknown backend %q\n", *backend)
		return 2
	}

	if *listScen {
		fmt.Fprintln(stdout, "scenario families:")
		for _, sc := range experiments.StandardScenarios() {
			fmt.Fprintf(stdout, "  %-12s group=%v shape=%v", sc.Name, sc.Group, sc.Shape)
			if sc.Beta > 0 || sc.UMax > 0 {
				fmt.Fprintf(stdout, " u∈[%.2g,%.2g]", sc.Beta, sc.UMax)
			}
			if sc.NPRSplit > 0 {
				fmt.Fprintf(stdout, " npr-split=%d", sc.NPRSplit)
			}
			if sc.NPRCoarsen > 0 {
				fmt.Fprintf(stdout, " npr-coarsen=%d", sc.NPRCoarsen)
			}
			fmt.Fprintln(stdout)
		}
		return 0
	}

	ran := false
	if *campaign {
		ran = true
		code := runCampaign(campaignArgs{
			seed: *seed, ms: *ms, ufracs: *ufracs, scenarios: *scenarios,
			sets: *sets, workers: *workers, shards: *shards, backend: be,
			jsonlPath: *jsonlPath, csvPath: *csvPath, resume: *resume,
			progress: *progress, cluster: *clusterHosts,
			leaseTimeout: *leaseTimeout, shardRetries: *shardRetries,
			maxLease: *maxLease, noBinary: *noBinary, obs: reg,
		}, stdout, stderr)
		if code != 0 {
			return code
		}
	}
	if *soundness {
		ran = true
		rep, err := experiments.RunSoundness(experiments.SoundnessConfig{
			Seed: *seed, Points: *points, Backend: be, Workers: *workers,
		})
		if err != nil {
			fmt.Fprintf(stderr, "lpdag-experiments: soundness: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "soundness: %d points, %d analyses, %d simulations, %d violations\n",
			rep.Points, rep.Analyses, rep.Sims, rep.TotalViolations)
		if rep.TotalViolations > 0 {
			for _, v := range rep.Violations {
				fmt.Fprintf(stdout, "  VIOLATION %s\n", v)
			}
			return 1
		}
	}
	if *tables || *all {
		ran = true
		fmt.Fprintln(stdout, experiments.TableIText())
		fmt.Fprintln(stdout, experiments.TableIIText())
		fmt.Fprintln(stdout, experiments.TableIIIText())
	}
	if *fig2 || *all {
		ran = true
		cfg := experiments.PaperFig2Config(*m, *sets, *seed)
		cfg.Backend = be
		cfg.SeqProbOverride = *seqProb
		points := experiments.Figure2(cfg)
		title := fmt.Sprintf("Figure 2: %% schedulable task sets, m=%d (group 1, %d sets/point)", *m, *sets)
		fmt.Fprintln(stdout, experiments.CurveChart(title, points))
		fmt.Fprintln(stdout, experiments.CurveCSV(points))
		if issues := experiments.CheckCurveShape(points); len(issues) > 0 {
			fmt.Fprintln(stdout, "shape notes:")
			for _, s := range issues {
				fmt.Fprintln(stdout, "  -", s)
			}
		} else {
			fmt.Fprintln(stdout, "shape check: all qualitative properties of the paper hold")
		}
		if code := writeCSV(stderr, *csvPath, experiments.CurveCSV(points)); code != 0 {
			return code
		}
	}
	if *group2 || *all {
		ran = true
		cfg := experiments.PaperFig2Config(*m, *sets, *seed+1)
		cfg.Backend = be
		res := experiments.Group2(cfg)
		title := fmt.Sprintf("Group 2 (uniformly parallel), m=%d", *m)
		fmt.Fprintln(stdout, experiments.CurveChart(title, res.Points))
		fmt.Fprintf(stdout, "LP-ILP vs LP-max gap: mean %.2f%%, max %.2f%% (paper: \"very similar\")\n\n",
			res.MeanGap, res.MaxGap)
		if code := writeCSV(stderr, *csvPath, experiments.CurveCSV(res.Points)); code != 0 {
			return code
		}
	}
	if *tasksSweep || *all {
		ran = true
		cfg := experiments.TasksSweepConfig{
			M: *m, U: float64(*m) / 4, NStart: 2, NEnd: 16,
			SetsPerPoint: *sets, Seed: *seed + 2, Backend: be,
		}
		points := experiments.TasksSweep(cfg)
		fmt.Fprintf(stdout, "Task-count sweep (Figure 2(c) alternative reading), m=%d, U=%.1f\n",
			cfg.M, cfg.U)
		fmt.Fprint(stdout, experiments.TasksSweepCSV(points))
		fmt.Fprintln(stdout)
		if code := writeCSV(stderr, *csvPath, experiments.TasksSweepCSV(points)); code != 0 {
			return code
		}
	}
	if *variants || *all {
		ran = true
		cfg := experiments.PaperFig2Config(*m, *sets, *seed+4)
		cfg.Backend = be
		points := experiments.Variants(cfg)
		fmt.Fprintf(stdout, "Analysis-variant ablation, m=%d (%% schedulable)\n", *m)
		fmt.Fprint(stdout, experiments.VariantsCSV(points))
		fmt.Fprintln(stdout, "\n(+finalNPR = future-work (ii) refinement, sound;")
		fmt.Fprintln(stdout, " -noRepeatBlocking drops p·Δ^{m-1}, diagnostic only)")
		fmt.Fprintln(stdout)
		if code := writeCSV(stderr, *csvPath, experiments.VariantsCSV(points)); code != 0 {
			return code
		}
	}
	if *pessimism || *all {
		ran = true
		res := experiments.Pessimism(experiments.PessimismConfig{
			M: *m, U: *u, Sets: *sets, Seed: *seed + 5, Backend: be,
		})
		fmt.Fprintf(stdout, "Pessimism study, m=%d U=%.2f: %d sets, %d accepted, %d rejected,\n",
			*m, *u, res.Sets, res.Accepted, res.Rejected)
		fmt.Fprintf(stdout, "%d rejected sets survive synchronous-periodic simulation\n", res.RejectedAlive)
		fmt.Fprintf(stdout, "=> analysis pessimism at this point is at most %.1f%% of all sets\n", res.UpperBoundPct)
		fmt.Fprintln(stdout, "(simulation is a necessary test only; the true gap is smaller)")
		fmt.Fprintln(stdout)
	}
	if *timing || *all {
		ran = true
		res := experiments.Timing(experiments.TimingConfig{
			Ms: []int{4, 8, 16}, Sets: min(*sets, 20), Seed: *seed + 3, Backend: be,
		})
		fmt.Fprintln(stdout, "Analysis runtime (Section VI-B):")
		fmt.Fprint(stdout, experiments.TimingTable(res))
	}
	if !ran {
		fs.Usage()
		return 2
	}
	return 0
}

// campaignArgs bundles the -campaign flag values.
type campaignArgs struct {
	seed                  int64
	ms, ufracs, scenarios string
	sets, workers, shards int
	backend               core.Backend
	jsonlPath, csvPath    string
	resume                string
	progress              bool
	cluster               string
	leaseTimeout          time.Duration
	shardRetries          int
	maxLease              int
	noBinary              bool
	obs                   *obs.Registry
}

func runCampaign(a campaignArgs, stdout, stderr io.Writer) int {
	msList, err := parseIntList(a.ms)
	if err != nil {
		fmt.Fprintf(stderr, "lpdag-experiments: -ms: %v\n", err)
		return 2
	}
	fracs, err := parseFloatList(a.ufracs)
	if err != nil {
		fmt.Fprintf(stderr, "lpdag-experiments: -ufracs: %v\n", err)
		return 2
	}
	var scens []experiments.Scenario
	for _, name := range strings.Split(a.scenarios, ",") {
		sc, err := experiments.ScenarioByName(strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintf(stderr, "lpdag-experiments: %v\n", err)
			return 2
		}
		scens = append(scens, sc)
	}
	cfg := experiments.CampaignConfig{
		Seed: a.seed, Ms: msList, UFracs: fracs, SetsPerPoint: a.sets,
		Scenarios: scens, Backend: a.backend, Workers: a.workers, Shards: a.shards,
	}

	opts := experiments.RunOptions{Obs: a.obs}
	if a.resume != "" {
		f, err := os.Open(a.resume)
		if err != nil {
			fmt.Fprintf(stderr, "lpdag-experiments: -resume: %v\n", err)
			return 1
		}
		prior, err := experiments.ReadCampaignJSONL(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "lpdag-experiments: -resume: %v\n", err)
			return 1
		}
		opts.Completed = prior
		fmt.Fprintf(stderr, "resuming: %d points carried over from %s\n", len(prior), a.resume)
	}

	var jsonlFile *os.File
	if a.jsonlPath == "-" {
		opts.JSONL = stdout
		// Keep stdout a pure JSONL stream (it must re-parse for
		// -resume): the human summary moves to stderr.
		stdout = stderr
	} else if a.jsonlPath != "" {
		jsonlFile, err = os.Create(a.jsonlPath)
		if err != nil {
			fmt.Fprintf(stderr, "lpdag-experiments: -jsonl: %v\n", err)
			return 1
		}
		defer jsonlFile.Close()
		opts.JSONL = jsonlFile
	}
	var csvFile *os.File
	if a.csvPath != "" {
		csvFile, err = os.Create(a.csvPath)
		if err != nil {
			fmt.Fprintf(stderr, "lpdag-experiments: -csv: %v\n", err)
			return 1
		}
		defer csvFile.Close()
		opts.CSV = csvFile
	}
	if a.progress {
		opts.OnProgress = func(p experiments.Progress) {
			fmt.Fprintf(stderr, "\rcampaign: %d/%d points (%.1f%%), elapsed %s, eta %s   ",
				p.Done, p.Total, 100*float64(p.Done)/float64(p.Total),
				p.Elapsed.Round(time.Second), p.ETA.Round(time.Second))
			if p.Done == p.Total {
				fmt.Fprintln(stderr)
			}
		}
	}

	var results []experiments.PointResult
	if a.cluster != "" {
		var urls []string
		for _, h := range strings.Split(a.cluster, ",") {
			if h = strings.TrimSpace(h); h != "" {
				urls = append(urls, strings.TrimRight(h, "/"))
			}
		}
		results, err = cluster.Run(cluster.Config{
			Campaign: cfg, Workers: urls,
			LeaseTimeout: a.leaseTimeout, MaxShardRetries: a.shardRetries,
			Shards: a.shards, MaxLeasePoints: a.maxLease, DisableBinary: a.noBinary,
		}, opts)
	} else {
		results, err = experiments.RunCampaign(cfg, opts)
	}
	if err != nil {
		fmt.Fprintf(stderr, "lpdag-experiments: campaign: %v\n", err)
		return 1
	}

	// Compact per-(scenario, m) summary: LP-ILP schedulability at the
	// ends of the utilization grid.
	fmt.Fprintf(stdout, "campaign: %d points (%d scenarios × %d core counts × %d utilizations), %d sets/point\n",
		len(results), len(scens), len(msList), len(fracs), cfg.SetsPerPoint)
	method := core.LPILP.String()
	fmt.Fprintf(stdout, "%-12s %4s %22s\n", "scenario", "m", method+" % (U low → high)")
	perKey := map[string][]experiments.PointResult{}
	var order []string
	for _, r := range results {
		key := fmt.Sprintf("%-12s %4d", r.Scenario, r.M)
		if _, ok := perKey[key]; !ok {
			order = append(order, key)
		}
		perKey[key] = append(perKey[key], r)
	}
	for _, key := range order {
		rs := perKey[key]
		first, last := rs[0], rs[len(rs)-1]
		fmt.Fprintf(stdout, "%s %10.1f → %.1f\n", key, first.Pct(method), last.Pct(method))
	}
	return 0
}

func parseIntList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloatList(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func writeCSV(stderr io.Writer, path, content string) int {
	if path == "" {
		return 0
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		fmt.Fprintf(stderr, "lpdag-experiments: writing %s: %v\n", path, err)
		return 1
	}
	fmt.Fprintf(stderr, "wrote %s\n", path)
	return 0
}

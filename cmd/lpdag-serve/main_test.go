package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	lpdag "repro"
)

// syncBuffer is a bytes.Buffer safe for the concurrent writes the
// serving goroutine makes while the test polls it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var addrRE = regexp.MustCompile(`listening on (\S+)`)

// startServer runs the command on an ephemeral port and returns its
// base URL plus a shutdown function that waits for a clean exit.
func startServer(t *testing.T, args ...string) (string, func() int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var stdout, stderr syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), &stdout, &stderr)
	}()
	deadline := time.Now().Add(5 * time.Second)
	var addr string
	for time.Now().Before(deadline) {
		if m := addrRE.FindStringSubmatch(stderr.String()); m != nil {
			addr = m[1]
			break
		}
		select {
		case code := <-done:
			t.Fatalf("server exited early with %d: %s", code, stderr.String())
		case <-time.After(5 * time.Millisecond):
		}
	}
	if addr == "" {
		cancel()
		t.Fatalf("server never reported its address: %s", stderr.String())
	}
	return "http://" + addr, func() int {
		cancel()
		select {
		case code := <-done:
			return code
		case <-time.After(5 * time.Second):
			t.Fatal("server did not shut down")
			return -1
		}
	}
}

func TestServeEndToEnd(t *testing.T) {
	base, shutdown := startServer(t, "-workers", "2")

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	raw, err := lpdag.PaperExample().MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"cores": 4, "requests": [{"taskset": %s}]}`, raw)
	resp, err = http.Post(base+"/v1/analyze", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: %d: %s", resp.StatusCode, data)
	}
	var parsed struct {
		Results []struct {
			Error       string `json:"error"`
			Schedulable bool   `json:"schedulable"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatalf("decode: %v: %s", err, data)
	}
	want, err := lpdag.Analyze(lpdag.PaperExample(), 4, lpdag.LPILP)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Results) != 1 || parsed.Results[0].Error != "" ||
		parsed.Results[0].Schedulable != want.Schedulable {
		t.Fatalf("analyze result drifted: %s", data)
	}

	// The campaign orchestrator is mounted beside the engine endpoints:
	// a small sweep must stream parseable ndjson.
	resp, err = http.Post(base+"/v1/campaign", "application/json", strings.NewReader(
		`{"seed":3,"ms":[2],"u_fracs":[0.5],"sets_per_point":2,"scenarios":["mixed"]}`))
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("campaign: %d: %s", resp.StatusCode, data)
	}
	var point struct {
		Index int            `json:"index"`
		Sched map[string]int `json:"sched"`
	}
	if err := json.Unmarshal(bytes.TrimSpace(data), &point); err != nil {
		t.Fatalf("campaign line: %v: %s", err, data)
	}
	if len(point.Sched) != 3 {
		t.Fatalf("campaign point has %d methods: %s", len(point.Sched), data)
	}

	if code := shutdown(); code != 0 {
		t.Fatalf("exit code %d, want 0", code)
	}
}

// TestServeShardAndDrain exercises the cluster-worker surface of the
// server: /v1/shard streams a leased subset as campaign JSONL, and
// once shutdown begins (with -drain-grace holding the listener open)
// /healthz flips to 503 "draining" while new shard leases are refused.
func TestServeShardAndDrain(t *testing.T) {
	base, shutdown := startServer(t, "-workers", "2", "-drain-grace", "1s", "-heartbeat", "100ms")

	resp, err := http.Post(base+"/v1/shard", "application/json", strings.NewReader(
		`{"campaign": {"seed": 3, "ms": [2], "u_fracs": [0.4, 0.8], "sets_per_point": 2, "scenarios": ["mixed"]}, "points": [0, 1]}`))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shard: %d: %s", resp.StatusCode, data)
	}
	results, err := lpdag.ReadCampaignJSONL(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("shard stream: %v: %s", err, data)
	}
	if len(results) != 2 || results[0].Index != 0 || results[1].Index != 1 {
		t.Fatalf("shard results drifted: %s", data)
	}

	// Begin shutdown in the background; during the grace window the
	// listener stays open and must report draining + refuse leases.
	exited := make(chan int, 1)
	go func() { exited <- shutdown() }()
	sawDraining := false
	for deadline := time.Now().Add(900 * time.Millisecond); time.Now().Before(deadline); {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			break // grace elapsed, listener gone
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable && strings.Contains(string(body), "draining") {
			sawDraining = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !sawDraining {
		t.Error("healthz never reported draining during the grace window")
	}
	if resp, err := http.Post(base+"/v1/shard", "application/json",
		strings.NewReader(`{"campaign": {"seed": 1}, "points": [0]}`)); err == nil {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("draining shard lease: %d: %s", resp.StatusCode, body)
		}
	}
	if code := <-exited; code != 0 {
		t.Fatalf("exit code %d, want 0", code)
	}
}

func TestUsageErrors(t *testing.T) {
	var stdout, stderr syncBuffer
	if code := run(context.Background(), []string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	if code := run(context.Background(), []string{"-addr", "256.0.0.1:http"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad addr: exit %d, want 2", code)
	}
}

// TestPprofOptIn pins the profiling surface: off by default (nothing
// listens, nothing is mounted on the service mux), served on the
// separate -pprof-addr listener when asked.
func TestPprofOptIn(t *testing.T) {
	base, shutdown := startServer(t, "-workers", "1")
	resp, err := http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("pprof reachable on the service address without -pprof-addr")
	}
	shutdown()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout, stderr syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "1",
			"-pprof-addr", "127.0.0.1:0"}, &stdout, &stderr)
	}()
	pprofRE := regexp.MustCompile(`pprof on (\S+)/debug/pprof/`)
	deadline := time.Now().Add(5 * time.Second)
	var paddr string
	for time.Now().Before(deadline) && paddr == "" {
		if m := pprofRE.FindStringSubmatch(stderr.String()); m != nil {
			paddr = m[1]
		}
		time.Sleep(5 * time.Millisecond)
	}
	if paddr == "" {
		t.Fatalf("pprof address never reported: %s", stderr.String())
	}
	resp, err = http.Get("http://" + paddr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("goroutine")) {
		t.Errorf("pprof index: status %d body %.80s", resp.StatusCode, body)
	}
	cancel()
	if code := <-done; code != 0 {
		t.Fatalf("exit code %d, want 0", code)
	}
}

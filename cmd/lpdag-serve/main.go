// Command lpdag-serve runs the concurrent analysis engine as an HTTP
// service: a bounded worker pool over the response-time analysis of
// Serrano et al. (DATE 2016) with a shared content-addressed cache, so
// repeated and concurrent requests for structurally identical task
// graphs compute the expensive blocking terms once.
//
// Usage:
//
//	lpdag-serve -addr :8080 -workers 8
//
// Endpoints:
//
//	POST /v1/analyze   batch response-time analysis
//	POST /v1/simulate  discrete-event scheduler simulation
//	POST /v1/generate  random task-set generation
//	POST /v1/campaign  sweep campaign, streamed as JSON lines
//	POST /v1/shard     cluster worker: compute a leased campaign shard
//	GET  /healthz      liveness probe ("ok", or "draining" + 503 once
//	                   SIGTERM drain begins) with worker load and live
//	                   session count
//	GET  /stats        engine + cache + worker counters
//	GET  /metrics      Prometheus text exposition: engine pool, cache,
//	                   sessions, campaign/cluster, HTTP, analysis traces
//
// /v1/analyze, /v1/shard and the session endpoints answer in a compact
// length-prefixed binary framing instead of JSON when the request
// carries "Accept: application/x-lpdag-bin" (see internal/wire; error
// responses stay JSON).
//
// Stateful what-if / admission-control sessions (each holds a task set
// server-side and re-analyzes incrementally per edit; see DESIGN.md,
// "Sessions"):
//
//	POST   /v1/sessions                   create (taskset + options) → id
//	GET    /v1/sessions/{id}/report       current report
//	POST   /v1/sessions/{id}/edits        apply an edit batch → report
//	POST   /v1/sessions/{id}/admit        admission probe, no commit
//	POST   /v1/sessions/{id}/sensitivity  per-task WCET headroom
//	DELETE /v1/sessions/{id}              drop the session
//	POST   /v1/sessions/handoff           peer drain hand-off (binary
//	                                      snapshot frames, epoch-checked)
//
// Sessions become durable with -session-dir: every committed edit batch
// is snapshotted and fsynced to an append-only log before the response
// goes out, startup restores the unexpired sessions (TTL eviction
// tombstones the durable entry, so a restart never resurrects an
// expired id), and recovery tolerates a torn tail from a crash
// mid-append. With -self-url and -peers a static group of servers forms
// a consistent-hash ring over session ids: requests for sessions owned
// elsewhere answer 307 with the owner in X-Lpdag-Session-Owner, every
// session response carries the edit epoch in X-Lpdag-Session-Epoch (so
// clients can tell whether an edit whose connection died actually
// committed), and the SIGTERM drain hands each live session to its next
// ring owner before the listener closes. See DESIGN.md, "Durable
// sessions".
//
// Example:
//
//	curl -s localhost:8080/v1/analyze -d '{
//	  "cores": 4,
//	  "requests": [{"taskset": {"tasks": [
//	    {"name": "t1", "wcet": [2, 4, 3, 1],
//	     "edges": [[0,1],[0,2],[1,3],[2,3]],
//	     "deadline": 20, "period": 20}
//	  ]}}]
//	}'
//
// Every request emits one structured log line on stderr (method, route,
// status, latency, bytes; -log-format json|text, slower-than
// -slow-request logs at Warn).
//
// Profiling is opt-in: -pprof-addr localhost:6060 serves net/http/pprof
// on a separate listener (keep it on loopback or behind a firewall; it
// is never mounted on the service address).
//
// The server drains in-flight requests and stops the engine on SIGINT /
// SIGTERM. Exit status: 0 on clean shutdown, 2 on usage or bind errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/experiments/cluster"
	"repro/internal/obs"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lpdag-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", ":8080", "listen address")
		workers   = fs.Int("workers", 0, "analysis worker goroutines (0 = GOMAXPROCS)")
		queue     = fs.Int("queue", 0, "pending-job buffer (0 = 4x workers)")
		cacheSize = fs.Int("cache", 0, "result-cache entries, 0 = default, negative = disable")
		maxBody   = fs.Int64("max-body", engine.DefaultMaxBodyBytes, "request body limit in bytes")
		inFlight  = fs.Int("max-inflight", engine.DefaultMaxInFlight, "concurrent HTTP requests before shedding 503s")
		maxBatch  = fs.Int("max-batch", engine.DefaultMaxBatch, "task sets per analyze batch")
		drain     = fs.Duration("drain", 10*time.Second, "graceful-shutdown budget for in-flight requests")

		// Stateful analysis sessions (/v1/sessions).
		maxSessions = fs.Int("max-sessions", engine.DefaultMaxSessions, "live analysis sessions before creates shed 503s")
		sessionTTL  = fs.Duration("session-ttl", engine.DefaultSessionTTL, "evict sessions untouched this long (negative = never)")
		sessionDir  = fs.String("session-dir", "", "persist sessions to this directory (fsync per committed edit batch; restored on startup); empty = in-memory only")
		selfURL     = fs.String("self-url", "", "this node's advertised base URL on the session ring (e.g. http://host:8080); required with -peers")
		peers       = fs.String("peers", "", "comma-separated base URLs of peer session nodes; enables consistent-hash session routing (307 to the owner) and drain hand-off")

		// Cluster worker mode: the node serves POST /v1/shard leases from
		// a campaign coordinator (lpdag-experiments -cluster).
		maxShardPoints = fs.Int("max-shard-points", cluster.DefaultMaxShardPoints, "grid points per shard lease")
		heartbeat      = fs.Duration("heartbeat", cluster.DefaultHeartbeat, "shard-stream keepalive interval; must stay well below every coordinator's -lease-timeout, or slow points are mistaken for dead workers")
		drainGrace     = fs.Duration("drain-grace", 0, "after SIGTERM, keep serving this long with /healthz reporting draining so coordinators reroute before the listener closes")

		// Observability: structured request logging + /metrics exposition.
		logFormat = fs.String("log-format", "text", "request log format: text | json")
		slowReq   = fs.Duration("slow-request", engine.DefaultSlowRequest, "log requests slower than this at Warn level")

		// Profiling: net/http/pprof on a SEPARATE listener, opt-in, so the
		// profile surface is never exposed on the service address.
		pprofAddr = fs.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty = disabled")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var logger *slog.Logger
	switch *logFormat {
	case "json":
		logger = slog.New(slog.NewJSONHandler(stderr, nil))
	case "text":
		logger = slog.New(slog.NewTextHandler(stderr, nil))
	default:
		fmt.Fprintf(stderr, "lpdag-serve: unknown -log-format %q (want text or json)\n", *logFormat)
		return 2
	}

	reg := obs.NewRegistry()
	eng := engine.New(engine.Config{
		Workers: *workers, QueueDepth: *queue, CacheEntries: *cacheSize,
		Obs: reg,
	})
	defer eng.Close()

	if *pprofAddr != "" {
		// Explicit mux (not http.DefaultServeMux) so the debug listener
		// serves nothing but the profiler endpoints.
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintf(stderr, "lpdag-serve: pprof: %v\n", err)
			return 2
		}
		defer pln.Close()
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Fprintf(stderr, "lpdag-serve: pprof on %s/debug/pprof/\n", pln.Addr())
		go func() {
			psrv := &http.Server{Handler: pmux, ReadHeaderTimeout: 10 * time.Second}
			if err := psrv.Serve(pln); err != nil && err != http.ErrServerClosed && ctx.Err() == nil {
				fmt.Fprintf(stderr, "lpdag-serve: pprof: %v\n", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "lpdag-serve: %v\n", err)
		return 2
	}
	// Request contexts deliberately do NOT derive from the signal
	// context: SIGTERM must stop accepting and let Shutdown drain
	// in-flight requests, not cancel them mid-analysis.
	//
	// The campaign orchestrator and the cluster shard endpoint mount
	// beside the engine endpoints (they live in internal/experiments,
	// one layer above the engine). The engine server doubles as the
	// node's worker-state surface: the shard handler feeds its load
	// gauges, and /healthz flips to "draining" when shutdown begins.
	var peerList []string
	if *peers != "" {
		if *selfURL == "" {
			fmt.Fprintln(stderr, "lpdag-serve: -peers requires -self-url (this node's own base URL)")
			return 2
		}
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
	}
	var store *engine.SessionStore
	if *sessionDir != "" {
		var err error
		if store, err = engine.OpenSessionStore(*sessionDir); err != nil {
			fmt.Fprintf(stderr, "lpdag-serve: session store: %v\n", err)
			return 2
		}
		defer store.Close()
	}
	engSrv := engine.NewServer(eng, engine.ServerConfig{
		MaxBodyBytes: *maxBody, MaxInFlight: *inFlight, MaxBatch: *maxBatch,
		MaxSessions: *maxSessions, SessionTTL: *sessionTTL,
		SessionStore: store, SelfURL: *selfURL, Peers: peerList,
	})
	if store != nil {
		fmt.Fprintf(stderr, "lpdag-serve: session store %s: %d sessions restored\n",
			*sessionDir, engSrv.Sessions().Len())
	}
	mux := http.NewServeMux()
	mux.Handle("/v1/campaign", experiments.CampaignHandler(eng))
	if *heartbeat <= 0 {
		// A worker without keepalives breaks coordinators' lease
		// watchdogs on any point slower than their -lease-timeout;
		// serving mode always heartbeats (embedders can still disable
		// via ClusterWorkerConfig).
		*heartbeat = cluster.DefaultHeartbeat
	}
	mux.Handle("/v1/shard", cluster.NewWorkerHandler(eng, cluster.WorkerConfig{
		MaxPoints: *maxShardPoints, Heartbeat: *heartbeat, Load: engSrv,
	}))
	mux.Handle("/", engSrv)
	// The logging/metrics middleware wraps the WHOLE outer mux, so
	// campaign and shard streams are logged and counted exactly like the
	// engine endpoints (the route label is the innermost mux pattern).
	srv := &http.Server{
		Handler:           engine.LogRequests(mux, logger, reg, *slowReq),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Fprintf(stderr, "lpdag-serve: listening on %s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		fmt.Fprintf(stderr, "lpdag-serve: %v\n", err)
		return 2
	case <-ctx.Done():
	}

	// Flip /healthz to "draining" FIRST: a coordinator polling this node
	// must stop scheduling shards here the moment drain begins, not when
	// the listener finally closes. The optional grace window keeps the
	// listener open so pollers on fresh connections can observe the flip.
	engSrv.StartDraining()
	fmt.Fprintf(stderr, "lpdag-serve: shutting down (draining up to %s)\n", *drain)
	if *drainGrace > 0 {
		select {
		case err := <-errc:
			fmt.Fprintf(stderr, "lpdag-serve: %v\n", err)
			return 2
		case <-time.After(*drainGrace):
		}
	}
	// Flush every session snapshot to the durable store and hand live
	// sessions to their next ring owners BEFORE the listener closes: a
	// client mid-conversation must find its session elsewhere the moment
	// this node stops answering.
	handCtx, handCancel := context.WithTimeout(context.Background(), *drain)
	if err := engSrv.DrainSessions(handCtx, nil); err != nil {
		fmt.Fprintf(stderr, "lpdag-serve: session hand-off incomplete (store still holds them): %v\n", err)
	}
	handCancel()
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		// Drain budget exhausted: sever the remaining connections so
		// their request contexts cancel, which lets workers skip the
		// jobs those requests still have queued. Jobs already executing
		// run to completion (Engine.Close waits for them).
		fmt.Fprintf(stderr, "lpdag-serve: drain budget exceeded, closing connections: %v\n", err)
		srv.Close()
	}
	stats := eng.Stats()
	fmt.Fprintf(stdout, "served %d jobs (%d analyses, %d simulations, %d generations), cache hit rate %.1f%%\n",
		stats.JobsServed(), stats.Analyses, stats.Simulations, stats.Generations,
		100*stats.Cache.HitRate())
	return 0
}

package clique

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/bitset"
	"repro/internal/dag"
	"repro/internal/fixture"
)

// completeAdj returns the adjacency of a complete compatibility relation.
func completeAdj(n int) []*bitset.Set {
	adj := make([]*bitset.Set, n)
	for i := 0; i < n; i++ {
		adj[i] = bitset.New(n)
		for j := 0; j < n; j++ {
			if j != i {
				adj[i].Add(j)
			}
		}
	}
	return adj
}

// emptyAdj returns an adjacency with no compatible pairs.
func emptyAdj(n int) []*bitset.Set {
	adj := make([]*bitset.Set, n)
	for i := 0; i < n; i++ {
		adj[i] = bitset.New(n)
	}
	return adj
}

func TestKOne(t *testing.T) {
	w := []int64{4, 9, 2}
	v, set := MaxWeightKSet(w, emptyAdj(3), 1)
	if v != 9 || len(set) != 1 || set[0] != 1 {
		t.Fatalf("got (%d, %v), want (9, [1])", v, set)
	}
}

func TestDegenerateK(t *testing.T) {
	w := []int64{4, 9}
	if v, set := MaxWeightKSet(w, completeAdj(2), 0); v != 0 || set != nil {
		t.Errorf("k=0: got (%d, %v)", v, set)
	}
	if v, set := MaxWeightKSet(w, completeAdj(2), 3); v != 0 || set != nil {
		t.Errorf("k>n: got (%d, %v)", v, set)
	}
}

func TestCompleteGraphTakesHeaviest(t *testing.T) {
	w := []int64{5, 1, 8, 3, 7}
	v, set := MaxWeightKSet(w, completeAdj(5), 3)
	if v != 20 { // 8 + 7 + 5
		t.Errorf("weight = %d, want 20", v)
	}
	want := map[int]bool{0: true, 2: true, 4: true}
	for _, x := range set {
		if !want[x] {
			t.Errorf("unexpected vertex %d in %v", x, set)
		}
	}
}

func TestNoCliqueExists(t *testing.T) {
	w := []int64{5, 6, 7}
	if v, set := MaxWeightKSet(w, emptyAdj(3), 2); v != 0 || set != nil {
		t.Errorf("got (%d, %v), want (0, nil)", v, set)
	}
}

// TestTableI verifies the headline result of the package: the µ tables of
// the four Figure 1 tasks match the paper's Table I exactly.
func TestTableI(t *testing.T) {
	want := fixture.TableI()
	for i, g := range fixture.LowerPriorityGraphs() {
		mu := MuTable(g.WCETs(), g.Parallel(), fixture.M)
		for c := 1; c <= fixture.M; c++ {
			if mu[c-1] != want[i][c-1] {
				t.Errorf("µ%d[%d] = %d, want %d", i+1, c, mu[c-1], want[i][c-1])
			}
		}
	}
}

// TestTableIWitnesses checks that the witness sets returned for the µ
// values of Table I are the node sets the paper names.
func TestTableIWitnesses(t *testing.T) {
	g3 := fixture.Tau3()
	// µ3[2] = C3,3 + C3,4 = 7 → nodes indices {2, 3}.
	v, set := MaxWeightKSet(g3.WCETs(), g3.Parallel(), 2)
	if v != 7 || len(set) != 2 || set[0] != 2 || set[1] != 3 {
		t.Errorf("µ3[2] witness = (%d, %v), want (7, [2 3])", v, set)
	}
	g4 := fixture.Tau4()
	// µ4[3] = C4,4 + C4,3 + C4,5 = 12 → indices {2, 3, 4}.
	v, set = MaxWeightKSet(g4.WCETs(), g4.Parallel(), 3)
	if v != 12 || len(set) != 3 || set[0] != 2 || set[1] != 3 || set[2] != 4 {
		t.Errorf("µ4[3] witness = (%d, %v), want (12, [2 3 4])", v, set)
	}
}

func TestWitnessIsAClique(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(16)
		w, adj := randomInstance(rng, n)
		for k := 1; k <= n; k++ {
			v, set := MaxWeightKSet(w, adj, k)
			if set == nil {
				continue
			}
			if len(set) != k {
				t.Fatalf("witness size %d != k %d", len(set), k)
			}
			var sum int64
			for i, a := range set {
				sum += w[a]
				for _, b := range set[i+1:] {
					if !adj[a].Contains(b) {
						t.Fatalf("witness %v not a clique: (%d,%d)", set, a, b)
					}
				}
			}
			if sum != v {
				t.Fatalf("witness weight %d != reported %d", sum, v)
			}
		}
	}
}

func randomInstance(rng *rand.Rand, n int) ([]int64, []*bitset.Set) {
	w := make([]int64, n)
	for i := range w {
		w[i] = int64(1 + rng.Intn(100))
	}
	adj := emptyAdj(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.5 {
				adj[i].Add(j)
				adj[j].Add(i)
			}
		}
	}
	return w, adj
}

// bruteKSet enumerates all k-subsets.
func bruteKSet(w []int64, adj []*bitset.Set, k int) int64 {
	n := len(w)
	best := int64(-1)
	var idx []int
	var rec func(start int)
	rec = func(start int) {
		if len(idx) == k {
			var s int64
			for i, a := range idx {
				s += w[a]
				for _, b := range idx[i+1:] {
					if !adj[a].Contains(b) {
						return
					}
				}
			}
			if s > best {
				best = s
			}
			return
		}
		for v := start; v < n; v++ {
			idx = append(idx, v)
			rec(v + 1)
			idx = idx[:len(idx)-1]
		}
	}
	rec(0)
	if best < 0 {
		return 0
	}
	return best
}

func TestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 150; trial++ {
		n := 1 + rng.Intn(12)
		w, adj := randomInstance(rng, n)
		for k := 1; k <= n && k <= 6; k++ {
			got, _ := MaxWeightKSet(w, adj, k)
			want := bruteKSet(w, adj, k)
			if got != want {
				t.Fatalf("trial %d n=%d k=%d: got %d, want %d", trial, n, k, got, want)
			}
		}
	}
}

// TestMatchesBruteForceOnDAGs repeats the cross-check on parallelism
// graphs of random single-source DAGs — the real population.
func TestMatchesBruteForceOnDAGs(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 100; trial++ {
		g := randomDAG(rng, 2+rng.Intn(11))
		w, adj := g.WCETs(), g.Parallel()
		for k := 1; k <= 5; k++ {
			got, _ := MaxWeightKSet(w, adj, k)
			want := bruteKSet(w, adj, k)
			if got != want {
				t.Fatalf("trial %d k=%d: got %d, want %d\n%s", trial, k, got, want, g.DOT("g"))
			}
		}
	}
}

func randomDAG(rng *rand.Rand, n int) *dag.Graph {
	var b dag.Builder
	for i := 0; i < n; i++ {
		b.AddNode(int64(1 + rng.Intn(100)))
	}
	for v := 1; v < n; v++ {
		p := rng.Intn(v)
		b.AddEdge(p, v)
		for u := 0; u < v; u++ {
			if u != p && rng.Float64() < 0.2 {
				b.AddEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}

// TestMuTableInvariants checks the structural properties of µ tables.
// Note µ is *not* monotone in c (the paper's own Table I has
// µ1 = [3,5,6,5]): a heavier c-clique need not extend to any (c+1)-clique.
// What must hold is: once zero, always zero (a (c+1)-clique contains a
// c-clique); µ[1] is the heaviest node; and every (c+1)-clique is a
// c-clique plus one node, so µ[c+1] ≤ µ[c] + µ[1].
func TestMuTableInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 100; trial++ {
		g := randomDAG(rng, 2+rng.Intn(14))
		mu := MuTable(g.WCETs(), g.Parallel(), 8)
		zeroSeen := false
		for c := 1; c < len(mu); c++ {
			if mu[c] == 0 {
				zeroSeen = true
			}
			if zeroSeen && mu[c] != 0 {
				t.Fatalf("µ table %v not zero-terminated", mu)
			}
			if mu[c] > mu[c-1]+mu[0] {
				t.Fatalf("µ table %v violates µ[c+1] ≤ µ[c] + µ[1]", mu)
			}
		}
		if mu[0] != g.MaxWCET() {
			t.Fatalf("µ[1] = %d, want max WCET %d", mu[0], g.MaxWCET())
		}
	}
}

func BenchmarkMuTableFigure1(b *testing.B) {
	graphs := fixture.LowerPriorityGraphs()
	pars := make([][]*bitset.Set, len(graphs))
	for i, g := range graphs {
		pars[i] = g.Parallel()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, g := range graphs {
			MuTable(g.WCETs(), pars[j], fixture.M)
		}
	}
}

// twinExpand replaces every vertex of an instance with a chain of
// `copies` mutually non-adjacent twins carrying split weights — the
// structure ppp.SplitNodes produces. The optimum of the expanded
// instance must pick the heaviest twin per class, i.e. equal the
// original optimum with per-class max weights.
func twinExpand(w []int64, adj []*bitset.Set, copies int) ([]int64, []*bitset.Set) {
	n := len(w)
	en := n * copies
	ew := make([]int64, en)
	eadj := make([]*bitset.Set, en)
	for v := 0; v < n; v++ {
		for c := 0; c < copies; c++ {
			i := v*copies + c
			ew[i] = w[v] - int64(c) // descending pieces, max piece = w[v]
			if ew[i] < 1 {
				ew[i] = 1
			}
			s := bitset.New(en)
			adj[v].ForEach(func(u int) bool {
				for cc := 0; cc < copies; cc++ {
					s.Add(u*copies + cc)
				}
				return true
			})
			eadj[i] = s
		}
	}
	return ew, eadj
}

// TestTwinReductionExact: expanding every vertex into a twin chain must
// not change the optimum (only the heaviest twin of a class can be
// chosen), and must stay fast — this is the regression test for the
// npr-fine × m=64 campaign blow-up.
func TestTwinReductionExact(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		w, adj := randomInstance(rng, 8)
		ew, eadj := twinExpand(w, adj, 5)
		for k := 1; k <= 6; k++ {
			want := bruteKSet(w, adj, k)
			got, set := MaxWeightKSet(ew, eadj, k)
			if want < 0 {
				if set != nil {
					t.Fatalf("trial %d k=%d: expanded instance found a set where none exists", trial, k)
				}
				continue
			}
			if got != want {
				t.Fatalf("trial %d k=%d: expanded optimum %d, want %d", trial, k, got, want)
			}
		}
	}
}

// TestTwinHeavyLargeInstanceFast: a 960-vertex twin-heavy instance at
// large k must solve essentially instantly (pre-reduction this class of
// input hung for minutes).
func TestTwinHeavyLargeInstanceFast(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	w, adj := randomInstance(rng, 32)
	ew, eadj := twinExpand(w, adj, 30)
	start := time.Now()
	for k := 1; k <= 16; k++ {
		MaxWeightKSet(ew, eadj, k)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("twin-heavy instance took %v; reduction regressed", d)
	}
}

// TestSolverReuse drives one Solver through a mixed sequence of problems
// of varying size and checks every answer against brute force: stale
// scratch from a larger instance must never bleed into a smaller one.
func TestSolverReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var s Solver
	for iter := 0; iter < 200; iter++ {
		n := 1 + rng.Intn(12)
		w, adj := randomInstance(rng, n)
		k := 1 + rng.Intn(n)
		gotW, gotSet := s.MaxWeightKSet(w, adj, k)
		wantW := bruteKSet(w, adj, k)
		if gotW != wantW {
			t.Fatalf("iter %d (n=%d k=%d): reused solver weight %d, want %d", iter, n, k, gotW, wantW)
		}
		if gotSet != nil {
			if len(gotSet) != k {
				t.Fatalf("iter %d: set %v has %d vertices, want %d", iter, gotSet, len(gotSet), k)
			}
			var sum int64
			for i, a := range gotSet {
				sum += w[a]
				for _, b := range gotSet[i+1:] {
					if !adj[a].Contains(b) {
						t.Fatalf("iter %d: set %v is not pairwise parallel", iter, gotSet)
					}
				}
			}
			if sum != gotW {
				t.Fatalf("iter %d: set %v sums to %d, reported %d", iter, gotSet, sum, gotW)
			}
		}
		m := 1 + rng.Intn(4)
		gotMu := s.MuTable(w, adj, m)
		for c := 1; c <= m; c++ {
			if want := bruteKSet(w, adj, c); gotMu[c-1] != want {
				t.Fatalf("iter %d: reused solver mu[%d]=%d, want %d", iter, c, gotMu[c-1], want)
			}
		}
	}
}

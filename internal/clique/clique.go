// Package clique solves the exact combinatorial core of Equation (6) of
// Serrano et al. (DATE 2016): the worst-case workload µ_i[c] of a task on
// c cores is the maximum total WCET of c nodes that are pairwise allowed
// to execute in parallel — a maximum-weight c-clique of the task's
// parallelism graph.
//
// The solver is a depth-first branch-and-bound over a weight-descending
// vertex order with a prefix-sum admissible bound. DAG tasks in this
// domain have at most a few dozen nodes, for which the search is
// effectively instantaneous; it is nevertheless exact for any input and
// is cross-checked against both brute force and the paper-faithful ILP
// encoding in tests.
//
// All scratch state — candidate sets per search depth, the reordered
// problem, twin-reduction buffers — lives on a reusable Solver, so a
// campaign computing millions of µ tables allocates nothing in steady
// state. The package-level MaxWeightKSet and MuTable draw Solvers from a
// shared pool; MuTable additionally performs the twin reduction and the
// weight reordering once and reuses them for every c.
package clique

import (
	"sort"
	"sync"

	"repro/internal/bitset"
)

// Solver carries the reusable scratch of the branch-and-bound. The zero
// value is ready to use; a Solver may be reused for any sequence of
// problems (its buffers grow to the largest instance seen) but is not
// safe for concurrent use.
type Solver struct {
	// Problem after twin reduction and weight reordering: vertex idx has
	// weight w[idx] (non-increasing), compatibility nadj[idx], and
	// corresponds to original vertex orig[idx].
	n    int
	w    []int64
	nadj []*bitset.Set
	orig []int

	// Branch-and-bound state.
	k       int
	bestW   int64
	record  bool
	picked  []int
	bestSet []int

	// Per-depth candidate scratch (depth d uses rest[d] and sub[d]).
	rest, sub []*bitset.Set
	universe  *bitset.Set

	// Setup scratch: vertex ordering and twin-reduction ping-pong
	// buffers (reductions can cascade, so consecutive rounds alternate
	// between the two buffer groups).
	order, pos, keep []int
	claimed          []bool
	rw               [2][]int64
	radj             [2][]*bitset.Set
	rorig            [2][]int
}

var solverPool = sync.Pool{New: func() any { return new(Solver) }}

// MaxWeightKSet returns the maximum total weight of a set of exactly k
// vertices that are pairwise adjacent in the compatibility relation adj,
// together with one optimal vertex set (ascending order). If no such set
// exists it returns (0, nil).
//
// weights[v] must be non-negative; adj[v] is the set of vertices
// compatible with v and must be symmetric and irreflexive (as produced by
// dag.(*Graph).Parallel).
func MaxWeightKSet(weights []int64, adj []*bitset.Set, k int) (int64, []int) {
	s := solverPool.Get().(*Solver)
	v, set := s.MaxWeightKSet(weights, adj, k)
	solverPool.Put(s)
	return v, set
}

// MuTable returns µ[c] for c = 1..m (index c-1): the worst-case workload
// of the c heaviest pairwise-parallel nodes, or 0 when fewer than c nodes
// can run in parallel (Equation (6) and Table I of the paper).
func MuTable(weights []int64, adj []*bitset.Set, m int) []int64 {
	s := solverPool.Get().(*Solver)
	mu := s.MuTable(weights, adj, m)
	solverPool.Put(s)
	return mu
}

// MaxWeightKSet is the Solver form of the package-level function.
func (s *Solver) MaxWeightKSet(weights []int64, adj []*bitset.Set, k int) (int64, []int) {
	n := len(weights)
	if k <= 0 || k > n {
		return 0, nil
	}
	if k == 1 {
		// Largest single node; no adjacency needed.
		best, arg := int64(-1), -1
		for v, w := range weights {
			if w > best {
				best, arg = w, v
			}
		}
		return best, []int{arg}
	}
	s.setup(weights, adj)
	v, ok := s.search(k, true)
	if !ok {
		return 0, nil
	}
	out := make([]int, len(s.bestSet))
	for i, idx := range s.bestSet {
		out[i] = s.orig[idx]
	}
	sort.Ints(out)
	return v, out
}

// MuTable is the Solver form of the package-level function: the twin
// reduction and the weight reordering are shared across all c (they do
// not depend on the set size), so the table costs one setup plus m
// searches.
func (s *Solver) MuTable(weights []int64, adj []*bitset.Set, m int) []int64 {
	mu := make([]int64, m)
	if m < 1 || len(weights) == 0 {
		return mu
	}
	best := weights[0]
	for _, w := range weights[1:] {
		if w > best {
			best = w
		}
	}
	mu[0] = best
	if m == 1 || len(weights) == 1 {
		return mu
	}
	s.setup(weights, adj)
	for c := 2; c <= m && c <= s.n; c++ {
		v, ok := s.search(c, false)
		if !ok {
			// No c-clique exists; larger cliques cannot exist either.
			break
		}
		mu[c-1] = v
	}
	return mu
}

// setup prepares the reduced, reordered problem in the solver's scratch:
// twin reduction to a fixed point, then a stable non-increasing weight
// order so that candidate prefix sums give a tight admissible bound and
// heavy vertices are branched on first.
func (s *Solver) setup(weights []int64, adj []*bitset.Set) {
	// Twin reduction: vertices with identical adjacency sets are
	// necessarily non-adjacent to each other (v ∉ adj[v] = adj[u]), so
	// no valid set contains two of them, and they are interchangeable
	// with respect to every other vertex — only the heaviest of each
	// class can appear in an optimum (for any k). Node-split graphs
	// (ppp.SplitNodes, the npr-fine campaign family) turn every node
	// into a chain of such twins, so without this the branch-and-bound
	// faces hundreds of vertices at large c; with it the problem shrinks
	// back to the original node count. Reduction repeats until a fixed
	// point (dropping twins can equalise further adjacency sets).
	cw, cadj := weights, adj
	var corig []int // nil = identity
	for flip := 0; ; flip ^= 1 {
		keep := s.twinReduce(cw, cadj)
		if len(keep) == len(cw) {
			break
		}
		s.pos = grow(s.pos, len(cw))
		inv := s.pos // reuse; rebuilt by the ordering pass below
		for i := range cw {
			inv[i] = -1
		}
		rw := growInt64(s.rw[flip], len(keep))
		rorig := grow(s.rorig[flip], len(keep))
		for i, v := range keep {
			inv[v] = i
			rw[i] = cw[v]
			if corig == nil {
				rorig[i] = v
			} else {
				rorig[i] = corig[v]
			}
		}
		radj := growSets(&s.radj[flip], len(keep))
		for i, v := range keep {
			t := radj[i]
			t.Reset(len(keep))
			cadj[v].ForEach(func(u int) bool {
				if inv[u] >= 0 {
					t.Add(inv[u])
				}
				return true
			})
		}
		s.rw[flip], s.rorig[flip] = rw, rorig
		cw, cadj, corig = rw, radj, rorig
	}

	n := len(cw)
	s.n = n
	s.order = grow(s.order, n)
	for i := range s.order {
		s.order[i] = i
	}
	sort.SliceStable(s.order, func(a, b int) bool { return cw[s.order[a]] > cw[s.order[b]] })
	s.pos = grow(s.pos, n) // current vertex -> search index
	for idx, v := range s.order {
		s.pos[v] = idx
	}
	s.w = growInt64(s.w, n)
	s.orig = grow(s.orig, n)
	nadj := growSets(&s.nadj, n)
	for idx, v := range s.order {
		s.w[idx] = cw[v]
		if corig == nil {
			s.orig[idx] = v
		} else {
			s.orig[idx] = corig[v]
		}
		t := nadj[idx]
		t.Reset(n)
		cadj[v].ForEach(func(u int) bool {
			t.Add(s.pos[u])
			return true
		})
	}
	s.w, s.orig = s.w[:n], s.orig[:n]
}

// twinReduce partitions vertices into classes of identical adjacency
// sets and returns the heaviest member of each class, ascending. The
// returned slice is solver scratch, valid until the next call.
func (s *Solver) twinReduce(weights []int64, adj []*bitset.Set) []int {
	n := len(weights)
	s.claimed = growBool(s.claimed, n)
	claimed := s.claimed
	for i := range claimed {
		claimed[i] = false
	}
	s.keep = s.keep[:0]
	for v := 0; v < n; v++ {
		if claimed[v] {
			continue
		}
		best := v
		for u := v + 1; u < n; u++ {
			if claimed[u] || !adj[v].Equal(adj[u]) {
				continue
			}
			claimed[u] = true
			if weights[u] > weights[best] {
				best = u
			}
		}
		s.keep = append(s.keep, best)
	}
	return s.keep
}

// search runs the branch-and-bound for set size k on the prepared
// problem, returning the best weight and whether any k-set exists. With
// record it also leaves one optimal set (as search indices) in bestSet.
func (s *Solver) search(k int, record bool) (int64, bool) {
	if k > s.n {
		return 0, false
	}
	s.k, s.record, s.bestW = k, record, -1
	s.picked = s.picked[:0]
	for len(s.rest) < k {
		s.rest = append(s.rest, new(bitset.Set))
		s.sub = append(s.sub, new(bitset.Set))
	}
	if s.universe == nil {
		s.universe = new(bitset.Set)
	}
	s.universe.Reset(s.n)
	s.universe.Fill()
	s.rec(s.universe, 0, 0)
	if s.bestW < 0 {
		return 0, false
	}
	return s.bestW, true
}

// bound returns an upper bound on the weight obtainable by adding `need`
// more vertices from cand: the sum of the `need` heaviest candidates
// (admissible since weights are sorted descending).
func (s *Solver) bound(cand *bitset.Set, need int) int64 {
	var sum int64
	cnt := 0
	cand.ForEach(func(v int) bool {
		sum += s.w[v]
		cnt++
		return cnt < need
	})
	if cnt < need {
		return -1 // not enough candidates at all
	}
	return sum
}

// rec explores candidate vertices in ascending index (= descending
// weight). Each vertex is either picked (recursing into its adjacency
// restriction) or removed for the remainder of the subtree, which makes
// the enumeration canonical. Depth d borrows the d-th scratch pair, so
// the whole search reuses 2k sets however many nodes it visits.
func (s *Solver) rec(cand *bitset.Set, cur int64, depth int) {
	need := s.k - len(s.picked)
	if need == 0 {
		if cur > s.bestW {
			s.bestW = cur
			if s.record {
				s.bestSet = append(s.bestSet[:0], s.picked...)
			}
		}
		return
	}
	rest := s.rest[depth]
	rest.CopyFrom(cand)
	for v := rest.Next(0); v != -1; v = rest.Next(v + 1) {
		rest.Remove(v)
		sub := s.sub[depth]
		sub.CopyFrom(rest)
		sub.IntersectWith(s.nadj[v])
		s.picked = append(s.picked, v)
		if b := s.bound(sub, need-1); b >= 0 && cur+s.w[v]+b > s.bestW {
			s.rec(sub, cur+s.w[v], depth+1)
		}
		s.picked = s.picked[:len(s.picked)-1]
		// If even the `need` heaviest vertices still available cannot
		// beat the incumbent, no later branch of this loop can either.
		if b := s.bound(rest, need); b < 0 || cur+b <= s.bestW {
			break
		}
	}
}

// grow returns buf resized to n, reallocating only when capacity lacks.
func grow(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

func growInt64(buf []int64, n int) []int64 {
	if cap(buf) < n {
		return make([]int64, n)
	}
	return buf[:n]
}

func growBool(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	return buf[:n]
}

// growSets ensures *sets holds at least n reusable bitsets and returns
// the first n.
func growSets(sets *[]*bitset.Set, n int) []*bitset.Set {
	for len(*sets) < n {
		*sets = append(*sets, new(bitset.Set))
	}
	return (*sets)[:n]
}

// Package clique solves the exact combinatorial core of Equation (6) of
// Serrano et al. (DATE 2016): the worst-case workload µ_i[c] of a task on
// c cores is the maximum total WCET of c nodes that are pairwise allowed
// to execute in parallel — a maximum-weight c-clique of the task's
// parallelism graph.
//
// The solver is a depth-first branch-and-bound over a weight-descending
// vertex order with a prefix-sum admissible bound. DAG tasks in this
// domain have at most a few dozen nodes, for which the search is
// effectively instantaneous; it is nevertheless exact for any input and
// is cross-checked against both brute force and the paper-faithful ILP
// encoding in tests.
package clique

import (
	"sort"

	"repro/internal/bitset"
)

// MaxWeightKSet returns the maximum total weight of a set of exactly k
// vertices that are pairwise adjacent in the compatibility relation adj,
// together with one optimal vertex set (ascending order). If no such set
// exists it returns (0, nil).
//
// weights[v] must be non-negative; adj[v] is the set of vertices
// compatible with v and must be symmetric and irreflexive (as produced by
// dag.(*Graph).Parallel).
func MaxWeightKSet(weights []int64, adj []*bitset.Set, k int) (int64, []int) {
	n := len(weights)
	if k <= 0 || k > n {
		return 0, nil
	}
	if k == 1 {
		// Largest single node; no adjacency needed.
		best, arg := int64(-1), -1
		for v, w := range weights {
			if w > best {
				best, arg = w, v
			}
		}
		return best, []int{arg}
	}

	// Twin reduction: vertices with identical adjacency sets are
	// necessarily non-adjacent to each other (v ∉ adj[v] = adj[u]), so
	// no valid set contains two of them, and they are interchangeable
	// with respect to every other vertex — only the heaviest of each
	// class can appear in an optimum. Node-split graphs (ppp.SplitNodes,
	// the npr-fine campaign family) turn every node into a chain of such
	// twins, so without this the branch-and-bound faces hundreds of
	// vertices at large c; with it the problem shrinks back to the
	// original node count. The recursion re-reduces until a fixed point
	// (dropping twins can equalise further adjacency sets).
	if keep := twinReduce(weights, adj); len(keep) < n {
		inv := make([]int, n)
		for i := range inv {
			inv[i] = -1
		}
		rw := make([]int64, len(keep))
		for i, v := range keep {
			inv[v] = i
			rw[i] = weights[v]
		}
		radj := make([]*bitset.Set, len(keep))
		for i, v := range keep {
			s := bitset.New(len(keep))
			adj[v].ForEach(func(u int) bool {
				if inv[u] >= 0 {
					s.Add(inv[u])
				}
				return true
			})
			radj[i] = s
		}
		wgt, set := MaxWeightKSet(rw, radj, k)
		if set == nil {
			return 0, nil
		}
		out := make([]int, len(set))
		for i, idx := range set {
			out[i] = keep[idx]
		}
		sort.Ints(out)
		return wgt, out
	}

	// Reorder vertices by non-increasing weight so that the candidate
	// prefix sums give a tight admissible bound and heavy vertices are
	// branched on first.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return weights[order[a]] > weights[order[b]] })
	pos := make([]int, n) // original vertex -> new index
	for idx, v := range order {
		pos[v] = idx
	}
	w := make([]int64, n)
	nadj := make([]*bitset.Set, n)
	for idx, v := range order {
		w[idx] = weights[v]
		s := bitset.New(n)
		adj[v].ForEach(func(u int) bool {
			s.Add(pos[u])
			return true
		})
		nadj[idx] = s
	}

	var (
		bestW    int64 = -1
		bestSet  []int
		picked   = make([]int, 0, k)
		universe = bitset.New(n)
	)
	for i := 0; i < n; i++ {
		universe.Add(i)
	}

	// bound returns an upper bound on the weight obtainable by adding
	// `need` more vertices from cand: the sum of the `need` heaviest
	// candidates (admissible since weights are sorted descending).
	bound := func(cand *bitset.Set, need int) int64 {
		var s int64
		cnt := 0
		cand.ForEach(func(v int) bool {
			s += w[v]
			cnt++
			return cnt < need
		})
		if cnt < need {
			return -1 // not enough candidates at all
		}
		return s
	}

	// rec explores candidate vertices in ascending index (= descending
	// weight). Each vertex is either picked (recursing into its adjacency
	// restriction) or removed for the remainder of the subtree, which
	// makes the enumeration canonical.
	var rec func(cand *bitset.Set, cur int64)
	rec = func(cand *bitset.Set, cur int64) {
		need := k - len(picked)
		if need == 0 {
			if cur > bestW {
				bestW = cur
				bestSet = append([]int(nil), picked...)
			}
			return
		}
		rest := cand.Clone()
		for v := rest.Next(0); v != -1; v = rest.Next(v + 1) {
			rest.Remove(v)
			sub := rest.Clone()
			sub.IntersectWith(nadj[v])
			picked = append(picked, v)
			if b := bound(sub, need-1); b >= 0 && cur+w[v]+b > bestW {
				rec(sub, cur+w[v])
			}
			picked = picked[:len(picked)-1]
			// If even the `need` heaviest vertices still available cannot
			// beat the incumbent, no later branch of this loop can either.
			if b := bound(rest, need); b < 0 || cur+b <= bestW {
				break
			}
		}
	}
	rec(universe, 0)

	if bestW < 0 {
		return 0, nil
	}
	out := make([]int, len(bestSet))
	for i, idx := range bestSet {
		out[i] = order[idx]
	}
	sort.Ints(out)
	return bestW, out
}

// twinReduce partitions vertices into classes of identical adjacency
// sets and returns the heaviest member of each class, ascending.
func twinReduce(weights []int64, adj []*bitset.Set) []int {
	n := len(weights)
	claimed := make([]bool, n)
	keep := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if claimed[v] {
			continue
		}
		best := v
		for u := v + 1; u < n; u++ {
			if claimed[u] || !adj[v].Equal(adj[u]) {
				continue
			}
			claimed[u] = true
			if weights[u] > weights[best] {
				best = u
			}
		}
		keep = append(keep, best)
	}
	return keep
}

// MuTable returns µ[c] for c = 1..m (index c-1): the worst-case workload
// of the c heaviest pairwise-parallel nodes, or 0 when fewer than c nodes
// can run in parallel (Equation (6) and Table I of the paper).
func MuTable(weights []int64, adj []*bitset.Set, m int) []int64 {
	mu := make([]int64, m)
	for c := 1; c <= m; c++ {
		v, set := MaxWeightKSet(weights, adj, c)
		if set == nil {
			// No c-clique exists; larger cliques cannot exist either.
			break
		}
		mu[c-1] = v
	}
	return mu
}

package ring

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("session-%06d", i)
	}
	return out
}

func TestOwnerDeterministicAndOrderIndependent(t *testing.T) {
	a := New([]string{"http://a", "http://b", "http://c"}, 0)
	b := New([]string{"http://c", "http://a", "http://b", "http://a", ""}, 0)
	for _, k := range keys(500) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("Owner(%q) differs across member orderings: %q vs %q",
				k, a.Owner(k), b.Owner(k))
		}
	}
}

func TestOwnerSpread(t *testing.T) {
	members := []string{"http://a", "http://b", "http://c"}
	r := New(members, 0)
	counts := make(map[string]int)
	n := 3000
	for _, k := range keys(n) {
		counts[r.Owner(k)]++
	}
	for _, m := range members {
		// Virtual nodes keep the split within a loose band; a member
		// owning almost nothing (or almost everything) means the point
		// hashing is broken.
		if counts[m] < n/10 {
			t.Fatalf("member %s owns only %d/%d keys", m, counts[m], n)
		}
	}
}

func TestRemovalMovesOnlyTheRemovedMembersKeys(t *testing.T) {
	full := New([]string{"http://a", "http://b", "http://c", "http://d"}, 0)
	without := New([]string{"http://a", "http://b", "http://c"}, 0)
	for _, k := range keys(2000) {
		before := full.Owner(k)
		after := without.Owner(k)
		if before != "http://d" && after != before {
			t.Fatalf("key %q moved from %q to %q although its owner stayed in the ring",
				k, before, after)
		}
	}
}

func TestNextSkipsExcluded(t *testing.T) {
	r := New([]string{"http://a", "http://b", "http://c"}, 0)
	for _, k := range keys(500) {
		owner := r.Owner(k)
		next := r.Next(k, owner)
		if next == "" || next == owner {
			t.Fatalf("Next(%q, %q) = %q", k, owner, next)
		}
	}
}

func TestNextSingleMember(t *testing.T) {
	r := New([]string{"http://only"}, 0)
	if got := r.Next("k", "http://only"); got != "" {
		t.Fatalf("Next on one-member ring = %q, want \"\"", got)
	}
	if got := r.Next("k", "http://other"); got != "http://only" {
		t.Fatalf("Next excluding a non-member = %q, want the sole member", got)
	}
}

func TestNilAndEmptyRing(t *testing.T) {
	var nilRing *Ring
	if nilRing.Owner("k") != "" || nilRing.Next("k", "") != "" || nilRing.Len() != 0 || nilRing.Members() != nil {
		t.Fatal("nil ring must own nothing")
	}
	empty := New(nil, 0)
	if empty.Owner("k") != "" || empty.Len() != 0 {
		t.Fatal("empty ring must own nothing")
	}
}

// Package ring implements the consistent-hash ring the session plane
// routes on: every member (a node's advertised base URL) is hashed onto
// the ring at a fixed number of virtual points, and a key (a session id)
// is owned by the member whose nearest clockwise point it hits.
//
// The ring is deterministic in the member list alone — two nodes
// configured with the same -peers set compute identical ownership, with
// no coordination protocol — and virtual points keep the load spread
// even when member counts are small. Removing one member moves only the
// keys it owned (the classic consistent-hashing property, asserted in
// ring_test.go).
package ring

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the per-member virtual point count: enough to
// spread a handful of members evenly, cheap enough to rebuild per
// config change.
const DefaultVirtualNodes = 64

type point struct {
	h uint64
	m int // index into members
}

// Ring is an immutable consistent-hash ring over a member list. Build
// with New; a nil or empty ring owns nothing (Owner returns "").
type Ring struct {
	members []string
	points  []point
}

// New builds a ring over members with the given virtual point count per
// member (<= 0 means DefaultVirtualNodes). Duplicate and empty member
// strings are dropped; order does not matter.
func New(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(members))
	uniq := make([]string, 0, len(members))
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		uniq = append(uniq, m)
	}
	sort.Strings(uniq) // member index, and thus tie-breaking, is order-independent
	r := &Ring{members: uniq, points: make([]point, 0, len(uniq)*vnodes)}
	for i, m := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{h: hash64(m + "#" + strconv.Itoa(v)), m: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].h != r.points[b].h {
			return r.points[a].h < r.points[b].h
		}
		return r.points[a].m < r.points[b].m // deterministic on (vanishingly rare) hash ties
	})
	return r
}

// Members returns the deduplicated member list (sorted).
func (r *Ring) Members() []string {
	if r == nil {
		return nil
	}
	return append([]string(nil), r.members...)
}

// Len returns the member count.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	return len(r.members)
}

// Owner returns the member owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	if r == nil || len(r.points) == 0 {
		return ""
	}
	return r.members[r.points[r.successor(key)].m]
}

// Next returns the first member clockwise from key that is not exclude:
// the hand-off target for a session owned by a draining node. It
// returns "" when no such member exists (a one-member ring).
func (r *Ring) Next(key, exclude string) string {
	if r == nil || len(r.points) == 0 {
		return ""
	}
	start := r.successor(key)
	for i := 0; i < len(r.points); i++ {
		m := r.members[r.points[(start+i)%len(r.points)].m]
		if m != exclude {
			return m
		}
	}
	return ""
}

// successor returns the index of the first point at or clockwise past
// hash(key), wrapping at the top of the hash space.
func (r *Ring) successor(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

func hash64(s string) uint64 {
	f := fnv.New64a()
	f.Write([]byte(s))
	return f.Sum64()
}

package model

import (
	"bytes"
	"testing"
)

// FuzzTaskSetJSON feeds arbitrary bytes to the task-set decoder: it must
// never panic, and anything it accepts must re-encode and re-decode to a
// set with identical structure (round-trip stability).
func FuzzTaskSetJSON(f *testing.F) {
	f.Add([]byte(`{"tasks":[{"name":"x","wcet":[1],"edges":[],"deadline":5,"period":5}]}`))
	f.Add([]byte(`{"tasks":[{"name":"y","wcet":[2,3],"edges":[[0,1]],"deadline":9,"period":9}]}`))
	f.Add([]byte(`{"tasks":[]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		ts := new(TaskSet)
		if err := ts.UnmarshalJSON(data); err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted input must satisfy the model invariants…
		if err := ts.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid set: %v", err)
		}
		// …and survive a round trip structurally intact.
		var buf bytes.Buffer
		if err := ts.WriteJSON(&buf); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if back.N() != ts.N() {
			t.Fatalf("round trip changed task count %d -> %d", ts.N(), back.N())
		}
		for i := range ts.Tasks {
			a, b := ts.Tasks[i], back.Tasks[i]
			if a.G.N() != b.G.N() || a.G.NumEdges() != b.G.NumEdges() ||
				a.G.Volume() != b.G.Volume() || a.Deadline != b.Deadline || a.Period != b.Period {
				t.Fatalf("round trip changed task %d structure", i)
			}
		}
	})
}

package model

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/dag"
)

// taskJSON is the on-disk form of one task: explicit node WCETs and edge
// list, so task sets can be exchanged with other tools.
type taskJSON struct {
	Name     string   `json:"name"`
	WCET     []int64  `json:"wcet"`
	Edges    [][2]int `json:"edges"`
	Deadline int64    `json:"deadline"`
	Period   int64    `json:"period"`
}

type taskSetJSON struct {
	Tasks []taskJSON `json:"tasks"`
}

// MarshalJSON encodes the task as {name, wcet, edges, deadline, period}.
func (t *Task) MarshalJSON() ([]byte, error) {
	edges := t.G.Edges()
	if edges == nil {
		edges = [][2]int{}
	}
	return json.Marshal(taskJSON{
		Name:     t.Name,
		WCET:     t.G.WCETs(),
		Edges:    edges,
		Deadline: t.Deadline,
		Period:   t.Period,
	})
}

// UnmarshalJSON decodes and validates a task.
func (t *Task) UnmarshalJSON(data []byte) error {
	var tj taskJSON
	if err := json.Unmarshal(data, &tj); err != nil {
		return err
	}
	var b dag.Builder
	for _, c := range tj.WCET {
		b.AddNode(c)
	}
	for _, e := range tj.Edges {
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		return fmt.Errorf("model: task %q: %w", tj.Name, err)
	}
	t.Name = tj.Name
	t.G = g
	t.Deadline = tj.Deadline
	t.Period = tj.Period
	return t.Validate()
}

// MarshalJSON encodes the set with tasks in priority order.
func (ts *TaskSet) MarshalJSON() ([]byte, error) {
	out := taskSetJSON{Tasks: make([]taskJSON, 0, len(ts.Tasks))}
	for _, t := range ts.Tasks {
		raw, err := t.MarshalJSON()
		if err != nil {
			return nil, err
		}
		var tj taskJSON
		if err := json.Unmarshal(raw, &tj); err != nil {
			return nil, err
		}
		out.Tasks = append(out.Tasks, tj)
	}
	return json.MarshalIndent(out, "", "  ")
}

// UnmarshalJSON decodes and validates a full task set.
func (ts *TaskSet) UnmarshalJSON(data []byte) error {
	var raw struct {
		Tasks []json.RawMessage `json:"tasks"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	ts.Tasks = ts.Tasks[:0]
	for _, r := range raw.Tasks {
		t := new(Task)
		if err := t.UnmarshalJSON(r); err != nil {
			return err
		}
		ts.Tasks = append(ts.Tasks, t)
	}
	return ts.Validate()
}

// WriteJSON writes the set to w in the interchange format.
func (ts *TaskSet) WriteJSON(w io.Writer) error {
	data, err := ts.MarshalJSON()
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// ReadJSON reads a task set from r.
func ReadJSON(r io.Reader) (*TaskSet, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	ts := new(TaskSet)
	if err := ts.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	return ts, nil
}

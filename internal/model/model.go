// Package model defines the sporadic DAG task model of Serrano et al.
// (DATE 2016): a task set T = {τ1, …, τn} of DAGs with constrained
// deadlines, ordered by decreasing unique fixed priority, scheduled by
// global fixed-priority with limited preemptions on m identical cores.
package model

import (
	"fmt"
	"sort"

	"repro/internal/dag"
)

// Task is one sporadic DAG task τ = (G, D, T). Nodes of G are
// non-preemptive regions; D is the constrained relative deadline
// (D ≤ T) and T the minimum inter-arrival time.
type Task struct {
	Name     string
	G        *dag.Graph
	Deadline int64
	Period   int64
}

// Validate reports an error if the task parameters are inconsistent:
// missing graph, non-positive deadline or period, unconstrained deadline,
// or a longest path that cannot fit in the deadline even alone on
// infinitely many cores.
func (t *Task) Validate() error {
	if t.G == nil {
		return fmt.Errorf("model: task %q has no graph", t.Name)
	}
	if t.Period <= 0 {
		return fmt.Errorf("model: task %q has non-positive period %d", t.Name, t.Period)
	}
	if t.Deadline <= 0 {
		return fmt.Errorf("model: task %q has non-positive deadline %d", t.Name, t.Deadline)
	}
	if t.Deadline > t.Period {
		return fmt.Errorf("model: task %q has D %d > T %d (constrained deadlines required)",
			t.Name, t.Deadline, t.Period)
	}
	return nil
}

// Utilization returns vol(G)/T as a float.
func (t *Task) Utilization() float64 {
	return float64(t.G.Volume()) / float64(t.Period)
}

// Density returns vol(G)/D.
func (t *Task) Density() float64 {
	return float64(t.G.Volume()) / float64(t.Deadline)
}

// Feasible reports whether the task can possibly meet its deadline on any
// number of cores: L ≤ D.
func (t *Task) Feasible() bool { return t.G.LongestPath() <= t.Deadline }

// Clone returns a deep copy of the task.
func (t *Task) Clone() *Task {
	return &Task{Name: t.Name, G: t.G.Clone(), Deadline: t.Deadline, Period: t.Period}
}

// TaskSet is a priority-ordered task set: Tasks[0] has the highest
// priority (τ1 in the paper), Tasks[len-1] the lowest.
type TaskSet struct {
	Tasks []*Task
}

// NewTaskSet validates the tasks and returns them as a set in the given
// priority order.
func NewTaskSet(tasks ...*Task) (*TaskSet, error) {
	ts := &TaskSet{Tasks: tasks}
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	return ts, nil
}

// Validate checks every task and the set-level invariants.
func (ts *TaskSet) Validate() error {
	if len(ts.Tasks) == 0 {
		return fmt.Errorf("model: empty task set")
	}
	for _, t := range ts.Tasks {
		if err := t.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// N returns the number of tasks.
func (ts *TaskSet) N() int { return len(ts.Tasks) }

// Utilization returns the total utilization U = Σ vol_i / T_i.
func (ts *TaskSet) Utilization() float64 {
	u := 0.0
	for _, t := range ts.Tasks {
		u += t.Utilization()
	}
	return u
}

// HigherPriority returns the tasks with priority strictly higher than
// index k, i.e. hp(k) = Tasks[:k]. The slice is shared with the set.
func (ts *TaskSet) HigherPriority(k int) []*Task { return ts.Tasks[:k] }

// LowerPriority returns lp(k) = Tasks[k+1:]. The slice is shared.
func (ts *TaskSet) LowerPriority(k int) []*Task { return ts.Tasks[k+1:] }

// Clone returns a deep copy of the set.
func (ts *TaskSet) Clone() *TaskSet {
	c := &TaskSet{Tasks: make([]*Task, len(ts.Tasks))}
	for i, t := range ts.Tasks {
		c.Tasks[i] = t.Clone()
	}
	return c
}

// SortDeadlineMonotonic reorders the tasks by non-decreasing deadline
// (deadline-monotonic priority assignment; ties broken by period, then by
// name for determinism). The paper does not state its priority
// assignment; DM is the conventional choice for global-FP evaluations and
// coincides with rate-monotonic on the implicit-deadline sets of the
// evaluation.
func (ts *TaskSet) SortDeadlineMonotonic() {
	sort.SliceStable(ts.Tasks, func(i, j int) bool {
		a, b := ts.Tasks[i], ts.Tasks[j]
		if a.Deadline != b.Deadline {
			return a.Deadline < b.Deadline
		}
		if a.Period != b.Period {
			return a.Period < b.Period
		}
		return a.Name < b.Name
	})
}

package model

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/dag"
)

func chainTask(t *testing.T, name string, wcets []int64, d, p int64) *Task {
	t.Helper()
	var b dag.Builder
	prev := -1
	for _, c := range wcets {
		v := b.AddNode(c)
		if prev >= 0 {
			b.AddEdge(prev, v)
		}
		prev = v
	}
	return &Task{Name: name, G: b.MustBuild(), Deadline: d, Period: p}
}

func TestTaskValidate(t *testing.T) {
	ok := chainTask(t, "a", []int64{3, 4}, 10, 10)
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid task rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Task)
	}{
		{"nil graph", func(x *Task) { x.G = nil }},
		{"zero period", func(x *Task) { x.Period = 0 }},
		{"zero deadline", func(x *Task) { x.Deadline = 0 }},
		{"negative deadline", func(x *Task) { x.Deadline = -1 }},
		{"unconstrained deadline", func(x *Task) { x.Deadline = x.Period + 1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := chainTask(t, "a", []int64{3, 4}, 10, 10)
			tc.mut(bad)
			if err := bad.Validate(); err == nil {
				t.Fatal("invalid task accepted")
			}
		})
	}
}

func TestUtilizationDensityFeasible(t *testing.T) {
	task := chainTask(t, "u", []int64{4, 6}, 20, 40)
	if got := task.Utilization(); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("Utilization = %g, want 0.25", got)
	}
	if got := task.Density(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Density = %g, want 0.5", got)
	}
	if !task.Feasible() {
		t.Error("task with L=10 D=20 must be feasible")
	}
	tight := chainTask(t, "t", []int64{15, 10}, 20, 40)
	if tight.Feasible() {
		t.Error("task with L=25 D=20 must be infeasible")
	}
}

func TestTaskSetBasics(t *testing.T) {
	a := chainTask(t, "a", []int64{2}, 10, 10)
	b := chainTask(t, "b", []int64{5}, 20, 20)
	c := chainTask(t, "c", []int64{8}, 40, 40)
	ts, err := NewTaskSet(a, b, c)
	if err != nil {
		t.Fatalf("NewTaskSet: %v", err)
	}
	if ts.N() != 3 {
		t.Fatalf("N = %d", ts.N())
	}
	wantU := 2.0/10 + 5.0/20 + 8.0/40
	if got := ts.Utilization(); math.Abs(got-wantU) > 1e-12 {
		t.Errorf("Utilization = %g, want %g", got, wantU)
	}
	if hp := ts.HigherPriority(2); len(hp) != 2 || hp[0] != a || hp[1] != b {
		t.Errorf("HigherPriority(2) wrong: %v", hp)
	}
	if lp := ts.LowerPriority(0); len(lp) != 2 || lp[0] != b || lp[1] != c {
		t.Errorf("LowerPriority(0) wrong: %v", lp)
	}
	if lp := ts.LowerPriority(2); len(lp) != 0 {
		t.Errorf("LowerPriority(last) = %v, want empty", lp)
	}
}

func TestEmptyTaskSetRejected(t *testing.T) {
	if _, err := NewTaskSet(); err == nil {
		t.Fatal("empty set accepted")
	}
}

func TestTaskSetValidatePropagates(t *testing.T) {
	bad := chainTask(t, "bad", []int64{2}, 10, 10)
	bad.Period = -1
	if _, err := NewTaskSet(bad); err == nil {
		t.Fatal("set with invalid task accepted")
	}
}

func TestSortDeadlineMonotonic(t *testing.T) {
	a := chainTask(t, "a", []int64{1}, 30, 30)
	b := chainTask(t, "b", []int64{1}, 10, 10)
	c := chainTask(t, "c", []int64{1}, 20, 20)
	d := chainTask(t, "d", []int64{1}, 20, 25)
	ts := &TaskSet{Tasks: []*Task{a, b, c, d}}
	ts.SortDeadlineMonotonic()
	var names []string
	for _, x := range ts.Tasks {
		names = append(names, x.Name)
	}
	// d has D=20,T=25; c has D=20,T=20 → c before d.
	if got := strings.Join(names, ""); got != "bcda" {
		t.Errorf("DM order = %q, want bcda", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := chainTask(t, "a", []int64{2, 3}, 10, 10)
	ts, _ := NewTaskSet(a)
	c := ts.Clone()
	c.Tasks[0].Period = 99
	if ts.Tasks[0].Period == 99 {
		t.Error("clone shares task storage")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	var b dag.Builder
	r := b.AddNode(3)
	x := b.AddNode(4)
	y := b.AddNode(5)
	b.AddEdge(r, x)
	b.AddEdge(r, y)
	task := &Task{Name: "fork", G: b.MustBuild(), Deadline: 15, Period: 20}
	ts, _ := NewTaskSet(task, chainTask(t, "chain", []int64{7}, 9, 9))

	var buf bytes.Buffer
	if err := ts.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if back.N() != 2 {
		t.Fatalf("round-trip N = %d", back.N())
	}
	got := back.Tasks[0]
	if got.Name != "fork" || got.Deadline != 15 || got.Period != 20 {
		t.Errorf("task params lost: %+v", got)
	}
	if got.G.N() != 3 || got.G.NumEdges() != 2 || got.G.Volume() != 12 {
		t.Errorf("graph lost: n=%d e=%d vol=%d", got.G.N(), got.G.NumEdges(), got.G.Volume())
	}
	if !got.G.HasEdge(0, 1) || !got.G.HasEdge(0, 2) {
		t.Error("edges lost in round trip")
	}
}

func TestJSONSingleNodeNoEdges(t *testing.T) {
	ts, _ := NewTaskSet(chainTask(t, "solo", []int64{5}, 7, 7))
	data, err := ts.MarshalJSON()
	if err != nil {
		t.Fatalf("MarshalJSON: %v", err)
	}
	if !strings.Contains(string(data), `"edges": []`) {
		t.Errorf("edges should encode as [], got:\n%s", data)
	}
	back := new(TaskSet)
	if err := back.UnmarshalJSON(data); err != nil {
		t.Fatalf("UnmarshalJSON: %v", err)
	}
}

func TestJSONRejectsInvalid(t *testing.T) {
	cases := []string{
		`{"tasks":[{"name":"x","wcet":[0],"edges":[],"deadline":5,"period":5}]}`,      // zero WCET
		`{"tasks":[{"name":"x","wcet":[1],"edges":[[0,0]],"deadline":5,"period":5}]}`, // self loop
		`{"tasks":[{"name":"x","wcet":[1],"edges":[],"deadline":9,"period":5}]}`,      // D > T
		`{"tasks":[]}`, // empty
		`{"tasks":[{"name":"x","wcet":[1,1],"edges":[[0,1],[1,0]],"deadline":5,"period":5}]}`, // cycle
	}
	for i, src := range cases {
		ts := new(TaskSet)
		if err := ts.UnmarshalJSON([]byte(src)); err == nil {
			t.Errorf("case %d: invalid JSON accepted", i)
		}
	}
}

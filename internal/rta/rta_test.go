package rta

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/blocking"
	"repro/internal/dag"
	"repro/internal/fixture"
	"repro/internal/model"
)

func chain(wcets []int64) *dag.Graph {
	var b dag.Builder
	prev := -1
	for _, c := range wcets {
		v := b.AddNode(c)
		if prev >= 0 {
			b.AddEdge(prev, v)
		}
		prev = v
	}
	return b.MustBuild()
}

func diamond(c ...int64) *dag.Graph {
	var b dag.Builder
	s := b.AddNode(c[0])
	a := b.AddNode(c[1])
	bb := b.AddNode(c[2])
	t := b.AddNode(c[3])
	b.AddEdge(s, a)
	b.AddEdge(s, bb)
	b.AddEdge(a, t)
	b.AddEdge(bb, t)
	return b.MustBuild()
}

func mustSet(t *testing.T, tasks ...*model.Task) *model.TaskSet {
	t.Helper()
	ts, err := model.NewTaskSet(tasks...)
	if err != nil {
		t.Fatalf("NewTaskSet: %v", err)
	}
	return ts
}

func TestSingleTaskFPIdeal(t *testing.T) {
	// Diamond (1,2,3,4): L = 8, vol = 10. On m = 2: R = L + (vol-L)/2 = 9.
	ts := mustSet(t, &model.Task{Name: "d", G: diamond(1, 2, 3, 4), Deadline: 20, Period: 20})
	res, err := Analyze(context.Background(), ts, Config{M: 2, Method: FPIdeal})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable {
		t.Fatal("should be schedulable")
	}
	tr := res.Tasks[0]
	if tr.ResponseTimeM != 18 { // 2·9
		t.Errorf("Rm = %d, want 18", tr.ResponseTimeM)
	}
	if tr.ResponseTimeCeil(2) != 9 {
		t.Errorf("⌈R⌉ = %d, want 9", tr.ResponseTimeCeil(2))
	}
	if tr.Iterations != 1 {
		t.Errorf("iterations = %d, want 1 (no interference)", tr.Iterations)
	}
}

func TestSelfInterferenceRounding(t *testing.T) {
	// vol - L not divisible by m: star with root 1 and leaves 2,2,3 on
	// m = 2: L = 4, vol = 8, R = 4 + 4/2 = 6... choose leaves 2,2,2:
	// L = 3, vol = 7, R = 3 + 4/2 = 5 exactly; with leaves 2,2,3:
	// L = 4, vol = 8, R = 4 + 2 = 6. Use a case with fractional R:
	// leaves 2,2 → vol = 5, L = 3, R = 3 + 2/2 = 4. Fractional: root 1,
	// leaves 1,1,1: vol = 4, L = 2, (vol-L)/m = 1 exactly... Use m = 3,
	// leaves 1,1: vol = 3, L = 2, R = 2 + 1/3 → Rm = 7.
	var b dag.Builder
	r := b.AddNode(1)
	for i := 0; i < 2; i++ {
		l := b.AddNode(1)
		b.AddEdge(r, l)
	}
	ts := mustSet(t, &model.Task{Name: "s", G: b.MustBuild(), Deadline: 10, Period: 10})
	res, err := Analyze(context.Background(), ts, Config{M: 3, Method: FPIdeal})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Tasks[0].ResponseTimeM; got != 7 { // 3·2 + (3-2)
		t.Errorf("Rm = %d, want 7", got)
	}
	if got := res.Tasks[0].ResponseTimeCeil(3); got != 3 { // ⌈7/3⌉
		t.Errorf("⌈R⌉ = %d, want 3", got)
	}
}

// TestClassicUniprocessorRTA checks the fixed point against hand-computed
// exact response times for sequential tasks on one core, where Melani's
// bound coincides with classic response-time analysis for the
// synchronous case.
func TestClassicUniprocessorRTA(t *testing.T) {
	hi := &model.Task{Name: "hi", G: chain([]int64{2}), Deadline: 4, Period: 4}
	lo := &model.Task{Name: "lo", G: chain([]int64{4}), Deadline: 20, Period: 20}
	res, err := Analyze(context.Background(), mustSet(t, hi, lo), Config{M: 1, Method: FPIdeal})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable {
		t.Fatal("should be schedulable")
	}
	if got := res.Tasks[0].ResponseTimeM; got != 2 {
		t.Errorf("R_hi = %d, want 2", got)
	}
	// R_lo = 4 + 2·⌈R/4⌉ → fixed point 8.
	if got := res.Tasks[1].ResponseTimeM; got != 8 {
		t.Errorf("R_lo = %d, want 8", got)
	}
}

func TestBlockingOnHighestPriorityTask(t *testing.T) {
	// Under LP, even the highest-priority task is blocked by Δ^m of
	// lp(k); with a single node (q = 0) there are no later preemption
	// points, so I_lp = Δ^m exactly.
	hi := &model.Task{Name: "hi", G: chain([]int64{2}), Deadline: 50, Period: 50}
	// Lower task: two parallel NPRs of 10 and 7 (plus tiny source).
	var b dag.Builder
	r := b.AddNode(1)
	x := b.AddNode(10)
	y := b.AddNode(7)
	b.AddEdge(r, x)
	b.AddEdge(r, y)
	lo := &model.Task{Name: "lo", G: b.MustBuild(), Deadline: 100, Period: 100}

	res, err := Analyze(context.Background(), mustSet(t, hi, lo), Config{M: 2, Method: LPILP})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Tasks[0]
	if tr.DeltaM != 17 { // 10 + 7 can run in parallel
		t.Errorf("Δ² = %d, want 17", tr.DeltaM)
	}
	if tr.Preemptions != 0 {
		t.Errorf("p_k = %d, want 0 (no hp tasks)", tr.Preemptions)
	}
	// R = 2 + ⌊17/2⌋ = 10 → Rm = 20... base = m·L + (vol-L) = 4;
	// Rm = 4 + 2·⌊17/2⌋ = 20.
	if tr.ResponseTimeM != 20 {
		t.Errorf("Rm = %d, want 20", tr.ResponseTimeM)
	}

	// LP-max on the same set must use 10+7 as well (top-2 NPRs pooled).
	resMax, err := Analyze(context.Background(), mustSet(t, hi, lo), Config{M: 2, Method: LPMax})
	if err != nil {
		t.Fatal(err)
	}
	if got := resMax.Tasks[0].DeltaM; got != 17 {
		t.Errorf("LP-max Δ² = %d, want 17", got)
	}
}

func TestLPILPTighterThanLPMaxOnSequentialBlockers(t *testing.T) {
	// Two sequential lower-priority tasks with large NPRs: LP-max stacks
	// NPRs of the same task in parallel, LP-ILP may not.
	hi := &model.Task{Name: "hi", G: chain([]int64{2}), Deadline: 60, Period: 60}
	lo := &model.Task{Name: "lo", G: chain([]int64{9, 8}), Deadline: 100, Period: 100}
	setILP, _ := Analyze(context.Background(), mustSet(t, hi, lo), Config{M: 2, Method: LPILP})
	setMax, _ := Analyze(context.Background(), mustSet(t, hi, lo), Config{M: 2, Method: LPMax})
	// LP-ILP: only one NPR of the chain can block at a time → Δ² = 9.
	if got := setILP.Tasks[0].DeltaM; got != 9 {
		t.Errorf("LP-ILP Δ² = %d, want 9", got)
	}
	// LP-max pools both chain nodes → Δ² = 17.
	if got := setMax.Tasks[0].DeltaM; got != 17 {
		t.Errorf("LP-max Δ² = %d, want 17", got)
	}
	if setILP.Tasks[0].ResponseTimeM >= setMax.Tasks[0].ResponseTimeM {
		t.Error("LP-ILP response bound should be tighter here")
	}
}

func TestPreemptionCapByNodes(t *testing.T) {
	// A task with q = 1 preemption point but enough higher-priority
	// releases in its window: p_k must cap at q. (The hi deadline must
	// absorb hi's own blocking: Δ² over {mid, lo} is 4+6 = 10, giving
	// R_hi = 1 + ⌊10/2⌋ = 6.)
	hi := &model.Task{Name: "hi", G: chain([]int64{1}), Deadline: 12, Period: 12}
	mid := &model.Task{Name: "mid", G: chain([]int64{4, 4}), Deadline: 60, Period: 60}
	lo := &model.Task{Name: "lo", G: chain([]int64{5, 6}), Deadline: 80, Period: 80}
	res, err := Analyze(context.Background(), mustSet(t, hi, mid, lo), Config{M: 2, Method: LPILP})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Tasks[1] // mid: q = 1
	if tr.Preemptions != 1 {
		t.Errorf("p_mid = %d, want 1 (capped by q)", tr.Preemptions)
	}
	if tr.DeltaM != 6 || tr.DeltaM1 != 6 {
		t.Errorf("Δ²/Δ¹ = %d/%d, want 6/6", tr.DeltaM, tr.DeltaM1)
	}
}

func TestInfeasibleTaskUnschedulable(t *testing.T) {
	// L > D: cannot be schedulable under any method.
	bad := &model.Task{Name: "bad", G: chain([]int64{30}), Deadline: 10, Period: 10}
	for _, m := range []Method{FPIdeal, LPMax, LPILP} {
		res, err := Analyze(context.Background(), mustSet(t, bad), Config{M: 4, Method: m})
		if err != nil {
			t.Fatal(err)
		}
		if res.Schedulable {
			t.Errorf("%v: infeasible task reported schedulable", m)
		}
	}
}

func TestLowerTasksUnanalyzedAfterFailure(t *testing.T) {
	bad := &model.Task{Name: "bad", G: chain([]int64{30}), Deadline: 10, Period: 10}
	next := &model.Task{Name: "next", G: chain([]int64{1}), Deadline: 50, Period: 50}
	res, err := Analyze(context.Background(), mustSet(t, bad, next), Config{M: 2, Method: FPIdeal})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedulable {
		t.Fatal("set must be unschedulable")
	}
	if !res.Tasks[0].Analyzed || res.Tasks[0].Schedulable {
		t.Error("failing task must be analyzed and unschedulable")
	}
	if res.Tasks[1].Analyzed {
		t.Error("task after failure must be unanalyzed")
	}
}

func TestConfigErrors(t *testing.T) {
	ts := mustSet(t, &model.Task{Name: "x", G: chain([]int64{1}), Deadline: 5, Period: 5})
	if _, err := Analyze(context.Background(), ts, Config{M: 0, Method: FPIdeal}); err == nil {
		t.Error("M = 0 accepted")
	}
	bad := &model.TaskSet{}
	if _, err := Analyze(context.Background(), bad, Config{M: 1, Method: FPIdeal}); err == nil {
		t.Error("invalid task set accepted")
	}
}

// TestMethodOrdering is the paper's core qualitative claim at the level
// of response-time bounds: FP-ideal ≤ LP-ILP ≤ LP-max per task, for any
// task set (when all three analyses complete).
func TestMethodOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 40; trial++ {
		ts := randomTaskSet(rng, 2+rng.Intn(4))
		m := 2 + rng.Intn(3)
		ideal, err := Analyze(context.Background(), ts, Config{M: m, Method: FPIdeal})
		if err != nil {
			t.Fatal(err)
		}
		lilp, err := Analyze(context.Background(), ts, Config{M: m, Method: LPILP})
		if err != nil {
			t.Fatal(err)
		}
		lmax, err := Analyze(context.Background(), ts, Config{M: m, Method: LPMax})
		if err != nil {
			t.Fatal(err)
		}
		for i := range ts.Tasks {
			a, b, c := ideal.Tasks[i], lilp.Tasks[i], lmax.Tasks[i]
			if a.Analyzed && b.Analyzed && a.Schedulable && b.Schedulable &&
				a.ResponseTimeM > b.ResponseTimeM {
				t.Fatalf("trial %d task %d: FP-ideal Rm %d > LP-ILP Rm %d",
					trial, i, a.ResponseTimeM, b.ResponseTimeM)
			}
			if b.Analyzed && c.Analyzed && b.Schedulable && c.Schedulable &&
				b.ResponseTimeM > c.ResponseTimeM {
				t.Fatalf("trial %d task %d: LP-ILP Rm %d > LP-max Rm %d",
					trial, i, b.ResponseTimeM, c.ResponseTimeM)
			}
		}
		// Verdict ordering: schedulable under LP-max ⇒ under LP-ILP ⇒
		// under FP-ideal.
		if lmax.Schedulable && !lilp.Schedulable {
			t.Fatalf("trial %d: LP-max schedulable but LP-ILP not", trial)
		}
		if lilp.Schedulable && !ideal.Schedulable {
			t.Fatalf("trial %d: LP-ILP schedulable but FP-ideal not", trial)
		}
	}
}

// TestBackendsAgreeEndToEnd: the two LP-ILP backends must produce
// identical analysis results.
func TestBackendsAgreeEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		ts := randomTaskSet(rng, 2+rng.Intn(3))
		m := 2 + rng.Intn(3)
		a, err := Analyze(context.Background(), ts, Config{M: m, Method: LPILP, Backend: blocking.Combinatorial})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Analyze(context.Background(), ts, Config{M: m, Method: LPILP, Backend: blocking.PaperILP})
		if err != nil {
			t.Fatal(err)
		}
		if a.Schedulable != b.Schedulable {
			t.Fatalf("trial %d: verdicts differ", trial)
		}
		for i := range a.Tasks {
			if a.Tasks[i].ResponseTimeM != b.Tasks[i].ResponseTimeM {
				t.Fatalf("trial %d task %d: Rm %d vs %d", trial, i,
					a.Tasks[i].ResponseTimeM, b.Tasks[i].ResponseTimeM)
			}
		}
	}
}

// TestFixtureEndToEnd runs all three analyses on the Figure 1 task set
// and sanity-checks the verdicts and the blocking terms of the
// highest-priority task against the paper's Δ values.
func TestFixtureEndToEnd(t *testing.T) {
	ts := fixture.TaskSet()
	lilp, err := Analyze(context.Background(), ts, Config{M: fixture.M, Method: LPILP})
	if err != nil {
		t.Fatal(err)
	}
	if got := lilp.Tasks[0].DeltaM; got != fixture.DeltaILP4 {
		t.Errorf("τk Δ⁴ = %d, want %d", got, fixture.DeltaILP4)
	}
	if got := lilp.Tasks[0].DeltaM1; got != fixture.DeltaILP3 {
		t.Errorf("τk Δ³ = %d, want %d", got, fixture.DeltaILP3)
	}
	lmax, err := Analyze(context.Background(), ts, Config{M: fixture.M, Method: LPMax})
	if err != nil {
		t.Fatal(err)
	}
	if got := lmax.Tasks[0].DeltaM; got != fixture.DeltaMax4 {
		t.Errorf("τk LP-max Δ⁴ = %d, want %d", got, fixture.DeltaMax4)
	}
}

// TestMonotoneInM: adding cores can only help (or leave unchanged) the
// FP-ideal schedulability verdict.
func TestResponseDecreasesWithCoresFPIdeal(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 20; trial++ {
		ts := randomTaskSet(rng, 1+rng.Intn(3))
		var prev int64 = 1 << 62
		for m := 1; m <= 8; m *= 2 {
			res, err := Analyze(context.Background(), ts, Config{M: m, Method: FPIdeal})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Tasks[0].Analyzed {
				continue
			}
			// Compare unscaled ceilings of the highest-priority task
			// (no interference; R = L + (vol-L)/m strictly shrinks).
			r := res.Tasks[0].ResponseTimeCeil(m)
			if r > prev {
				t.Fatalf("trial %d m=%d: R grew from %d to %d", trial, m, prev, r)
			}
			prev = r
		}
	}
}

func randomTaskSet(rng *rand.Rand, n int) *model.TaskSet {
	tasks := make([]*model.Task, 0, n)
	for i := 0; i < n; i++ {
		g := randomDAG(rng, 2+rng.Intn(8))
		l := g.LongestPath()
		vol := g.Volume()
		// Period between vol and 4·vol keeps utilizations moderate;
		// deadline in [max(L, T/2), T].
		period := vol + rng.Int63n(3*vol+1)
		dlo := period / 2
		if dlo < l {
			dlo = l
		}
		deadline := dlo + rng.Int63n(period-dlo+1)
		tasks = append(tasks, &model.Task{
			Name: string(rune('a' + i)), G: g, Deadline: deadline, Period: period,
		})
	}
	ts := &model.TaskSet{Tasks: tasks}
	ts.SortDeadlineMonotonic()
	return ts
}

func randomDAG(rng *rand.Rand, n int) *dag.Graph {
	var b dag.Builder
	for i := 0; i < n; i++ {
		b.AddNode(int64(1 + rng.Intn(20)))
	}
	for v := 1; v < n; v++ {
		p := rng.Intn(v)
		b.AddEdge(p, v)
		for u := 0; u < v; u++ {
			if u != p && rng.Float64() < 0.25 {
				b.AddEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}

func TestMethodString(t *testing.T) {
	if FPIdeal.String() != "FP-ideal" || LPMax.String() != "LP-max" || LPILP.String() != "LP-ILP" {
		t.Error("method strings wrong")
	}
	if Method(9).String() == "" {
		t.Error("unknown method must render")
	}
}

// TestFinalNPRRefinementTightens: the refined bound (future-work (ii))
// never exceeds the plain bound, and strictly improves when the sink is
// long relative to the interference window.
func TestFinalNPRRefinementTightens(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	improved := 0
	for trial := 0; trial < 60; trial++ {
		ts := randomTaskSet(rng, 2+rng.Intn(3))
		m := 2 + rng.Intn(3)
		for _, method := range []Method{LPMax, LPILP} {
			plain, err := Analyze(context.Background(), ts, Config{M: m, Method: method})
			if err != nil {
				t.Fatal(err)
			}
			refined, err := Analyze(context.Background(), ts, Config{M: m, Method: method, FinalNPRRefinement: true})
			if err != nil {
				t.Fatal(err)
			}
			for i := range ts.Tasks {
				p, r := plain.Tasks[i], refined.Tasks[i]
				if !p.Analyzed || !r.Analyzed || !p.Schedulable || !r.Schedulable {
					continue
				}
				if r.ResponseTimeM > p.ResponseTimeM {
					t.Fatalf("trial %d task %d (%v): refined Rm %d > plain %d",
						trial, i, method, r.ResponseTimeM, p.ResponseTimeM)
				}
				if r.ResponseTimeM < p.ResponseTimeM {
					improved++
				}
			}
			if plain.Schedulable && !refined.Schedulable {
				t.Fatalf("trial %d (%v): refinement lost schedulability", trial, method)
			}
		}
	}
	if improved == 0 {
		t.Error("refinement never improved any bound; it is likely inert")
	}
}

// TestFinalNPRRefinementHandComputed pins the refined fixed point on a
// hand-checked instance: single-sink chain blocked by a lower-priority
// NPR. Plain: R = 10 + ⌊9/1⌋ = 19 on m = 1. Refined: the 6-unit sink
// starts by S = 4 + 9 = 13, so R = 19 too on one core (window shrink
// only helps with hp interference) — so use an hp task instead: window
// S = 13 sees ⌈13/20⌉ = 1 hp job, window R = 19 also 1 → same here;
// with the hp period at 14 the plain window 19+ pulls a second job in.
func TestFinalNPRRefinementHandComputed(t *testing.T) {
	hi := &model.Task{Name: "hi", G: chain([]int64{2}), Deadline: 14, Period: 14}
	lo := &model.Task{Name: "lo", G: chain([]int64{4, 6}), Deadline: 40, Period: 40}
	plain, err := Analyze(context.Background(), mustSet(t, hi, lo), Config{M: 1, Method: LPILP})
	if err != nil {
		t.Fatal(err)
	}
	refined, err := Analyze(context.Background(), mustSet(t, hi, lo), Config{M: 1, Method: LPILP, FinalNPRRefinement: true})
	if err != nil {
		t.Fatal(err)
	}
	// lo, plain: base=10, Δ¹=0 (no lp), W_hi grows with the window:
	// window 10 → W=2·? exact: R iterates 10→12→... fixed point when
	// window covers ⌈R/14⌉ jobs. R=14 window: ⌈14/14⌉=1... compute: the
	// test asserts relative tightening rather than absolute values, plus
	// both verdicts schedulable.
	pl, rf := plain.Tasks[1], refined.Tasks[1]
	if !pl.Schedulable || !rf.Schedulable {
		t.Fatalf("both variants must be schedulable: plain=%v refined=%v", pl.Schedulable, rf.Schedulable)
	}
	if rf.ResponseTimeM >= pl.ResponseTimeM {
		t.Fatalf("refined Rm %d should beat plain %d (sink 6 shrinks the window)",
			rf.ResponseTimeM, pl.ResponseTimeM)
	}
}

// TestAblateRepeatedBlocking: dropping p·Δ^{m-1} can only tighten, and
// the term must matter for multi-node tasks under hp pressure.
func TestAblateRepeatedBlocking(t *testing.T) {
	hi := &model.Task{Name: "hi", G: chain([]int64{1}), Deadline: 12, Period: 12}
	mid := &model.Task{Name: "mid", G: chain([]int64{4, 4}), Deadline: 60, Period: 60}
	lo := &model.Task{Name: "lo", G: chain([]int64{5, 6}), Deadline: 80, Period: 80}
	full, err := Analyze(context.Background(), mustSet(t, hi, mid, lo), Config{M: 2, Method: LPILP})
	if err != nil {
		t.Fatal(err)
	}
	abl, err := Analyze(context.Background(), mustSet(t, hi, mid, lo), Config{M: 2, Method: LPILP, AblateRepeatedBlocking: true})
	if err != nil {
		t.Fatal(err)
	}
	if abl.Tasks[1].ResponseTimeM >= full.Tasks[1].ResponseTimeM {
		t.Fatalf("ablated Rm %d should beat full %d (mid suffers p=1 repeat blocking)",
			abl.Tasks[1].ResponseTimeM, full.Tasks[1].ResponseTimeM)
	}
	if abl.Tasks[1].InterferenceLP >= full.Tasks[1].InterferenceLP {
		t.Fatal("ablation did not remove the repeated-blocking term")
	}
}

// TestConfigValidationErrors pins the rta-level half of the
// error-message contract: Config validation names the offending field
// (Config.M, not "cores") and value, consistently with core.Options.
func TestConfigValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"zero cores", Config{M: 0, Method: LPILP}, "invalid Config.M: 0"},
		{"negative cores", Config{M: -1, Method: LPILP}, "invalid Config.M: -1"},
		{"bad method", Config{M: 4, Method: Method(42)}, "invalid Config.Method: Method(42)"},
		{"bad backend", Config{M: 4, Method: LPILP, Backend: blocking.Backend(9)}, "invalid Config.Backend: Backend(9)"},
		{"negative max iterations", Config{M: 4, Method: LPILP, MaxIterations: -5}, "invalid Config.MaxIterations: -5"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewAnalyzer(tc.cfg)
			if err == nil {
				t.Fatalf("NewAnalyzer(%+v) succeeded, want error containing %q", tc.cfg, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("NewAnalyzer(%+v) error = %q, want it to contain %q", tc.cfg, err, tc.want)
			}
			a, aerr := NewAnalyzer(Config{M: 1, Method: FPIdeal})
			if aerr != nil {
				t.Fatal(aerr)
			}
			rerr := a.Reconfigure(tc.cfg)
			if rerr == nil || rerr.Error() != err.Error() {
				t.Errorf("Reconfigure error %q differs from NewAnalyzer error %q", rerr, err)
			}
		})
	}
}

package rta

import (
	"bytes"
	"context"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/blocking"
	"repro/internal/engine/cache"
	"repro/internal/fixture"
	"repro/internal/model"
	"repro/internal/obs"
)

// TestAnalyzerSteadyStateZeroAlloc pins the perf contract of the
// reusable analyzer: once an Analyzer has seen a task set's graphs, the
// whole analysis — scratch setup, suffix-incremental blocking
// aggregation, and the fixed-point loops — performs no heap allocation
// for any method, with or without a shared cache. (With one, steady
// state resolves every µ table in the analyzer-local identity memo, so
// the shared cache costs nothing once warm — the contract that keeps a
// cached engine no slower than an uncached one.)
func TestAnalyzerSteadyStateZeroAlloc(t *testing.T) {
	ts := fixture.TaskSet()
	for _, method := range []Method{FPIdeal, LPMax, LPILP} {
		for _, memo := range []*cache.Cache{nil, cache.New(0)} {
			a, err := NewAnalyzer(Config{M: fixture.M, Method: method, Cache: memo})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := a.AnalyzeInPlace(context.Background(), ts); err != nil { // warm the memos
				t.Fatal(err)
			}
			var sink *Result
			allocs := testing.AllocsPerRun(100, func() {
				r, err := a.AnalyzeInPlace(context.Background(), ts)
				if err != nil {
					panic(err)
				}
				sink = r
			})
			if allocs != 0 {
				t.Errorf("%v (cached=%v): steady-state AnalyzeInPlace allocates %.1f objects/op, want 0",
					method, memo != nil, allocs)
			}
			if sink == nil || len(sink.Tasks) != ts.N() {
				t.Fatalf("%v: bad result", method)
			}
		}
	}
}

// TestAnalyzerZeroAllocWithTrace pins that attaching a live metrics
// registry (Config.Trace, the analysis-phase tracing behind /metrics)
// keeps the steady-state analysis allocation-free: every span and
// counter the hot path records is an atomic write into pre-resolved
// series. This is the instrumented twin of
// TestAnalyzerSteadyStateZeroAlloc and the test-level guarantee behind
// BenchmarkAnalyzePoint's 0 allocs/op.
func TestAnalyzerZeroAllocWithTrace(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTrace(reg)
	ts := fixture.TaskSet()
	for _, method := range []Method{FPIdeal, LPMax, LPILP} {
		a, err := NewAnalyzer(Config{M: fixture.M, Method: method, Trace: tr})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := a.AnalyzeInPlace(context.Background(), ts); err != nil { // warm the memos
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(100, func() {
			if _, err := a.AnalyzeInPlace(context.Background(), ts); err != nil {
				panic(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%v: traced steady-state AnalyzeInPlace allocates %.1f objects/op, want 0", method, allocs)
		}
	}
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		"lpdag_analysis_full_runs_total",
		"lpdag_analysis_suffix_push_seconds",
		"lpdag_analysis_fixed_point_seconds",
		"lpdag_analysis_fixed_point_iterations",
	} {
		if !strings.Contains(buf.String(), series) {
			t.Errorf("scrape is missing %s after traced runs", series)
		}
	}
}

// TestAnalyzerEquivalence quick-checks that one reused Analyzer — with
// and without a shared cache — reports results identical to the
// one-shot Analyze for random task sets across methods and core counts.
// This is the referee for the suffix-incremental rewrite: every field of
// every TaskResult must match, not just the verdict.
func TestAnalyzerEquivalence(t *testing.T) {
	for _, method := range []Method{FPIdeal, LPMax, LPILP} {
		reused, err := NewAnalyzer(Config{M: 4, Method: method})
		if err != nil {
			t.Fatal(err)
		}
		memo := cache.New(0)
		cached, err := NewAnalyzer(Config{M: 4, Method: method, Cache: memo})
		if err != nil {
			t.Fatal(err)
		}
		check := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			ts := randomTaskSet(rng, 1+rng.Intn(5))
			want, err := Analyze(context.Background(), ts, Config{M: 4, Method: method})
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range []*Analyzer{reused, cached} {
				got, err := a.AnalyzeInPlace(context.Background(), ts)
				if err != nil {
					t.Fatal(err)
				}
				if got.Schedulable != want.Schedulable || got.M != want.M || got.Method != want.Method ||
					len(got.Tasks) != len(want.Tasks) {
					return false
				}
				for i := range got.Tasks {
					if got.Tasks[i] != want.Tasks[i] {
						t.Logf("seed=%d method=%v task=%d: got %+v want %+v",
							seed, method, i, got.Tasks[i], want.Tasks[i])
						return false
					}
				}
			}
			return true
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
			t.Errorf("%v: %v", method, err)
		}
	}
}

// TestCachedUncachedEquivalenceUnderEdits quick-checks the cache
// demotion invariant end to end: a cached analyzer and an uncached one
// report bit-identical results across methods, solver backends, and a
// random edit sequence applied to the task set (swap priorities, drop
// a task, append a fresh one — the session workload shape). One cache
// instance serves the whole sequence, so µ tables materialized for an
// earlier version of the set are re-served, content-addressed, to the
// edited versions; every TaskResult field must still match recompute.
func TestCachedUncachedEquivalenceUnderEdits(t *testing.T) {
	for _, method := range []Method{LPMax, LPILP} {
		for _, be := range []blocking.Backend{blocking.Combinatorial, blocking.PaperILP} {
			memo := cache.New(0)
			cached, err := NewAnalyzer(Config{M: 3, Method: method, Backend: be, Cache: memo})
			if err != nil {
				t.Fatal(err)
			}
			plain, err := NewAnalyzer(Config{M: 3, Method: method, Backend: be})
			if err != nil {
				t.Fatal(err)
			}
			check := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				ts := randomTaskSet(rng, 2+rng.Intn(3))
				for step := 0; ; step++ {
					got, err := cached.AnalyzeInPlace(context.Background(), ts)
					if err != nil {
						t.Fatal(err)
					}
					want, err := plain.AnalyzeInPlace(context.Background(), ts)
					if err != nil {
						t.Fatal(err)
					}
					if got.Schedulable != want.Schedulable || len(got.Tasks) != len(want.Tasks) {
						return false
					}
					for i := range got.Tasks {
						if got.Tasks[i] != want.Tasks[i] {
							t.Logf("seed=%d method=%v be=%v step=%d task=%d: cached %+v uncached %+v",
								seed, method, be, step, i, got.Tasks[i], want.Tasks[i])
							return false
						}
					}
					if step == 3 {
						return true
					}
					tasks := append([]*model.Task(nil), ts.Tasks...)
					switch n := len(tasks); rng.Intn(3) {
					case 0: // swap two priorities
						i, j := rng.Intn(n), rng.Intn(n)
						tasks[i], tasks[j] = tasks[j], tasks[i]
					case 1: // drop one task (keep the set non-empty)
						if n > 1 {
							i := rng.Intn(n)
							tasks = append(tasks[:i], tasks[i+1:]...)
						}
					default: // append a fresh lowest-priority task
						tasks = append(tasks, randomTaskSet(rng, 1).Tasks[0])
					}
					ts = &model.TaskSet{Tasks: tasks}
				}
			}
			maxCount := 30
			if be == blocking.PaperILP {
				maxCount = 8 // the ILP backend is orders of magnitude slower
			}
			if err := quick.Check(check, &quick.Config{MaxCount: maxCount}); err != nil {
				t.Errorf("%v/%v: %v", method, be, err)
			}
		}
	}
}

// TestAnalyzerMuMemoColdDrop pins the retention policy of the
// analyzer-local µ memo: identity keying only pays off when the same
// TaskSet instance is re-analyzed, so a stream of freshly built sets —
// the campaign and server shape — must drop the memo instead of
// pinning up to muMemoLimit dead graphs, while a workload that holds
// one set keeps its warm entries.
func TestAnalyzerMuMemoColdDrop(t *testing.T) {
	a, err := NewAnalyzer(Config{M: 4, Method: LPILP})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	const tasksPerSet = 3
	maxEntries := 0
	for i := 0; i < 5*muColdLimit; i++ {
		if _, err := a.AnalyzeInPlace(context.Background(), randomTaskSet(rng, tasksPerSet)); err != nil {
			t.Fatal(err)
		}
		maxEntries = max(maxEntries, len(a.mus))
	}
	// The cold-drop policy clears every muColdLimit hitless calls on a
	// fresh-set stream, so at most a cold window's worth of graphs
	// (plus the warm-up window after a drop) is ever retained — far
	// below the 5*muColdLimit sets analyzed.
	if limit := (muColdLimit + 1) * tasksPerSet; maxEntries > limit {
		t.Errorf("fresh-set stream retained %d µ entries, want ≤ %d", maxEntries, limit)
	}
	// A held set stays warm: entries survive repeated re-analysis.
	held := randomTaskSet(rng, tasksPerSet)
	for i := 0; i < 10; i++ {
		if _, err := a.AnalyzeInPlace(context.Background(), held); err != nil {
			t.Fatal(err)
		}
	}
	if a.muHits == 0 {
		t.Error("re-analysis of a held set should hit the µ memo")
	}
}

// TestAnalyzerScratchTailCleared pins that analyzing a small set after
// a large one does not pin the large set's graphs in the scratch tail.
func TestAnalyzerScratchTailCleared(t *testing.T) {
	a, err := NewAnalyzer(Config{M: 4, Method: LPILP})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	if _, err := a.AnalyzeInPlace(context.Background(), randomTaskSet(rng, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.AnalyzeInPlace(context.Background(), randomTaskSet(rng, 2)); err != nil {
		t.Fatal(err)
	}
	for i, g := range a.graphs[len(a.graphs):cap(a.graphs)] {
		if g != nil {
			t.Fatalf("scratch tail index %d still pins a graph", i)
		}
	}
}

// TestAnalyzeOwnsResult pins that Analyze (unlike AnalyzeInPlace)
// returns a result that survives subsequent calls.
func TestAnalyzeOwnsResult(t *testing.T) {
	ts := fixture.TaskSet()
	a, err := NewAnalyzer(Config{M: fixture.M, Method: LPILP})
	if err != nil {
		t.Fatal(err)
	}
	first, err := a.Analyze(context.Background(), ts)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]TaskResult(nil), first.Tasks...)
	if _, err := a.AnalyzeInPlace(context.Background(), &model.TaskSet{Tasks: ts.Tasks[:1]}); err != nil {
		t.Fatal(err)
	}
	for i := range snapshot {
		if first.Tasks[i] != snapshot[i] {
			t.Fatalf("Analyze result mutated by a later AnalyzeInPlace call")
		}
	}
}

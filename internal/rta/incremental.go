package rta

// Incremental re-analysis for stateful sessions (internal/session).
//
// The analysis is priority-suffix structured: task k's result depends
// only on (a) the task itself, (b) the Δ^m/Δ^{m-1} aggregate of the
// suffix below it, and (c) the multiset of (response bound, volume,
// period, verdict) of the tasks above it — the interference and
// preemption-count sums of Equation (4) are order-independent folds
// over hp(k). AnalyzeIncremental exploits both directions across calls:
//
//   - Blocking: the suffix aggregator scans bottom-up, so an edit at
//     priority k leaves the aggregates of the unchanged tail intact. A
//     checkpoint of the aggregator is saved after every push
//     (blocking.SuffixCheckpoint, O(m) each); the next call restores
//     the checkpoint of the longest unchanged tail and replays only the
//     pushes above it.
//   - Fixed points: a task's stored TaskResult is reused verbatim when
//     its identity, its Δ pair, and the higher-priority state above it
//     are unchanged. The fixed point reads hp(k) only as the positional
//     (volume, period, response bound) triples plus the running verdict
//     — task identity never enters Equation (4) — so the hp-state
//     comparison is on those values, and an edit whose numeric effect
//     dies out (a reorder of equal-valued tasks, a move that the ⌊·/m⌋
//     floors absorb) stops invalidating anything below the point where
//     the values re-converge. Candidates are tracked for the common
//     positional prefix and, for pure reorders (same task multiset,
//     which the order-independent interference sums cannot observe),
//     for the common tail as well.
//
// Reused entries are copies of results the shared solveTask produced
// under bit-identical inputs, so the incremental result equals the
// from-scratch AnalyzeInPlace result exactly — asserted field-for-field
// by TestAnalyzeIncrementalMatchesFromScratch and the session-level
// quickcheck in internal/session.
//
// Tasks are treated as immutable and identified by pointer: a content
// edit must arrive as a new *model.Task (the session layer guarantees
// this, and also that a list never holds the same pointer twice).

import (
	"context"
	"time"

	"repro/internal/blocking"
	"repro/internal/model"
)

// incState is the cross-call memory of AnalyzeIncremental: the last
// analyzed list, its per-position blocking aggregates and results, and
// one aggregator checkpoint per push.
type incState struct {
	valid bool

	tasks   []*model.Task
	in      []blocking.Interference // Δ pair per position (zero for FP-ideal)
	tr      []TaskResult
	rm      []int64
	vols    []int64 // volume per position (hp-state comparison)
	periods []int64 // period per position (hp-state comparison)

	// checks[c] is the aggregator state after pushing the c
	// lowest-priority graphs (checks[0] = empty). Maintained only for
	// the limited-preemptive methods.
	checks []blocking.SuffixCheckpoint
}

// AnalyzeIncremental runs the analysis like AnalyzeInPlace but reuses
// everything the previous call on this analyzer already computed for
// the unchanged parts of the priority ordering: suffix blocking
// aggregates resume from the checkpoint of the longest unchanged tail,
// and per-task fixed points are skipped outright when their inputs are
// bit-identical to the previous run. The returned Result is the
// analyzer's internal one, valid until the next call, and is exactly
// what AnalyzeInPlace would return for the same set.
//
// The first call (and any call after Reconfigure) is a plain full
// analysis that seeds the state. A context error invalidates the state;
// the next call recovers by analyzing from scratch.
func (a *Analyzer) AnalyzeIncremental(ctx context.Context, ts *model.TaskSet) (*Result, error) {
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	cfg := a.cfg
	n := ts.N()
	cfg.Trace.RecordIncremental()
	a.prologue()
	a.ensure(n)
	res := &a.res
	res.Schedulable, res.Method, res.M = true, cfg.Method, cfg.M
	for i, t := range ts.Tasks {
		a.vols[i], a.longs[i] = t.G.Volume(), t.G.LongestPath()
		a.graphs[i] = t.G
	}

	if a.inc == nil {
		a.inc = &incState{}
	}
	inc := a.inc

	// Diff against the previous list: common positional prefix p, raw
	// common tail t (drives checkpoint reuse), and the prefix-disjoint
	// suffix s (drives result reuse; trimmed so the two never overlap).
	p, tail := 0, 0
	prevN := len(inc.tasks)
	if inc.valid {
		maxC := min(n, prevN)
		for p < maxC && ts.Tasks[p] == inc.tasks[p] {
			p++
		}
		for tail < maxC && ts.Tasks[n-1-tail] == inc.tasks[prevN-1-tail] {
			tail++
		}
	}
	s := min(tail, min(n, prevN)-p)
	// middleSetSame: the changed middle holds the same task pointers in
	// a different order — a pure reorder. The order-independent hp sums
	// cannot observe it, so tail results stay reusable.
	middleSetSame := inc.valid && prevN == n && sameTaskSet(ts.Tasks[p:n-s], inc.tasks[p:n-s])

	// Blocking: restore the aggregator to the checkpoint of the longest
	// unchanged tail and replay only the pushes above it, re-saving
	// checkpoints as the scan climbs. Tail aggregate values are copied
	// from the previous run instead of being recomputed. The tail is
	// measured on GRAPH identity, not task identity: the aggregates see
	// only graphs, so renaming a task or swapping two instances of the
	// same program invalidates nothing here.
	if cfg.Method != FPIdeal {
		var t0 time.Time
		if cfg.Trace != nil {
			t0 = time.Now()
		}
		c0 := 0
		if inc.valid && len(inc.checks) > 0 {
			tailG := 0
			for maxC := min(n, prevN); tailG < maxC &&
				ts.Tasks[n-1-tailG].G == inc.tasks[prevN-1-tailG].G; tailG++ {
			}
			c0 = min(tailG, n-1, len(inc.checks)-1)
		}
		if cap(inc.checks) < n {
			grown := make([]blocking.SuffixCheckpoint, n)
			copy(grown, inc.checks)
			inc.checks = grown
		}
		inc.checks = inc.checks[:n]
		if c0 == 0 {
			a.agg.Save(&inc.checks[0]) // empty state (ensure reset the agg)
		} else {
			a.agg.Restore(&inc.checks[c0])
		}
		for j := n - 2; j >= n-c0; j-- {
			a.suffix[j] = inc.in[prevN-(n-j)]
		}
		a.suffix[n-1-c0] = a.agg.Interference()
		for c := c0 + 1; c <= n-1; c++ {
			if err := ctx.Err(); err != nil {
				inc.valid = false
				return nil, err
			}
			a.push(a.graphs[n-c])
			a.agg.Save(&inc.checks[c])
			a.suffix[n-c-1] = a.agg.Interference()
		}
		a.scanPos = 1 // a.suffix is fully materialized
		if cfg.Trace != nil {
			cfg.Trace.SuffixRestore.Since(t0)
		}
	} else {
		clear(a.suffix[:n]) // FP-ideal: no blocking; keep Δ comparisons exact
	}

	// Fixed points, top-down. hpStateSame holds while every position
	// processed so far carries the same (volume, period, response
	// bound, verdict) as the previous run — the only higher-priority
	// state a lower task's fixed point reads (task identity never
	// enters Equation (4)).
	hpStateSame := inc.valid
	for k := 0; k < n; k++ {
		if err := ctx.Err(); err != nil {
			inc.valid = false
			return nil, err
		}
		task := ts.Tasks[k]
		tr := &res.Tasks[k]

		// Reuse eligibility: same task at the same effective position
		// (prefix, or tail of a pure reorder), clean hp state, a still-
		// schedulable run, and an unchanged Δ pair. middleSetSame
		// implies prevN == n, so the mapped previous index is k in both
		// regions.
		reuse := res.Schedulable && hpStateSame &&
			(k < p || (k >= n-s && middleSetSame)) &&
			inc.tr[k].Analyzed &&
			inc.in[k] == a.suffix[k]
		if reuse {
			// res.Tasks persists across calls, so for a position that
			// was also reused (or identical) last time the value is
			// already in place — comparing first keeps the steady-state
			// loop free of pointer-bearing writes (and their barriers).
			if *tr != inc.tr[k] {
				*tr = inc.tr[k]
			}
			a.rm[k] = tr.ResponseTimeM
		} else {
			*tr = TaskResult{Name: task.Name}
			if !res.Schedulable {
				tr.Analyzed = false
				continue
			}
			tr.Analyzed = true
			if cfg.Method != FPIdeal {
				in := a.suffix[k]
				tr.DeltaM, tr.DeltaM1 = in.DeltaM, in.DeltaM1
			}
			if err := a.solveTask(ctx, ts, k, tr); err != nil {
				inc.valid = false
				return nil, err
			}
			// The hp state stays clean as long as this position carries
			// the exact values a lower task's fixed point would have
			// read last time — regardless of which task produced them.
			if hpStateSame {
				if k >= prevN || !inc.tr[k].Analyzed ||
					inc.vols[k] != a.vols[k] || inc.periods[k] != task.Period ||
					inc.rm[k] != a.rm[k] || inc.tr[k].Schedulable != tr.Schedulable {
					hpStateSame = false
				}
			}
		}
		if !tr.Schedulable {
			res.Schedulable = false
		}
	}

	// Snapshot this run as the next call's baseline. Entries the run
	// reused are already bit-identical in the snapshot (they were copied
	// out of it), so only changed positions are written back — the
	// write-barrier traffic of recopying pointer-bearing TaskResults
	// every call is what this avoids.
	if len(inc.tasks) != n {
		inc.tasks = resize(inc.tasks, n)
		inc.in = resize(inc.in, n)
		inc.tr = resize(inc.tr, n)
		inc.rm = resize(inc.rm, n)
		inc.vols = resize(inc.vols, n)
		inc.periods = resize(inc.periods, n)
		// Shrinking must not pin the departed tasks (or their names)
		// through the backing arrays.
		clear(inc.tasks[n:cap(inc.tasks)])
		clear(inc.tr[n:cap(inc.tr)])
	}
	for k := 0; k < n; k++ {
		t := ts.Tasks[k]
		if inc.tasks[k] == t && inc.tr[k] == res.Tasks[k] && inc.in[k] == a.suffix[k] &&
			inc.rm[k] == a.rm[k] {
			continue
		}
		inc.tasks[k] = t
		inc.in[k] = a.suffix[k]
		inc.tr[k] = res.Tasks[k]
		inc.rm[k] = a.rm[k]
		inc.vols[k] = a.vols[k]
		inc.periods[k] = t.Period
	}
	inc.valid = true
	return res, nil
}

// resize returns s with length n, reusing its backing array when large
// enough.
func resize[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// sameTaskSet reports whether the two small slices hold the same
// multiset of task pointers. Lists beyond 64 entries conservatively
// report false (no reuse, still correct).
func sameTaskSet(a, b []*model.Task) bool {
	if len(a) != len(b) || len(a) > 64 {
		return false
	}
	var used uint64
outer:
	for _, t := range a {
		for j, u := range b {
			if t == u && used&(1<<uint(j)) == 0 {
				used |= 1 << uint(j)
				continue outer
			}
		}
		return false
	}
	return true
}

// Package rta implements the response-time analysis of Serrano et al.
// (DATE 2016) for sporadic DAG tasks under global fixed-priority
// scheduling, in three variants:
//
//   - FP-ideal: the fully-preemptive bound of Melani et al. (ECRTS 2015),
//     Equation (1) of the paper, with zero preemption overhead and no
//     lower-priority interference — the paper's idealised baseline;
//   - LP-max: Equation (4) with the Equation (5) blocking bound;
//   - LP-ILP: Equation (4) with the Equations (6)-(8) blocking bound.
//
// # Exact arithmetic
//
// Equations (1)/(4) mix integer terms with the rational self-interference
// term (vol-L)/m. To keep schedulability verdicts exact, all response
// times are carried scaled by m: Rm = m·R. In scaled form the fixed point
// is
//
//	Rm ← m·L + (vol - L) + m·⌊(I_lp + I_hp)/m⌋
//
// and every quantity is an int64; a task is schedulable iff its fixed
// point satisfies Rm ≤ m·D. The carry-in workload bound of an interferer
// τ_i in a window of (scaled) length Rm is, with X = Rm + Rm_i - vol_i,
//
//	W_i = ⌊X/(m·T_i)⌋·vol_i + min(vol_i, X mod (m·T_i))
//
// which is Melani et al.'s W_i(Δ) = ⌊(Δ+R_i-vol_i/m)/T_i⌋·vol_i +
// min(vol_i, m·((Δ+R_i-vol_i/m) mod T_i)) evaluated exactly.
package rta

import (
	"context"
	"fmt"
	"time"

	"repro/internal/blocking"
	"repro/internal/dag"
	"repro/internal/engine/cache"
	"repro/internal/model"
	"repro/internal/obs"
)

// Method selects the analysis variant.
type Method int

// Analysis variants.
const (
	// FPIdeal is Equation (1): fully preemptive, no blocking, no
	// preemption cost.
	FPIdeal Method = iota
	// LPMax is Equation (4) with Equation (5) blocking.
	LPMax
	// LPILP is Equation (4) with Equations (6)-(8) blocking.
	LPILP
)

func (m Method) String() string {
	switch m {
	case FPIdeal:
		return "FP-ideal"
	case LPMax:
		return "LP-max"
	case LPILP:
		return "LP-ILP"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Config parameterises an analysis run.
type Config struct {
	M       int    // number of identical cores, ≥ 1
	Method  Method // analysis variant
	Backend blocking.Backend

	// Cache, when non-nil, memoizes the content-addressed per-graph
	// µ[c] tables (Equation (6)) across analyzers. It backs the
	// analyzer-local identity memo, not the other way round: a lookup
	// reaches the shared cache only when this analyzer has not seen the
	// graph instance before, so steady-state re-analysis costs the same
	// with or without it, while structurally identical graphs arriving
	// on other analyzers (pooled workers, fresh deserializations) skip
	// the clique search or ILP solve. Cheaper quantities (top-NPR
	// lists, suffix Δ aggregates) are never cached — recompute wins.
	// Results are identical with or without a cache.
	Cache *cache.Cache

	// MaxIterations bounds the fixed-point loop per task as a safety
	// net; 0 means DefaultMaxIterations. The iteration is monotone and
	// bounded by m·D, so the limit only matters for adversarial inputs.
	MaxIterations int

	// FinalNPRRefinement enables the paper's future-work item (ii): for
	// tasks whose DAG has a single sink, once the final non-preemptive
	// region starts it runs to completion, so interference and blocking
	// only need to be accounted until its start. The bound becomes
	//
	//	R_k = S_k + C_sink,   S_k = (L-C_sink) + (vol-C_sink-(L-C_sink))/m
	//	                            + ⌊(I_lp + I_hp(S_k))/m⌋
	//
	// i.e. the Equation (4) fixed point for the sub-DAG without the sink
	// evaluated over the (smaller) window S_k, plus the sink's WCET.
	// Both interference terms are non-decreasing in the window, so the
	// refined bound never exceeds the plain one; tests assert this and
	// the simulator oracle covers soundness. Tasks with several sinks
	// fall back to the plain bound. Ignored for FPIdeal.
	FinalNPRRefinement bool

	// AblateRepeatedBlocking drops the p_k·Δ^{m-1} term of Equation (3),
	// keeping only the initial Δ^m blocking. This is UNSOUND as a
	// schedulability test and exists only for the ablation experiments
	// that quantify how much of the LP pessimism the repeated-blocking
	// term contributes. Ignored for FPIdeal.
	AblateRepeatedBlocking bool

	// Trace, when non-nil, records analysis-phase span timings (blocking
	// pushes, cache lookups, per-task fixed points, incremental suffix
	// restores) into the given histograms. Nil — the default — keeps the
	// hot path at one predictable branch per phase and zero extra
	// allocation; verdicts and results are identical either way.
	Trace *obs.Trace

	// DonationSafeBlocking counts every preemption point as a potential
	// blocking episode: p_k = q_k instead of the paper's
	// p_k = min(q_k, h_k). The paper's min assumes repeated blocking
	// requires a higher-priority-induced preemption, which its
	// sequential-task substrate (RTNS 2015) guarantees — but a DAG task
	// under eager work-conserving scheduling also yields cores at
	// parallelism dips (a join waiting on a long branch), and a
	// lower-priority NPR picked up at such a dip blocks the task with
	// no preemption involved; successive dips can even be blocked by
	// NPRs of one chain that the precedence-aware Δ^m counts only once.
	// The differential soundness harness found generated sets whose
	// simulated response exceeds the paper-exact LP-ILP bound this way
	// (see DESIGN.md, "Eager-donation blocking gap", and the pinned
	// reproducer in internal/experiments). Every blocking episode after
	// the initial one starts at a node boundary of τ_k, so q_k bounds
	// the episode count and p_k = q_k restores soundness under eager
	// donation, at the price of extra pessimism. Off by default: the
	// default analysis reproduces the paper. Ignored for FPIdeal.
	DonationSafeBlocking bool
}

// DefaultMaxIterations is the per-task fixed-point budget.
const DefaultMaxIterations = 1_000_000

// TaskResult reports the analysis of one task.
type TaskResult struct {
	Name        string
	Schedulable bool
	Analyzed    bool // false when analysis stopped at a higher-priority failure

	// ResponseTimeM is the response-time upper bound scaled by M
	// (Rm = m·R). When the task is unschedulable it holds the first
	// value that exceeded m·D.
	ResponseTimeM int64

	Iterations int

	// Blocking terms used (zero for FP-ideal).
	DeltaM  int64
	DeltaM1 int64

	// Preemptions is p_k = min(q_k, h_k) at the final window.
	Preemptions int64

	// InterferenceHP and InterferenceLP are I_hp and I_lp at the fixed
	// point (unscaled workload units).
	InterferenceHP int64
	InterferenceLP int64
}

// ResponseTimeCeil returns ⌈R⌉ in time units for an analysis on m cores.
func (r *TaskResult) ResponseTimeCeil(m int) int64 {
	return (r.ResponseTimeM + int64(m) - 1) / int64(m)
}

// Result reports the analysis of a whole task set.
type Result struct {
	Schedulable bool
	Tasks       []TaskResult
	Method      Method
	M           int
}

// Analyzer runs the response-time analysis with fixed configuration,
// reusing every internal buffer across calls: the structural scratch
// (per-task volumes, longest paths, response bounds), the
// suffix-incremental blocking aggregator, an analyzer-local µ-table memo
// keyed by graph identity, and the result itself for AnalyzeInPlace. In
// steady state — re-analyzing task sets whose graphs the analyzer has
// seen — AnalyzeInPlace performs no heap allocation at all (asserted by
// TestAnalyzerSteadyStateZeroAlloc).
//
// An Analyzer is NOT safe for concurrent use; give each worker its own
// (core.Analyzer pools them, the engine keeps one pool per spec).
type Analyzer struct {
	cfg     Config
	maxIter int

	// Per-set scratch, grown to the largest set analyzed.
	vols, longs, rm []int64
	graphs          []*dag.Graph
	suffix          []blocking.Interference

	// Reverse suffix scan state: graphs[scanPos:] have been pushed into
	// agg, and suffix[j] is valid for j ≥ scanPos-1.
	scanPos int
	agg     *blocking.SuffixAggregator

	// µ memo for the LP-ILP path, keyed by graph identity (graphs are
	// immutable). It fronts the shared content-addressed cache when one
	// is configured: an identity hit is a plain map probe, no
	// fingerprint hashing or lock. Bounded two ways: cleared wholesale past
	// muMemoLimit entries, and dropped after muColdLimit consecutive
	// hitless calls (see AnalyzeInPlace) — identity keying only pays
	// off when the same TaskSet instances recur, and a pooled
	// long-lived analyzer fed a stream of freshly built sets must not
	// pin dead graphs (and their lazily memoized bitsets) until the
	// entry limit.
	mus         map[*dag.Graph][]int64
	muHits      int  // memo hits in the current call
	muQueried   bool // whether the current call consulted the memo at all
	muColdCalls int  // consecutive µ-consulting calls with zero hits

	// inc is the cross-call incremental state of AnalyzeIncremental
	// (see incremental.go); nil until first used.
	inc *incState

	res Result
}

// muMemoLimit bounds the analyzer-local µ memo.
const muMemoLimit = 4096

// muColdLimit is how many consecutive hitless AnalyzeInPlace calls the
// µ memo survives before being dropped. Large enough that a workload
// cycling over a few dozen held sets through a pooled analyzer stays
// warm (an engine sweeping 16 sets across 4 workers repeats a set at an
// analyzer well within this stride), small enough that a fresh-set
// campaign stream retains at most ~a cold window's worth of dead
// graphs instead of muMemoLimit.
const muColdLimit = 32

// validateConfig checks cfg, naming the offending field and value the
// way every layer of the API does (see TestConfigValidationErrors).
func validateConfig(cfg Config) error {
	if cfg.M < 1 {
		return fmt.Errorf("rta: invalid Config.M: %d (must be ≥ 1)", cfg.M)
	}
	switch cfg.Method {
	case FPIdeal, LPMax, LPILP:
	default:
		return fmt.Errorf("rta: invalid Config.Method: %v", cfg.Method)
	}
	switch cfg.Backend {
	case blocking.Combinatorial, blocking.PaperILP:
	default:
		return fmt.Errorf("rta: invalid Config.Backend: %v", cfg.Backend)
	}
	if cfg.MaxIterations < 0 {
		return fmt.Errorf("rta: invalid Config.MaxIterations: %d (must be ≥ 0)", cfg.MaxIterations)
	}
	return nil
}

// NewAnalyzer validates the configuration and returns a reusable
// Analyzer.
func NewAnalyzer(cfg Config) (*Analyzer, error) {
	if err := validateConfig(cfg); err != nil {
		return nil, err
	}
	a := &Analyzer{}
	a.setConfig(cfg)
	return a, nil
}

// setConfig installs a validated configuration.
func (a *Analyzer) setConfig(cfg Config) {
	a.cfg = cfg
	a.maxIter = cfg.MaxIterations
	if a.maxIter == 0 {
		a.maxIter = DefaultMaxIterations
	}
}

// Reconfigure swaps the analyzer's configuration, invalidating every
// configuration-dependent memo (the µ tables depend on M and Backend,
// the incremental state on everything). Scratch buffers are kept, so a
// session flipping between core counts pays re-analysis, not
// re-allocation.
func (a *Analyzer) Reconfigure(cfg Config) error {
	if err := validateConfig(cfg); err != nil {
		return err
	}
	a.setConfig(cfg)
	clear(a.mus)
	a.muHits, a.muColdCalls, a.muQueried = 0, 0, false
	if a.inc != nil {
		a.inc.valid = false
	}
	return nil
}

// Config returns the analyzer's configuration.
func (a *Analyzer) Config() Config { return a.cfg }

// Analyze runs the analysis and returns a freshly allocated Result the
// caller owns. The context cancels long analyses between tasks and
// between fixed-point chunks.
func (a *Analyzer) Analyze(ctx context.Context, ts *model.TaskSet) (*Result, error) {
	r, err := a.AnalyzeInPlace(ctx, ts)
	if err != nil {
		return nil, err
	}
	out := *r
	out.Tasks = append([]TaskResult(nil), r.Tasks...)
	return &out, nil
}

// Analyze runs the response-time analysis on the task set under the
// given configuration. Tasks are processed in priority order; if a task
// is found unschedulable, the set verdict is unschedulable and the
// remaining (lower-priority) tasks are reported unanalyzed, mirroring the
// iterative structure of Equation (1) which needs each higher-priority
// response time as input.
//
// One-shot convenience over NewAnalyzer; callers analyzing more than one
// set with the same configuration should hold an Analyzer (or a
// core.Analyzer, which pools them) to reuse its scratch state.
func Analyze(ctx context.Context, ts *model.TaskSet, cfg Config) (*Result, error) {
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	a, err := NewAnalyzer(cfg)
	if err != nil {
		return nil, err
	}
	return a.Analyze(ctx, ts)
}

// ensure sizes the scratch buffers for an n-task set and resets the
// suffix scan. Allocation-free once the buffers have grown.
func (a *Analyzer) ensure(n int) {
	if cap(a.vols) < n {
		a.vols = make([]int64, n)
		a.longs = make([]int64, n)
		a.rm = make([]int64, n)
		a.graphs = make([]*dag.Graph, n)
		a.suffix = make([]blocking.Interference, n)
	}
	a.vols, a.longs, a.rm = a.vols[:n], a.longs[:n], a.rm[:n]
	a.graphs, a.suffix = a.graphs[:n], a.suffix[:n]
	// Shrinking must not pin the previous, larger set: clear the
	// pointer-holding tail up to the high-water mark so those graphs
	// (with their lazily memoized O(V²) bitsets) stay collectable.
	clear(a.graphs[n:cap(a.graphs)])
	a.scanPos = n
	if n > 0 {
		a.suffix[n-1] = blocking.Interference{} // empty lowest-priority suffix
	}
	if a.cfg.Method != FPIdeal {
		if a.agg == nil {
			a.agg = blocking.NewSuffixAggregator(a.cfg.M, blockingMethod(a.cfg.Method), a.cfg.Backend)
		} else {
			a.agg.Reset(a.cfg.M, blockingMethod(a.cfg.Method), a.cfg.Backend)
		}
	}
	if cap(a.res.Tasks) < n {
		a.res.Tasks = make([]TaskResult, n)
	}
	a.res.Tasks = a.res.Tasks[:n]
}

// blockingMethod maps the analysis variant to its blocking bound.
func blockingMethod(m Method) blocking.Method {
	if m == LPMax {
		return blocking.LPMax
	}
	return blocking.LPILP
}

// muTable returns the µ table of g (LP-ILP path) through the layered
// memos: the analyzer-local identity map first — a re-analysis of a
// held set resolves here in one lock-free probe — then the shared
// content-addressed cache when one is configured, so the clique search
// or ILP solve runs at most once per graph structure across every
// analyzer sharing the cache. Only the shared fetch is traced as a
// cache lookup; identity hits are below measurement noise.
func (a *Analyzer) muTable(g *dag.Graph) []int64 {
	a.muQueried = true
	if mu, ok := a.mus[g]; ok {
		a.muHits++
		return mu
	}
	if a.mus == nil {
		a.mus = make(map[*dag.Graph][]int64)
	} else if len(a.mus) >= muMemoLimit {
		clear(a.mus)
	}
	var mu []int64
	if a.cfg.Cache != nil {
		var t0 time.Time
		if a.cfg.Trace != nil {
			t0 = time.Now()
		}
		mu = a.cfg.Cache.MuTable(g, a.cfg.M, a.cfg.Backend)
		if a.cfg.Trace != nil {
			a.cfg.Trace.CacheLookup.Since(t0)
		}
	} else {
		mu = blocking.Mu(g, a.cfg.M, a.cfg.Backend)
	}
	a.mus[g] = mu
	return mu
}

// push feeds one graph into the suffix aggregator. LP-max needs only
// the graph's memoized sorted-WCET list; LP-ILP fetches the µ table
// through the layered memos (see muTable).
func (a *Analyzer) push(g *dag.Graph) {
	trace := a.cfg.Trace
	var t0 time.Time
	if trace != nil {
		t0 = time.Now()
	}
	a.pushInner(g)
	if trace != nil {
		trace.SuffixPush.Since(t0)
	}
}

func (a *Analyzer) pushInner(g *dag.Graph) {
	if a.cfg.Method == LPILP {
		a.agg.PushMu(a.muTable(g))
	} else { // LPMax
		a.agg.PushTops(g.SortedWCETs())
	}
}

// demandSuffix returns the Δ interference of graphs[k+1:], advancing the
// reverse scan only as far as needed. µ tables are computed lazily at
// the suffix step that first consumes their graph — never up front, and
// never for the highest-priority task, whose graph is in no suffix.
func (a *Analyzer) demandSuffix(k int) blocking.Interference {
	for a.scanPos > k+1 {
		a.scanPos--
		a.push(a.graphs[a.scanPos])
		a.suffix[a.scanPos-1] = a.agg.Interference()
	}
	return a.suffix[k]
}

// prologue runs the per-call µ-memo maintenance: drop the memo once it
// is demonstrably cold — muColdLimit consecutive µ-consulting calls
// without a single hit mean the workload is a stream of fresh graphs,
// not re-analysis of held sets. Calls that never consulted the memo at
// all (an incremental re-analysis whose suffix scan resumed past every
// push) are neutral: they prove nothing about the workload, and a
// session idling on cheap edits must not lose its warm µ tables over
// them. Resetting the cold counter after a drop leaves a full window
// for a steady-state workload to warm back up (populate, then hit), so
// the zero-allocation loop is unaffected.
func (a *Analyzer) prologue() {
	if len(a.mus) > 0 && a.muQueried {
		if a.muHits == 0 {
			a.muColdCalls++
		} else {
			a.muColdCalls = 0
		}
		if a.muColdCalls >= muColdLimit {
			clear(a.mus)
			a.muColdCalls = 0
		}
	}
	a.muHits = 0
	a.muQueried = false
}

// ctxCheckStride is how many fixed-point iterations run between
// cancellation checks. Iterations are cheap; checking every one would
// dominate short solves.
const ctxCheckStride = 1024

// AnalyzeInPlace runs the analysis and returns the analyzer's internal
// Result, valid until the next call on this analyzer. This is the
// zero-allocation entry point of the fixed-point loop; callers that need
// the result to outlive the next call must use Analyze. The context is
// observed between tasks and every ctxCheckStride fixed-point
// iterations, so a cancelled long LP-ILP solve returns promptly.
func (a *Analyzer) AnalyzeInPlace(ctx context.Context, ts *model.TaskSet) (*Result, error) {
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	cfg := a.cfg
	n := ts.N()
	cfg.Trace.RecordFull()
	a.prologue()
	a.ensure(n)
	res := &a.res
	res.Schedulable, res.Method, res.M = true, cfg.Method, cfg.M

	// Structural quantities read on every fixed-point iteration (O(1)
	// each — memoized on the immutable graphs at Build time), and the
	// graph list whose suffixes are the lower-priority sets.
	for i, t := range ts.Tasks {
		a.vols[i], a.longs[i] = t.G.Volume(), t.G.LongestPath()
		a.graphs[i] = t.G
	}

	// Response-time bounds of already-analyzed higher-priority tasks,
	// scaled by m, accumulate in a.rm.

	for k := 0; k < n; k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		task := ts.Tasks[k]
		tr := &res.Tasks[k]
		*tr = TaskResult{Name: task.Name}
		if !res.Schedulable {
			// A higher-priority task already failed; W_i would need its
			// (nonexistent) response bound.
			tr.Analyzed = false
			continue
		}
		tr.Analyzed = true

		// Lower-priority blocking terms (independent of the window).
		// Suffix Δ aggregates are recomputed, never cached: the
		// aggregator extends them in O(m) per task from the µ tables,
		// which is cheaper than any content-addressed lookup could be
		// (keying a suffix means hashing it — the old digest-chain memo
		// cost 2× what it saved once the scan went incremental).
		if cfg.Method != FPIdeal {
			in := a.demandSuffix(k)
			tr.DeltaM, tr.DeltaM1 = in.DeltaM, in.DeltaM1
		}

		if err := a.solveTask(ctx, ts, k, tr); err != nil {
			return nil, err
		}
		if !tr.Schedulable {
			res.Schedulable = false
		}
	}
	return res, nil
}

// solveTask runs the Equation (1)/(4) fixed point for task k, whose
// blocking terms (tr.DeltaM/DeltaM1) the caller has already filled in.
// It reads the structural scratch (a.vols, a.longs) and the
// higher-priority response bounds a.rm[:k], and writes the remaining
// TaskResult fields plus a.rm[k]. Shared verbatim by the from-scratch
// and incremental paths, which is what makes their results bit-identical
// by construction.
func (a *Analyzer) solveTask(ctx context.Context, ts *model.TaskSet, k int, tr *TaskResult) error {
	cfg := a.cfg
	var t0 time.Time
	if cfg.Trace != nil {
		t0 = time.Now()
	}
	task := ts.Tasks[k]
	m64 := int64(cfg.M)
	l := a.longs[k]
	vol := a.vols[k]
	dm := m64 * task.Deadline

	// Final-NPR refinement (future-work (ii)): iterate on the start
	// time S of the unique sink and add its WCET afterwards. With
	// sinkC = 0 this degenerates to the plain Equation (4) fixed
	// point (the window is the full response time).
	sinkC := int64(0)
	if cfg.FinalNPRRefinement && cfg.Method != FPIdeal {
		if sinks := task.G.Sinks(); len(sinks) == 1 && task.G.N() > 1 {
			sinkC = task.G.WCET(sinks[0])
		}
	}
	sinkCm := m64 * sinkC

	// Sub-DAG quantities: with a single sink, every maximal path ends
	// at it, so L' = L - sinkC and vol' = vol - sinkC exactly, and
	// m·L' + (vol'-L') = m·(L-sinkC) + (vol-L).
	base := m64*(l-sinkC) + (vol - l)
	cur := base
	q := int64(task.G.PreemptionPoints())
	converged := false
	for it := 1; it <= a.maxIter; it++ {
		if it%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		tr.Iterations = it
		ihp := int64(0)
		hk := int64(0)
		for i := 0; i < k; i++ {
			ihp += carryInWorkload(cur, a.rm[i], a.vols[i], ts.Tasks[i].Period, m64)
			ti := m64 * ts.Tasks[i].Period
			hk += (cur + ti - 1) / ti // ⌈S/T_i⌉ in scaled form
		}
		pk := q
		if !cfg.DonationSafeBlocking {
			pk = min(pk, hk)
		}
		ilp := int64(0)
		if cfg.Method != FPIdeal {
			ilp = tr.DeltaM
			if !cfg.AblateRepeatedBlocking {
				ilp += pk * tr.DeltaM1
			}
		}
		next := base + m64*((ilp+ihp)/m64)
		tr.Preemptions = pk
		tr.InterferenceHP = ihp
		tr.InterferenceLP = ilp
		if next == cur {
			converged = true
			break
		}
		cur = next
		if cur+sinkCm > dm {
			break // bound exceeded; unschedulable
		}
	}
	tr.ResponseTimeM = cur + sinkCm
	tr.Schedulable = converged && tr.ResponseTimeM <= dm
	a.rm[k] = tr.ResponseTimeM
	if cfg.Trace != nil {
		cfg.Trace.FixedPoint.Since(t0)
		cfg.Trace.FixedPointIters.Observe(float64(tr.Iterations))
	}
	return nil
}

// carryInWorkload evaluates W_i for an interferer with the given volume
// and period in a scaled window.
func carryInWorkload(windowM, rmI, vol, taskPeriod, m64 int64) int64 {
	x := windowM + rmI - vol
	if x < 0 {
		return 0
	}
	period := m64 * taskPeriod
	return (x/period)*vol + min(vol, x%period)
}

// Package rta implements the response-time analysis of Serrano et al.
// (DATE 2016) for sporadic DAG tasks under global fixed-priority
// scheduling, in three variants:
//
//   - FP-ideal: the fully-preemptive bound of Melani et al. (ECRTS 2015),
//     Equation (1) of the paper, with zero preemption overhead and no
//     lower-priority interference — the paper's idealised baseline;
//   - LP-max: Equation (4) with the Equation (5) blocking bound;
//   - LP-ILP: Equation (4) with the Equations (6)-(8) blocking bound.
//
// # Exact arithmetic
//
// Equations (1)/(4) mix integer terms with the rational self-interference
// term (vol-L)/m. To keep schedulability verdicts exact, all response
// times are carried scaled by m: Rm = m·R. In scaled form the fixed point
// is
//
//	Rm ← m·L + (vol - L) + m·⌊(I_lp + I_hp)/m⌋
//
// and every quantity is an int64; a task is schedulable iff its fixed
// point satisfies Rm ≤ m·D. The carry-in workload bound of an interferer
// τ_i in a window of (scaled) length Rm is, with X = Rm + Rm_i - vol_i,
//
//	W_i = ⌊X/(m·T_i)⌋·vol_i + min(vol_i, X mod (m·T_i))
//
// which is Melani et al.'s W_i(Δ) = ⌊(Δ+R_i-vol_i/m)/T_i⌋·vol_i +
// min(vol_i, m·((Δ+R_i-vol_i/m) mod T_i)) evaluated exactly.
package rta

import (
	"fmt"

	"repro/internal/blocking"
	"repro/internal/dag"
	"repro/internal/engine/cache"
	"repro/internal/model"
)

// Method selects the analysis variant.
type Method int

// Analysis variants.
const (
	// FPIdeal is Equation (1): fully preemptive, no blocking, no
	// preemption cost.
	FPIdeal Method = iota
	// LPMax is Equation (4) with Equation (5) blocking.
	LPMax
	// LPILP is Equation (4) with Equations (6)-(8) blocking.
	LPILP
)

func (m Method) String() string {
	switch m {
	case FPIdeal:
		return "FP-ideal"
	case LPMax:
		return "LP-max"
	case LPILP:
		return "LP-ILP"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Config parameterises an analysis run.
type Config struct {
	M       int    // number of identical cores, ≥ 1
	Method  Method // analysis variant
	Backend blocking.Backend

	// Cache, when non-nil, memoizes the content-addressed derived
	// quantities (per-graph µ tables, top-NPR lists, and the aggregated
	// Δ interference of lower-priority suffixes) across Analyze calls.
	// Sharing one cache across the many analyses of a sweep or a server
	// workload skips recomputing them for graphs already seen; results
	// are identical with or without it.
	Cache *cache.Cache

	// MaxIterations bounds the fixed-point loop per task as a safety
	// net; 0 means DefaultMaxIterations. The iteration is monotone and
	// bounded by m·D, so the limit only matters for adversarial inputs.
	MaxIterations int

	// FinalNPRRefinement enables the paper's future-work item (ii): for
	// tasks whose DAG has a single sink, once the final non-preemptive
	// region starts it runs to completion, so interference and blocking
	// only need to be accounted until its start. The bound becomes
	//
	//	R_k = S_k + C_sink,   S_k = (L-C_sink) + (vol-C_sink-(L-C_sink))/m
	//	                            + ⌊(I_lp + I_hp(S_k))/m⌋
	//
	// i.e. the Equation (4) fixed point for the sub-DAG without the sink
	// evaluated over the (smaller) window S_k, plus the sink's WCET.
	// Both interference terms are non-decreasing in the window, so the
	// refined bound never exceeds the plain one; tests assert this and
	// the simulator oracle covers soundness. Tasks with several sinks
	// fall back to the plain bound. Ignored for FPIdeal.
	FinalNPRRefinement bool

	// AblateRepeatedBlocking drops the p_k·Δ^{m-1} term of Equation (3),
	// keeping only the initial Δ^m blocking. This is UNSOUND as a
	// schedulability test and exists only for the ablation experiments
	// that quantify how much of the LP pessimism the repeated-blocking
	// term contributes. Ignored for FPIdeal.
	AblateRepeatedBlocking bool

	// DonationSafeBlocking counts every preemption point as a potential
	// blocking episode: p_k = q_k instead of the paper's
	// p_k = min(q_k, h_k). The paper's min assumes repeated blocking
	// requires a higher-priority-induced preemption, which its
	// sequential-task substrate (RTNS 2015) guarantees — but a DAG task
	// under eager work-conserving scheduling also yields cores at
	// parallelism dips (a join waiting on a long branch), and a
	// lower-priority NPR picked up at such a dip blocks the task with
	// no preemption involved; successive dips can even be blocked by
	// NPRs of one chain that the precedence-aware Δ^m counts only once.
	// The differential soundness harness found generated sets whose
	// simulated response exceeds the paper-exact LP-ILP bound this way
	// (see DESIGN.md, "Eager-donation blocking gap", and the pinned
	// reproducer in internal/experiments). Every blocking episode after
	// the initial one starts at a node boundary of τ_k, so q_k bounds
	// the episode count and p_k = q_k restores soundness under eager
	// donation, at the price of extra pessimism. Off by default: the
	// default analysis reproduces the paper. Ignored for FPIdeal.
	DonationSafeBlocking bool
}

// DefaultMaxIterations is the per-task fixed-point budget.
const DefaultMaxIterations = 1_000_000

// TaskResult reports the analysis of one task.
type TaskResult struct {
	Name        string
	Schedulable bool
	Analyzed    bool // false when analysis stopped at a higher-priority failure

	// ResponseTimeM is the response-time upper bound scaled by M
	// (Rm = m·R). When the task is unschedulable it holds the first
	// value that exceeded m·D.
	ResponseTimeM int64

	Iterations int

	// Blocking terms used (zero for FP-ideal).
	DeltaM  int64
	DeltaM1 int64

	// Preemptions is p_k = min(q_k, h_k) at the final window.
	Preemptions int64

	// InterferenceHP and InterferenceLP are I_hp and I_lp at the fixed
	// point (unscaled workload units).
	InterferenceHP int64
	InterferenceLP int64
}

// ResponseTimeCeil returns ⌈R⌉ in time units for an analysis on m cores.
func (r *TaskResult) ResponseTimeCeil(m int) int64 {
	return (r.ResponseTimeM + int64(m) - 1) / int64(m)
}

// Result reports the analysis of a whole task set.
type Result struct {
	Schedulable bool
	Tasks       []TaskResult
	Method      Method
	M           int
}

// Analyze runs the response-time analysis on the task set under the
// given configuration. Tasks are processed in priority order; if a task
// is found unschedulable, the set verdict is unschedulable and the
// remaining (lower-priority) tasks are reported unanalyzed, mirroring the
// iterative structure of Equation (1) which needs each higher-priority
// response time as input.
func Analyze(ts *model.TaskSet, cfg Config) (*Result, error) {
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	if cfg.M < 1 {
		return nil, fmt.Errorf("rta: need at least one core, got %d", cfg.M)
	}
	maxIter := cfg.MaxIterations
	if maxIter == 0 {
		maxIter = DefaultMaxIterations
	}

	n := ts.N()
	m64 := int64(cfg.M)
	res := &Result{Schedulable: true, Method: cfg.Method, M: cfg.M,
		Tasks: make([]TaskResult, n)}

	// µ tables are task-local ("compile-time" per the paper): compute
	// once for the whole set when the method needs them, through the
	// content-addressed cache when one is configured.
	var mus [][]int64
	if cfg.Method == LPILP && cfg.Cache == nil {
		mus = make([][]int64, n)
		for i, t := range ts.Tasks {
			mus[i] = blocking.Mu(t.G, cfg.M, cfg.Backend)
		}
	}

	// Structural quantities read on every fixed-point iteration,
	// and the graph list whose suffixes are the lower-priority sets.
	// vol/L are O(graph) — computing them here is as cheap as any
	// cache lookup, so they are deliberately not memoized.
	vols := make([]int64, n)
	longs := make([]int64, n)
	graphs := make([]*dag.Graph, n)
	for i, t := range ts.Tasks {
		vols[i], longs[i] = t.G.Volume(), t.G.LongestPath()
		graphs[i] = t.G
	}

	// Response-time bounds of already-analyzed higher-priority tasks,
	// scaled by m.
	rm := make([]int64, n)

	for k := 0; k < n; k++ {
		task := ts.Tasks[k]
		tr := &res.Tasks[k]
		tr.Name = task.Name
		if !res.Schedulable {
			// A higher-priority task already failed; W_i would need its
			// (nonexistent) response bound.
			tr.Analyzed = false
			continue
		}
		tr.Analyzed = true

		l := longs[k]
		vol := vols[k]
		dm := m64 * task.Deadline

		// Lower-priority blocking terms (independent of the window).
		switch cfg.Method {
		case FPIdeal:
			// no blocking
		case LPMax:
			var in blocking.Interference
			if cfg.Cache != nil {
				in = cfg.Cache.InterferenceLPMax(graphs[k+1:], cfg.M)
			} else {
				in = blocking.Compute(graphs[k+1:], cfg.M, blocking.LPMax, cfg.Backend)
			}
			tr.DeltaM, tr.DeltaM1 = in.DeltaM, in.DeltaM1
		case LPILP:
			var in blocking.Interference
			if cfg.Cache != nil {
				in = cfg.Cache.InterferenceLPILP(graphs[k+1:], cfg.M, cfg.Backend)
			} else {
				in = blocking.ComputeFromMus(mus[k+1:], cfg.M, cfg.Backend)
			}
			tr.DeltaM, tr.DeltaM1 = in.DeltaM, in.DeltaM1
		default:
			return nil, fmt.Errorf("rta: unknown method %v", cfg.Method)
		}

		// Final-NPR refinement (future-work (ii)): iterate on the start
		// time S of the unique sink and add its WCET afterwards. With
		// sinkC = 0 this degenerates to the plain Equation (4) fixed
		// point (the window is the full response time).
		sinkC := int64(0)
		if cfg.FinalNPRRefinement && cfg.Method != FPIdeal {
			if sinks := task.G.Sinks(); len(sinks) == 1 && task.G.N() > 1 {
				sinkC = task.G.WCET(sinks[0])
			}
		}
		sinkCm := m64 * sinkC

		// Sub-DAG quantities: with a single sink, every maximal path ends
		// at it, so L' = L - sinkC and vol' = vol - sinkC exactly, and
		// m·L' + (vol'-L') = m·(L-sinkC) + (vol-L).
		base := m64*(l-sinkC) + (vol - l)
		cur := base
		q := int64(task.G.PreemptionPoints())
		converged := false
		for it := 1; it <= maxIter; it++ {
			tr.Iterations = it
			ihp := int64(0)
			hk := int64(0)
			for i := 0; i < k; i++ {
				ihp += carryInWorkload(cur, rm[i], vols[i], ts.Tasks[i].Period, m64)
				ti := m64 * ts.Tasks[i].Period
				hk += (cur + ti - 1) / ti // ⌈S/T_i⌉ in scaled form
			}
			pk := q
			if !cfg.DonationSafeBlocking && hk < pk {
				pk = hk
			}
			ilp := int64(0)
			if cfg.Method != FPIdeal {
				ilp = tr.DeltaM
				if !cfg.AblateRepeatedBlocking {
					ilp += pk * tr.DeltaM1
				}
			}
			next := base + m64*((ilp+ihp)/m64)
			tr.Preemptions = pk
			tr.InterferenceHP = ihp
			tr.InterferenceLP = ilp
			if next == cur {
				converged = true
				break
			}
			cur = next
			if cur+sinkCm > dm {
				break // bound exceeded; unschedulable
			}
		}
		tr.ResponseTimeM = cur + sinkCm
		tr.Schedulable = converged && tr.ResponseTimeM <= dm
		if !tr.Schedulable {
			res.Schedulable = false
		}
		rm[k] = tr.ResponseTimeM
	}
	return res, nil
}

// carryInWorkload evaluates W_i for an interferer with the given volume
// and period in a scaled window.
func carryInWorkload(windowM, rmI, vol, taskPeriod, m64 int64) int64 {
	x := windowM + rmI - vol
	if x < 0 {
		return 0
	}
	period := m64 * taskPeriod
	w := (x/period)*vol + minInt64(vol, x%period)
	return w
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

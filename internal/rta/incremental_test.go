package rta

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

// randomTask builds one fresh random task with a unique name.
func randomTask(rng *rand.Rand, serial int) *model.Task {
	t := randomTaskSet(rng, 1).Tasks[0]
	t.Name = fmt.Sprintf("t%d", serial)
	return t
}

// applyRandomEdit mutates the list like a session edit would: insert a
// fresh task, remove one, or move one to a new priority. It returns the
// new list (the input slice is not aliased).
func applyRandomEdit(rng *rand.Rand, tasks []*model.Task, serial int) []*model.Task {
	out := append([]*model.Task(nil), tasks...)
	op := rng.Intn(3)
	if len(out) == 0 {
		op = 0
	}
	switch op {
	case 0: // add
		at := rng.Intn(len(out) + 1)
		out = append(out, nil)
		copy(out[at+1:], out[at:])
		out[at] = randomTask(rng, serial)
	case 1: // remove
		i := rng.Intn(len(out))
		out = append(out[:i], out[i+1:]...)
	case 2: // move
		from, to := rng.Intn(len(out)), rng.Intn(len(out))
		t := out[from]
		out = append(out[:from], out[from+1:]...)
		out = append(out, nil)
		copy(out[to+1:], out[to:])
		out[to] = t
	}
	return out
}

// TestAnalyzeIncrementalMatchesFromScratch quick-checks the tentpole
// contract of the session API: after ANY sequence of edits, the
// incremental analyzer's Result is bit-identical (every field of every
// TaskResult) to a from-scratch analysis of the final list.
func TestAnalyzeIncrementalMatchesFromScratch(t *testing.T) {
	ctx := context.Background()
	for _, cfg := range []Config{
		{M: 2, Method: FPIdeal},
		{M: 3, Method: LPMax},
		{M: 4, Method: LPILP},
		{M: 4, Method: LPILP, FinalNPRRefinement: true},
	} {
		cfg := cfg
		t.Run(fmt.Sprintf("%v-m%d-refine%v", cfg.Method, cfg.M, cfg.FinalNPRRefinement), func(t *testing.T) {
			inc, err := NewAnalyzer(cfg)
			if err != nil {
				t.Fatal(err)
			}
			scratch, err := NewAnalyzer(cfg)
			if err != nil {
				t.Fatal(err)
			}
			check := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				tasks := append([]*model.Task(nil), randomTaskSet(rng, 2+rng.Intn(5)).Tasks...)
				serial := 100
				for step := 0; step < 8; step++ {
					tasks = applyRandomEdit(rng, tasks, serial)
					serial++
					if len(tasks) == 0 {
						continue
					}
					ts := &model.TaskSet{Tasks: tasks}
					got, err := inc.AnalyzeIncremental(ctx, ts)
					if err != nil {
						t.Fatal(err)
					}
					want, err := scratch.AnalyzeInPlace(ctx, ts)
					if err != nil {
						t.Fatal(err)
					}
					if got.Schedulable != want.Schedulable || got.M != want.M ||
						got.Method != want.Method || len(got.Tasks) != len(want.Tasks) {
						t.Logf("seed=%d step=%d: header mismatch: got %+v want %+v", seed, step, got, want)
						return false
					}
					for i := range got.Tasks {
						if got.Tasks[i] != want.Tasks[i] {
							t.Logf("seed=%d step=%d task=%d:\n got %+v\nwant %+v",
								seed, step, i, got.Tasks[i], want.Tasks[i])
							return false
						}
					}
				}
				return true
			}
			if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestAnalyzeIncrementalReconfigure pins that a Reconfigure (the
// session's SetCores/SetMethod) invalidates the incremental state and
// the next analysis matches from-scratch under the new configuration.
func TestAnalyzeIncrementalReconfigure(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	ts := randomTaskSet(rng, 5)
	inc, err := NewAnalyzer(Config{M: 2, Method: LPMax})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.AnalyzeIncremental(ctx, ts); err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{
		{M: 4, Method: LPMax},
		{M: 4, Method: LPILP},
		{M: 4, Method: FPIdeal},
		{M: 3, Method: LPILP, FinalNPRRefinement: true},
	} {
		if err := inc.Reconfigure(cfg); err != nil {
			t.Fatal(err)
		}
		got, err := inc.AnalyzeIncremental(ctx, ts)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Analyze(ctx, ts, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got.Schedulable != want.Schedulable || len(got.Tasks) != len(want.Tasks) {
			t.Fatalf("cfg %+v: header mismatch", cfg)
		}
		for i := range got.Tasks {
			if got.Tasks[i] != want.Tasks[i] {
				t.Fatalf("cfg %+v task %d: got %+v want %+v", cfg, i, got.Tasks[i], want.Tasks[i])
			}
		}
	}
}

// TestAnalyzeIncrementalCancelRecovery pins that a cancelled incremental
// analysis leaves the analyzer in a state from which the next call
// recovers with correct (from-scratch-identical) results.
func TestAnalyzeIncrementalCancelRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ts := randomTaskSet(rng, 6)
	inc, err := NewAnalyzer(Config{M: 4, Method: LPILP})
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := inc.AnalyzeIncremental(cancelled, ts); err == nil {
		t.Fatal("cancelled analysis should fail")
	}
	got, err := inc.AnalyzeIncremental(context.Background(), ts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Analyze(context.Background(), ts, Config{M: 4, Method: LPILP})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Tasks {
		if got.Tasks[i] != want.Tasks[i] {
			t.Fatalf("task %d: got %+v want %+v", i, got.Tasks[i], want.Tasks[i])
		}
	}
}

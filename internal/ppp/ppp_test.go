package ppp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/blocking"
	"repro/internal/dag"
	"repro/internal/fixture"
	"repro/internal/model"
	"repro/internal/rta"
)

func chain(wcets ...int64) *dag.Graph {
	var b dag.Builder
	prev := -1
	for _, c := range wcets {
		v := b.AddNode(c)
		if prev >= 0 {
			b.AddEdge(prev, v)
		}
		prev = v
	}
	return b.MustBuild()
}

func randomDAG(rng *rand.Rand, n int) *dag.Graph {
	var b dag.Builder
	for i := 0; i < n; i++ {
		b.AddNode(int64(1 + rng.Intn(100)))
	}
	for v := 1; v < n; v++ {
		p := rng.Intn(v)
		b.AddEdge(p, v)
		for u := 0; u < v; u++ {
			if u != p && rng.Float64() < 0.2 {
				b.AddEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}

func TestSplitNodesBasic(t *testing.T) {
	g := chain(10)
	s := SplitNodes(g, 3)
	if s.N() != 4 { // 10 → 3+3+2+2
		t.Fatalf("N = %d, want 4", s.N())
	}
	if s.Volume() != 10 || s.LongestPath() != 10 {
		t.Errorf("vol/L = %d/%d, want 10/10", s.Volume(), s.LongestPath())
	}
	for v := 0; v < s.N(); v++ {
		if s.WCET(v) > 3 {
			t.Errorf("piece %d has WCET %d > 3", v, s.WCET(v))
		}
	}
}

func TestSplitNodesNoOp(t *testing.T) {
	g := fixture.Tau1()
	s := SplitNodes(g, 100)
	if s.N() != g.N() || s.Volume() != g.Volume() {
		t.Error("budget above all WCETs must not split")
	}
}

func TestSplitPreservesStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		g := randomDAG(rng, 1+rng.Intn(12))
		for _, q := range []int64{1, 2, 5, 17, 50} {
			s := SplitNodes(g, q)
			if s.Volume() != g.Volume() {
				t.Fatalf("volume changed: %d → %d", g.Volume(), s.Volume())
			}
			if s.LongestPath() != g.LongestPath() {
				t.Fatalf("longest path changed: %d → %d", g.LongestPath(), s.LongestPath())
			}
			if s.Width() != g.Width() {
				t.Fatalf("width changed: %d → %d", g.Width(), s.Width())
			}
			if s.MaxWCET() > q {
				t.Fatalf("split left an NPR of %d > %d", s.MaxWCET(), q)
			}
		}
	}
}

func TestSplitPanicsOnBadBudget(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	SplitNodes(chain(5), 0)
}

func TestCoarsenChainsBasic(t *testing.T) {
	g := chain(2, 3, 4)
	c := CoarsenChains(g, 9)
	if c.N() != 1 || c.WCET(0) != 9 {
		t.Fatalf("full merge expected, got %d nodes", c.N())
	}
	c = CoarsenChains(g, 5)
	if c.N() != 2 { // 2+3 merged, 4 alone
		t.Fatalf("partial merge: %d nodes, want 2", c.N())
	}
	if c.Volume() != 9 || c.LongestPath() != 9 {
		t.Errorf("vol/L = %d/%d, want 9/9", c.Volume(), c.LongestPath())
	}
}

func TestCoarsenPreservesForkJoin(t *testing.T) {
	// Diamond must not merge across the fork or join.
	var b dag.Builder
	s := b.AddNode(1)
	x := b.AddNode(2)
	y := b.AddNode(3)
	tt := b.AddNode(4)
	b.AddEdge(s, x)
	b.AddEdge(s, y)
	b.AddEdge(x, tt)
	b.AddEdge(y, tt)
	g := b.MustBuild()
	c := CoarsenChains(g, 100)
	if c.N() != 4 {
		t.Fatalf("diamond must stay intact, got %d nodes", c.N())
	}
}

func TestCoarsenPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		g := randomDAG(rng, 1+rng.Intn(12))
		for _, q := range []int64{10, 50, 200, 1000} {
			c := CoarsenChains(g, q)
			if c.Volume() != g.Volume() {
				t.Fatalf("volume changed: %d → %d", g.Volume(), c.Volume())
			}
			if c.LongestPath() != g.LongestPath() {
				t.Fatalf("longest path changed: %d → %d", g.LongestPath(), c.LongestPath())
			}
			if c.Width() != g.Width() {
				t.Fatalf("width changed: %d → %d", g.Width(), c.Width())
			}
			if c.N() > g.N() {
				t.Fatalf("coarsening grew the graph")
			}
		}
	}
}

// TestSplitCoarsenRoundTrip: coarsening a split chain at the original
// budget recovers a graph no finer than the original chain.
func TestSplitCoarsenRoundTrip(t *testing.T) {
	g := chain(30)
	s := SplitNodes(g, 7) // 5 pieces
	c := CoarsenChains(s, 30)
	if c.N() != 1 || c.WCET(0) != 30 {
		t.Fatalf("round trip left %d nodes", c.N())
	}
}

// TestSplitReducesBlocking: Δ^m of split graphs is non-decreasing in the
// budget — finer NPRs can only lower the blocking bound.
func TestSplitReducesBlocking(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		var graphs []*dag.Graph
		for i := 0; i < 1+rng.Intn(3); i++ {
			graphs = append(graphs, randomDAG(rng, 2+rng.Intn(8)))
		}
		m := 2 + rng.Intn(4)
		prev := int64(-1)
		for _, q := range []int64{5, 10, 25, 50, 100} {
			var split []*dag.Graph
			for _, g := range graphs {
				split = append(split, SplitNodes(g, q))
			}
			d := blocking.Compute(split, m, blocking.LPMax, blocking.Combinatorial).DeltaM
			if prev >= 0 && d < prev {
				t.Fatalf("trial %d: LP-max Δ decreased from %d to %d as budget grew", trial, prev, d)
			}
			prev = d
		}
	}
}

func TestTransformKeepsTiming(t *testing.T) {
	ts := fixture.TaskSet()
	out := Transform(ts, func(g *dag.Graph) *dag.Graph { return SplitNodes(g, 2) })
	if out.N() != ts.N() {
		t.Fatal("task count changed")
	}
	for i := range out.Tasks {
		if out.Tasks[i].Period != ts.Tasks[i].Period || out.Tasks[i].Deadline != ts.Tasks[i].Deadline {
			t.Fatal("timing parameters changed")
		}
		if out.Tasks[i].G.Volume() != ts.Tasks[i].G.Volume() {
			t.Fatal("volume changed")
		}
	}
}

func TestExplore(t *testing.T) {
	ts := fixture.TaskSet()
	points, err := Explore(ts, fixture.M, []int64{1, 2, 4, 8}, rta.LPILP, blocking.Combinatorial)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("got %d points", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].TotalNodes > points[i-1].TotalNodes {
			t.Error("node count should not grow with a looser budget")
		}
		if points[i].MaxDeltaM < points[i-1].MaxDeltaM {
			t.Error("blocking should not shrink with a looser budget")
		}
	}
	if _, err := Explore(ts, fixture.M, []int64{1}, rta.FPIdeal, blocking.Combinatorial); err == nil {
		t.Error("FPIdeal must be rejected")
	}
}

// TestQuickSplitInvariant property-checks volume preservation across
// random seeds using testing/quick.
func TestQuickSplitInvariant(t *testing.T) {
	f := func(seed int64, budgetRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 1+rng.Intn(10))
		budget := int64(budgetRaw%50) + 1
		s := SplitNodes(g, budget)
		return s.Volume() == g.Volume() && s.MaxWCET() <= budget &&
			s.LongestPath() == g.LongestPath()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestExploreTradeoffRealistic demonstrates the headline trade-off on a
// set engineered to be schedulable only with fine preemption points: a
// tight high-priority task over a long-NPR low-priority task.
func TestExploreTradeoffRealistic(t *testing.T) {
	hi := &model.Task{Name: "hi", G: chain(4), Deadline: 20, Period: 20}
	lo := &model.Task{Name: "lo", G: chain(60, 60), Deadline: 400, Period: 400}
	ts, err := model.NewTaskSet(hi, lo)
	if err != nil {
		t.Fatal(err)
	}
	points, err := Explore(ts, 2, []int64{10, 60}, rta.LPILP, blocking.Combinatorial)
	if err != nil {
		t.Fatal(err)
	}
	if !points[0].Schedulable {
		t.Error("fine placement (budget 10) should schedule the set")
	}
	if points[1].Schedulable {
		t.Error("coarse placement (budget 60) should miss: 60-unit blocking on a 20 deadline")
	}
}

// Package ppp explores preemption-point placement for limited-preemptive
// DAG tasks — the design dimension behind the model of Serrano et al.
// (DATE 2016) and the future-work direction the paper closes with.
//
// Under limited preemption every DAG node is a non-preemptive region
// (NPR). Where the preemption points sit is a design choice with a
// two-sided effect the analysis makes quantifiable:
//
//   - coarser NPRs (fewer preemption points) reduce the number of
//     preemptions a task can suffer (p_k = min(q_k, h_k) shrinks with
//     q_k) and, on real hardware, the preemption overhead — but every
//     lower-priority NPR grows, inflating the blocking Δ^m/Δ^{m-1} it
//     imposes on higher-priority tasks;
//   - finer NPRs (splitting long nodes) cap the blocking at the split
//     length, at the price of more preemption points.
//
// SplitNodes and CoarsenChains are the two placement transforms, and
// Explore sweeps an NPR-length budget over a task set, reporting how the
// schedulability verdict and the blocking terms move.
package ppp

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/blocking"
	"repro/internal/dag"
	"repro/internal/model"
	"repro/internal/rta"
)

// CheckMaxNPR validates an NPR budget before it reaches SplitNodes or
// CoarsenChains, which panic on out-of-range values. Boundary layers
// (wire decoding, session parameters) call this so the panic stays a
// programming-error assertion, never reachable from external input.
func CheckMaxNPR(maxNPR int64) error {
	if maxNPR < 1 {
		return fmt.Errorf("ppp: invalid maxNPR: %d (must be ≥ 1)", maxNPR)
	}
	return nil
}

// SplitNodes returns a graph in which every node with WCET above maxNPR
// is replaced by a chain of pieces, each at most maxNPR long, preserving
// the volume, the precedence structure, and (because pieces are
// sequential) the longest path. maxNPR must be ≥ 1.
func SplitNodes(g *dag.Graph, maxNPR int64) *dag.Graph {
	if maxNPR < 1 {
		panic("ppp: maxNPR must be ≥ 1")
	}
	var b dag.Builder
	first := make([]int, g.N())
	last := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		c := g.WCET(v)
		k := (c + maxNPR - 1) / maxNPR
		base := c / k
		rem := c % k
		prev := -1
		for i := int64(0); i < k; i++ {
			w := base
			if i < rem {
				w++
			}
			nv := b.AddNode(w)
			if prev == -1 {
				first[v] = nv
			} else {
				b.AddEdge(prev, nv)
			}
			prev = nv
		}
		last[v] = prev
	}
	for _, e := range g.Edges() {
		b.AddEdge(last[e[0]], first[e[1]])
	}
	return b.MustBuild()
}

// CoarsenChains returns a graph in which maximal linear runs (node v
// with a single successor w that has v as its single predecessor) are
// greedily merged while the merged WCET stays within maxNPR. Volume and
// longest path are preserved; the node count (and so the number of
// preemption points) shrinks.
func CoarsenChains(g *dag.Graph, maxNPR int64) *dag.Graph {
	if maxNPR < 1 {
		panic("ppp: maxNPR must be ≥ 1")
	}
	cur := g
	for {
		merged := coarsenOnce(cur, maxNPR)
		if merged == nil {
			return cur
		}
		cur = merged
	}
}

// coarsenOnce performs one merge pass; nil when nothing merged.
func coarsenOnce(g *dag.Graph, maxNPR int64) *dag.Graph {
	n := g.N()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	weight := g.WCETs()
	mergedAny := false
	// Scan in topological order so chains fold front-to-back.
	for _, v := range g.TopologicalOrder() {
		rv := find(v)
		succ := g.Successors(v)
		if len(succ) != 1 {
			continue
		}
		w := succ[0]
		if len(g.Predecessors(w)) != 1 {
			continue
		}
		rw := find(w)
		if rv == rw {
			continue
		}
		if weight[rv]+weight[rw] > maxNPR {
			continue
		}
		parent[rw] = rv
		weight[rv] += weight[rw]
		mergedAny = true
	}
	if !mergedAny {
		return nil
	}
	// Rebuild: one node per merge-class, edges between distinct classes.
	var b dag.Builder
	classIdx := map[int]int{}
	var roots []int
	for v := 0; v < n; v++ {
		if find(v) == v {
			roots = append(roots, v)
		}
	}
	sort.Ints(roots)
	for _, r := range roots {
		classIdx[r] = b.AddNode(weight[r])
	}
	seen := map[[2]int]bool{}
	for _, e := range g.Edges() {
		a, c := find(e[0]), find(e[1])
		if a == c {
			continue
		}
		key := [2]int{classIdx[a], classIdx[c]}
		if !seen[key] {
			seen[key] = true
			b.AddEdge(key[0], key[1])
		}
	}
	return b.MustBuild()
}

// Transform applies a placement transform to every task of a set,
// returning a new set with identical timing parameters.
func Transform(ts *model.TaskSet, f func(*dag.Graph) *dag.Graph) *model.TaskSet {
	out := &model.TaskSet{Tasks: make([]*model.Task, ts.N())}
	for i, t := range ts.Tasks {
		out.Tasks[i] = &model.Task{
			Name: t.Name, G: f(t.G), Deadline: t.Deadline, Period: t.Period,
		}
	}
	return out
}

// Point is the outcome of one NPR-budget setting in Explore.
type Point struct {
	MaxNPR      int64
	Schedulable bool
	TotalNodes  int   // preemption-point proxy: Σ |V_i|
	MaxDeltaM   int64 // largest Δ^m over analyzed tasks
	WorstSlackM int64 // min over analyzed tasks of m·D - Rm (negative = miss)
}

// Explore splits every task's nodes to each budget in budgets and runs
// the limited-preemptive analysis, returning one Point per budget.
// Budgets are processed as given; pass them sorted for readable output.
func Explore(ts *model.TaskSet, m int, budgets []int64, method rta.Method, be blocking.Backend) ([]Point, error) {
	if method == rta.FPIdeal {
		return nil, fmt.Errorf("ppp: placement exploration needs a limited-preemptive method")
	}
	out := make([]Point, 0, len(budgets))
	for _, q := range budgets {
		split := Transform(ts, func(g *dag.Graph) *dag.Graph { return SplitNodes(g, q) })
		res, err := rta.Analyze(context.Background(), split, rta.Config{M: m, Method: method, Backend: be})
		if err != nil {
			return nil, err
		}
		p := Point{MaxNPR: q, Schedulable: res.Schedulable}
		slackSet := false
		for i, t := range split.Tasks {
			p.TotalNodes += t.G.N()
			tr := res.Tasks[i]
			if !tr.Analyzed {
				continue
			}
			if tr.DeltaM > p.MaxDeltaM {
				p.MaxDeltaM = tr.DeltaM
			}
			slack := int64(m)*t.Deadline - tr.ResponseTimeM
			if !slackSet || slack < p.WorstSlackM {
				p.WorstSlackM = slack
				slackSet = true
			}
		}
		out = append(out, p)
	}
	return out, nil
}

package repair_test

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/model"
	"repro/internal/repair"
)

func chainTask(t *testing.T, name string, wcets []int64, d, p int64) *model.Task {
	t.Helper()
	var b dag.Builder
	prev := -1
	for _, c := range wcets {
		v := b.AddNode(c)
		if prev >= 0 {
			b.AddEdge(prev, v)
		}
		prev = v
	}
	task := &model.Task{Name: name, G: b.MustBuild(), Deadline: d, Period: p}
	if err := task.Validate(); err != nil {
		t.Fatalf("fixture task %s: %v", name, err)
	}
	return task
}

// blockedSet is the pinned repair fixture: on two cores, the
// high-priority task's deadline is tight enough that the low-priority
// task's single huge NPR blocks it past the deadline; splitting that
// NPR is the repair.
func blockedSet(t *testing.T) []*model.Task {
	t.Helper()
	return []*model.Task{
		chainTask(t, "hi", []int64{5, 5}, 25, 40),
		chainTask(t, "lo", []int64{200}, 900, 1000),
	}
}

func evalWith(t *testing.T, opts core.Options) repair.Eval {
	t.Helper()
	an, err := core.New(opts)
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	return func(ctx context.Context, tasks []*model.Task) (*core.Report, error) {
		return an.Analyze(ctx, &model.TaskSet{Tasks: tasks})
	}
}

func TestSearchFixesBlockedSet(t *testing.T) {
	opts := core.Options{Cores: 2, Method: core.LPILP}
	eval := evalWith(t, opts)
	ctx := context.Background()
	tasks := blockedSet(t)

	base, err := eval(ctx, tasks)
	if err != nil {
		t.Fatalf("base analyze: %v", err)
	}
	if base.Schedulable {
		t.Fatal("fixture is schedulable; it must start broken")
	}

	for _, strategy := range []repair.Strategy{repair.Greedy, repair.Exhaustive} {
		t.Run(strategy.String(), func(t *testing.T) {
			res, err := repair.Search(ctx, tasks, repair.Config{Strategy: strategy}, eval)
			if err != nil {
				t.Fatalf("Search: %v", err)
			}
			if !res.Fixed {
				t.Fatalf("not fixed: %+v", res)
			}
			if len(res.Transforms) == 0 || res.Stopped {
				t.Fatalf("want a non-empty completed repair, got %+v", res)
			}
			if res.FailingBefore == 0 || res.FailingAfter != 0 {
				t.Fatalf("failing counts: before=%d after=%d", res.FailingBefore, res.FailingAfter)
			}
			// The reported repair must replay: applying the transforms
			// to the input yields the returned ordering...
			replayed, err := repair.Apply(tasks, res.Transforms)
			if err != nil {
				t.Fatalf("Apply: %v", err)
			}
			if len(replayed) != len(res.Tasks) {
				t.Fatalf("replay length %d != %d", len(replayed), len(res.Tasks))
			}
			for i := range replayed {
				if replayed[i].Name != res.Tasks[i].Name ||
					replayed[i].G.Fingerprint() != res.Tasks[i].G.Fingerprint() {
					t.Fatalf("replay diverges at %d: %s vs %s", i, replayed[i].Name, res.Tasks[i].Name)
				}
			}
			// ...and an independent from-scratch analysis agrees it is
			// schedulable.
			rep, err := eval(ctx, replayed)
			if err != nil {
				t.Fatalf("re-analyze: %v", err)
			}
			if !rep.Schedulable {
				t.Fatal("reported fix is not schedulable under a fresh analysis")
			}
			// The input must not have been mutated.
			if tasks[1].G.MaxWCET() != 200 {
				t.Fatal("Search mutated its input tasks")
			}
		})
	}
}

func TestSearchDeterministic(t *testing.T) {
	eval := evalWith(t, core.Options{Cores: 2, Method: core.LPILP})
	ctx := context.Background()
	cfg := repair.Config{Seed: 42}
	first, err := repair.Search(ctx, blockedSet(t), cfg, eval)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	for i := 0; i < 3; i++ {
		again, err := repair.Search(ctx, blockedSet(t), cfg, eval)
		if err != nil {
			t.Fatalf("Search #%d: %v", i, err)
		}
		if len(again.Transforms) != len(first.Transforms) {
			t.Fatalf("run %d: %v != %v", i, again.Transforms, first.Transforms)
		}
		for j := range again.Transforms {
			if again.Transforms[j] != first.Transforms[j] {
				t.Fatalf("run %d: %v != %v", i, again.Transforms, first.Transforms)
			}
		}
		if again.Candidates != first.Candidates {
			t.Fatalf("run %d: candidates %d != %d", i, again.Candidates, first.Candidates)
		}
	}
}

func TestSearchAlreadySchedulable(t *testing.T) {
	eval := evalWith(t, core.Options{Cores: 2, Method: core.LPILP})
	tasks := []*model.Task{chainTask(t, "only", []int64{5, 5}, 100, 100)}
	res, err := repair.Search(context.Background(), tasks, repair.Config{}, eval)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if !res.Fixed || len(res.Transforms) != 0 || res.Candidates != 1 || res.Stopped {
		t.Fatalf("want trivial fixed result, got %+v", res)
	}
}

// TestSearchCancelReturnsBestSoFar is the anytime contract: cancelling
// mid-search promptly returns the best partial repair, not an error.
func TestSearchCancelReturnsBestSoFar(t *testing.T) {
	opts := core.Options{Cores: 2, Method: core.LPILP}
	an, err := core.New(opts)
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int64
	eval := func(ctx context.Context, tasks []*model.Task) (*core.Report, error) {
		if calls.Add(1) == 3 {
			cancel() // mid-search: after the base and one candidate
		}
		return an.Analyze(ctx, &model.TaskSet{Tasks: tasks})
	}
	res, err := repair.Search(ctx, blockedSet(t), repair.Config{}, eval)
	if err != nil {
		t.Fatalf("Search after cancel: %v", err)
	}
	if !res.Stopped {
		t.Fatalf("want Stopped on cancellation, got %+v", res)
	}
	if res.Candidates > 4 {
		t.Fatalf("search kept going after cancellation: %d candidates", res.Candidates)
	}
	if res.Report == nil || res.Tasks == nil {
		t.Fatal("best-so-far result missing tasks/report")
	}
}

// TestSearchCandidateCap: the MaxCandidates budget is the other
// anytime exit.
func TestSearchCandidateCap(t *testing.T) {
	eval := evalWith(t, core.Options{Cores: 2, Method: core.LPILP})
	res, err := repair.Search(context.Background(), blockedSet(t),
		repair.Config{MaxCandidates: 1}, eval)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if !res.Stopped || res.Fixed || res.Candidates != 1 {
		t.Fatalf("want capped unfixed result, got %+v", res)
	}
	if res.FailingAfter != res.FailingBefore || len(res.Transforms) != 0 {
		t.Fatalf("best-so-far must be the input set, got %+v", res)
	}
}

func TestSearchEvalErrorPropagates(t *testing.T) {
	boom := errors.New("backend down")
	calls := 0
	eval := func(ctx context.Context, tasks []*model.Task) (*core.Report, error) {
		calls++
		if calls == 1 {
			an, err := core.New(core.Options{Cores: 2, Method: core.LPILP})
			if err != nil {
				return nil, err
			}
			return an.Analyze(ctx, &model.TaskSet{Tasks: tasks})
		}
		return nil, boom
	}
	_, err := repair.Search(context.Background(), blockedSet(t), repair.Config{}, eval)
	if !errors.Is(err, boom) {
		t.Fatalf("want eval error to propagate, got %v", err)
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		cfg  repair.Config
		want string
	}{
		{repair.Config{MaxSteps: -1}, "invalid Config.MaxSteps"},
		{repair.Config{Beam: -2}, "invalid Config.Beam"},
		{repair.Config{MaxCandidates: -1}, "invalid Config.MaxCandidates"},
		{repair.Config{Budgets: []int64{10, 0}}, "invalid Config.Budgets[1]"},
		{repair.Config{Strategy: repair.Strategy(9)}, "invalid Config.Strategy"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Validate(%+v) = %v, want %q", tc.cfg, err, tc.want)
		}
	}
	if err := (repair.Config{}).Validate(); err != nil {
		t.Errorf("zero Config must validate, got %v", err)
	}
}

func TestApplyErrors(t *testing.T) {
	tasks := blockedSet(t)
	cases := []struct {
		tr   repair.Transform
		want string
	}{
		{repair.Transform{Op: repair.OpSplit, Task: "nope", MaxNPR: 10}, "unknown task"},
		{repair.Transform{Op: repair.OpSplit, Task: "lo", MaxNPR: 0}, "invalid MaxNPR"},
		{repair.Transform{Op: repair.OpMove, Task: "lo", To: 5}, "invalid To"},
		{repair.Transform{Op: repair.Op(7), Task: "lo"}, "invalid Op"},
	}
	for _, tc := range cases {
		_, err := repair.Apply(tasks, []repair.Transform{tc.tr})
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Apply(%v) = %v, want %q", tc.tr, err, tc.want)
		}
	}
}

func TestApplyTransforms(t *testing.T) {
	tasks := blockedSet(t)
	out, err := repair.Apply(tasks, []repair.Transform{
		{Op: repair.OpSplit, Task: "lo", MaxNPR: 50},
		{Op: repair.OpMove, Task: "lo", To: 0},
		{Op: repair.OpCoarsen, Task: "hi", MaxNPR: 10},
	})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if out[0].Name != "lo" || out[1].Name != "hi" {
		t.Fatalf("move not applied: %s, %s", out[0].Name, out[1].Name)
	}
	if got := out[0].G.MaxWCET(); got != 50 {
		t.Errorf("split: max NPR %d, want 50", got)
	}
	if got := out[0].G.N(); got != 4 {
		t.Errorf("split: %d nodes, want 4", got)
	}
	if got := out[1].G.N(); got != 1 {
		t.Errorf("coarsen: %d nodes, want 1", got)
	}
	// Inputs untouched.
	if tasks[0].Name != "hi" || tasks[0].G.N() != 2 || tasks[1].G.N() != 1 {
		t.Fatal("Apply mutated its input")
	}
}

func TestDeriveBudgets(t *testing.T) {
	tasks := blockedSet(t) // largest NPR 200
	got := repair.DeriveBudgets(tasks)
	want := []int64{100, 50, 25}
	if len(got) != len(want) {
		t.Fatalf("DeriveBudgets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DeriveBudgets = %v, want %v", got, want)
		}
	}
	tiny := []*model.Task{chainTask(t, "t", []int64{2}, 10, 10)}
	got = repair.DeriveBudgets(tiny)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("DeriveBudgets(tiny) = %v, want [1]", got)
	}
}

func TestSearchInputValidation(t *testing.T) {
	eval := evalWith(t, core.Options{Cores: 2, Method: core.LPILP})
	ctx := context.Background()
	if _, err := repair.Search(ctx, nil, repair.Config{}, eval); err == nil {
		t.Error("empty task set must error")
	}
	if _, err := repair.Search(ctx, blockedSet(t), repair.Config{}, nil); err == nil {
		t.Error("nil eval must error")
	}
	dup := []*model.Task{
		chainTask(t, "same", []int64{5}, 50, 50),
		chainTask(t, "same", []int64{5}, 50, 50),
	}
	if _, err := repair.Search(ctx, dup, repair.Config{}, eval); err == nil ||
		!strings.Contains(err.Error(), "duplicate name") {
		t.Error("duplicate names must error")
	}
}

func TestParseRoundTrips(t *testing.T) {
	for _, s := range []repair.Strategy{repair.Greedy, repair.Exhaustive} {
		got, err := repair.ParseStrategy(s.String())
		if err != nil || got != s {
			t.Errorf("ParseStrategy(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := repair.ParseStrategy("magic"); err == nil {
		t.Error("ParseStrategy must reject unknown spellings")
	}
	for _, o := range []repair.Op{repair.OpSplit, repair.OpCoarsen, repair.OpMove} {
		got, err := repair.ParseOp(o.String())
		if err != nil || got != o {
			t.Errorf("ParseOp(%q) = %v, %v", o.String(), got, err)
		}
	}
	if _, err := repair.ParseOp("magic"); err == nil {
		t.Error("ParseOp must reject unknown spellings")
	}
}

// Package repair searches preemption-point placement transforms that
// flip an unschedulable task set schedulable.
//
// The paper (Serrano et al., DATE 2016) leaves preemption-point
// placement as the open design dimension of limited-preemptive DAG
// scheduling: the blocking a task suffers is driven by the largest
// non-preemptive regions of lower-priority tasks (Δ^m sums the m
// largest, Δ^{m-1} the m−1 largest), so where the NPR boundaries sit
// decides schedulability. This package turns internal/ppp from a
// passive sweep into an optimizer: given an unschedulable set, it
// searches sequences of per-task transforms — SplitNodes budgets,
// optional CoarsenChains, optional priority reassignment — for the
// cheapest sequence that makes the set schedulable, or the best
// partial repair when the budget runs out.
//
// The search is anytime and context-cancellable: cancelling mid-search
// returns the best state seen so far (fewest still-failing tasks,
// then largest worst-case slack) rather than an error. Candidates are
// evaluated through a caller-supplied Eval, which sessions bind to the
// pooled incremental analyzer so a one-task transform costs an edit,
// not a re-analysis. All enumeration orders are fixed and equal-score
// ties are broken by a seed-pinned rank, so a given (task set, Config)
// pair always yields the same transform sequence.
package repair

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/ppp"
)

// Strategy selects the search algorithm.
type Strategy int

// Search strategies.
const (
	// Greedy is the blocking-guided beam search: each step expands the
	// frontier with splits that attack the largest NPRs at or below the
	// first failing task and keeps the Beam best states. Linear in
	// MaxSteps; the default.
	Greedy Strategy = iota
	// Exhaustive enumerates transform sequences breadth-first, so the
	// first schedulable state found has the fewest transforms.
	// Exponential in MaxSteps — for small sets and short sequences.
	Exhaustive
)

func (s Strategy) String() string {
	switch s {
	case Greedy:
		return "greedy"
	case Exhaustive:
		return "exhaustive"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// ParseStrategy maps a wire spelling onto a Strategy. The empty string
// is Greedy.
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "", "greedy":
		return Greedy, nil
	case "exhaustive":
		return Exhaustive, nil
	}
	return 0, fmt.Errorf("repair: invalid strategy: %q (must be greedy or exhaustive)", s)
}

// Op is the kind of one placement transform.
type Op int

// Transform kinds.
const (
	// OpSplit caps a task's NPR lengths at MaxNPR via ppp.SplitNodes,
	// shrinking the blocking it imposes on higher-priority tasks.
	OpSplit Op = iota
	// OpCoarsen merges a task's preemptible chains up to MaxNPR via
	// ppp.CoarsenChains, shrinking the task's own preemption count.
	OpCoarsen
	// OpMove reassigns a task to priority index To (0 = highest).
	OpMove
)

func (o Op) String() string {
	switch o {
	case OpSplit:
		return "split"
	case OpCoarsen:
		return "coarsen"
	case OpMove:
		return "move"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// ParseOp maps a wire spelling onto an Op.
func ParseOp(s string) (Op, error) {
	switch s {
	case "split":
		return OpSplit, nil
	case "coarsen":
		return OpCoarsen, nil
	case "move":
		return OpMove, nil
	}
	return 0, fmt.Errorf("repair: invalid op: %q (must be split, coarsen or move)", s)
}

// Transform is one placement step. Task names the target: names are
// stable across priority moves, indices are not.
type Transform struct {
	Op     Op
	Task   string
	MaxNPR int64 // split/coarsen budget; unused for OpMove
	To     int   // target priority index; unused otherwise
}

func (t Transform) String() string {
	if t.Op == OpMove {
		return fmt.Sprintf("move %s to %d", t.Task, t.To)
	}
	return fmt.Sprintf("%s %s at %d", t.Op, t.Task, t.MaxNPR)
}

// Search defaults.
const (
	DefaultMaxSteps      = 4
	DefaultBeam          = 4
	DefaultMaxCandidates = 4096
)

// Config parameterises a Search. The zero value is a usable greedy
// search with derived split budgets.
type Config struct {
	// Strategy selects greedy beam search (default) or exhaustive
	// breadth-first enumeration.
	Strategy Strategy
	// MaxSteps caps the transform-sequence length. 0 means
	// DefaultMaxSteps.
	MaxSteps int
	// Budgets are the candidate NPR-length caps tried for splits and
	// coarsens, each ≥ 1. Empty derives a halving ladder from the
	// set's largest NPR (see DeriveBudgets).
	Budgets []int64
	// Coarsen admits OpCoarsen moves. Off by default: coarsening
	// trades blocking imposed on others for fewer own preemptions,
	// which only pays in priority-inverted corners.
	Coarsen bool
	// Reprioritize admits OpMove promotions of failing tasks. Off by
	// default.
	Reprioritize bool
	// Beam is the greedy frontier width. 0 means DefaultBeam.
	Beam int
	// MaxCandidates caps evaluated candidates; the search returns its
	// best-so-far when the cap strikes. 0 means DefaultMaxCandidates.
	MaxCandidates int
	// Seed pins the tie-break rank among equal-scoring candidates.
	// Any fixed value gives reproducible results; it exists so callers
	// can diversify repeated searches, not to add randomness.
	Seed int64
}

// Validate checks the configuration without filling defaults, using
// the repo-wide invalid-field error convention.
func (c Config) Validate() error {
	switch c.Strategy {
	case Greedy, Exhaustive:
	default:
		return fmt.Errorf("repair: invalid Config.Strategy: %d (must be greedy or exhaustive)", int(c.Strategy))
	}
	if c.MaxSteps < 0 {
		return fmt.Errorf("repair: invalid Config.MaxSteps: %d (must be ≥ 0; 0 means %d)", c.MaxSteps, DefaultMaxSteps)
	}
	if c.Beam < 0 {
		return fmt.Errorf("repair: invalid Config.Beam: %d (must be ≥ 0; 0 means %d)", c.Beam, DefaultBeam)
	}
	if c.MaxCandidates < 0 {
		return fmt.Errorf("repair: invalid Config.MaxCandidates: %d (must be ≥ 0; 0 means %d)", c.MaxCandidates, DefaultMaxCandidates)
	}
	for i, q := range c.Budgets {
		if q < 1 {
			return fmt.Errorf("repair: invalid Config.Budgets[%d]: %d (must be ≥ 1)", i, q)
		}
	}
	return nil
}

func (c Config) withDefaults(tasks []*model.Task) (Config, error) {
	if err := c.Validate(); err != nil {
		return c, err
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = DefaultMaxSteps
	}
	if c.Beam == 0 {
		c.Beam = DefaultBeam
	}
	if c.MaxCandidates == 0 {
		c.MaxCandidates = DefaultMaxCandidates
	}
	if len(c.Budgets) == 0 {
		c.Budgets = DeriveBudgets(tasks)
	}
	return c, nil
}

// DeriveBudgets returns the default split ladder for a task set: the
// set's largest NPR halved one, two and three times, floored at 1 and
// deduplicated. Exported so clients can display what a default search
// will try.
func DeriveBudgets(tasks []*model.Task) []int64 {
	var w int64
	for _, t := range tasks {
		if t.G == nil {
			continue
		}
		if m := t.G.MaxWCET(); m > w {
			w = m
		}
	}
	var out []int64
	for _, d := range []int64{2, 4, 8} {
		q := w / d
		if q < 1 {
			q = 1
		}
		if n := len(out); n == 0 || out[n-1] != q {
			out = append(out, q)
		}
	}
	return out
}

// Result is the outcome of a Search.
type Result struct {
	// Fixed reports whether Tasks analyzes schedulable. An already-
	// schedulable input yields Fixed with an empty Transforms.
	Fixed bool
	// Stopped reports the anytime exit: the context was cancelled or
	// MaxCandidates struck before the search space was exhausted, so
	// Transforms is the best partial repair seen, not a proven optimum.
	Stopped bool
	// Transforms is the winning sequence in application order.
	Transforms []Transform
	// Candidates counts evaluated placements (analyzer calls).
	Candidates int
	// FailingBefore and FailingAfter count analyzed-and-missing tasks
	// in the input and repaired sets.
	FailingBefore, FailingAfter int
	// SlackBefore and SlackAfter are the minimum m·D − R^m over
	// analyzed tasks (m-scaled time units; negative means a miss).
	SlackBefore, SlackAfter int64
	// Tasks is the repaired priority ordering and Report its analysis
	// — exactly the set a caller commits when applying the repair.
	Tasks  []*model.Task
	Report *core.Report
}

// Eval analyzes one candidate priority ordering under the caller's
// fixed options. Sessions bind it to the pooled incremental analyzer,
// so a candidate differing from the previous one in a single task
// costs an edit, not a full re-analysis.
type Eval func(ctx context.Context, tasks []*model.Task) (*core.Report, error)

// Apply replays a transform sequence onto a priority ordering and
// returns the transformed ordering. Transformed tasks are fresh
// *model.Task values (sessions treat tasks as immutable); untouched
// tasks keep their identity.
func Apply(tasks []*model.Task, trs []Transform) ([]*model.Task, error) {
	out := append([]*model.Task(nil), tasks...)
	for i, tr := range trs {
		next, err := applyOne(out, tr)
		if err != nil {
			return nil, fmt.Errorf("repair: transform %d (%s): %w", i, tr, err)
		}
		out = next
	}
	return out, nil
}

func applyOne(tasks []*model.Task, tr Transform) ([]*model.Task, error) {
	idx := -1
	for i, t := range tasks {
		if t.Name == tr.Task {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("unknown task %q", tr.Task)
	}
	out := append([]*model.Task(nil), tasks...)
	switch tr.Op {
	case OpSplit, OpCoarsen:
		if tr.MaxNPR < 1 {
			return nil, fmt.Errorf("invalid MaxNPR: %d (must be ≥ 1)", tr.MaxNPR)
		}
		t := out[idx]
		g := t.G
		if tr.Op == OpSplit {
			g = ppp.SplitNodes(g, tr.MaxNPR)
		} else {
			g = ppp.CoarsenChains(g, tr.MaxNPR)
		}
		out[idx] = &model.Task{Name: t.Name, G: g, Deadline: t.Deadline, Period: t.Period}
	case OpMove:
		if tr.To < 0 || tr.To >= len(out) {
			return nil, fmt.Errorf("invalid To: %d (must be in [0, %d])", tr.To, len(out)-1)
		}
		t := out[idx]
		out = append(out[:idx], out[idx+1:]...)
		out = append(out, nil)
		copy(out[tr.To+1:], out[tr.To:])
		out[tr.To] = t
	default:
		return nil, fmt.Errorf("invalid Op: %d", int(tr.Op))
	}
	return out, nil
}

// score orders candidate states: schedulable beats everything, then
// fewer failing tasks, then the larger worst-case m-scaled slack.
// (Schedulable is tracked separately from the failing count: a report
// can be unschedulable with zero per-task failures when a task was
// never analyzed.)
type score struct {
	sched   bool
	failing int
	slackM  int64
}

func scoreOf(rep *core.Report) score {
	s := score{sched: rep.Schedulable}
	first := true
	for _, tr := range rep.Tasks {
		if !tr.Analyzed {
			continue
		}
		if !tr.Schedulable {
			s.failing++
		}
		slack := int64(rep.Cores)*tr.Deadline - tr.ResponseTimeM
		if first || slack < s.slackM {
			s.slackM = slack
			first = false
		}
	}
	return s
}

func (a score) better(b score) bool {
	if a.sched != b.sched {
		return a.sched
	}
	if a.failing != b.failing {
		return a.failing < b.failing
	}
	return a.slackM > b.slackM
}

// mix64 is the splitmix64 finalizer, the repo's standard bit mixer for
// deterministic derived pseudo-randomness (see experiments.SeedFor).
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// tieRank is the pinned tie-break among equal-scoring candidates:
// purely a function of (seed, step, enumeration index), never of
// timing or map order.
func tieRank(seed int64, step, cand int) uint64 {
	return mix64(mix64(uint64(seed)) ^ mix64(uint64(step)<<32|uint64(uint32(cand))))
}

// state is one search node: a candidate ordering, the transform chain
// that produced it, and its evaluated score.
type state struct {
	tasks []*model.Task
	chain []Transform
	sc    score
	rep   *core.Report
	rank  uint64
}

// stateKey identifies a candidate up to analysis equivalence: the
// priority order of (name, graph-content) pairs. Deadlines and periods
// never change under repair transforms, so they are not keyed.
func stateKey(tasks []*model.Task) string {
	var b strings.Builder
	for _, t := range tasks {
		b.WriteString(t.Name)
		b.WriteByte(':')
		b.WriteString(t.G.Fingerprint())
		b.WriteByte(';')
	}
	return b.String()
}

// Search looks for the cheapest transform sequence that makes tasks
// schedulable under eval, or the best partial repair within budget.
// Cancelling ctx mid-search is the anytime exit: the best-so-far
// Result is returned with Stopped set, not an error. Errors are
// reserved for invalid input and failing evaluation of the input set.
func Search(ctx context.Context, tasks []*model.Task, cfg Config, eval Eval) (*Result, error) {
	if len(tasks) == 0 {
		return nil, errors.New("repair: invalid task set: empty (must have ≥ 1 task)")
	}
	if eval == nil {
		return nil, errors.New("repair: invalid eval: nil")
	}
	seenName := make(map[string]bool, len(tasks))
	for _, t := range tasks {
		if t == nil || t.G == nil {
			return nil, errors.New("repair: invalid task set: nil task or graph")
		}
		if seenName[t.Name] {
			return nil, fmt.Errorf("repair: invalid task set: duplicate name %q (transforms address tasks by name)", t.Name)
		}
		seenName[t.Name] = true
	}
	cfg, err := cfg.withDefaults(tasks)
	if err != nil {
		return nil, err
	}

	r := &searcher{cfg: cfg, eval: eval}
	base := &state{tasks: append([]*model.Task(nil), tasks...)}
	if err := r.evaluate(ctx, base); err != nil {
		return nil, err
	}
	r.best = base
	res := &Result{FailingBefore: base.sc.failing, SlackBefore: base.sc.slackM}
	if !base.rep.Schedulable {
		var stopped bool
		if cfg.Strategy == Exhaustive {
			stopped = r.exhaustive(ctx, base)
		} else {
			stopped = r.greedy(ctx, base)
		}
		if r.err != nil {
			return nil, r.err
		}
		res.Stopped = stopped
	}
	best := r.best
	res.Fixed = best.rep.Schedulable
	res.Transforms = best.chain
	res.Candidates = r.candidates
	res.FailingAfter = best.sc.failing
	res.SlackAfter = best.sc.slackM
	res.Tasks = best.tasks
	res.Report = best.rep
	return res, nil
}

type searcher struct {
	cfg        Config
	eval       Eval
	candidates int
	best       *state
	err        error // fatal (non-context) evaluation failure
}

func (r *searcher) evaluate(ctx context.Context, s *state) error {
	rep, err := r.eval(ctx, s.tasks)
	if err != nil {
		return err
	}
	r.candidates++
	s.rep = rep
	s.sc = scoreOf(rep)
	return nil
}

// exhausted reports whether the anytime budget has struck.
func (r *searcher) exhausted(ctx context.Context) bool {
	return ctx.Err() != nil || r.candidates >= r.cfg.MaxCandidates
}

// consider promotes s to best if it scores strictly better, or ties
// the score with a smaller pinned rank.
func (r *searcher) consider(s *state) {
	if s.sc.better(r.best.sc) || (s.sc == r.best.sc && s.rank < r.best.rank && len(r.best.chain) > 0) {
		r.best = s
	}
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// moves enumerates the candidate transforms of one unschedulable
// state, in fixed order. The blocking guidance: the first failing
// task k's bound is dominated by Δ^m/Δ^{m-1}, the sums of the largest
// NPRs among lower-priority tasks, so splits target tasks below k in
// descending largest-NPR order. Exhaustive mode widens split targets
// to every task (a failing task's own NPRs bound its intra-task
// blocking too).
func (r *searcher) moves(s *state) []Transform {
	k := -1
	for i, tr := range s.rep.Tasks {
		if tr.Analyzed && !tr.Schedulable {
			k = i
			break
		}
	}
	if k < 0 {
		return nil
	}
	n := len(s.tasks)
	var out []Transform

	// Greedy: only tasks below k can block it, and splitting k itself
	// would add preemption points (a larger p_k) without shrinking any
	// Δ term of its bound. Exhaustive: every task, every effect.
	lo := k + 1
	if r.cfg.Strategy == Exhaustive {
		lo = 0
	}
	type target struct {
		idx int
		max int64
	}
	targets := make([]target, 0, n-lo)
	for j := lo; j < n; j++ {
		targets = append(targets, target{j, s.tasks[j].G.MaxWCET()})
	}
	sort.SliceStable(targets, func(a, b int) bool { return targets[a].max > targets[b].max })
	for _, tg := range targets {
		for _, q := range r.cfg.Budgets {
			if tg.max <= q {
				continue // the split would be a no-op
			}
			out = append(out, Transform{Op: OpSplit, Task: s.tasks[tg.idx].Name, MaxNPR: q})
		}
	}
	if r.cfg.Coarsen {
		// Coarsening a failing task shrinks its own preemption count
		// p_k, hence its p_k·Δ^{m-1} term.
		for i, tr := range s.rep.Tasks {
			if !tr.Analyzed || tr.Schedulable {
				continue
			}
			for _, q := range r.cfg.Budgets {
				out = append(out, Transform{Op: OpCoarsen, Task: s.tasks[i].Name, MaxNPR: q})
			}
		}
	}
	if r.cfg.Reprioritize {
		// Promote the first failing task into each higher slot.
		for to := 0; to < k; to++ {
			out = append(out, Transform{Op: OpMove, Task: s.tasks[k].Name, To: to})
		}
	}
	return out
}

// expand evaluates the children of s at the given depth, appending
// fresh ones to next and reporting whether the budget struck. seen
// dedups analysis-equivalent states across the whole search.
func (r *searcher) expand(ctx context.Context, s *state, depth int, cand *int, seen map[string]bool, next *[]*state) (stop bool) {
	for _, tr := range r.moves(s) {
		if r.exhausted(ctx) {
			return true
		}
		tasks, err := applyOne(s.tasks, tr)
		if err != nil {
			continue // unreachable for generated moves
		}
		key := stateKey(tasks)
		if seen[key] {
			continue
		}
		seen[key] = true
		c := &state{
			tasks: tasks,
			chain: append(append([]Transform(nil), s.chain...), tr),
			rank:  tieRank(r.cfg.Seed, depth, *cand),
		}
		*cand++
		if err := r.evaluate(ctx, c); err != nil {
			if isCtxErr(err) {
				return true
			}
			r.err = err
			return true
		}
		r.consider(c)
		if c.rep.Schedulable {
			return true // first hit at this depth wins; chains are depth+1 long
		}
		*next = append(*next, c)
	}
	return false
}

// greedy is the blocking-guided beam search. It reports whether the
// anytime budget struck before the search converged.
func (r *searcher) greedy(ctx context.Context, base *state) bool {
	seen := map[string]bool{stateKey(base.tasks): true}
	frontier := []*state{base}
	for depth := 0; depth < r.cfg.MaxSteps; depth++ {
		frontierBest := frontier[0].sc
		var children []*state
		cand := 0
		for _, s := range frontier {
			if r.expand(ctx, s, depth, &cand, seen, &children) {
				return r.err == nil && r.best.rep != nil && !r.best.rep.Schedulable && r.exhausted(ctx)
			}
		}
		if len(children) == 0 {
			return false
		}
		sort.SliceStable(children, func(a, b int) bool {
			if children[a].sc != children[b].sc {
				return children[a].sc.better(children[b].sc)
			}
			return children[a].rank < children[b].rank
		})
		if !children[0].sc.better(frontierBest) {
			return false // local optimum: no child improves the frontier
		}
		if len(children) > r.cfg.Beam {
			children = children[:r.cfg.Beam]
		}
		frontier = children
	}
	return false
}

// exhaustive is the breadth-first enumeration: the first schedulable
// state found has the fewest transforms. It reports whether the
// anytime budget struck before the space was exhausted.
func (r *searcher) exhaustive(ctx context.Context, base *state) bool {
	seen := map[string]bool{stateKey(base.tasks): true}
	frontier := []*state{base}
	for depth := 0; depth < r.cfg.MaxSteps && len(frontier) > 0; depth++ {
		var next []*state
		cand := 0
		for _, s := range frontier {
			if r.expand(ctx, s, depth, &cand, seen, &next) {
				return r.err == nil && r.best.rep != nil && !r.best.rep.Schedulable && r.exhausted(ctx)
			}
		}
		frontier = next
	}
	return false
}

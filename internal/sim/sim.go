// Package sim is a discrete-event simulator of global fixed-priority
// scheduling with limited preemptions for sporadic DAG tasks — the
// execution model analyzed by Serrano et al. (DATE 2016).
//
// Nodes of a task's DAG are non-preemptive regions: once a node starts
// on a core it runs to completion; scheduling decisions happen only at
// node boundaries and job releases (fixed preemption points with eager
// preemption: whenever a core frees up, the highest-priority eligible
// node takes it, so a newly released high-priority job preempts the
// first lower-priority task to reach a preemption point).
//
// The simulator serves as a testing oracle for the analysis: every
// simulated schedule is a legal behaviour of the sporadic task system,
// so simulated response times must never exceed the analytic bounds of a
// task set deemed schedulable, and a simulated deadline miss must imply
// an "unschedulable" verdict.
package sim

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/model"
)

// Config parameterises one simulation run.
type Config struct {
	M        int   // cores
	Duration int64 // simulate releases in [0, Duration)

	// ReleaseDelay, when non-nil, returns an extra sporadic delay added
	// to job j's inter-arrival for task i (0 = strictly periodic with
	// synchronous start — the classic worst-case-style scenario).
	ReleaseDelay func(task, job int) int64

	// RecordTrace enables the execution trace used by the Gantt chart.
	RecordTrace bool

	// MaxJobs caps the total number of released jobs as a safety net
	// (0 = no cap beyond Duration).
	MaxJobs int
}

// JobStat describes one completed (or missed) job.
type JobStat struct {
	Task     int // task index (priority)
	Job      int // job sequence number of the task
	Release  int64
	Finish   int64
	Response int64
	Missed   bool
}

// Span is one contiguous execution of a node on a core.
type Span struct {
	Core  int
	Task  int
	Job   int
	Node  int
	Start int64
	End   int64
}

// Result aggregates a run.
type Result struct {
	MaxResponse []int64 // per task, max observed response time
	Misses      int
	Jobs        []JobStat
	Trace       []Span // empty unless Config.RecordTrace
	CoreBusy    []int64
	Horizon     int64
}

// job is a released instance of a task.
type job struct {
	task     int
	seq      int
	release  int64
	remPreds []int // remaining unfinished predecessor count per node
	started  []bool
	done     []bool
	left     int // unfinished node count
	finish   int64
}

// event is a time-stamped simulator event.
type event struct {
	t    int64
	kind int // 0 release, 1 node completion
	task int
	seq  int
	node int
	core int
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	// Completions before releases at the same instant, so freed cores
	// are visible to the newly released job's scheduling pass.
	if q[i].kind != q[j].kind {
		return q[i].kind > q[j].kind
	}
	if q[i].task != q[j].task {
		return q[i].task < q[j].task
	}
	return q[i].node < q[j].node
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// readyNode identifies an eligible node of an active job.
type readyNode struct {
	task, seq, node int
	release         int64
}

// Run simulates the task set and returns the aggregated result.
func Run(ts *model.TaskSet, cfg Config) (*Result, error) {
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	if cfg.M < 1 {
		return nil, fmt.Errorf("sim: need at least one core, got %d", cfg.M)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("sim: non-positive duration %d", cfg.Duration)
	}

	n := ts.N()
	res := &Result{
		MaxResponse: make([]int64, n),
		CoreBusy:    make([]int64, cfg.M),
		Horizon:     cfg.Duration,
	}

	active := make(map[[2]int]*job) // (task, seq) -> job
	pendingRelease := make(map[int][]*job)

	var q eventQueue
	heap.Init(&q)

	// Schedule all releases up front (periodic plus optional sporadic
	// delay). Jobs released at or after Duration are not created.
	totalJobs := 0
	for i, task := range ts.Tasks {
		t := int64(0)
		for seq := 0; t < cfg.Duration; seq++ {
			heap.Push(&q, event{t: t, kind: 0, task: i, seq: seq})
			totalJobs++
			if cfg.MaxJobs > 0 && totalJobs >= cfg.MaxJobs {
				break
			}
			delta := task.Period
			if cfg.ReleaseDelay != nil {
				d := cfg.ReleaseDelay(i, seq+1)
				if d < 0 {
					d = 0
				}
				delta += d
			}
			t += delta
		}
		if cfg.MaxJobs > 0 && totalJobs >= cfg.MaxJobs {
			break
		}
	}

	freeCores := make([]int, 0, cfg.M)
	for c := cfg.M - 1; c >= 0; c-- {
		freeCores = append(freeCores, c) // pop from the end → core 0 first
	}
	ready := make([]readyNode, 0, 64)
	lastFinished := make(map[int]int, n) // task -> highest fully finished seq
	for i := 0; i < n; i++ {
		lastFinished[i] = -1
	}

	startJob := func(j *job) {
		g := ts.Tasks[j.task].G
		for v := 0; v < g.N(); v++ {
			if j.remPreds[v] == 0 {
				ready = append(ready, readyNode{j.task, j.seq, v, j.release})
			}
		}
	}

	// schedule assigns ready nodes to free cores, highest priority first
	// (task index, then earlier release, then node index for
	// determinism).
	schedule := func(now int64) {
		if len(freeCores) == 0 || len(ready) == 0 {
			return
		}
		sort.Slice(ready, func(a, b int) bool {
			ra, rb := ready[a], ready[b]
			if ra.task != rb.task {
				return ra.task < rb.task
			}
			if ra.seq != rb.seq {
				return ra.seq < rb.seq
			}
			return ra.node < rb.node
		})
		for len(freeCores) > 0 && len(ready) > 0 {
			rn := ready[0]
			ready = ready[1:]
			core := freeCores[len(freeCores)-1]
			freeCores = freeCores[:len(freeCores)-1]
			j := active[[2]int{rn.task, rn.seq}]
			j.started[rn.node] = true
			c := ts.Tasks[rn.task].G.WCET(rn.node)
			end := now + c
			res.CoreBusy[core] += c
			heap.Push(&q, event{t: end, kind: 1, task: rn.task, seq: rn.seq, node: rn.node, core: core})
			if cfg.RecordTrace {
				res.Trace = append(res.Trace, Span{
					Core: core, Task: rn.task, Job: rn.seq, Node: rn.node,
					Start: now, End: end,
				})
			}
		}
	}

	processRelease := func(ev event) {
		task := ts.Tasks[ev.task]
		g := task.G
		j := &job{
			task:     ev.task,
			seq:      ev.seq,
			release:  ev.t,
			remPreds: make([]int, g.N()),
			started:  make([]bool, g.N()),
			done:     make([]bool, g.N()),
			left:     g.N(),
		}
		for v := 0; v < g.N(); v++ {
			j.remPreds[v] = len(g.Predecessors(v))
		}
		// Serialize jobs of the same task: a job becomes eligible only
		// when its predecessor job has fully completed.
		if lastFinished[ev.task] >= ev.seq-1 {
			active[[2]int{ev.task, ev.seq}] = j
			startJob(j)
		} else {
			pendingRelease[ev.task] = append(pendingRelease[ev.task], j)
		}
	}

	processCompletion := func(ev event) {
		key := [2]int{ev.task, ev.seq}
		j := active[key]
		g := ts.Tasks[ev.task].G
		now := ev.t
		j.done[ev.node] = true
		j.left--
		freeCores = append(freeCores, ev.core)
		for _, w := range g.Successors(ev.node) {
			j.remPreds[w]--
			if j.remPreds[w] == 0 {
				ready = append(ready, readyNode{ev.task, ev.seq, w, j.release})
			}
		}
		if j.left == 0 {
			j.finish = now
			delete(active, key)
			lastFinished[ev.task] = j.seq
			resp := j.finish - j.release
			missed := resp > ts.Tasks[ev.task].Deadline
			if missed {
				res.Misses++
			}
			if resp > res.MaxResponse[ev.task] {
				res.MaxResponse[ev.task] = resp
			}
			res.Jobs = append(res.Jobs, JobStat{
				Task: ev.task, Job: ev.seq, Release: j.release,
				Finish: j.finish, Response: resp, Missed: missed,
			})
			// Activate the serialized successor job, if queued.
			if pend := pendingRelease[ev.task]; len(pend) > 0 && pend[0].seq == j.seq+1 {
				next := pend[0]
				pendingRelease[ev.task] = pend[1:]
				active[[2]int{ev.task, next.seq}] = next
				startJob(next)
			}
		}
	}

	// Process every event at one time instant before making scheduling
	// decisions, so simultaneous completions and releases are all visible
	// to the (eager, priority-ordered) core assignment.
	for q.Len() > 0 {
		now := q[0].t
		for q.Len() > 0 && q[0].t == now {
			ev := heap.Pop(&q).(event)
			if ev.kind == 0 {
				processRelease(ev)
			} else {
				processCompletion(ev)
			}
		}
		schedule(now)
	}
	return res, nil
}

// Utilization returns the fraction of core time spent executing.
func (r *Result) Utilization(m int) float64 {
	var busy int64
	for _, b := range r.CoreBusy {
		busy += b
	}
	return float64(busy) / float64(int64(m)*r.Horizon)
}

package sim

import (
	"fmt"
	"strings"

	"repro/internal/model"
)

// Gantt renders the recorded trace as an ASCII chart, one row per core,
// one character per `scale` time units, over [0, horizon). Each cell
// shows the first letter of the executing task's label (task index as
// A, B, C, … when unnamed); '.' is idle. Requires Config.RecordTrace.
func (r *Result) Gantt(ts *model.TaskSet, horizon, scale int64) string {
	if scale < 1 {
		scale = 1
	}
	if horizon <= 0 {
		horizon = r.Horizon
	}
	cols := int((horizon + scale - 1) / scale)
	rows := make([][]byte, len(r.CoreBusy))
	for c := range rows {
		rows[c] = []byte(strings.Repeat(".", cols))
	}
	label := func(task int) byte {
		name := ts.Tasks[task].Name
		if name != "" {
			return name[0]
		}
		return byte('A' + task%26)
	}
	for _, s := range r.Trace {
		if s.Start >= horizon {
			continue
		}
		end := s.End
		if end > horizon {
			end = horizon
		}
		for t := s.Start; t < end; t += scale {
			col := int(t / scale)
			if col < cols {
				rows[s.Core][col] = label(s.Task)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "time 0..%d, %d unit(s)/char\n", horizon, scale)
	for c, row := range rows {
		fmt.Fprintf(&b, "core%-2d |%s|\n", c, row)
	}
	return b.String()
}

package sim

import (
	"context"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/dag"
	"repro/internal/fixture"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/rta"
)

func chain(wcets ...int64) *dag.Graph {
	var b dag.Builder
	prev := -1
	for _, c := range wcets {
		v := b.AddNode(c)
		if prev >= 0 {
			b.AddEdge(prev, v)
		}
		prev = v
	}
	return b.MustBuild()
}

func diamond(c ...int64) *dag.Graph {
	var b dag.Builder
	s := b.AddNode(c[0])
	a := b.AddNode(c[1])
	bb := b.AddNode(c[2])
	t := b.AddNode(c[3])
	b.AddEdge(s, a)
	b.AddEdge(s, bb)
	b.AddEdge(a, t)
	b.AddEdge(bb, t)
	return b.MustBuild()
}

func mustSet(t *testing.T, tasks ...*model.Task) *model.TaskSet {
	t.Helper()
	ts, err := model.NewTaskSet(tasks...)
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func TestSingleTaskMakespan(t *testing.T) {
	// Diamond (1,2,3,4) on 2 cores: source at [0,1), both branches in
	// parallel [1,3)/[1,4), sink [4,8) → response 8.
	ts := mustSet(t, &model.Task{Name: "d", G: diamond(1, 2, 3, 4), Deadline: 20, Period: 20})
	res, err := Run(ts, Config{M: 2, Duration: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxResponse[0] != 8 {
		t.Errorf("response = %d, want 8", res.MaxResponse[0])
	}
	if res.Misses != 0 {
		t.Errorf("misses = %d", res.Misses)
	}
}

func TestSingleCoreSequentialisesDiamond(t *testing.T) {
	ts := mustSet(t, &model.Task{Name: "d", G: diamond(1, 2, 3, 4), Deadline: 20, Period: 20})
	res, err := Run(ts, Config{M: 1, Duration: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxResponse[0] != 10 { // volume
		t.Errorf("response = %d, want 10 (volume)", res.MaxResponse[0])
	}
}

func TestNonPreemptiveBlocking(t *testing.T) {
	// Low-priority long NPR starts at 0 on the only core; high-priority
	// task released at 0 too, but scheduling is priority-ordered at
	// t = 0, so hi runs first. Give lo a head start with hi's sporadic
	// delay — hi released at 1 must wait for lo's node to finish at 10.
	hi := &model.Task{Name: "hi", G: chain(2), Deadline: 50, Period: 50}
	lo := &model.Task{Name: "lo", G: chain(10, 1), Deadline: 100, Period: 100}
	delays := func(task, job int) int64 { return 0 }
	_ = delays
	// Simulate with hi's first release delayed by 1 via a custom
	// scenario: shift hi's phase by giving it one extra delay. The
	// ReleaseDelay hook delays inter-arrivals, not the first release, so
	// emulate the phase shift by swapping roles: release both at 0 but
	// make lo higher priority… simpler: check eager behaviour directly
	// at t=0 with both ready: hi (higher priority) runs first.
	ts := mustSet(t, hi, lo)
	res, err := Run(ts, Config{M: 1, Duration: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxResponse[0] != 2 { // hi runs immediately
		t.Errorf("hi response = %d, want 2", res.MaxResponse[0])
	}
	if res.MaxResponse[1] != 13 { // 2 (blocked) + 11
		t.Errorf("lo response = %d, want 13", res.MaxResponse[1])
	}
}

// TestEagerNonPreemption pins the defining LP behaviour: a running NPR is
// never abandoned. Two tasks on one core; lo's 10-unit node occupies the
// core when hi arrives mid-flight (phase via period arithmetic), and hi
// must wait until the node boundary.
func TestEagerNonPreemption(t *testing.T) {
	// hi: period 7, first job at 0; lo: chain(10,1). At t=0 hi runs
	// (2 units), lo starts its 10-unit node at t=2. hi's second job at
	// t=7 finds the core busy until t=12 → response 12-7+2 = 7.
	hi := &model.Task{Name: "hi", G: chain(2), Deadline: 7, Period: 7}
	lo := &model.Task{Name: "lo", G: chain(10, 1), Deadline: 100, Period: 100}
	ts := mustSet(t, hi, lo)
	res, err := Run(ts, Config{M: 1, Duration: 14, RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	// Job 1 of hi: release 7, blocked until 12, runs [12,14) → resp 7.
	var hiJob1 *JobStat
	for i := range res.Jobs {
		if res.Jobs[i].Task == 0 && res.Jobs[i].Job == 1 {
			hiJob1 = &res.Jobs[i]
		}
	}
	if hiJob1 == nil {
		t.Fatal("hi job 1 not completed")
	}
	if hiJob1.Response != 7 {
		t.Errorf("hi job 1 response = %d, want 7 (blocked by the NPR)", hiJob1.Response)
	}
	if hiJob1.Missed {
		t.Error("response == deadline is not a miss")
	}
}

func TestDeadlineMissDetected(t *testing.T) {
	// Two unit-period heavy tasks on one core: guaranteed misses.
	a := &model.Task{Name: "a", G: chain(3), Deadline: 4, Period: 4}
	b := &model.Task{Name: "b", G: chain(3), Deadline: 4, Period: 4}
	res, err := Run(mustSet(t, a, b), Config{M: 1, Duration: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses == 0 {
		t.Error("expected deadline misses")
	}
}

func TestConfigValidation(t *testing.T) {
	ts := mustSet(t, &model.Task{Name: "x", G: chain(1), Deadline: 5, Period: 5})
	if _, err := Run(ts, Config{M: 0, Duration: 10}); err == nil {
		t.Error("M=0 accepted")
	}
	if _, err := Run(ts, Config{M: 1, Duration: 0}); err == nil {
		t.Error("Duration=0 accepted")
	}
	if _, err := Run(&model.TaskSet{}, Config{M: 1, Duration: 10}); err == nil {
		t.Error("invalid set accepted")
	}
}

func TestSporadicDelays(t *testing.T) {
	// Sporadic slack between releases reduces pressure: the overloaded
	// pair below misses constantly when strictly periodic, but with an
	// 8-unit gap only the synchronous initial release can collide.
	a := &model.Task{Name: "a", G: chain(3), Deadline: 4, Period: 4}
	b := &model.Task{Name: "b", G: chain(3), Deadline: 4, Period: 4}
	periodic, err := Run(mustSet(t, a, b), Config{M: 1, Duration: 40})
	if err != nil {
		t.Fatal(err)
	}
	sporadic, err := Run(mustSet(t, a, b), Config{
		M: 1, Duration: 40,
		ReleaseDelay: func(task, job int) int64 { return 8 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if sporadic.Misses >= periodic.Misses {
		t.Errorf("sporadic misses %d should be below periodic %d",
			sporadic.Misses, periodic.Misses)
	}
	// Only the synchronous releases at t = 0 collide: exactly one miss
	// (task b behind task a) per collision instant, and releases stay
	// synchronous at distance 12, so 4 release instants → 4 misses of b.
	if sporadic.Misses != 4 {
		t.Errorf("sporadic misses = %d, want 4 (b blocked at each synchronous release)",
			sporadic.Misses)
	}
}

func TestTraceAndGantt(t *testing.T) {
	ts := mustSet(t, &model.Task{Name: "d", G: diamond(1, 2, 3, 4), Deadline: 20, Period: 20})
	res, err := Run(ts, Config{M: 2, Duration: 20, RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 4 {
		t.Fatalf("trace has %d spans, want 4", len(res.Trace))
	}
	// No core runs two spans at once.
	for i, s1 := range res.Trace {
		for _, s2 := range res.Trace[i+1:] {
			if s1.Core == s2.Core && s1.Start < s2.End && s2.Start < s1.End {
				t.Fatalf("overlapping spans on core %d: %+v %+v", s1.Core, s1, s2)
			}
		}
	}
	g := res.Gantt(ts, 10, 1)
	if !strings.Contains(g, "core0") || !strings.Contains(g, "core1") {
		t.Errorf("Gantt missing core rows:\n%s", g)
	}
	if !strings.Contains(g, "d") {
		t.Errorf("Gantt missing task label:\n%s", g)
	}
}

func TestUtilizationAccounting(t *testing.T) {
	ts := mustSet(t, &model.Task{Name: "x", G: chain(5), Deadline: 10, Period: 10})
	res, err := Run(ts, Config{M: 1, Duration: 100})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Utilization(1); got < 0.45 || got > 0.55 {
		t.Errorf("utilization = %.3f, want ≈0.5", got)
	}
}

// TestPrecedenceRespected replays random schedules and asserts no node
// starts before all its predecessors finished.
func TestPrecedenceRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := gen.New(7, gen.PaperParams(gen.GroupMixed))
	for trial := 0; trial < 20; trial++ {
		ts := g.TaskSet(1.5 + rng.Float64()*2)
		m := 2 + rng.Intn(3)
		res, err := Run(ts, Config{M: m, Duration: 2000, RecordTrace: true})
		if err != nil {
			t.Fatal(err)
		}
		// start/end per (task, job, node)
		type key struct{ task, job, node int }
		start := map[key]int64{}
		end := map[key]int64{}
		for _, s := range res.Trace {
			k := key{s.Task, s.Job, s.Node}
			start[k] = s.Start
			end[k] = s.End
		}
		for k, st := range start {
			gr := ts.Tasks[k.task].G
			for _, p := range gr.Predecessors(k.node) {
				pk := key{k.task, k.job, p}
				if e, ok := end[pk]; ok && st < e {
					t.Fatalf("trial %d: node %v started %d before pred %d ended %d",
						trial, k, st, p, e)
				}
			}
		}
		// Never more than m spans run simultaneously (sweep-line count).
		type delta struct {
			t int64
			d int
		}
		var deltas []delta
		for _, s := range res.Trace {
			deltas = append(deltas, delta{s.Start, 1}, delta{s.End, -1})
		}
		sort.Slice(deltas, func(a, b int) bool {
			if deltas[a].t != deltas[b].t {
				return deltas[a].t < deltas[b].t
			}
			return deltas[a].d < deltas[b].d // ends before starts at equal t
		})
		running := 0
		for _, d := range deltas {
			running += d.d
			if running > m {
				t.Fatalf("trial %d: %d simultaneous spans on %d cores", trial, running, m)
			}
		}
	}
}

// TestAnalysisIsUpperBound is the central oracle property: for task sets
// the LP analysis deems schedulable, every simulated response time (a
// legal sporadic scenario: synchronous periodic, plus random sporadic
// jitter) must stay at or below the analytic bound.
func TestAnalysisIsUpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	checked := 0
	for trial := 0; trial < 120 && checked < 30; trial++ {
		g := gen.New(int64(1000+trial), gen.PaperParams(gen.GroupMixed))
		ts := g.TaskSet(0.8 + rng.Float64()*1.2)
		m := 2 + rng.Intn(3)
		for _, method := range []rta.Method{rta.LPMax, rta.LPILP} {
			ana, err := rta.Analyze(context.Background(), ts, rta.Config{M: m, Method: method})
			if err != nil {
				t.Fatal(err)
			}
			if !ana.Schedulable {
				continue
			}
			checked++
			// Horizon: a few hyper-ish periods.
			var maxT int64
			for _, task := range ts.Tasks {
				if task.Period > maxT {
					maxT = task.Period
				}
			}
			for _, jitter := range []func(int, int) int64{
				nil,
				func(task, job int) int64 { return rng.Int63n(5) },
			} {
				res, err := Run(ts, Config{M: m, Duration: 6 * maxT, ReleaseDelay: jitter})
				if err != nil {
					t.Fatal(err)
				}
				if res.Misses > 0 {
					t.Fatalf("trial %d (%v): schedulable set missed a deadline in simulation",
						trial, method)
				}
				for i := range ts.Tasks {
					bound := ana.Tasks[i].ResponseTimeCeil(m)
					if res.MaxResponse[i] > bound {
						t.Fatalf("trial %d (%v): task %d simulated response %d > bound %d",
							trial, method, i, res.MaxResponse[i], bound)
					}
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no schedulable sets sampled; tune the generator")
	}
}

func BenchmarkSimulateFixture(b *testing.B) {
	ts := fixture.TaskSet()
	for i := 0; i < b.N; i++ {
		if _, err := Run(ts, Config{M: fixture.M, Duration: 2000}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestStats(t *testing.T) {
	ts := mustSet(t,
		&model.Task{Name: "a", G: chain(5), Deadline: 10, Period: 10},
		&model.Task{Name: "b", G: chain(3), Deadline: 20, Period: 20},
	)
	res, err := Run(ts, Config{M: 1, Duration: 200})
	if err != nil {
		t.Fatal(err)
	}
	stats := res.Stats(ts.N())
	if len(stats) != 2 {
		t.Fatalf("got %d stats", len(stats))
	}
	for i, s := range stats {
		if s.Jobs == 0 {
			t.Fatalf("task %d has no jobs", i)
		}
		if s.MinResponse > s.P50 || s.P50 > s.P95 || s.P95 > s.P99 || s.P99 > s.MaxResponse {
			t.Fatalf("task %d percentiles out of order: %+v", i, s)
		}
		if s.MeanResponse < float64(s.MinResponse) || s.MeanResponse > float64(s.MaxResponse) {
			t.Fatalf("task %d mean outside range: %+v", i, s)
		}
		if s.MaxResponse != res.MaxResponse[i] {
			t.Fatalf("task %d stats max %d != result max %d", i, s.MaxResponse, res.MaxResponse[i])
		}
	}
	// Task a is strictly periodic with no interference above it: every
	// response is exactly 5.
	if stats[0].MinResponse != 5 || stats[0].MaxResponse != 5 {
		t.Errorf("task a responses should all be 5: %+v", stats[0])
	}
	table := res.StatsTable(ts)
	for _, want := range []string{"task", "p95", "a", "b"} {
		if !strings.Contains(table, want) {
			t.Errorf("stats table missing %q:\n%s", want, table)
		}
	}
}

func TestPercentileNearestRank(t *testing.T) {
	sorted := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want int64
	}{{0.5, 5}, {0.95, 10}, {0.99, 10}, {0.1, 1}}
	for _, tc := range cases {
		if got := percentile(sorted, tc.p); got != tc.want {
			t.Errorf("p%.0f = %d, want %d", tc.p*100, got, tc.want)
		}
	}
	if percentile(nil, 0.5) != 0 {
		t.Error("empty percentile must be 0")
	}
}

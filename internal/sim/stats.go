package sim

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/model"
)

// TaskStats aggregates the observed behaviour of one task over a run.
type TaskStats struct {
	Task         int
	Jobs         int
	Misses       int
	MinResponse  int64
	MaxResponse  int64
	MeanResponse float64
	P50          int64 // median response
	P95          int64
	P99          int64
}

// Stats computes per-task response-time statistics from the recorded
// jobs. Tasks with no completed jobs report zeros.
func (r *Result) Stats(nTasks int) []TaskStats {
	perTask := make([][]int64, nTasks)
	misses := make([]int, nTasks)
	for _, j := range r.Jobs {
		if j.Task >= nTasks {
			continue
		}
		perTask[j.Task] = append(perTask[j.Task], j.Response)
		if j.Missed {
			misses[j.Task]++
		}
	}
	out := make([]TaskStats, nTasks)
	for i, resp := range perTask {
		s := TaskStats{Task: i, Jobs: len(resp), Misses: misses[i]}
		if len(resp) > 0 {
			sort.Slice(resp, func(a, b int) bool { return resp[a] < resp[b] })
			s.MinResponse = resp[0]
			s.MaxResponse = resp[len(resp)-1]
			var sum int64
			for _, v := range resp {
				sum += v
			}
			s.MeanResponse = float64(sum) / float64(len(resp))
			s.P50 = percentile(resp, 0.50)
			s.P95 = percentile(resp, 0.95)
			s.P99 = percentile(resp, 0.99)
		}
		out[i] = s
	}
	return out
}

// percentile returns the nearest-rank percentile of a sorted slice.
func percentile(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p*float64(len(sorted)) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// StatsTable renders the per-task statistics next to the deadlines.
func (r *Result) StatsTable(ts *model.TaskSet) string {
	stats := r.Stats(ts.N())
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %6s %6s %8s %8s %8s %8s %8s %8s\n",
		"task", "jobs", "miss", "min", "mean", "p50", "p95", "p99", "max")
	for i, s := range stats {
		fmt.Fprintf(&b, "%-12s %6d %6d %8d %8.1f %8d %8d %8d %8d\n",
			ts.Tasks[i].Name, s.Jobs, s.Misses, s.MinResponse, s.MeanResponse,
			s.P50, s.P95, s.P99, s.MaxResponse)
	}
	return b.String()
}

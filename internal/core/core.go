// Package core is the top-level analysis API of the reproduction: it
// wraps the response-time analysis of Serrano et al. (DATE 2016) behind
// an Analyzer with validated options, human-readable reports, and
// method-comparison helpers. The root lpdag package re-exports it.
package core

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"repro/internal/blocking"
	"repro/internal/engine/cache"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/rta"
)

// Method selects the schedulability analysis variant.
type Method = rta.Method

// Analysis variants, re-exported for callers of the public API.
const (
	// FPIdeal is the fully-preemptive bound of Melani et al. with zero
	// preemption cost and no blocking (the paper's baseline).
	FPIdeal = rta.FPIdeal
	// LPMax is limited preemption with the pessimistic Equation (5)
	// blocking bound.
	LPMax = rta.LPMax
	// LPILP is limited preemption with the precedence-aware
	// Equations (6)-(8) blocking bound.
	LPILP = rta.LPILP
)

// Methods lists all variants in presentation order.
func Methods() []Method { return []Method{FPIdeal, LPILP, LPMax} }

// Backend selects the LP-ILP solver implementation.
type Backend = blocking.Backend

// Solver backends, re-exported.
const (
	// Combinatorial uses exact clique/assignment solvers (default, fast).
	Combinatorial = blocking.Combinatorial
	// PaperILP uses the paper's 0-1 ILP encodings via branch and bound.
	PaperILP = blocking.PaperILP
)

// Options configure an Analyzer.
type Options struct {
	Cores   int     // number of identical cores m, ≥ 1
	Method  Method  // analysis variant; default FPIdeal
	Backend Backend // LP-ILP solver; default Combinatorial

	// FinalNPRRefinement enables the paper's future-work item (ii):
	// for single-sink tasks, interference is accounted only until the
	// start of the non-preemptable final region, so the refined bound
	// never exceeds the plain one. This used to require dropping to the
	// rta layer (the old AnalyzeRefined returned an rta.Result); folding
	// it into Options keeps every analysis path returning one Report
	// shape. Ignored for FPIdeal.
	FinalNPRRefinement bool

	// Cache, when non-nil, memoizes the content-addressed µ[c] tables
	// (the clique-search / ILP-solve work of Equation (6)) across
	// analyzers. Share one cache so structurally identical graphs —
	// wherever and however they were built — solve each table once;
	// cheaper derived quantities are recomputed, never cached. Verdicts
	// are identical with or without it.
	Cache *cache.Cache

	// Trace, when non-nil, records analysis-phase span timings into its
	// histograms (see obs.NewTrace). Nil means tracing off; results are
	// identical either way.
	Trace *obs.Trace
}

// Analyzer runs the response-time analysis with fixed options. It is
// safe for concurrent use: the underlying rta.Analyzer scratch states
// (suffix aggregators, µ memos, result buffers) are pooled, so in
// steady state every worker goroutine reuses warm buffers and the
// analysis hot path allocates nothing beyond the returned Report.
type Analyzer struct {
	opts Options
	pool sync.Pool // of *rta.Analyzer
}

// ValidateOptions checks opts, naming the offending field and value the
// same way on every path (see TestOptionsValidationErrors).
func ValidateOptions(opts Options) error {
	if opts.Cores < 1 {
		return fmt.Errorf("core: invalid Options.Cores: %d (must be ≥ 1)", opts.Cores)
	}
	switch opts.Method {
	case FPIdeal, LPMax, LPILP:
	default:
		return fmt.Errorf("core: invalid Options.Method: %v", opts.Method)
	}
	switch opts.Backend {
	case Combinatorial, PaperILP:
	default:
		return fmt.Errorf("core: invalid Options.Backend: %v", opts.Backend)
	}
	return nil
}

// New validates the options and returns an Analyzer.
func New(opts Options) (*Analyzer, error) {
	if err := ValidateOptions(opts); err != nil {
		return nil, err
	}
	a := &Analyzer{opts: opts}
	a.pool.New = func() any {
		ra, err := rta.NewAnalyzer(a.rtaConfig())
		if err != nil {
			panic(err) // options were validated by New; unreachable
		}
		return ra
	}
	return a, nil
}

// rtaConfig maps the options onto the rta layer.
func (a *Analyzer) rtaConfig() rta.Config {
	return RTAConfig(a.opts)
}

// RTAConfig maps validated Options onto the rta layer's Config — the
// one mapping every path (Analyzer pools, sessions) shares.
func RTAConfig(opts Options) rta.Config {
	return rta.Config{
		M:                  opts.Cores,
		Method:             opts.Method,
		Backend:            opts.Backend,
		FinalNPRRefinement: opts.FinalNPRRefinement,
		Cache:              opts.Cache,
		Trace:              opts.Trace,
	}
}

// MustNew is New that panics on error, for tests and fixtures.
func MustNew(opts Options) *Analyzer {
	a, err := New(opts)
	if err != nil {
		panic(err)
	}
	return a
}

// Options returns the analyzer's configuration.
func (a *Analyzer) Options() Options { return a.opts }

// TaskReport is the per-task outcome.
type TaskReport struct {
	Name        string
	Schedulable bool
	Analyzed    bool

	// ResponseTime is the response-time upper bound in time units (the
	// exact bound is the rational ResponseTimeM / Cores; this field is
	// its ceiling). Deadline is copied from the task for convenience.
	ResponseTime  int64
	ResponseTimeM int64 // exact bound scaled by Cores
	Deadline      int64

	DeltaM      int64
	DeltaM1     int64
	Preemptions int64
	Iterations  int
}

// Report is the outcome of analyzing one task set.
type Report struct {
	Schedulable bool
	Method      Method
	Cores       int
	Utilization float64
	Tasks       []TaskReport
}

// Analyze runs the analysis on the task set. The context cancels long
// solves (it is observed between tasks and between fixed-point chunks).
func (a *Analyzer) Analyze(ctx context.Context, ts *model.TaskSet) (*Report, error) {
	ra := a.pool.Get().(*rta.Analyzer)
	defer a.pool.Put(ra)
	res, err := ra.AnalyzeInPlace(ctx, ts)
	if err != nil {
		return nil, err
	}
	return ReportOf(res, ts), nil
}

// ReportOf converts an rta-layer Result into the public Report shape —
// the single conversion every analysis path (one-shot, pooled, session)
// goes through, so there is exactly one Report schema on the wire.
func ReportOf(res *rta.Result, ts *model.TaskSet) *Report {
	rep := &Report{
		Schedulable: res.Schedulable,
		Method:      res.Method,
		Cores:       res.M,
		Utilization: ts.Utilization(),
		Tasks:       make([]TaskReport, len(res.Tasks)),
	}
	for i, tr := range res.Tasks {
		rep.Tasks[i] = TaskReport{
			Name:          tr.Name,
			Schedulable:   tr.Schedulable,
			Analyzed:      tr.Analyzed,
			ResponseTime:  tr.ResponseTimeCeil(res.M),
			ResponseTimeM: tr.ResponseTimeM,
			Deadline:      ts.Tasks[i].Deadline,
			DeltaM:        tr.DeltaM,
			DeltaM1:       tr.DeltaM1,
			Preemptions:   tr.Preemptions,
			Iterations:    tr.Iterations,
		}
	}
	return rep
}

// Schedulable is a convenience wrapper returning only the verdict. It
// skips the Report entirely, so a pooled warm analyzer answers it
// without heap allocation.
func (a *Analyzer) Schedulable(ctx context.Context, ts *model.TaskSet) (bool, error) {
	ra := a.pool.Get().(*rta.Analyzer)
	defer a.pool.Put(ra)
	res, err := ra.AnalyzeInPlace(ctx, ts)
	if err != nil {
		return false, err
	}
	return res.Schedulable, nil
}

// ScheduleBatch returns the schedulability verdict of every set, holding
// one pooled rta.Analyzer — scratch buffers, suffix aggregator, µ memo —
// across the whole batch. This is the batch entry point the engine pool
// and the experiment campaigns drive: a sweep worker analyzing
// SetsPerPoint sets back to back pays the analyzer setup once.
func (a *Analyzer) ScheduleBatch(ctx context.Context, sets []*model.TaskSet) ([]bool, error) {
	ra := a.pool.Get().(*rta.Analyzer)
	defer a.pool.Put(ra)
	out := make([]bool, len(sets))
	for i, ts := range sets {
		res, err := ra.AnalyzeInPlace(ctx, ts)
		if err != nil {
			return nil, fmt.Errorf("core: set %d: %w", i, err)
		}
		out[i] = res.Schedulable
	}
	return out, nil
}

// String renders the report as a fixed-width table.
func (r *Report) String() string {
	var b strings.Builder
	verdict := "SCHEDULABLE"
	if !r.Schedulable {
		verdict = "NOT SCHEDULABLE"
	}
	fmt.Fprintf(&b, "%s on m=%d cores (U=%.3f): %s\n", r.Method, r.Cores, r.Utilization, verdict)
	fmt.Fprintf(&b, "%-12s %10s %10s %8s %8s %6s %s\n",
		"task", "R(ub)", "D", "Dm", "Dm-1", "p", "verdict")
	for _, t := range r.Tasks {
		status := "ok"
		switch {
		case !t.Analyzed:
			status = "skipped"
		case !t.Schedulable:
			status = "MISS"
		}
		rStr := "-"
		if t.Analyzed {
			rStr = fmt.Sprintf("%d", t.ResponseTime)
		}
		fmt.Fprintf(&b, "%-12s %10s %10d %8d %8d %6d %s\n",
			t.Name, rStr, t.Deadline, t.DeltaM, t.DeltaM1, t.Preemptions, status)
	}
	return b.String()
}

// CompareMethods analyzes the set with every method at the analyzer's
// core count (the analyzer's own Method is ignored) and returns the
// reports keyed by method.
func (a *Analyzer) CompareMethods(ctx context.Context, ts *model.TaskSet) (map[Method]*Report, error) {
	out := make(map[Method]*Report, 3)
	for _, m := range Methods() {
		opts := a.opts
		opts.Method = m
		sub, err := New(opts)
		if err != nil {
			return nil, err
		}
		rep, err := sub.Analyze(ctx, ts)
		if err != nil {
			return nil, err
		}
		out[m] = rep
	}
	return out, nil
}

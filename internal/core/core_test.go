package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/dag"
	"repro/internal/fixture"
	"repro/internal/model"
)

func chain(wcets ...int64) *dag.Graph {
	var b dag.Builder
	prev := -1
	for _, c := range wcets {
		v := b.AddNode(c)
		if prev >= 0 {
			b.AddEdge(prev, v)
		}
		prev = v
	}
	return b.MustBuild()
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{Cores: 0}); err == nil {
		t.Error("Cores=0 accepted")
	}
	if _, err := New(Options{Cores: 2, Method: Method(99)}); err == nil {
		t.Error("bad method accepted")
	}
	if _, err := New(Options{Cores: 2, Backend: Backend(99)}); err == nil {
		t.Error("bad backend accepted")
	}
	a, err := New(Options{Cores: 4, Method: LPILP})
	if err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
	if a.Options().Cores != 4 {
		t.Error("Options() lost configuration")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on bad options")
		}
	}()
	MustNew(Options{Cores: -1})
}

func TestAnalyzeFixture(t *testing.T) {
	ts := fixture.TaskSet()
	a := MustNew(Options{Cores: fixture.M, Method: LPILP})
	rep, err := a.Analyze(context.Background(), ts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tasks) != ts.N() {
		t.Fatalf("report has %d tasks, want %d", len(rep.Tasks), ts.N())
	}
	if rep.Tasks[0].DeltaM != fixture.DeltaILP4 {
		t.Errorf("τk Δ⁴ = %d, want %d", rep.Tasks[0].DeltaM, fixture.DeltaILP4)
	}
	if rep.Cores != fixture.M || rep.Method != LPILP {
		t.Error("report metadata wrong")
	}
	if rep.Utilization <= 0 {
		t.Error("utilization missing")
	}
	ok, err := a.Schedulable(context.Background(), ts)
	if err != nil {
		t.Fatal(err)
	}
	if ok != rep.Schedulable {
		t.Error("Schedulable disagrees with Analyze")
	}
}

func TestCompareMethodsOrdering(t *testing.T) {
	ts := fixture.TaskSet()
	a := MustNew(Options{Cores: fixture.M})
	reps, err := a.CompareMethods(context.Background(), ts)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 3 {
		t.Fatalf("got %d reports", len(reps))
	}
	for i := range ts.Tasks {
		fp := reps[FPIdeal].Tasks[i]
		li := reps[LPILP].Tasks[i]
		lm := reps[LPMax].Tasks[i]
		if fp.Analyzed && li.Analyzed && fp.ResponseTimeM > li.ResponseTimeM {
			t.Errorf("task %d: FP-ideal Rm %d > LP-ILP Rm %d", i, fp.ResponseTimeM, li.ResponseTimeM)
		}
		if li.Analyzed && lm.Analyzed && li.ResponseTimeM > lm.ResponseTimeM {
			t.Errorf("task %d: LP-ILP Rm %d > LP-max Rm %d", i, li.ResponseTimeM, lm.ResponseTimeM)
		}
	}
}

func TestReportString(t *testing.T) {
	hi := &model.Task{Name: "hi", G: chain(2), Deadline: 40, Period: 40}
	lo := &model.Task{Name: "lo", G: chain(3, 4), Deadline: 50, Period: 50}
	ts, _ := model.NewTaskSet(hi, lo)
	rep, err := MustNew(Options{Cores: 2, Method: LPILP}).Analyze(context.Background(), ts)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	for _, want := range []string{"LP-ILP", "m=2", "hi", "lo", "SCHEDULABLE"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}

	// Unschedulable set renders the failure and skips the rest.
	bad := &model.Task{Name: "bad", G: chain(90), Deadline: 10, Period: 10}
	rest := &model.Task{Name: "rest", G: chain(1), Deadline: 99, Period: 99}
	ts2, _ := model.NewTaskSet(bad, rest)
	rep2, err := MustNew(Options{Cores: 2, Method: FPIdeal}).Analyze(context.Background(), ts2)
	if err != nil {
		t.Fatal(err)
	}
	s2 := rep2.String()
	for _, want := range []string{"NOT SCHEDULABLE", "MISS", "skipped"} {
		if !strings.Contains(s2, want) {
			t.Errorf("report missing %q:\n%s", want, s2)
		}
	}
}

func TestResponseTimeCeilingConsistent(t *testing.T) {
	ts := fixture.TaskSet()
	rep, err := MustNew(Options{Cores: fixture.M, Method: LPMax}).Analyze(context.Background(), ts)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range rep.Tasks {
		if !tr.Analyzed {
			continue
		}
		m := int64(fixture.M)
		if tr.ResponseTime != (tr.ResponseTimeM+m-1)/m {
			t.Errorf("task %s: ceiling %d inconsistent with Rm %d",
				tr.Name, tr.ResponseTime, tr.ResponseTimeM)
		}
	}
}

func TestCriticalScaling(t *testing.T) {
	// A set with lots of slack: factor must exceed 1000 permille.
	hi := &model.Task{Name: "hi", G: chain(2), Deadline: 100, Period: 100}
	lo := &model.Task{Name: "lo", G: chain(3, 4), Deadline: 200, Period: 200}
	ts, _ := model.NewTaskSet(hi, lo)
	a := MustNew(Options{Cores: 2, Method: LPILP})
	alpha, err := a.CriticalScaling(context.Background(), ts, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if alpha <= 1000 {
		t.Fatalf("slack set scaling = %d permille, want > 1000", alpha)
	}
	// The verdict must flip exactly at alpha: schedulable at alpha,
	// unschedulable at alpha+1.
	if ok, _ := a.scaledSchedulable(context.Background(), ts, alpha); !ok {
		t.Fatalf("claimed factor %d not schedulable", alpha)
	}
	if ok, _ := a.scaledSchedulable(context.Background(), ts, alpha+1); ok {
		t.Fatalf("factor %d+1 still schedulable; bisection stopped early", alpha)
	}
}

func TestCriticalScalingUnschedulableSet(t *testing.T) {
	bad := &model.Task{Name: "bad", G: chain(90), Deadline: 10, Period: 10}
	ts, _ := model.NewTaskSet(bad)
	a := MustNew(Options{Cores: 2, Method: FPIdeal})
	alpha, err := a.CriticalScaling(context.Background(), ts, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if alpha >= 1000 {
		t.Fatalf("doomed set scaling = %d, want < 1000", alpha)
	}
}

func TestCriticalScalingSaturatesAtMax(t *testing.T) {
	tiny := &model.Task{Name: "t", G: chain(1), Deadline: 1000000, Period: 1000000}
	ts, _ := model.NewTaskSet(tiny)
	a := MustNew(Options{Cores: 4, Method: LPILP})
	alpha, err := a.CriticalScaling(context.Background(), ts, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if alpha != 5000 {
		t.Fatalf("got %d, want saturation at 5000", alpha)
	}
}

func TestCriticalScalingErrors(t *testing.T) {
	ts, _ := model.NewTaskSet(&model.Task{Name: "x", G: chain(1), Deadline: 5, Period: 5})
	a := MustNew(Options{Cores: 1, Method: FPIdeal})
	if _, err := a.CriticalScaling(context.Background(), ts, 0); err == nil {
		t.Error("maxPermille=0 accepted")
	}
	if _, err := a.CriticalScaling(context.Background(), &model.TaskSet{}, 1000); err == nil {
		t.Error("invalid set accepted")
	}
}

func TestCriticalScalingMonotoneAcrossMethods(t *testing.T) {
	// FP-ideal dominates LP-ILP dominates LP-max, so the critical factors
	// must order the same way.
	hi := &model.Task{Name: "hi", G: chain(2), Deadline: 60, Period: 60}
	lo := &model.Task{Name: "lo", G: chain(9, 8), Deadline: 120, Period: 120}
	ts, _ := model.NewTaskSet(hi, lo)
	var factors []int
	for _, meth := range []Method{LPMax, LPILP, FPIdeal} {
		a := MustNew(Options{Cores: 2, Method: meth})
		f, err := a.CriticalScaling(context.Background(), ts, 50_000)
		if err != nil {
			t.Fatal(err)
		}
		factors = append(factors, f)
	}
	if !(factors[0] <= factors[1] && factors[1] <= factors[2]) {
		t.Fatalf("factors not ordered LP-max ≤ LP-ILP ≤ FP-ideal: %v", factors)
	}
}

// TestOptionsValidationErrors pins the error-message contract of
// Options validation: every path names the offending field (by its
// Options spelling, not an internal alias like "m") and the offending
// value.
func TestOptionsValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		want string
	}{
		{"zero cores", Options{Cores: 0, Method: LPILP}, "invalid Options.Cores: 0"},
		{"negative cores", Options{Cores: -3, Method: LPILP}, "invalid Options.Cores: -3"},
		{"bad method", Options{Cores: 4, Method: Method(99)}, "invalid Options.Method: Method(99)"},
		{"bad backend", Options{Cores: 4, Method: LPILP, Backend: Backend(7)}, "invalid Options.Backend: Backend(7)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.opts)
			if err == nil {
				t.Fatalf("New(%+v) succeeded, want error containing %q", tc.opts, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("New(%+v) error = %q, want it to contain %q", tc.opts, err, tc.want)
			}
		})
	}
}

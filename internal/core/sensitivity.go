package core

import (
	"context"
	"fmt"

	"repro/internal/dag"
	"repro/internal/model"
)

// CriticalScaling performs sensitivity analysis: it returns the largest
// factor α (in permille, e.g. 1250 = 1.25×) such that multiplying every
// node WCET of every task by α keeps the set schedulable under the
// analyzer's method, searching [0, maxPermille] by bisection. A result
// below 1000 means the set is not schedulable as given and must be
// slowed down; above 1000 it quantifies the WCET headroom.
//
// Scaled WCETs are ⌈C·α/1000⌉ (rounding up keeps the scaled system an
// over-approximation, so schedulability at α is a sound claim for every
// real factor ≤ α/1000). Schedulability is monotone in the WCETs, hence
// in α, which makes bisection exact at permille resolution.
func (a *Analyzer) CriticalScaling(ctx context.Context, ts *model.TaskSet, maxPermille int) (int, error) {
	if err := ts.Validate(); err != nil {
		return 0, err
	}
	if maxPermille < 1 {
		return 0, fmt.Errorf("core: invalid maxPermille: %d (must be ≥ 1)", maxPermille)
	}
	ok, err := a.scaledSchedulable(ctx, ts, 1)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, nil // not schedulable even at (essentially) zero WCET
	}
	lo, hi := 1, maxPermille // invariant: lo schedulable, hi+1 unknown
	if ok, err = a.scaledSchedulable(ctx, ts, maxPermille); err != nil {
		return 0, err
	} else if ok {
		return maxPermille, nil
	}
	// Invariant: schedulable at lo, unschedulable at hi.
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		ok, err := a.scaledSchedulable(ctx, ts, mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// ScaleTask returns a copy of the task with every node WCET multiplied
// by permille/1000, rounded up to keep the scaled system an
// over-approximation (and floored at 1: a zero-WCET node would change
// the graph's structure). Shared by the whole-set bisection here and the
// per-task sensitivity queries of the session API.
func ScaleTask(t *model.Task, permille int) (*model.Task, error) {
	var b dag.Builder
	for v := 0; v < t.G.N(); v++ {
		c := (t.G.WCET(v)*int64(permille) + 999) / 1000
		if c < 1 {
			c = 1
		}
		b.AddNode(c)
	}
	for _, e := range t.G.Edges() {
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &model.Task{Name: t.Name, G: g, Deadline: t.Deadline, Period: t.Period}, nil
}

// scaledSchedulable analyzes a copy of ts with WCETs scaled by
// permille/1000, rounded up.
func (a *Analyzer) scaledSchedulable(ctx context.Context, ts *model.TaskSet, permille int) (bool, error) {
	scaled := &model.TaskSet{Tasks: make([]*model.Task, ts.N())}
	for i, t := range ts.Tasks {
		st, err := ScaleTask(t, permille)
		if err != nil {
			return false, err
		}
		scaled.Tasks[i] = st
	}
	return a.Schedulable(ctx, scaled)
}

// Package gen generates random sporadic DAG task sets following the
// simulation environment of Melani et al. (ECRTS 2015), which is the
// generator the evaluation of Serrano et al. (DATE 2016) uses
// (Section VI-A).
//
// DAGs are grown by recursive fork-join expansion: every non-terminal
// node forks into up to NPar parallel sub-graphs, each of which
// terminates with probability PTerm or keeps expanding with probability
// PPar, down to a nesting depth that caps the longest path. Node WCETs
// are uniform in [CMin, CMax], the node count is capped at MaxNodes, the
// longest path at MaxPathLen nodes.
//
// Two task populations mirror the paper's two experiment groups:
//
//   - GroupMixed: tasks alternate between highly parallel (data-flow) and
//     very limited parallelism or fully sequential (control-flow) —
//     "very common in the embedded domain";
//   - GroupParallel: every task highly parallel with similar widths —
//     "very common in the high-performance domain".
//
// Periods are drawn uniformly from [L, vol/β] (so each task's utilization
// lies in [β, vol/L]), deadlines are implicit (D = T), and task sets are
// assembled by adding tasks until a target utilization is reached, the
// last period being stretched so the total matches the target.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/dag"
	"repro/internal/model"
)

// DAGParams control the fork-join expansion of a single task graph.
type DAGParams struct {
	PTerm      float64 // probability a sub-graph is a terminal node (paper: 0.4)
	PPar       float64 // probability it keeps expanding (paper: 0.6)
	NPar       int     // maximum parallel branches of a fork (paper: 6)
	MaxNodes   int     // maximum NPRs per DAG (paper: 30)
	MaxPathLen int     // maximum nodes on any path (paper: 7)
	CMin, CMax int64   // node WCET range (paper: [1, 100])
}

// PaperDAGParams returns the Section VI-A parameters.
func PaperDAGParams() DAGParams {
	return DAGParams{
		PTerm:      0.4,
		PPar:       0.6,
		NPar:       6,
		MaxNodes:   30,
		MaxPathLen: 7,
		CMin:       1,
		CMax:       100,
	}
}

// Group selects the task population of Section VI-A.
type Group int

// Task populations.
const (
	// GroupMixed mixes highly parallel and (almost) sequential tasks
	// (the paper's first group).
	GroupMixed Group = iota
	// GroupParallel uses only highly parallel tasks with similar widths
	// (the paper's second group).
	GroupParallel
)

func (g Group) String() string {
	switch g {
	case GroupMixed:
		return "mixed"
	case GroupParallel:
		return "parallel"
	}
	return fmt.Sprintf("Group(%d)", int(g))
}

// Params configure a Generator.
type Params struct {
	DAG   DAGParams
	Group Group
	// Beta is the minimum task utilization β: periods are drawn from
	// [L, vol/Beta] (paper: 0.5).
	Beta float64
	// SeqProb is, for GroupMixed, the probability that a task is
	// (almost) sequential. The paper does not print the mixing ratio;
	// one half matches its description of the group. Default 0.5.
	SeqProb float64
}

// PaperParams returns the full Section VI-A configuration for a group.
func PaperParams(group Group) Params {
	return Params{DAG: PaperDAGParams(), Group: group, Beta: 0.5, SeqProb: 0.5}
}

// Generator produces random tasks and task sets, deterministically from
// its seed.
type Generator struct {
	rng    *rand.Rand
	params Params
	nTasks int
}

// New returns a Generator with the given seed and parameters.
func New(seed int64, params Params) *Generator {
	if params.DAG.NPar < 2 {
		params.DAG.NPar = 2
	}
	if params.DAG.MaxNodes < 1 {
		params.DAG.MaxNodes = 1
	}
	if params.DAG.MaxPathLen < 1 {
		params.DAG.MaxPathLen = 1
	}
	if params.DAG.CMin < 1 {
		params.DAG.CMin = 1
	}
	if params.DAG.CMax < params.DAG.CMin {
		params.DAG.CMax = params.DAG.CMin
	}
	if params.Beta <= 0 || params.Beta > 1 {
		params.Beta = 0.5
	}
	if params.SeqProb <= 0 || params.SeqProb >= 1 {
		params.SeqProb = 0.5
	}
	return &Generator{rng: rand.New(rand.NewSource(seed)), params: params}
}

// Graph generates one DAG with the generator's parameters, choosing the
// population-appropriate shape.
func (g *Generator) Graph() *dag.Graph {
	if g.params.Group == GroupMixed && g.rng.Float64() < g.params.SeqProb {
		return g.sequentialGraph()
	}
	return g.parallelGraph()
}

// sequentialGraph emits a chain — the control-flow tasks of the
// embedded-domain population. Chains use at least three NPRs so that the
// sequential tasks are real programs rather than dust (a one-node task
// with WCET ~U[1,100] would have a deadline smaller than a single
// blocking NPR of its neighbours, drowning the low-utilization end of
// every curve in structural failures the paper does not show).
func (g *Generator) sequentialGraph() *dag.Graph {
	var b dag.Builder
	lo := 3
	if lo > g.params.DAG.MaxPathLen {
		lo = g.params.DAG.MaxPathLen
	}
	n := lo + g.rng.Intn(g.params.DAG.MaxPathLen-lo+1)
	prev := -1
	for i := 0; i < n; i++ {
		v := b.AddNode(g.wcet())
		if prev >= 0 {
			b.AddEdge(prev, v)
		}
		prev = v
	}
	return b.MustBuild()
}

// parallelGraph grows a nested fork-join with the paper's expansion
// probabilities. Depth is measured in fork nestings; each nesting adds a
// fork and a join node to every path through it, so the path-length cap
// bounds the admissible depth.
func (g *Generator) parallelGraph() *dag.Graph {
	var b dag.Builder
	budget := g.params.DAG.MaxNodes
	maxDepth := (g.params.DAG.MaxPathLen - 1) / 2 // nodes on a path of d nestings: 2d+1

	// expand builds a sub-DAG with a unique source and sink and returns
	// them. remaining path budget is tracked via depth.
	var expand func(depth int) (src, sink int)
	expand = func(depth int) (int, int) {
		terminal := depth >= maxDepth || budget < 1+2*2 || // fork+join+2 branches minimum
			g.rng.Float64() < g.params.DAG.PTerm/(g.params.DAG.PTerm+g.params.DAG.PPar)
		if terminal {
			v := b.AddNode(g.wcet())
			budget--
			return v, v
		}
		fork := b.AddNode(g.wcet())
		join := b.AddNode(g.wcet())
		budget -= 2
		nBranch := 2 + g.rng.Intn(g.params.DAG.NPar-1)
		for i := 0; i < nBranch; i++ {
			if budget < 1 {
				break
			}
			s, t := expand(depth + 1)
			b.AddEdge(fork, s)
			b.AddEdge(t, join)
		}
		return fork, join
	}
	// The root expansion must fork at least once for the task to be
	// parallel, so bypass the terminal coin at depth 0 when possible.
	fork := b.AddNode(g.wcet())
	join := b.AddNode(g.wcet())
	budget -= 2
	nBranch := 2 + g.rng.Intn(g.params.DAG.NPar-1)
	for i := 0; i < nBranch; i++ {
		if budget < 1 {
			break
		}
		s, t := expand(1)
		b.AddEdge(fork, s)
		b.AddEdge(t, join)
	}
	return b.MustBuild()
}

func (g *Generator) wcet() int64 {
	return g.params.DAG.CMin + g.rng.Int63n(g.params.DAG.CMax-g.params.DAG.CMin+1)
}

// Task wraps a fresh graph into a task with an implicit deadline. The
// task utilization is drawn uniformly from [β, 1] and the period set to
// vol/U (never below L): β is the paper's minimum task utilization, and
// capping single-task utilization at 1 reproduces the paper's
// near-complete schedulability at low total utilizations (tasks with
// T ≈ L would otherwise be born unschedulable under any blocking).
func (g *Generator) Task() *model.Task {
	graph := g.Graph()
	g.nTasks++
	l := graph.LongestPath()
	vol := graph.Volume()
	u := g.params.Beta + g.rng.Float64()*(1-g.params.Beta)
	period := int64(float64(vol)/u + 0.5)
	if period < l {
		period = l
	}
	return &model.Task{
		Name:     fmt.Sprintf("tau%d", g.nTasks),
		G:        graph,
		Deadline: period,
		Period:   period,
	}
}

// TaskSet assembles tasks until the total utilization reaches targetU,
// then scales every period by the common factor ΣU/targetU so the total
// matches the target as closely as integer periods allow (the standard
// assembly of utilization-sweep evaluations: the factor is ≥ 1, so
// deadlines only gain slack), and finally sorts deadline-monotonically
// (rate-monotonic for these implicit-deadline sets). The set always
// contains at least one task.
func (g *Generator) TaskSet(targetU float64) *model.TaskSet {
	if targetU <= 0 {
		targetU = 0.1
	}
	var tasks []*model.Task
	sum := 0.0
	for sum < targetU {
		t := g.Task()
		tasks = append(tasks, t)
		sum += t.Utilization()
	}
	factor := sum / targetU
	if factor > 1 {
		for _, t := range tasks {
			period := int64(float64(t.Period)*factor + 0.5)
			if period < t.G.LongestPath() {
				period = t.G.LongestPath()
			}
			t.Period = period
			t.Deadline = period
		}
	}
	ts := &model.TaskSet{Tasks: tasks}
	ts.SortDeadlineMonotonic()
	return ts
}

// TaskSetN assembles exactly n tasks and scales every period by the
// common factor ΣU/targetU so the total utilization matches the target
// (periods are clamped at L when the factor compresses them below the
// longest path, so very aggressive targets saturate instead of producing
// invalid tasks). Used by the task-count sweep — the alternative reading
// of Figure 2(c), whose printed x-axis is "Number of tasks".
func (g *Generator) TaskSetN(n int, targetU float64) *model.TaskSet {
	if n < 1 {
		n = 1
	}
	if targetU <= 0 {
		targetU = 0.1
	}
	tasks := make([]*model.Task, n)
	sum := 0.0
	for i := range tasks {
		tasks[i] = g.Task()
		sum += tasks[i].Utilization()
	}
	factor := sum / targetU
	for _, t := range tasks {
		period := int64(float64(t.Period)*factor + 0.5)
		if period < t.G.LongestPath() {
			period = t.G.LongestPath()
		}
		t.Period = period
		t.Deadline = period
	}
	ts := &model.TaskSet{Tasks: tasks}
	ts.SortDeadlineMonotonic()
	return ts
}

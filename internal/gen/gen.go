// Package gen generates random sporadic DAG task sets following the
// simulation environment of Melani et al. (ECRTS 2015), which is the
// generator the evaluation of Serrano et al. (DATE 2016) uses
// (Section VI-A).
//
// DAGs are grown by recursive fork-join expansion: every non-terminal
// node forks into up to NPar parallel sub-graphs, each of which
// terminates with probability PTerm or keeps expanding with probability
// PPar, down to a nesting depth that caps the longest path. Node WCETs
// are uniform in [CMin, CMax], the node count is capped at MaxNodes, the
// longest path at MaxPathLen nodes.
//
// Two task populations mirror the paper's two experiment groups:
//
//   - GroupMixed: tasks alternate between highly parallel (data-flow) and
//     very limited parallelism or fully sequential (control-flow) —
//     "very common in the embedded domain";
//   - GroupParallel: every task highly parallel with similar widths —
//     "very common in the high-performance domain".
//
// Periods are drawn uniformly from [L, vol/β] (so each task's utilization
// lies in [β, vol/L]), deadlines are implicit (D = T), and task sets are
// assembled by adding tasks until a target utilization is reached, the
// last period being stretched so the total matches the target.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/dag"
	"repro/internal/model"
)

// DAGParams control the fork-join expansion of a single task graph.
type DAGParams struct {
	PTerm      float64 // probability a sub-graph is a terminal node (paper: 0.4)
	PPar       float64 // probability it keeps expanding (paper: 0.6)
	NPar       int     // maximum parallel branches of a fork (paper: 6)
	MaxNodes   int     // maximum NPRs per DAG (paper: 30)
	MaxPathLen int     // maximum nodes on any path (paper: 7)
	CMin, CMax int64   // node WCET range (paper: [1, 100])
}

// PaperDAGParams returns the Section VI-A parameters.
func PaperDAGParams() DAGParams {
	return DAGParams{
		PTerm:      0.4,
		PPar:       0.6,
		NPar:       6,
		MaxNodes:   30,
		MaxPathLen: 7,
		CMin:       1,
		CMax:       100,
	}
}

// Group selects the task population of Section VI-A.
type Group int

// Task populations.
const (
	// GroupMixed mixes highly parallel and (almost) sequential tasks
	// (the paper's first group).
	GroupMixed Group = iota
	// GroupParallel uses only highly parallel tasks with similar widths
	// (the paper's second group).
	GroupParallel
)

func (g Group) String() string {
	switch g {
	case GroupMixed:
		return "mixed"
	case GroupParallel:
		return "parallel"
	}
	return fmt.Sprintf("Group(%d)", int(g))
}

// Shape selects a structural DAG family beyond the paper's populations,
// for the extended scenario sweeps of the experiment orchestrator.
type Shape int

// DAG shape families.
const (
	// ShapeAuto picks the population-appropriate shape (the paper's
	// behaviour): sequential-or-parallel for GroupMixed, nested
	// fork-join for GroupParallel.
	ShapeAuto Shape = iota
	// ShapeWide emits a single flat fork-join whose width is at least
	// NPar: maximal parallelism, minimal depth.
	ShapeWide
	// ShapeDeep emits a long chain with occasional two-wide diamonds:
	// maximal depth, very limited parallelism.
	ShapeDeep
	// ShapeOpenMP emits the blocked-LU wavefront of examples/openmp
	// (OpenMP4 depend-clause style): diagonal steps, each fanning out
	// to panel updates whose width shrinks as the wavefront advances —
	// parallelism that starts wide and drains toward a sequential tail.
	ShapeOpenMP
)

func (s Shape) String() string {
	switch s {
	case ShapeAuto:
		return "auto"
	case ShapeWide:
		return "wide"
	case ShapeDeep:
		return "deep"
	case ShapeOpenMP:
		return "openmp"
	}
	return fmt.Sprintf("Shape(%d)", int(s))
}

// Params configure a Generator.
type Params struct {
	DAG   DAGParams
	Group Group
	// Shape overrides the per-population DAG structure (ShapeAuto keeps
	// the paper's behaviour).
	Shape Shape
	// Beta is the minimum task utilization β: periods are drawn from
	// [L, vol/Beta] (paper: 0.5).
	Beta float64
	// UMax caps the per-task utilization draw: u ~ U[Beta, UMax].
	// 0 (or anything outside (Beta, 1]) means 1, the paper's setting.
	// Together with Beta this expresses heavy (Beta near 1) and light
	// (UMax well below 1) per-task utilization mixes.
	UMax float64
	// SeqProb is, for GroupMixed, the probability that a task is
	// (almost) sequential. The paper does not print the mixing ratio;
	// one half matches its description of the group. Default 0.5.
	SeqProb float64
}

// PaperParams returns the full Section VI-A configuration for a group.
func PaperParams(group Group) Params {
	return Params{DAG: PaperDAGParams(), Group: group, Beta: 0.5, SeqProb: 0.5}
}

// Generator produces random tasks and task sets, deterministically from
// its seed.
type Generator struct {
	rng    *rand.Rand
	params Params
	nTasks int
}

// New returns a Generator with the given seed and parameters.
func New(seed int64, params Params) *Generator {
	if params.DAG.NPar < 2 {
		params.DAG.NPar = 2
	}
	if params.DAG.MaxNodes < 1 {
		params.DAG.MaxNodes = 1
	}
	if params.DAG.MaxPathLen < 1 {
		params.DAG.MaxPathLen = 1
	}
	if params.DAG.CMin < 1 {
		params.DAG.CMin = 1
	}
	if params.DAG.CMax < params.DAG.CMin {
		params.DAG.CMax = params.DAG.CMin
	}
	if params.Shape == ShapeWide && params.DAG.MaxNodes < 4 {
		// The smallest wide graph is fork + join + 2 branches.
		params.DAG.MaxNodes = 4
	}
	if params.Shape == ShapeOpenMP {
		// The smallest wavefront is two diagonals and one panel (a
		// 3-node chain).
		if params.DAG.MaxNodes < 3 {
			params.DAG.MaxNodes = 3
		}
		if params.DAG.MaxPathLen < 3 {
			params.DAG.MaxPathLen = 3
		}
	}
	if params.Beta <= 0 || params.Beta > 1 {
		params.Beta = 0.5
	}
	if params.UMax <= params.Beta || params.UMax > 1 {
		params.UMax = 1
	}
	if params.SeqProb <= 0 || params.SeqProb >= 1 {
		params.SeqProb = 0.5
	}
	return &Generator{rng: rand.New(rand.NewSource(seed)), params: params}
}

// Graph generates one DAG with the generator's parameters, choosing the
// population-appropriate shape (or the explicitly requested family).
func (g *Generator) Graph() *dag.Graph {
	switch g.params.Shape {
	case ShapeWide:
		return g.wideGraph()
	case ShapeDeep:
		return g.deepGraph()
	case ShapeOpenMP:
		return g.openmpGraph()
	}
	if g.params.Group == GroupMixed && g.rng.Float64() < g.params.SeqProb {
		return g.sequentialGraph()
	}
	return g.parallelGraph()
}

// sequentialGraph emits a chain — the control-flow tasks of the
// embedded-domain population. Chains use at least three NPRs so that the
// sequential tasks are real programs rather than dust (a one-node task
// with WCET ~U[1,100] would have a deadline smaller than a single
// blocking NPR of its neighbours, drowning the low-utilization end of
// every curve in structural failures the paper does not show).
func (g *Generator) sequentialGraph() *dag.Graph {
	var b dag.Builder
	lo := 3
	if lo > g.params.DAG.MaxPathLen {
		lo = g.params.DAG.MaxPathLen
	}
	n := lo + g.rng.Intn(g.params.DAG.MaxPathLen-lo+1)
	prev := -1
	for i := 0; i < n; i++ {
		v := b.AddNode(g.wcet())
		if prev >= 0 {
			b.AddEdge(prev, v)
		}
		prev = v
	}
	return b.MustBuild()
}

// parallelGraph grows a nested fork-join with the paper's expansion
// probabilities. Depth is measured in fork nestings; each nesting adds a
// fork and a join node to every path through it, so the path-length cap
// bounds the admissible depth.
func (g *Generator) parallelGraph() *dag.Graph {
	var b dag.Builder
	budget := g.params.DAG.MaxNodes
	maxDepth := (g.params.DAG.MaxPathLen - 1) / 2 // nodes on a path of d nestings: 2d+1

	// expand builds a sub-DAG with a unique source and sink and returns
	// them. remaining path budget is tracked via depth.
	var expand func(depth int) (src, sink int)
	expand = func(depth int) (int, int) {
		terminal := depth >= maxDepth || budget < 1+2*2 || // fork+join+2 branches minimum
			g.rng.Float64() < g.params.DAG.PTerm/(g.params.DAG.PTerm+g.params.DAG.PPar)
		if terminal {
			v := b.AddNode(g.wcet())
			budget--
			return v, v
		}
		fork := b.AddNode(g.wcet())
		join := b.AddNode(g.wcet())
		budget -= 2
		nBranch := 2 + g.rng.Intn(g.params.DAG.NPar-1)
		for i := 0; i < nBranch; i++ {
			if budget < 1 {
				break
			}
			s, t := expand(depth + 1)
			b.AddEdge(fork, s)
			b.AddEdge(t, join)
		}
		return fork, join
	}
	// The root expansion must fork at least once for the task to be
	// parallel, so bypass the terminal coin at depth 0 when possible.
	fork := b.AddNode(g.wcet())
	join := b.AddNode(g.wcet())
	budget -= 2
	nBranch := 2 + g.rng.Intn(g.params.DAG.NPar-1)
	for i := 0; i < nBranch; i++ {
		if budget < 1 {
			break
		}
		s, t := expand(1)
		b.AddEdge(fork, s)
		b.AddEdge(t, join)
	}
	return b.MustBuild()
}

// openmpGraph emits the blocked-LU wavefront of examples/openmp with a
// random number of blocks K: diagonal steps diag(k) for k < K, each
// fanning out to panel updates panel(k,i) for i in (k, K); wavefront
// edges panel(k-1,i) → panel(k,i) carry each column to the next step
// and panel(k-1,k) → diag(k) gates the next diagonal. The DAG has
// K + K(K−1)/2 nodes and a longest path of 2K−1 nodes, so K is drawn
// from [2, Kmax] with Kmax the largest value fitting MaxNodes and
// MaxPathLen.
func (g *Generator) openmpGraph() *dag.Graph {
	kMax := 2
	for k := 3; k+k*(k-1)/2 <= g.params.DAG.MaxNodes && 2*k-1 <= g.params.DAG.MaxPathLen; k++ {
		kMax = k
	}
	blocks := 2
	if kMax > 2 {
		blocks = 2 + g.rng.Intn(kMax-1)
	}
	var b dag.Builder
	diag := make([]int, blocks)
	panel := make([][]int, blocks)
	for k := 0; k < blocks; k++ {
		diag[k] = b.AddNode(g.wcet())
		panel[k] = make([]int, blocks)
	}
	for k := 0; k < blocks; k++ {
		for i := k + 1; i < blocks; i++ {
			panel[k][i] = b.AddNode(g.wcet())
			b.AddEdge(diag[k], panel[k][i])
			if k > 0 {
				b.AddEdge(panel[k-1][i], panel[k][i])
			}
		}
		if k > 0 {
			b.AddEdge(panel[k-1][k], diag[k])
		}
	}
	return b.MustBuild()
}

// wideGraph emits one flat fork-join of width ≥ NPar (capped by the node
// budget): the widest structure the node budget admits at path length 3.
func (g *Generator) wideGraph() *dag.Graph {
	var b dag.Builder
	w := g.params.DAG.NPar + g.rng.Intn(g.params.DAG.NPar+1)
	if w < 2 {
		w = 2
	}
	// The node cap wins over the width floor (New guarantees room for
	// the 4-node minimum fork-join).
	if max := g.params.DAG.MaxNodes - 2; w > max {
		w = max
	}
	fork := b.AddNode(g.wcet())
	join := b.AddNode(g.wcet())
	for i := 0; i < w; i++ {
		v := b.AddNode(g.wcet())
		b.AddEdge(fork, v)
		b.AddEdge(v, join)
	}
	return b.MustBuild()
}

// deepGraph emits a chain of MaxPathLen nodes in which interior links are
// occasionally widened into two-branch diamonds: the deepest admissible
// structure with token parallelism (width ≤ 2).
func (g *Generator) deepGraph() *dag.Graph {
	var b dag.Builder
	depth := g.params.DAG.MaxPathLen
	if depth < 3 {
		depth = 3
	}
	budget := g.params.DAG.MaxNodes
	prev := b.AddNode(g.wcet())
	budget--
	for i := 1; i < depth; i++ {
		if budget < 1 {
			break
		}
		// A diamond consumes a path step for the join plus one extra
		// off-path node; take it only with room for both.
		if i+1 < depth && budget >= 3 && g.rng.Float64() < 0.3 {
			left := b.AddNode(g.wcet())
			right := b.AddNode(g.wcet())
			join := b.AddNode(g.wcet())
			b.AddEdge(prev, left)
			b.AddEdge(prev, right)
			b.AddEdge(left, join)
			b.AddEdge(right, join)
			prev = join
			budget -= 3
			i++ // the diamond spans two path steps (branch, join)
			continue
		}
		v := b.AddNode(g.wcet())
		b.AddEdge(prev, v)
		prev = v
		budget--
	}
	return b.MustBuild()
}

func (g *Generator) wcet() int64 {
	return g.params.DAG.CMin + g.rng.Int63n(g.params.DAG.CMax-g.params.DAG.CMin+1)
}

// Task wraps a fresh graph into a task with an implicit deadline. The
// task utilization is drawn uniformly from [β, UMax] (the paper: [β, 1])
// and the period set to vol/U (never below L): β is the paper's minimum
// task utilization, and capping single-task utilization at 1 reproduces
// the paper's near-complete schedulability at low total utilizations
// (tasks with T ≈ L would otherwise be born unschedulable under any
// blocking).
func (g *Generator) Task() *model.Task {
	graph := g.Graph()
	g.nTasks++
	l := graph.LongestPath()
	vol := graph.Volume()
	u := g.params.Beta + g.rng.Float64()*(g.params.UMax-g.params.Beta)
	period := int64(float64(vol)/u + 0.5)
	if period < l {
		period = l
	}
	return &model.Task{
		Name:     fmt.Sprintf("tau%d", g.nTasks),
		G:        graph,
		Deadline: period,
		Period:   period,
	}
}

// TaskSet assembles tasks until the total utilization reaches targetU,
// then scales every period by the common factor ΣU/targetU so the total
// matches the target as closely as integer periods allow (the standard
// assembly of utilization-sweep evaluations: the factor is ≥ 1, so
// deadlines only gain slack), and finally sorts deadline-monotonically
// (rate-monotonic for these implicit-deadline sets). The set always
// contains at least one task.
func (g *Generator) TaskSet(targetU float64) *model.TaskSet {
	if targetU <= 0 {
		targetU = 0.1
	}
	var tasks []*model.Task
	sum := 0.0
	for sum < targetU {
		t := g.Task()
		tasks = append(tasks, t)
		sum += t.Utilization()
	}
	factor := sum / targetU
	if factor > 1 {
		for _, t := range tasks {
			period := int64(float64(t.Period)*factor + 0.5)
			if period < t.G.LongestPath() {
				period = t.G.LongestPath()
			}
			t.Period = period
			t.Deadline = period
		}
	}
	ts := &model.TaskSet{Tasks: tasks}
	ts.SortDeadlineMonotonic()
	return ts
}

// TaskSetN assembles exactly n tasks and scales every period by the
// common factor ΣU/targetU so the total utilization matches the target
// (periods are clamped at L when the factor compresses them below the
// longest path, so very aggressive targets saturate instead of producing
// invalid tasks). Used by the task-count sweep — the alternative reading
// of Figure 2(c), whose printed x-axis is "Number of tasks".
func (g *Generator) TaskSetN(n int, targetU float64) *model.TaskSet {
	if n < 1 {
		n = 1
	}
	if targetU <= 0 {
		targetU = 0.1
	}
	tasks := make([]*model.Task, n)
	sum := 0.0
	for i := range tasks {
		tasks[i] = g.Task()
		sum += tasks[i].Utilization()
	}
	factor := sum / targetU
	for _, t := range tasks {
		period := int64(float64(t.Period)*factor + 0.5)
		if period < t.G.LongestPath() {
			period = t.G.LongestPath()
		}
		t.Period = period
		t.Deadline = period
	}
	ts := &model.TaskSet{Tasks: tasks}
	ts.SortDeadlineMonotonic()
	return ts
}

package gen

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPaperParamsDefaults(t *testing.T) {
	p := PaperDAGParams()
	if p.PTerm != 0.4 || p.PPar != 0.6 || p.NPar != 6 || p.MaxNodes != 30 ||
		p.MaxPathLen != 7 || p.CMin != 1 || p.CMax != 100 {
		t.Fatalf("paper parameters drifted: %+v", p)
	}
	if pp := PaperParams(GroupMixed); pp.Beta != 0.5 {
		t.Fatalf("β = %v, want 0.5", pp.Beta)
	}
}

func TestGraphRespectsCaps(t *testing.T) {
	for _, group := range []Group{GroupMixed, GroupParallel} {
		g := New(1, PaperParams(group))
		for i := 0; i < 500; i++ {
			gr := g.Graph()
			if gr.N() > 30 {
				t.Fatalf("%v: %d nodes > 30", group, gr.N())
			}
			// Longest path cap is in nodes; convert weights: count nodes
			// on the critical path.
			if got := len(gr.CriticalPath()); got > 7 {
				t.Fatalf("%v: critical path has %d nodes > 7", group, got)
			}
			for v := 0; v < gr.N(); v++ {
				if c := gr.WCET(v); c < 1 || c > 100 {
					t.Fatalf("%v: WCET %d outside [1,100]", group, c)
				}
			}
		}
	}
}

func TestGroupParallelIsParallel(t *testing.T) {
	g := New(2, PaperParams(GroupParallel))
	for i := 0; i < 200; i++ {
		gr := g.Graph()
		if gr.Width() < 2 {
			t.Fatalf("GroupParallel produced a sequential DAG (width %d, n %d)",
				gr.Width(), gr.N())
		}
	}
}

func TestGroupMixedHasBothKinds(t *testing.T) {
	g := New(3, PaperParams(GroupMixed))
	seq, par := 0, 0
	for i := 0; i < 300; i++ {
		if g.Graph().Width() == 1 {
			seq++
		} else {
			par++
		}
	}
	if seq == 0 || par == 0 {
		t.Fatalf("mixed population not mixed: %d sequential, %d parallel", seq, par)
	}
	// Roughly half each (binomial, generous bounds).
	if seq < 60 || par < 60 {
		t.Errorf("mix ratio suspicious: %d sequential vs %d parallel", seq, par)
	}
}

func TestTaskUtilizationRange(t *testing.T) {
	g := New(4, PaperParams(GroupParallel))
	for i := 0; i < 300; i++ {
		task := g.Task()
		if err := task.Validate(); err != nil {
			t.Fatalf("generated invalid task: %v", err)
		}
		u := task.Utilization()
		maxU := float64(task.G.Volume()) / float64(task.G.LongestPath())
		// β lower bound can be slightly undercut by integer rounding of
		// the period; allow a small tolerance.
		if u < 0.45 || u > maxU+1e-9 {
			t.Fatalf("task utilization %.3f outside [β≈0.5, vol/L=%.3f]", u, maxU)
		}
		if task.Deadline != task.Period {
			t.Fatal("deadlines must be implicit")
		}
	}
}

func TestTaskSetHitsTargetUtilization(t *testing.T) {
	g := New(5, PaperParams(GroupMixed))
	for _, target := range []float64{0.8, 2.0, 3.5, 6.0} {
		for i := 0; i < 30; i++ {
			ts := g.TaskSet(target)
			if err := ts.Validate(); err != nil {
				t.Fatalf("invalid set: %v", err)
			}
			got := ts.Utilization()
			// Integer periods allow small deviation; the last-task
			// stretch may also be clamped by T ≥ L.
			if math.Abs(got-target) > 0.1*target+0.05 {
				t.Fatalf("target U=%.2f: got %.3f", target, got)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := New(42, PaperParams(GroupMixed))
	b := New(42, PaperParams(GroupMixed))
	for i := 0; i < 20; i++ {
		ta, tb := a.Task(), b.Task()
		if ta.Period != tb.Period || ta.G.N() != tb.G.N() || ta.G.Volume() != tb.G.Volume() {
			t.Fatalf("same seed diverged at task %d", i)
		}
	}
	c := New(43, PaperParams(GroupMixed))
	same := true
	for i := 0; i < 20; i++ {
		ta, tc := a.Task(), c.Task()
		if ta.Period != tc.Period || ta.G.Volume() != tc.G.Volume() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestTaskSetSortedByPriority(t *testing.T) {
	g := New(6, PaperParams(GroupMixed))
	ts := g.TaskSet(3.0)
	for i := 1; i < ts.N(); i++ {
		if ts.Tasks[i-1].Deadline > ts.Tasks[i].Deadline {
			t.Fatalf("set not deadline-monotonic at %d", i)
		}
	}
}

func TestDegenerateParamsClamped(t *testing.T) {
	g := New(7, Params{DAG: DAGParams{}, Beta: -1, SeqProb: 2})
	// Must not panic and must produce valid tasks.
	for i := 0; i < 50; i++ {
		if err := g.Task().Validate(); err != nil {
			t.Fatalf("clamped generator produced invalid task: %v", err)
		}
	}
	ts := g.TaskSet(-5) // degenerate target clamps to something positive
	if ts.N() < 1 {
		t.Fatal("empty set")
	}
}

// TestGraphAlwaysSingleSource uses testing/quick over seeds: the paper's
// generator always emits single-source DAGs (so Algorithm 1 is exact on
// this population — a property the dag package relies on in tests).
func TestGraphAlwaysSingleSource(t *testing.T) {
	f := func(seed int64) bool {
		g := New(seed, PaperParams(GroupParallel))
		for i := 0; i < 20; i++ {
			if len(g.Graph().Sources()) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestShapeWide(t *testing.T) {
	p := PaperParams(GroupParallel)
	p.Shape = ShapeWide
	g := New(11, p)
	for i := 0; i < 200; i++ {
		gr := g.Graph()
		if gr.N() > p.DAG.MaxNodes {
			t.Fatalf("wide graph exceeds node cap: %d", gr.N())
		}
		if w := gr.Width(); w < p.DAG.NPar {
			t.Fatalf("wide graph width %d below NPar %d", w, p.DAG.NPar)
		}
		if got := len(gr.CriticalPath()); got != 3 {
			t.Fatalf("wide graph critical path has %d nodes, want 3", got)
		}
	}
}

func TestShapeDeep(t *testing.T) {
	p := PaperParams(GroupMixed)
	p.DAG.MaxPathLen = 12
	p.DAG.MaxNodes = 40
	p.Shape = ShapeDeep
	g := New(12, p)
	sawDiamond := false
	for i := 0; i < 200; i++ {
		gr := g.Graph()
		if w := gr.Width(); w > 2 {
			t.Fatalf("deep graph width %d > 2", w)
		}
		if gr.N() > p.DAG.MaxNodes {
			t.Fatalf("deep graph exceeds node cap: %d", gr.N())
		}
		if got := len(gr.CriticalPath()); got > p.DAG.MaxPathLen {
			t.Fatalf("deep graph critical path %d > cap %d", got, p.DAG.MaxPathLen)
		} else if got < 3 {
			t.Fatalf("deep graph too shallow: %d path nodes", got)
		}
		if gr.Width() == 2 {
			sawDiamond = true
		}
	}
	if !sawDiamond {
		t.Error("deep family never widened into a diamond")
	}
}

func TestShapeOpenMP(t *testing.T) {
	p := PaperParams(GroupParallel)
	p.Shape = ShapeOpenMP
	p.DAG.MaxNodes = 38   // fits up to K=8 blocks (8 + 28 nodes)
	p.DAG.MaxPathLen = 15 // 2·8 − 1
	g := New(13, p)
	sawWide := false
	for i := 0; i < 200; i++ {
		gr := g.Graph()
		if gr.N() > p.DAG.MaxNodes {
			t.Fatalf("openmp graph exceeds node cap: %d", gr.N())
		}
		if got := len(gr.CriticalPath()); got > p.DAG.MaxPathLen {
			t.Fatalf("openmp critical path %d > cap %d", got, p.DAG.MaxPathLen)
		}
		// A K-block wavefront has K + K(K−1)/2 nodes whose longest
		// path (by node count — the critical path weighs WCETs and
		// may be shorter) threads every diagonal: 2K−1 nodes.
		var k int
		for k = 2; k+k*(k-1)/2 < gr.N(); k++ {
		}
		if gr.N() != k+k*(k-1)/2 {
			t.Fatalf("openmp node count %d is no wavefront", gr.N())
		}
		depth := make([]int, gr.N())
		longest := 0
		for _, v := range gr.TopologicalOrder() {
			if depth[v] == 0 {
				depth[v] = 1
			}
			if depth[v] > longest {
				longest = depth[v]
			}
			for _, w := range gr.Successors(v) {
				if depth[v]+1 > depth[w] {
					depth[w] = depth[v] + 1
				}
			}
		}
		if longest != 2*k-1 {
			t.Fatalf("K=%d wavefront has longest path of %d nodes, want %d", k, longest, 2*k-1)
		}
		// The first diagonal fans out to K−1 panels: width K−1 (≥ the
		// wavefront's widest antichain of panels).
		if k >= 4 && gr.Width() >= 3 {
			sawWide = true
		}
	}
	if !sawWide {
		t.Error("openmp family never drew a wide wavefront")
	}
}

func TestShapeOpenMPTinyBudget(t *testing.T) {
	p := PaperParams(GroupMixed)
	p.Shape = ShapeOpenMP
	p.DAG.MaxNodes = 1   // clamped to 3
	p.DAG.MaxPathLen = 1 // clamped to 3
	g := New(16, p)
	for i := 0; i < 100; i++ {
		gr := g.Graph()
		if gr.N() != 3 {
			t.Fatalf("tiny openmp wavefront has %d nodes, want 3", gr.N())
		}
	}
}

func TestShapeWideTinyNodeBudget(t *testing.T) {
	p := PaperParams(GroupParallel)
	p.Shape = ShapeWide
	p.DAG.MaxNodes = 3 // below the 4-node fork-join minimum: clamped to 4
	g := New(15, p)
	for i := 0; i < 100; i++ {
		gr := g.Graph()
		if gr.N() > 4 {
			t.Fatalf("wide graph has %d nodes under a tiny budget (clamp to 4 failed)", gr.N())
		}
		if gr.Width() < 2 {
			t.Fatalf("wide graph degenerated to width %d", gr.Width())
		}
	}
}

func TestShapeString(t *testing.T) {
	if ShapeAuto.String() != "auto" || ShapeWide.String() != "wide" || ShapeDeep.String() != "deep" ||
		ShapeOpenMP.String() != "openmp" {
		t.Error("shape strings wrong")
	}
	if Shape(9).String() == "" {
		t.Error("unknown shape must render")
	}
}

func TestUMaxBoundsUtilization(t *testing.T) {
	p := PaperParams(GroupMixed)
	p.Beta = 0.05
	p.UMax = 0.3
	g := New(13, p)
	for i := 0; i < 200; i++ {
		task := g.Task()
		// Integer-period rounding and the T ≥ L clamp can push the
		// realised utilization slightly past the draw.
		if u := task.Utilization(); u > 0.35 {
			t.Fatalf("light-mix task utilization %.3f exceeds UMax 0.3", u)
		}
	}
	// Out-of-range UMax falls back to the paper's [β, 1].
	q := PaperParams(GroupMixed)
	q.UMax = 7
	heavyish := New(14, q)
	sawAboveHalf := false
	for i := 0; i < 100; i++ {
		if heavyish.Task().Utilization() > 0.6 {
			sawAboveHalf = true
		}
	}
	if !sawAboveHalf {
		t.Error("UMax fallback to 1 not effective")
	}
}

func TestGroupString(t *testing.T) {
	if GroupMixed.String() != "mixed" || GroupParallel.String() != "parallel" {
		t.Error("group strings wrong")
	}
	if Group(9).String() == "" {
		t.Error("unknown group must render")
	}
}

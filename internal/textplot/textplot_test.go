package textplot

import (
	"math"
	"strings"
	"testing"
)

func TestChartBasics(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	s := []Series{
		{Name: "up", Y: []float64{0, 33, 66, 100}},
		{Name: "down", Y: []float64{100, 66, 33, 0}},
	}
	out := Chart("demo", xs, s, 40, 10, 0, 100)
	for _, want := range []string{"demo", "up", "down", "100.0", "0.0", "*", "o"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// Every line of the canvas is framed.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	for _, l := range lines[1:11] {
		if !strings.HasSuffix(l, "|") {
			t.Errorf("canvas row not framed: %q", l)
		}
	}
}

func TestChartCorners(t *testing.T) {
	xs := []float64{0, 10}
	out := Chart("", xs, []Series{{Name: "s", Y: []float64{0, 100}, Marker: '#'}}, 30, 8, 0, 100)
	lines := strings.Split(out, "\n")
	top, bottom := lines[0], lines[7]
	if !strings.Contains(top, "#") {
		t.Errorf("y=100 must land on the top row:\n%s", out)
	}
	if !strings.Contains(bottom, "#") {
		t.Errorf("y=0 must land on the bottom row:\n%s", out)
	}
	if !strings.HasSuffix(strings.TrimRight(top, "|"), "#") {
		t.Errorf("x=max must land on the right edge:\n%s", out)
	}
}

func TestChartClampsAndNaN(t *testing.T) {
	xs := []float64{0, 1, 2}
	out := Chart("t", xs, []Series{{Name: "s", Y: []float64{-50, math.NaN(), 150}}}, 25, 6, 0, 100)
	if out == "" {
		t.Fatal("empty chart")
	}
	// Out-of-range values clamp to the frame instead of panicking.
	if !strings.Contains(out, "*") {
		t.Errorf("clamped points missing:\n%s", out)
	}
}

func TestChartMinimumSizes(t *testing.T) {
	xs := []float64{0, 0} // degenerate x range
	out := Chart("tiny", xs, []Series{{Name: "s", Y: []float64{5, 5}}}, 1, 1, 5, 5)
	if out == "" {
		t.Fatal("degenerate chart must still render")
	}
}

func TestCustomMarkers(t *testing.T) {
	xs := []float64{0, 1}
	out := Chart("", xs, []Series{
		{Name: "a", Marker: 'A', Y: []float64{10, 20}},
		{Name: "b", Marker: 'B', Y: []float64{80, 90}},
	}, 30, 10, 0, 100)
	if !strings.Contains(out, "A a") || !strings.Contains(out, "B b") {
		t.Errorf("legend must show custom markers:\n%s", out)
	}
}

// Package textplot renders simple ASCII line charts, used by the
// experiment drivers to display the schedulability curves of Figure 2 of
// Serrano et al. (DATE 2016) directly in a terminal.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve. Y values are sampled at the shared X grid.
type Series struct {
	Name   string
	Marker byte
	Y      []float64
}

// Chart renders the series over the shared xs grid into a width×height
// character canvas with axes and a legend. Y limits are fixed to
// [yMin, yMax] (use 0 and 100 for percentage charts).
func Chart(title string, xs []float64, series []Series, width, height int, yMin, yMax float64) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	if yMax <= yMin {
		yMax = yMin + 1
	}
	canvas := make([][]byte, height)
	for r := range canvas {
		canvas[r] = []byte(strings.Repeat(" ", width))
	}
	xmin, xmax := xs[0], xs[len(xs)-1]
	if xmax <= xmin {
		xmax = xmin + 1
	}
	col := func(x float64) int {
		c := int(math.Round((x - xmin) / (xmax - xmin) * float64(width-1)))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	row := func(y float64) int {
		r := int(math.Round((yMax - y) / (yMax - yMin) * float64(height-1)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}

	markers := []byte{'*', 'o', '+', 'x', '#', '@'}
	for si, s := range series {
		m := s.Marker
		if m == 0 {
			m = markers[si%len(markers)]
		}
		for i, y := range s.Y {
			if i >= len(xs) || math.IsNaN(y) {
				continue
			}
			canvas[row(y)][col(xs[i])] = m
		}
	}

	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for r, line := range canvas {
		yLabel := ""
		switch r {
		case 0:
			yLabel = fmt.Sprintf("%6.1f", yMax)
		case height - 1:
			yLabel = fmt.Sprintf("%6.1f", yMin)
		case (height - 1) / 2:
			yLabel = fmt.Sprintf("%6.1f", (yMax+yMin)/2)
		}
		fmt.Fprintf(&b, "%7s |%s|\n", yLabel, line)
	}
	fmt.Fprintf(&b, "%7s +%s+\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%7s  %-*.3g%*.3g\n", "", width/2, xmin, width-width/2, xmax)
	for si, s := range series {
		m := s.Marker
		if m == 0 {
			m = markers[si%len(markers)]
		}
		fmt.Fprintf(&b, "        %c %s\n", m, s.Name)
	}
	return b.String()
}

package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestRunCampaignSubsetByteSlice checks that the subset runner emits
// exactly the corresponding lines of a full run — the byte-level
// contract the cluster shard protocol merges on.
func TestRunCampaignSubsetByteSlice(t *testing.T) {
	cfg := CampaignConfig{
		Seed: 11, Ms: []int{2}, UFracs: []float64{0.2, 0.5, 0.8},
		SetsPerPoint: 2, Workers: 2,
	}
	var full bytes.Buffer
	if _, err := RunCampaign(cfg, RunOptions{JSONL: &full}); err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(full.String(), "\n")

	var sub bytes.Buffer
	if _, err := RunCampaignSubset(cfg, []int{0, 2}, RunOptions{JSONL: &sub}); err != nil {
		t.Fatal(err)
	}
	if want := lines[0] + lines[2]; sub.String() != want {
		t.Errorf("subset stream:\n%swant:\n%s", sub.String(), want)
	}
}

func TestRunCampaignSubsetValidation(t *testing.T) {
	cfg := CampaignConfig{Seed: 1, Ms: []int{2}, UFracs: []float64{0.5}, SetsPerPoint: 1}
	if _, err := RunCampaignSubset(cfg, []int{5}, RunOptions{}); err == nil {
		t.Error("out-of-grid index should fail")
	}
	if _, err := RunCampaignSubset(cfg, []int{0, 0}, RunOptions{}); err == nil {
		t.Error("duplicate indices should fail")
	}
	if res, err := RunCampaignSubset(cfg, nil, RunOptions{}); err != nil || len(res) != 0 {
		t.Errorf("empty subset: %v, %v", res, err)
	}
}

// TestWireRequestRoundTrip checks CampaignConfig → wire → Config
// produces the same grid, and that non-registry scenarios are rejected
// (a cluster must never silently compute a different campaign).
func TestWireRequestRoundTrip(t *testing.T) {
	sc, err := ScenarioByName("wide")
	if err != nil {
		t.Fatal(err)
	}
	cfg := CampaignConfig{
		Seed: 3, Ms: []int{2, 4}, UFracs: []float64{0.25, 0.75},
		SetsPerPoint: 3, Scenarios: []Scenario{sc},
		Methods: []core.Method{core.LPILP, core.FPIdeal},
		Backend: core.Combinatorial,
	}
	wire, err := cfg.WireRequest()
	if err != nil {
		t.Fatal(err)
	}
	back, err := wire.Config()
	if err != nil {
		t.Fatal(err)
	}
	p1, err := cfg.Points()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := back.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(p1) != len(p2) {
		t.Fatalf("grid size drifted over the wire: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if !reflect.DeepEqual(p1[i], p2[i]) {
			t.Errorf("point %d drifted over the wire: %+v vs %+v", i, p1[i], p2[i])
		}
	}

	tampered := sc
	tampered.Beta = 0.9 // same name, different physics
	if _, err := (CampaignConfig{Scenarios: []Scenario{tampered}}).WireRequest(); err == nil {
		t.Error("modified scenario under a registry name must not be wire-encodable")
	}
	if _, err := (CampaignConfig{Scenarios: []Scenario{{Name: "bespoke"}}}).WireRequest(); err == nil {
		t.Error("non-registry scenario must not be wire-encodable")
	}
}

// TestPrepareResumeValidation pins the foreign-file rejection shared by
// -resume and the cluster merger.
func TestPrepareResumeValidation(t *testing.T) {
	cfg := CampaignConfig{Seed: 1, Ms: []int{2}, UFracs: []float64{0.5}, SetsPerPoint: 1}
	points, err := cfg.Points()
	if err != nil {
		t.Fatal(err)
	}
	good := PointResult{Index: 0, Scenario: "mixed", M: 2, U: 1, Sets: 1, Sched: map[string]int{}}
	if _, ready, err := PrepareResume(cfg, points, []PointResult{good}); err != nil || !ready[0] {
		t.Fatalf("valid carried point rejected: %v", err)
	}
	for _, bad := range []PointResult{
		{Index: 9, Scenario: "mixed", M: 2, U: 1, Sets: 1},
		{Index: 0, Scenario: "wide", M: 2, U: 1, Sets: 1},
		{Index: 0, Scenario: "mixed", M: 4, U: 1, Sets: 1},
		{Index: 0, Scenario: "mixed", M: 2, U: 2, Sets: 1},
		{Index: 0, Scenario: "mixed", M: 2, U: 1, Sets: 7},
	} {
		if _, _, err := PrepareResume(cfg, points, []PointResult{bad}); err == nil {
			t.Errorf("foreign point %+v accepted", bad)
		}
	}
}

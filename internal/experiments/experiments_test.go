package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

// smallFig2 keeps test runtimes low; the cmd runs the full-size version.
func smallFig2(m int) Fig2Config {
	cfg := PaperFig2Config(m, 40, 12345)
	cfg.UStep = float64(m) / 6
	return cfg
}

func TestFigure2aShape(t *testing.T) {
	points := Figure2(smallFig2(4))
	if len(points) < 5 {
		t.Fatalf("only %d points", len(points))
	}
	if issues := CheckCurveShape(points); len(issues) > 0 {
		t.Errorf("Figure 2(a) shape violations:\n  %s\n%s",
			strings.Join(issues, "\n  "), CurveChart("fig2a", points))
	}
}

func TestFigure2bShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	points := Figure2(smallFig2(8))
	if issues := CheckCurveShape(points); len(issues) > 0 {
		t.Errorf("Figure 2(b) shape violations:\n  %s\n%s",
			strings.Join(issues, "\n  "), CurveChart("fig2b", points))
	}
}

func TestCurveMonotoneTrend(t *testing.T) {
	// Schedulability percentages must broadly fall with utilization:
	// compare first and last grid point per method.
	points := Figure2(smallFig2(4))
	first, last := points[0], points[len(points)-1]
	for _, m := range core.Methods() {
		if last.Pct[m] > first.Pct[m] {
			t.Errorf("%v: %% rose from %.1f to %.1f over the grid", m, first.Pct[m], last.Pct[m])
		}
	}
	// At U = m every method must be (essentially) dead.
	for _, m := range core.Methods() {
		if last.Pct[m] > 20 {
			t.Errorf("%v still schedules %.1f%% at U=m", m, last.Pct[m])
		}
	}
}

func TestFigure2Deterministic(t *testing.T) {
	cfg := smallFig2(4)
	cfg.SetsPerPoint = 15
	a := Figure2(cfg)
	b := Figure2(cfg)
	for i := range a {
		for _, m := range core.Methods() {
			if a[i].Pct[m] != b[i].Pct[m] {
				t.Fatalf("point %d method %v: %.2f vs %.2f", i, m, a[i].Pct[m], b[i].Pct[m])
			}
		}
	}
}

func TestCurveCSV(t *testing.T) {
	points := []CurvePoint{
		{U: 1, Pct: map[core.Method]float64{core.FPIdeal: 100, core.LPILP: 90, core.LPMax: 80}},
	}
	csv := CurveCSV(points)
	if !strings.HasPrefix(csv, "utilization,FP-ideal,LP-ILP,LP-max\n") {
		t.Errorf("bad header: %q", csv)
	}
	if !strings.Contains(csv, "1.000,100.00,90.00,80.00") {
		t.Errorf("bad row: %q", csv)
	}
}

func TestCheckCurveShapeCatchesViolations(t *testing.T) {
	bad := []CurvePoint{
		{U: 1, Pct: map[core.Method]float64{core.FPIdeal: 50, core.LPILP: 100, core.LPMax: 100}},
		{U: 2, Pct: map[core.Method]float64{core.FPIdeal: 0, core.LPILP: 10, core.LPMax: 10}},
	}
	if issues := CheckCurveShape(bad); len(issues) == 0 {
		t.Error("violations not reported")
	}
}

func TestGroup2Gap(t *testing.T) {
	cfg := smallFig2(4)
	cfg.SetsPerPoint = 40
	res := Group2(cfg)
	if len(res.Points) == 0 {
		t.Fatal("no points")
	}
	// Section VI-B: on uniformly parallel sets LP-max and LP-ILP perform
	// "very similar". With small samples allow a loose but meaningful
	// bound on the mean gap.
	if res.MeanGap > 15 {
		t.Errorf("mean LP-ILP vs LP-max gap %.1f%% too large for group 2", res.MeanGap)
	}
	if res.MaxGap < res.MeanGap {
		t.Error("max gap below mean gap")
	}
}

// TestGroup2GapSmallerThanGroup1 is the actual claim of Section VI-B:
// the LP-max pessimism shrinks when every task is highly parallel.
func TestGroup2GapSmallerThanGroup1(t *testing.T) {
	cfg := smallFig2(4)
	cfg.SetsPerPoint = 60
	g2 := Group2(cfg)

	cfg1 := cfg
	cfg1.Group = gen.GroupMixed
	points := Figure2(cfg1)
	var g1sum float64
	for _, p := range points {
		g1sum += p.Pct[core.LPILP] - p.Pct[core.LPMax]
	}
	g1mean := g1sum / float64(len(points))
	if g2.MeanGap > g1mean {
		t.Errorf("group-2 mean gap %.1f%% should undercut group-1 %.1f%%", g2.MeanGap, g1mean)
	}
}

func TestTimingTrend(t *testing.T) {
	res := Timing(TimingConfig{Ms: []int{2, 4}, Sets: 5, Seed: 9})
	if len(res) != 2 {
		t.Fatalf("got %d results", len(res))
	}
	for _, r := range res {
		if r.AvgPerSet <= 0 {
			t.Errorf("m=%d: non-positive timing", r.M)
		}
	}
	if res[0].Scenarios != 2 || res[1].Scenarios != 5 {
		t.Errorf("scenario counts p(2)=%d p(4)=%d, want 2 and 5", res[0].Scenarios, res[1].Scenarios)
	}
	table := TimingTable(res)
	if !strings.Contains(table, "avg/set") {
		t.Errorf("timing table malformed:\n%s", table)
	}
}

func TestTableTexts(t *testing.T) {
	t1 := TableIText()
	for _, want := range []string{"µ1[c]", " 3", " 5", " 6", "11", "12"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table I text missing %q:\n%s", want, t1)
		}
	}
	t2 := TableIIText()
	for _, want := range []string{"p(4) = 5", "{1, 1, 1, 1}", "{4}"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table II text missing %q:\n%s", want, t2)
		}
	}
	t3 := TableIIIText()
	for _, want := range []string{"= 19", "= 15", "= 20", "= 16", "ρ[{2, 1, 1}"} {
		if !strings.Contains(t3, want) {
			t.Errorf("Table III text missing %q:\n%s", want, t3)
		}
	}
}

func TestCurveChartRenders(t *testing.T) {
	points := Figure2(Fig2Config{
		M: 2, UStart: 0.5, UEnd: 2, UStep: 0.5, SetsPerPoint: 10, Seed: 3,
	})
	chart := CurveChart("m=2", points)
	for _, want := range []string{"m=2", "FP-ideal", "LP-ILP", "LP-max"} {
		if !strings.Contains(chart, want) {
			t.Errorf("chart missing %q:\n%s", want, chart)
		}
	}
}

func TestTasksSweep(t *testing.T) {
	points := TasksSweep(TasksSweepConfig{
		M: 4, U: 1.5, NStart: 2, NEnd: 5, SetsPerPoint: 15, Seed: 21,
	})
	if len(points) != 4 {
		t.Fatalf("got %d points", len(points))
	}
	for _, p := range points {
		fp, li, lm := p.Pct[core.FPIdeal], p.Pct[core.LPILP], p.Pct[core.LPMax]
		if li > fp+1e-9 || lm > li+1e-9 {
			t.Errorf("n=%d: ordering violated FP=%.1f ILP=%.1f MAX=%.1f", p.N, fp, li, lm)
		}
	}
	csv := TasksSweepCSV(points)
	if !strings.HasPrefix(csv, "tasks,FP-ideal,LP-ILP,LP-max\n") {
		t.Errorf("bad CSV header: %q", csv)
	}
}

func TestTaskSetNExact(t *testing.T) {
	g := gen.New(5, gen.PaperParams(gen.GroupMixed))
	for _, n := range []int{1, 3, 8} {
		ts := g.TaskSetN(n, 2.0)
		if ts.N() != n {
			t.Fatalf("TaskSetN(%d) produced %d tasks", n, ts.N())
		}
		if err := ts.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestVariantsOrdering(t *testing.T) {
	cfg := smallFig2(4)
	cfg.SetsPerPoint = 30
	points := Variants(cfg)
	if len(points) < 3 {
		t.Fatalf("only %d points", len(points))
	}
	anyRefinedGain, anyAblatedGain := false, false
	for _, p := range points {
		// Refinement and ablation can only accept more sets than plain.
		if p.Refined < p.Plain-1e-9 {
			t.Errorf("U=%.2f: refined %.1f%% below plain %.1f%%", p.U, p.Refined, p.Plain)
		}
		if p.Ablated < p.Plain-1e-9 {
			t.Errorf("U=%.2f: ablated %.1f%% below plain %.1f%%", p.U, p.Ablated, p.Plain)
		}
		if p.Refined > p.Plain {
			anyRefinedGain = true
		}
		if p.Ablated > p.Plain {
			anyAblatedGain = true
		}
	}
	if !anyRefinedGain && !anyAblatedGain {
		t.Log("note: neither variant moved any point on this small sample")
	}
	csv := VariantsCSV(points)
	if !strings.HasPrefix(csv, "utilization,LP-ILP,LP-ILP+finalNPR,LP-ILP-noRepeatBlocking\n") {
		t.Errorf("bad CSV header: %q", csv)
	}
}

func TestPessimismStudy(t *testing.T) {
	res := Pessimism(PessimismConfig{M: 4, U: 2.0, Sets: 25, Seed: 31})
	if res.Sets != 25 || res.Accepted+res.Rejected != res.Sets {
		t.Fatalf("inconsistent counts: %+v", res)
	}
	if res.RejectedAlive > res.Rejected {
		t.Fatalf("alive rejects exceed rejects: %+v", res)
	}
	if res.UpperBoundPct < 0 || res.UpperBoundPct > 100 {
		t.Fatalf("bad percentage: %+v", res)
	}
}

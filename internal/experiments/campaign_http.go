package experiments

// HTTP front end of the campaign orchestrator, mounted by
// cmd/lpdag-serve next to the engine's /v1/ endpoints (it lives here
// rather than in internal/engine because the orchestrator builds on the
// engine — the import only points one way).
//
//	POST /v1/campaign   run a sweep campaign, streaming one JSON
//	                    PointResult per line (application/x-ndjson)
//
// The response is a plain campaign JSONL stream (ReadCampaignJSONL
// parses it back); if the run fails after streaming began, a final
// {"error": ...} line is appended, which JSONL readers reject — the
// stream is only complete if every line parses.

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/core"
	"repro/internal/engine"
)

// Campaign API limits: the HTTP boundary is where untrusted sizes
// arrive, and one campaign fans out points × sets × methods analyses.
const (
	MaxCampaignBodyBytes = 1 << 20 // 1 MiB of JSON config is plenty
	MaxCampaignPoints    = 2048
	MaxCampaignSets      = 200
	MaxCampaignCores     = 64
	MaxCampaignAnalyses  = 250_000
)

// campaignRequest is the /v1/campaign body. Scenarios are registry
// names (StandardScenarios); methods use the wire spellings of the
// analyze endpoint ("fp-ideal" | "lp-ilp" | "lp-max").
type campaignRequest struct {
	Seed         int64     `json:"seed"`
	Ms           []int     `json:"ms,omitempty"`
	UFracs       []float64 `json:"u_fracs,omitempty"`
	SetsPerPoint int       `json:"sets_per_point,omitempty"`
	Scenarios    []string  `json:"scenarios,omitempty"`
	Methods      []string  `json:"methods,omitempty"`
	Backend      string    `json:"backend,omitempty"`
	Shards       int       `json:"shards,omitempty"`
}

// CampaignHandler serves POST /v1/campaign on the given engine.
func CampaignHandler(eng *engine.Engine) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, MaxCampaignBodyBytes)
		var req campaignRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "invalid request: %v", err)
			return
		}
		cfg, err := campaignConfigFromRequest(req)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		points, err := cfg.Points()
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if len(points) > MaxCampaignPoints {
			httpError(w, http.StatusBadRequest, "%d grid points exceed limit %d", len(points), MaxCampaignPoints)
			return
		}
		nm := len(cfg.Methods)
		if nm == 0 {
			nm = len(core.Methods())
		}
		if analyses := len(points) * cfg.SetsPerPoint * nm; analyses > MaxCampaignAnalyses {
			httpError(w, http.StatusBadRequest, "%d analyses exceed limit %d", analyses, MaxCampaignAnalyses)
			return
		}

		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		out := &flushLineWriter{w: w}
		if _, err := RunCampaign(cfg, RunOptions{
			Context: r.Context(),
			Engine:  eng,
			JSONL:   out,
		}); err != nil {
			// Too late for a status code; emit a terminal error line.
			data, _ := json.Marshal(map[string]string{"error": err.Error()})
			w.Write(append(data, '\n'))
		}
	})
}

// campaignConfigFromRequest validates and resolves the wire form.
func campaignConfigFromRequest(req campaignRequest) (CampaignConfig, error) {
	cfg := CampaignConfig{
		Seed:         req.Seed,
		Ms:           req.Ms,
		UFracs:       req.UFracs,
		SetsPerPoint: req.SetsPerPoint,
		Shards:       req.Shards,
	}
	for _, m := range req.Ms {
		if m < 1 || m > MaxCampaignCores {
			return cfg, fmt.Errorf("core count %d outside [1, %d]", m, MaxCampaignCores)
		}
	}
	if cfg.SetsPerPoint > MaxCampaignSets {
		return cfg, fmt.Errorf("sets_per_point %d exceeds limit %d", cfg.SetsPerPoint, MaxCampaignSets)
	}
	for _, name := range req.Scenarios {
		sc, err := ScenarioByName(name)
		if err != nil {
			return cfg, err
		}
		cfg.Scenarios = append(cfg.Scenarios, sc)
	}
	for _, ms := range req.Methods {
		m, err := engine.ParseMethod(ms)
		if err != nil {
			return cfg, err
		}
		cfg.Methods = append(cfg.Methods, m)
	}
	var err error
	if cfg.Backend, err = engine.ParseBackend(req.Backend); err != nil {
		return cfg, err
	}
	return cfg, nil
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// flushLineWriter flushes the HTTP response after every write, so the
// ndjson stream reaches clients point by point.
type flushLineWriter struct {
	w http.ResponseWriter
}

func (f *flushLineWriter) Write(p []byte) (int, error) {
	n, err := f.w.Write(p)
	if fl, ok := f.w.(http.Flusher); ok {
		fl.Flush()
	}
	return n, err
}

package experiments

// HTTP front end of the campaign orchestrator, mounted by
// cmd/lpdag-serve next to the engine's /v1/ endpoints (it lives here
// rather than in internal/engine because the orchestrator builds on the
// engine — the import only points one way).
//
//	POST /v1/campaign   run a sweep campaign, streaming one JSON
//	                    PointResult per line (application/x-ndjson)
//
// The response is a plain campaign JSONL stream (ReadCampaignJSONL
// parses it back); if the run fails after streaming began, a final
// {"error": ...} line is appended, which JSONL readers reject — the
// stream is only complete if every line parses.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"

	"repro/internal/engine"
)

// Campaign API limits: the HTTP boundary is where untrusted sizes
// arrive, and one campaign fans out points × sets × methods analyses.
const (
	MaxCampaignBodyBytes = 1 << 20 // 1 MiB of JSON config is plenty
	MaxCampaignPoints    = 2048
	MaxCampaignSets      = 200
	MaxCampaignCores     = 64
	MaxCampaignAnalyses  = 250_000
)

// CampaignRequest is the wire form of a campaign configuration: the
// /v1/campaign body, and the campaign half of the cluster shard
// protocol's /v1/shard body (internal/experiments/cluster). Scenarios
// are registry names (StandardScenarios); methods use the wire
// spellings of the analyze endpoint ("fp-ideal" | "lp-ilp" | "lp-max").
type CampaignRequest struct {
	Seed         int64     `json:"seed"`
	Ms           []int     `json:"ms,omitempty"`
	UFracs       []float64 `json:"u_fracs,omitempty"`
	SetsPerPoint int       `json:"sets_per_point,omitempty"`
	Scenarios    []string  `json:"scenarios,omitempty"`
	Methods      []string  `json:"methods,omitempty"`
	Backend      string    `json:"backend,omitempty"`
	Shards       int       `json:"shards,omitempty"`
}

// CampaignHandler serves POST /v1/campaign on the given engine.
func CampaignHandler(eng *engine.Engine) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, MaxCampaignBodyBytes)
		var req CampaignRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "invalid request: %v", err)
			return
		}
		cfg, err := req.Config()
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		points, err := cfg.Points()
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if len(points) > MaxCampaignPoints {
			httpError(w, http.StatusBadRequest, "%d grid points exceed limit %d", len(points), MaxCampaignPoints)
			return
		}
		if analyses := len(points) * cfg.SetsPerPoint * len(cfg.Methods); analyses > MaxCampaignAnalyses {
			httpError(w, http.StatusBadRequest, "%d analyses exceed limit %d", analyses, MaxCampaignAnalyses)
			return
		}

		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		out := &flushLineWriter{w: w}
		if _, err := RunCampaign(cfg, RunOptions{
			Context: r.Context(),
			Engine:  eng,
			JSONL:   out,
			Obs:     eng.Obs(),
		}); err != nil {
			// Too late for a status code; emit a terminal error line.
			data, _ := json.Marshal(map[string]string{"error": err.Error()})
			w.Write(append(data, '\n'))
		}
	})
}

// Config validates and resolves the wire form into a CampaignConfig.
func (req CampaignRequest) Config() (CampaignConfig, error) {
	cfg := CampaignConfig{
		Seed:         req.Seed,
		Ms:           req.Ms,
		UFracs:       req.UFracs,
		SetsPerPoint: req.SetsPerPoint,
		Shards:       req.Shards,
	}
	for _, m := range req.Ms {
		if m < 1 || m > MaxCampaignCores {
			return cfg, fmt.Errorf("core count %d outside [1, %d]", m, MaxCampaignCores)
		}
	}
	if cfg.SetsPerPoint > MaxCampaignSets {
		return cfg, fmt.Errorf("sets_per_point %d exceeds limit %d", cfg.SetsPerPoint, MaxCampaignSets)
	}
	for _, name := range req.Scenarios {
		sc, err := ScenarioByName(name)
		if err != nil {
			return cfg, err
		}
		cfg.Scenarios = append(cfg.Scenarios, sc)
	}
	for _, ms := range req.Methods {
		m, err := engine.ParseMethod(ms)
		if err != nil {
			return cfg, err
		}
		cfg.Methods = append(cfg.Methods, m)
	}
	var err error
	if cfg.Backend, err = engine.ParseBackend(req.Backend); err != nil {
		return cfg, err
	}
	// Return the normalized form (defaults filled), so every consumer —
	// the campaign handler's admission estimate, the shard endpoint's —
	// reasons about the grid actually computed instead of restating the
	// package defaults.
	return cfg.normalized()
}

// WireRequest renders a campaign configuration into its wire form, the
// inverse of Config. Because the wire form names scenarios, every
// scenario must be a registry entry (ScenarioByName) — a locally
// modified scenario under a registry name would make remote workers
// silently compute a different campaign, so it is rejected here.
func (c CampaignConfig) WireRequest() (CampaignRequest, error) {
	req := CampaignRequest{
		Seed:         c.Seed,
		Ms:           c.Ms,
		UFracs:       c.UFracs,
		SetsPerPoint: c.SetsPerPoint,
		Shards:       0, // worker-local load balancing is the worker's business
	}
	for _, sc := range c.Scenarios {
		reg, err := ScenarioByName(sc.Name)
		if err != nil {
			return req, fmt.Errorf("experiments: campaign not wire-encodable: %w", err)
		}
		if !reflect.DeepEqual(sc, reg) {
			return req, fmt.Errorf("experiments: campaign not wire-encodable: scenario %q differs from the registry entry of that name", sc.Name)
		}
		req.Scenarios = append(req.Scenarios, sc.Name)
	}
	for _, m := range c.Methods {
		w, err := engine.MethodWire(m)
		if err != nil {
			return req, err
		}
		req.Methods = append(req.Methods, w)
	}
	req.Backend = c.Backend.String()
	// Round-trip through Config so a campaign the wire-level limits
	// would reject (core counts, sets per point) fails at the
	// coordinator, not on every worker.
	if _, err := req.Config(); err != nil {
		return req, err
	}
	return req, nil
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// flushLineWriter flushes the HTTP response after every write, so the
// ndjson stream reaches clients point by point.
type flushLineWriter struct {
	w http.ResponseWriter
}

func (f *flushLineWriter) Write(p []byte) (int, error) {
	n, err := f.w.Write(p)
	if fl, ok := f.w.(http.Flusher); ok {
		fl.Flush()
	}
	return n, err
}

package experiments

// The differential soundness harness: the one property this whole
// reproduction rests on is that every analytical response-time bound
// upper-bounds what the discrete-event simulator observes on a legal
// behaviour of the task system. The harness sweeps thousands of
// generated (task set, cores) points drawn from the extended scenario
// families and checks, per point:
//
//   - LP-max, LP-ILP and LP-ILP+finalNPR bounds vs the limited-
//     preemptive simulator, in the donation-safe blocking mode
//     (rta.Config.DonationSafeBlocking): the simulator is eager and
//     work-conserving, and this harness is what discovered that the
//     paper-exact p_k = min(q_k, h_k) accounting is NOT sound against
//     eager core donation at DAG parallelism dips — see the pinned
//     reproducer in TestEagerDonationGapReproducer and the DESIGN.md
//     erratum. The paper-exact bounds stay covered by the static
//     dominance checks below;
//   - the FP-ideal bound vs a unit-split simulation: with every NPR cut
//     to length 1 all completions land on integer instants, so the
//     node-boundary scheduler degenerates to a discrete fully-preemptive
//     global FP scheduler — the model Equation (1) analyzes — while
//     volumes, longest paths and periods are unchanged;
//   - LP-ILP ≤ LP-max per task (tighter blocking must never hurt), and
//     the refined bound ≤ the plain bound.
//
// A violation is shrunk by greedy task removal to a minimized
// reproducer and dumped as JSON (WriteReproducer) so CI can archive it.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/ppp"
	"repro/internal/rta"
	"repro/internal/sim"
)

// SoundnessConfig parameterises a soundness sweep.
type SoundnessConfig struct {
	Seed   int64
	Points int // generated (task set, cores) points (default 500)
	// Ms is the core-count pool points draw from (default 2, 3, 4, 8).
	Ms []int
	// UFracMin/UFracMax bound the target utilization as a fraction of m
	// (default 0.3 .. 0.85): a mix of schedulable and overloaded points.
	UFracMin, UFracMax float64
	// Scenarios cycles through the generation families (default: all
	// standard families with WCETs capped at 25 so unit-split
	// simulations stay cheap).
	Scenarios []Scenario
	Backend   core.Backend
	// SimPeriods scales the simulation horizon: SimPeriods × the set's
	// largest period (default 4; the synchronous release at t=0 is the
	// classic worst-case-style scenario, so short horizons already bite).
	SimPeriods int
	// UnitSplitEvery runs the FP-ideal unit-split check on every k-th
	// point (default 1 = all points; raise to trade coverage for time).
	UnitSplitEvery int
	// Workers bounds the engine pool (0 = GOMAXPROCS).
	Workers int
	// MaxViolations caps the number of minimized reproducers collected
	// (default 8); counting continues past the cap.
	MaxViolations int
}

func (c SoundnessConfig) normalized() SoundnessConfig {
	if c.Points < 1 {
		c.Points = 500
	}
	if len(c.Ms) == 0 {
		c.Ms = []int{2, 3, 4, 8}
	}
	if c.UFracMin <= 0 {
		c.UFracMin = 0.3
	}
	if c.UFracMax < c.UFracMin {
		c.UFracMax = 0.85
		if c.UFracMax < c.UFracMin {
			c.UFracMax = c.UFracMin
		}
	}
	if len(c.Scenarios) == 0 {
		c.Scenarios = SoundnessScenarios()
	}
	if c.SimPeriods < 1 {
		c.SimPeriods = 4
	}
	if c.UnitSplitEvery < 1 {
		c.UnitSplitEvery = 1
	}
	if c.MaxViolations < 1 {
		c.MaxViolations = 8
	}
	return c
}

// SoundnessScenarios is the default family pool: the standard scenario
// registry re-parameterised with small WCETs (unit-splitting a node
// multiplies its simulation events by its WCET, so CMax 25 keeps the
// fully-preemptive oracle cheap).
func SoundnessScenarios() []Scenario {
	base := gen.DAGParams{PTerm: 0.4, PPar: 0.6, NPar: 4, MaxNodes: 16, MaxPathLen: 6, CMin: 1, CMax: 25}
	wide := gen.DAGParams{PTerm: 0.4, PPar: 0.6, NPar: 8, MaxNodes: 20, MaxPathLen: 5, CMin: 1, CMax: 25}
	deep := gen.DAGParams{PTerm: 0.4, PPar: 0.6, NPar: 2, MaxNodes: 24, MaxPathLen: 12, CMin: 1, CMax: 25}
	return []Scenario{
		{Name: "mixed", Group: gen.GroupMixed, DAG: &base},
		{Name: "parallel", Group: gen.GroupParallel, DAG: &base},
		{Name: "heavy", Group: gen.GroupMixed, Beta: 0.7, DAG: &base},
		{Name: "light", Group: gen.GroupMixed, Beta: 0.1, UMax: 0.35, DAG: &base},
		{Name: "wide", Group: gen.GroupParallel, Shape: gen.ShapeWide, DAG: &wide},
		{Name: "deep", Group: gen.GroupMixed, Shape: gen.ShapeDeep, DAG: &deep},
		{Name: "npr-fine", Group: gen.GroupMixed, NPRSplit: 5, DAG: &base},
		{Name: "npr-coarse", Group: gen.GroupMixed, NPRCoarsen: 60, DAG: &base},
	}
}

// SoundnessViolation is one analytical-bound violation, with the
// (minimized) reproducer attached.
type SoundnessViolation struct {
	Point     int             `json:"point"`
	Kind      string          `json:"kind"`
	Method    string          `json:"method"`
	Task      string          `json:"task"`
	TaskIndex int             `json:"task_index"`
	M         int             `json:"m"`
	U         float64         `json:"u"`
	Seed      int64           `json:"seed"`
	Scenario  string          `json:"scenario"`
	Bound     int64           `json:"bound_response"`
	Observed  int64           `json:"observed_response"`
	TaskSet   json.RawMessage `json:"taskset"`
}

func (v SoundnessViolation) String() string {
	return fmt.Sprintf("point %d (%s, m=%d, U=%.2f, seed %d): %s [%s] task %d (%s): bound %d, observed %d",
		v.Point, v.Scenario, v.M, v.U, v.Seed, v.Kind, v.Method, v.TaskIndex, v.Task, v.Bound, v.Observed)
}

// SoundnessReport aggregates a sweep.
type SoundnessReport struct {
	Points     int
	Analyses   int
	Sims       int
	Violations []SoundnessViolation // minimized, ≤ MaxViolations
	// TotalViolations counts every violating point, including ones past
	// the reproducer cap.
	TotalViolations int
}

// soundnessPoint is the deterministic derivation of one point.
type soundnessPoint struct {
	scenario Scenario
	m        int
	u        float64
	seed     int64
}

func derivePoint(cfg SoundnessConfig, p int) soundnessPoint {
	sc := cfg.Scenarios[p%len(cfg.Scenarios)]
	pick := rand.New(rand.NewSource(SeedFor(cfg.Seed, p, 1<<30)))
	m := cfg.Ms[pick.Intn(len(cfg.Ms))]
	frac := cfg.UFracMin + pick.Float64()*(cfg.UFracMax-cfg.UFracMin)
	return soundnessPoint{
		scenario: sc,
		m:        m,
		u:        frac * float64(m),
		seed:     SeedFor(cfg.Seed, p, 0),
	}
}

// boundCheckSet holds the analyses of one task set: the paper-exact
// variants (for the static dominance checks and the fully-preemptive
// FP-ideal oracle) and the donation-safe variants (for the eager
// limited-preemptive simulator).
type boundCheckSet struct {
	fp, lpMax, lpILP, refined         *rta.Result
	lpMaxSafe, lpILPSafe, refinedSafe *rta.Result
}

// soundnessAnalyses is the number of rta.Analyze calls per point.
const soundnessAnalyses = 7

func analyzeAll(ts *model.TaskSet, m int, be core.Backend) (boundCheckSet, error) {
	var out boundCheckSet
	for _, step := range []struct {
		dst **rta.Result
		cfg rta.Config
	}{
		{&out.fp, rta.Config{M: m, Method: rta.FPIdeal, Backend: be}},
		{&out.lpMax, rta.Config{M: m, Method: rta.LPMax, Backend: be}},
		{&out.lpILP, rta.Config{M: m, Method: rta.LPILP, Backend: be}},
		{&out.refined, rta.Config{M: m, Method: rta.LPILP, Backend: be, FinalNPRRefinement: true}},
		{&out.lpMaxSafe, rta.Config{M: m, Method: rta.LPMax, Backend: be, DonationSafeBlocking: true}},
		{&out.lpILPSafe, rta.Config{M: m, Method: rta.LPILP, Backend: be, DonationSafeBlocking: true}},
		{&out.refinedSafe, rta.Config{M: m, Method: rta.LPILP, Backend: be, FinalNPRRefinement: true, DonationSafeBlocking: true}},
	} {
		res, err := rta.Analyze(context.Background(), ts, step.cfg)
		if err != nil {
			return out, err
		}
		*step.dst = res
	}
	return out, nil
}

// unitSplit cuts every NPR to length 1, preserving volume, longest path,
// deadlines and periods: the fully-preemptive oracle's task system.
func unitSplit(ts *model.TaskSet) *model.TaskSet {
	tasks := make([]*model.Task, len(ts.Tasks))
	for i, t := range ts.Tasks {
		tasks[i] = &model.Task{Name: t.Name, G: ppp.SplitNodes(t.G, 1), Deadline: t.Deadline, Period: t.Period}
	}
	return &model.TaskSet{Tasks: tasks}
}

func maxPeriod(ts *model.TaskSet) int64 {
	var max int64
	for _, t := range ts.Tasks {
		if t.Period > max {
			max = t.Period
		}
	}
	return max
}

// checkSoundness runs every differential check on one task set and
// returns the violations (without reproducer JSON attached — the caller
// minimizes first). analyses/sims report the work done.
func checkSoundness(ts *model.TaskSet, m int, be core.Backend, simPeriods int, unitSplitCheck bool) (viols []SoundnessViolation, analyses, sims int, err error) {
	bounds, err := analyzeAll(ts, m, be)
	if err != nil {
		return nil, 0, 0, err
	}
	analyses = soundnessAnalyses

	add := func(kind, method string, k int, bound, observed int64) {
		viols = append(viols, SoundnessViolation{
			Kind: kind, Method: method, Task: ts.Tasks[k].Name, TaskIndex: k,
			M: m, Bound: bound, Observed: observed,
		})
	}

	// Static dominance checks: tighter analyses must never report larger
	// bounds (exact comparison in m-scaled units).
	for k := range ts.Tasks {
		ilp, max := bounds.lpILP.Tasks[k], bounds.lpMax.Tasks[k]
		if ilp.Analyzed && max.Analyzed {
			if max.Schedulable && !ilp.Schedulable {
				add("lp-ilp-rejects-lp-max-accepts", "LP-ILP", k, max.ResponseTimeM, ilp.ResponseTimeM)
			}
			if max.Schedulable && ilp.Schedulable && ilp.ResponseTimeM > max.ResponseTimeM {
				add("lp-ilp-exceeds-lp-max", "LP-ILP", k, max.ResponseTimeM, ilp.ResponseTimeM)
			}
		}
		ref, plain := bounds.refined.Tasks[k], bounds.lpILP.Tasks[k]
		if ref.Analyzed && plain.Analyzed {
			if plain.Schedulable && !ref.Schedulable {
				add("refined-rejects-plain-accepts", "LP-ILP+finalNPR", k, plain.ResponseTimeM, ref.ResponseTimeM)
			}
			if plain.Schedulable && ref.Schedulable && ref.ResponseTimeM > plain.ResponseTimeM {
				add("refined-exceeds-plain", "LP-ILP+finalNPR", k, plain.ResponseTimeM, ref.ResponseTimeM)
			}
		}
		// Donation-safe is pure extra pessimism: it must never beat the
		// paper-exact bound.
		safe, exact := bounds.lpILPSafe.Tasks[k], bounds.lpILP.Tasks[k]
		if safe.Analyzed && exact.Analyzed && safe.Schedulable && exact.Schedulable &&
			safe.ResponseTimeM < exact.ResponseTimeM {
			add("donation-safe-below-exact", "LP-ILP", k, exact.ResponseTimeM, safe.ResponseTimeM)
		}
	}

	// Limited-preemptive oracle vs the donation-safe LP bounds (the
	// paper-exact bounds are provably escapable by eager donation — see
	// the pinned reproducer test).
	horizon := int64(simPeriods) * maxPeriod(ts)
	if horizon < 1 {
		horizon = 1
	}
	sr, err := sim.Run(ts, sim.Config{M: m, Duration: horizon})
	if err != nil {
		return nil, analyses, 0, err
	}
	sims = 1
	for _, chk := range []struct {
		name string
		res  *rta.Result
	}{
		{"LP-max", bounds.lpMaxSafe},
		{"LP-ILP", bounds.lpILPSafe},
		{"LP-ILP+finalNPR", bounds.refinedSafe},
	} {
		for k, tr := range chk.res.Tasks {
			if tr.Analyzed && tr.Schedulable && sr.MaxResponse[k] > tr.ResponseTimeCeil(m) {
				add("sim-exceeds-bound", chk.name, k, tr.ResponseTimeCeil(m), sr.MaxResponse[k])
			}
		}
	}

	// Fully-preemptive oracle (unit-split) vs the FP-ideal bound.
	if unitSplitCheck {
		sru, err := sim.Run(unitSplit(ts), sim.Config{M: m, Duration: horizon})
		if err != nil {
			return nil, analyses, sims, err
		}
		sims++
		for k, tr := range bounds.fp.Tasks {
			if tr.Analyzed && tr.Schedulable && sru.MaxResponse[k] > tr.ResponseTimeCeil(m) {
				add("preemptive-sim-exceeds-fp-bound", "FP-ideal", k, tr.ResponseTimeCeil(m), sru.MaxResponse[k])
			}
		}
	}
	return viols, analyses, sims, nil
}

// minimizeSoundness greedily removes tasks while any violation remains,
// returning the smallest reproducer found and its violations. viols is
// the caller's (already computed) check result for ts — when empty the
// check is (re)run, so passing nil gives standalone behaviour.
func minimizeSoundness(ts *model.TaskSet, m int, be core.Backend, simPeriods int, unitSplitCheck bool, viols []SoundnessViolation) (*model.TaskSet, []SoundnessViolation) {
	cur, curViols := ts, viols
	if len(curViols) == 0 {
		var err error
		curViols, _, _, err = checkSoundness(cur, m, be, simPeriods, unitSplitCheck)
		if err != nil || len(curViols) == 0 {
			return cur, curViols
		}
	}
	for {
		shrunk := false
		for i := 0; i < len(cur.Tasks) && len(cur.Tasks) > 1; i++ {
			cand := &model.TaskSet{Tasks: make([]*model.Task, 0, len(cur.Tasks)-1)}
			cand.Tasks = append(cand.Tasks, cur.Tasks[:i]...)
			cand.Tasks = append(cand.Tasks, cur.Tasks[i+1:]...)
			v, _, _, err := checkSoundness(cand, m, be, simPeriods, unitSplitCheck)
			if err == nil && len(v) > 0 {
				cur, curViols = cand, v
				shrunk = true
				break
			}
		}
		if !shrunk {
			return cur, curViols
		}
	}
}

// RunSoundness sweeps cfg.Points generated points over the engine pool
// and returns the aggregated report. Points, analyses and verdicts are
// deterministic in cfg; only scheduling order varies with workers.
func RunSoundness(cfg SoundnessConfig) (*SoundnessReport, error) {
	cfg = cfg.normalized()
	eng := engine.New(engine.Config{Workers: cfg.Workers, CacheEntries: -1})
	defer eng.Close()

	type pointOut struct {
		analyses, sims int
		viols          []SoundnessViolation
		err            error
	}
	out := make(chan pointOut)
	shards := PlanShards(cfg.Points, 4*eng.Workers())
	for _, shard := range shards {
		go func(idxs []int) {
			for _, p := range idxs {
				pt := derivePoint(cfg, p)
				v, err := eng.Submit(context.Background(), engine.JobSweep, func(context.Context) (any, error) {
					po := pointOut{}
					ts := pt.scenario.TaskSet(pt.seed, pt.u)
					unit := p%cfg.UnitSplitEvery == 0
					viols, analyses, sims, err := checkSoundness(ts, pt.m, cfg.Backend, cfg.SimPeriods, unit)
					po.analyses, po.sims = analyses, sims
					if err != nil {
						return po, err
					}
					if len(viols) > 0 {
						// Shrink and attach the reproducer.
						minTS, minViols := minimizeSoundness(ts, pt.m, cfg.Backend, cfg.SimPeriods, unit, viols)
						if len(minViols) == 0 { // flaky shrink guard: keep the original
							minTS, minViols = ts, viols
						}
						raw, jerr := minTS.MarshalJSON()
						if jerr != nil {
							return po, jerr
						}
						for i := range minViols {
							minViols[i].Point = p
							minViols[i].U = pt.u
							minViols[i].Seed = pt.seed
							minViols[i].Scenario = pt.scenario.Name
							minViols[i].TaskSet = raw
						}
						po.viols = minViols
					}
					return po, nil
				})
				po, _ := v.(pointOut)
				if err != nil {
					po.err = err
				}
				out <- po
			}
		}(shard)
	}

	rep := &SoundnessReport{Points: cfg.Points}
	var firstErr error
	for i := 0; i < cfg.Points; i++ {
		po := <-out
		if po.err != nil && firstErr == nil {
			firstErr = po.err
		}
		rep.Analyses += po.analyses
		rep.Sims += po.sims
		if len(po.viols) > 0 {
			rep.TotalViolations += len(po.viols)
			rep.Violations = append(rep.Violations, po.viols...)
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	// Deterministic report order regardless of completion order, then
	// apply the reproducer cap.
	sort.Slice(rep.Violations, func(i, j int) bool {
		a, b := rep.Violations[i], rep.Violations[j]
		if a.Point != b.Point {
			return a.Point < b.Point
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.TaskIndex < b.TaskIndex
	})
	if len(rep.Violations) > cfg.MaxViolations {
		rep.Violations = rep.Violations[:cfg.MaxViolations]
	}
	return rep, nil
}

// WriteReproducer dumps one minimized violation as an indented JSON file
// under dir (created if needed) and returns the file path.
func WriteReproducer(dir string, v SoundnessViolation) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("soundness-repro-p%d-t%d-%s.json", v.Point, v.TaskIndex, v.Kind))
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

package experiments

import (
	"testing"
	"time"
)

// TestTimingPaperILPGrowth measures the paper-faithful ILP backend at
// m = 2 and m = 4. Larger core counts explode exactly as the paper's
// CPLEX figures suggest — a one-off measurement on this hardware gave
// 0.74 s/set at m = 4, 104 s/set at m = 8 and over 30 minutes at m = 16
// (aborted), against the paper's 0.45 s / 4.75 s / 43 min — so the
// checked-in test stays at the cheap end; EXPERIMENTS.md records the
// full progression. The growth with m must be visible even here.
func TestTimingPaperILPGrowth(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := Timing(TimingConfig{Ms: []int{2, 4}, Sets: 2, Seed: 2016, Backend: 1 /* PaperILP */})
	if len(res) != 2 {
		t.Fatalf("got %d results", len(res))
	}
	t.Logf("paper-ILP backend: m=2 %v/set, m=4 %v/set", res[0].AvgPerSet, res[1].AvgPerSet)
	if res[1].AvgPerSet < res[0].AvgPerSet {
		t.Errorf("expected runtime growth with m: %v -> %v", res[0].AvgPerSet, res[1].AvgPerSet)
	}
	if res[0].AvgPerSet <= 0 || res[1].AvgPerSet > 5*time.Minute {
		t.Errorf("timings out of expected range: %+v", res)
	}
}

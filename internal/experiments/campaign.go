package experiments

// The parallel sharded campaign orchestrator: sweeps a grid of
// (scenario, cores, utilization) points over the engine worker pool.
//
// A campaign is split into deterministic shards — stripes of the point
// grid — and each shard submits its points as engine jobs, so the
// concurrency is the engine's worker count while every analysis of a
// campaign shares one content-addressed blocking-term cache. Each task
// set's RNG seed derives from (campaign seed, point index, set index)
// alone (see seed.go), so campaign output is bit-identical regardless of
// shard count and worker count; the streaming emitter reorders finished
// points back into index order before writing, which keeps the JSONL and
// CSV streams byte-stable too.

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/engine/cache"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/ppp"
)

// Scenario is one task-population family of a campaign: the generator
// knobs plus optional preemption-point transforms. The zero value is the
// paper's mixed population.
type Scenario struct {
	// Name labels the family in results ("mixed", "wide", …). Must be
	// non-empty and match [A-Za-z0-9._-]+ so the CSV stream stays
	// delimiter-free.
	Name string `json:"name"`
	// Group selects the base population (Section VI-A).
	Group gen.Group `json:"group"`
	// Shape overrides the DAG structure (gen.ShapeWide / gen.ShapeDeep).
	Shape gen.Shape `json:"shape,omitempty"`
	// Beta / UMax bound the per-task utilization draw (0 = paper
	// defaults 0.5 / 1). Heavy mixes push Beta up; light mixes pull
	// UMax down.
	Beta float64 `json:"beta,omitempty"`
	UMax float64 `json:"umax,omitempty"`
	// SeqProb overrides the mixed population's sequential-task
	// probability (0 = default 0.5).
	SeqProb float64 `json:"seqprob,omitempty"`
	// NPRSplit, when > 0, caps every NPR at this length by splitting
	// long nodes (ppp.SplitNodes) after generation: the fine-grained
	// end of the preemption-point granularity sweep.
	NPRSplit int64 `json:"npr_split,omitempty"`
	// NPRCoarsen, when > 0, merges linear runs up to this length
	// (ppp.CoarsenChains): the coarse-grained end.
	NPRCoarsen int64 `json:"npr_coarsen,omitempty"`
	// Tasks fixes the set size (0 = add tasks until the target
	// utilization is reached).
	Tasks int `json:"tasks,omitempty"`
	// DAG overrides the fork-join expansion parameters (nil = the
	// paper's Section VI-A values, adjusted by Shape presets).
	DAG *gen.DAGParams `json:"dag,omitempty"`
}

// Params resolves the scenario to generator parameters.
func (s Scenario) Params() gen.Params {
	p := gen.PaperParams(s.Group)
	if s.DAG != nil {
		p.DAG = *s.DAG
	}
	p.Shape = s.Shape
	if s.Beta > 0 {
		p.Beta = s.Beta
	}
	if s.UMax > 0 {
		p.UMax = s.UMax
	}
	if s.SeqProb > 0 {
		p.SeqProb = s.SeqProb
	}
	return p
}

// TaskSet generates the scenario's task set for one seed and target
// utilization, applying the preemption-point transforms when configured.
func (s Scenario) TaskSet(seed int64, targetU float64) *model.TaskSet {
	g := gen.New(seed, s.Params())
	var ts *model.TaskSet
	if s.Tasks > 0 {
		ts = g.TaskSetN(s.Tasks, targetU)
	} else {
		ts = g.TaskSet(targetU)
	}
	if s.NPRSplit > 0 || s.NPRCoarsen > 0 {
		tasks := make([]*model.Task, len(ts.Tasks))
		for i, t := range ts.Tasks {
			graph := t.G
			if s.NPRSplit > 0 {
				graph = ppp.SplitNodes(graph, s.NPRSplit)
			}
			if s.NPRCoarsen > 0 {
				graph = ppp.CoarsenChains(graph, s.NPRCoarsen)
			}
			tasks[i] = &model.Task{Name: t.Name, G: graph, Deadline: t.Deadline, Period: t.Period}
		}
		ts = &model.TaskSet{Tasks: tasks}
	}
	return ts
}

// validName reports whether a scenario name is safe for the CSV stream.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// StandardScenarios is the named scenario registry: the paper's two
// populations plus the extended families of this reproduction.
func StandardScenarios() []Scenario {
	return []Scenario{
		{Name: "mixed", Group: gen.GroupMixed},
		{Name: "parallel", Group: gen.GroupParallel},
		{Name: "heavy", Group: gen.GroupMixed, Beta: 0.7},
		{Name: "light", Group: gen.GroupMixed, Beta: 0.05, UMax: 0.3},
		{Name: "wide", Group: gen.GroupParallel, Shape: gen.ShapeWide,
			DAG: &gen.DAGParams{PTerm: 0.4, PPar: 0.6, NPar: 12, MaxNodes: 40, MaxPathLen: 5, CMin: 1, CMax: 100}},
		{Name: "deep", Group: gen.GroupMixed, Shape: gen.ShapeDeep,
			DAG: &gen.DAGParams{PTerm: 0.4, PPar: 0.6, NPar: 2, MaxNodes: 40, MaxPathLen: 15, CMin: 1, CMax: 100}},
		{Name: "npr-fine", Group: gen.GroupMixed, NPRSplit: 10},
		{Name: "npr-coarse", Group: gen.GroupMixed, NPRCoarsen: 200},
		// openmp is the blocked-LU wavefront family (ROADMAP 4(c)):
		// OpenMP4 depend-clause DAGs whose parallelism drains toward a
		// sequential tail — up to 8 blocks (36 nodes, path 15).
		{Name: "openmp", Group: gen.GroupParallel, Shape: gen.ShapeOpenMP,
			DAG: &gen.DAGParams{PTerm: 0.4, PPar: 0.6, NPar: 6, MaxNodes: 38, MaxPathLen: 15, CMin: 1, CMax: 100}},
	}
}

// ScenarioByName resolves a registry name.
func ScenarioByName(name string) (Scenario, error) {
	for _, s := range StandardScenarios() {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("experiments: unknown scenario %q", name)
}

// CampaignConfig describes a full sweep campaign: the cartesian grid
// Scenarios × Ms × UFracs, with SetsPerPoint task sets per point.
type CampaignConfig struct {
	Seed         int64
	Ms           []int     // core counts (default 4, 8, 16)
	UFracs       []float64 // target utilization as a fraction of m (default 0.1..0.9)
	SetsPerPoint int       // task sets per grid point (default 25)
	Scenarios    []Scenario
	Methods      []core.Method // analysis methods (default all three)
	Backend      core.Backend
	// Workers sizes the engine the campaign creates when RunOptions
	// does not supply one (0 = GOMAXPROCS).
	Workers int
	// Shards is the number of work stripes the point grid is cut into
	// (0 = 4× workers, capped at the point count). Sharding never
	// affects results, only load balance.
	Shards int
}

// normalized fills defaults and validates; it returns a copy.
func (c CampaignConfig) normalized() (CampaignConfig, error) {
	if len(c.Ms) == 0 {
		c.Ms = []int{4, 8, 16}
	}
	for _, m := range c.Ms {
		if m < 1 {
			return c, fmt.Errorf("experiments: core count %d < 1", m)
		}
	}
	if len(c.UFracs) == 0 {
		c.UFracs = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	}
	for _, f := range c.UFracs {
		if f <= 0 || math.IsNaN(f) || math.IsInf(f, 0) {
			return c, fmt.Errorf("experiments: utilization fraction %v not positive finite", f)
		}
	}
	if c.SetsPerPoint < 1 {
		c.SetsPerPoint = 25
	}
	if len(c.Scenarios) == 0 {
		c.Scenarios = []Scenario{{Name: "mixed", Group: gen.GroupMixed}}
	}
	for _, s := range c.Scenarios {
		if !validName(s.Name) {
			return c, fmt.Errorf("experiments: scenario name %q invalid (want [A-Za-z0-9._-]+)", s.Name)
		}
	}
	if len(c.Methods) == 0 {
		c.Methods = core.Methods()
	}
	return c, nil
}

// Point is one grid point of a campaign.
type Point struct {
	Index    int
	Scenario Scenario
	M        int
	U        float64 // absolute target utilization (frac · m)
}

// Points enumerates the campaign grid in deterministic index order:
// scenarios outermost, then core counts, then utilization fractions.
func (c CampaignConfig) Points() ([]Point, error) {
	cfg, err := c.normalized()
	if err != nil {
		return nil, err
	}
	pts := make([]Point, 0, len(cfg.Scenarios)*len(cfg.Ms)*len(cfg.UFracs))
	for _, sc := range cfg.Scenarios {
		for _, m := range cfg.Ms {
			for _, f := range cfg.UFracs {
				u := math.Round(f*float64(m)*1e6) / 1e6
				pts = append(pts, Point{Index: len(pts), Scenario: sc, M: m, U: u})
			}
		}
	}
	return pts, nil
}

// PlanShards partitions the point indices 0..points-1 into at most
// shards stripes: shard s holds indices s, s+S, s+2S, … Striping
// interleaves the cheap low-utilization points with the expensive
// high-utilization ones, so shards are naturally load-balanced. The
// result is always a partition: every index appears in exactly one
// shard, and empty shards are dropped.
func PlanShards(points, shards int) [][]int {
	if points <= 0 {
		return nil
	}
	if shards < 1 {
		shards = 1
	}
	if shards > points {
		shards = points
	}
	out := make([][]int, shards)
	for s := range out {
		for i := s; i < points; i += shards {
			out[s] = append(out[s], i)
		}
	}
	return out
}

// PointResult is the outcome at one grid point: the schedulable count
// per method over the point's task sets. All fields are deterministic in
// (campaign config, campaign seed) — wall-clock measurements live in the
// progress stream, never here, so result streams are byte-stable.
type PointResult struct {
	Index    int            `json:"index"`
	Scenario string         `json:"scenario"`
	M        int            `json:"m"`
	U        float64        `json:"u"`
	Sets     int            `json:"sets"`
	Sched    map[string]int `json:"sched"`
}

// Pct returns a method's schedulable percentage.
func (r PointResult) Pct(method string) float64 {
	if r.Sets == 0 {
		return 0
	}
	return 100 * float64(r.Sched[method]) / float64(r.Sets)
}

// Progress reports incremental campaign completion (points done, not
// byte output): Done is monotone, ETA a linear extrapolation.
type Progress struct {
	Done    int
	Total   int
	Elapsed time.Duration
	ETA     time.Duration
}

// RunOptions control campaign execution and streaming.
type RunOptions struct {
	// Context cancels the campaign (nil = background).
	Context context.Context
	// Engine runs the point jobs; when nil the campaign starts its own
	// with CampaignConfig.Workers workers and closes it on return. The
	// engine's cache is the campaign-wide blocking-term memo.
	Engine *engine.Engine
	// JSONL, when non-nil, receives one compact JSON PointResult per
	// line, in point-index order, as points complete.
	JSONL io.Writer
	// CSV, when non-nil, receives the header and one row per point, in
	// point-index order, as points complete.
	CSV io.Writer
	// OnProgress, when non-nil, is called after every completed point.
	OnProgress func(Progress)
	// OnResult, when non-nil, receives every result in point-index order
	// before the JSONL/CSV writers see it; a returned error latches like
	// a stream write error and aborts emission. This is how the cluster
	// worker streams binary result frames without re-encoding JSON.
	OnResult func(PointResult) error
	// Obs, when non-nil, publishes the same progress as the
	// lpdag_campaign_* series (points planned/done, ETA, cumulative
	// completed counter) so the run is watchable from /metrics.
	Obs *obs.Registry
	// Completed carries results of a previous (partial) run of the SAME
	// campaign, e.g. re-read from its JSONL stream with
	// ReadCampaignJSONL: points whose index appears here are emitted
	// verbatim instead of recomputed, which is the resume mechanism.
	// Because every point is deterministic in (seed, index), the
	// resumed output is byte-identical to an uninterrupted run.
	Completed []PointResult
}

// CheckResult validates one carried-over or remotely computed result
// against the campaign grid: its index must name a point of THIS grid
// and the point metadata must match. Resuming with a different
// campaign's file (or accepting a confused cluster worker's stream)
// would otherwise silently emit stale foreign points as this campaign's
// output.
func CheckResult(cfg CampaignConfig, points []Point, pr PointResult) error {
	ncfg, err := cfg.normalized()
	if err != nil {
		return err
	}
	if pr.Index < 0 || pr.Index >= len(points) {
		return fmt.Errorf("experiments: point index %d outside this campaign's grid (%d points)", pr.Index, len(points))
	}
	pt := points[pr.Index]
	if pr.Scenario != pt.Scenario.Name || pr.M != pt.M || pr.U != pt.U || pr.Sets != ncfg.SetsPerPoint {
		return fmt.Errorf("experiments: point %d is (%s, m=%d, u=%v, sets=%d) in the carried data but (%s, m=%d, u=%v, sets=%d) in this campaign — wrong file or changed config",
			pr.Index, pr.Scenario, pr.M, pr.U, pr.Sets, pt.Scenario.Name, pt.M, pt.U, ncfg.SetsPerPoint)
	}
	return nil
}

// PrepareResume validates carried-over results against the campaign
// grid and slots them: results[i] / ready[i] hold the carried outcome of
// point i where one exists. Shared by RunCampaign's -resume path and the
// cluster coordinator (internal/experiments/cluster).
func PrepareResume(cfg CampaignConfig, points []Point, completed []PointResult) ([]PointResult, []bool, error) {
	results := make([]PointResult, len(points))
	ready := make([]bool, len(points))
	for _, pr := range completed {
		if err := CheckResult(cfg, points, pr); err != nil {
			return nil, nil, fmt.Errorf("resume: %w", err)
		}
		if !ready[pr.Index] {
			results[pr.Index] = pr
			ready[pr.Index] = true
		}
	}
	return results, ready, nil
}

// RunCampaign executes the campaign and returns the per-point results in
// index order. Results stream to the writers incrementally; the returned
// slice is the same data (campaign grids are small — memory pressure is
// in the per-set analyses, which are never accumulated).
func RunCampaign(cfg CampaignConfig, opts RunOptions) ([]PointResult, error) {
	ncfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	points, err := ncfg.Points()
	if err != nil {
		return nil, err
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	eng := opts.Engine
	if eng == nil {
		eng = engine.New(engine.Config{Workers: ncfg.Workers})
		defer eng.Close()
	}
	memo := eng.Cache()

	results, ready, err := PrepareResume(ncfg, points, opts.Completed)
	if err != nil {
		return nil, err
	}
	var remaining []int
	for i := range points {
		if !ready[i] {
			remaining = append(remaining, i)
		}
	}

	shardCount := ncfg.Shards
	if shardCount <= 0 {
		shardCount = 4 * eng.Workers()
	}
	type pointDone struct {
		idx int
		res PointResult
		err error
	}
	done := make(chan pointDone)
	for _, shard := range PlanShards(len(remaining), shardCount) {
		go func(positions []int) {
			for _, p := range positions {
				i := remaining[p]
				pt := points[i]
				v, err := eng.Submit(ctx, engine.JobSweep, func(jobCtx context.Context) (any, error) {
					return runCampaignPoint(jobCtx, ncfg, pt, memo)
				})
				d := pointDone{idx: i, err: err}
				if err == nil {
					d.res = v.(PointResult)
				}
				done <- d
			}
		}(shard)
	}

	var (
		next    = 0
		start   = time.Now()
		emitter = NewStreamEmitter(opts.JSONL, opts.CSV, methodNames(ncfg.Methods))
	)
	emitter.OnResult(opts.OnResult)
	emitFrontier := func() {
		for next < len(points) && ready[next] {
			emitter.Emit(results[next])
			next++
		}
	}
	emitFrontier() // resumed prefix, if any
	var firstErr error
	doneBase := len(points) - len(remaining)
	metrics := NewCampaignMetrics(opts.Obs)
	metrics.Start(len(points), doneBase)
	for completed := 0; completed < len(remaining); completed++ {
		d := <-done
		if d.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("experiments: point %d: %w", d.idx, d.err)
			}
			continue
		}
		results[d.idx] = d.res
		ready[d.idx] = true
		emitFrontier()
		if opts.OnProgress != nil || metrics != nil {
			elapsed := time.Since(start)
			p := Progress{Done: doneBase + completed + 1, Total: len(points), Elapsed: elapsed}
			if rem := p.Total - p.Done; rem > 0 && completed+1 > 0 {
				p.ETA = time.Duration(float64(elapsed) / float64(completed+1) * float64(rem))
			}
			metrics.Observe(p)
			if opts.OnProgress != nil {
				opts.OnProgress(p)
			}
		}
	}
	if firstErr == nil {
		firstErr = emitter.Err()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// StreamEmitter writes point results to optional JSONL and CSV sinks,
// emitting the CSV header lazily and latching the first write error.
// Shared by RunCampaign, RunCampaignSubset, and the cluster coordinator
// (internal/experiments/cluster), so local, worker, and merged cluster
// byte streams all come from the same code path. The encode scratch is
// part of the emitter, so a whole campaign stream reuses one buffer.
type StreamEmitter struct {
	jsonl, csv io.Writer
	names      []string
	onResult   func(PointResult) error
	enc        encState
	csvOnce    bool
	err        error
}

// NewStreamEmitter builds an emitter over the given sinks (either may
// be nil); names are the CSV method columns (CampaignConfig.MethodNames).
func NewStreamEmitter(jsonl, csv io.Writer, names []string) *StreamEmitter {
	return &StreamEmitter{jsonl: jsonl, csv: csv, names: names}
}

// OnResult registers a hook that receives every result in emission
// order, before the writers; its error latches like a write error
// (RunOptions.OnResult).
func (e *StreamEmitter) OnResult(fn func(PointResult) error) { e.onResult = fn }

// Emit writes one result; after the first write error it is a no-op.
func (e *StreamEmitter) Emit(r PointResult) {
	if e.err != nil {
		return
	}
	if e.onResult != nil {
		if err := e.onResult(r); err != nil {
			e.err = err
			return
		}
	}
	if e.jsonl != nil {
		buf, err := e.enc.appendPointResult(e.enc.buf[:0], r)
		e.enc.buf = buf
		if err == nil {
			_, err = e.jsonl.Write(buf)
		}
		if err != nil {
			e.err = err
			return
		}
	}
	if e.csv != nil {
		if !e.csvOnce {
			if _, err := io.WriteString(e.csv, campaignCSVHeaderNames(e.names)); err != nil {
				e.err = err
				return
			}
			e.csvOnce = true
		}
		e.enc.buf = appendCampaignCSVRow(e.enc.buf[:0], r, e.names)
		if _, err := e.csv.Write(e.enc.buf); err != nil {
			e.err = err
		}
	}
}

// Err returns the latched first write error, if any.
func (e *StreamEmitter) Err() error { return e.err }

// MethodNames returns the campaign's method column names after
// normalization (the default method set when none are configured).
func (c CampaignConfig) MethodNames() []string {
	ncfg, err := c.normalized()
	if err != nil {
		return methodNames(c.Methods)
	}
	return methodNames(ncfg.Methods)
}

// RunCampaignSubset computes just the given grid points of a campaign:
// the worker half of the cluster shard protocol (the coordinator leases
// index subsets to remote workers, each of which calls this). Indices
// must be strictly increasing and inside the grid. Results stream to the
// writers in that order; because every point is deterministic in
// (campaign seed, index), the emitted lines are byte-identical to the
// corresponding lines of a full local run.
func RunCampaignSubset(cfg CampaignConfig, indices []int, opts RunOptions) ([]PointResult, error) {
	ncfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	points, err := ncfg.Points()
	if err != nil {
		return nil, err
	}
	for i, idx := range indices {
		if idx < 0 || idx >= len(points) {
			return nil, fmt.Errorf("experiments: subset: point index %d outside this campaign's grid (%d points)", idx, len(points))
		}
		if i > 0 && idx <= indices[i-1] {
			return nil, fmt.Errorf("experiments: subset: indices must be strictly increasing (%d after %d)", idx, indices[i-1])
		}
	}
	if len(indices) == 0 {
		return nil, nil
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	eng := opts.Engine
	if eng == nil {
		eng = engine.New(engine.Config{Workers: ncfg.Workers})
		defer eng.Close()
	}
	memo := eng.Cache()

	results := make([]PointResult, len(indices))
	ready := make([]bool, len(indices))
	type pointDone struct {
		pos int
		res PointResult
		err error
	}
	done := make(chan pointDone)
	shardCount := ncfg.Shards
	if shardCount <= 0 {
		shardCount = 4 * eng.Workers()
	}
	for _, shard := range PlanShards(len(indices), shardCount) {
		go func(positions []int) {
			for _, p := range positions {
				pt := points[indices[p]]
				v, err := eng.Submit(ctx, engine.JobSweep, func(jobCtx context.Context) (any, error) {
					return runCampaignPoint(jobCtx, ncfg, pt, memo)
				})
				d := pointDone{pos: p, err: err}
				if err == nil {
					d.res = v.(PointResult)
				}
				done <- d
			}
		}(shard)
	}

	var (
		next     = 0
		start    = time.Now()
		firstErr error
		emitter  = NewStreamEmitter(opts.JSONL, opts.CSV, methodNames(ncfg.Methods))
	)
	emitter.OnResult(opts.OnResult)
	metrics := NewCampaignMetrics(opts.Obs)
	metrics.Start(len(indices), 0)
	for completed := 0; completed < len(indices); completed++ {
		d := <-done
		if d.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("experiments: point %d: %w", indices[d.pos], d.err)
			}
			continue
		}
		results[d.pos] = d.res
		ready[d.pos] = true
		for next < len(indices) && ready[next] {
			emitter.Emit(results[next])
			next++
		}
		if opts.OnProgress != nil || metrics != nil {
			elapsed := time.Since(start)
			p := Progress{Done: completed + 1, Total: len(indices), Elapsed: elapsed}
			if rem := p.Total - p.Done; rem > 0 {
				p.ETA = time.Duration(float64(elapsed) / float64(completed+1) * float64(rem))
			}
			metrics.Observe(p)
			if opts.OnProgress != nil {
				opts.OnProgress(p)
			}
		}
	}
	if firstErr == nil {
		firstErr = emitter.Err()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// runCampaignPoint generates and analyzes the task sets of one grid
// point. It runs inside an engine worker, so the analyses execute inline
// (submitting nested jobs from a job would deadlock the pool) against
// the campaign-shared cache. The sets are generated once and each method
// analyzes them as one ScheduleBatch, so the whole point reuses a single
// warm rta scratch state per method — the sweep-side half of the
// "one analyzer per worker" reuse story.
func runCampaignPoint(ctx context.Context, cfg CampaignConfig, pt Point, memo *cache.Cache) (PointResult, error) {
	res := PointResult{
		Index:    pt.Index,
		Scenario: pt.Scenario.Name,
		M:        pt.M,
		U:        pt.U,
		Sets:     cfg.SetsPerPoint,
		Sched:    make(map[string]int, len(cfg.Methods)),
	}
	sets := make([]*model.TaskSet, cfg.SetsPerPoint)
	for si := range sets {
		sets[si] = pt.Scenario.TaskSet(SeedFor(cfg.Seed, pt.Index, si), pt.U)
	}
	for _, method := range cfg.Methods {
		a, err := core.New(core.Options{Cores: pt.M, Method: method, Backend: cfg.Backend, Cache: memo})
		if err != nil {
			return res, err
		}
		verdicts, err := a.ScheduleBatch(ctx, sets)
		if err != nil {
			return res, fmt.Errorf("point %d method %v: %w", pt.Index, method, err)
		}
		n := 0
		for _, ok := range verdicts {
			if ok {
				n++
			}
		}
		res.Sched[method.String()] = n
	}
	return res, nil
}

// methodNames renders a method list for CSV headers.
func methodNames(methods []core.Method) []string {
	out := make([]string, len(methods))
	for i, m := range methods {
		out[i] = m.String()
	}
	return out
}

package experiments

// Streaming result codecs: JSON-lines and CSV forms of PointResult.
//
// Both codecs are canonical after one decode/encode cycle: for any bytes
// the reader accepts, encode(decode(x)) is a fixed point — re-decoding
// and re-encoding it reproduces the same bytes. The fuzz targets in
// fuzz_test.go enforce this, and the resumable-campaign workflow rests
// on it (a campaign's JSONL prefix re-read from disk feeds
// RunOptions.Completed verbatim).

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePointResult writes one result as a compact JSON line.
func WritePointResult(w io.Writer, r PointResult) error {
	data, err := json.Marshal(r)
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// CampaignJSONL renders results as one JSON object per line.
func CampaignJSONL(results []PointResult) (string, error) {
	var b strings.Builder
	for _, r := range results {
		if err := WritePointResult(&b, r); err != nil {
			return "", err
		}
	}
	return b.String(), nil
}

// ReadCampaignJSONL decodes a JSON-lines result stream. Blank lines are
// permitted (and not round-tripped); any other malformed line is an
// error. Sched counts must be non-negative and U finite, so every
// accepted stream re-encodes canonically.
func ReadCampaignJSONL(r io.Reader) ([]PointResult, error) {
	var out []PointResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var pr PointResult
		dec := json.NewDecoder(bytes.NewReader(raw))
		if err := dec.Decode(&pr); err != nil {
			return nil, fmt.Errorf("experiments: jsonl line %d: %w", line, err)
		}
		if dec.More() {
			return nil, fmt.Errorf("experiments: jsonl line %d: trailing data", line)
		}
		if math.IsNaN(pr.U) || math.IsInf(pr.U, 0) {
			return nil, fmt.Errorf("experiments: jsonl line %d: non-finite u", line)
		}
		out = append(out, pr)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// csvFixedHeader is the leading column set of the campaign CSV; method
// columns follow.
const csvFixedHeader = "index,scenario,m,u,sets"

// campaignCSVHeaderNames renders the header row for method-name columns.
func campaignCSVHeaderNames(methods []string) string {
	return csvFixedHeader + "," + strings.Join(methods, ",") + "\n"
}

// campaignCSVRowNames renders one result row under the given method
// columns (methods absent from the result render as 0).
func campaignCSVRowNames(r PointResult, methods []string) string {
	var b strings.Builder
	b.WriteString(strconv.Itoa(r.Index))
	b.WriteByte(',')
	b.WriteString(r.Scenario)
	b.WriteByte(',')
	b.WriteString(strconv.Itoa(r.M))
	b.WriteByte(',')
	b.WriteString(strconv.FormatFloat(r.U, 'g', -1, 64))
	b.WriteByte(',')
	b.WriteString(strconv.Itoa(r.Sets))
	for _, m := range methods {
		b.WriteByte(',')
		b.WriteString(strconv.Itoa(r.Sched[m]))
	}
	b.WriteByte('\n')
	return b.String()
}

// CampaignCSV renders results as CSV with one column per method name.
func CampaignCSV(results []PointResult, methods []string) string {
	var b strings.Builder
	b.WriteString(campaignCSVHeaderNames(methods))
	for _, r := range results {
		b.WriteString(campaignCSVRowNames(r, methods))
	}
	return b.String()
}

// ParseCampaignCSV decodes a campaign CSV stream, returning the results
// and the method column names. It is strict about structure — header
// prefix, column counts, integer and finite-float fields, [A-Za-z0-9._-]
// scenario and method names, no duplicate method columns — so that every
// accepted stream round-trips through CampaignCSV canonically. Sched
// maps hold exactly the method columns.
func ParseCampaignCSV(data string) ([]PointResult, []string, error) {
	sc := bufio.NewScanner(strings.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		return nil, nil, fmt.Errorf("experiments: csv: empty input")
	}
	header := sc.Text()
	if !strings.HasPrefix(header, csvFixedHeader+",") {
		return nil, nil, fmt.Errorf("experiments: csv: bad header %q", header)
	}
	methods := strings.Split(header[len(csvFixedHeader)+1:], ",")
	seen := make(map[string]bool, len(methods))
	for _, m := range methods {
		if !validName(m) {
			return nil, nil, fmt.Errorf("experiments: csv: bad method column %q", m)
		}
		if seen[m] {
			return nil, nil, fmt.Errorf("experiments: csv: duplicate method column %q", m)
		}
		seen[m] = true
	}
	var out []PointResult
	line := 1
	for sc.Scan() {
		line++
		row := sc.Text()
		if row == "" {
			continue
		}
		fields := strings.Split(row, ",")
		if len(fields) != 5+len(methods) {
			return nil, nil, fmt.Errorf("experiments: csv line %d: %d fields, want %d", line, len(fields), 5+len(methods))
		}
		var (
			r   PointResult
			err error
		)
		if r.Index, err = strconv.Atoi(fields[0]); err != nil {
			return nil, nil, fmt.Errorf("experiments: csv line %d: index: %w", line, err)
		}
		if !validName(fields[1]) {
			return nil, nil, fmt.Errorf("experiments: csv line %d: bad scenario %q", line, fields[1])
		}
		r.Scenario = fields[1]
		if r.M, err = strconv.Atoi(fields[2]); err != nil {
			return nil, nil, fmt.Errorf("experiments: csv line %d: m: %w", line, err)
		}
		if r.U, err = strconv.ParseFloat(fields[3], 64); err != nil {
			return nil, nil, fmt.Errorf("experiments: csv line %d: u: %w", line, err)
		}
		if math.IsNaN(r.U) || math.IsInf(r.U, 0) {
			return nil, nil, fmt.Errorf("experiments: csv line %d: non-finite u", line)
		}
		if r.Sets, err = strconv.Atoi(fields[4]); err != nil {
			return nil, nil, fmt.Errorf("experiments: csv line %d: sets: %w", line, err)
		}
		r.Sched = make(map[string]int, len(methods))
		for i, m := range methods {
			if r.Sched[m], err = strconv.Atoi(fields[5+i]); err != nil {
				return nil, nil, fmt.Errorf("experiments: csv line %d: %s: %w", line, m, err)
			}
		}
		out = append(out, r)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return out, methods, nil
}

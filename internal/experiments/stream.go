package experiments

// Streaming result codecs: JSON-lines and CSV forms of PointResult.
//
// Both codecs are canonical after one decode/encode cycle: for any bytes
// the reader accepts, encode(decode(x)) is a fixed point — re-decoding
// and re-encoding it reproduces the same bytes. The fuzz targets in
// fuzz_test.go enforce this, and the resumable-campaign workflow rests
// on it (a campaign's JSONL prefix re-read from disk feeds
// RunOptions.Completed verbatim).
//
// The JSONL encoder is hand-rolled rather than json.Marshal: PointResult
// is flat and a campaign emits one line per grid point, so the encoder
// appends into a caller-owned (or pooled) buffer and allocates nothing
// in steady state. Its output is byte-for-byte what json.Marshal would
// produce — same field order, sorted sched keys, Go's JSON float
// formatting, HTML-escaped strings — which TestAppendPointResultMatchesMarshal
// pins, so golden fixtures and resumed streams are unaffected.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"unicode/utf8"
)

// encState is the reusable scratch of one JSONL encode: the output
// buffer and the sched-key sort slice.
type encState struct {
	buf  []byte
	keys []string
}

var encPool = sync.Pool{New: func() any { return new(encState) }}

// WritePointResult writes one result as a compact JSON line.
func WritePointResult(w io.Writer, r PointResult) error {
	st := encPool.Get().(*encState)
	defer encPool.Put(st)
	var err error
	if st.buf, err = st.appendPointResult(st.buf[:0], r); err != nil {
		return err
	}
	_, err = w.Write(st.buf)
	return err
}

// appendPointResult appends r's compact JSON encoding plus '\n' to buf,
// byte-identical to json.Marshal of PointResult.
func (st *encState) appendPointResult(buf []byte, r PointResult) ([]byte, error) {
	buf = append(buf, `{"index":`...)
	buf = strconv.AppendInt(buf, int64(r.Index), 10)
	buf = append(buf, `,"scenario":`...)
	buf = appendJSONString(buf, r.Scenario)
	buf = append(buf, `,"m":`...)
	buf = strconv.AppendInt(buf, int64(r.M), 10)
	buf = append(buf, `,"u":`...)
	var err error
	if buf, err = appendJSONFloat(buf, r.U); err != nil {
		return buf, err
	}
	buf = append(buf, `,"sets":`...)
	buf = strconv.AppendInt(buf, int64(r.Sets), 10)
	buf = append(buf, `,"sched":`...)
	if r.Sched == nil {
		buf = append(buf, `null`...)
	} else {
		keys := st.keys[:0]
		for k := range r.Sched {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		st.keys = keys
		buf = append(buf, '{')
		for i, k := range keys {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = appendJSONString(buf, k)
			buf = append(buf, ':')
			buf = strconv.AppendInt(buf, int64(r.Sched[k]), 10)
		}
		buf = append(buf, '}')
	}
	buf = append(buf, '}', '\n')
	return buf, nil
}

// appendJSONFloat appends f in encoding/json's float64 format (ES6
// number-to-string: %g-like with exponent form only below 1e-6 or at
// 1e21 and up, exponents not zero-padded). Non-finite values are an
// encode error, as in json.Marshal.
func appendJSONFloat(buf []byte, f float64) ([]byte, error) {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return buf, fmt.Errorf("experiments: unsupported non-finite value %v", f)
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	buf = strconv.AppendFloat(buf, f, format, -1, 64)
	if format == 'e' {
		// encoding/json cleans up e-09 to e-9.
		if n := len(buf); n >= 4 && buf[n-4] == 'e' && buf[n-3] == '-' && buf[n-2] == '0' {
			buf[n-2] = buf[n-1]
			buf = buf[:n-1]
		}
	}
	return buf, nil
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string exactly as encoding/json's
// default (HTML-escaping) encoder would: control characters, quote,
// backslash, <, >, & and U+2028/U+2029 escaped, invalid UTF-8 replaced
// with U+FFFD.
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			buf = append(buf, s[start:i]...)
			switch b {
			case '\\', '"':
				buf = append(buf, '\\', b)
			case '\b':
				buf = append(buf, '\\', 'b')
			case '\f':
				buf = append(buf, '\\', 'f')
			case '\n':
				buf = append(buf, '\\', 'n')
			case '\r':
				buf = append(buf, '\\', 'r')
			case '\t':
				buf = append(buf, '\\', 't')
			default:
				buf = append(buf, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			buf = append(buf, s[start:i]...)
			buf = append(buf, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			buf = append(buf, s[start:i]...)
			buf = append(buf, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	buf = append(buf, s[start:]...)
	return append(buf, '"')
}

// CampaignJSONL renders results as one JSON object per line.
func CampaignJSONL(results []PointResult) (string, error) {
	var b strings.Builder
	for _, r := range results {
		if err := WritePointResult(&b, r); err != nil {
			return "", err
		}
	}
	return b.String(), nil
}

// ReadCampaignJSONL decodes a JSON-lines result stream. Blank lines are
// permitted (and not round-tripped); any other malformed line is an
// error. Scenario and method names must be valid campaign names, sched
// counts must be non-negative and U finite, so every accepted stream
// re-encodes canonically and can feed the CSV emitter.
func ReadCampaignJSONL(r io.Reader) ([]PointResult, error) {
	var out []PointResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var pr PointResult
		dec := json.NewDecoder(bytes.NewReader(raw))
		if err := dec.Decode(&pr); err != nil {
			return nil, fmt.Errorf("experiments: jsonl line %d: %w", line, err)
		}
		if dec.More() {
			return nil, fmt.Errorf("experiments: jsonl line %d: trailing data", line)
		}
		if err := checkPointResultFields(pr); err != nil {
			return nil, fmt.Errorf("experiments: jsonl line %d: %w", line, err)
		}
		out = append(out, pr)
	}
	if err := sc.Err(); err != nil {
		// Scanner failures (a line beyond the 16 MiB cap, a reader
		// error) happen on the line after the last one delivered.
		return nil, fmt.Errorf("experiments: jsonl line %d: %w", line+1, err)
	}
	return out, nil
}

// checkPointResultFields enforces the documented stream invariants on a
// decoded result: finite U, valid scenario and method names,
// non-negative sched counts. Shared by the JSONL and binary decoders.
func checkPointResultFields(pr PointResult) error {
	if math.IsNaN(pr.U) || math.IsInf(pr.U, 0) {
		return fmt.Errorf("non-finite u")
	}
	if !validName(pr.Scenario) {
		return fmt.Errorf("bad scenario %q", pr.Scenario)
	}
	for m, n := range pr.Sched {
		if !validName(m) {
			return fmt.Errorf("bad method %q", m)
		}
		if n < 0 {
			return fmt.Errorf("negative sched count %d for %q", n, m)
		}
	}
	return nil
}

// csvFixedHeader is the leading column set of the campaign CSV; method
// columns follow.
const csvFixedHeader = "index,scenario,m,u,sets"

// campaignCSVHeaderNames renders the header row for method-name columns.
func campaignCSVHeaderNames(methods []string) string {
	return csvFixedHeader + "," + strings.Join(methods, ",") + "\n"
}

// appendCampaignCSVRow appends one result row under the given method
// columns (methods absent from the result render as 0).
func appendCampaignCSVRow(buf []byte, r PointResult, methods []string) []byte {
	buf = strconv.AppendInt(buf, int64(r.Index), 10)
	buf = append(buf, ',')
	buf = append(buf, r.Scenario...)
	buf = append(buf, ',')
	buf = strconv.AppendInt(buf, int64(r.M), 10)
	buf = append(buf, ',')
	buf = strconv.AppendFloat(buf, r.U, 'g', -1, 64)
	buf = append(buf, ',')
	buf = strconv.AppendInt(buf, int64(r.Sets), 10)
	for _, m := range methods {
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(r.Sched[m]), 10)
	}
	return append(buf, '\n')
}

// campaignCSVRowNames renders one result row as a string.
func campaignCSVRowNames(r PointResult, methods []string) string {
	return string(appendCampaignCSVRow(nil, r, methods))
}

// CampaignCSV renders results as CSV with one column per method name.
func CampaignCSV(results []PointResult, methods []string) string {
	var b strings.Builder
	b.WriteString(campaignCSVHeaderNames(methods))
	var buf []byte
	for _, r := range results {
		buf = appendCampaignCSVRow(buf[:0], r, methods)
		b.Write(buf)
	}
	return b.String()
}

// ParseCampaignCSV decodes a campaign CSV stream, returning the results
// and the method column names. It is strict about structure — header
// prefix, column counts, integer and finite-float fields, [A-Za-z0-9._-]
// scenario and method names, no duplicate method columns — so that every
// accepted stream round-trips through CampaignCSV canonically. Sched
// maps hold exactly the method columns.
func ParseCampaignCSV(data string) ([]PointResult, []string, error) {
	sc := bufio.NewScanner(strings.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, nil, fmt.Errorf("experiments: csv line 1: %w", err)
		}
		return nil, nil, fmt.Errorf("experiments: csv: empty input")
	}
	header := sc.Text()
	if !strings.HasPrefix(header, csvFixedHeader+",") {
		return nil, nil, fmt.Errorf("experiments: csv: bad header %q", header)
	}
	methods := strings.Split(header[len(csvFixedHeader)+1:], ",")
	seen := make(map[string]bool, len(methods))
	for _, m := range methods {
		if !validName(m) {
			return nil, nil, fmt.Errorf("experiments: csv: bad method column %q", m)
		}
		if seen[m] {
			return nil, nil, fmt.Errorf("experiments: csv: duplicate method column %q", m)
		}
		seen[m] = true
	}
	var out []PointResult
	line := 1
	for sc.Scan() {
		line++
		row := sc.Text()
		if row == "" {
			continue
		}
		fields := strings.Split(row, ",")
		if len(fields) != 5+len(methods) {
			return nil, nil, fmt.Errorf("experiments: csv line %d: %d fields, want %d", line, len(fields), 5+len(methods))
		}
		var (
			r   PointResult
			err error
		)
		if r.Index, err = strconv.Atoi(fields[0]); err != nil {
			return nil, nil, fmt.Errorf("experiments: csv line %d: index: %w", line, err)
		}
		if !validName(fields[1]) {
			return nil, nil, fmt.Errorf("experiments: csv line %d: bad scenario %q", line, fields[1])
		}
		r.Scenario = fields[1]
		if r.M, err = strconv.Atoi(fields[2]); err != nil {
			return nil, nil, fmt.Errorf("experiments: csv line %d: m: %w", line, err)
		}
		if r.U, err = strconv.ParseFloat(fields[3], 64); err != nil {
			return nil, nil, fmt.Errorf("experiments: csv line %d: u: %w", line, err)
		}
		if math.IsNaN(r.U) || math.IsInf(r.U, 0) {
			return nil, nil, fmt.Errorf("experiments: csv line %d: non-finite u", line)
		}
		if r.Sets, err = strconv.Atoi(fields[4]); err != nil {
			return nil, nil, fmt.Errorf("experiments: csv line %d: sets: %w", line, err)
		}
		r.Sched = make(map[string]int, len(methods))
		for i, m := range methods {
			if r.Sched[m], err = strconv.Atoi(fields[5+i]); err != nil {
				return nil, nil, fmt.Errorf("experiments: csv line %d: %s: %w", line, m, err)
			}
		}
		out = append(out, r)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("experiments: csv line %d: %w", line+1, err)
	}
	return out, methods, nil
}

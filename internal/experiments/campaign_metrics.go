package experiments

// Campaign progress as metrics: the same Progress values RunOptions
// already surfaces through OnProgress, re-published as lpdag_campaign_*
// series so a long sweep is watchable from /metrics — locally, on a
// cluster worker running a shard, or on the coordinator merging the
// whole grid. Gauges (planned/done/eta) describe the CURRENT run on
// this process; the completed counter is cumulative across runs, which
// is what rate() wants.

import "repro/internal/obs"

// CampaignMetrics feeds the lpdag_campaign_* series. A nil
// *CampaignMetrics (from a nil registry) is a valid no-op receiver, so
// the run loops call it unconditionally.
type CampaignMetrics struct {
	planned   *obs.Gauge
	done      *obs.Gauge
	eta       *obs.Gauge
	completed *obs.Counter
}

// NewCampaignMetrics resolves the campaign series in reg, or returns
// nil (a no-op recorder) when reg is nil.
func NewCampaignMetrics(reg *obs.Registry) *CampaignMetrics {
	if reg == nil {
		return nil
	}
	return &CampaignMetrics{
		planned: reg.Gauge("lpdag_campaign_points_planned",
			"Grid points of the campaign (or shard) currently running."),
		done: reg.Gauge("lpdag_campaign_points_done",
			"Points of the current campaign finished so far, including any resumed prefix."),
		eta: reg.Gauge("lpdag_campaign_eta_seconds",
			"Linear-extrapolation ETA of the current campaign; 0 when done or unknown."),
		completed: reg.Counter("lpdag_campaign_points_completed_total",
			"Campaign points computed by this process, cumulative across runs."),
	}
}

// Start records the campaign size and the resumed prefix before any
// point completes, so a scrape during a stalled run still sees the
// plan.
func (m *CampaignMetrics) Start(total, carried int) {
	if m == nil {
		return
	}
	m.planned.Set(float64(total))
	m.done.Set(float64(carried))
	m.eta.Set(0)
}

// Observe records one completed point's Progress.
func (m *CampaignMetrics) Observe(p Progress) {
	if m == nil {
		return
	}
	m.planned.Set(float64(p.Total))
	m.done.Set(float64(p.Done))
	m.eta.Set(p.ETA.Seconds())
	m.completed.Inc()
}

// Package experiments regenerates every table and figure of the
// evaluation of Serrano et al. (DATE 2016): the worked example
// (Tables I-III), the schedulability curves of Figure 2 (m = 4, 8, 16),
// the second-group comparison reported in the text of Section VI-B, and
// the analysis-runtime measurements.
//
// Results are returned as data and rendered as CSV and ASCII charts;
// cmd/lpdag-experiments is the command-line front end and the root
// bench_test.go exposes one benchmark per table/figure.
package experiments

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/engine/cache"
	"repro/internal/fixture"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/rta"
	"repro/internal/sim"
	"repro/internal/textplot"
)

// Fig2Config parameterises one schedulability-curve experiment (one
// sub-figure of Figure 2).
type Fig2Config struct {
	M            int     // cores (paper: 4, 8, 16)
	UStart       float64 // first utilization (paper: 1)
	UEnd         float64 // last utilization (paper: m)
	UStep        float64 // grid step (paper plots ~0.25 for m=4)
	SetsPerPoint int     // task sets per utilization (paper: 300)
	Seed         int64
	Group        gen.Group
	Backend      core.Backend
	Workers      int // concurrent analyses; 0 = GOMAXPROCS

	// SeqProbOverride, when non-zero, overrides the mixed population's
	// sequential-task probability (calibration knob; the paper does not
	// print the mixing ratio).
	SeqProbOverride float64
}

// PaperFig2Config returns the Section VI configuration for a core count,
// with the sample count configurable (the paper uses 300 per point).
func PaperFig2Config(m, setsPerPoint int, seed int64) Fig2Config {
	step := 0.25
	if m >= 8 {
		step = 0.5
	}
	return Fig2Config{
		M: m, UStart: 1, UEnd: float64(m), UStep: step,
		SetsPerPoint: setsPerPoint, Seed: seed, Group: gen.GroupMixed,
	}
}

// CurvePoint is the outcome at one utilization: the percentage of
// schedulable task sets per method.
type CurvePoint struct {
	U   float64
	Pct map[core.Method]float64
}

// Figure2 sweeps the utilization grid and returns one point per
// utilization. Task-set generation is deterministic in Seed; analyses
// run concurrently.
func Figure2(cfg Fig2Config) []CurvePoint {
	if cfg.UStep <= 0 {
		cfg.UStep = 0.25
	}
	var us []float64
	for u := cfg.UStart; u <= cfg.UEnd+1e-9; u += cfg.UStep {
		us = append(us, math.Round(u*1e6)/1e6)
	}
	// One content-addressed cache for the whole sweep: the three
	// methods analyze each generated set back to back, and the µ/Δ/top
	// quantities they share are computed once.
	memo := cache.New(0)
	points := make([]CurvePoint, len(us))
	for i, u := range us {
		points[i] = runPoint(cfg, u, i, memo)
	}
	return points
}

// fig2Set deterministically generates one task set of a Figure 2 sweep:
// set `set` of grid point `point`. Each set has its own derived seed
// (see SeedFor), so no two sets share generator state and growing any
// dimension of the sweep — more sets, more points, more methods — never
// perturbs the sets already generated.
func fig2Set(cfg Fig2Config, point, set int, u float64) *model.TaskSet {
	params := gen.PaperParams(cfg.Group)
	if cfg.SeqProbOverride > 0 {
		params.SeqProb = cfg.SeqProbOverride
	}
	return gen.New(SeedFor(cfg.Seed, point, set), params).TaskSet(u)
}

// runPoint generates SetsPerPoint task sets at utilization u and counts
// the schedulable fraction per method.
func runPoint(cfg Fig2Config, u float64, point int, memo *cache.Cache) CurvePoint {
	n := cfg.SetsPerPoint
	if n < 1 {
		n = 1
	}
	// Generate deterministically up front; analyze concurrently.
	sets := make([]*model.TaskSet, n)
	for i := range sets {
		sets[i] = fig2Set(cfg, point, i, u)
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// One analyzer per method for the whole point: core.Analyzer is
	// concurrency-safe and pools its rta scratch states, so every worker
	// goroutine reuses warm buffers instead of rebuilding them per set.
	analyzers := make(map[core.Method]*core.Analyzer, 3)
	for _, method := range core.Methods() {
		analyzers[method] = core.MustNew(core.Options{Cores: cfg.M, Method: method, Backend: cfg.Backend, Cache: memo})
	}
	counts := make(map[core.Method]int, 3)
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for _, ts := range sets {
		wg.Add(1)
		sem <- struct{}{}
		go func(ts *model.TaskSet) {
			defer wg.Done()
			defer func() { <-sem }()
			local := make(map[core.Method]bool, 3)
			for _, method := range core.Methods() {
				ok, err := analyzers[method].Schedulable(context.Background(), ts)
				if err != nil {
					panic(err) // sets are pre-validated; unreachable
				}
				local[method] = ok
			}
			mu.Lock()
			for m, ok := range local {
				if ok {
					counts[m]++
				}
			}
			mu.Unlock()
		}(ts)
	}
	wg.Wait()

	pct := make(map[core.Method]float64, 3)
	for _, m := range core.Methods() {
		pct[m] = 100 * float64(counts[m]) / float64(n)
	}
	return CurvePoint{U: u, Pct: pct}
}

// CurveCSV renders points as "U,FP-ideal,LP-ILP,LP-max" rows.
func CurveCSV(points []CurvePoint) string {
	var b strings.Builder
	b.WriteString("utilization,FP-ideal,LP-ILP,LP-max\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%.3f,%.2f,%.2f,%.2f\n",
			p.U, p.Pct[core.FPIdeal], p.Pct[core.LPILP], p.Pct[core.LPMax])
	}
	return b.String()
}

// CurveChart renders points as an ASCII chart in the style of Figure 2.
func CurveChart(title string, points []CurvePoint) string {
	xs := make([]float64, len(points))
	ys := map[core.Method][]float64{}
	for i, p := range points {
		xs[i] = p.U
		for _, m := range core.Methods() {
			ys[m] = append(ys[m], p.Pct[m])
		}
	}
	series := []textplot.Series{
		{Name: "FP-ideal", Marker: '*', Y: ys[core.FPIdeal]},
		{Name: "LP-ILP", Marker: 'o', Y: ys[core.LPILP]},
		{Name: "LP-max", Marker: '+', Y: ys[core.LPMax]},
	}
	return textplot.Chart(title, xs, series, 64, 16, 0, 100)
}

// CheckCurveShape verifies the qualitative properties the paper reports
// for a Figure 2 curve: the per-point ordering FP-ideal ≥ LP-ILP ≥
// LP-max, (near-)full schedulability at the lowest utilization, and
// collapse ordering — LP-max reaches 0% at or before LP-ILP, which
// reaches 0% at or before FP-ideal. It returns a list of violations
// (empty = shape holds).
func CheckCurveShape(points []CurvePoint) []string {
	var issues []string
	for _, p := range points {
		fp, li, lm := p.Pct[core.FPIdeal], p.Pct[core.LPILP], p.Pct[core.LPMax]
		if li > fp+1e-9 || lm > li+1e-9 {
			issues = append(issues,
				fmt.Sprintf("ordering violated at U=%.2f: FP=%.1f ILP=%.1f MAX=%.1f", p.U, fp, li, lm))
		}
	}
	if len(points) > 0 {
		first := points[0]
		for _, m := range core.Methods() {
			if first.Pct[m] < 90 {
				issues = append(issues, fmt.Sprintf(
					"%v starts at %.1f%% (< 90%%) at U=%.2f", m, first.Pct[m], first.U))
			}
		}
	}
	zero := func(method core.Method) float64 {
		for _, p := range points {
			if p.Pct[method] == 0 {
				return p.U
			}
		}
		return math.Inf(1)
	}
	if zero(core.LPMax) > zero(core.LPILP) {
		issues = append(issues, "LP-max should collapse before LP-ILP")
	}
	if zero(core.LPILP) > zero(core.FPIdeal) {
		issues = append(issues, "LP-ILP should collapse before FP-ideal")
	}
	return issues
}

// TasksSweepConfig parameterises the task-count sweep: the alternative
// reading of Figure 2(c), whose printed x-axis is "Number of tasks"
// (2..16) although the caption says "as a function of the utilization".
// We regenerate both readings; this one fixes the total utilization and
// varies the set size.
type TasksSweepConfig struct {
	M            int
	U            float64 // fixed total utilization (e.g. m/4)
	NStart, NEnd int     // task-count grid (paper axis: 2..16)
	SetsPerPoint int
	Seed         int64
	Group        gen.Group
	Backend      core.Backend
}

// TasksSweepPoint is the outcome at one task count.
type TasksSweepPoint struct {
	N   int
	Pct map[core.Method]float64
}

// TasksSweep runs the task-count sweep.
func TasksSweep(cfg TasksSweepConfig) []TasksSweepPoint {
	if cfg.NStart < 1 {
		cfg.NStart = 2
	}
	if cfg.NEnd < cfg.NStart {
		cfg.NEnd = cfg.NStart
	}
	sets := cfg.SetsPerPoint
	if sets < 1 {
		sets = 1
	}
	memo := cache.New(0)
	analyzers := make(map[core.Method]*core.Analyzer, 3)
	for _, method := range core.Methods() {
		analyzers[method] = core.MustNew(core.Options{Cores: cfg.M, Method: method, Backend: cfg.Backend, Cache: memo})
	}
	var out []TasksSweepPoint
	for n := cfg.NStart; n <= cfg.NEnd; n++ {
		counts := make(map[core.Method]int, 3)
		for i := 0; i < sets; i++ {
			ts := gen.New(SeedFor(cfg.Seed, n, i), gen.PaperParams(cfg.Group)).TaskSetN(n, cfg.U)
			for _, method := range core.Methods() {
				ok, err := analyzers[method].Schedulable(context.Background(), ts)
				if err != nil {
					panic(err) // generated sets are valid; unreachable
				}
				if ok {
					counts[method]++
				}
			}
		}
		pct := make(map[core.Method]float64, 3)
		for _, m := range core.Methods() {
			pct[m] = 100 * float64(counts[m]) / float64(sets)
		}
		out = append(out, TasksSweepPoint{N: n, Pct: pct})
	}
	return out
}

// TasksSweepCSV renders the task-count sweep as CSV.
func TasksSweepCSV(points []TasksSweepPoint) string {
	var b strings.Builder
	b.WriteString("tasks,FP-ideal,LP-ILP,LP-max\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%d,%.2f,%.2f,%.2f\n",
			p.N, p.Pct[core.FPIdeal], p.Pct[core.LPILP], p.Pct[core.LPMax])
	}
	return b.String()
}

// Group2Result summarises the second-group experiment of Section VI-B:
// with uniformly highly-parallel task sets, LP-max and LP-ILP perform
// very similarly.
type Group2Result struct {
	Points []CurvePoint
	// MaxGap is the largest |LP-ILP − LP-max| percentage over the grid;
	// MeanGap the average.
	MaxGap  float64
	MeanGap float64
}

// Group2 runs the Figure 2 sweep on the uniformly-parallel population.
func Group2(cfg Fig2Config) Group2Result {
	cfg.Group = gen.GroupParallel
	points := Figure2(cfg)
	res := Group2Result{Points: points}
	if len(points) == 0 {
		return res
	}
	var sum float64
	for _, p := range points {
		gap := math.Abs(p.Pct[core.LPILP] - p.Pct[core.LPMax])
		sum += gap
		if gap > res.MaxGap {
			res.MaxGap = gap
		}
	}
	res.MeanGap = sum / float64(len(points))
	return res
}

// TimingConfig parameterises the analysis-runtime measurement of
// Section VI-B (MATLAB+CPLEX: 0.45 s, 4.75 s, 43 min for m = 4, 8, 16;
// the absolute Go numbers are not comparable, the growth trend is).
type TimingConfig struct {
	Ms      []int   // core counts to measure (paper: 4, 8, 16)
	Sets    int     // sets per core count
	UFrac   float64 // target utilization as a fraction of m (default 0.4)
	Seed    int64
	Backend core.Backend
}

// TimingResult is the measurement at one core count.
type TimingResult struct {
	M           int
	Sets        int
	Schedulable int
	AvgPerSet   time.Duration // LP-ILP analysis wall time per set
	TotalTime   time.Duration
	Scenarios   int64 // p(m), the execution-scenario count the paper discusses
}

// Timing measures the LP-ILP schedulability-test runtime per task set.
// It deliberately runs without the shared result cache: the measurement
// is of the analysis itself, and every generated set is distinct anyway.
func Timing(cfg TimingConfig) []TimingResult {
	if cfg.UFrac <= 0 {
		cfg.UFrac = 0.4
	}
	if cfg.Sets < 1 {
		cfg.Sets = 1
	}
	out := make([]TimingResult, 0, len(cfg.Ms))
	for _, m := range cfg.Ms {
		sets := make([]*model.TaskSet, cfg.Sets)
		for i := range sets {
			sets[i] = gen.New(SeedFor(cfg.Seed, m, i), gen.PaperParams(gen.GroupMixed)).
				TaskSet(cfg.UFrac * float64(m))
		}
		a := core.MustNew(core.Options{Cores: m, Method: core.LPILP, Backend: cfg.Backend})
		start := time.Now()
		sched := 0
		for _, ts := range sets {
			ok, err := a.Schedulable(context.Background(), ts)
			if err != nil {
				panic(err)
			}
			if ok {
				sched++
			}
		}
		total := time.Since(start)
		out = append(out, TimingResult{
			M: m, Sets: cfg.Sets, Schedulable: sched,
			AvgPerSet: total / time.Duration(cfg.Sets), TotalTime: total,
			Scenarios: partition.Count(m),
		})
	}
	return out
}

// TimingTable renders timing results with the paper's reference numbers.
func TimingTable(results []TimingResult) string {
	paper := map[int]string{4: "0.45 s", 8: "4.75 s", 16: "43 min"}
	var b strings.Builder
	fmt.Fprintf(&b, "%4s %10s %14s %12s %18s\n", "m", "p(m)", "avg/set (Go)", "sched/sets", "paper MATLAB+CPLEX")
	for _, r := range results {
		ref := paper[r.M]
		if ref == "" {
			ref = "-"
		}
		fmt.Fprintf(&b, "%4d %10d %14s %7d/%-4d %18s\n",
			r.M, r.Scenarios, r.AvgPerSet.Round(time.Microsecond), r.Schedulable, r.Sets, ref)
	}
	return b.String()
}

// TableIText renders the worked example's µ table (Table I).
func TableIText() string {
	graphs := fixture.LowerPriorityGraphs()
	mus := blocking.MuTables(graphs, fixture.M, blocking.Combinatorial)
	var b strings.Builder
	b.WriteString("Table I: worst-case workload µ_i[c] (Figure 1 tasks, m=4)\n")
	fmt.Fprintf(&b, "%4s %8s %8s %8s %8s\n", "c", "µ1[c]", "µ2[c]", "µ3[c]", "µ4[c]")
	for c := 1; c <= fixture.M; c++ {
		fmt.Fprintf(&b, "%4d %8d %8d %8d %8d\n", c, mus[0][c-1], mus[1][c-1], mus[2][c-1], mus[3][c-1])
	}
	return b.String()
}

// TableIIText renders the execution scenarios of e_4 (Table II).
func TableIIText() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II: execution scenarios e_%d (p(%d) = %d)\n",
		fixture.M, fixture.M, partition.Count(fixture.M))
	scenarios := partition.All(fixture.M)
	// Present in the paper's order: by decreasing cardinality, then
	// lexicographic.
	sort.SliceStable(scenarios, func(i, j int) bool {
		return len(scenarios[i]) > len(scenarios[j])
	})
	for i, s := range scenarios {
		fmt.Fprintf(&b, "  s%d = %-14s |s| = %d\n", i+1, s.String(), s.Size())
	}
	return b.String()
}

// TableIIIText renders the per-scenario overall workloads and the Δ
// values of the worked example (Table III and Section IV-B3).
func TableIIIText() string {
	graphs := fixture.LowerPriorityGraphs()
	mus := blocking.MuTables(graphs, fixture.M, blocking.Combinatorial)
	var b strings.Builder
	b.WriteString("Table III: overall worst-case workload ρ_k[s_l] (m=4)\n")
	for _, s := range partition.All(fixture.M) {
		rho := blocking.ScenarioWorkload(mus, fixture.M, s, blocking.Combinatorial)
		fmt.Fprintf(&b, "  ρ[%-14s] = %d\n", s.String(), rho)
	}
	in := blocking.Compute(graphs, fixture.M, blocking.LPILP, blocking.Combinatorial)
	mx := blocking.Compute(graphs, fixture.M, blocking.LPMax, blocking.Combinatorial)
	fmt.Fprintf(&b, "LP-ILP: Δ⁴ = %d, Δ³ = %d   (paper: 19, 15)\n", in.DeltaM, in.DeltaM1)
	fmt.Fprintf(&b, "LP-max: Δ⁴ = %d, Δ³ = %d   (paper: 20, 16)\n", mx.DeltaM, mx.DeltaM1)
	return b.String()
}

// VariantPoint is the outcome at one utilization for the analysis
// variants of the ablation study: plain LP-ILP, LP-ILP with the
// final-NPR refinement (future-work (ii)), and LP-ILP with the repeated
// blocking term p·Δ^{m-1} ablated (diagnostic only — unsound as a test,
// it isolates how much schedulability that term costs).
type VariantPoint struct {
	U       float64
	Plain   float64
	Refined float64
	Ablated float64
}

// Variants sweeps the utilization grid with the three LP-ILP variants.
func Variants(cfg Fig2Config) []VariantPoint {
	if cfg.UStep <= 0 {
		cfg.UStep = 0.25
	}
	// The three variants differ only in the fixed-point iteration; the
	// blocking quantities they share come from one cache. One reusable
	// analyzer per variant serves the whole (serial) sweep.
	memo := cache.New(0)
	variants := make([]*rta.Analyzer, 0, 3)
	for _, vcfg := range []rta.Config{
		{M: cfg.M, Method: rta.LPILP, Backend: cfg.Backend, Cache: memo},
		{M: cfg.M, Method: rta.LPILP, Backend: cfg.Backend, Cache: memo, FinalNPRRefinement: true},
		{M: cfg.M, Method: rta.LPILP, Backend: cfg.Backend, Cache: memo, AblateRepeatedBlocking: true},
	} {
		a, err := rta.NewAnalyzer(vcfg)
		if err != nil {
			panic(err) // static configs; unreachable
		}
		variants = append(variants, a)
	}
	var out []VariantPoint
	idx := 0
	for u := cfg.UStart; u <= cfg.UEnd+1e-9; u += cfg.UStep {
		uu := math.Round(u*1e6) / 1e6
		point := idx
		idx++
		n := cfg.SetsPerPoint
		if n < 1 {
			n = 1
		}
		var plain, refined, ablated int
		for i := 0; i < n; i++ {
			ts := fig2Set(cfg, point, i, uu)
			for vi, va := range variants {
				res, err := va.AnalyzeInPlace(context.Background(), ts)
				if err != nil {
					panic(err) // generated sets are valid; unreachable
				}
				if res.Schedulable {
					switch vi {
					case 0:
						plain++
					case 1:
						refined++
					case 2:
						ablated++
					}
				}
			}
		}
		out = append(out, VariantPoint{
			U:       uu,
			Plain:   100 * float64(plain) / float64(n),
			Refined: 100 * float64(refined) / float64(n),
			Ablated: 100 * float64(ablated) / float64(n),
		})
	}
	return out
}

// VariantsCSV renders the variant sweep as CSV.
func VariantsCSV(points []VariantPoint) string {
	var b strings.Builder
	b.WriteString("utilization,LP-ILP,LP-ILP+finalNPR,LP-ILP-noRepeatBlocking\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%.3f,%.2f,%.2f,%.2f\n", p.U, p.Plain, p.Refined, p.Ablated)
	}
	return b.String()
}

// PessimismConfig parameterises the analysis-vs-simulation gap study.
type PessimismConfig struct {
	M       int
	U       float64
	Sets    int
	Seed    int64
	Horizon int64 // simulation length per set (default 20 max periods)
	Backend core.Backend
}

// PessimismResult quantifies how often the LP-ILP analysis rejects a set
// that survives simulation. Simulation covers only the synchronous
// periodic scenario, so "survives" is necessary, not sufficient — the
// number is an upper bound on the analysis pessimism at this point.
type PessimismResult struct {
	Sets          int
	Accepted      int // analysis says schedulable
	Rejected      int
	RejectedAlive int     // rejected by analysis but no simulated miss
	UpperBoundPct float64 // RejectedAlive / Sets · 100
}

// Pessimism runs the study at one (m, U) point.
func Pessimism(cfg PessimismConfig) PessimismResult {
	if cfg.Sets < 1 {
		cfg.Sets = 1
	}
	a := core.MustNew(core.Options{Cores: cfg.M, Method: core.LPILP, Backend: cfg.Backend, Cache: cache.New(0)})
	res := PessimismResult{Sets: cfg.Sets}
	for i := 0; i < cfg.Sets; i++ {
		ts := gen.New(SeedFor(cfg.Seed, 0, i), gen.PaperParams(gen.GroupMixed)).TaskSet(cfg.U)
		ok, err := a.Schedulable(context.Background(), ts)
		if err != nil {
			panic(err) // generated sets are valid; unreachable
		}
		if ok {
			res.Accepted++
			continue
		}
		res.Rejected++
		horizon := cfg.Horizon
		if horizon <= 0 {
			var maxT int64
			for _, t := range ts.Tasks {
				if t.Period > maxT {
					maxT = t.Period
				}
			}
			horizon = 20 * maxT
		}
		sr, err := sim.Run(ts, sim.Config{M: cfg.M, Duration: horizon})
		if err != nil {
			panic(err)
		}
		if sr.Misses == 0 {
			res.RejectedAlive++
		}
	}
	res.UpperBoundPct = 100 * float64(res.RejectedAlive) / float64(res.Sets)
	return res
}

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/wire"
)

// testWorker is one in-process lpdag-serve worker node: an engine, its
// HTTP server (healthz/stats + drain flag), and the shard endpoint,
// wired exactly like cmd/lpdag-serve.
type testWorker struct {
	srv *engine.Server
	ts  *httptest.Server
}

func newTestWorker(t *testing.T) *testWorker {
	t.Helper()
	eng := engine.New(engine.Config{Workers: 2})
	t.Cleanup(eng.Close)
	srv := engine.NewServer(eng, engine.ServerConfig{})
	mux := http.NewServeMux()
	mux.Handle("/v1/shard", NewWorkerHandler(eng, WorkerConfig{
		Heartbeat: 100 * time.Millisecond, Load: srv,
	}))
	mux.Handle("/", srv)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return &testWorker{srv: srv, ts: ts}
}

// e2eCampaign is the ~200-point campaign of the end-to-end tests:
// 2 scenario families × 2 core counts × 49 utilization fractions with
// one task set per point = 196 points.
func e2eCampaign(t *testing.T) experiments.CampaignConfig {
	t.Helper()
	var fracs []float64
	for f := 0.02; f < 0.99; f += 0.02 {
		fracs = append(fracs, f)
	}
	mixed, err := experiments.ScenarioByName("mixed")
	if err != nil {
		t.Fatal(err)
	}
	light, err := experiments.ScenarioByName("light")
	if err != nil {
		t.Fatal(err)
	}
	return experiments.CampaignConfig{
		Seed:         42,
		Ms:           []int{2, 4},
		UFracs:       fracs,
		SetsPerPoint: 1,
		Scenarios:    []experiments.Scenario{mixed, light},
	}
}

// runLocalReference runs the campaign in-process with a single worker
// and returns its JSONL and CSV byte streams: the determinism oracle.
func runLocalReference(t *testing.T, cfg experiments.CampaignConfig) (jsonl, csv []byte) {
	t.Helper()
	local := cfg
	local.Workers = 1
	var jb, cb bytes.Buffer
	if _, err := experiments.RunCampaign(local, experiments.RunOptions{JSONL: &jb, CSV: &cb}); err != nil {
		t.Fatalf("local reference run: %v", err)
	}
	return jb.Bytes(), cb.Bytes()
}

// TestClusterEndToEndWorkerDeath is the ISSUE's acceptance test: a
// 3-worker cluster runs a 196-point campaign, one worker is killed
// mid-campaign (connections severed, listener closed), and the merged
// JSONL/CSV must still be byte-identical to a local single-worker run.
func TestClusterEndToEndWorkerDeath(t *testing.T) {
	cfg := e2eCampaign(t)
	wantJSONL, wantCSV := runLocalReference(t, cfg)

	workers := []*testWorker{newTestWorker(t), newTestWorker(t), newTestWorker(t)}
	urls := make([]string, len(workers))
	for i, w := range workers {
		urls[i] = w.ts.URL
	}

	var (
		kill   sync.Once
		killed = make(chan struct{})
	)
	var jb, cb bytes.Buffer
	results, err := Run(Config{
		Campaign:     cfg,
		Workers:      urls,
		LeaseTimeout: 3 * time.Second,
		Shards:       12, // several leases per worker, so the kill lands mid-campaign
	}, experiments.RunOptions{
		JSONL: &jb,
		CSV:   &cb,
		OnProgress: func(p experiments.Progress) {
			// Kill worker 0 once a quarter of the campaign has merged:
			// in-flight shard streams sever mid-flight and their leases
			// must fail over to the surviving workers.
			if p.Done >= p.Total/4 {
				kill.Do(func() {
					workers[0].ts.CloseClientConnections()
					workers[0].ts.Close()
					close(killed)
				})
			}
		},
	})
	if err != nil {
		t.Fatalf("cluster run: %v", err)
	}
	select {
	case <-killed:
	default:
		t.Fatal("worker 0 was never killed: the campaign finished too fast for the test to mean anything")
	}
	if len(results) != 196 {
		t.Fatalf("got %d results, want 196", len(results))
	}
	if !bytes.Equal(jb.Bytes(), wantJSONL) {
		t.Errorf("cluster JSONL differs from local run (%d vs %d bytes)", jb.Len(), len(wantJSONL))
	}
	if !bytes.Equal(cb.Bytes(), wantCSV) {
		t.Errorf("cluster CSV differs from local run (%d vs %d bytes)", cb.Len(), len(wantCSV))
	}

	// The surviving workers carried shards: their load gauges saw them.
	var served uint64
	for _, w := range workers[1:] {
		served += workerShardsServed(t, w)
	}
	if served == 0 {
		t.Error("surviving workers report zero shards served")
	}
}

func workerShardsServed(t *testing.T, w *testWorker) uint64 {
	t.Helper()
	resp, err := http.Get(w.ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		ShardsServed uint64 `json:"shards_served"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st.ShardsServed
}

// TestClusterDrainingWorker marks one of two workers as draining
// mid-campaign: the coordinator must stop scheduling to it (healthz
// gate or shard-endpoint 503 — both paths hand the lease back without
// consuming a retry) and still produce byte-identical output.
func TestClusterDrainingWorker(t *testing.T) {
	cfg := e2eCampaign(t)
	wantJSONL, _ := runLocalReference(t, cfg)

	w0, w1 := newTestWorker(t), newTestWorker(t)
	var drain sync.Once
	var jb bytes.Buffer
	_, err := Run(Config{
		Campaign:     cfg,
		Workers:      []string{w0.ts.URL, w1.ts.URL},
		LeaseTimeout: 3 * time.Second,
		Shards:       8,
	}, experiments.RunOptions{
		JSONL: &jb,
		OnProgress: func(p experiments.Progress) {
			if p.Done >= p.Total/4 {
				drain.Do(w0.srv.StartDraining)
			}
		},
	})
	if err != nil {
		t.Fatalf("cluster run with draining worker: %v", err)
	}
	if !bytes.Equal(jb.Bytes(), wantJSONL) {
		t.Error("draining-failover JSONL differs from local run")
	}
}

// TestClusterResume feeds a prefix of a previous run's JSONL as
// Completed: carried points are emitted verbatim, only the rest is
// computed remotely, and the full stream is byte-identical.
func TestClusterResume(t *testing.T) {
	cfg := e2eCampaign(t)
	wantJSONL, _ := runLocalReference(t, cfg)

	// Re-read the first 50 lines as the carried prefix, like -resume.
	lines := bytes.SplitAfter(wantJSONL, []byte("\n"))
	prefix := bytes.Join(lines[:50], nil)
	carried, err := experiments.ReadCampaignJSONL(bytes.NewReader(prefix))
	if err != nil {
		t.Fatal(err)
	}

	w := newTestWorker(t)
	var jb bytes.Buffer
	_, err = Run(Config{
		Campaign:     cfg,
		Workers:      []string{w.ts.URL},
		LeaseTimeout: 3 * time.Second,
	}, experiments.RunOptions{JSONL: &jb, Completed: carried})
	if err != nil {
		t.Fatalf("resumed cluster run: %v", err)
	}
	if !bytes.Equal(jb.Bytes(), wantJSONL) {
		t.Error("resumed cluster JSONL differs from local run")
	}
}

// TestClusterLeaseCapRespected pins the admission-cap interplay: even
// when the requested shard count would produce leases larger than the
// workers' -max-shard-points limit, the coordinator raises the shard
// count instead of dispatching leases every worker rejects.
func TestClusterLeaseCapRespected(t *testing.T) {
	eng := engine.New(engine.Config{Workers: 2})
	t.Cleanup(eng.Close)
	mux := http.NewServeMux()
	mux.Handle("/v1/shard", NewWorkerHandler(eng, WorkerConfig{MaxPoints: 2, Heartbeat: 100 * time.Millisecond}))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(`{"status":"ok"}`))
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	cfg := e2eCampaign(t)
	cfg.UFracs = cfg.UFracs[:2] // 8 points
	wantJSONL, _ := runLocalReference(t, cfg)

	var jb bytes.Buffer
	_, err := Run(Config{
		Campaign:       cfg,
		Workers:        []string{ts.URL},
		LeaseTimeout:   3 * time.Second,
		Shards:         1, // would be one 8-point lease without the cap
		MaxLeasePoints: 2,
	}, experiments.RunOptions{JSONL: &jb})
	if err != nil {
		t.Fatalf("capped cluster run: %v", err)
	}
	if !bytes.Equal(jb.Bytes(), wantJSONL) {
		t.Error("capped-lease JSONL differs from local run")
	}
}

// TestClusterAllWorkersDead pins the no-workers failure mode: the
// campaign errors out instead of hanging.
func TestClusterAllWorkersDead(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()

	cfg := e2eCampaign(t)
	cfg.UFracs = []float64{0.5} // tiny: 4 points
	_, err := Run(Config{
		Campaign:        cfg,
		Workers:         []string{dead.URL},
		LeaseTimeout:    500 * time.Millisecond,
		WorkerFailLimit: 2,
	}, experiments.RunOptions{})
	if err == nil {
		t.Fatal("campaign against a dead worker should fail")
	}
	if !strings.Contains(err.Error(), "workers") {
		t.Errorf("error should name the worker exhaustion: %v", err)
	}
}

// TestClusterContextCancel pins prompt cancellation.
func TestClusterContextCancel(t *testing.T) {
	w := newTestWorker(t)
	cfg := e2eCampaign(t)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	var once sync.Once
	go func() {
		_, err := Run(Config{
			Campaign:     cfg,
			Workers:      []string{w.ts.URL},
			LeaseTimeout: 3 * time.Second,
		}, experiments.RunOptions{
			Context: ctx,
			OnProgress: func(experiments.Progress) {
				once.Do(cancel)
			},
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled campaign should return an error")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled campaign did not return")
	}
}

// TestWorkerHandlerValidation pins the shard endpoint's admission
// checks and the draining gate.
func TestWorkerHandlerValidation(t *testing.T) {
	eng := engine.New(engine.Config{Workers: 1})
	t.Cleanup(eng.Close)
	srv := engine.NewServer(eng, engine.ServerConfig{})
	h := NewWorkerHandler(eng, WorkerConfig{MaxPoints: 4, Load: srv})

	post := func(body string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/v1/shard", strings.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		return w
	}

	if w := post(`{"campaign": {"seed": 1}, "points": []}`); w.Code != http.StatusBadRequest {
		t.Errorf("empty lease: status %d, want 400", w.Code)
	}
	if w := post(`{"campaign": {"seed": 1}, "points": [0,1,2,3,4]}`); w.Code != http.StatusBadRequest {
		t.Errorf("oversized lease: status %d, want 400", w.Code)
	}
	if w := post(`{"campaign": {"scenarios": ["no-such"]}, "points": [0]}`); w.Code != http.StatusBadRequest {
		t.Errorf("unknown scenario: status %d, want 400", w.Code)
	}
	if w := post(`{"campaign": {"seed": 1}, "points": [3,1]}`); w.Code != http.StatusOK {
		t.Errorf("descending points: status %d, want 200 (stream with error line)", w.Code)
	} else if !strings.Contains(w.Body.String(), "increasing") {
		t.Errorf("descending points should fail in-stream: %s", w.Body)
	}

	srv.StartDraining()
	if w := post(`{"campaign": {"seed": 1}, "points": [0]}`); w.Code != http.StatusServiceUnavailable {
		t.Errorf("draining worker: status %d, want 503", w.Code)
	}
}

// TestWorkerStreamMatchesLocalSubset pins the worker's stream bytes to
// a local RunCampaignSubset of the same lease, heartbeat lines aside.
func TestWorkerStreamMatchesLocalSubset(t *testing.T) {
	w := newTestWorker(t)
	campaign := experiments.CampaignRequest{
		Seed: 7, Ms: []int{2}, UFracs: []float64{0.3, 0.6}, SetsPerPoint: 2,
		Scenarios: []string{"mixed"},
	}
	body, _ := json.Marshal(ShardRequest{Campaign: campaign, Points: []int{0, 1}})
	resp, err := http.Post(w.ts.URL+"/v1/shard", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shard: status %d", resp.StatusCode)
	}
	got, err := experiments.ReadCampaignJSONL(resp.Body)
	if err != nil {
		t.Fatalf("worker stream does not re-parse as campaign JSONL: %v", err)
	}

	cfg, err := campaign.Config()
	if err != nil {
		t.Fatal(err)
	}
	var local bytes.Buffer
	if _, err := experiments.RunCampaignSubset(cfg, []int{0, 1}, experiments.RunOptions{JSONL: &local}); err != nil {
		t.Fatal(err)
	}
	want, err := experiments.ReadCampaignJSONL(&local)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("worker stream %v\nlocal subset %v", got, want)
	}
}

// binaryProbeWorker is a worker whose shard endpoint records the
// response Content-Type of every lease, so tests can assert which
// codec the negotiation actually picked.
func binaryProbeWorker(t *testing.T) (*testWorker, func() []string) {
	t.Helper()
	eng := engine.New(engine.Config{Workers: 2})
	t.Cleanup(eng.Close)
	srv := engine.NewServer(eng, engine.ServerConfig{})
	shard := NewWorkerHandler(eng, WorkerConfig{Heartbeat: 100 * time.Millisecond, Load: srv})
	var (
		mu     sync.Mutex
		ctypes []string
	)
	mux := http.NewServeMux()
	mux.Handle("/v1/shard", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		shard.ServeHTTP(w, r)
		mu.Lock()
		ctypes = append(ctypes, w.Header().Get("Content-Type"))
		mu.Unlock()
	}))
	mux.Handle("/", srv)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return &testWorker{srv: srv, ts: ts}, func() []string {
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), ctypes...)
	}
}

// TestClusterBinaryLeaseByteIdentical pins the codec negotiation end to
// end: by default shards stream back as binary wire frames, with
// Config.DisableBinary they stay JSONL, and either way the merged
// JSONL/CSV output is byte-identical to a local JSON-only run.
func TestClusterBinaryLeaseByteIdentical(t *testing.T) {
	cfg := e2eCampaign(t)
	wantJSONL, wantCSV := runLocalReference(t, cfg)

	for _, tc := range []struct {
		name     string
		disable  bool
		wantType string
	}{
		{"binary", false, wire.ContentType},
		{"jsonl-fallback", true, "application/x-ndjson"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w1, types1 := binaryProbeWorker(t)
			w2, types2 := binaryProbeWorker(t)
			var jb, cb bytes.Buffer
			results, err := Run(Config{
				Campaign:      cfg,
				Workers:       []string{w1.ts.URL, w2.ts.URL},
				LeaseTimeout:  3 * time.Second,
				Shards:        8,
				DisableBinary: tc.disable,
			}, experiments.RunOptions{JSONL: &jb, CSV: &cb})
			if err != nil {
				t.Fatalf("cluster run: %v", err)
			}
			if len(results) != 196 {
				t.Fatalf("got %d results, want 196", len(results))
			}
			if !bytes.Equal(jb.Bytes(), wantJSONL) {
				t.Errorf("merged JSONL differs from local run (%d vs %d bytes)", jb.Len(), len(wantJSONL))
			}
			if !bytes.Equal(cb.Bytes(), wantCSV) {
				t.Errorf("merged CSV differs from local run (%d vs %d bytes)", cb.Len(), len(wantCSV))
			}
			served := append(types1(), types2()...)
			if len(served) == 0 {
				t.Fatal("no shard leases recorded")
			}
			for _, ct := range served {
				if ct != tc.wantType {
					t.Fatalf("shard response Content-Type = %q, want %q", ct, tc.wantType)
				}
			}
		})
	}
}

package cluster

// Worker half of the cluster protocol: POST /v1/shard computes a leased
// subset of a campaign's grid points and streams the results back,
// representing exactly what a local run would emit for those indices
// (experiments.RunCampaignSubset).
//
// Two stream codecs are negotiated via the Accept header. The default is
// JSON lines, where blank lines are heartbeats: the handler emits one
// every WorkerConfig.Heartbeat of silence so the coordinator's lease
// watchdog can tell "slow point" from "dead worker";
// experiments.ReadCampaignJSONL already skips blank lines, so the stream
// stays a valid campaign JSONL stream. With "Accept:
// application/x-lpdag-bin" the stream is instead wire frames — 'R'
// frames carrying binary PointResult payloads, 'H' heartbeat frames —
// encoded through one reused buffer pair, so a shard stream allocates
// O(1) however many points it carries.
//
// If the run fails after streaming began a terminal {"error": ...} line
// (or an 'E' frame) is appended, mirroring POST /v1/campaign.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/wire"
)

// Shard protocol limits and defaults.
const (
	// DefaultMaxShardPoints caps the grid points of one lease.
	DefaultMaxShardPoints = 1024
	// DefaultHeartbeat is the worker's blank-line keepalive interval.
	DefaultHeartbeat = 2 * time.Second
)

// ShardRequest is the POST /v1/shard body: the campaign's wire form
// plus the leased point indices (strictly increasing).
type ShardRequest struct {
	Campaign experiments.CampaignRequest `json:"campaign"`
	Points   []int                       `json:"points"`
}

// LoadReporter is the worker-state surface the shard handler feeds:
// Draining gates new leases, ShardStarted/ShardFinished drive the load
// gauges behind /healthz and /stats. *engine.Server implements it.
type LoadReporter interface {
	Draining() bool
	ShardStarted()
	ShardFinished()
}

// WorkerConfig parameterises the shard handler.
type WorkerConfig struct {
	// MaxPoints caps the points of one lease; 0 means
	// DefaultMaxShardPoints.
	MaxPoints int
	// Heartbeat is the blank-line keepalive interval; 0 means
	// DefaultHeartbeat, negative disables heartbeats.
	Heartbeat time.Duration
	// Load, when non-nil, reports draining state and shard load
	// (normally the node's *engine.Server).
	Load LoadReporter
}

// NewWorkerHandler serves POST /v1/shard on the given engine.
func NewWorkerHandler(eng *engine.Engine, cfg WorkerConfig) http.Handler {
	if cfg.MaxPoints <= 0 {
		cfg.MaxPoints = DefaultMaxShardPoints
	}
	if cfg.Heartbeat == 0 {
		cfg.Heartbeat = DefaultHeartbeat
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeJSONError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		if cfg.Load != nil && cfg.Load.Draining() {
			writeJSONError(w, http.StatusServiceUnavailable, "draining")
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, experiments.MaxCampaignBodyBytes)
		var req ShardRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeJSONError(w, http.StatusBadRequest, "invalid request: %v", err)
			return
		}
		campaign, err := req.Campaign.Config()
		if err != nil {
			writeJSONError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if len(req.Points) == 0 {
			writeJSONError(w, http.StatusBadRequest, "empty lease: points must name at least one grid point")
			return
		}
		if len(req.Points) > cfg.MaxPoints {
			writeJSONError(w, http.StatusBadRequest, "%d points exceed this worker's lease limit %d", len(req.Points), cfg.MaxPoints)
			return
		}
		// Config returns the normalized campaign, so these are the sets
		// and methods actually computed, not restated defaults.
		if analyses := len(req.Points) * campaign.SetsPerPoint * len(campaign.Methods); analyses > experiments.MaxCampaignAnalyses {
			writeJSONError(w, http.StatusBadRequest, "%d analyses exceed limit %d", analyses, experiments.MaxCampaignAnalyses)
			return
		}

		if cfg.Load != nil {
			cfg.Load.ShardStarted()
			defer cfg.Load.ShardFinished()
		}
		opts := experiments.RunOptions{
			Context: r.Context(),
			Engine:  eng,
			Obs:     eng.Obs(),
		}
		if wire.Accepts(r.Header.Get("Accept")) {
			w.Header().Set("Content-Type", wire.ContentType)
			w.WriteHeader(http.StatusOK)
			out := newHeartbeatWriter(w, cfg.Heartbeat, wire.HeartbeatFrame)
			defer out.stop()
			var payload, frame []byte
			opts.OnResult = func(pr experiments.PointResult) error {
				var err error
				if payload, err = experiments.AppendPointResultBinary(payload[:0], pr); err != nil {
					return err
				}
				frame = wire.AppendFrame(frame[:0], wire.FrameResult, payload)
				_, err = out.Write(frame)
				return err
			}
			if _, err := experiments.RunCampaignSubset(campaign, req.Points, opts); err != nil {
				// Too late for a status code; emit a terminal error frame
				// the coordinator treats as a shard failure.
				out.Write(wire.AppendFrame(nil, wire.FrameError, []byte(err.Error())))
			}
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		out := newHeartbeatWriter(w, cfg.Heartbeat, []byte("\n"))
		defer out.stop()
		opts.JSONL = out
		if _, err := experiments.RunCampaignSubset(campaign, req.Points, opts); err != nil {
			// Too late for a status code; emit a terminal error line the
			// coordinator treats as a shard failure.
			data, _ := json.Marshal(map[string]string{"error": err.Error()})
			out.Write(append(data, '\n'))
		}
	})
}

func writeJSONError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// heartbeatWriter serialises result writes with periodic keepalives
// (beat is the codec's idle payload: a blank line for JSONL, a
// heartbeat frame for binary) and flushes each write so results reach
// the coordinator as they are produced.
type heartbeatWriter struct {
	mu      sync.Mutex
	w       http.ResponseWriter
	beat    []byte
	stopped bool // no writes may start once set: the handler is returning
	done    chan struct{}
	once    sync.Once
}

func newHeartbeatWriter(w http.ResponseWriter, interval time.Duration, beat []byte) *heartbeatWriter {
	h := &heartbeatWriter{w: w, beat: beat, done: make(chan struct{})}
	if interval > 0 {
		go func() {
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-h.done:
					return
				case <-t.C:
					h.mu.Lock()
					if !h.stopped {
						h.w.Write(h.beat)
						h.flushLocked()
					}
					h.mu.Unlock()
				}
			}
		}()
	}
	return h
}

func (h *heartbeatWriter) Write(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	n, err := h.w.Write(p)
	h.flushLocked()
	return n, err
}

func (h *heartbeatWriter) flushLocked() {
	if fl, ok := h.w.(http.Flusher); ok {
		fl.Flush()
	}
}

// stop ends the keepalive goroutine and fences it off the
// ResponseWriter: once stop returns, no beat can touch w again (the
// handler is about to return it to net/http).
func (h *heartbeatWriter) stop() {
	h.once.Do(func() { close(h.done) })
	h.mu.Lock()
	h.stopped = true
	h.mu.Unlock()
}

package cluster

// The coordinator's lease state machine. A campaign's remaining points
// are partitioned into shards (experiments.PlanShards); each shard is
// leased to at most one worker at a time, shrinks as the worker streams
// point results back (Progress), and is either completed or failed and
// requeued with its remaining points. Requeues from genuine failures
// are bounded per shard; a handback (worker started draining) requeues
// without consuming a retry, because the shard did nothing wrong.
//
// The invariants — every point completed exactly once, no shard leased
// by two workers, failure requeues never exceeding the bound — are
// property-checked in lease_test.go over random event sequences.

import (
	"fmt"
	"sync"

	"repro/internal/obs"
)

// Lease is one granted unit of work: the remaining point indices of a
// shard, always in increasing order.
type Lease struct {
	Shard  int
	Points []int
}

type shardState int

const (
	shardPending shardState = iota
	shardLeased
	shardDone
)

// Tracker is the lease state machine. All methods are safe for
// concurrent use; Next blocks until work is available or the campaign
// is finished or aborted.
type Tracker struct {
	mu         sync.Mutex
	cond       *sync.Cond
	remaining  [][]int // per shard: points not yet streamed back (increasing)
	state      []shardState
	holder     []string
	fails      []int // failure requeues so far, per shard
	maxRetries int
	pending    []int // FIFO of grantable shard ids
	open       int   // shards not yet done
	err        error // terminal failure; set at most once

	// Lease-flow counters, guarded by mu like the rest of the state
	// (nil without Instrument; obs counters are nil-safe, so the
	// transition sites increment unconditionally).
	grants      *obs.Counter
	completions *obs.Counter
	failures    *obs.Counter
	handbacks   *obs.Counter
	requeues    *obs.Counter
	dialRetries *obs.Counter
}

// NewTracker builds the state machine over the given shard point lists.
// A shard that fails more than maxRetries times (i.e. maxRetries
// requeues have already been consumed) terminates the campaign.
func NewTracker(shards [][]int, maxRetries int) *Tracker {
	t := &Tracker{
		remaining:  make([][]int, len(shards)),
		state:      make([]shardState, len(shards)),
		holder:     make([]string, len(shards)),
		fails:      make([]int, len(shards)),
		maxRetries: maxRetries,
		open:       len(shards),
	}
	t.cond = sync.NewCond(&t.mu)
	for i, pts := range shards {
		t.remaining[i] = append([]int(nil), pts...)
		t.pending = append(t.pending, i)
	}
	return t
}

// Instrument publishes the tracker's lease flow in reg (nil = no-op):
// grants, completions, genuine failures, draining handbacks, and
// requeues as lpdag_cluster_lease_* counters, plus the outstanding
// point count as a gauge. Calling it again (a later campaign on the
// same registry) re-resolves the same series, so the counters stay
// cumulative across runs while the gauge follows the newest tracker.
// The counter fields are assigned under t.mu, so instrumenting a
// tracker whose worker loops are already running is safe (though the
// events before the call go uncounted).
func (t *Tracker) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	grants := reg.Counter("lpdag_cluster_lease_grants_total",
		"Shard leases granted to workers.")
	completions := reg.Counter("lpdag_cluster_lease_completions_total",
		"Shard leases fully streamed back and retired.")
	failures := reg.Counter("lpdag_cluster_lease_failures_total",
		"Shard leases that died (worker failure, stall, protocol error).")
	handbacks := reg.Counter("lpdag_cluster_lease_handbacks_total",
		"Shard leases returned by draining workers (no retry consumed).")
	requeues := reg.Counter("lpdag_cluster_lease_requeues_total",
		"Shard leases put back on the pending queue for another worker.")
	dialRetries := reg.Counter("lpdag_cluster_dial_retries_total",
		"Worker dispatch/health retries the coordinator backed off before.")
	reg.GaugeFunc("lpdag_cluster_points_outstanding",
		"Points of the current cluster campaign not yet streamed back.",
		func() float64 { return float64(t.Outstanding()) })
	t.mu.Lock()
	t.grants, t.completions, t.failures, t.handbacks, t.requeues =
		grants, completions, failures, handbacks, requeues
	t.dialRetries = dialRetries
	t.mu.Unlock()
}

// DialRetry counts one backed-off retry against an unreachable or
// failing worker (health probe or shard dispatch).
func (t *Tracker) DialRetry() {
	t.mu.Lock()
	t.dialRetries.Inc()
	t.mu.Unlock()
}

// Next blocks until a shard is grantable, then leases it to worker. It
// returns ok=false when the campaign is finished (all shards done) or
// terminally failed/aborted — the worker loop's signal to exit.
func (t *Tracker) Next(worker string) (Lease, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		if t.err != nil || t.open == 0 {
			return Lease{}, false
		}
		if len(t.pending) > 0 {
			return t.grantLocked(worker), true
		}
		t.cond.Wait()
	}
}

// TryGrant is the non-blocking form of Next: ok=false when nothing is
// grantable right now (which includes a finished or failed campaign).
func (t *Tracker) TryGrant(worker string) (Lease, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil || len(t.pending) == 0 {
		return Lease{}, false
	}
	return t.grantLocked(worker), true
}

func (t *Tracker) grantLocked(worker string) Lease {
	id := t.pending[0]
	t.pending = t.pending[1:]
	t.state[id] = shardLeased
	t.holder[id] = worker
	t.grants.Inc()
	return Lease{Shard: id, Points: append([]int(nil), t.remaining[id]...)}
}

// checkHeld validates that worker currently holds shard.
func (t *Tracker) checkHeld(shard int, worker string) error {
	if shard < 0 || shard >= len(t.state) {
		return fmt.Errorf("cluster: no shard %d", shard)
	}
	if t.state[shard] != shardLeased {
		return fmt.Errorf("cluster: shard %d is not leased", shard)
	}
	if t.holder[shard] != worker {
		return fmt.Errorf("cluster: shard %d is leased to %q, not %q", shard, t.holder[shard], worker)
	}
	return nil
}

// Progress records that worker streamed back the result of one point of
// its lease; the point leaves the shard's remaining set, so a later
// requeue re-runs only what is still missing.
func (t *Tracker) Progress(shard int, worker string, point int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.checkHeld(shard, worker); err != nil {
		return err
	}
	rem := t.remaining[shard]
	for i, p := range rem {
		if p == point {
			t.remaining[shard] = append(rem[:i:i], rem[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("cluster: point %d is not outstanding on shard %d", point, shard)
}

// Complete marks a lease finished. It fails if any point of the shard
// was never streamed back — an incomplete stream is a failure, not a
// completion — and in that case leaves the lease in place (the caller
// should Fail it).
func (t *Tracker) Complete(shard int, worker string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.checkHeld(shard, worker); err != nil {
		return err
	}
	if n := len(t.remaining[shard]); n > 0 {
		return fmt.Errorf("cluster: shard %d completed with %d points missing", shard, n)
	}
	t.retireLocked(shard)
	return nil
}

// retireLocked marks a fully streamed shard done and wakes waiters when
// it was the last one. Caller holds mu.
func (t *Tracker) retireLocked(shard int) {
	t.state[shard] = shardDone
	t.holder[shard] = ""
	t.completions.Inc()
	t.open--
	if t.open == 0 {
		t.cond.Broadcast()
	}
}

// requeueLocked releases a lease back to the pending queue and wakes a
// waiting worker. Caller holds mu.
func (t *Tracker) requeueLocked(shard int) {
	t.state[shard] = shardPending
	t.holder[shard] = ""
	t.pending = append(t.pending, shard)
	t.requeues.Inc()
	t.cond.Broadcast()
}

// Fail releases a lease after a genuine failure (worker death, stall,
// error, protocol violation) and requeues the shard's remaining points,
// consuming one retry. Exceeding the retry bound terminally fails the
// campaign. A shard whose points all arrived before the stream broke
// has nothing left to redo and completes instead.
func (t *Tracker) Fail(shard int, worker string, cause error) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.checkHeld(shard, worker); err != nil {
		return err
	}
	t.failures.Inc()
	if len(t.remaining[shard]) == 0 {
		t.retireLocked(shard)
		return nil
	}
	t.fails[shard]++
	if t.fails[shard] > t.maxRetries {
		t.failLocked(fmt.Errorf("cluster: shard %d failed %d times, retries exhausted: last cause: %w",
			shard, t.fails[shard], cause))
		return nil
	}
	t.requeueLocked(shard)
	return nil
}

// Handback releases a lease without consuming a retry: the worker is
// stopping (draining) and the shard is requeued untouched for someone
// else. Like Fail, a fully streamed shard completes instead.
func (t *Tracker) Handback(shard int, worker string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.checkHeld(shard, worker); err != nil {
		return err
	}
	t.handbacks.Inc()
	if len(t.remaining[shard]) == 0 {
		t.retireLocked(shard)
		return nil
	}
	t.requeueLocked(shard)
	return nil
}

// Abort terminally fails the campaign (context cancellation, all
// workers lost); blocked Next calls return false.
func (t *Tracker) Abort(err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err == nil && t.open > 0 {
		t.failLocked(err)
	}
}

func (t *Tracker) failLocked(err error) {
	if t.err == nil {
		t.err = err
	}
	t.cond.Broadcast()
}

// Done reports whether every shard completed.
func (t *Tracker) Done() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.open == 0
}

// Err returns the terminal failure, if any.
func (t *Tracker) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Outstanding returns the number of points not yet streamed back across
// all shards (for error reporting).
func (t *Tracker) Outstanding() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, rem := range t.remaining {
		n += len(rem)
	}
	return n
}

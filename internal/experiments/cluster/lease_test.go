package cluster

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestLeaseTrackerQuick drives the lease state machine with random
// sequences of grant / progress / complete / fail (timeout) / handback
// events and checks the cluster safety invariants after every step:
//
//   - no shard is ever leased to two workers at once;
//   - every point is streamed back (Progress) exactly once, ever —
//     including across requeues of its shard;
//   - failure requeues per shard never exceed the retry bound, and
//     exceeding it terminally fails the campaign;
//   - when the tracker reports Done, every shard completed and every
//     point was streamed exactly once.
func TestLeaseTrackerQuick(t *testing.T) {
	type scenario struct {
		Seed       int64
		SizeBytes  []uint8
		RetryByte  uint8
		WorkerByte uint8
	}
	check := func(s scenario) bool {
		rng := rand.New(rand.NewSource(s.Seed))
		// 1..6 shards of 1..4 points, globally unique increasing indices.
		nshards := len(s.SizeBytes)%6 + 1
		maxRetries := int(s.RetryByte)%3 + 1
		nworkers := int(s.WorkerByte)%3 + 1
		var shards [][]int
		next := 0
		for i := 0; i < nshards; i++ {
			size := 1
			if i < len(s.SizeBytes) {
				size = int(s.SizeBytes[i])%4 + 1
			}
			var pts []int
			for j := 0; j < size; j++ {
				pts = append(pts, next)
				next++
			}
			shards = append(shards, pts)
		}
		tr := NewTracker(shards, maxRetries)

		type leaseModel struct {
			worker    string
			remaining map[int]bool
		}
		active := map[int]*leaseModel{} // shard -> live lease
		doneShards := map[int]bool{}
		progressed := map[int]int{} // point -> times streamed
		failsUsed := map[int]int{}  // shard -> consumed retries
		workers := make([]string, nworkers)
		for i := range workers {
			workers[i] = fmt.Sprintf("w%d", i)
		}

		finishLease := func(shard int) { delete(active, shard) }

		for step := 0; step < 200; step++ {
			if tr.Err() != nil || tr.Done() {
				break
			}
			switch op := rng.Intn(10); {
			case op < 4 || len(active) == 0: // grant
				w := workers[rng.Intn(nworkers)]
				lease, ok := tr.TryGrant(w)
				if !ok {
					continue
				}
				if active[lease.Shard] != nil {
					t.Errorf("shard %d granted to %q while leased to %q",
						lease.Shard, w, active[lease.Shard].worker)
					return false
				}
				if doneShards[lease.Shard] {
					t.Errorf("shard %d granted after completion", lease.Shard)
					return false
				}
				lm := &leaseModel{worker: w, remaining: map[int]bool{}}
				for i, p := range lease.Points {
					if i > 0 && lease.Points[i-1] >= p {
						t.Errorf("lease points not increasing: %v", lease.Points)
						return false
					}
					if progressed[p] > 0 {
						t.Errorf("point %d re-leased after being streamed", p)
						return false
					}
					lm.remaining[p] = true
				}
				active[lease.Shard] = lm
			default: // act on a random live lease
				var ids []int
				for id := range active {
					ids = append(ids, id)
				}
				id := ids[rng.Intn(len(ids))]
				lm := active[id]
				switch act := rng.Intn(4); {
				case act == 0 && len(lm.remaining) > 0: // progress one point
					var p int
					for q := range lm.remaining {
						p = q
						break
					}
					if err := tr.Progress(id, lm.worker, p); err != nil {
						t.Errorf("Progress(%d, %q, %d): %v", id, lm.worker, p, err)
						return false
					}
					delete(lm.remaining, p)
					progressed[p]++
					if progressed[p] > 1 {
						t.Errorf("point %d streamed %d times", p, progressed[p])
						return false
					}
				case act == 1: // complete
					err := tr.Complete(id, lm.worker)
					if len(lm.remaining) == 0 {
						if err != nil {
							t.Errorf("Complete with all points streamed: %v", err)
							return false
						}
						doneShards[id] = true
						finishLease(id)
					} else if err == nil {
						t.Errorf("Complete accepted with %d points missing", len(lm.remaining))
						return false
					}
				case act == 2: // fail (timeout / error / stall)
					if err := tr.Fail(id, lm.worker, fmt.Errorf("injected")); err != nil {
						t.Errorf("Fail: %v", err)
						return false
					}
					if len(lm.remaining) == 0 {
						doneShards[id] = true // nothing left: counts as done
					} else {
						failsUsed[id]++
						if failsUsed[id] > maxRetries && tr.Err() == nil {
							t.Errorf("shard %d consumed %d retries (bound %d) without terminal failure",
								id, failsUsed[id], maxRetries)
							return false
						}
					}
					finishLease(id)
				default: // handback (draining worker); never consumes a retry
					if err := tr.Handback(id, lm.worker); err != nil {
						t.Errorf("Handback: %v", err)
						return false
					}
					if len(lm.remaining) == 0 {
						doneShards[id] = true
					}
					finishLease(id)
				}
			}

			// Cross-worker safety: a foreign worker can never act on a
			// live lease.
			for id, lm := range active {
				other := lm.worker + "-imposter"
				if err := tr.Complete(id, other); err == nil {
					t.Errorf("imposter completed shard %d", id)
					return false
				}
			}
		}

		if tr.Done() {
			if len(doneShards) != nshards {
				t.Errorf("tracker done with %d/%d shards completed", len(doneShards), nshards)
				return false
			}
			for p := 0; p < next; p++ {
				if progressed[p] != 1 {
					t.Errorf("campaign done but point %d streamed %d times", p, progressed[p])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

// TestLeaseTrackerRetryExhaustion pins the terminal-failure path: a
// shard that keeps failing consumes the bound and kills the campaign
// with a descriptive error, after which nothing is grantable.
func TestLeaseTrackerRetryExhaustion(t *testing.T) {
	tr := NewTracker([][]int{{0, 1}}, 2)
	for i := 0; i < 3; i++ {
		lease, ok := tr.TryGrant("w")
		if !ok {
			t.Fatalf("grant %d refused", i)
		}
		if err := tr.Fail(lease.Shard, "w", fmt.Errorf("boom")); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Err() == nil {
		t.Fatal("three failures with bound 2 should terminally fail")
	}
	if _, ok := tr.TryGrant("w"); ok {
		t.Error("grant after terminal failure")
	}
	if _, ok := tr.Next("w"); ok {
		t.Error("Next should return false after terminal failure")
	}
}

// TestLeaseTrackerPartialRequeue pins the resume-like failover: points
// streamed before a failure stay completed, and the requeued lease
// carries only what is missing.
func TestLeaseTrackerPartialRequeue(t *testing.T) {
	tr := NewTracker([][]int{{3, 5, 9}}, 3)
	lease, _ := tr.TryGrant("w1")
	if err := tr.Progress(lease.Shard, "w1", 5); err != nil {
		t.Fatal(err)
	}
	if err := tr.Fail(lease.Shard, "w1", fmt.Errorf("died")); err != nil {
		t.Fatal(err)
	}
	lease2, ok := tr.TryGrant("w2")
	if !ok {
		t.Fatal("requeued shard not grantable")
	}
	if got, want := fmt.Sprint(lease2.Points), "[3 9]"; got != want {
		t.Fatalf("requeued lease points %v, want %v", got, want)
	}
	for _, p := range lease2.Points {
		if err := tr.Progress(lease2.Shard, "w2", p); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Complete(lease2.Shard, "w2"); err != nil {
		t.Fatal(err)
	}
	if !tr.Done() {
		t.Error("all points streamed: tracker should be done")
	}
}

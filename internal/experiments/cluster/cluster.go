// Package cluster fans a sweep campaign out across machines: a
// coordinator splits the campaign's point grid into shard leases
// (reusing the experiments shard planner) and dispatches them to remote
// lpdag-serve workers over POST /v1/shard, merging the streamed JSONL
// shard results back in index order.
//
// Determinism: every grid point is deterministic in (campaign seed,
// point index) alone — experiments.SeedFor — so it does not matter
// which worker computes a point, how many workers the cluster has, or
// how often a shard is retried: the merged JSONL/CSV byte streams are
// identical to a local single-worker run of the same campaign. The
// end-to-end test in cluster_test.go kills a worker mid-campaign and
// asserts exactly that.
//
// Failure handling: a lease dies when its stream goes silent past
// LeaseTimeout (the worker heartbeats every couple of seconds, so
// silence means death or stall), returns an error line, breaks, or
// ends with points missing. The shard's not-yet-streamed points are
// requeued to another worker, bounded by MaxShardRetries; a worker
// that fails WorkerFailLimit consecutive times is excluded, and one
// whose /healthz reports draining is handed back its lease and simply
// stops being scheduled (no retry consumed). Points that did arrive
// before a failure are kept — the requeued lease re-runs only what is
// missing, exactly like resuming from a partial JSONL.
package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/wire"
)

// Coordinator defaults.
const (
	DefaultLeaseTimeout    = 30 * time.Second
	DefaultMaxShardRetries = 3
	DefaultWorkerFailLimit = 3
)

// Config parameterises a cluster campaign run.
type Config struct {
	// Campaign is the campaign to run. Scenarios must be registry
	// entries (the wire protocol names them); Workers/Shards fields of
	// the campaign are worker-local knobs and are not shipped.
	Campaign experiments.CampaignConfig
	// Workers are the base URLs of the lpdag-serve worker nodes, e.g.
	// "http://host1:8080". At least one is required.
	Workers []string
	// Client issues the HTTP requests (nil = a client with no global
	// timeout; the lease watchdog bounds silence instead, because a
	// healthy shard stream may legitimately run for a long time).
	Client *http.Client
	// LeaseTimeout is the maximum silence on a shard stream before the
	// lease is declared dead and requeued; 0 means DefaultLeaseTimeout.
	// Workers heartbeat well below the default.
	LeaseTimeout time.Duration
	// MaxShardRetries bounds the failure requeues of one shard; 0 means
	// DefaultMaxShardRetries. Exceeding it fails the campaign.
	MaxShardRetries int
	// WorkerFailLimit excludes a worker after this many consecutive
	// failures; 0 means DefaultWorkerFailLimit.
	WorkerFailLimit int
	// Shards is the lease granularity (0 = 4 × len(Workers), capped at
	// the remaining point count). More shards mean finer failover
	// rebalancing; shard count never affects output bytes.
	Shards int
	// MaxLeasePoints caps the points of one lease; 0 means
	// DefaultMaxShardPoints (the workers' default admission limit).
	// Set it to the smallest -max-shard-points across the cluster —
	// the shard count is raised as needed so no lease exceeds it.
	MaxLeasePoints int
	// DisableBinary forces JSONL shard streams. By default the
	// coordinator asks each worker for the binary frame codec
	// (Accept: application/x-lpdag-bin) and falls back per response
	// Content-Type, so mixed-version clusters work either way; the
	// codec never affects the merged output bytes.
	DisableBinary bool
}

// Run executes the campaign across the cluster and returns the
// per-point results in index order, streaming them to opts.JSONL /
// opts.CSV byte-identically to a local run. opts.Engine is ignored (the
// compute happens on the workers); opts.Completed resumes from prior
// results exactly like RunCampaign.
func Run(cfg Config, opts experiments.RunOptions) ([]experiments.PointResult, error) {
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("cluster: no workers")
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = DefaultLeaseTimeout
	}
	if cfg.MaxShardRetries <= 0 {
		cfg.MaxShardRetries = DefaultMaxShardRetries
	}
	if cfg.WorkerFailLimit <= 0 {
		cfg.WorkerFailLimit = DefaultWorkerFailLimit
	}
	wreq, err := cfg.Campaign.WireRequest()
	if err != nil {
		return nil, err
	}
	points, err := cfg.Campaign.Points()
	if err != nil {
		return nil, err
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}

	results, ready, err := experiments.PrepareResume(cfg.Campaign, points, opts.Completed)
	if err != nil {
		return nil, err
	}
	var remaining []int
	for i := range points {
		if !ready[i] {
			remaining = append(remaining, i)
		}
	}

	shardCount := cfg.Shards
	if shardCount <= 0 {
		shardCount = 4 * len(cfg.Workers)
	}
	// Never plan a lease the workers would refuse to admit: striping
	// makes shard sizes differ by at most one, so this shard count
	// keeps every lease within the cap.
	maxLease := cfg.MaxLeasePoints
	if maxLease <= 0 {
		maxLease = DefaultMaxShardPoints
	}
	if min := (len(remaining) + maxLease - 1) / maxLease; shardCount < min {
		shardCount = min
	}
	// PlanShards stripes positions; map them back to point indices. The
	// stripes of an ascending list are ascending, as the wire requires.
	var shards [][]int
	for _, positions := range experiments.PlanShards(len(remaining), shardCount) {
		pts := make([]int, len(positions))
		for i, p := range positions {
			pts[i] = remaining[p]
		}
		shards = append(shards, pts)
	}
	tracker := NewTracker(shards, cfg.MaxShardRetries)
	tracker.Instrument(opts.Obs)

	// A context watcher aborts the tracker so worker loops blocked in
	// Next wake up when the caller cancels.
	watchCtx, stopWatch := context.WithCancel(ctx)
	defer stopWatch()
	go func() {
		<-watchCtx.Done()
		if ctx.Err() != nil {
			tracker.Abort(ctx.Err())
		}
	}()

	c := &coordinator{cfg: cfg, wreq: wreq, points: points, tracker: tracker,
		resultc: make(chan experiments.PointResult, 2*len(cfg.Workers))}
	var wg sync.WaitGroup
	for _, url := range cfg.Workers {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			c.workerLoop(ctx, url)
		}(url)
	}
	go func() {
		wg.Wait()
		// All worker loops exited. If leases are still outstanding the
		// cluster ran out of workers; fail rather than hang.
		if !tracker.Done() {
			tracker.Abort(fmt.Errorf("cluster: all %d workers failed, were excluded, or are draining with %d points outstanding",
				len(cfg.Workers), tracker.Outstanding()))
		}
		close(c.resultc)
	}()

	var (
		next    = 0
		start   = time.Now()
		carried = len(points) - len(remaining)
		got     = 0
		emitter = experiments.NewStreamEmitter(opts.JSONL, opts.CSV, cfg.Campaign.MethodNames())
	)
	emitFrontier := func() {
		for next < len(points) && ready[next] {
			emitter.Emit(results[next])
			next++
		}
	}
	emitFrontier() // resumed prefix, if any
	metrics := experiments.NewCampaignMetrics(opts.Obs)
	metrics.Start(len(points), carried)
	for pr := range c.resultc {
		if ready[pr.Index] {
			continue // duplicate from a retried shard; deterministic, identical
		}
		results[pr.Index] = pr
		ready[pr.Index] = true
		got++
		emitFrontier()
		if opts.OnProgress != nil || metrics != nil {
			elapsed := time.Since(start)
			p := experiments.Progress{Done: carried + got, Total: len(points), Elapsed: elapsed}
			if rem := p.Total - p.Done; rem > 0 {
				p.ETA = time.Duration(float64(elapsed) / float64(got) * float64(rem))
			}
			metrics.Observe(p)
			if opts.OnProgress != nil {
				opts.OnProgress(p)
			}
		}
	}

	if err := tracker.Err(); err != nil {
		return nil, err
	}
	if !tracker.Done() {
		return nil, fmt.Errorf("cluster: campaign incomplete (%d points outstanding)", tracker.Outstanding())
	}
	if err := emitter.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// coordinator carries the per-run state shared by the worker loops.
type coordinator struct {
	cfg     Config
	wreq    experiments.CampaignRequest
	points  []experiments.Point
	tracker *Tracker
	resultc chan experiments.PointResult
}

// errDraining marks a worker that reported draining: stop scheduling to
// it, but don't count a failure or consume a shard retry.
var errDraining = fmt.Errorf("cluster: worker draining")

// workerLoop pulls leases for one worker node until the campaign
// finishes, the worker is excluded for repeated failures, or it starts
// draining.
func (c *coordinator) workerLoop(ctx context.Context, url string) {
	consecutive := 0
	for {
		if ctx.Err() != nil {
			return
		}
		if draining, err := c.checkHealth(ctx, url); err != nil {
			consecutive++
			if consecutive >= c.cfg.WorkerFailLimit {
				return
			}
			c.tracker.DialRetry()
			select {
			case <-ctx.Done():
				return
			case <-time.After(c.backoff(consecutive)):
			}
			continue
		} else if draining {
			return
		}
		lease, ok := c.tracker.Next(url)
		if !ok {
			return
		}
		err := c.runShard(ctx, url, lease)
		switch {
		case err == nil:
			if cerr := c.tracker.Complete(lease.Shard, url); cerr != nil {
				// Stream ended cleanly but points are missing: a failure.
				c.tracker.Fail(lease.Shard, url, cerr)
				consecutive++
			} else {
				consecutive = 0
			}
		case err == errDraining:
			c.tracker.Handback(lease.Shard, url)
			return
		default:
			c.tracker.Fail(lease.Shard, url, fmt.Errorf("worker %s: %w", url, err))
			consecutive++
		}
		if consecutive >= c.cfg.WorkerFailLimit {
			return
		}
		if consecutive > 0 {
			// A dispatch just failed: back off before redialing this
			// worker, exactly like a failed health probe. Hammering a
			// worker that is crash-looping or saturated only turns one
			// failure into WorkerFailLimit of them within milliseconds.
			c.tracker.DialRetry()
			select {
			case <-ctx.Done():
				return
			case <-time.After(c.backoff(consecutive)):
			}
		}
	}
}

// backoff spaces out retries against an unhealthy worker: capped
// exponential, jittered so workers probed by many coordinator loops do
// not see synchronized retry bursts.
func (c *coordinator) backoff(attempt int) time.Duration {
	d := 100 * time.Millisecond << (attempt - 1)
	if d > 2*time.Second || d <= 0 {
		d = 2 * time.Second
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// checkHealth probes a worker's /healthz; draining=true means the node
// asked not to be scheduled.
func (c *coordinator) checkHealth(ctx context.Context, url string) (draining bool, err error) {
	hctx, cancel := context.WithTimeout(ctx, c.cfg.LeaseTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(hctx, http.MethodGet, url+"/healthz", nil)
	if err != nil {
		return false, err
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	var body struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&body); err != nil {
		return false, fmt.Errorf("healthz: %w", err)
	}
	if body.Status == "draining" {
		return true, nil
	}
	if resp.StatusCode != http.StatusOK || body.Status != "ok" {
		return false, fmt.Errorf("healthz: status %d %q", resp.StatusCode, body.Status)
	}
	return false, nil
}

// runShard executes one lease: POST the shard, stream the result lines,
// validate each against the grid, and feed them to the merger. Any
// received silence longer than LeaseTimeout kills the request — the
// worker heartbeats, so a live shard is never silent that long.
func (c *coordinator) runShard(ctx context.Context, url string, lease Lease) error {
	body, err := json.Marshal(ShardRequest{Campaign: c.wreq, Points: lease.Points})
	if err != nil {
		return err
	}
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	watchdog := time.AfterFunc(c.cfg.LeaseTimeout, cancel)
	defer watchdog.Stop()

	req, err := http.NewRequestWithContext(sctx, http.MethodPost, url+"/v1/shard", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if !c.cfg.DisableBinary {
		req.Header.Set("Accept", wire.ContentType+", application/x-ndjson")
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return c.leaseErr(sctx, ctx, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if resp.StatusCode == http.StatusServiceUnavailable && strings.Contains(string(msg), "draining") {
			return errDraining
		}
		return fmt.Errorf("shard request: status %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	if resp.Header.Get("Content-Type") == wire.ContentType {
		return c.readBinaryShard(sctx, ctx, resp.Body, url, lease, watchdog)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		watchdog.Reset(c.cfg.LeaseTimeout)
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue // heartbeat
		}
		var line struct {
			experiments.PointResult
			Err *string `json:"error"`
		}
		dec := json.NewDecoder(bytes.NewReader(raw))
		if err := dec.Decode(&line); err != nil {
			return fmt.Errorf("shard stream: %w", err)
		}
		if line.Err != nil {
			return fmt.Errorf("shard stream: worker error: %s", *line.Err)
		}
		pr := line.PointResult
		if err := experiments.CheckResult(c.cfg.Campaign, c.points, pr); err != nil {
			return fmt.Errorf("shard stream: %w", err)
		}
		if err := c.tracker.Progress(lease.Shard, url, pr.Index); err != nil {
			return fmt.Errorf("shard stream: %w", err)
		}
		select {
		case c.resultc <- pr:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if err := sc.Err(); err != nil {
		return c.leaseErr(sctx, ctx, err)
	}
	return nil
}

// readBinaryShard consumes a binary shard stream: heartbeat frames feed
// the watchdog, result frames decode and merge exactly like JSON lines
// (same CheckResult and tracker validation), an error frame fails the
// lease, and a clean EOF ends it.
func (c *coordinator) readBinaryShard(sctx, ctx context.Context, body io.Reader, url string, lease Lease, watchdog *time.Timer) error {
	fr := wire.NewReader(body, 16*1024*1024)
	for {
		typ, payload, err := fr.ReadFrame()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return c.leaseErr(sctx, ctx, fmt.Errorf("shard stream: %w", err))
		}
		watchdog.Reset(c.cfg.LeaseTimeout)
		switch typ {
		case wire.FrameHeartbeat:
			continue
		case wire.FrameError:
			return fmt.Errorf("shard stream: worker error: %s", payload)
		}
		pr, err := experiments.DecodePointResultBinary(payload)
		if err != nil {
			return fmt.Errorf("shard stream: %w", err)
		}
		if err := experiments.CheckResult(c.cfg.Campaign, c.points, pr); err != nil {
			return fmt.Errorf("shard stream: %w", err)
		}
		if err := c.tracker.Progress(lease.Shard, url, pr.Index); err != nil {
			return fmt.Errorf("shard stream: %w", err)
		}
		select {
		case c.resultc <- pr:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// leaseErr maps a transport error to a lease-deadline error when the
// watchdog (not the caller) cancelled the stream.
func (c *coordinator) leaseErr(sctx, ctx context.Context, err error) error {
	if sctx.Err() != nil && ctx.Err() == nil {
		return fmt.Errorf("lease deadline: no data for %s: %w", c.cfg.LeaseTimeout, err)
	}
	return err
}

package cluster

// Observability-plane tests that need the whole stack in one place:
// engine + server + sessions + campaign orchestrator + cluster lease
// tracker all publishing into one registry. They live here because this
// is the only package allowed to import everything above the engine.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/obs"
)

// metricsCatalog is the golden metric catalog: every family the
// observability plane can register, as "name|type|labelKeys|help".
// A metric rename, a label change, or a reworded help string is an
// intentional, reviewed event — update this list when it happens.
var metricsCatalog = []string{
	"go_goroutines|gauge||Current number of goroutines.",
	"go_memstats_heap_inuse_bytes|gauge||Bytes in in-use heap spans.",
	"lpdag_analysis_cache_lookup_seconds|histogram||Time per shared-cache µ-table fetch (analyzer-local memo misses only).",
	"lpdag_analysis_fixed_point_iterations|histogram||Iterations per response-time fixed point.",
	"lpdag_analysis_fixed_point_seconds|histogram||Time per per-task response-time fixed point.",
	"lpdag_analysis_full_runs_total|counter||From-scratch analysis passes.",
	"lpdag_analysis_incremental_runs_total|counter||Incremental (suffix-reusing) analysis passes.",
	"lpdag_analysis_suffix_push_seconds|histogram||Time in full bottom-up blocking aggregator pushes.",
	"lpdag_analysis_suffix_restore_seconds|histogram||Time restoring and replaying suffix blocking checkpoints in incremental re-analysis.",
	"lpdag_build_info|gauge|go,version|Build metadata; the value is always 1.",
	"lpdag_cache_entries|gauge||Materialized analysis cache entries (in-flight computes excluded).",
	"lpdag_cache_evictions_total|counter||Analysis cache entries evicted by the second-chance size bound.",
	"lpdag_cache_hit_ratio|gauge||hits/(hits+misses+waits) since process start; 0 before any lookup.",
	"lpdag_cache_hits_total|counter||Analysis cache lookups served from a materialized entry.",
	"lpdag_cache_misses_total|counter||Analysis cache lookups that had to compute.",
	"lpdag_cache_waits_total|counter||Analysis cache lookups that blocked on another goroutine's in-flight compute.",
	"lpdag_campaign_eta_seconds|gauge||Linear-extrapolation ETA of the current campaign; 0 when done or unknown.",
	"lpdag_campaign_points_completed_total|counter||Campaign points computed by this process, cumulative across runs.",
	"lpdag_campaign_points_done|gauge||Points of the current campaign finished so far, including any resumed prefix.",
	"lpdag_campaign_points_planned|gauge||Grid points of the campaign (or shard) currently running.",
	"lpdag_cluster_active_shards|gauge||Shard leases currently executing on this worker.",
	"lpdag_cluster_lease_completions_total|counter||Shard leases fully streamed back and retired.",
	"lpdag_cluster_lease_failures_total|counter||Shard leases that died (worker failure, stall, protocol error).",
	"lpdag_cluster_lease_grants_total|counter||Shard leases granted to workers.",
	"lpdag_cluster_lease_handbacks_total|counter||Shard leases returned by draining workers (no retry consumed).",
	"lpdag_cluster_dial_retries_total|counter||Worker dispatch/health retries the coordinator backed off before.",
	"lpdag_cluster_lease_requeues_total|counter||Shard leases put back on the pending queue for another worker.",
	"lpdag_cluster_points_outstanding|gauge||Points of the current cluster campaign not yet streamed back.",
	"lpdag_cluster_shards_served_total|counter||Shard leases this worker finished (completed or failed).",
	"lpdag_engine_job_failures_total|counter||Jobs that completed with an error.",
	"lpdag_engine_job_duration_seconds|histogram|kind|Job execution time by kind (excludes queue wait).",
	"lpdag_engine_jobs_abandoned_total|counter||Queued jobs skipped because the submitter's context expired first.",
	"lpdag_engine_jobs_total|counter|kind|Completed jobs by kind.",
	"lpdag_engine_queue_capacity|gauge||Capacity of the pending-job queue (admission-control bound).",
	"lpdag_engine_queue_depth|gauge||Jobs submitted and not yet finished (running or queued).",
	"lpdag_engine_queue_wait_seconds|histogram||Time a job spent queued before a worker picked it up.",
	"lpdag_engine_workers|gauge||Configured worker goroutines of the engine pool.",
	"lpdag_http_in_flight|gauge||Requests currently inside the admission semaphore.",
	"lpdag_http_request_duration_seconds|histogram|route|HTTP request latency by route pattern.",
	"lpdag_http_requests_shed_total|counter||Requests refused with 503 by the in-flight semaphore.",
	"lpdag_http_requests_total|counter|code,route|HTTP requests served, by route pattern and status code.",
	"lpdag_http_slow_requests_total|counter||Requests slower than the configured slow-request threshold.",
	"lpdag_http_write_errors_total|counter||Responses lost to encode or mid-body write failures.",
	"lpdag_repair_candidates_total|counter||Candidate placements evaluated by session repair searches.",
	"lpdag_repair_flips_total|counter||Repair searches that found a transform sequence flipping the set schedulable.",
	"lpdag_repair_search_seconds|histogram||End-to-end session repair search duration (gate and queue wait excluded).",
	"lpdag_server_draining|gauge||1 while SIGTERM drain is in progress, else 0.",
	"lpdag_session_fsync_errors_total|counter||Durable session store append/fsync failures (durability degraded, serving continues).",
	"lpdag_session_gate_wait_seconds|histogram||Time a session operation waited on its per-session serialization gate.",
	"lpdag_session_handoffs_total|counter||Session snapshots accepted over POST /v1/sessions/handoff.",
	"lpdag_session_redirects_total|counter||Session requests answered 307 to the owning ring member.",
	"lpdag_session_restores_total|counter||Sessions restored from the durable store at startup.",
	"lpdag_session_snapshots_total|counter||Session snapshots durably appended to the session store.",
	"lpdag_sessions_active|gauge||Live analysis sessions after sweeping expired ones.",
	"lpdag_sessions_created_total|counter||Analysis sessions created.",
	"lpdag_sessions_expired_total|counter||Analysis sessions evicted by the TTL sweep.",
	"lpdag_uptime_seconds|gauge||Seconds since the process registered its metrics.",
}

// scrapeCatalog parses a Prometheus text exposition into
// "name|type|labelKeys|help" lines, one per family, sorted.
func scrapeCatalog(t *testing.T, text string) []string {
	t.Helper()
	type fam struct {
		help, typ string
		labels    map[string]bool
	}
	fams := map[string]*fam{}
	get := func(name string) *fam {
		f, ok := fams[name]
		if !ok {
			f = &fam{labels: map[string]bool{}}
			fams[name] = f
		}
		return f
	}
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, _ := strings.Cut(rest, " ")
			get(name).help = help
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, _ := strings.Cut(rest, " ")
			get(name).typ = typ
			continue
		}
		// Sample line: name{k="v",...} value — fold histogram suffixes
		// back onto the family and drop the synthetic le label.
		name := line
		var labelPart string
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
			if line[i] == '{' {
				labelPart = line[i+1 : strings.LastIndex(line, "}")]
			}
		}
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suffix); base != name {
				if _, ok := fams[base]; ok {
					name = base
					break
				}
			}
		}
		f, ok := fams[name]
		if !ok {
			t.Fatalf("sample for undeclared family: %q", line)
		}
		for _, kv := range strings.Split(labelPart, ",") {
			if k, _, ok := strings.Cut(kv, "="); ok && k != "le" {
				f.labels[k] = true
			}
		}
	}
	var out []string
	for name, f := range fams {
		var keys []string
		for k := range f.labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		out = append(out, fmt.Sprintf("%s|%s|%s|%s", name, f.typ, strings.Join(keys, ","), f.help))
	}
	sort.Strings(out)
	return out
}

// TestMetricsCatalogGolden registers the full observability plane —
// instrumented engine, HTTP server, sessions, a local campaign, a lease
// tracker — on one registry, drives every surface once, and pins the
// scraped catalog (metric names, types, label keys, help) against the
// golden list above.
func TestMetricsCatalogGolden(t *testing.T) {
	reg := obs.NewRegistry()
	eng := engine.New(engine.Config{Workers: 2, Obs: reg})
	defer eng.Close()
	srv := engine.NewServer(eng, engine.ServerConfig{})
	handler := engine.LogRequests(srv, nil, reg, 0)

	// One request through the logged mux materializes the per-route
	// lazily created lpdag_http_requests_total/duration series.
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: status %d", rec.Code)
	}

	mixed, err := experiments.ScenarioByName("mixed")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := experiments.RunCampaign(experiments.CampaignConfig{
		Seed: 7, Ms: []int{2}, UFracs: []float64{0.3}, SetsPerPoint: 1,
		Scenarios: []experiments.Scenario{mixed},
	}, experiments.RunOptions{Engine: eng, Obs: reg}); err != nil {
		t.Fatal(err)
	}
	NewTracker([][]int{{0}}, 1).Instrument(reg)

	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: status %d", rec.Code)
	}
	got := scrapeCatalog(t, rec.Body.String())

	want := append([]string(nil), metricsCatalog...)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Errorf("catalog has %d families, golden has %d", len(got), len(want))
	}
	gotSet := map[string]bool{}
	for _, g := range got {
		gotSet[g] = true
	}
	for _, w := range want {
		if !gotSet[w] {
			t.Errorf("missing from scrape: %s", w)
		}
		delete(gotSet, w)
	}
	for g := range gotSet {
		t.Errorf("unexpected in scrape (add to golden?): %s", g)
	}
}

// TestClusterScrapeDuringCampaign runs a real coordinator + two
// instrumented workers and scrapes /metrics WHILE the campaign is
// active: the workers' scrapes must show campaign progress series (the
// shard runs publish them through the engine's registry) and the
// coordinator's registry must show the lease flow.
func TestClusterScrapeDuringCampaign(t *testing.T) {
	type obsWorker struct {
		url string
		reg *obs.Registry
	}
	var workers []obsWorker
	for i := 0; i < 2; i++ {
		reg := obs.NewRegistry()
		eng := engine.New(engine.Config{Workers: 2, Obs: reg})
		t.Cleanup(eng.Close)
		srv := engine.NewServer(eng, engine.ServerConfig{})
		mux := http.NewServeMux()
		mux.Handle("/v1/shard", NewWorkerHandler(eng, WorkerConfig{
			Heartbeat: 100 * time.Millisecond, Load: srv,
		}))
		mux.Handle("/", srv)
		ts := httptest.NewServer(mux)
		t.Cleanup(ts.Close)
		workers = append(workers, obsWorker{url: ts.URL, reg: reg})
	}

	coordReg := obs.NewRegistry()
	var (
		once        sync.Once
		workerBody  string
		scrapeErr   error
		midCampaign string
	)
	urls := []string{workers[0].url, workers[1].url}
	cfg := e2eCampaign(t)
	_, err := Run(Config{
		Campaign: cfg,
		Workers:  urls,
		Shards:   8,
	}, experiments.RunOptions{
		Context: context.Background(),
		Obs:     coordReg,
		OnProgress: func(p experiments.Progress) {
			if p.Done >= p.Total {
				return
			}
			once.Do(func() {
				// Mid-campaign: scrape every worker over HTTP and the
				// coordinator registry directly.
				for _, w := range urls {
					resp, err := http.Get(w + "/metrics")
					if err != nil {
						scrapeErr = err
						return
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						scrapeErr = fmt.Errorf("worker scrape: status %d", resp.StatusCode)
						return
					}
					workerBody += string(body)
				}
				var buf bytes.Buffer
				if err := coordReg.WriteText(&buf); err != nil {
					scrapeErr = err
					return
				}
				midCampaign = buf.String()
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if scrapeErr != nil {
		t.Fatal(scrapeErr)
	}
	for _, series := range []string{
		"lpdag_campaign_points_planned",
		"lpdag_campaign_points_done",
		"lpdag_engine_jobs_total",
		"lpdag_cluster_active_shards",
	} {
		if !strings.Contains(workerBody, series) {
			t.Errorf("mid-campaign worker scrape is missing %s", series)
		}
	}
	for _, series := range []string{
		"lpdag_cluster_lease_grants_total",
		"lpdag_cluster_points_outstanding",
		"lpdag_campaign_points_done",
	} {
		if !strings.Contains(midCampaign, series) {
			t.Errorf("mid-campaign coordinator scrape is missing %s", series)
		}
	}
	// The campaign ran: at least one lease was granted and completed.
	var buf bytes.Buffer
	if err := coordReg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	final := buf.String()
	for _, line := range []string{"lpdag_cluster_lease_grants_total 0", "lpdag_cluster_lease_completions_total 0"} {
		if strings.Contains(final, line) {
			t.Errorf("final coordinator scrape still reports %q", line)
		}
	}
}

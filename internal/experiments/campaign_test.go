package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gen"
)

// tinyCampaign is a campaign small enough for unit tests but with a
// multi-scenario, multi-m grid.
func tinyCampaign() CampaignConfig {
	return CampaignConfig{
		Seed:         2016,
		Ms:           []int{2, 4},
		UFracs:       []float64{0.3, 0.6},
		SetsPerPoint: 3,
		Scenarios: []Scenario{
			{Name: "mixed", Group: gen.GroupMixed},
			{Name: "wide", Group: gen.GroupParallel, Shape: gen.ShapeWide},
		},
		Workers: 2,
	}
}

func TestCampaignPointsGrid(t *testing.T) {
	pts, err := tinyCampaign().Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2*2*2 {
		t.Fatalf("grid size %d, want 8", len(pts))
	}
	for i, p := range pts {
		if p.Index != i {
			t.Fatalf("point %d has index %d", i, p.Index)
		}
	}
	// Scenarios outermost, then m, then u.
	if pts[0].Scenario.Name != "mixed" || pts[4].Scenario.Name != "wide" {
		t.Error("scenario enumeration order wrong")
	}
	if pts[0].M != 2 || pts[2].M != 4 {
		t.Error("core-count enumeration order wrong")
	}
	if pts[0].U != 0.6 || pts[1].U != 1.2 {
		t.Errorf("utilization grid wrong: %v, %v", pts[0].U, pts[1].U)
	}
}

func TestCampaignRejectsBadConfig(t *testing.T) {
	bad := tinyCampaign()
	bad.Scenarios[0].Name = "has,comma"
	if _, err := RunCampaign(bad, RunOptions{}); err == nil {
		t.Error("comma scenario name accepted")
	}
	bad2 := tinyCampaign()
	bad2.Ms = []int{0}
	if _, err := RunCampaign(bad2, RunOptions{}); err == nil {
		t.Error("zero core count accepted")
	}
	bad3 := tinyCampaign()
	bad3.UFracs = []float64{-1}
	if _, err := RunCampaign(bad3, RunOptions{}); err == nil {
		t.Error("negative utilization fraction accepted")
	}
}

func TestRunCampaignStreamsAndResults(t *testing.T) {
	var jsonl, csv strings.Builder
	var progress []Progress
	results, err := RunCampaign(tinyCampaign(), RunOptions{
		JSONL:      &jsonl,
		CSV:        &csv,
		OnProgress: func(p Progress) { progress = append(progress, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 {
		t.Fatalf("%d results, want 8", len(results))
	}
	for i, r := range results {
		if r.Index != i {
			t.Fatalf("result %d has index %d", i, r.Index)
		}
		if r.Sets != 3 {
			t.Fatalf("result %d: sets %d, want 3", i, r.Sets)
		}
		if len(r.Sched) != 3 {
			t.Fatalf("result %d: %d method entries, want 3", i, len(r.Sched))
		}
		for m, c := range r.Sched {
			if c < 0 || c > r.Sets {
				t.Fatalf("result %d: count %s=%d outside [0,%d]", i, m, c, r.Sets)
			}
		}
		// Method dominance must hold pointwise on identical sets.
		if r.Sched[core.LPILP.String()] > r.Sched[core.FPIdeal.String()] ||
			r.Sched[core.LPMax.String()] > r.Sched[core.LPILP.String()] {
			t.Fatalf("result %d: method ordering violated: %+v", i, r.Sched)
		}
	}

	// The JSONL stream decodes back to exactly the returned results.
	decoded, err := ReadCampaignJSONL(strings.NewReader(jsonl.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(results) {
		t.Fatalf("jsonl has %d results, want %d", len(decoded), len(results))
	}
	for i := range decoded {
		if decoded[i].Index != results[i].Index || decoded[i].U != results[i].U ||
			decoded[i].Scenario != results[i].Scenario {
			t.Fatalf("jsonl result %d differs: %+v vs %+v", i, decoded[i], results[i])
		}
		for m, c := range results[i].Sched {
			if decoded[i].Sched[m] != c {
				t.Fatalf("jsonl result %d method %s: %d vs %d", i, m, decoded[i].Sched[m], c)
			}
		}
	}

	// The CSV stream parses back too.
	rows, methods, err := ParseCampaignCSV(csv.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(results) || len(methods) != 3 {
		t.Fatalf("csv: %d rows, %d methods", len(rows), len(methods))
	}

	// Progress is monotone and complete.
	if len(progress) != 8 {
		t.Fatalf("%d progress callbacks, want 8", len(progress))
	}
	for i, p := range progress {
		if p.Done != i+1 || p.Total != 8 {
			t.Fatalf("progress %d: %+v", i, p)
		}
	}
}

// TestCampaignByteIdenticalAcrossWorkersAndShards is the core
// determinism contract: same campaign seed ⇒ byte-identical JSONL and
// CSV regardless of worker count and shard count.
func TestCampaignByteIdenticalAcrossWorkersAndShards(t *testing.T) {
	type variant struct{ workers, shards int }
	variants := []variant{{1, 1}, {1, 5}, {4, 1}, {4, 3}, {8, 16}}
	var refJSONL, refCSV string
	for i, v := range variants {
		cfg := tinyCampaign()
		cfg.Workers = v.workers
		cfg.Shards = v.shards
		var jsonl, csv strings.Builder
		if _, err := RunCampaign(cfg, RunOptions{JSONL: &jsonl, CSV: &csv}); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			refJSONL, refCSV = jsonl.String(), csv.String()
			continue
		}
		if jsonl.String() != refJSONL {
			t.Fatalf("workers=%d shards=%d: JSONL differs from workers=1 shards=1", v.workers, v.shards)
		}
		if csv.String() != refCSV {
			t.Fatalf("workers=%d shards=%d: CSV differs from workers=1 shards=1", v.workers, v.shards)
		}
	}
}

// TestCampaignResume: feeding a prefix of a previous run's JSONL back as
// Completed skips recomputation and still emits byte-identical output.
func TestCampaignResume(t *testing.T) {
	cfg := tinyCampaign()
	var full strings.Builder
	if _, err := RunCampaign(cfg, RunOptions{JSONL: &full}); err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(full.String(), "\n")
	partial := strings.Join(lines[:5], "") // first 5 points "already done"
	prior, err := ReadCampaignJSONL(strings.NewReader(partial))
	if err != nil {
		t.Fatal(err)
	}

	eng := engine.New(engine.Config{Workers: 2})
	defer eng.Close()
	var resumed strings.Builder
	if _, err := RunCampaign(cfg, RunOptions{JSONL: &resumed, Engine: eng, Completed: prior}); err != nil {
		t.Fatal(err)
	}
	if resumed.String() != full.String() {
		t.Error("resumed campaign output differs from uninterrupted run")
	}
	if got := eng.Stats().Sweeps; got != uint64(8-len(prior)) {
		t.Errorf("resume executed %d sweep jobs, want %d", got, 8-len(prior))
	}
}

// TestCampaignResumeRejectsForeignFile: carrying another campaign's
// results in must fail loudly, not silently emit stale points.
func TestCampaignResumeRejectsForeignFile(t *testing.T) {
	other := CampaignConfig{
		Seed: 1, Ms: []int{8}, UFracs: []float64{0.9}, SetsPerPoint: 5,
		Scenarios: []Scenario{{Name: "parallel", Group: gen.GroupParallel}},
	}
	var foreign strings.Builder
	if _, err := RunCampaign(other, RunOptions{JSONL: &foreign}); err != nil {
		t.Fatal(err)
	}
	prior, err := ReadCampaignJSONL(strings.NewReader(foreign.String()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunCampaign(tinyCampaign(), RunOptions{Completed: prior}); err == nil {
		t.Error("foreign resume file accepted")
	} else if !strings.Contains(err.Error(), "wrong file or changed config") {
		t.Errorf("unhelpful resume error: %v", err)
	}
	// Out-of-grid indices are rejected too.
	if _, err := RunCampaign(tinyCampaign(), RunOptions{Completed: []PointResult{{Index: 99}}}); err == nil {
		t.Error("out-of-grid resume index accepted")
	}
}

func TestCampaignSharedEngineCache(t *testing.T) {
	eng := engine.New(engine.Config{Workers: 2})
	defer eng.Close()
	cfg := tinyCampaign()
	if _, err := RunCampaign(cfg, RunOptions{Engine: eng}); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Sweeps != 8 {
		t.Errorf("%d sweep jobs, want 8", st.Sweeps)
	}
	// A single campaign pass is a stream of fresh sets: it populates
	// the cache (µ-table misses materialize entries) but has nothing to
	// hit — the cheap per-method quantities that used to inflate the
	// hit counter are no longer memoized.
	if st.Cache.Misses == 0 || st.Cache.Entries == 0 {
		t.Errorf("campaign run did not populate the shared cache: %+v", st.Cache)
	}
	// Re-running the campaign regenerates structurally identical sets
	// (deterministic seeds) as fresh objects; the content-addressed
	// entries from the first pass must serve them.
	if _, err := RunCampaign(cfg, RunOptions{Engine: eng}); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.Cache.Hits == 0 {
		t.Error("repeated campaign saw no content-addressed cache hits")
	}
}

func TestStandardScenarios(t *testing.T) {
	for _, s := range StandardScenarios() {
		if !validName(s.Name) {
			t.Errorf("registry scenario %q has invalid name", s.Name)
		}
		got, err := ScenarioByName(s.Name)
		if err != nil || got.Name != s.Name {
			t.Errorf("ScenarioByName(%q) = %+v, %v", s.Name, got, err)
		}
		// Every scenario must generate valid task sets.
		ts := s.TaskSet(99, 1.5)
		if err := ts.Validate(); err != nil {
			t.Errorf("scenario %q produced invalid set: %v", s.Name, err)
		}
	}
	if _, err := ScenarioByName("bogus"); err == nil {
		t.Error("unknown scenario name accepted")
	}
}

func TestScenarioNPRTransforms(t *testing.T) {
	fine := Scenario{Name: "npr-fine", Group: gen.GroupMixed, NPRSplit: 10}
	ts := fine.TaskSet(7, 2.0)
	for _, task := range ts.Tasks {
		for v := 0; v < task.G.N(); v++ {
			if c := task.G.WCET(v); c > 10 {
				t.Fatalf("npr-fine left an NPR of length %d > 10", c)
			}
		}
	}
	// Volume and longest path are preserved by the transform, so the
	// split set must equal the unsplit set in both.
	plain := Scenario{Name: "mixed", Group: gen.GroupMixed}
	base := plain.TaskSet(7, 2.0)
	if len(base.Tasks) != len(ts.Tasks) {
		t.Fatal("transform changed task count")
	}
	for i := range base.Tasks {
		if base.Tasks[i].G.Volume() != ts.Tasks[i].G.Volume() {
			t.Fatalf("task %d volume changed by split", i)
		}
		if base.Tasks[i].G.LongestPath() != ts.Tasks[i].G.LongestPath() {
			t.Fatalf("task %d longest path changed by split", i)
		}
	}

	coarse := Scenario{Name: "npr-coarse", Group: gen.GroupMixed, NPRCoarsen: 200}
	cts := coarse.TaskSet(7, 2.0)
	coarseNodes, baseNodes := 0, 0
	for i := range base.Tasks {
		baseNodes += base.Tasks[i].G.N()
		coarseNodes += cts.Tasks[i].G.N()
		if base.Tasks[i].G.Volume() != cts.Tasks[i].G.Volume() {
			t.Fatalf("task %d volume changed by coarsening", i)
		}
	}
	if coarseNodes > baseNodes {
		t.Errorf("coarsening grew the node count: %d > %d", coarseNodes, baseNodes)
	}
}

func TestPlanShardsEdgeCases(t *testing.T) {
	if got := PlanShards(0, 4); got != nil {
		t.Errorf("PlanShards(0,4) = %v, want nil", got)
	}
	if got := PlanShards(3, 0); len(got) != 1 || len(got[0]) != 3 {
		t.Errorf("PlanShards(3,0) = %v, want one shard of 3", got)
	}
	if got := PlanShards(3, 10); len(got) != 3 {
		t.Errorf("PlanShards(3,10) has %d shards, want 3", len(got))
	}
}

func TestPointResultPct(t *testing.T) {
	r := PointResult{Sets: 4, Sched: map[string]int{"LP-ILP": 3}}
	if got := r.Pct("LP-ILP"); got != 75 {
		t.Errorf("Pct = %v, want 75", got)
	}
	if got := (PointResult{}).Pct("LP-ILP"); got != 0 {
		t.Errorf("empty Pct = %v, want 0", got)
	}
}

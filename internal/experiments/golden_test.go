package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestCampaignGoldenFixtures pins the exact JSONL and CSV byte streams
// of a small campaign per scenario family to committed fixtures under
// testdata/. The campaign codecs are the substrate of -resume and of
// the cluster shard protocol (internal/experiments/cluster): any codec,
// seed-chain, grid-ordering, or generator drift silently breaks both,
// so it must fail loudly here instead.
//
// Regenerate deliberately with:
//
//	UPDATE_GOLDEN=1 go test ./internal/experiments -run TestCampaignGoldenFixtures
//
// and justify the diff in the commit that carries it.
func TestCampaignGoldenFixtures(t *testing.T) {
	update := os.Getenv("UPDATE_GOLDEN") != ""
	for _, sc := range StandardScenarios() {
		t.Run(sc.Name, func(t *testing.T) {
			cfg := CampaignConfig{
				Seed:         7,
				Ms:           []int{2},
				UFracs:       []float64{0.3, 0.7},
				SetsPerPoint: 2,
				Scenarios:    []Scenario{sc},
				Workers:      2,
			}
			var jsonl, csv bytes.Buffer
			if _, err := RunCampaign(cfg, RunOptions{JSONL: &jsonl, CSV: &csv}); err != nil {
				t.Fatalf("campaign: %v", err)
			}
			compareGolden(t, filepath.Join("testdata", "campaign_"+sc.Name+".jsonl"), jsonl.Bytes(), update)
			compareGolden(t, filepath.Join("testdata", "campaign_"+sc.Name+".csv"), csv.Bytes(), update)
		})
	}
}

func compareGolden(t *testing.T, path string, got []byte, update bool) {
	t.Helper()
	if update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatalf("updating %s: %v", path, err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from the golden fixture.\ngot:\n%s\nwant:\n%s\n"+
			"If this change is intentional it breaks -resume and cluster merging "+
			"against existing result files; regenerate with UPDATE_GOLDEN=1 and say why.",
			path, got, want)
	}
}

package experiments

// Repair soundness quickcheck: a set the repair engine declares fixed
// must really be schedulable — confirmed by the same differential
// harness (LP simulator + unit-split oracle) that gates the analytical
// bounds. Random overloaded sets are drawn from the soundness scenario
// families, filtered to unschedulable ones, repaired under both
// strategies, and every claimed fix is re-checked from scratch.

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/repair"
	"repro/internal/rta"
)

// repairSoundnessEval analyzes candidates the way the soundness harness
// simulates them: donation-safe blocking, so a "fixed" verdict is a
// claim the eager LP simulator cannot escape.
func repairSoundnessEval(m int) repair.Eval {
	return func(ctx context.Context, tasks []*model.Task) (*core.Report, error) {
		ts := &model.TaskSet{Tasks: tasks}
		res, err := rta.Analyze(ctx, ts, rta.Config{
			M: m, Method: rta.LPILP, DonationSafeBlocking: true,
		})
		if err != nil {
			return nil, err
		}
		return core.ReportOf(res, ts), nil
	}
}

func TestRepairSoundnessQuickcheck(t *testing.T) {
	wantFixes := 6
	maxPoints := 400
	if testing.Short() {
		wantFixes = 2
		maxPoints = 120
	}
	scenarios := SoundnessScenarios()
	ms := []int{2, 3, 4}
	ctx := context.Background()

	fixes, unsched := 0, 0
	for point := 0; point < maxPoints && fixes < wantFixes; point++ {
		sc := scenarios[point%len(scenarios)]
		m := ms[point%len(ms)]
		// Load the set to just past the blocking-sensitive region: high
		// enough that points fail, low enough that the failures are
		// placement-induced (a genuinely overloaded set has no fix any
		// transform sequence can reach).
		u := float64(m) * (0.45 + 0.1*float64(point%3))
		seed := SeedFor(20160804, point, 0)
		ts := sc.TaskSet(seed, u)

		eval := repairSoundnessEval(m)
		base, err := eval(ctx, ts.Tasks)
		if err != nil {
			t.Fatalf("point %d: base analysis: %v", point, err)
		}
		if base.Schedulable {
			continue
		}
		unsched++

		for _, strat := range []repair.Strategy{repair.Greedy, repair.Exhaustive} {
			cfg := repair.Config{
				Strategy: strat, Coarsen: true, Reprioritize: true,
				MaxCandidates: 512, Seed: seed,
			}
			res, err := repair.Search(ctx, ts.Tasks, cfg, eval)
			if err != nil {
				t.Fatalf("point %d %v: Search: %v", point, strat, err)
			}
			if !res.Fixed {
				continue
			}
			fixes++

			// Replaying the transform sequence on the original tasks
			// must reproduce the repaired set.
			replayed, err := repair.Apply(ts.Tasks, res.Transforms)
			if err != nil {
				t.Fatalf("point %d %v: Apply: %v", point, strat, err)
			}
			fixed, err := model.NewTaskSet(replayed...)
			if err != nil {
				t.Fatalf("point %d %v: repaired set invalid: %v", point, strat, err)
			}
			rep, err := eval(ctx, fixed.Tasks)
			if err != nil {
				t.Fatalf("point %d %v: re-analysis: %v", point, strat, err)
			}
			if !rep.Schedulable {
				t.Errorf("point %d %v: repair claims fixed but replay is unschedulable", point, strat)
				continue
			}

			// The differential harness must stay quiet on the repaired
			// set: bounds vs LP simulator, FP-ideal vs unit-split
			// oracle, static dominance — no violation of any kind.
			viols, _, _, err := checkSoundness(fixed, m, 0, 4, true)
			if err != nil {
				t.Fatalf("point %d %v: checkSoundness: %v", point, strat, err)
			}
			for _, v := range viols {
				t.Errorf("point %d %v: repaired set violates soundness: %s", point, strat, v)
			}
		}
	}
	if unsched == 0 {
		t.Fatal("no unschedulable points generated; quickcheck exercised nothing")
	}
	if fixes < wantFixes {
		t.Fatalf("only %d repairs confirmed (want %d) over %d unschedulable points",
			fixes, wantFixes, unsched)
	}
}

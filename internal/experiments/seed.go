package experiments

// Seed derivation for sweeps and campaigns.
//
// Every generated task set gets its own RNG seed derived from
// (campaign seed, point index, set index) through a splitmix64-style
// mixer. This is the determinism contract the orchestrator's sharding
// rests on: because no two work units share generator state, the
// contents of set j of point p depend only on the campaign seed and the
// pair (p, j) — never on which shard ran the point, how many workers
// executed the campaign, how many sets a point has, or how many methods
// analyze each set. Earlier revisions threaded one rand source through a
// whole sweep, so growing any dimension of the experiment perturbed
// every set generated after it; the regression tests in seed_test.go pin
// the independence.

// seedMix is the splitmix64 finalizer: a bijective avalanche mix.
func seedMix(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// SeedFor derives the generator seed of one task set: set `set` of sweep
// point `point` under the given campaign seed.
func SeedFor(campaignSeed int64, point, set int) int64 {
	x := seedMix(uint64(campaignSeed) + 0x9e3779b97f4a7c15)
	x = seedMix(x ^ (uint64(uint32(point)) + 0xd1b54a32d192ed03))
	x = seedMix(x ^ (uint64(uint32(set)) + 0x8cb92ba72f3d8dd7))
	return int64(x)
}

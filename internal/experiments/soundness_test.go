package experiments

import (
	"context"
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/dag"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/rta"
	"repro/internal/sim"
)

// TestSoundnessDifferential is the CI gate for the analytical bounds:
// hundreds (in CI: thousands — see SOUNDNESS_POINTS) of generated
// (task set, cores) points across every scenario family, zero tolerated
// violations. On failure every minimized reproducer is dumped to
// SOUNDNESS_DUMP_DIR (or the test temp dir) for the CI artifact upload.
func TestSoundnessDifferential(t *testing.T) {
	points := 400
	if testing.Short() {
		points = 120
	}
	if s := os.Getenv("SOUNDNESS_POINTS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad SOUNDNESS_POINTS %q", s)
		}
		points = n
	}
	rep, err := RunSoundness(SoundnessConfig{Seed: 20160314, Points: points})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Points != points {
		t.Errorf("report covers %d points, want %d", rep.Points, points)
	}
	if rep.Analyses != soundnessAnalyses*points {
		t.Errorf("%d analyses, want %d", rep.Analyses, soundnessAnalyses*points)
	}
	if rep.Sims < points {
		t.Errorf("%d sims for %d points", rep.Sims, points)
	}
	if rep.TotalViolations == 0 {
		return
	}
	dir := os.Getenv("SOUNDNESS_DUMP_DIR")
	if dir == "" {
		dir = t.TempDir()
	}
	t.Errorf("%d analytical-bound violations over %d points", rep.TotalViolations, rep.Points)
	for _, v := range rep.Violations {
		path, werr := WriteReproducer(dir, v)
		if werr != nil {
			t.Errorf("dumping reproducer: %v", werr)
			path = "(dump failed)"
		}
		t.Errorf("VIOLATION %s\n  reproducer: %s", v, path)
	}
}

// TestSoundnessDeterministic: the report (counts and violation list) is
// a pure function of the config, independent of worker count.
func TestSoundnessDeterministic(t *testing.T) {
	cfg := SoundnessConfig{Seed: 7, Points: 24}
	cfg.Workers = 1
	a, err := RunSoundness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	b, err := RunSoundness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Analyses != b.Analyses || a.Sims != b.Sims || a.TotalViolations != b.TotalViolations {
		t.Errorf("reports differ across worker counts: %+v vs %+v", a, b)
	}
}

// brokenBoundSet builds a task set whose top task has a long blocking
// NPR below it — the classic case where the FP-ideal bound (no blocking
// term) is exceeded under limited-preemptive execution. The harness's
// unit-split oracle must NOT flag it (unit-splitting removes the
// blocking), but a deliberately broken check against the LP simulator
// would; we use it to prove the violation plumbing works end to end.
func brokenBoundSet() *model.TaskSet {
	var b1 dag.Builder
	src := b1.AddNode(1)
	l, r := b1.AddNode(10), b1.AddNode(10)
	sink := b1.AddNode(1)
	b1.AddEdge(src, l)
	b1.AddEdge(src, r)
	b1.AddEdge(l, sink)
	b1.AddEdge(r, sink)
	var b2 dag.Builder
	b2.AddNode(100)
	ts, err := model.NewTaskSet(
		&model.Task{Name: "hi", G: b1.MustBuild(), Deadline: 18, Period: 200},
		&model.Task{Name: "lo", G: b2.MustBuild(), Deadline: 200, Period: 200},
	)
	if err != nil {
		panic(err)
	}
	return ts
}

// TestSoundnessCheckCatchesInjectedViolation: the checker itself must
// fire when handed an unsound bound. We exploit the known-unsound
// AblateRepeatedBlocking diagnostic indirectly: instead, verify on
// brokenBoundSet that (a) FP-ideal declares the top task schedulable
// with a bound the LP simulator breaks (the very reason the harness
// simulates FP-ideal on the unit-split system), and (b) the real
// checker stays quiet — i.e. the harness distinguishes model mismatch
// from genuine unsoundness.
func TestSoundnessCheckCatchesInjectedViolation(t *testing.T) {
	ts := brokenBoundSet()
	m := 2
	bounds, err := analyzeAll(ts, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	top := bounds.fp.Tasks[0]
	if !top.Schedulable {
		t.Fatalf("FP-ideal rejects the top task (R=%d); fixture broken", top.ResponseTimeM)
	}
	sr, err := sim.Run(ts, sim.Config{M: m, Duration: 4 * maxPeriod(ts)})
	if err != nil {
		t.Fatal(err)
	}
	if sr.MaxResponse[0] <= top.ResponseTimeCeil(m) {
		t.Fatalf("LP sim response %d does not exceed FP bound %d; fixture broken",
			sr.MaxResponse[0], top.ResponseTimeCeil(m))
	}
	// The genuine checker must not flag this set: FP-ideal is checked
	// against the fully-preemptive (unit-split) oracle, where the bound
	// holds, and the LP bounds cover the blocking.
	viols, _, _, err := checkSoundness(ts, m, 0, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(viols) != 0 {
		t.Errorf("checker flagged a sound set: %v", viols)
	}
}

// TestMinimizeSoundnessShrinks: hand the minimizer a set with a genuine
// check failure (we fabricate one by lying about the bound — calling it
// with a tampered task set is impossible, so instead check the greedy
// loop leaves sets without violations untouched).
func TestMinimizeSoundnessNoViolationIsIdentity(t *testing.T) {
	sc := Scenario{Name: "mixed", Group: gen.GroupMixed}
	ts := sc.TaskSet(3, 1.0)
	got, viols := minimizeSoundness(ts, 4, 0, 2, false, nil)
	if len(viols) != 0 {
		t.Fatalf("unexpected violations: %v", viols)
	}
	if got.N() != ts.N() {
		t.Errorf("minimizer shrank a violation-free set: %d -> %d tasks", ts.N(), got.N())
	}
}

// eagerDonationRepro is the minimized reproducer the soundness harness
// found (campaign seed 20160314 lineage, m = 2): the paper-exact LP-ILP
// bound of the top task is 80, but the eager work-conserving simulator
// observes 81. Mechanism: with no higher-priority tasks, the paper sets
// p_k = min(q_k, h_k) = 0, so only the initial Δ² = 24 (largest single
// NPR of the lower chain — no two of its NPRs can run in parallel) is
// charged; the simulator, however, donates a core to the chain at a
// parallelism dip of the DAG, and a *different* chain NPR blocks the
// task later — sequential blocking the precedence-aware Δ² counts once.
const eagerDonationRepro = `{"tasks":[
 {"name":"hi","wcet":[7,2,15,7,9,17,3,25],
  "edges":[[0,2],[0,3],[2,1],[3,5],[3,6],[3,7],[4,1],[5,4],[6,4],[7,4]],
  "deadline":136,"period":136},
 {"name":"lo","wcet":[9,12,24,18,20],
  "edges":[[0,1],[1,2],[2,3],[3,4]],
  "deadline":213,"period":213}]}`

// TestEagerDonationGapReproducer pins the gap: the paper-exact LP-ILP
// bound is escapable by the eager simulator, the donation-safe variant
// is not. If this test ever fails because the simulated response drops
// to ≤ 80, the simulator's eagerness changed; if the bound moves, the
// analysis changed — either way the DESIGN.md erratum needs revisiting.
func TestEagerDonationGapReproducer(t *testing.T) {
	ts, err := model.ReadJSON(strings.NewReader(eagerDonationRepro))
	if err != nil {
		t.Fatal(err)
	}
	const m = 2
	exact, err := rta.Analyze(context.Background(), ts, rta.Config{M: m, Method: rta.LPILP})
	if err != nil {
		t.Fatal(err)
	}
	top := exact.Tasks[0]
	if !top.Schedulable || top.ResponseTimeCeil(m) != 80 || top.Preemptions != 0 {
		t.Fatalf("paper-exact LP-ILP drifted: sched=%v R=%d p=%d (want true, 80, 0)",
			top.Schedulable, top.ResponseTimeCeil(m), top.Preemptions)
	}
	sr, err := sim.Run(ts, sim.Config{M: m, Duration: 4 * maxPeriod(ts)})
	if err != nil {
		t.Fatal(err)
	}
	if sr.MaxResponse[0] != 81 {
		t.Fatalf("simulated top response %d, want 81 (the documented exceedance)", sr.MaxResponse[0])
	}
	// Donation-safe accounting must cover the observation: either the
	// bound is ≥ 81, or the variant rejects the task (no claim made).
	safe, err := rta.Analyze(context.Background(), ts, rta.Config{M: m, Method: rta.LPILP, DonationSafeBlocking: true})
	if err != nil {
		t.Fatal(err)
	}
	st := safe.Tasks[0]
	if st.Schedulable && sr.MaxResponse[0] > st.ResponseTimeCeil(m) {
		t.Fatalf("donation-safe bound %d still below observed %d", st.ResponseTimeCeil(m), sr.MaxResponse[0])
	}
	// And the full checker must stay quiet on this set.
	viols, _, _, err := checkSoundness(ts, m, 0, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(viols) != 0 {
		t.Errorf("checker flags the documented-gap set: %v", viols)
	}
}

func TestWriteReproducer(t *testing.T) {
	dir := t.TempDir()
	v := SoundnessViolation{Point: 3, Kind: "sim-exceeds-bound", Method: "LP-ILP",
		Task: "tau1", M: 4, Bound: 10, Observed: 12, TaskSet: []byte(`{"tasks":[]}`)}
	path, err := WriteReproducer(dir, v)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sim-exceeds-bound", "tau1", `"bound_response": 10`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("reproducer missing %q", want)
		}
	}
}

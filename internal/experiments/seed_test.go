package experiments

import (
	"testing"

	"repro/internal/gen"
)

// TestSeedForPinned pins the seed-derivation function: campaign outputs
// are only reproducible across versions if these values never move.
// (Values computed once from the splitmix64 chain and frozen.)
func TestSeedForPinned(t *testing.T) {
	got := []int64{
		SeedFor(2016, 0, 0),
		SeedFor(2016, 0, 1),
		SeedFor(2016, 1, 0),
		SeedFor(0, 0, 0),
		SeedFor(-1, 3, 7),
	}
	want := []int64{
		-1256783709870991200,
		-6414984014859101370,
		8801141823932165326,
		-2747215164469561292,
		-7568359517521367852,
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("SeedFor pin %d drifted: got %d, want %d", i, got[i], want[i])
		}
	}
}

// TestSeedForNoCollisions: derived seeds over a realistic campaign grid
// must be pairwise distinct — a collision would make two "independent"
// sets identical.
func TestSeedForNoCollisions(t *testing.T) {
	seen := make(map[int64][2]int, 20000)
	for p := 0; p < 200; p++ {
		for s := 0; s < 100; s++ {
			k := SeedFor(42, p, s)
			if prev, dup := seen[k]; dup {
				t.Fatalf("seed collision: (%d,%d) and (%d,%d) both derive %d", prev[0], prev[1], p, s, k)
			}
			seen[k] = [2]int{p, s}
		}
	}
}

// TestSweepPointSetsIndependent is the regression for the shared-RNG
// bug: with per-(point, set) seeds, a sweep's generated task sets must
// not change when the sweep grows in any dimension (more sets per point,
// more methods analyzing each set) — set j of point p is a pure function
// of (campaign seed, p, j).
func TestSweepPointSetsIndependent(t *testing.T) {
	cfg := PaperFig2Config(4, 3, 777)
	// The first 3 sets of a 3-set point must equal the first 3 sets of
	// a 10-set point, set by set.
	for set := 0; set < 3; set++ {
		a := fig2Set(cfg, 2, set, 1.5)
		big := cfg
		big.SetsPerPoint = 10
		b := fig2Set(big, 2, set, 1.5)
		if a.N() != b.N() {
			t.Fatalf("set %d: task count %d vs %d after growing SetsPerPoint", set, a.N(), b.N())
		}
		for i := range a.Tasks {
			ta, tb := a.Tasks[i], b.Tasks[i]
			if ta.Period != tb.Period || ta.G.Volume() != tb.G.Volume() || ta.G.N() != tb.G.N() {
				t.Fatalf("set %d task %d differs after growing SetsPerPoint", set, i)
			}
		}
	}
	// Distinct (point, set) pairs must give distinct sets (overwhelming
	// probability under the paper generator).
	x, y := fig2Set(cfg, 0, 0, 1.5), fig2Set(cfg, 0, 1, 1.5)
	same := x.N() == y.N()
	if same {
		for i := range x.Tasks {
			if x.Tasks[i].Period != y.Tasks[i].Period || x.Tasks[i].G.Volume() != y.Tasks[i].G.Volume() {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("sets (0,0) and (0,1) identical — per-set seeds not applied")
	}
}

// TestScenarioTaskSetPureFunction: the campaign generator path is a pure
// function of (seed, u) too — two calls never share state.
func TestScenarioTaskSetPureFunction(t *testing.T) {
	sc := Scenario{Name: "mixed", Group: gen.GroupMixed}
	a := sc.TaskSet(12345, 2.0)
	b := sc.TaskSet(12345, 2.0)
	if a.N() != b.N() {
		t.Fatalf("same seed, different set sizes: %d vs %d", a.N(), b.N())
	}
	for i := range a.Tasks {
		if a.Tasks[i].Period != b.Tasks[i].Period || a.Tasks[i].G.Volume() != b.Tasks[i].G.Volume() {
			t.Fatalf("same seed diverged at task %d", i)
		}
	}
}

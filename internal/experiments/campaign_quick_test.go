package experiments

// Property-based tests (testing/quick) for the shard planner and the
// orchestrator determinism contract.

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/gen"
)

// TestPlanShardsIsPartition: for arbitrary (points, shards), PlanShards
// yields a partition of 0..points-1 — every index in exactly one shard,
// no shard empty, shard count ≤ min(shards, points).
func TestPlanShardsIsPartition(t *testing.T) {
	f := func(pointsRaw uint16, shardsRaw int8) bool {
		points := int(pointsRaw % 600)
		shards := int(shardsRaw) // may be negative or zero: planner clamps
		plan := PlanShards(points, shards)
		if points == 0 {
			return plan == nil
		}
		wantShards := shards
		if wantShards < 1 {
			wantShards = 1
		}
		if wantShards > points {
			wantShards = points
		}
		if len(plan) != wantShards {
			return false
		}
		seen := make([]int, points)
		for _, shard := range plan {
			if len(shard) == 0 {
				return false
			}
			for _, idx := range shard {
				if idx < 0 || idx >= points {
					return false
				}
				seen[idx]++
			}
		}
		for _, n := range seen {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestPlanShardsBalanced: stripe sizes differ by at most one.
func TestPlanShardsBalanced(t *testing.T) {
	f := func(pointsRaw uint16, shardsRaw uint8) bool {
		points := int(pointsRaw%600) + 1
		shards := int(shardsRaw%32) + 1
		plan := PlanShards(points, shards)
		min, max := points, 0
		for _, shard := range plan {
			if len(shard) < min {
				min = len(shard)
			}
			if len(shard) > max {
				max = len(shard)
			}
		}
		return max-min <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestCampaignIndependentOfShardAndWorkerCount is the orchestrator's
// core property under random execution geometry: for random (seed,
// shards, workers) the JSONL bytes equal the serial reference run.
func TestCampaignIndependentOfShardAndWorkerCount(t *testing.T) {
	base := CampaignConfig{
		Ms:           []int{2},
		UFracs:       []float64{0.4, 0.8},
		SetsPerPoint: 2,
		Scenarios:    []Scenario{{Name: "mixed", Group: gen.GroupMixed}},
	}
	f := func(seed int64, shardsRaw, workersRaw uint8) bool {
		cfg := base
		cfg.Seed = seed
		cfg.Workers = 1
		cfg.Shards = 1
		var ref strings.Builder
		if _, err := RunCampaign(cfg, RunOptions{JSONL: &ref}); err != nil {
			t.Log(err)
			return false
		}
		cfg.Shards = int(shardsRaw%7) + 1
		cfg.Workers = int(workersRaw%5) + 1
		var got strings.Builder
		if _, err := RunCampaign(cfg, RunOptions{JSONL: &got}); err != nil {
			t.Log(err)
			return false
		}
		return got.String() == ref.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

package experiments

// Fuzz targets for the experiment-result streaming codecs, alongside the
// dag/model fuzzers: anything the readers accept must round-trip
// canonically (decode → encode → decode is the identity, and the
// re-encoded bytes are a fixed point).

import (
	"reflect"
	"strings"
	"testing"
)

func jsonlSeedCorpus() []string {
	return []string{
		`{"index":0,"scenario":"mixed","m":4,"u":1.2,"sets":25,"sched":{"FP-ideal":25,"LP-ILP":20,"LP-max":18}}`,
		`{"index":1,"scenario":"wide","m":64,"u":57.6,"sets":3,"sched":{"LP-ILP":0}}`,
		`{"index":2,"scenario":"npr-fine","m":8,"u":0.8,"sets":1,"sched":{}}` + "\n" +
			`{"index":3,"scenario":"deep","m":2,"u":1.9999999999999998,"sets":1,"sched":{"LP-max":1}}`,
		"",
		"\n\n",
		`{"index":-5,"scenario":"","m":0,"u":0,"sets":0,"sched":null}`,
		`not json`,
		`{"index":1e999}`,
	}
}

// FuzzCampaignJSONLRoundTrip: any accepted JSONL stream must re-encode
// and re-decode to the same results, and the re-encoded bytes must be a
// fixed point of the codec.
func FuzzCampaignJSONLRoundTrip(f *testing.F) {
	for _, s := range jsonlSeedCorpus() {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		results, err := ReadCampaignJSONL(strings.NewReader(string(data)))
		if err != nil {
			return // rejection is fine; panics are not
		}
		enc, err := CampaignJSONL(results)
		if err != nil {
			t.Fatalf("accepted results failed to encode: %v", err)
		}
		back, err := ReadCampaignJSONL(strings.NewReader(enc))
		if err != nil {
			t.Fatalf("re-decode of own encoding failed: %v\n%s", err, enc)
		}
		if len(back) != len(results) {
			t.Fatalf("round trip changed result count %d -> %d", len(results), len(back))
		}
		if !reflect.DeepEqual(results, back) {
			t.Fatalf("round trip changed results:\n%#v\nvs\n%#v", results, back)
		}
		enc2, err := CampaignJSONL(back)
		if err != nil || enc2 != enc {
			t.Fatalf("encoding not a fixed point (err %v):\n%q\nvs\n%q", err, enc, enc2)
		}
	})
}

func csvSeedCorpus() []string {
	return []string{
		"index,scenario,m,u,sets,FP-ideal,LP-ILP,LP-max\n0,mixed,4,1.2,25,25,20,18\n1,mixed,4,2.4,25,20,11,9\n",
		"index,scenario,m,u,sets,LP-ILP\n7,wide,64,57.6,3,0\n",
		"index,scenario,m,u,sets,a\n",
		"index,scenario,m,u,sets,a\n-1,x_y.z-w,2,0.5,0,-3\n",
		"",
		"bogus header\n",
		"index,scenario,m,u,sets,a,a\n", // duplicate method column
		"index,scenario,m,u,sets,a\n0,name,2,NaN,1,1\n",
	}
}

// FuzzCampaignCSVRoundTrip: same canonical-round-trip contract for the
// CSV stream.
func FuzzCampaignCSVRoundTrip(f *testing.F) {
	for _, s := range csvSeedCorpus() {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		results, methods, err := ParseCampaignCSV(string(data))
		if err != nil {
			return
		}
		enc := CampaignCSV(results, methods)
		back, methods2, err := ParseCampaignCSV(enc)
		if err != nil {
			t.Fatalf("re-parse of own encoding failed: %v\n%s", err, enc)
		}
		if !reflect.DeepEqual(methods, methods2) {
			t.Fatalf("round trip changed methods %v -> %v", methods, methods2)
		}
		if len(back) != len(results) {
			t.Fatalf("round trip changed row count %d -> %d", len(results), len(back))
		}
		if !reflect.DeepEqual(results, back) {
			t.Fatalf("round trip changed rows:\n%#v\nvs\n%#v", results, back)
		}
		if enc2 := CampaignCSV(back, methods2); enc2 != enc {
			t.Fatalf("encoding not a fixed point:\n%q\nvs\n%q", enc, enc2)
		}
	})
}

func binarySeedCorpus() [][]byte {
	seeds := [][]byte{nil, {0}, {0xff, 0xff, 0xff, 0xff}}
	for _, r := range []PointResult{
		{Index: 0, Scenario: "mixed", M: 4, U: 1.2, Sets: 25,
			Sched: map[string]int{"FP-ideal": 25, "LP-ILP": 20, "LP-max": 18}},
		{Index: -5, Scenario: "x_y.z-w", M: 0, U: 0, Sets: 0},
		{Index: 3, Scenario: "deep", M: 2, U: 1.9999999999999998, Sets: 1,
			Sched: map[string]int{}},
	} {
		b, err := AppendPointResultBinary(nil, r)
		if err != nil {
			panic(err)
		}
		seeds = append(seeds, b)
	}
	return seeds
}

// FuzzPointResultBinaryRoundTrip: same canonical-round-trip contract
// for the binary shard-stream payload codec. The first decode may
// tolerate overlong varints, so the fixed point is asserted on the
// re-encoded bytes, exactly like the JSONL target.
func FuzzPointResultBinaryRoundTrip(f *testing.F) {
	for _, s := range binarySeedCorpus() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodePointResultBinary(data)
		if err != nil {
			return // rejection is fine; panics are not
		}
		enc, err := AppendPointResultBinary(nil, r)
		if err != nil {
			t.Fatalf("accepted result failed to encode: %v (%#v)", err, r)
		}
		back, err := DecodePointResultBinary(enc)
		if err != nil {
			t.Fatalf("re-decode of own encoding failed: %v\n%x", err, enc)
		}
		if !reflect.DeepEqual(r, back) {
			t.Fatalf("round trip changed result:\n%#v\nvs\n%#v", r, back)
		}
		enc2, err := AppendPointResultBinary(nil, back)
		if err != nil || !reflect.DeepEqual(enc, enc2) {
			t.Fatalf("encoding not a fixed point (err %v):\n%x\nvs\n%x", err, enc, enc2)
		}
	})
}

package experiments

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/engine"
)

func campaignTestServer(t *testing.T) (*httptest.Server, *engine.Engine) {
	t.Helper()
	eng := engine.New(engine.Config{Workers: 2})
	t.Cleanup(eng.Close)
	srv := httptest.NewServer(CampaignHandler(eng))
	t.Cleanup(srv.Close)
	return srv, eng
}

func TestCampaignEndpointStreamsNDJSON(t *testing.T) {
	srv, eng := campaignTestServer(t)
	body := `{"seed":9,"ms":[2],"u_fracs":[0.4,0.8],"sets_per_point":2,"scenarios":["mixed","wide"]}`
	resp, err := http.Post(srv.URL, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	results, err := ReadCampaignJSONL(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("%d results, want 4", len(results))
	}
	for i, r := range results {
		if r.Index != i || r.Sets != 2 {
			t.Fatalf("result %d malformed: %+v", i, r)
		}
	}
	if eng.Stats().Sweeps != 4 {
		t.Errorf("engine served %d sweep jobs, want 4", eng.Stats().Sweeps)
	}

	// The HTTP stream must be byte-identical to a local run of the same
	// campaign (the determinism contract crosses the wire).
	cfg, err := CampaignRequest{
		Seed: 9, Ms: []int{2}, UFracs: []float64{0.4, 0.8}, SetsPerPoint: 2,
		Scenarios: []string{"mixed", "wide"},
	}.Config()
	if err != nil {
		t.Fatal(err)
	}
	local, err := RunCampaign(cfg, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := CampaignJSONL(local)
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Post(srv.URL, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var got strings.Builder
	if _, err := io.Copy(&got, resp2.Body); err != nil {
		t.Fatal(err)
	}
	if got.String() != want {
		t.Error("HTTP campaign stream differs from local run")
	}
}

func TestCampaignEndpointRejectsBadRequests(t *testing.T) {
	srv, _ := campaignTestServer(t)
	for name, body := range map[string]string{
		"bad json":         `{`,
		"unknown scenario": `{"scenarios":["bogus"]}`,
		"unknown method":   `{"methods":["qp"]}`,
		"unknown backend":  `{"backend":"x"}`,
		"zero cores":       `{"ms":[0]}`,
		"huge cores":       `{"ms":[65]}`,
		"too many sets":    `{"sets_per_point":100000}`,
		"unknown field":    `{"bogus":1}`,
	} {
		resp, err := http.Post(srv.URL, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	// Grid-size cap.
	resp, err := http.Post(srv.URL, "application/json", strings.NewReader(
		`{"ms":[2,3,4,5,6,7,8,9],"u_fracs":[`+strings.Repeat("0.1,", 400)+`0.2]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized grid: status %d, want 400", resp.StatusCode)
	}
	// GET is not allowed.
	getResp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d, want 405", getResp.StatusCode)
	}
}

package experiments

// Binary form of the campaign result stream: the payload encoding of a
// wire.FrameResult frame on POST /v1/shard when the coordinator asks
// for application/x-lpdag-bin.
//
// Like the JSONL codec, the binary codec is canonical after one
// decode/encode cycle (enforced by FuzzPointResultBinaryRoundTrip): the
// decoder insists on sorted sched keys and the same field invariants as
// ReadCampaignJSONL, so a binary-leased shard decodes into exactly the
// PointResult a JSON lease would produce, and the coordinator's merged
// JSONL/CSV output stays byte-identical either way.
//
// Layout (see internal/wire for the primitives):
//
//	zigzag  index
//	string  scenario        (validName)
//	zigzag  m
//	float64 u               (finite)
//	zigzag  sets
//	uvarint sched presence: 0 = nil map, else entry count + 1
//	  per entry, ascending by name:
//	    string  method name (validName)
//	    uvarint schedulable count

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/wire"
)

// Binary stream limits: campaign names are short identifiers and sched
// maps have one entry per analysis method, so these caps are generous
// while keeping a corrupt stream from demanding huge allocations.
const (
	maxBinaryNameBytes   = 1024
	maxBinarySchedCounts = 1024
)

// AppendPointResultBinary appends the canonical binary encoding of r.
// It enforces the same invariants as the stream decoders, so only
// results that round-trip can be emitted.
func AppendPointResultBinary(dst []byte, r PointResult) ([]byte, error) {
	if err := checkPointResultFields(r); err != nil {
		return dst, fmt.Errorf("experiments: binary encode: %w", err)
	}
	if len(r.Sched) > maxBinarySchedCounts {
		return dst, fmt.Errorf("experiments: binary encode: %d sched entries exceed limit %d", len(r.Sched), maxBinarySchedCounts)
	}
	dst = wire.AppendZigzag(dst, int64(r.Index))
	dst = wire.AppendString(dst, r.Scenario)
	dst = wire.AppendZigzag(dst, int64(r.M))
	dst = wire.AppendFloat64(dst, r.U)
	dst = wire.AppendZigzag(dst, int64(r.Sets))
	if r.Sched == nil {
		return append(dst, 0), nil
	}
	st := encPool.Get().(*encState)
	defer encPool.Put(st)
	keys := st.keys[:0]
	for k := range r.Sched {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	st.keys = keys
	dst = binary.AppendUvarint(dst, uint64(len(keys))+1)
	for _, k := range keys {
		dst = wire.AppendString(dst, k)
		dst = binary.AppendUvarint(dst, uint64(r.Sched[k]))
	}
	return dst, nil
}

// DecodePointResultBinary decodes one binary result payload, enforcing
// the stream invariants (valid names, finite u, non-negative sorted
// sched entries, no trailing bytes).
func DecodePointResultBinary(payload []byte) (PointResult, error) {
	var r PointResult
	d := wire.NewDec(payload)
	r.Index = int(d.Zigzag())
	r.Scenario = d.String(maxBinaryNameBytes)
	r.M = int(d.Zigzag())
	r.U = d.Float64()
	r.Sets = int(d.Zigzag())
	if n := d.Uvarint(); n > 0 {
		count := n - 1
		if count > maxBinarySchedCounts {
			return PointResult{}, fmt.Errorf("experiments: binary decode: %d sched entries exceed limit %d", count, maxBinarySchedCounts)
		}
		r.Sched = make(map[string]int, count)
		prev := ""
		for i := uint64(0); i < count && d.Err() == nil; i++ {
			name := d.String(maxBinaryNameBytes)
			v := d.Uvarint()
			if d.Err() != nil {
				break
			}
			if i > 0 && name <= prev {
				return PointResult{}, fmt.Errorf("experiments: binary decode: sched keys not strictly ascending at %q", name)
			}
			if v > math.MaxInt32 {
				return PointResult{}, fmt.Errorf("experiments: binary decode: sched count %d out of range", v)
			}
			r.Sched[name] = int(v)
			prev = name
		}
	}
	if err := d.Err(); err != nil {
		return PointResult{}, fmt.Errorf("experiments: binary decode: %w", err)
	}
	if d.Rest() != 0 {
		return PointResult{}, fmt.Errorf("experiments: binary decode: %d trailing bytes", d.Rest())
	}
	if err := checkPointResultFields(r); err != nil {
		return PointResult{}, fmt.Errorf("experiments: binary decode: %w", err)
	}
	return r, nil
}

package experiments

// Tests of the campaign stream codecs' validation and error-reporting
// paths: the JSONL reader's field invariants, oversized-line
// annotation in both text readers, and byte-identity of the pooled
// append-style JSON encoder against encoding/json.

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"
)

// TestReadCampaignJSONLRejectsInvalid pins the reader's field
// invariants: results that could not round-trip (or would corrupt the
// CSV emitter) are rejected with the offending line number.
func TestReadCampaignJSONLRejectsInvalid(t *testing.T) {
	valid := `{"index":0,"scenario":"mixed","m":4,"u":1.2,"sets":25,"sched":{"FP-ideal":25}}`
	cases := []struct {
		name, input, wantErr string
	}{
		{"negative sched count",
			`{"index":0,"scenario":"s","m":1,"u":0.5,"sets":1,"sched":{"LP-max":-1}}`,
			`line 1: negative sched count -1 for "LP-max"`},
		{"negative sched count after valid line",
			valid + "\n" + `{"index":1,"scenario":"s","m":1,"u":0.5,"sets":1,"sched":{"a":-7}}`,
			"line 2: negative sched count"},
		{"empty scenario",
			`{"index":0,"scenario":"","m":1,"u":0.5,"sets":1,"sched":null}`,
			`line 1: bad scenario ""`},
		{"scenario with comma",
			`{"index":0,"scenario":"a,b","m":1,"u":0.5,"sets":1,"sched":null}`,
			`bad scenario "a,b"`},
		{"method with space",
			`{"index":0,"scenario":"s","m":1,"u":0.5,"sets":1,"sched":{"LP max":1}}`,
			`bad method "LP max"`},
		{"trailing data",
			valid + ` {"extra":1}`,
			"line 1: trailing data"},
		{"malformed json",
			"\n\n" + `{"index":`,
			"line 3:"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadCampaignJSONL(strings.NewReader(c.input))
			if err == nil {
				t.Fatalf("accepted %q", c.input)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}

	// The valid line really is valid (the table above fails for the
	// stated reasons, not because the scaffold is broken).
	rs, err := ReadCampaignJSONL(strings.NewReader(valid))
	if err != nil || len(rs) != 1 {
		t.Fatalf("control line rejected: %v", err)
	}
}

// TestScannerErrorsCarryLineNumbers feeds both text readers a line past
// the 16 MiB scanner cap and requires the previously-bare
// bufio.ErrTooLong to surface with the line it happened on.
func TestScannerErrorsCarryLineNumbers(t *testing.T) {
	long := strings.Repeat("x", 17*1024*1024)

	valid := `{"index":0,"scenario":"mixed","m":4,"u":1.2,"sets":25,"sched":null}`
	_, err := ReadCampaignJSONL(strings.NewReader(valid + "\n" + long))
	if err == nil {
		t.Fatal("oversized JSONL line accepted")
	}
	if !strings.Contains(err.Error(), "jsonl line 2:") || !strings.Contains(err.Error(), "token too long") {
		t.Fatalf("jsonl error not annotated: %v", err)
	}

	_, _, err = ParseCampaignCSV("index,scenario,m,u,sets,a\n0,s,1,0.5,1,1\n" + long)
	if err == nil {
		t.Fatal("oversized CSV line accepted")
	}
	if !strings.Contains(err.Error(), "csv line 3:") || !strings.Contains(err.Error(), "token too long") {
		t.Fatalf("csv error not annotated: %v", err)
	}

	// An oversized header is line 1.
	_, _, err = ParseCampaignCSV(long)
	if err == nil || !strings.Contains(err.Error(), "csv line 1:") {
		t.Fatalf("csv header error not annotated: %v", err)
	}
}

// TestAppendPointResultMatchesEncodingJSON pins the pooled append-style
// encoder byte for byte to encoding/json across the string and float
// shapes the stdlib treats specially.
func TestAppendPointResultMatchesEncodingJSON(t *testing.T) {
	nastyStrings := []string{
		"plain", "with\"quote", `back\slash`, "<html>&stuff",
		"ctrl\x01\x1f", "tab\tnewline\nreturn\r", "bell\bfeed\f",
		"\u2028line\u2029seps", "invalid\xff\xfeutf8", "é-ok-ünïcode",
		"", "ends-with-backslash\\",
	}
	nastyFloats := []float64{
		0, math.Copysign(0, -1), 0.6, 1.2, 2.4000000000000004,
		1e-6, 9.999999999999999e-7, 1e-7, 1e21, 9.999999999999999e20,
		1e22, -1e-9, 57.6, 1.9999999999999998,
		math.MaxFloat64, math.SmallestNonzeroFloat64, -42.5,
	}
	var st encState
	check := func(r PointResult) {
		t.Helper()
		got, err := st.appendPointResult(nil, r)
		if err != nil {
			t.Fatalf("appendPointResult(%+v): %v", r, err)
		}
		want, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("json.Marshal(%+v): %v", r, err)
		}
		want = append(want, '\n')
		if string(got) != string(want) {
			t.Fatalf("encoding drifted for %+v:\n got %q\nwant %q", r, got, want)
		}
	}
	for i, s := range nastyStrings {
		check(PointResult{Index: i, Scenario: s, M: 4, U: nastyFloats[i%len(nastyFloats)], Sets: 1,
			Sched: map[string]int{s + "-m": i, "b" + s: 2 * i}})
	}
	for i, f := range nastyFloats {
		check(PointResult{Index: -i, Scenario: fmt.Sprintf("s%d", i), M: i, U: f, Sets: i})
	}
	// nil vs empty sched must stay distinguishable ("null" vs "{}").
	check(PointResult{Scenario: "s", Sched: nil})
	check(PointResult{Scenario: "s", Sched: map[string]int{}})

	// Non-finite floats error like encoding/json instead of emitting
	// invalid JSON.
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := st.appendPointResult(nil, PointResult{Scenario: "s", U: f}); err == nil {
			t.Fatalf("non-finite %v encoded without error", f)
		}
	}
}

package obs

import (
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("t_gauge", "help")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
	// Get-or-create returns the same instance.
	if r.Counter("t_total", "help") != c {
		t.Fatal("counter lookup did not return the existing instance")
	}
	if r.Gauge("t_gauge", "help") != g {
		t.Fatal("gauge lookup did not return the existing instance")
	}
}

func TestLabeledSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("jobs_total", "jobs", "kind", "analyze")
	b := r.Counter("jobs_total", "jobs", "kind", "simulate")
	if a == b {
		t.Fatal("distinct label values share a series")
	}
	a.Inc()
	a.Inc()
	b.Inc()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP jobs_total jobs\n",
		"# TYPE jobs_total counter\n",
		`jobs_total{kind="analyze"} 2` + "\n",
		`jobs_total{kind="simulate"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(5) // +Inf overflow
	if got := h.Count(); got != 4 {
		t.Fatalf("count = %d, want 4", got)
	}
	if got := h.Sum(); got != 6.05 {
		t.Fatalf("sum = %v, want 6.05", got)
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP lat_seconds latency
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.1"} 1
lat_seconds_bucket{le="1"} 3
lat_seconds_bucket{le="+Inf"} 4
lat_seconds_sum 6.05
lat_seconds_count 4
`
	if sb.String() != want {
		t.Fatalf("exposition:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestFuncMetricsAndOrdering(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("zz_gauge", "late name first", func() float64 { return 7 })
	r.CounterFunc("aa_total", "early name second", func() float64 { return 3 })
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "aa_total 3\n") || !strings.Contains(out, "zz_gauge 7\n") {
		t.Fatalf("func metrics missing:\n%s", out)
	}
	if strings.Index(out, "aa_total") > strings.Index(out, "zz_gauge") {
		t.Fatalf("families not sorted by name:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "h", "path", "a\"b\\c\nd").Inc()
	var sb strings.Builder
	r.WriteText(&sb)
	if want := `esc_total{path="a\"b\\c\nd"} 1`; !strings.Contains(sb.String(), want) {
		t.Fatalf("escaping: got\n%s\nwant line %q", sb.String(), want)
	}
}

func TestRedefinitionPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Registry)
	}{
		{"type", func(r *Registry) { r.Gauge("x_total", "h") }},
		{"help", func(r *Registry) { r.Counter("x_total", "other") }},
		{"labels", func(r *Registry) { r.Counter("x_total", "h", "k", "v") }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry()
			r.Counter("x_total", "h")
			defer func() {
				if recover() == nil {
					t.Fatalf("redefinition with different %s did not panic", tc.name)
				}
			}()
			tc.fn(r)
		})
	}
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name did not panic")
		}
	}()
	r.Counter("9bad-name", "h")
}

func TestNilRegistryAndMetricsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("a_total", "h")
	g := r.Gauge("a_gauge", "h")
	h := r.Histogram("a_seconds", "h", LatencyBuckets)
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.Since(time.Now())
	r.CounterFunc("f_total", "h", func() float64 { return 1 })
	r.GaugeFunc("f_gauge", "h", func() float64 { return 1 })
	r.RegisterRuntime(time.Now())
	if err := r.WriteText(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metrics accumulated state")
	}
	var nt *Trace // nil trace fields are nil metrics
	nt = NewTrace(nil)
	if nt != nil {
		t.Fatal("NewTrace(nil) != nil")
	}
}

func TestObserveZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_total", "h")
	g := r.Gauge("alloc_gauge", "h")
	h := r.Histogram("alloc_seconds", "h", LatencyBuckets)
	t0 := time.Now()
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(3)
		g.Add(1)
		h.Observe(0.01)
		h.Since(t0)
	}); n != 0 {
		t.Fatalf("hot path allocates %v allocs/op, want 0", n)
	}
	var nilH *Histogram
	if n := testing.AllocsPerRun(1000, func() { nilH.Observe(1) }); n != 0 {
		t.Fatalf("nil histogram allocates %v allocs/op, want 0", n)
	}
}

func TestConcurrentObserveAndScrape(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("c_seconds", "h", SpanBuckets, "kind", "x")
	c := r.Counter("c_total", "h")
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent scraper
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var sb strings.Builder
				if err := r.WriteText(&sb); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(1e-6)
				c.Inc()
			}
		}()
	}
	for r.Counter("c_total", "h").Value() < workers*perWorker {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestConcurrentRegisterAndScrape is the case the middleware exercises
// in production: new (route, status) series materialise while /metrics
// is being scraped. Under -race this pins that WriteText never reads a
// family's series map or order slice outside the registry lock, and
// that re-registering a func-backed series mid-scrape is safe.
func TestConcurrentRegisterAndScrape(t *testing.T) {
	r := NewRegistry()
	var writers, scrapers sync.WaitGroup
	stop := make(chan struct{})
	for s := 0; s < 2; s++ {
		scrapers.Add(1)
		go func() { // concurrent scrapers
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					var sb strings.Builder
					if err := r.WriteText(&sb); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	const workers, perWorker = 4, 500
	codes := []string{"200", "400", "404", "500", "503"}
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < perWorker; i++ {
				route := "/v1/route" + strconv.Itoa(w*perWorker+i)
				r.Counter("reg_requests_total", "h",
					"route", route, "code", codes[i%len(codes)]).Inc()
				r.Histogram("reg_duration_seconds", "h", LatencyBuckets,
					"route", route).Observe(1e-3)
				r.GaugeFunc("reg_outstanding", "h", func() float64 { return float64(i) })
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	scrapers.Wait()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), "\nreg_requests_total{"); got != workers*perWorker {
		t.Fatalf("exposition has %d reg_requests_total series, want %d", got, workers*perWorker)
	}
}

func TestHistogramBucketValidation(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing buckets did not panic")
		}
	}()
	r.Histogram("bad_seconds", "h", []float64{1, 1})
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total", "h").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "h_total 1\n") {
		t.Fatalf("body:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/metrics", nil))
	if rec.Code != 405 {
		t.Fatalf("POST /metrics = %d, want 405", rec.Code)
	}
}

func TestRegisterRuntime(t *testing.T) {
	r := NewRegistry()
	r.RegisterRuntime(time.Now().Add(-3 * time.Second))
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"lpdag_build_info{", "lpdag_uptime_seconds ", "go_goroutines ", "go_memstats_heap_inuse_bytes "} {
		if !strings.Contains(out, want) {
			t.Errorf("runtime metrics missing %q:\n%s", want, out)
		}
	}
}

func TestTraceResolvesAllSeries(t *testing.T) {
	r := NewRegistry()
	tr := NewTrace(r)
	if tr == nil || tr.SuffixRestore == nil || tr.SuffixPush == nil || tr.CacheLookup == nil ||
		tr.FixedPoint == nil || tr.FixedPointIters == nil || tr.FullRuns == nil || tr.IncRuns == nil {
		t.Fatal("NewTrace left fields nil with a live registry")
	}
	tr.FixedPoint.Observe(1e-6)
	tr.FixedPointIters.Observe(3)
	tr.FullRuns.Inc()
	var sb strings.Builder
	r.WriteText(&sb)
	if !strings.Contains(sb.String(), "lpdag_analysis_fixed_point_seconds_count 1") {
		t.Fatalf("trace series not in exposition:\n%s", sb.String())
	}
}

package obs

// Prometheus text exposition (format version 0.0.4). Output is fully
// deterministic for a fixed set of families and series: families sort
// by name, series by label values, and histogram buckets are emitted in
// bound order with cumulative counts. The golden catalog test in
// internal/engine pins this ordering.

import (
	"bufio"
	"io"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"
)

// WriteText renders every registered series in the Prometheus text
// format. A nil registry writes nothing.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, v := range r.snapshot() {
		f := v.f
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(f.help))
		bw.WriteString("\n# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.typ.String())
		bw.WriteByte('\n')
		for _, s := range v.series {
			writeSeries(bw, f, s)
		}
	}
	return bw.Flush()
}

func writeSeries(bw *bufio.Writer, f *family, s *series) {
	fn := s.fn.Load()
	switch {
	case s.h != nil:
		cum := uint64(0)
		for i, ub := range s.h.upper {
			cum += s.h.counts[i].Load()
			writeSample(bw, f.name+"_bucket", f.labelKeys, s.labelVals, "le", formatFloat(ub), formatUint(cum))
		}
		cum += s.h.counts[len(s.h.upper)].Load()
		writeSample(bw, f.name+"_bucket", f.labelKeys, s.labelVals, "le", "+Inf", formatUint(cum))
		writeSample(bw, f.name+"_sum", f.labelKeys, s.labelVals, "", "", formatFloat(s.h.Sum()))
		writeSample(bw, f.name+"_count", f.labelKeys, s.labelVals, "", "", formatUint(cum))
	case fn != nil:
		writeSample(bw, f.name, f.labelKeys, s.labelVals, "", "", formatFloat((*fn)()))
	case s.c != nil:
		writeSample(bw, f.name, f.labelKeys, s.labelVals, "", "", formatUint(s.c.Value()))
	case s.g != nil:
		writeSample(bw, f.name, f.labelKeys, s.labelVals, "", "", formatFloat(s.g.Value()))
	}
}

// writeSample emits one sample line, appending the optional extra
// label (histogram "le") after the series labels.
func writeSample(bw *bufio.Writer, name string, keys, vals []string, extraKey, extraVal, value string) {
	bw.WriteString(name)
	if len(keys) > 0 || extraKey != "" {
		bw.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(k)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(vals[i]))
			bw.WriteByte('"')
		}
		if extraKey != "" {
			if len(keys) > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(extraKey)
			bw.WriteString(`="`)
			bw.WriteString(extraVal)
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func formatUint(v uint64) string {
	return strconv.FormatUint(v, 10)
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// Handler serves GET /metrics. It bypasses any request admission
// control by design: a scrape must succeed while the serving plane is
// shedding, or the shed is invisible.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if req.Method == http.MethodHead {
			return
		}
		r.WriteText(w)
	})
}

// Version returns the module's version from the build info, or
// "(devel)" when none is stamped.
func Version() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "(devel)"
}

// RegisterRuntime registers process-level series: build info, uptime
// since start, goroutine count, and heap-in-use bytes. Values are
// sampled at scrape time (ReadMemStats is a brief stop-the-world; at
// scrape cadence that is noise).
func (r *Registry) RegisterRuntime(start time.Time) {
	if r == nil {
		return
	}
	r.GaugeFunc("lpdag_build_info",
		"Build metadata; the value is always 1.",
		func() float64 { return 1 },
		"version", Version(), "go", runtime.Version())
	r.GaugeFunc("lpdag_uptime_seconds",
		"Seconds since the process registered its metrics.",
		func() float64 { return time.Since(start).Seconds() })
	r.GaugeFunc("go_goroutines",
		"Current number of goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_memstats_heap_inuse_bytes",
		"Bytes in in-use heap spans.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapInuse)
		})
}

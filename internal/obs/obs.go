// Package obs is the repo's zero-dependency observability core: a
// metric registry of atomic counters, gauges, and fixed-bucket
// histograms, rendered in the Prometheus text exposition format by
// WriteText/Handler.
//
// Design constraints, in order:
//
//   - The hot path must be allocation-free. Counter.Inc, Gauge.Set,
//     and Histogram.Observe touch only pre-resolved atomics — callers
//     resolve series once at construction time (engine.New, NewServer,
//     ...) and hold *Counter/*Gauge/*Histogram pointers, never going
//     through the registry's map per event. TestObserveZeroAlloc pins
//     this with testing.AllocsPerRun.
//   - Nil means off. Every method is safe on a nil receiver (registry
//     and metric alike) and does nothing, so library users who pass no
//     registry pay one predictable nil-check per event and the
//     instrumented packages carry no conditional plumbing.
//   - No wire protocol beyond the text format, no dependencies. The
//     registry is not a Prometheus client; it is the minimal surface
//     the serving layer needs to expose what it already counts.
//
// Metric and label names follow the Prometheus conventions: snake_case
// with an lpdag_ prefix, base units (seconds, bytes), _total suffix on
// counters. Getter methods (Counter/Gauge/Histogram/...) are
// get-or-create and panic on redefinition with a different type, help
// string, or label-key set — a misspelled metric should fail loudly in
// tests, not fork silently into two families.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Standard bucket layouts. Latency buckets cover the serving range
// (100µs..10s); span buckets cover the analysis phases, which sit in
// the sub-microsecond..millisecond range at steady state (AnalyzePoint
// is ~0.5µs for a warm set); iteration buckets are powers of two up to
// the fixed-point iteration cap's practical range.
var (
	// LatencyBuckets suits HTTP requests and engine jobs (seconds).
	LatencyBuckets = []float64{
		1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
		1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
	// SpanBuckets suits intra-analysis phase timings (seconds).
	SpanBuckets = []float64{
		1e-7, 2.5e-7, 5e-7, 1e-6, 2.5e-6, 5e-6,
		1e-5, 2.5e-5, 5e-5, 1e-4, 1e-3, 1e-2, 0.1,
	}
	// IterationBuckets suits fixed-point iteration counts.
	IterationBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
)

type metricType int

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	case typeHistogram:
		return "histogram"
	}
	return "untyped"
}

// Registry holds metric families and renders them as Prometheus text.
// All methods are safe for concurrent use and on a nil receiver (a nil
// registry is the no-op registry).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is one metric name: its metadata plus all label combinations
// seen so far.
type family struct {
	name      string
	help      string
	typ       metricType
	labelKeys []string
	buckets   []float64 // histograms only
	series    map[string]*series
	order     []string // insertion-independent: sorted at scrape
}

// series is one (name, label values) time series. The payload pointer
// matching the family type (c/g/h) is set at creation and immutable;
// fn is atomic because func-backed series may be re-registered (a new
// campaign re-pointing a gauge) while a scrape reads them.
type series struct {
	labelVals []string
	c         *Counter
	g         *Gauge
	h         *Histogram
	fn        atomic.Pointer[func() float64] // func-backed counter or gauge
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the counter for name and the given label pairs
// (alternating key, value), creating it if needed.
func (r *Registry) Counter(name, help string, labelPairs ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, typeCounter, nil, labelPairs, nil).c
}

// Gauge returns the gauge for name and the given label pairs.
func (r *Registry) Gauge(name, help string, labelPairs ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, typeGauge, nil, labelPairs, nil).g
}

// Histogram returns the histogram for name with the given upper bucket
// bounds (strictly increasing; +Inf is implicit). The bounds are fixed
// at creation; later calls for the same name must pass equal bounds.
func (r *Registry) Histogram(name, help string, buckets []float64, labelPairs ...string) *Histogram {
	if r == nil {
		return nil
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %s buckets not strictly increasing", name))
		}
	}
	return r.lookup(name, help, typeHistogram, buckets, labelPairs, nil).h
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time. Use it to re-export counters another subsystem already
// maintains (e.g. the analysis cache) without double counting.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labelPairs ...string) {
	if r == nil {
		return
	}
	r.lookup(name, help, typeCounter, nil, labelPairs, fn)
}

// GaugeFunc registers a gauge read from fn at scrape time (queue
// depths, map sizes, ratios — state that already lives elsewhere).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labelPairs ...string) {
	if r == nil {
		return
	}
	r.lookup(name, help, typeGauge, nil, labelPairs, fn)
}

// lookup is the shared get-or-create: it validates names, enforces
// family metadata consistency, and returns the series for the label
// values. The series payload (counter/gauge/histogram, or fn for
// func-backed series) is created or updated under r.mu so a concurrent
// scrape never sees a half-initialised series.
func (r *Registry) lookup(name, help string, typ metricType, buckets []float64, labelPairs []string, fn func() float64) *series {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	if len(labelPairs)%2 != 0 {
		panic(fmt.Sprintf("obs: metric %s: odd label pair list", name))
	}
	keys := make([]string, 0, len(labelPairs)/2)
	vals := make([]string, 0, len(labelPairs)/2)
	for i := 0; i < len(labelPairs); i += 2 {
		if !validName(labelPairs[i]) {
			panic(fmt.Sprintf("obs: metric %s: invalid label name %q", name, labelPairs[i]))
		}
		keys = append(keys, labelPairs[i])
		vals = append(vals, labelPairs[i+1])
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.families == nil {
		r.families = make(map[string]*family)
	}
	f, ok := r.families[name]
	if !ok {
		f = &family{
			name:      name,
			help:      help,
			typ:       typ,
			labelKeys: keys,
			buckets:   buckets,
			series:    make(map[string]*series),
		}
		r.families[name] = f
	} else {
		if f.typ != typ {
			panic(fmt.Sprintf("obs: metric %s redefined as %s (was %s)", name, typ, f.typ))
		}
		if f.help != help {
			panic(fmt.Sprintf("obs: metric %s redefined with different help", name))
		}
		if !equalStrings(f.labelKeys, keys) {
			panic(fmt.Sprintf("obs: metric %s redefined with label keys %v (was %v)", name, keys, f.labelKeys))
		}
		if typ == typeHistogram && !equalFloats(f.buckets, buckets) {
			panic(fmt.Sprintf("obs: histogram %s redefined with different buckets", name))
		}
	}
	key := strings.Join(vals, "\xff")
	s, ok := f.series[key]
	if !ok {
		s = &series{labelVals: vals}
		switch typ {
		case typeCounter:
			s.c = &Counter{}
		case typeGauge:
			s.g = &Gauge{}
		case typeHistogram:
			s.h = newHistogram(buckets)
		}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	if fn != nil {
		s.fn.Store(&fn)
	}
	return s
}

// famView is a scrape-time copy of one family: its metadata plus the
// series list frozen and sorted under the registry lock. Everything a
// series points to (label slices, payload pointers) is immutable after
// the creating lookup releases r.mu, so reading the view lock-free is
// safe even while new series are being registered.
type famView struct {
	f      *family
	series []*series
}

// snapshot returns the families sorted by name, each with its series
// copied out and sorted by label values — the stable scrape order.
// The per-family series map and order slice are only touched here and
// in lookup, both under r.mu.
func (r *Registry) snapshot() []famView {
	r.mu.Lock()
	defer r.mu.Unlock()
	views := make([]famView, 0, len(r.families))
	for _, f := range r.families {
		ss := make([]*series, 0, len(f.order))
		for _, k := range f.order {
			ss = append(ss, f.series[k])
		}
		sort.Slice(ss, func(i, j int) bool {
			a, b := ss[i].labelVals, ss[j].labelVals
			for x := range a {
				if a[x] != b[x] {
					return a[x] < b[x]
				}
			}
			return false
		})
		views = append(views, famView{f: f, series: ss})
	}
	sort.Slice(views, func(i, j int) bool { return views[i].f.name < views[j].f.name })
	return views
}

// Counter is a monotonically increasing counter. The zero value is
// ready to use; all methods are nil-safe and allocation-free.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down, stored as float64 bits in
// one atomic word. The zero value is ready; methods are nil-safe.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds d (negative to subtract) with a CAS loop.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Observe is
// lock-free and allocation-free: one atomic add on the matching bucket
// and a CAS loop on the float64 sum. Bucket bounds are immutable after
// construction.
type Histogram struct {
	upper  []float64
	counts []atomic.Uint64 // len(upper)+1; last is the +Inf overflow
	sum    atomic.Uint64   // float64 bits
}

func newHistogram(upper []float64) *Histogram {
	return &Histogram{
		upper:  append([]float64(nil), upper...),
		counts: make([]atomic.Uint64, len(upper)+1),
	}
}

// Observe records one value. With the standard bucket layouts the
// linear scan beats a binary search: the slices are short and the scan
// is branch-predictable.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Since observes the seconds elapsed since t0 — the span-closing
// helper: t0 := time.Now(); defer h.Since(t0).
func (h *Histogram) Since(t0 time.Time) {
	if h != nil {
		h.Observe(time.Since(t0).Seconds())
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// validName reports whether s is a legal Prometheus metric or label
// name: [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package obs

// Trace is the analysis pipeline's phase-timing surface: one histogram
// per phase of interest, resolved once and threaded down to
// internal/rta through core.Options. The analyzer guards every
// time.Now() pair behind a nil check, so an un-traced analyzer (the
// default, and every benchmark baseline) pays a single predictable
// branch per phase.
//
// Phases:
//
//   - SuffixRestore: AnalyzeIncremental's checkpoint restore + replay
//     of the blocking aggregator — the time saved vs a full push scan
//     is the whole point of the suffix-incremental design, so both
//     sides are measured.
//   - SuffixPush: a full bottom-up blocking push pass (AnalyzeInPlace's
//     lazy scan, amortized over the tasks it served).
//   - CacheLookup: one µ-table fetch from the shared content-addressed
//     cache (reached only when the analyzer-local identity memo
//     misses, so the series measures genuine cross-analyzer traffic).
//   - FixedPoint: one per-task response-time fixed point (solveTask).
//   - FixedPointIters: iterations that fixed point took to converge.
//
// FullRuns/IncRuns count from-scratch vs incremental analyses, giving
// the denominator for the span histograms.
type Trace struct {
	SuffixRestore   *Histogram
	SuffixPush      *Histogram
	CacheLookup     *Histogram
	FixedPoint      *Histogram
	FixedPointIters *Histogram
	FullRuns        *Counter
	IncRuns         *Counter
}

// RecordFull counts one from-scratch analysis pass. Nil-safe.
func (t *Trace) RecordFull() {
	if t != nil {
		t.FullRuns.Inc()
	}
}

// RecordIncremental counts one incremental analysis pass. Nil-safe.
func (t *Trace) RecordIncremental() {
	if t != nil {
		t.IncRuns.Inc()
	}
}

// NewTrace resolves the analysis-phase series in r. A nil registry
// yields a nil trace, which every consumer treats as "tracing off".
func NewTrace(r *Registry) *Trace {
	if r == nil {
		return nil
	}
	return &Trace{
		SuffixRestore: r.Histogram("lpdag_analysis_suffix_restore_seconds",
			"Time restoring and replaying suffix blocking checkpoints in incremental re-analysis.",
			SpanBuckets),
		SuffixPush: r.Histogram("lpdag_analysis_suffix_push_seconds",
			"Time in full bottom-up blocking aggregator pushes.",
			SpanBuckets),
		CacheLookup: r.Histogram("lpdag_analysis_cache_lookup_seconds",
			"Time per shared-cache µ-table fetch (analyzer-local memo misses only).",
			SpanBuckets),
		FixedPoint: r.Histogram("lpdag_analysis_fixed_point_seconds",
			"Time per per-task response-time fixed point.",
			SpanBuckets),
		FixedPointIters: r.Histogram("lpdag_analysis_fixed_point_iterations",
			"Iterations per response-time fixed point.",
			IterationBuckets),
		FullRuns: r.Counter("lpdag_analysis_full_runs_total",
			"From-scratch analysis passes."),
		IncRuns: r.Counter("lpdag_analysis_incremental_runs_total",
			"Incremental (suffix-reusing) analysis passes."),
	}
}

package engine

// Metric registration for the engine pool, its cache, and the session
// registry. Everything the engine already counts for Stats() is
// re-exported through scrape-time CounterFunc/GaugeFunc readers — no
// double bookkeeping, no new hot-path writes. The only new hot-path
// instruments are the two latency histograms (queue wait, job duration
// by kind), which the worker loop feeds behind a single nil check, and
// the abandoned-jobs counter (jobs whose submitter gave up while they
// were queued — the shed/drain signal Stats() never surfaced).

import (
	"sync/atomic"

	"repro/internal/obs"
)

// engineMetrics holds the pre-resolved hot-path series. nil when no
// registry is configured, which the worker loop checks once per job.
type engineMetrics struct {
	queueWait *obs.Histogram
	jobDur    [numJobKinds]*obs.Histogram
}

// registerMetrics wires the engine into r. Called once from New; r is
// non-nil here.
func (e *Engine) registerMetrics(r *obs.Registry) {
	e.obsReg = r
	e.trace = obs.NewTrace(r)

	r.Gauge("lpdag_engine_workers",
		"Configured worker goroutines of the engine pool.").Set(float64(e.cfg.Workers))
	r.Gauge("lpdag_engine_queue_capacity",
		"Capacity of the pending-job queue (admission-control bound).").Set(float64(e.cfg.QueueDepth))
	r.GaugeFunc("lpdag_engine_queue_depth",
		"Jobs submitted and not yet finished (running or queued).",
		func() float64 { return float64(atomic.LoadInt64(&e.queued)) })

	m := &engineMetrics{
		queueWait: r.Histogram("lpdag_engine_queue_wait_seconds",
			"Time a job spent queued before a worker picked it up.",
			obs.LatencyBuckets),
	}
	for k := JobKind(0); k < numJobKinds; k++ {
		k := k
		r.CounterFunc("lpdag_engine_jobs_total",
			"Completed jobs by kind.",
			func() float64 { return float64(atomic.LoadUint64(&e.served[k])) },
			"kind", k.String())
		m.jobDur[k] = r.Histogram("lpdag_engine_job_duration_seconds",
			"Job execution time by kind (excludes queue wait).",
			obs.LatencyBuckets,
			"kind", k.String())
	}
	r.CounterFunc("lpdag_engine_job_failures_total",
		"Jobs that completed with an error.",
		func() float64 { return float64(atomic.LoadUint64(&e.failed)) })
	r.CounterFunc("lpdag_engine_jobs_abandoned_total",
		"Queued jobs skipped because the submitter's context expired first.",
		func() float64 { return float64(atomic.LoadUint64(&e.abandoned)) })
	e.metrics = m

	if c := e.memo; c != nil {
		r.CounterFunc("lpdag_cache_hits_total",
			"Analysis cache lookups served from a materialized entry.",
			func() float64 { return float64(c.Stats().Hits) })
		r.CounterFunc("lpdag_cache_misses_total",
			"Analysis cache lookups that had to compute.",
			func() float64 { return float64(c.Stats().Misses) })
		r.CounterFunc("lpdag_cache_waits_total",
			"Analysis cache lookups that blocked on another goroutine's in-flight compute.",
			func() float64 { return float64(c.Stats().Waits) })
		r.CounterFunc("lpdag_cache_evictions_total",
			"Analysis cache entries evicted by the second-chance size bound.",
			func() float64 { return float64(c.Stats().Evictions) })
		r.GaugeFunc("lpdag_cache_entries",
			"Materialized analysis cache entries (in-flight computes excluded).",
			func() float64 { return float64(c.Stats().Entries) })
		r.GaugeFunc("lpdag_cache_hit_ratio",
			"hits/(hits+misses+waits) since process start; 0 before any lookup.",
			func() float64 { return c.Stats().HitRate() })
	}
}

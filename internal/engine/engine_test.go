package engine

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fixture"
	"repro/internal/gen"
	"repro/internal/model"
)

func testEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e := New(cfg)
	t.Cleanup(e.Close)
	return e
}

// TestAnalyzeMatchesDirect pins the engine path to the plain library
// path on the paper's Figure 1 example, for every method.
func TestAnalyzeMatchesDirect(t *testing.T) {
	e := testEngine(t, Config{})
	ts := fixture.TaskSet()
	for _, method := range core.Methods() {
		spec := AnalyzeSpec{Cores: fixture.M, Method: method}
		got, err := e.Analyze(context.Background(), ts, spec)
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		a := core.MustNew(core.Options{Cores: fixture.M, Method: method})
		want, err := a.Analyze(context.Background(), ts)
		if err != nil {
			t.Fatal(err)
		}
		if got.String() != want.String() {
			t.Errorf("%v: engine report differs from direct analysis:\n%s\nvs\n%s",
				method, got, want)
		}
	}
}

func TestAnalyzeBatchOrderAndErrors(t *testing.T) {
	e := testEngine(t, Config{Workers: 4})
	ts := fixture.TaskSet()
	sets := []*model.TaskSet{ts, ts, ts}
	specs := []AnalyzeSpec{
		{Cores: fixture.M, Method: core.LPILP},
		{Cores: 0, Method: core.LPILP}, // invalid: must fail alone
		{Cores: fixture.M, Method: core.LPMax},
	}
	reports, errs, err := e.AnalyzeBatch(context.Background(), sets, specs)
	if err != nil {
		t.Fatal(err)
	}
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("valid requests failed: %v / %v", errs[0], errs[2])
	}
	if errs[1] == nil {
		t.Fatal("invalid cores should fail its slot")
	}
	if reports[0] == nil || reports[0].Method != core.LPILP {
		t.Errorf("slot 0: want LP-ILP report, got %+v", reports[0])
	}
	if reports[2] == nil || reports[2].Method != core.LPMax {
		t.Errorf("slot 2: want LP-max report, got %+v", reports[2])
	}

	if _, _, err := e.AnalyzeBatch(context.Background(), sets, specs[:2]); err == nil {
		t.Error("mismatched lengths should fail")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	e := testEngine(t, Config{})
	spec := GenerateSpec{Seed: 7, Group: gen.GroupMixed, Utilization: 2}
	a, err := e.Generate(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Generate(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := a.MarshalJSON()
	jb, _ := b.MarshalJSON()
	if string(ja) != string(jb) {
		t.Error("same seed should generate identical task sets")
	}
}

func TestSimulate(t *testing.T) {
	e := testEngine(t, Config{})
	res, err := e.Simulate(context.Background(), fixture.TaskSet(),
		SimulateSpec{Cores: fixture.M, Duration: 500})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) == 0 {
		t.Error("simulation completed no jobs")
	}
}

func TestStatsCounters(t *testing.T) {
	e := testEngine(t, Config{Workers: 2})
	ctx := context.Background()
	ts := fixture.TaskSet()
	// Each iteration rebuilds the fixture, so the engine sees
	// structurally identical but physically distinct graphs — the shape
	// that must hit the content-addressed cache (same-instance repeats
	// are absorbed earlier, by the pooled analyzer's identity memo).
	for i := 0; i < 3; i++ {
		if _, err := e.Analyze(ctx, fixture.TaskSet(), AnalyzeSpec{Cores: fixture.M, Method: core.LPILP}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Simulate(ctx, ts, SimulateSpec{Cores: fixture.M, Duration: 100}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Generate(ctx, GenerateSpec{Seed: 1, Utilization: 1}); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.Analyses != 3 || s.Simulations != 1 || s.Generations != 1 {
		t.Errorf("served counters = %d/%d/%d, want 3/1/1",
			s.Analyses, s.Simulations, s.Generations)
	}
	if s.JobsServed() != 5 {
		t.Errorf("JobsServed = %d, want 5", s.JobsServed())
	}
	if s.QueueDepth != 0 {
		t.Errorf("queue depth = %d after quiescence, want 0", s.QueueDepth)
	}
	// The repeated identical analyses must have hit the cache.
	if s.Cache.Hits == 0 {
		t.Errorf("expected cache hits from repeated analyses, got %+v", s.Cache)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	e := New(Config{Workers: 1})
	e.Close()
	e.Close() // idempotent
	_, err := e.Analyze(context.Background(), fixture.TaskSet(),
		AnalyzeSpec{Cores: fixture.M, Method: core.LPMax})
	if err != ErrClosed {
		t.Fatalf("Analyze after Close = %v, want ErrClosed", err)
	}
}

func TestContextCancelWhileQueued(t *testing.T) {
	e := testEngine(t, Config{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	blockerDone := make(chan struct{})
	go func() {
		defer close(blockerDone)
		// Occupy the single worker.
		e.submit(context.Background(), JobAnalyze, func(context.Context) (any, error) {
			<-release
			return nil, nil
		})
	}()
	// Give the blocker time to reach the worker.
	for e.Stats().QueueDepth == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	// Fill the one-slot queue, then overflow it: both must unblock on
	// ctx expiry rather than hang.
	var errs [2]error
	var wg sync.WaitGroup
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = e.submit(ctx, JobAnalyze, func(context.Context) (any, error) { return nil, nil })
		}(i)
	}
	wg.Wait()
	close(release)
	<-blockerDone
	for i, err := range errs {
		if err != nil && err != context.DeadlineExceeded {
			t.Errorf("submit %d: unexpected error %v", i, err)
		}
	}
	if errs[0] == nil && errs[1] == nil {
		t.Error("at least the overflowed submit should have timed out")
	}
}

// TestConcurrentEngineHammer fans many mixed jobs over a small pool;
// with -race this certifies the pool and the shared cache together.
func TestConcurrentEngineHammer(t *testing.T) {
	e := testEngine(t, Config{Workers: 4, QueueDepth: 2, CacheEntries: 64})
	ctx := context.Background()
	ts := fixture.TaskSet()
	var wg sync.WaitGroup
	for w := 0; w < 12; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				switch (w + i) % 3 {
				case 0:
					method := core.Methods()[i%3]
					if _, err := e.Analyze(ctx, ts, AnalyzeSpec{Cores: fixture.M, Method: method}); err != nil {
						t.Errorf("analyze: %v", err)
					}
				case 1:
					if _, err := e.Simulate(ctx, ts, SimulateSpec{Cores: fixture.M, Duration: 200}); err != nil {
						t.Errorf("simulate: %v", err)
					}
				case 2:
					if _, err := e.Generate(ctx, GenerateSpec{Seed: int64(i), Utilization: 1.5}); err != nil {
						t.Errorf("generate: %v", err)
					}
				}
				e.Stats()
			}
		}(w)
	}
	wg.Wait()
	s := e.Stats()
	if s.JobsServed() != 12*20 {
		t.Errorf("JobsServed = %d, want %d", s.JobsServed(), 12*20)
	}
	if s.Failed != 0 {
		t.Errorf("%d jobs failed", s.Failed)
	}
}

// TestAnalyzerSpecMemoBounded pins that client-controlled specs cannot
// grow the per-spec analyzer memo without bound: past maxMemoizedSpecs
// distinct specs, requests still succeed on transient analyzers.
func TestAnalyzerSpecMemoBounded(t *testing.T) {
	e := testEngine(t, Config{Workers: 2})
	ts := fixture.TaskSet()
	for cores := 1; cores <= maxMemoizedSpecs+16; cores++ {
		if _, err := e.Analyze(context.Background(), ts, AnalyzeSpec{Cores: cores, Method: core.LPMax}); err != nil {
			t.Fatalf("cores=%d: %v", cores, err)
		}
	}
	if n := e.analyzerCount; n > maxMemoizedSpecs {
		t.Errorf("memoized %d specs, want ≤ %d", n, maxMemoizedSpecs)
	}
	// Memoized specs still resolve to the same analyzer instance.
	a1, _ := e.analyzer(AnalyzeSpec{Cores: 1, Method: core.LPMax})
	a2, _ := e.analyzer(AnalyzeSpec{Cores: 1, Method: core.LPMax})
	if a1 != a2 {
		t.Error("memoized spec should return the shared analyzer")
	}
}

package engine

// The crash-safe on-disk session store behind `lpdag-serve -session-dir`:
// a single append-only log of wire frames, one 'S' (snapshot) frame per
// committed edit batch and one 'D' (tombstone) frame per delete, fsynced
// on every append so that state acknowledged to a client survives
// kill -9. Recovery reads the longest valid prefix — a torn tail from a
// crash mid-write is truncated, never fatal — and keeps the latest
// record per id (epochs are monotonic, so later wins). When the log
// grows well past its live content it is compacted by rewriting the
// live snapshots to a temp file and renaming it into place (the rename
// is the commit point; the directory is fsynced so the new name is
// durable too).
//
// FaultConfig is the test seam: the chaos e2e harness injects fsync
// failures, dropped hand-offs, and kill-after-N-appends process death
// through it to prove the recovery story end to end.

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/session"
	"repro/internal/wire"
)

// Compaction policy: rewrite when the log is past this size AND mostly
// garbage (dead records from superseded snapshots and tombstones).
const (
	compactMinLogBytes = 64 << 10
	compactGarbageMult = 4
)

// sessionLogName is the store's single log file inside the session dir.
const sessionLogName = "sessions.log"

// maxSessionRecordBytes caps one encoded snapshot record; a session is
// bounded by the HTTP body caps that fed it, so this is generous.
const maxSessionRecordBytes = 64 << 20

// FaultConfig injects faults into the durable session plane for crash
// testing: all methods are safe for concurrent use and a nil
// *FaultConfig is inert. Wire one in with (*SessionStore).SetFault.
type FaultConfig struct {
	failFsync   atomic.Int64
	dropHandoff atomic.Bool
	killAfter   atomic.Int64 // countdown; fires at 0 crossing
	killed      atomic.Bool
	killFn      atomic.Value // func()
}

// FailNextFsync makes the next n store fsyncs fail (the bytes are
// written but not synced — exactly the torn-tail shape a real fsync
// error risks).
func (f *FaultConfig) FailNextFsync(n int) { f.failFsync.Store(int64(n)) }

// SetDropHandoff makes the drain hand-off silently drop every push
// (simulating a partitioned receiver).
func (f *FaultConfig) SetDropHandoff(drop bool) { f.dropHandoff.Store(drop) }

// KillAfterAppends invokes kill once, immediately after the n-th
// subsequent successful store append — the hook the chaos harness uses
// to kill -9 a node mid-edit-stream (the n-th edit is durable and
// acknowledged; the process dies before the next one).
func (f *FaultConfig) KillAfterAppends(n int, kill func()) {
	f.killFn.Store(kill)
	f.killed.Store(false)
	f.killAfter.Store(int64(n))
}

func (f *FaultConfig) fsyncErr() error {
	if f == nil {
		return nil
	}
	for {
		n := f.failFsync.Load()
		if n <= 0 {
			return nil
		}
		if f.failFsync.CompareAndSwap(n, n-1) {
			return fmt.Errorf("engine: injected fsync failure")
		}
	}
}

func (f *FaultConfig) handoffDropped() bool { return f != nil && f.dropHandoff.Load() }

func (f *FaultConfig) appended() {
	if f == nil {
		return
	}
	if f.killAfter.Add(-1) == 0 && f.killed.CompareAndSwap(false, true) {
		if kill, ok := f.killFn.Load().(func()); ok && kill != nil {
			kill()
		}
	}
}

// SessionStore is the durable session log of one node. All methods are
// safe for concurrent use. Open with OpenSessionStore.
type SessionStore struct {
	mu    sync.Mutex
	path  string
	dir   string
	f     *os.File
	fault *FaultConfig

	// recovered is the latest live snapshot per id found at open time,
	// immutable afterwards (Recovered hands out the slice; restore may
	// run concurrently with new traffic).
	recovered []*session.Snapshot

	// latest holds the current encoded snapshot payload per live id —
	// the compaction source, bounded by live session state.
	latest    map[string][]byte
	logBytes  int64
	liveBytes int64
	buf       []byte
}

// OpenSessionStore opens (creating if needed) the durable session store
// in dir, recovering the sessions a previous process left behind. A
// torn tail — a crash mid-append — is truncated and the valid prefix
// kept; recovery never fails on corrupt record content, it stops at it.
func OpenSessionStore(dir string) (*SessionStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("engine: session store: %w", err)
	}
	st := &SessionStore{
		path:   filepath.Join(dir, sessionLogName),
		dir:    dir,
		latest: make(map[string][]byte),
	}
	data, err := os.ReadFile(st.path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("engine: session store: %w", err)
	}
	valid := st.replay(data)
	if valid < int64(len(data)) {
		// Torn or corrupt tail: keep the valid prefix. Truncating now
		// (before reopening for append) keeps the on-disk log equal to
		// the recovered state.
		if err := os.Truncate(st.path, valid); err != nil {
			return nil, fmt.Errorf("engine: session store: truncate torn tail: %w", err)
		}
	}
	st.f, err = os.OpenFile(st.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("engine: session store: %w", err)
	}
	st.logBytes = valid
	ids := make([]string, 0, len(st.latest))
	for id := range st.latest {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		snap, err := session.DecodeSnapshot(st.latest[id])
		if err != nil {
			// Unreachable: replay only keeps payloads DecodeSnapshot
			// accepted. Skip rather than fail recovery.
			continue
		}
		st.recovered = append(st.recovered, snap)
	}
	return st, nil
}

// replay scans the log, populating latest/liveBytes, and returns the
// byte length of the longest valid prefix.
func (st *SessionStore) replay(data []byte) int64 {
	off := 0
	for off < len(data) {
		typ := data[off]
		n, k := binary.Uvarint(data[off+1:])
		if k <= 0 || n > maxSessionRecordBytes {
			break
		}
		end := off + 1 + k + int(n)
		if end > len(data) {
			break // torn tail
		}
		payload := data[off+1+k : end]
		switch typ {
		case wire.FrameSnapshot:
			snap, err := session.DecodeSnapshot(payload)
			if err != nil {
				return int64(off) // corrupt record: stop here
			}
			st.setLatestLocked(snap.ID, payload)
		case wire.FrameDelete:
			d := wire.NewDec(payload)
			id := d.String(maxSessionRecordBytes)
			if d.Err() != nil || d.Rest() != 0 {
				return int64(off)
			}
			st.dropLatestLocked(id)
		default:
			return int64(off)
		}
		off = end
	}
	return int64(off)
}

func (st *SessionStore) setLatestLocked(id string, payload []byte) {
	st.liveBytes += int64(len(payload)) - int64(len(st.latest[id]))
	st.latest[id] = append([]byte(nil), payload...)
}

func (st *SessionStore) dropLatestLocked(id string) {
	st.liveBytes -= int64(len(st.latest[id]))
	delete(st.latest, id)
}

// SetFault installs a fault-injection config (nil clears it).
func (st *SessionStore) SetFault(f *FaultConfig) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.fault = f
}

// Fault returns the installed fault-injection config, if any.
func (st *SessionStore) Fault() *FaultConfig {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.fault
}

// Recovered returns the sessions found at open time (latest record per
// live id, in id order). The slice is immutable; appends after open do
// not change it.
func (st *SessionStore) Recovered() []*session.Snapshot { return st.recovered }

// Len returns the number of live (non-tombstoned) ids in the store.
func (st *SessionStore) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.latest)
}

// Append durably records snap: the record is written and fsynced before
// Append returns, so an acknowledged edit survives kill -9. An fsync
// failure is returned (the caller decides whether to degrade or fail);
// the unsynced bytes are tolerated by recovery like any torn tail.
func (st *SessionStore) Append(snap *session.Snapshot) error {
	st.mu.Lock()
	if st.f == nil {
		st.mu.Unlock()
		return fmt.Errorf("engine: session store closed")
	}
	payload, err := snap.Append(st.buf[:0])
	if err != nil {
		st.mu.Unlock()
		return err
	}
	st.buf = payload[:0]
	frame := wire.AppendFrame(nil, wire.FrameSnapshot, payload)
	if err := st.writeLocked(frame); err != nil {
		st.mu.Unlock()
		return err
	}
	st.setLatestLocked(snap.ID, payload)
	fault := st.fault
	st.compactLocked()
	st.mu.Unlock()
	// The kill hook runs outside the lock: it may close listeners or
	// block, and "the process died" must not deadlock the store it was
	// injected into.
	fault.appended()
	return nil
}

// Delete durably tombstones id. Deleting an id the store does not hold
// is a no-op (nothing to resurrect).
func (st *SessionStore) Delete(id string) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.f == nil {
		return fmt.Errorf("engine: session store closed")
	}
	if _, ok := st.latest[id]; !ok {
		return nil
	}
	frame := wire.AppendFrame(nil, wire.FrameDelete, wire.AppendString(nil, id))
	if err := st.writeLocked(frame); err != nil {
		return err
	}
	st.dropLatestLocked(id)
	st.compactLocked()
	return nil
}

// writeLocked appends one frame and fsyncs (the fault seam sits on the
// fsync, matching the failure mode it simulates).
func (st *SessionStore) writeLocked(frame []byte) error {
	if _, err := st.f.Write(frame); err != nil {
		return fmt.Errorf("engine: session store: %w", err)
	}
	st.logBytes += int64(len(frame))
	if err := st.fault.fsyncErr(); err != nil {
		return err
	}
	if err := st.f.Sync(); err != nil {
		return fmt.Errorf("engine: session store: %w", err)
	}
	return nil
}

// compactLocked rewrites the log to just the live snapshots when it is
// mostly garbage: temp file, fsync, rename over the log (the atomic
// commit point), directory fsync. A crash anywhere leaves either the
// old log or the complete new one.
func (st *SessionStore) compactLocked() {
	if st.logBytes < compactMinLogBytes || st.logBytes <= compactGarbageMult*st.liveBytes {
		return
	}
	tmpPath := st.path + ".tmp"
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return // compaction is an optimisation; the log stays correct
	}
	ids := make([]string, 0, len(st.latest))
	for id := range st.latest {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var size int64
	var frame []byte
	for _, id := range ids {
		frame = wire.AppendFrame(frame[:0], wire.FrameSnapshot, st.latest[id])
		n, err := tmp.Write(frame)
		if err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return
		}
		size += int64(n)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return
	}
	if err := os.Rename(tmpPath, st.path); err != nil {
		os.Remove(tmpPath)
		return
	}
	if d, err := os.Open(st.dir); err == nil {
		d.Sync()
		d.Close()
	}
	f, err := os.OpenFile(st.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// The compacted log is in place but unappendable; keep the old
		// handle (now writing to the unlinked file) out of use.
		return
	}
	st.f.Close()
	st.f = f
	st.logBytes = size
}

// Close closes the log file. A closed store refuses further appends.
func (st *SessionStore) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.f == nil {
		return nil
	}
	err := st.f.Close()
	st.f = nil
	return err
}

package engine

// Tests of POST /v1/sessions/{id}/repair: wire validation (the ppp
// panic must be unreachable), the JSON/binary codec parity the PR 8
// conventions require, determinism of the returned transform sequence,
// and the apply flow.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"repro/internal/wire"
)

// repairTestTaskSet is the pinned unschedulable fixture: on two cores
// under LP-ILP, lo's single 200-long NPR blocks hi past its deadline.
const repairTestTaskSet = `{"tasks":[
	{"name":"hi","wcet":[5,5],"edges":[[0,1]],"deadline":25,"period":40},
	{"name":"lo","wcet":[200],"edges":[],"deadline":900,"period":1000}
]}`

func repairTestSession(t *testing.T, s *Server) string {
	t.Helper()
	body := fmt.Sprintf(`{"taskset": %s, "cores": 2, "method": "lp-ilp"}`, repairTestTaskSet)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/sessions", strings.NewReader(body)))
	if w.Code != http.StatusCreated {
		t.Fatalf("create status %d: %s", w.Code, w.Body)
	}
	var resp struct {
		ID     string        `json:"id"`
		Report analyzeResult `json:"report"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Report.Schedulable {
		t.Fatal("fixture must start unschedulable")
	}
	return resp.ID
}

func postRepair(t *testing.T, s *Server, id, body, accept string) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/sessions/"+id+"/repair", rd)
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func TestSessionRepairHTTP(t *testing.T) {
	s := binTestServer(t)
	id := repairTestSession(t, s)

	w := postRepair(t, s, id, `{"seed": 7}`, "")
	if w.Code != http.StatusOK {
		t.Fatalf("repair status %d: %s", w.Code, w.Body)
	}
	var first repairResponse
	if err := json.Unmarshal(w.Body.Bytes(), &first); err != nil {
		t.Fatal(err)
	}
	if !first.Fixed || first.Applied || first.Stopped {
		t.Fatalf("want an unapplied fix, got %+v", first)
	}
	if len(first.Transforms) == 0 || !first.Report.Schedulable {
		t.Fatalf("fix without transforms or schedulable report: %+v", first)
	}
	if first.FailingBefore == 0 || first.FailingAfter != 0 {
		t.Fatalf("failing counts: %+v", first)
	}

	// Deterministic: the same query returns byte-identical JSON.
	w2 := postRepair(t, s, id, `{"seed": 7}`, "")
	if w2.Code != http.StatusOK {
		t.Fatalf("second repair status %d: %s", w2.Code, w2.Body)
	}
	if w.Body.String() != w2.Body.String() {
		t.Fatalf("repair is not deterministic:\n%s\nvs\n%s", w.Body, w2.Body)
	}

	// A query must not have mutated the session.
	rw := httptest.NewRecorder()
	s.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/v1/sessions/"+id+"/report", nil))
	var rep struct {
		Report analyzeResult `json:"report"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Report.Schedulable {
		t.Fatal("repair query mutated the session")
	}
}

func TestSessionRepairBinaryMatchesJSON(t *testing.T) {
	s := binTestServer(t)
	id := repairTestSession(t, s)
	body := `{"seed": 7, "max_steps": 3}`

	jw := postRepair(t, s, id, body, "")
	if jw.Code != http.StatusOK {
		t.Fatalf("JSON status %d: %s", jw.Code, jw.Body)
	}
	var jresp repairResponse
	if err := json.Unmarshal(jw.Body.Bytes(), &jresp); err != nil {
		t.Fatal(err)
	}

	bw := postRepair(t, s, id, body, wire.ContentType)
	if bw.Code != http.StatusOK {
		t.Fatalf("binary status %d: %s", bw.Code, bw.Body)
	}
	if ct := bw.Header().Get("Content-Type"); ct != wire.ContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, wire.ContentType)
	}
	frames := decodeBinFrames(t, bw.Body)
	if len(frames) != 1 {
		t.Fatalf("%d frames, want 1", len(frames))
	}
	d := wire.NewDec(frames[0])
	bresp, err := decodeRepairResultBin(d)
	if err != nil || d.Rest() != 0 {
		t.Fatalf("binary payload: err=%v rest=%d", err, d.Rest())
	}
	if !reflect.DeepEqual(jresp, bresp) {
		t.Fatalf("binary result differs from JSON:\nJSON:   %+v\nbinary: %+v", jresp, bresp)
	}

	// The binary codec round-trips what the handler wrote.
	re := appendRepairResultBin(nil, bresp)
	if string(re) != string(frames[0]) {
		t.Fatal("appendRepairResultBin(decode(payload)) != payload")
	}
}

func TestSessionRepairApplyHTTP(t *testing.T) {
	s := binTestServer(t)
	id := repairTestSession(t, s)

	// Epoch before: a pure query's header carries the current value.
	q := postRepair(t, s, id, `{}`, "")
	var before uint64
	if _, err := fmt.Sscan(q.Header().Get(sessionEpochHeader), &before); err != nil {
		t.Fatalf("epoch header %q: %v", q.Header().Get(sessionEpochHeader), err)
	}

	w := postRepair(t, s, id, `{"apply": true}`, "")
	if w.Code != http.StatusOK {
		t.Fatalf("repair status %d: %s", w.Code, w.Body)
	}
	var resp repairResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Fixed || !resp.Applied {
		t.Fatalf("want an applied fix, got %+v", resp)
	}
	if got := w.Header().Get(sessionEpochHeader); got != fmt.Sprint(before+1) {
		t.Fatalf("epoch header = %q, want %d (one bump per applied repair)", got, before+1)
	}

	rw := httptest.NewRecorder()
	s.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/v1/sessions/"+id+"/report", nil))
	var rep struct {
		Report analyzeResult `json:"report"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Report.Schedulable {
		t.Fatal("session not schedulable after applied repair")
	}
}

// TestSessionRepairValidation: malformed parameters 400 at the wire
// boundary with the invalid-field convention — in particular budgets
// that would reach ppp.SplitNodes' maxNPR panic.
func TestSessionRepairValidation(t *testing.T) {
	s := binTestServer(t)
	id := repairTestSession(t, s)
	cases := []struct {
		body string
		want string
	}{
		{`{"budgets": [10, 0]}`, "ppp: invalid maxNPR: 0"},
		{`{"budgets": [-3]}`, "ppp: invalid maxNPR: -3"},
		{`{"strategy": "magic"}`, "invalid strategy"},
		{`{"max_steps": -1}`, "invalid Config.MaxSteps"},
		{`{"beam": -1}`, "invalid Config.Beam"},
		{`{"max_candidates": -1}`, "invalid Config.MaxCandidates"},
		{`{"timeout_ms": -5}`, "invalid timeout_ms"},
		{`{"bogus_field": 1}`, "unknown field"},
	}
	for _, tc := range cases {
		w := postRepair(t, s, id, tc.body, "")
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.body, w.Code, w.Body)
			continue
		}
		if !strings.Contains(w.Body.String(), tc.want) {
			t.Errorf("%s: body %q, want %q", tc.body, w.Body, tc.want)
		}
	}

	// Unknown session ids 404 like every session endpoint.
	if w := postRepair(t, s, "nope", `{}`, ""); w.Code != http.StatusNotFound {
		t.Errorf("unknown id: status %d, want 404", w.Code)
	}
}

// TestSessionRepairTimeoutBudget: an absurdly small timeout is the
// anytime contract, not an error — the response reports Stopped with
// the best partial repair.
func TestSessionRepairTimeoutBudget(t *testing.T) {
	s := binTestServer(t)
	id := repairTestSession(t, s)
	// max_candidates rather than wall-clock would also stop it; use
	// both so the test is immune to scheduler timing.
	w := postRepair(t, s, id, `{"timeout_ms": 1, "max_candidates": 1}`, "")
	if w.Code != http.StatusOK {
		t.Fatalf("repair status %d: %s", w.Code, w.Body)
	}
	var resp repairResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Stopped || resp.Fixed || resp.Applied {
		t.Fatalf("want a stopped partial result, got %+v", resp)
	}
}

package engine_test

import (
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fixture"
	"repro/internal/session"
)

// newSnapshot builds a snapshot of the Figure 1 example under the given
// identity, with extraEdits core bumps so callers can control the epoch.
func newSnapshot(t *testing.T, id string, lastTouch int64, extraEdits int) *session.Snapshot {
	t.Helper()
	sess, err := session.New(core.Options{Cores: fixture.M, Method: core.LPILP}, fixture.TaskSet().Tasks...)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < extraEdits; i++ {
		if err := sess.SetCores(2 + (fixture.M+i)%6); err != nil {
			t.Fatal(err)
		}
	}
	return sess.Snapshot(id, lastTouch)
}

func TestSessionStoreAppendRecover(t *testing.T) {
	dir := t.TempDir()
	st, err := engine.OpenSessionStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	a1 := newSnapshot(t, "aa", 100, 0)
	a2 := newSnapshot(t, "aa", 200, 2) // supersedes a1
	b := newSnapshot(t, "bb", 300, 1)
	c := newSnapshot(t, "cc", 400, 0)
	for _, snap := range []*session.Snapshot{a1, b, a2, c} {
		if err := st.Append(snap); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Delete("cc"); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete("never-existed"); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 2 {
		t.Fatalf("live ids = %d, want 2", st.Len())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := engine.OpenSessionStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rec := re.Recovered()
	if len(rec) != 2 || rec[0].ID != "aa" || rec[1].ID != "bb" {
		t.Fatalf("recovered %d snapshots: %+v", len(rec), rec)
	}
	if rec[0].Epoch != a2.Epoch || rec[0].LastTouch != 200 {
		t.Fatalf("recovered stale 'aa': epoch %d lastTouch %d, want %d/200",
			rec[0].Epoch, rec[0].LastTouch, a2.Epoch)
	}
	if rec[0].Opts.Cores != a2.Opts.Cores || len(rec[0].Tasks) != len(a2.Tasks) {
		t.Fatalf("recovered content differs: %+v vs %+v", rec[0], a2)
	}
}

func TestSessionStoreTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	st, err := engine.OpenSessionStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(newSnapshot(t, "aa", 1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(newSnapshot(t, "bb", 2, 0)); err != nil {
		t.Fatal(err)
	}
	st.Close()

	logPath := filepath.Join(dir, "sessions.log")
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the tail at every offset inside the last record: recovery
	// must keep 'aa' (and 'bb' only when its record survived intact).
	full := int64(len(data))
	for cut := full - 1; cut > full/2; cut -= 7 {
		if err := os.WriteFile(logPath, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := engine.OpenSessionStore(dir)
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		rec := re.Recovered()
		if len(rec) == 0 || rec[0].ID != "aa" {
			t.Fatalf("cut at %d: lost the intact prefix: %+v", cut, rec)
		}
		// The torn tail must be truncated on disk so the next append
		// starts from a clean frame boundary.
		if fi, err := os.Stat(logPath); err != nil || fi.Size() == cut {
			if err == nil && cut != full {
				t.Fatalf("cut at %d: torn tail not truncated (size %d)", cut, fi.Size())
			}
		}
		if err := re.Append(newSnapshot(t, "cc", 3, 0)); err != nil {
			t.Fatal(err)
		}
		re.Close()
		re2, err := engine.OpenSessionStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(re2.Recovered()); got < 2 {
			t.Fatalf("cut at %d: append after torn-tail recovery lost data: %d ids", cut, got)
		}
		re2.Close()
		// Restore the original bytes for the next cut.
		if err := os.WriteFile(logPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSessionStoreGarbageTailStopsRecovery(t *testing.T) {
	dir := t.TempDir()
	st, err := engine.OpenSessionStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(newSnapshot(t, "aa", 1, 0)); err != nil {
		t.Fatal(err)
	}
	st.Close()
	logPath := filepath.Join(dir, "sessions.log")
	f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{'X', 0xff, 0x03, 0x01, 0x02}) // unknown frame type + junk
	f.Close()
	re, err := engine.OpenSessionStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if rec := re.Recovered(); len(rec) != 1 || rec[0].ID != "aa" {
		t.Fatalf("recovered %+v, want just aa", rec)
	}
}

func TestSessionStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	st, err := engine.OpenSessionStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	snap := newSnapshot(t, "aa", 1, 0)
	one, err := snap.Append(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Enough superseded appends of one id to cross the compaction
	// threshold several times over.
	appends := (64<<10)/len(one)*2 + 16
	for i := 0; i < appends; i++ {
		if err := st.Append(snap); err != nil {
			t.Fatal(err)
		}
	}
	fi, err := os.Stat(filepath.Join(dir, "sessions.log"))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() >= int64(appends*len(one)) {
		t.Fatalf("log never compacted: %d bytes after %d appends of %d-byte snapshots",
			fi.Size(), appends, len(one))
	}
	st.Close()
	re, err := engine.OpenSessionStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if rec := re.Recovered(); len(rec) != 1 || rec[0].ID != "aa" {
		t.Fatalf("compacted log recovered %+v", rec)
	}
}

func TestSessionStoreFsyncFaultInjection(t *testing.T) {
	dir := t.TempDir()
	st, err := engine.OpenSessionStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var fault engine.FaultConfig
	st.SetFault(&fault)
	fault.FailNextFsync(1)
	if err := st.Append(newSnapshot(t, "aa", 1, 0)); err == nil {
		t.Fatal("injected fsync failure not surfaced")
	}
	if err := st.Append(newSnapshot(t, "aa", 2, 1)); err != nil {
		t.Fatalf("append after cleared fault: %v", err)
	}
}

func TestFaultKillAfterAppendsFiresOnce(t *testing.T) {
	dir := t.TempDir()
	st, err := engine.OpenSessionStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var fault engine.FaultConfig
	st.SetFault(&fault)
	var fired atomic.Int64
	fault.KillAfterAppends(2, func() { fired.Add(1) })
	for i := 0; i < 5; i++ {
		if err := st.Append(newSnapshot(t, "aa", int64(i), i%3)); err != nil {
			t.Fatal(err)
		}
		want := int64(0)
		if i >= 1 {
			want = 1
		}
		if fired.Load() != want {
			t.Fatalf("after append %d: kill fired %d times, want %d", i+1, fired.Load(), want)
		}
	}
}

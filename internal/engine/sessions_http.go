package engine

// HTTP surface of the stateful analysis sessions (see sessions.go and
// internal/session):
//
//	POST   /v1/sessions                   create (task set + options)
//	GET    /v1/sessions/{id}/report       current report
//	POST   /v1/sessions/{id}/edits        apply an edit batch, return the report
//	POST   /v1/sessions/{id}/admit        admission probe (no commit)
//	POST   /v1/sessions/{id}/sensitivity  per-task WCET headroom
//	POST   /v1/sessions/{id}/repair       NPR-placement repair search
//	DELETE /v1/sessions/{id}              drop the session
//
// Unknown and expired ids both 404 (expiry deletes, so the server
// cannot tell them apart and does not pretend to). A full registry
// 503s: sessions are server state, so the cap is load shedding, not a
// request-shape error.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/ppp"
	"repro/internal/repair"
	"repro/internal/session"
	"repro/internal/wire"
)

// sessionOwnerHeader names the ring member a 307 redirect points at (the
// Location header carries the full URL; this carries just the base, so a
// client can re-aim its whole conversation, not one request).
const sessionOwnerHeader = "X-Lpdag-Session-Owner"

// sessionEpochHeader carries the session's monotonic edit epoch on every
// session response. A client whose connection died mid-edit compares it
// against the epoch it last saw to decide whether the edit committed
// before resending.
const sessionEpochHeader = "X-Lpdag-Session-Epoch"

// redirectSession answers 307 + X-Lpdag-Session-Owner when another ring
// member owns id, and reports whether it wrote the response. Sessions
// present locally are always served locally, whatever the ring says:
// after a node replacement restores another node's store, custody beats
// nominal ownership (the static peer list still names the dead address).
func (s *Server) redirectSession(w http.ResponseWriter, r *http.Request, id string) bool {
	if s.ring == nil || s.sessions.Has(id) {
		return false
	}
	owner := s.ring.Owner(id)
	if owner == s.self {
		return false
	}
	s.redirects.Inc()
	w.Header().Set(sessionOwnerHeader, owner)
	w.Header().Set("Location", owner+r.URL.RequestURI())
	w.WriteHeader(http.StatusTemporaryRedirect)
	return true
}

// setSessionEpoch stamps the session's current edit epoch on a response
// about to be written. Call before the body writer.
func (s *Server) setSessionEpoch(w http.ResponseWriter, id string) {
	if epoch, ok := s.sessions.Epoch(id); ok {
		w.Header().Set(sessionEpochHeader, strconv.FormatUint(epoch, 10))
	}
}

// createSessionRequest is the POST /v1/sessions body. The task set is
// optional: admission-control sessions often start empty and admit.
type createSessionRequest struct {
	TaskSet  json.RawMessage `json:"taskset,omitempty"`
	Cores    int             `json:"cores,omitempty"`   // default 4
	Method   string          `json:"method,omitempty"`  // default "lp-ilp"
	Backend  string          `json:"backend,omitempty"` // default "combinatorial"
	FinalNPR bool            `json:"final_npr,omitempty"`
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var req createSessionRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Cores == 0 {
		req.Cores = 4
	}
	opts := core.Options{Cores: req.Cores, FinalNPRRefinement: req.FinalNPR}
	var err error
	if opts.Method, err = ParseMethod(req.Method); err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if opts.Backend, err = ParseBackend(req.Backend); err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var tasks []*model.Task
	if len(req.TaskSet) > 0 {
		ts := new(model.TaskSet)
		if err := ts.UnmarshalJSON(req.TaskSet); err != nil {
			s.writeError(w, http.StatusBadRequest, "invalid taskset: %v", err)
			return
		}
		tasks = ts.Tasks
	}
	id, _, err := s.sessions.Create(opts, tasks...)
	if err != nil {
		s.writeError(w, statusForSessionError(err), "create session: %v", err)
		return
	}
	// The initial analysis is the largest one a session ever pays (no
	// incremental state yet); run it as a pooled job like every other
	// session operation so creates share the worker pool's backpressure.
	v, err := s.sessions.Do(r.Context(), id,
		func(ctx context.Context, sess *session.Session) (any, error) {
			return sess.Report(ctx)
		})
	if err != nil {
		s.sessions.Delete(id)
		s.writeError(w, statusForSessionError(err), "create session: %v", err)
		return
	}
	s.setSessionEpoch(w, id)
	if binaryAccepted(r) {
		s.writeFrame(w, http.StatusCreated, func(dst []byte) []byte {
			dst = wire.AppendString(dst, id)
			return appendAnalyzeResultBin(dst, reportJSON(v.(*core.Report)))
		})
		return
	}
	s.writeJSON(w, http.StatusCreated, map[string]any{"id": id, "report": reportJSON(v.(*core.Report))})
}

func (s *Server) handleSessionReport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.redirectSession(w, r, id) {
		return
	}
	v, err := s.sessions.Do(r.Context(), id,
		func(ctx context.Context, sess *session.Session) (any, error) {
			return sess.Report(ctx)
		})
	if err != nil {
		s.writeError(w, statusForSessionError(err), "session report: %v", err)
		return
	}
	s.setSessionEpoch(w, id)
	if binaryAccepted(r) {
		s.writeFrame(w, http.StatusOK, func(dst []byte) []byte {
			return appendAnalyzeResultBin(dst, reportJSON(v.(*core.Report)))
		})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"report": reportJSON(v.(*core.Report))})
}

// sessionEditJSON is one element of the edits batch. Tasks may be
// addressed by index or, for remove/set_priority, by name.
type sessionEditJSON struct {
	Op     string          `json:"op"`
	Task   json.RawMessage `json:"task,omitempty"`
	At     *int            `json:"at,omitempty"` // add: default lowest priority
	Index  *int            `json:"index,omitempty"`
	Name   string          `json:"name,omitempty"`
	From   *int            `json:"from,omitempty"`
	To     *int            `json:"to,omitempty"`
	Cores  int             `json:"cores,omitempty"`
	Method string          `json:"method,omitempty"`
}

type sessionEditsRequest struct {
	Edits []sessionEditJSON `json:"edits"`
}

// decodeEdit lowers one wire edit onto a session.Edit. Name-based
// addressing passes through: session.Apply resolves names against the
// state the batch has reached, so an edit can reference a task an
// earlier edit in the same batch added.
func decodeEdit(e sessionEditJSON) (session.Edit, error) {
	out := session.Edit{Op: e.Op, Name: e.Name}
	need := func(idx *int, field string) (int, error) {
		if e.Name != "" {
			return 0, nil // resolved by name in session.Apply
		}
		if idx == nil {
			return 0, errors.New("missing " + field)
		}
		return *idx, nil
	}
	switch e.Op {
	case session.OpAdd:
		if len(e.Task) == 0 {
			return out, errors.New("missing task")
		}
		t := new(model.Task)
		if err := t.UnmarshalJSON(e.Task); err != nil {
			return out, err
		}
		out.Task = t
		out.At = -1
		if e.At != nil {
			out.At = *e.At
		}
	case session.OpRemove:
		i, err := need(e.Index, "index")
		if err != nil {
			return out, err
		}
		out.Index = i
	case session.OpSetPriority:
		from, err := need(e.From, "from")
		if err != nil {
			return out, err
		}
		if e.To == nil {
			return out, errors.New("missing to")
		}
		out.From, out.To = from, *e.To
	case session.OpSetCores:
		out.Cores = e.Cores
	case session.OpSetMethod:
		m, err := ParseMethod(e.Method)
		if err != nil {
			return out, err
		}
		out.Method = m
	default:
		// Let session.Apply produce the canonical unknown-op error.
	}
	return out, nil
}

func (s *Server) handleSessionEdits(w http.ResponseWriter, r *http.Request) {
	var req sessionEditsRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Edits) == 0 {
		s.writeError(w, http.StatusBadRequest, "empty edit batch")
		return
	}
	edits := make([]session.Edit, len(req.Edits))
	for i, e := range req.Edits {
		var err error
		if edits[i], err = decodeEdit(e); err != nil {
			s.writeError(w, http.StatusBadRequest, "edit %d: %v", i, err)
			return
		}
	}
	id := r.PathValue("id")
	if s.redirectSession(w, r, id) {
		return
	}
	v, err := s.sessions.Do(r.Context(), id,
		func(ctx context.Context, sess *session.Session) (any, error) {
			if err := sess.Apply(edits); err != nil {
				return nil, err
			}
			rep, err := sess.Report(ctx)
			if err != nil {
				// The batch IS committed (Apply is transactional and
				// succeeded); only the report failed, e.g. the client
				// cancelled mid-analysis. Say so explicitly — a client
				// that misread this as "nothing applied" would retry the
				// whole batch against the already-edited session.
				return nil, fmt.Errorf("%w: edits were applied; re-fetch GET report", err)
			}
			return rep, nil
		})
	if err != nil {
		s.setSessionEpoch(w, id) // edits may have committed even when the report failed
		s.writeError(w, statusForSessionError(err), "session edits: %v", err)
		return
	}
	s.setSessionEpoch(w, id)
	if binaryAccepted(r) {
		s.writeFrame(w, http.StatusOK, func(dst []byte) []byte {
			return appendAnalyzeResultBin(dst, reportJSON(v.(*core.Report)))
		})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"report": reportJSON(v.(*core.Report))})
}

// sessionAdmitRequest is the POST /v1/sessions/{id}/admit body.
type sessionAdmitRequest struct {
	Task json.RawMessage `json:"task"`
	At   *int            `json:"at,omitempty"` // default lowest priority
}

func (s *Server) handleSessionAdmit(w http.ResponseWriter, r *http.Request) {
	var req sessionAdmitRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Task) == 0 {
		s.writeError(w, http.StatusBadRequest, "missing task")
		return
	}
	t := new(model.Task)
	if err := t.UnmarshalJSON(req.Task); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid task: %v", err)
		return
	}
	at := -1
	if req.At != nil {
		at = *req.At
	}
	id := r.PathValue("id")
	if s.redirectSession(w, r, id) {
		return
	}
	v, err := s.sessions.Do(r.Context(), id,
		func(ctx context.Context, sess *session.Session) (any, error) {
			return sess.TryAdmit(ctx, t, at)
		})
	if err != nil {
		s.writeError(w, statusForSessionError(err), "session admit: %v", err)
		return
	}
	s.setSessionEpoch(w, id)
	rep := v.(*core.Report)
	if binaryAccepted(r) {
		s.writeFrame(w, http.StatusOK, func(dst []byte) []byte {
			dst = appendBool(dst, rep.Schedulable)
			return appendAnalyzeResultBin(dst, reportJSON(rep))
		})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"admitted": rep.Schedulable,
		"report":   reportJSON(rep),
	})
}

// sessionSensitivityRequest is the POST /v1/sessions/{id}/sensitivity
// body; the task may be addressed by index or name.
type sessionSensitivityRequest struct {
	Index       *int   `json:"index,omitempty"`
	Name        string `json:"name,omitempty"`
	MaxPermille int    `json:"max_permille,omitempty"` // default 10000 (10×)
}

func (s *Server) handleSessionSensitivity(w http.ResponseWriter, r *http.Request) {
	var req sessionSensitivityRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.MaxPermille == 0 {
		req.MaxPermille = 10_000
	}
	if req.Name == "" && req.Index == nil {
		s.writeError(w, http.StatusBadRequest, "missing index or name")
		return
	}
	id := r.PathValue("id")
	if s.redirectSession(w, r, id) {
		return
	}
	v, err := s.sessions.Do(r.Context(), id,
		func(ctx context.Context, sess *session.Session) (any, error) {
			i := 0
			if req.Name != "" {
				i = sess.TaskIndex(req.Name)
				if i < 0 {
					return nil, errors.New("unknown task name " + req.Name)
				}
			} else {
				i = *req.Index
			}
			return sess.Sensitivity(ctx, i, req.MaxPermille)
		})
	if err != nil {
		s.writeError(w, statusForSessionError(err), "session sensitivity: %v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"permille": v.(int)})
}

// sessionRepairRequest is the POST /v1/sessions/{id}/repair body. The
// zero value runs the default greedy search as a pure query.
type sessionRepairRequest struct {
	Strategy      string  `json:"strategy,omitempty"`       // greedy (default) | exhaustive
	MaxSteps      int     `json:"max_steps,omitempty"`      // transform-sequence cap, default 4
	Budgets       []int64 `json:"budgets,omitempty"`        // split/coarsen NPR caps, default derived
	Coarsen       bool    `json:"coarsen,omitempty"`        // admit coarsen transforms
	Reprioritize  bool    `json:"reprioritize,omitempty"`   // admit priority moves
	Beam          int     `json:"beam,omitempty"`           // greedy frontier width, default 4
	MaxCandidates int     `json:"max_candidates,omitempty"` // anytime candidate cap, default 4096
	Seed          int64   `json:"seed,omitempty"`           // tie-break pin
	TimeoutMs     int     `json:"timeout_ms,omitempty"`     // anytime wall-clock budget, 0 = none
	Apply         bool    `json:"apply,omitempty"`          // commit the repair when it fixes the set
}

// repairConfig validates the request at the wire boundary (so
// ppp.SplitNodes' maxNPR panic is unreachable from a request body) and
// lifts it into a repair.Config.
func (req sessionRepairRequest) repairConfig() (repair.Config, error) {
	strategy, err := repair.ParseStrategy(req.Strategy)
	if err != nil {
		return repair.Config{}, err
	}
	for _, q := range req.Budgets {
		if err := ppp.CheckMaxNPR(q); err != nil {
			return repair.Config{}, err
		}
	}
	if req.TimeoutMs < 0 {
		return repair.Config{}, fmt.Errorf("engine: invalid timeout_ms: %d (must be ≥ 0)", req.TimeoutMs)
	}
	cfg := repair.Config{
		Strategy:      strategy,
		MaxSteps:      req.MaxSteps,
		Budgets:       req.Budgets,
		Coarsen:       req.Coarsen,
		Reprioritize:  req.Reprioritize,
		Beam:          req.Beam,
		MaxCandidates: req.MaxCandidates,
		Seed:          req.Seed,
	}
	if err := cfg.Validate(); err != nil {
		return repair.Config{}, err
	}
	return cfg, nil
}

// transformJSON is one repair step on the wire.
type transformJSON struct {
	Op     string `json:"op"`
	Task   string `json:"task"`
	MaxNPR int64  `json:"max_npr,omitempty"`
	To     int    `json:"to,omitempty"`
}

// repairResponse is the POST /v1/sessions/{id}/repair response body.
type repairResponse struct {
	Fixed         bool            `json:"fixed"`
	Stopped       bool            `json:"stopped"`
	Applied       bool            `json:"applied"`
	Candidates    int             `json:"candidates"`
	FailingBefore int             `json:"failing_before"`
	FailingAfter  int             `json:"failing_after"`
	SlackBefore   int64           `json:"slack_before"`
	SlackAfter    int64           `json:"slack_after"`
	Transforms    []transformJSON `json:"transforms"`
	Report        analyzeResult   `json:"report"`
}

func repairResponseOf(res *repair.Result, applied bool) repairResponse {
	out := repairResponse{
		Fixed:         res.Fixed,
		Stopped:       res.Stopped,
		Applied:       applied,
		Candidates:    res.Candidates,
		FailingBefore: res.FailingBefore,
		FailingAfter:  res.FailingAfter,
		SlackBefore:   res.SlackBefore,
		SlackAfter:    res.SlackAfter,
		Transforms:    make([]transformJSON, len(res.Transforms)),
		Report:        reportJSON(res.Report),
	}
	for i, tr := range res.Transforms {
		out.Transforms[i] = transformJSON{
			Op:     tr.Op.String(),
			Task:   tr.Task,
			MaxNPR: tr.MaxNPR,
			To:     tr.To,
		}
	}
	return out
}

func (s *Server) handleSessionRepair(w http.ResponseWriter, r *http.Request) {
	var req sessionRepairRequest
	if !s.decode(w, r, &req) {
		return
	}
	cfg, err := req.repairConfig()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	id := r.PathValue("id")
	if s.redirectSession(w, r, id) {
		return
	}
	t0 := time.Now()
	v, err := s.sessions.Do(r.Context(), id,
		func(ctx context.Context, sess *session.Session) (any, error) {
			if req.TimeoutMs > 0 {
				// The timeout is the anytime budget, not a failure
				// mode: when it strikes, Repair returns the best
				// partial repair with Stopped set.
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMs)*time.Millisecond)
				defer cancel()
			}
			return sess.Repair(ctx, cfg, req.Apply)
		})
	if err != nil {
		s.setSessionEpoch(w, id) // an applied repair bumps the epoch
		s.writeError(w, statusForSessionError(err), "session repair: %v", err)
		return
	}
	res := v.(*repair.Result)
	s.sessions.ObserveRepair(res, time.Since(t0))
	s.setSessionEpoch(w, id)
	applied := req.Apply && res.Fixed && len(res.Transforms) > 0
	out := repairResponseOf(res, applied)
	if binaryAccepted(r) {
		s.writeFrame(w, http.StatusOK, func(dst []byte) []byte {
			return appendRepairResultBin(dst, out)
		})
		return
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.redirectSession(w, r, id) {
		return
	}
	if !s.sessions.Delete(id) {
		s.writeError(w, http.StatusNotFound, "%v", ErrSessionNotFound)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleSessionHandoff accepts a stream of 'S' snapshot frames from a
// draining peer and installs each (marking it freshly used, persisting
// it to this node's store). Snapshots older than a live local session's
// epoch are rejected as stale — a late duplicate push must not roll a
// session back. The response counts both outcomes so the sender can log
// what landed.
func (s *Server) handleSessionHandoff(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	rd := wire.NewReader(body, int(s.cfg.MaxBodyBytes))
	installed, stale := 0, 0
	for {
		typ, payload, err := rd.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "handoff: %v", err)
			return
		}
		if typ != wire.FrameSnapshot {
			s.writeError(w, http.StatusBadRequest, "handoff: unexpected frame type %q", typ)
			return
		}
		snap, err := session.DecodeSnapshot(payload)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "handoff: %v", err)
			return
		}
		switch err := s.sessions.Install(snap, true, true); {
		case err == nil:
			s.handoffs.Inc()
			installed++
		case errors.Is(err, ErrStaleSnapshot):
			stale++
		default:
			s.writeError(w, statusForSessionError(err), "handoff: %v", err)
			return
		}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"installed": installed, "stale": stale})
}

// DrainSessions flushes every live session to the durable store and
// hands each off to its next ring owner over POST /v1/sessions/handoff.
// Call after StartDraining and before closing the listener; it is the
// graceful-shutdown half of durability (kill -9 relies on the store
// alone). Errors are aggregated, not fatal: a peer that cannot be
// reached simply keeps its sessions in this node's store for takeover.
func (s *Server) DrainSessions(ctx context.Context, client *http.Client) error {
	s.sessions.FlushAll()
	if s.ring == nil || s.ring.Len() < 2 {
		return nil
	}
	if client == nil {
		client = http.DefaultClient
	}
	snaps := s.sessions.SnapshotAll()
	byTarget := make(map[string][]*session.Snapshot)
	for _, snap := range snaps {
		target := s.ring.Next(snap.ID, s.self)
		if target == "" {
			continue
		}
		byTarget[target] = append(byTarget[target], snap)
	}
	targets := make([]string, 0, len(byTarget))
	for t := range byTarget {
		targets = append(targets, t)
	}
	sort.Strings(targets) // deterministic push order for tests and logs
	var errs []error
	for _, target := range targets {
		if st := s.cfg.SessionStore; st != nil && st.Fault().handoffDropped() {
			errs = append(errs, fmt.Errorf("handoff to %s: dropped (fault injection)", target))
			continue
		}
		var buf []byte
		for _, snap := range byTarget[target] {
			payload, err := snap.Append(nil)
			if err != nil {
				errs = append(errs, fmt.Errorf("encode %s: %w", snap.ID, err))
				continue
			}
			buf = wire.AppendFrame(buf, wire.FrameSnapshot, payload)
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			target+"/v1/sessions/handoff", bytes.NewReader(buf))
		if err != nil {
			errs = append(errs, err)
			continue
		}
		req.Header.Set("Content-Type", wire.ContentType)
		resp, err := client.Do(req)
		if err != nil {
			errs = append(errs, fmt.Errorf("handoff to %s: %w", target, err))
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			errs = append(errs, fmt.Errorf("handoff to %s: HTTP %d", target, resp.StatusCode))
		}
	}
	return errors.Join(errs...)
}

// statusForSessionError maps session-layer failures onto HTTP codes.
func statusForSessionError(err error) int {
	switch {
	case errors.Is(err, ErrSessionNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrTooManySessions), errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

package engine_test

// Durable-session registry tests: restore-on-startup, TTL tombstoning
// across restarts, and a -race hammer over every registry entry point
// racing the TTL sweep and a concurrent startup restore.

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fixture"
	"repro/internal/session"
)

// durableHarness is an engine + durable registry over one session dir.
type durableHarness struct {
	eng *engine.Engine
	st  *engine.SessionStore
	reg *engine.SessionRegistry
}

func openDurable(t *testing.T, dir string, cfg engine.SessionRegistryConfig) *durableHarness {
	t.Helper()
	e := engine.New(engine.Config{Workers: 2})
	t.Cleanup(e.Close)
	st, err := engine.OpenSessionStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	cfg.Store = st
	return &durableHarness{eng: e, st: st, reg: engine.NewSessionRegistry(e, cfg)}
}

func report(t *testing.T, reg *engine.SessionRegistry, id string) *core.Report {
	t.Helper()
	v, err := reg.Do(context.Background(), id,
		func(ctx context.Context, s *session.Session) (any, error) { return s.Report(ctx) })
	if err != nil {
		t.Fatal(err)
	}
	return v.(*core.Report)
}

func TestSessionRegistryDurableRestart(t *testing.T) {
	dir := t.TempDir()
	h := openDurable(t, dir, engine.SessionRegistryConfig{})
	id, _, err := h.reg.Create(core.Options{Cores: fixture.M, Method: core.LPILP}, fixture.TaskSet().Tasks...)
	if err != nil {
		t.Fatal(err)
	}
	// A committed edit batch must be durable the moment Do returns.
	if _, err := h.reg.Do(context.Background(), id,
		func(ctx context.Context, s *session.Session) (any, error) {
			return nil, s.SetCores(fixture.M + 1)
		}); err != nil {
		t.Fatal(err)
	}
	want := report(t, h.reg, id)
	wantEpoch, _ := h.reg.Epoch(id)
	h.st.Close() // "crash": no drain, no flush beyond per-edit appends

	h2 := openDurable(t, dir, engine.SessionRegistryConfig{})
	if n := h2.reg.RestoreFromStore(); n != 1 {
		t.Fatalf("restored %d sessions, want 1", n)
	}
	if epoch, ok := h2.reg.Epoch(id); !ok || epoch != wantEpoch {
		t.Fatalf("restored epoch %d (ok=%v), want %d", epoch, ok, wantEpoch)
	}
	got := report(t, h2.reg, id)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restored report differs:\n got %+v\nwant %+v", got, want)
	}
	// Idempotent: a second restore installs nothing (epoch check).
	if n := h2.reg.RestoreFromStore(); n != 0 {
		t.Fatalf("second restore installed %d sessions", n)
	}
}

func TestSessionRegistryDeleteTombstonesDurably(t *testing.T) {
	dir := t.TempDir()
	h := openDurable(t, dir, engine.SessionRegistryConfig{})
	id, _, err := h.reg.Create(core.Options{Cores: fixture.M, Method: core.LPILP}, fixture.TaskSet().Tasks...)
	if err != nil {
		t.Fatal(err)
	}
	if !h.reg.Delete(id) {
		t.Fatal("delete reported missing")
	}
	h.st.Close()
	h2 := openDurable(t, dir, engine.SessionRegistryConfig{})
	if n := h2.reg.RestoreFromStore(); n != 0 {
		t.Fatalf("deleted session resurrected: restored %d", n)
	}
	if _, err := h2.reg.Get(id); err == nil {
		t.Fatal("deleted session found after restart")
	}
}

func TestSessionRegistryExpiredStaysGoneAcrossRestart(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(5000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	dir := t.TempDir()
	h := openDurable(t, dir, engine.SessionRegistryConfig{TTL: time.Minute, Clock: clock})
	id, _, err := h.reg.Create(core.Options{Cores: fixture.M, Method: core.LPILP}, fixture.TaskSet().Tasks...)
	if err != nil {
		t.Fatal(err)
	}
	advance(2 * time.Minute)
	h.st.Close() // crash AFTER expiry but BEFORE any sweep tombstoned it

	// The restore path itself must apply the TTL: the snapshot's last
	// touch is 2 minutes old against a 1-minute TTL.
	h2 := openDurable(t, dir, engine.SessionRegistryConfig{TTL: time.Minute, Clock: clock})
	if n := h2.reg.RestoreFromStore(); n != 0 {
		t.Fatalf("expired session restored: %d", n)
	}
	if _, err := h2.reg.Get(id); err == nil {
		t.Fatal("expired session alive after restart")
	}
	h2.st.Close()

	// And it tombstoned the store, so a THIRD process with expiry
	// disabled still must not see it.
	h3 := openDurable(t, dir, engine.SessionRegistryConfig{TTL: -1, Clock: clock})
	if n := h3.reg.RestoreFromStore(); n != 0 {
		t.Fatalf("tombstoned session resurrected by TTL-less restart: %d", n)
	}
}

// TestSessionRegistryRaceHammer drives every registry entry point from
// many goroutines — creates, edits, deletes, TTL sweeps (via a jumping
// clock), and a concurrent restore-from-store — and relies on -race for
// the verdict.
func TestSessionRegistryRaceHammer(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(9000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	dir := t.TempDir()
	// Seed the store with a few sessions for the restore goroutine to
	// race against live traffic.
	seedH := openDurable(t, dir, engine.SessionRegistryConfig{TTL: -1, Clock: clock})
	for i := 0; i < 3; i++ {
		if _, _, err := seedH.reg.Create(core.Options{Cores: 2, Method: core.FPIdeal}, fixture.TaskSet().Tasks...); err != nil {
			t.Fatal(err)
		}
	}
	seedH.st.Close()

	h := openDurable(t, dir, engine.SessionRegistryConfig{
		MaxSessions: 64, TTL: time.Minute, Clock: clock,
	})
	ctx := context.Background()
	opts := core.Options{Cores: 2, Method: core.FPIdeal}
	tasks := fixture.TaskSet().Tasks

	const workers = 8
	var wg sync.WaitGroup
	ids := make(chan string, workers*16)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				id, _, err := h.reg.Create(opts, tasks...)
				if err != nil {
					continue // cap reached under load: fine
				}
				if _, err := h.reg.Do(ctx, id,
					func(ctx context.Context, s *session.Session) (any, error) {
						return nil, s.SetCores(2 + (w+i)%4)
					}); err != nil && err != engine.ErrSessionNotFound {
					t.Error(err)
				}
				select {
				case ids <- id:
				default:
					h.reg.Delete(id)
				}
				if i%3 == 0 {
					select {
					case old := <-ids:
						h.reg.Delete(old)
					default:
					}
				}
				h.reg.Len()
				h.reg.Has(id)
				h.reg.Epoch(id)
			}
		}(w)
	}
	// Sweep driver: jump the clock so TTL eviction races the traffic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			advance(7 * time.Second)
			h.reg.Len()
		}
	}()
	// Restore racer: installs the seeded snapshots mid-traffic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			h.reg.RestoreFromStore()
		}
	}()
	// Snapshot/flush racer (the drain path).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			h.reg.SnapshotAll()
			h.reg.FlushAll()
		}
	}()
	wg.Wait()

	// The store must still be coherent after the storm.
	h.st.Close()
	re := openDurable(t, dir, engine.SessionRegistryConfig{TTL: -1, Clock: clock})
	restored := re.reg.RestoreFromStore()
	if live := re.reg.Len(); live != restored {
		t.Fatalf("restore count %d != live count %d", restored, live)
	}
}

// TestSessionInstallStaleRejected pins last-writer-wins hand-off: a
// snapshot at an epoch the registry already holds (or older) is
// rejected and does not roll the session back.
func TestSessionInstallStaleRejected(t *testing.T) {
	h := openDurable(t, t.TempDir(), engine.SessionRegistryConfig{})
	id, sess, err := h.reg.Create(core.Options{Cores: fixture.M, Method: core.LPILP}, fixture.TaskSet().Tasks...)
	if err != nil {
		t.Fatal(err)
	}
	stale := sess.Snapshot(id, time.Now().UnixNano())
	if err := sess.SetCores(fixture.M + 1); err != nil { // advance the live epoch
		t.Fatal(err)
	}
	if err := h.reg.Install(stale, true, false); err != engine.ErrStaleSnapshot {
		t.Fatalf("stale install: %v, want ErrStaleSnapshot", err)
	}
	fresh := sess.Snapshot(id, time.Now().UnixNano())
	fresh.Epoch++ // as if a newer owner pushed a later edit
	if err := h.reg.Install(fresh, true, false); err != nil {
		t.Fatalf("fresh install: %v", err)
	}
	if epoch, _ := h.reg.Epoch(id); epoch != fresh.Epoch {
		t.Fatalf("epoch after install %d, want %d", epoch, fresh.Epoch)
	}
}

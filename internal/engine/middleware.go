package engine

// Structured request logging and HTTP-level metrics, applied by
// cmd/lpdag-serve around the whole outer mux (engine endpoints,
// campaign streaming, shard leases) so every request is accounted
// exactly once.

import (
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// DefaultSlowRequest is the latency above which a request is logged at
// Warn level when no threshold is configured.
const DefaultSlowRequest = time.Second

// LogRequests wraps h so that every request emits one structured log
// line (method, route, status, latency, bytes) through logger and, when
// reg is non-nil, feeds the lpdag_http_* series. Requests slower than
// slow (0 = DefaultSlowRequest) log at Warn and count into
// lpdag_http_slow_requests_total. A nil logger disables logging but
// keeps the metrics; a nil registry the reverse.
//
// The route label is the ServeMux pattern that served the request
// ("POST /v1/analyze"), read from r.Pattern after the inner handler
// ran — nested muxes overwrite it with the innermost match, and an
// unmatched request reports "unmatched" so scrape cardinality stays
// bounded by the route table, not by client-chosen paths.
func LogRequests(h http.Handler, logger *slog.Logger, reg *obs.Registry, slow time.Duration) http.Handler {
	if slow <= 0 {
		slow = DefaultSlowRequest
	}
	var slowTotal *obs.Counter
	// Registry lookups take the registry mutex and allocate, so the hot
	// path resolves each (route, code) counter and per-route histogram
	// once and serves every later request from these maps — keeping the
	// package's resolve-once contract and staying off the scrape lock.
	// Keys come from the route table plus the handlers' status codes, so
	// cardinality is bounded.
	var reqTotals, durations sync.Map // "route\x00code" -> *obs.Counter; route -> *obs.Histogram
	if reg != nil {
		slowTotal = reg.Counter("lpdag_http_slow_requests_total",
			"Requests slower than the configured slow-request threshold.")
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h.ServeHTTP(rec, r)
		elapsed := time.Since(t0)

		route := r.Pattern
		if route == "" {
			route = "unmatched"
		}
		if reg != nil {
			key := route + "\x00" + strconv.Itoa(rec.status)
			ctr, ok := reqTotals.Load(key)
			if !ok {
				ctr, _ = reqTotals.LoadOrStore(key, reg.Counter("lpdag_http_requests_total",
					"HTTP requests served, by route pattern and status code.",
					"route", route, "code", strconv.Itoa(rec.status)))
			}
			ctr.(*obs.Counter).Inc()
			hist, ok := durations.Load(route)
			if !ok {
				hist, _ = durations.LoadOrStore(route, reg.Histogram("lpdag_http_request_duration_seconds",
					"HTTP request latency by route pattern.",
					obs.LatencyBuckets,
					"route", route))
			}
			hist.(*obs.Histogram).Observe(elapsed.Seconds())
			if elapsed >= slow {
				slowTotal.Inc()
			}
		}
		if logger != nil {
			level := slog.LevelInfo
			if rec.status >= 500 {
				level = slog.LevelError
			} else if elapsed >= slow {
				level = slog.LevelWarn
			}
			logger.LogAttrs(r.Context(), level, "request",
				slog.String("method", r.Method),
				slog.String("route", route),
				slog.String("path", r.URL.Path),
				slog.Int("status", rec.status),
				slog.Duration("latency", elapsed),
				slog.Int64("bytes", rec.bytes),
			)
		}
	})
}

// statusRecorder captures the status code and body size. It implements
// http.Flusher directly (not via interface upgrade) because the
// streaming writers downstream — the campaign emitter's line flusher,
// the shard handler's heartbeat writer — type-assert their
// ResponseWriter to http.Flusher; hiding the real writer behind a
// non-Flusher wrapper would silently turn streamed lines into one
// buffered blob and starve the coordinator's lease watchdog.
type statusRecorder struct {
	http.ResponseWriter
	status      int
	bytes       int64
	wroteHeader bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.wroteHeader {
		r.status = code
		r.wroteHeader = true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	r.wroteHeader = true
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

func (r *statusRecorder) Flush() {
	if fl, ok := r.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

package engine_test

// Chaos end-to-end tests for the durable session plane: three real
// HTTP nodes on a consistent-hash ring, a client mid-conversation, and
// a node killed abruptly (http.Server.Close severs the listener and
// every connection — the in-process equivalent of kill -9, with no
// drain and no hand-off). The client must be able to continue the
// SAME session elsewhere, and the final report must be byte-identical
// to an uninterrupted single-node control run.
//
// CI runs these under -race (the ci.yml chaos job).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
)

// chaosNode is one serving process: engine, durable store, ring-aware
// server, real listener.
type chaosNode struct {
	url   string
	store *engine.SessionStore
	esrv  *engine.Server
	hsrv  *http.Server
}

// startChaosNode serves a ring member on ln, persisting to dir.
func startChaosNode(t *testing.T, ln net.Listener, dir, self string, peers []string) *chaosNode {
	t.Helper()
	eng := engine.New(engine.Config{Workers: 2})
	t.Cleanup(eng.Close)
	st, err := engine.OpenSessionStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	esrv := engine.NewServer(eng, engine.ServerConfig{
		SessionTTL: -1, SessionStore: st, SelfURL: self, Peers: peers,
	})
	n := &chaosNode{url: self, store: st, esrv: esrv, hsrv: &http.Server{Handler: esrv}}
	go n.hsrv.Serve(ln)
	t.Cleanup(func() { n.hsrv.Close() })
	return n
}

// listenLoopback pre-allocates a listener so node URLs are known before
// any node starts (the peer list is static configuration).
func listenLoopback(t *testing.T) (net.Listener, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	return ln, "http://" + ln.Addr().String()
}

// chaosClient is the REPL-shaped client: rotates peers on transport
// errors with a short backoff, follows 307s via X-Lpdag-Session-Owner,
// and tracks the session epoch header to disambiguate edits whose
// connection died mid-flight.
type chaosClient struct {
	t     *testing.T
	peers []string
	dead  map[string]bool
	cur   int
	hc    *http.Client
	id    string
	epoch uint64
}

func newChaosClient(t *testing.T, peers ...string) *chaosClient {
	return &chaosClient{
		t: t, peers: append([]string(nil), peers...),
		dead: make(map[string]bool),
		hc: &http.Client{
			Timeout:       10 * time.Second,
			CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
		},
	}
}

// rotate moves to the next peer that has not failed at transport level.
// If every peer looks dead, plain rotation is the best remaining bet.
func (c *chaosClient) rotate() {
	for i := 1; i <= len(c.peers); i++ {
		next := (c.cur + i) % len(c.peers)
		if !c.dead[c.peers[next]] {
			c.cur = next
			return
		}
	}
	c.cur = (c.cur + 1) % len(c.peers)
}

func (c *chaosClient) addPeer(url string) {
	for _, p := range c.peers {
		if p == url {
			return
		}
	}
	c.peers = append(c.peers, url)
}

// request keeps trying until a non-redirect HTTP response arrives;
// transport failures rotate the peer list. It returns the status and
// body, or an error only when every attempt failed at transport level.
func (c *chaosClient) request(method, path, body string) (int, []byte, error) {
	var lastErr error
	for attempt := 0; attempt < 24; attempt++ {
		base := c.peers[c.cur]
		req, err := http.NewRequest(method, base+path, strings.NewReader(body))
		if err != nil {
			c.t.Fatal(err)
		}
		if body != "" {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			lastErr = err
			c.dead[base] = true
			c.rotate()
			time.Sleep(time.Duration(1+attempt%5) * 5 * time.Millisecond)
			continue
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			c.dead[base] = true
			c.rotate()
			continue
		}
		if resp.StatusCode == http.StatusTemporaryRedirect {
			owner := resp.Header.Get("X-Lpdag-Session-Owner")
			if owner == "" {
				c.t.Fatalf("307 without owner header")
			}
			lastErr = fmt.Errorf("redirected to %s", owner)
			// A redirect to a peer we already failed to reach means the
			// redirecting node's ring still names a dead member: fall
			// through to whoever actually holds the session.
			if c.dead[owner] {
				c.rotate()
				continue
			}
			c.addPeer(owner)
			for i, p := range c.peers {
				if p == owner {
					c.cur = i
				}
			}
			continue
		}
		if e := resp.Header.Get("X-Lpdag-Session-Epoch"); e != "" {
			if v, err := strconv.ParseUint(e, 10, 64); err == nil {
				c.epoch = v
			}
		}
		return resp.StatusCode, data, nil
	}
	return 0, nil, lastErr
}

// mustRequest is request that fails the test on exhaustion or non-2xx.
func (c *chaosClient) mustRequest(method, path, body string) []byte {
	c.t.Helper()
	status, data, err := c.request(method, path, body)
	if err != nil {
		c.t.Fatalf("%s %s: %v", method, path, err)
	}
	if status < 200 || status >= 300 {
		c.t.Fatalf("%s %s: status %d: %s", method, path, status, data)
	}
	return data
}

// create starts the session on the current peer.
func (c *chaosClient) create(tsJSON string) {
	c.t.Helper()
	data := c.mustRequest(http.MethodPost, "/v1/sessions",
		fmt.Sprintf(`{"cores": 2, "method": "lp-ilp", "taskset": %s}`, tsJSON))
	var resp struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(data, &resp); err != nil || resp.ID == "" {
		c.t.Fatalf("create: %v: %s", err, data)
	}
	c.id = resp.ID
}

// edit applies one edit batch exactly once, resolving the ambiguous
// "connection died mid-edit" case via the epoch header: if the session
// already advanced to the expected epoch on the failover node, the
// batch committed before the crash and must NOT be resent.
func (c *chaosClient) edit(editJSON string, onTransportError func()) {
	c.t.Helper()
	want := c.epoch + 1
	status, data, err := c.request(http.MethodPost, "/v1/sessions/"+c.id+"/edits",
		fmt.Sprintf(`{"edits": [%s]}`, editJSON))
	if err != nil {
		if onTransportError != nil {
			onTransportError()
		}
		// Did the edit land before the node died? Ask whoever now
		// answers for the session.
		c.mustRequest(http.MethodGet, "/v1/sessions/"+c.id+"/report", "")
		if c.epoch == want {
			return // committed and durable; the crash only ate the response
		}
		if c.epoch != want-1 {
			c.t.Fatalf("epoch %d after failover, want %d or %d", c.epoch, want-1, want)
		}
		status, data, err = c.request(http.MethodPost, "/v1/sessions/"+c.id+"/edits",
			fmt.Sprintf(`{"edits": [%s]}`, editJSON))
		if err != nil {
			c.t.Fatalf("edit resend: %v", err)
		}
	}
	if status != http.StatusOK {
		c.t.Fatalf("edit: status %d: %s", status, data)
	}
	if c.epoch != want {
		c.t.Fatalf("epoch %d after edit, want %d", c.epoch, want)
	}
}

// chaosEdits is the conversation both the control and the failover runs
// apply, in order.
var chaosEdits = []string{
	`{"op": "set_cores", "cores": 3}`,
	`{"op": "set_priority", "from": 0, "to": 1}`,
	`{"op": "set_cores", "cores": 2}`,
	`{"op": "set_method", "method": "lp-max"}`,
	`{"op": "set_priority", "from": 1, "to": 0}`,
}

// TestChaosKillMidConversation is the acceptance scenario: a session
// created on node A, edited over a three-node ring, node A killed
// abruptly mid-edit-stream (after the edit is durable but possibly
// before its response escapes), a replacement node opening A's session
// dir — and the client's remaining edits landing such that the final
// report is byte-identical to an uninterrupted single-node run.
func TestChaosKillMidConversation(t *testing.T) {
	tsJSON := paperExampleJSON(t)

	// Control: one node, no faults, same conversation.
	lnD, urlD := listenLoopback(t)
	startChaosNode(t, lnD, t.TempDir(), urlD, nil)
	control := newChaosClient(t, urlD)
	control.create(tsJSON)
	for _, e := range chaosEdits {
		control.edit(e, nil)
	}
	controlFinal := control.mustRequest(http.MethodGet, "/v1/sessions/"+control.id+"/report", "")

	// The ring under test.
	lnA, urlA := listenLoopback(t)
	lnB, urlB := listenLoopback(t)
	lnC, urlC := listenLoopback(t)
	peers := []string{urlA, urlB, urlC}
	dirA := t.TempDir()
	nodeA := startChaosNode(t, lnA, dirA, urlA, peers)
	startChaosNode(t, lnB, t.TempDir(), urlB, peers)
	startChaosNode(t, lnC, t.TempDir(), urlC, peers)

	client := newChaosClient(t, urlA, urlB, urlC)
	client.create(tsJSON) // created via A, so A owns it
	epochAfterCreate := client.epoch
	if epochAfterCreate == 0 {
		t.Fatal("create carried no epoch header")
	}

	// Kill A the instant its 2nd post-create append commits: the edit
	// is durable, but the listener and every connection die before the
	// response can escape — the client sees a dead TCP connection and
	// cannot know whether the edit landed.
	var fault engine.FaultConfig
	nodeA.store.SetFault(&fault)
	fault.KillAfterAppends(2, func() { nodeA.hsrv.Close() })

	// Replacement for A: opens A's session dir on a NEW address
	// (shared-storage takeover). Started lazily, the moment the client
	// first notices A is gone — like an operator's supervisor would.
	var startReplacement sync.Once
	var replacementStarted bool
	spawnA2 := func() {
		startReplacement.Do(func() {
			replacementStarted = true
			lnA2, urlA2 := listenLoopback(t)
			startChaosNode(t, lnA2, dirA, urlA2, []string{urlA2, urlB, urlC})
			client.addPeer(urlA2)
		})
	}

	for _, e := range chaosEdits {
		client.edit(e, spawnA2)
	}
	if !replacementStarted {
		t.Fatal("node A never died: the kill fault did not fire")
	}
	if want := epochAfterCreate + uint64(len(chaosEdits)); client.epoch != want {
		t.Fatalf("final epoch %d, want %d", client.epoch, want)
	}

	gotFinal := client.mustRequest(http.MethodGet, "/v1/sessions/"+client.id+"/report", "")
	if !bytes.Equal(gotFinal, controlFinal) {
		t.Fatalf("failover run diverged from control:\n got %s\nwant %s", gotFinal, controlFinal)
	}
}

// TestChaosDrainHandoff pins the graceful path: a draining node pushes
// its live sessions to the next ring owner before its listener closes,
// and the client's next request — bounced around the ring — finds the
// session without any replacement node.
func TestChaosDrainHandoff(t *testing.T) {
	lnA, urlA := listenLoopback(t)
	lnB, urlB := listenLoopback(t)
	lnC, urlC := listenLoopback(t)
	peers := []string{urlA, urlB, urlC}
	nodeA := startChaosNode(t, lnA, t.TempDir(), urlA, peers)
	startChaosNode(t, lnB, t.TempDir(), urlB, peers)
	startChaosNode(t, lnC, t.TempDir(), urlC, peers)

	client := newChaosClient(t, urlA, urlB, urlC)
	client.create(paperExampleJSON(t))
	client.edit(chaosEdits[0], nil)
	before := client.mustRequest(http.MethodGet, "/v1/sessions/"+client.id+"/report", "")

	// SIGTERM-shaped shutdown of A: drain (flush + hand-off), THEN close.
	nodeA.esrv.StartDraining()
	if err := nodeA.esrv.DrainSessions(t.Context(), nil); err != nil {
		t.Fatalf("drain: %v", err)
	}
	nodeA.hsrv.Close()

	after := client.mustRequest(http.MethodGet, "/v1/sessions/"+client.id+"/report", "")
	if !bytes.Equal(before, after) {
		t.Fatalf("report changed across hand-off:\nbefore %s\nafter  %s", before, after)
	}
	client.edit(chaosEdits[1], nil) // the conversation continues on the new owner
}

// TestChaosDropHandoffFaultSurfaces pins the fault seam: with hand-off
// pushes dropped, DrainSessions reports the failure (the store still
// holds the sessions for a storage-level takeover).
func TestChaosDropHandoffFaultSurfaces(t *testing.T) {
	lnA, urlA := listenLoopback(t)
	lnB, urlB := listenLoopback(t)
	peers := []string{urlA, urlB}
	nodeA := startChaosNode(t, lnA, t.TempDir(), urlA, peers)
	startChaosNode(t, lnB, t.TempDir(), urlB, peers)

	client := newChaosClient(t, urlA)
	client.create(paperExampleJSON(t))

	var fault engine.FaultConfig
	nodeA.store.SetFault(&fault)
	fault.SetDropHandoff(true)
	if err := nodeA.esrv.DrainSessions(t.Context(), nil); err == nil {
		t.Fatal("dropped hand-off not reported")
	}
	if nodeA.store.Len() == 0 {
		t.Fatal("store gave up the sessions although the hand-off was dropped")
	}
}

// TestChaosExpiredStays404AfterRestart pins the durable TTL story over
// HTTP: an expired session answers 404 before AND after a restart onto
// the same session dir — restart must never resurrect it.
func TestChaosExpiredStays404AfterRestart(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(77000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }

	dir := t.TempDir()
	eng := engine.New(engine.Config{Workers: 2})
	t.Cleanup(eng.Close)
	st, err := engine.OpenSessionStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	h := engine.NewServer(eng, engine.ServerConfig{
		SessionTTL: time.Minute, SessionClock: clock, SessionStore: st,
	})
	id, _ := createSession(t, h)
	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()
	if w := get(t, h, "/v1/sessions/"+id+"/report"); w.Code != http.StatusNotFound {
		t.Fatalf("expired session pre-restart: status %d", w.Code)
	}
	st.Close()

	st2, err := engine.OpenSessionStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st2.Close() })
	h2 := engine.NewServer(eng, engine.ServerConfig{
		SessionTTL: time.Minute, SessionClock: clock, SessionStore: st2,
	})
	if w := get(t, h2, "/v1/sessions/"+id+"/report"); w.Code != http.StatusNotFound {
		t.Fatalf("expired session resurrected by restart: status %d", w.Code)
	}
}

package engine

// Internal tests of the negotiated binary response codec and the
// response-write failure counter (both need unexported plumbing).

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
	"repro/internal/wire"
)

func binTestServer(t *testing.T) *Server {
	t.Helper()
	e := New(Config{})
	t.Cleanup(e.Close)
	return NewServer(e, ServerConfig{})
}

// binTestTaskSet is a small two-task set in the interchange format
// (internal test file, so the facade's PaperExample is off limits —
// importing repro here would be a cycle).
const binTestTaskSet = `{"tasks":[
	{"name":"a","wcet":[10],"edges":[],"deadline":100,"period":100},
	{"name":"b","wcet":[20,5],"edges":[[0,1]],"deadline":150,"period":200}
]}`

func decodeBinFrames(t *testing.T, body io.Reader) [][]byte {
	t.Helper()
	r := wire.NewReader(body, 1<<20)
	var frames [][]byte
	for {
		typ, payload, err := r.ReadFrame()
		if err == io.EOF {
			return frames
		}
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if typ != wire.FrameResult {
			t.Fatalf("unexpected frame type %c", typ)
		}
		frames = append(frames, append([]byte(nil), payload...))
	}
}

// TestAnalyzeBinaryMatchesJSON posts the same batch with and without
// the binary Accept header and requires the decoded binary results to
// equal the JSON ones field for field.
func TestAnalyzeBinaryMatchesJSON(t *testing.T) {
	s := binTestServer(t)
	body := fmt.Sprintf(`{"cores": 4, "requests": [
		{"taskset": %s, "method": "lp-max"},
		{"taskset": %s, "method": "no-such-method"},
		{}
	]}`, binTestTaskSet, binTestTaskSet)

	jreq := httptest.NewRequest(http.MethodPost, "/v1/analyze", strings.NewReader(body))
	jw := httptest.NewRecorder()
	s.ServeHTTP(jw, jreq)
	if jw.Code != http.StatusOK {
		t.Fatalf("JSON status %d: %s", jw.Code, jw.Body)
	}
	var jresp analyzeResponse
	if err := json.Unmarshal(jw.Body.Bytes(), &jresp); err != nil {
		t.Fatal(err)
	}

	breq := httptest.NewRequest(http.MethodPost, "/v1/analyze", strings.NewReader(body))
	breq.Header.Set("Accept", wire.ContentType)
	bw := httptest.NewRecorder()
	s.ServeHTTP(bw, breq)
	if bw.Code != http.StatusOK {
		t.Fatalf("binary status %d: %s", bw.Code, bw.Body)
	}
	if ct := bw.Header().Get("Content-Type"); ct != wire.ContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, wire.ContentType)
	}
	frames := decodeBinFrames(t, bw.Body)
	if len(frames) != len(jresp.Results) {
		t.Fatalf("%d frames, want %d", len(frames), len(jresp.Results))
	}
	for i, payload := range frames {
		d := wire.NewDec(payload)
		got, err := decodeAnalyzeResultBin(d)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if d.Rest() != 0 {
			t.Fatalf("frame %d: %d trailing bytes", i, d.Rest())
		}
		assertResultsEqual(t, i, got, jresp.Results[i])
	}
	if frames[1] != nil {
		var r analyzeResult
		d := wire.NewDec(frames[1])
		r, _ = decodeAnalyzeResultBin(d)
		if !strings.Contains(r.Error, "unknown method") {
			t.Errorf("item 1 error = %q, want unknown method", r.Error)
		}
	}
}

func assertResultsEqual(t *testing.T, i int, got, want analyzeResult) {
	t.Helper()
	if got.Error != want.Error || got.Schedulable != want.Schedulable ||
		got.Method != want.Method || got.Cores != want.Cores ||
		got.Utilization != want.Utilization || len(got.Tasks) != len(want.Tasks) {
		t.Fatalf("result %d drifted:\n got %+v\nwant %+v", i, got, want)
	}
	for j := range want.Tasks {
		if got.Tasks[j] != want.Tasks[j] {
			t.Fatalf("result %d task %d drifted:\n got %+v\nwant %+v", i, j, got.Tasks[j], want.Tasks[j])
		}
	}
}

// TestSessionBinaryEndpoints drives create/report/edits/admit with the
// binary Accept header and checks each payload against a JSON control
// request on a second identical session.
func TestSessionBinaryEndpoints(t *testing.T) {
	s := binTestServer(t)
	createBody := fmt.Sprintf(`{"taskset": %s, "cores": 4, "method": "lp-max"}`, binTestTaskSet)

	do := func(method, path, body, accept string) *httptest.ResponseRecorder {
		var rd io.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		req := httptest.NewRequest(method, path, rd)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		return w
	}

	// Binary create: payload is session id + result.
	w := do(http.MethodPost, "/v1/sessions", createBody, wire.ContentType)
	if w.Code != http.StatusCreated {
		t.Fatalf("binary create status %d: %s", w.Code, w.Body)
	}
	frames := decodeBinFrames(t, w.Body)
	if len(frames) != 1 {
		t.Fatalf("create: %d frames, want 1", len(frames))
	}
	d := wire.NewDec(frames[0])
	id := d.String(1 << 10)
	created, err := decodeAnalyzeResultBin(d)
	if err != nil || d.Rest() != 0 {
		t.Fatalf("create payload: err=%v rest=%d", err, d.Rest())
	}
	if id == "" {
		t.Fatal("create: empty session id")
	}

	// JSON control session with the same task set.
	var jcreate struct {
		ID     string        `json:"id"`
		Report analyzeResult `json:"report"`
	}
	w = do(http.MethodPost, "/v1/sessions", createBody, "")
	if w.Code != http.StatusCreated {
		t.Fatalf("JSON create status %d: %s", w.Code, w.Body)
	}
	if err := json.Unmarshal(w.Body.Bytes(), &jcreate); err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, 0, created, jcreate.Report)

	// Binary report matches the create payload's report.
	w = do(http.MethodGet, "/v1/sessions/"+id+"/report", "", wire.ContentType)
	if w.Code != http.StatusOK {
		t.Fatalf("binary report status %d: %s", w.Code, w.Body)
	}
	frames = decodeBinFrames(t, w.Body)
	d = wire.NewDec(frames[0])
	rep, err := decodeAnalyzeResultBin(d)
	if err != nil || d.Rest() != 0 {
		t.Fatalf("report payload: err=%v rest=%d", err, d.Rest())
	}
	assertResultsEqual(t, 0, rep, created)

	// Binary admit: payload is admitted byte + result.
	admitBody := `{"task": {"name":"c","wcet":[1],"edges":[],"deadline":1000,"period":1000}}`
	w = do(http.MethodPost, "/v1/sessions/"+id+"/admit", admitBody, wire.ContentType)
	if w.Code != http.StatusOK {
		t.Fatalf("binary admit status %d: %s", w.Code, w.Body)
	}
	frames = decodeBinFrames(t, w.Body)
	d = wire.NewDec(frames[0])
	admitted := d.Byte() != 0
	arep, err := decodeAnalyzeResultBin(d)
	if err != nil || d.Rest() != 0 {
		t.Fatalf("admit payload: err=%v rest=%d", err, d.Rest())
	}
	if admitted != arep.Schedulable {
		t.Errorf("admitted=%v but report schedulable=%v", admitted, arep.Schedulable)
	}

	// Binary edits: payload is the post-edit report.
	editsBody := `{"edits": [{"op": "set_cores", "cores": 8}]}`
	w = do(http.MethodPost, "/v1/sessions/"+id+"/edits", editsBody, wire.ContentType)
	if w.Code != http.StatusOK {
		t.Fatalf("binary edits status %d: %s", w.Code, w.Body)
	}
	frames = decodeBinFrames(t, w.Body)
	d = wire.NewDec(frames[0])
	if _, err := decodeAnalyzeResultBin(d); err != nil || d.Rest() != 0 {
		t.Fatalf("edits payload: err=%v rest=%d", err, d.Rest())
	}

	// Errors stay JSON even under the binary Accept header.
	w = do(http.MethodGet, "/v1/sessions/no-such-id/report", "", wire.ContentType)
	if w.Code != http.StatusNotFound {
		t.Fatalf("missing session status %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("error Content-Type = %q, want application/json", ct)
	}
}

// TestAnalyzeResultBinRoundTrip exercises the codec directly on edge
// values, including ones JSON cannot distinguish (-0) or omits.
func TestAnalyzeResultBinRoundTrip(t *testing.T) {
	cases := []analyzeResult{
		{},
		{Error: "boom   <&> \"quoted\""},
		{
			Schedulable: true,
			Method:      "lp-ilp",
			Cores:       -3,
			Utilization: math.Copysign(0, -1),
			Tasks: []taskReportJSON{
				{Name: "τ1", Schedulable: true, Analyzed: true, ResponseTime: math.MaxInt64,
					Deadline: math.MinInt64, DeltaM: -1, DeltaM1: 1, Preemptions: 7, Iterations: 42},
				{},
			},
		},
	}
	for i, want := range cases {
		buf := appendAnalyzeResultBin(nil, want)
		d := wire.NewDec(buf)
		got, err := decodeAnalyzeResultBin(d)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if d.Rest() != 0 {
			t.Fatalf("case %d: %d trailing bytes", i, d.Rest())
		}
		if math.Float64bits(got.Utilization) != math.Float64bits(want.Utilization) {
			t.Fatalf("case %d: utilization bits drifted", i)
		}
		got.Utilization, want.Utilization = 0, 0
		assertResultsEqual(t, i, got, want)
	}

	// Truncations surface as errors, never panics or silent zeros.
	full := appendAnalyzeResultBin(nil, cases[2])
	for cut := 0; cut < len(full); cut++ {
		d := wire.NewDec(full[:cut])
		if _, err := decodeAnalyzeResultBin(d); err == nil && d.Rest() == 0 {
			t.Fatalf("cut=%d decoded cleanly", cut)
		}
	}
}

// failingWriter errors on the first body write, as a closed client
// connection would.
type failingWriter struct {
	http.ResponseWriter
}

func (f failingWriter) Write([]byte) (int, error) { return 0, errors.New("client went away") }

// TestWriteErrorsCounted pins the lpdag_http_write_errors_total
// counter: both encode failures and mid-body write failures count.
func TestWriteErrorsCounted(t *testing.T) {
	e := New(Config{Obs: obs.NewRegistry()})
	t.Cleanup(e.Close)
	s := NewServer(e, ServerConfig{})
	if n := atomic.LoadUint64(&s.writeErrs); n != 0 {
		t.Fatalf("fresh server writeErrs = %d", n)
	}

	// Encode failure: channels are not JSON-serialisable.
	w := httptest.NewRecorder()
	s.writeJSON(w, http.StatusOK, make(chan int))
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("encode failure status %d, want 500", w.Code)
	}
	if n := atomic.LoadUint64(&s.writeErrs); n != 1 {
		t.Fatalf("writeErrs after encode failure = %d, want 1", n)
	}

	// Mid-body write failure.
	s.writeJSON(failingWriter{httptest.NewRecorder()}, http.StatusOK, map[string]string{"ok": "yes"})
	if n := atomic.LoadUint64(&s.writeErrs); n != 2 {
		t.Fatalf("writeErrs after write failure = %d, want 2", n)
	}

	// The counter is exported on /metrics.
	mw := httptest.NewRecorder()
	s.ServeHTTP(mw, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if mw.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", mw.Code)
	}
	if !strings.Contains(mw.Body.String(), "lpdag_http_write_errors_total 2") {
		t.Fatalf("/metrics missing lpdag_http_write_errors_total 2:\n%s", mw.Body)
	}
}

package engine

// Binary response codec for the engine endpoints (negotiated with
// "Accept: application/x-lpdag-bin"; see internal/wire for the frame
// envelope).
//
// Only 2xx payloads have a binary form: error responses keep the JSON
// {"error": ...} body with its status code, so failure handling is
// codec-independent. The binary bodies are wire.FrameResult frames whose
// payloads carry the same data as the JSON responses:
//
//	POST /v1/analyze                  one frame per batch element (analyzeResult)
//	POST /v1/sessions                 one frame: session id + analyzeResult (201)
//	GET  /v1/sessions/{id}/report     one frame: analyzeResult
//	POST /v1/sessions/{id}/edits      one frame: analyzeResult
//	POST /v1/sessions/{id}/admit      one frame: admitted byte + analyzeResult
//
// All frames of one response are encoded through a single pooled buffer
// pair, so a whole batch allocates O(1) on the encode path.

import (
	"encoding/binary"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/wire"
)

// binaryAccepted reports whether the request negotiated the binary
// response framing.
func binaryAccepted(r *http.Request) bool {
	return wire.Accepts(r.Header.Get("Accept"))
}

// binBuf is the reusable scratch of one binary response: the per-record
// payload buffer and the accumulated frame bytes.
type binBuf struct {
	payload, frames []byte
}

var binBufPool = sync.Pool{New: func() any { return new(binBuf) }}

// writeFrame sends a single-frame binary response whose payload is
// produced by build appending into a pooled buffer.
func (s *Server) writeFrame(w http.ResponseWriter, status int, build func(dst []byte) []byte) {
	st := binBufPool.Get().(*binBuf)
	defer binBufPool.Put(st)
	st.payload = build(st.payload[:0])
	st.frames = wire.AppendFrame(st.frames[:0], wire.FrameResult, st.payload)
	s.writeBody(w, status, wire.ContentType, st.frames)
}

func appendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// appendAnalyzeResultBin appends the binary form of one analyzeResult:
// string error, bool schedulable, string method, zigzag cores, float64
// utilization, then a uvarint task count and per task string name, bool
// schedulable, bool analyzed, and zigzag response_time, deadline,
// delta_m, delta_m1, preemptions, iterations.
func appendAnalyzeResultBin(dst []byte, r analyzeResult) []byte {
	dst = wire.AppendString(dst, r.Error)
	dst = appendBool(dst, r.Schedulable)
	dst = wire.AppendString(dst, r.Method)
	dst = wire.AppendZigzag(dst, int64(r.Cores))
	dst = wire.AppendFloat64(dst, r.Utilization)
	dst = binary.AppendUvarint(dst, uint64(len(r.Tasks)))
	for _, t := range r.Tasks {
		dst = wire.AppendString(dst, t.Name)
		dst = appendBool(dst, t.Schedulable)
		dst = appendBool(dst, t.Analyzed)
		dst = wire.AppendZigzag(dst, t.ResponseTime)
		dst = wire.AppendZigzag(dst, t.Deadline)
		dst = wire.AppendZigzag(dst, t.DeltaM)
		dst = wire.AppendZigzag(dst, t.DeltaM1)
		dst = wire.AppendZigzag(dst, t.Preemptions)
		dst = wire.AppendZigzag(dst, int64(t.Iterations))
	}
	return dst
}

// Decode limits for the binary result form (client side: tests and any
// Go consumer of the binary API).
const (
	maxBinStringBytes  = 1 << 20
	maxBinResultTasks  = 1 << 20
	errBinTaskOverflow = "binary result: task count %d exceeds limit %d"
)

// decodeAnalyzeResultBin consumes one analyzeResult from d, the inverse
// of appendAnalyzeResultBin.
func decodeAnalyzeResultBin(d *wire.Dec) (analyzeResult, error) {
	var r analyzeResult
	r.Error = d.String(maxBinStringBytes)
	r.Schedulable = d.Byte() != 0
	r.Method = d.String(maxBinStringBytes)
	r.Cores = int(d.Zigzag())
	r.Utilization = d.Float64()
	n := d.Uvarint()
	if d.Err() == nil && n > maxBinResultTasks {
		return r, fmt.Errorf(errBinTaskOverflow, n, maxBinResultTasks)
	}
	if d.Err() == nil && n > 0 {
		r.Tasks = make([]taskReportJSON, n)
		for i := range r.Tasks {
			t := &r.Tasks[i]
			t.Name = d.String(maxBinStringBytes)
			t.Schedulable = d.Byte() != 0
			t.Analyzed = d.Byte() != 0
			t.ResponseTime = d.Zigzag()
			t.Deadline = d.Zigzag()
			t.DeltaM = d.Zigzag()
			t.DeltaM1 = d.Zigzag()
			t.Preemptions = d.Zigzag()
			t.Iterations = int(d.Zigzag())
			if d.Err() != nil {
				break
			}
		}
	}
	return r, d.Err()
}

// maxBinTransforms bounds the decoded transform count of a repair
// result; real sequences are MaxSteps (single digits) long.
const maxBinTransforms = 1 << 16

// appendRepairResultBin appends the binary form of one repairResponse:
// bools fixed, stopped, applied; zigzag candidates, failing_before,
// failing_after, slack_before, slack_after; a uvarint transform count
// with per transform string op, string task, zigzag max_npr, zigzag
// to; then the report (appendAnalyzeResultBin).
func appendRepairResultBin(dst []byte, r repairResponse) []byte {
	dst = appendBool(dst, r.Fixed)
	dst = appendBool(dst, r.Stopped)
	dst = appendBool(dst, r.Applied)
	dst = wire.AppendZigzag(dst, int64(r.Candidates))
	dst = wire.AppendZigzag(dst, int64(r.FailingBefore))
	dst = wire.AppendZigzag(dst, int64(r.FailingAfter))
	dst = wire.AppendZigzag(dst, r.SlackBefore)
	dst = wire.AppendZigzag(dst, r.SlackAfter)
	dst = binary.AppendUvarint(dst, uint64(len(r.Transforms)))
	for _, t := range r.Transforms {
		dst = wire.AppendString(dst, t.Op)
		dst = wire.AppendString(dst, t.Task)
		dst = wire.AppendZigzag(dst, t.MaxNPR)
		dst = wire.AppendZigzag(dst, int64(t.To))
	}
	return appendAnalyzeResultBin(dst, r.Report)
}

// decodeRepairResultBin consumes one repairResponse from d, the
// inverse of appendRepairResultBin.
func decodeRepairResultBin(d *wire.Dec) (repairResponse, error) {
	var r repairResponse
	r.Fixed = d.Byte() != 0
	r.Stopped = d.Byte() != 0
	r.Applied = d.Byte() != 0
	r.Candidates = int(d.Zigzag())
	r.FailingBefore = int(d.Zigzag())
	r.FailingAfter = int(d.Zigzag())
	r.SlackBefore = d.Zigzag()
	r.SlackAfter = d.Zigzag()
	n := d.Uvarint()
	if d.Err() == nil && n > maxBinTransforms {
		return r, fmt.Errorf("binary result: transform count %d exceeds limit %d", n, maxBinTransforms)
	}
	if d.Err() == nil && n > 0 {
		r.Transforms = make([]transformJSON, n)
		for i := range r.Transforms {
			t := &r.Transforms[i]
			t.Op = d.String(maxBinStringBytes)
			t.Task = d.String(maxBinStringBytes)
			t.MaxNPR = d.Zigzag()
			t.To = int(d.Zigzag())
			if d.Err() != nil {
				break
			}
		}
	}
	rep, err := decodeAnalyzeResultBin(d)
	if err != nil {
		return r, err
	}
	r.Report = rep
	return r, d.Err()
}

package engine_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	lpdag "repro"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fixture"
	"repro/internal/session"
)

// sessionReport is the wire shape of a session report response.
type sessionReport struct {
	Schedulable bool   `json:"schedulable"`
	Method      string `json:"method"`
	Cores       int    `json:"cores"`
	Tasks       []struct {
		Name         string `json:"name"`
		Schedulable  bool   `json:"schedulable"`
		ResponseTime int64  `json:"response_time"`
	} `json:"tasks"`
}

func del(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodDelete, path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// createSession posts the Figure 1 example as a new session and returns
// its id and initial report.
func createSession(t *testing.T, h http.Handler) (string, sessionReport) {
	t.Helper()
	w := post(t, h, "/v1/sessions", fmt.Sprintf(
		`{"cores": %d, "method": "lp-ilp", "taskset": %s}`, fixture.M, paperExampleJSON(t)))
	if w.Code != http.StatusCreated {
		t.Fatalf("create session: status %d: %s", w.Code, w.Body)
	}
	var resp struct {
		ID     string        `json:"id"`
		Report sessionReport `json:"report"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID == "" {
		t.Fatal("create session: empty id")
	}
	return resp.ID, resp.Report
}

// TestSessionLifecycleHTTP drives a session end to end over the HTTP
// surface: create, report, edits, admit (no commit), sensitivity,
// delete, and pins the reports against the direct library results.
func TestSessionLifecycleHTTP(t *testing.T) {
	h := newTestServer(t, engine.Config{}, engine.ServerConfig{})
	id, created := createSession(t, h)

	want, err := lpdag.Analyze(lpdag.PaperExample(), fixture.M, lpdag.LPILP)
	if err != nil {
		t.Fatal(err)
	}
	if created.Schedulable != want.Schedulable || len(created.Tasks) != len(want.Tasks) {
		t.Fatalf("created report mismatch: %+v vs %+v", created, want)
	}
	for i, tr := range created.Tasks {
		if tr.ResponseTime != want.Tasks[i].ResponseTime {
			t.Errorf("task %d: R = %d, want %d", i, tr.ResponseTime, want.Tasks[i].ResponseTime)
		}
	}

	// GET report returns the same thing.
	w := get(t, h, "/v1/sessions/"+id+"/report")
	if w.Code != http.StatusOK {
		t.Fatalf("report: status %d: %s", w.Code, w.Body)
	}

	// Admission probe: a copy of τ1 at lowest priority. Must NOT commit.
	tau1, err := json.Marshal(lpdag.PaperExample().Tasks[1])
	if err != nil {
		t.Fatal(err)
	}
	probe := strings.Replace(string(tau1), `"name":"tau1"`, `"name":"probe"`, 1)
	if !strings.Contains(probe, "probe") {
		t.Fatalf("probe task rename failed: %s", probe)
	}
	w = post(t, h, "/v1/sessions/"+id+"/admit", `{"task": `+probe+`}`)
	if w.Code != http.StatusOK {
		t.Fatalf("admit: status %d: %s", w.Code, w.Body)
	}
	var admitResp struct {
		Admitted bool          `json:"admitted"`
		Report   sessionReport `json:"report"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &admitResp); err != nil {
		t.Fatal(err)
	}
	if len(admitResp.Report.Tasks) != len(want.Tasks)+1 {
		t.Fatalf("admit trial report has %d tasks, want %d", len(admitResp.Report.Tasks), len(want.Tasks)+1)
	}

	// The probe must not have committed.
	w = get(t, h, "/v1/sessions/"+id+"/report")
	var repResp struct {
		Report sessionReport `json:"report"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &repResp); err != nil {
		t.Fatal(err)
	}
	if len(repResp.Report.Tasks) != len(want.Tasks) {
		t.Fatalf("admit committed: %d tasks, want %d", len(repResp.Report.Tasks), len(want.Tasks))
	}

	// Edits: commit the probe at priority 1, then move it to 2, on 8
	// cores. The result must equal a from-scratch analysis.
	body := fmt.Sprintf(`{"edits": [
		{"op": "add", "task": %s, "at": 1},
		{"op": "set_priority", "name": "probe", "to": 2},
		{"op": "set_cores", "cores": 8}
	]}`, probe)
	w = post(t, h, "/v1/sessions/"+id+"/edits", body)
	if w.Code != http.StatusOK {
		t.Fatalf("edits: status %d: %s", w.Code, w.Body)
	}
	if err := json.Unmarshal(w.Body.Bytes(), &repResp); err != nil {
		t.Fatal(err)
	}
	if repResp.Report.Cores != 8 || repResp.Report.Tasks[2].Name != "probe" {
		t.Fatalf("edited report wrong: %+v", repResp.Report)
	}

	// Failing batch rolls back: the bad op reports 400 and the set is
	// unchanged.
	w = post(t, h, "/v1/sessions/"+id+"/edits",
		`{"edits": [{"op": "remove", "index": 0}, {"op": "remove", "index": 99}]}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("bad edit batch: status %d: %s", w.Code, w.Body)
	}
	w = get(t, h, "/v1/sessions/"+id+"/report")
	if err := json.Unmarshal(w.Body.Bytes(), &repResp); err != nil {
		t.Fatal(err)
	}
	if len(repResp.Report.Tasks) != len(want.Tasks)+1 {
		t.Fatalf("failed batch left edits behind: %d tasks", len(repResp.Report.Tasks))
	}

	// Sensitivity by name.
	w = post(t, h, "/v1/sessions/"+id+"/sensitivity", `{"name": "probe", "max_permille": 20000}`)
	if w.Code != http.StatusOK {
		t.Fatalf("sensitivity: status %d: %s", w.Code, w.Body)
	}
	var sens struct {
		Permille int `json:"permille"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &sens); err != nil {
		t.Fatal(err)
	}
	if sens.Permille < 1 {
		t.Fatalf("sensitivity = %d, want ≥ 1", sens.Permille)
	}

	// Delete, then 404 on every subsequent touch.
	if w := del(t, h, "/v1/sessions/"+id); w.Code != http.StatusNoContent {
		t.Fatalf("delete: status %d: %s", w.Code, w.Body)
	}
	if w := del(t, h, "/v1/sessions/"+id); w.Code != http.StatusNotFound {
		t.Fatalf("double delete: status %d", w.Code)
	}
	if w := get(t, h, "/v1/sessions/"+id+"/report"); w.Code != http.StatusNotFound {
		t.Fatalf("report after delete: status %d", w.Code)
	}
}

// TestSessionTTLEviction pins the TTL story end to end over HTTP with an
// injected clock: touching a session keeps it alive, passing the TTL
// expires it, and an expired id is indistinguishable from an unknown one
// (404).
func TestSessionTTLEviction(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1000, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
	h := newTestServer(t, engine.Config{}, engine.ServerConfig{
		SessionTTL: time.Minute, SessionClock: clock,
	})
	id, _ := createSession(t, h)

	// Touches within the TTL keep refreshing it.
	for i := 0; i < 3; i++ {
		advance(50 * time.Second)
		if w := get(t, h, "/v1/sessions/"+id+"/report"); w.Code != http.StatusOK {
			t.Fatalf("touch %d: status %d: %s", i, w.Code, w.Body)
		}
	}

	// Let it expire: every endpoint must 404.
	advance(61 * time.Second)
	if w := get(t, h, "/v1/sessions/"+id+"/report"); w.Code != http.StatusNotFound {
		t.Fatalf("report after expiry: status %d: %s", w.Code, w.Body)
	}
	if w := post(t, h, "/v1/sessions/"+id+"/edits",
		`{"edits": [{"op": "set_cores", "cores": 2}]}`); w.Code != http.StatusNotFound {
		t.Fatalf("edits after expiry: status %d", w.Code)
	}
	if w := del(t, h, "/v1/sessions/"+id); w.Code != http.StatusNotFound {
		t.Fatalf("delete after expiry: status %d", w.Code)
	}
}

// TestSessionRegistryBound pins the session cap: past MaxSessions live
// sessions, creation 503s until one is deleted or expires.
func TestSessionRegistryBound(t *testing.T) {
	h := newTestServer(t, engine.Config{}, engine.ServerConfig{MaxSessions: 2})
	id1, _ := createSession(t, h)
	createSession(t, h)
	w := post(t, h, "/v1/sessions", `{"cores": 2}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("over-limit create: status %d: %s", w.Code, w.Body)
	}
	if w := del(t, h, "/v1/sessions/"+id1); w.Code != http.StatusNoContent {
		t.Fatalf("delete: status %d", w.Code)
	}
	if w := post(t, h, "/v1/sessions", `{"cores": 2}`); w.Code != http.StatusCreated {
		t.Fatalf("create after delete: status %d: %s", w.Code, w.Body)
	}
}

// TestSessionStatsSurface pins that /stats reports live sessions and
// session job counts.
func TestSessionStatsSurface(t *testing.T) {
	h := newTestServer(t, engine.Config{}, engine.ServerConfig{})
	id, _ := createSession(t, h)
	get(t, h, "/v1/sessions/"+id+"/report")
	w := get(t, h, "/stats")
	var stats struct {
		ActiveSessions int    `json:"active_sessions"`
		SessionOps     uint64 `json:"session_ops"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.ActiveSessions != 1 {
		t.Errorf("active_sessions = %d, want 1", stats.ActiveSessions)
	}
	if stats.SessionOps == 0 {
		t.Error("session_ops = 0, want > 0")
	}
}

// TestAnalyzeFinalNPRWire pins the /v1/analyze final_npr field on a
// set the refinement provably tightens — a fork-join with a unique,
// long final NPR below a dense higher-priority task, so shrinking the
// interference window past the sink crosses a carry-in step: the
// per-item flag must reproduce the library's AnalyzeRefined bound,
// strictly below the plain one.
func TestAnalyzeFinalNPRWire(t *testing.T) {
	h := newTestServer(t, engine.Config{}, engine.ServerConfig{})
	tsJSON := `{"tasks": [
		{"name": "hp", "wcet": [3, 3], "edges": [[0,1]],
		 "deadline": 14, "period": 14},
		{"name": "fj", "wcet": [2, 8, 6, 7, 12],
		 "edges": [[0,1],[0,2],[0,3],[1,4],[2,4],[3,4]],
		 "deadline": 120, "period": 120}
	]}`
	ts, err := lpdag.ReadTaskSet(strings.NewReader(tsJSON))
	if err != nil {
		t.Fatal(err)
	}
	plainWant, err := lpdag.Analyze(ts, 2, lpdag.LPILP)
	if err != nil {
		t.Fatal(err)
	}
	refinedWant, err := lpdag.AnalyzeRefined(ts, 2, lpdag.LPILP)
	if err != nil {
		t.Fatal(err)
	}
	if refinedWant.Tasks[1].ResponseTime >= plainWant.Tasks[1].ResponseTime {
		t.Fatalf("test premise broken: refinement does not tighten fj (%d vs %d)",
			refinedWant.Tasks[1].ResponseTime, plainWant.Tasks[1].ResponseTime)
	}

	body := fmt.Sprintf(`{"cores": 2, "method": "lp-ilp", "requests": [
		{"taskset": %s},
		{"taskset": %s, "final_npr": true}
	]}`, tsJSON, tsJSON)
	w := post(t, h, "/v1/analyze", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp struct {
		Results []struct {
			Error string `json:"error"`
			Tasks []struct {
				ResponseTime int64 `json:"response_time"`
			} `json:"tasks"`
		} `json:"results"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 || resp.Results[0].Error != "" || resp.Results[1].Error != "" {
		t.Fatalf("bad results: %s", w.Body)
	}
	for i := range ts.Tasks {
		if got, want := resp.Results[0].Tasks[i].ResponseTime, plainWant.Tasks[i].ResponseTime; got != want {
			t.Errorf("plain task %d: R = %d, want %d", i, got, want)
		}
		if got, want := resp.Results[1].Tasks[i].ResponseTime, refinedWant.Tasks[i].ResponseTime; got != want {
			t.Errorf("refined task %d: R = %d, want %d", i, got, want)
		}
	}
}

// TestSessionDoSerializesOutsidePool pins the registry's per-session
// gate: while one operation holds a session, a second operation on the
// SAME session waits on the caller's goroutine under the caller's
// context — it never reaches the worker pool, and cancelling it
// returns promptly without running its function.
func TestSessionDoSerializesOutsidePool(t *testing.T) {
	e := engine.New(engine.Config{Workers: 2})
	defer e.Close()
	reg := engine.NewSessionRegistry(e, engine.SessionRegistryConfig{})
	id, _, err := reg.Create(core.Options{Cores: 2, Method: core.LPMax},
		lpdag.PaperExample().Tasks...)
	if err != nil {
		t.Fatal(err)
	}
	hold := make(chan struct{})
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := reg.Do(context.Background(), id,
			func(context.Context, *session.Session) (any, error) {
				close(started)
				<-hold
				return nil, nil
			})
		done <- err
	}()
	<-started

	// A second op on the same session must park on the gate and honour
	// its context, with its fn never executed.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	ran := false
	if _, err := reg.Do(ctx, id, func(context.Context, *session.Session) (any, error) {
		ran = true
		return nil, nil
	}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("gated op error = %v, want deadline exceeded", err)
	}
	if ran {
		t.Fatal("gated op ran despite cancelled wait")
	}

	// Ops on OTHER sessions are not gated by this session's work.
	id2, _, err := reg.Create(core.Options{Cores: 2, Method: core.LPMax},
		lpdag.PaperExample().Tasks...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Do(context.Background(), id2,
		func(ctx context.Context, s *session.Session) (any, error) {
			return s.Report(ctx)
		}); err != nil {
		t.Fatalf("other-session op blocked: %v", err)
	}

	close(hold)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

package engine_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	lpdag "repro"
	"repro/internal/engine"
	"repro/internal/fixture"
)

// newTestServer returns the HTTP handler over a fresh engine.
func newTestServer(t *testing.T, ecfg engine.Config, scfg engine.ServerConfig) http.Handler {
	t.Helper()
	e := engine.New(ecfg)
	t.Cleanup(e.Close)
	return engine.NewServer(e, scfg)
}

func post(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// paperExampleJSON returns the Figure 1 example in the interchange
// format.
func paperExampleJSON(t *testing.T) string {
	t.Helper()
	raw, err := lpdag.PaperExample().MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestAnalyzeRoundTripMatchesLibrary posts the paper's Figure 1 example
// as a batch over all three methods and pins every per-task bound to
// the direct lpdag.Analyze result.
func TestAnalyzeRoundTripMatchesLibrary(t *testing.T) {
	h := newTestServer(t, engine.Config{}, engine.ServerConfig{})
	tsJSON := paperExampleJSON(t)
	body := fmt.Sprintf(`{
		"cores": %d,
		"requests": [
			{"taskset": %s, "method": "fp-ideal"},
			{"taskset": %s, "method": "lp-ilp"},
			{"taskset": %s, "method": "lp-max"}
		]
	}`, fixture.M, tsJSON, tsJSON, tsJSON)
	w := post(t, h, "/v1/analyze", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp struct {
		Results []struct {
			Error       string  `json:"error"`
			Schedulable bool    `json:"schedulable"`
			Method      string  `json:"method"`
			Cores       int     `json:"cores"`
			Utilization float64 `json:"utilization"`
			Tasks       []struct {
				Name         string `json:"name"`
				Schedulable  bool   `json:"schedulable"`
				ResponseTime int64  `json:"response_time"`
				Deadline     int64  `json:"deadline"`
				DeltaM       int64  `json:"delta_m"`
				DeltaM1      int64  `json:"delta_m1"`
			} `json:"tasks"`
		} `json:"results"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode: %v\n%s", err, w.Body)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(resp.Results))
	}
	for i, method := range []lpdag.Method{lpdag.FPIdeal, lpdag.LPILP, lpdag.LPMax} {
		want, err := lpdag.Analyze(lpdag.PaperExample(), fixture.M, method)
		if err != nil {
			t.Fatal(err)
		}
		got := resp.Results[i]
		if got.Error != "" {
			t.Fatalf("%v: unexpected error %q", method, got.Error)
		}
		if got.Schedulable != want.Schedulable || got.Method != method.String() || got.Cores != fixture.M {
			t.Errorf("%v: verdict/method/cores drifted: %+v", method, got)
		}
		if len(got.Tasks) != len(want.Tasks) {
			t.Fatalf("%v: %d tasks, want %d", method, len(got.Tasks), len(want.Tasks))
		}
		for j, tr := range want.Tasks {
			g := got.Tasks[j]
			if g.Name != tr.Name || g.ResponseTime != tr.ResponseTime ||
				g.Schedulable != tr.Schedulable || g.Deadline != tr.Deadline ||
				g.DeltaM != tr.DeltaM || g.DeltaM1 != tr.DeltaM1 {
				t.Errorf("%v task %d: got %+v want %+v", method, j, g, tr)
			}
		}
	}
}

func TestAnalyzePerItemOverridesAndErrors(t *testing.T) {
	h := newTestServer(t, engine.Config{}, engine.ServerConfig{})
	tsJSON := paperExampleJSON(t)
	body := fmt.Sprintf(`{
		"method": "lp-max",
		"requests": [
			{"taskset": %s, "cores": 8},
			{"taskset": %s, "method": "no-such-method"},
			{"taskset": {"tasks": []}},
			{}
		]
	}`, tsJSON, tsJSON)
	w := post(t, h, "/v1/analyze", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp struct {
		Results []struct {
			Error string `json:"error"`
			Cores int    `json:"cores"`
		} `json:"results"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Results[0].Error != "" || resp.Results[0].Cores != 8 {
		t.Errorf("item 0 should succeed with cores=8: %+v", resp.Results[0])
	}
	if !strings.Contains(resp.Results[1].Error, "unknown method") {
		t.Errorf("item 1 should report unknown method, got %q", resp.Results[1].Error)
	}
	if !strings.Contains(resp.Results[2].Error, "empty task set") {
		t.Errorf("item 2 should report empty task set, got %q", resp.Results[2].Error)
	}
	if !strings.Contains(resp.Results[3].Error, "missing taskset") {
		t.Errorf("item 3 should report missing taskset, got %q", resp.Results[3].Error)
	}
}

func TestAnalyzeBadRequests(t *testing.T) {
	h := newTestServer(t, engine.Config{}, engine.ServerConfig{})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed JSON", `{"requests": [`, http.StatusBadRequest},
		{"unknown field", `{"bogus": 1}`, http.StatusBadRequest},
		{"empty batch", `{"requests": []}`, http.StatusBadRequest},
		{"trailing garbage", `{"requests": []}{}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		if w := post(t, h, "/v1/analyze", c.body); w.Code != c.want {
			t.Errorf("%s: status %d, want %d (%s)", c.name, w.Code, c.want, w.Body)
		}
	}
	if w := get(t, h, "/v1/analyze"); w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/analyze: status %d, want 405", w.Code)
	}
}

func TestOversizedBodyRejected(t *testing.T) {
	h := newTestServer(t, engine.Config{}, engine.ServerConfig{MaxBodyBytes: 512})
	big := fmt.Sprintf(`{"requests": [{"taskset": %s}], "method": %q}`,
		paperExampleJSON(t), strings.Repeat("x", 4096))
	w := post(t, h, "/v1/analyze", big)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413 (%s)", w.Code, w.Body)
	}
}

func TestBatchLimit(t *testing.T) {
	h := newTestServer(t, engine.Config{}, engine.ServerConfig{MaxBatch: 2})
	item := fmt.Sprintf(`{"taskset": %s}`, paperExampleJSON(t))
	body := fmt.Sprintf(`{"requests": [%s, %s, %s]}`, item, item, item)
	if w := post(t, h, "/v1/analyze", body); w.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 for oversized batch", w.Code)
	}
}

func TestSimulateRoundTrip(t *testing.T) {
	h := newTestServer(t, engine.Config{}, engine.ServerConfig{})
	body := fmt.Sprintf(`{"taskset": %s, "cores": %d, "duration": 500}`,
		paperExampleJSON(t), fixture.M)
	w := post(t, h, "/v1/simulate", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp struct {
		Jobs        int     `json:"jobs"`
		Misses      int     `json:"misses"`
		MaxResponse []int64 `json:"max_response"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Jobs == 0 || len(resp.MaxResponse) != lpdag.PaperExample().N() {
		t.Errorf("implausible simulation summary: %+v", resp)
	}
	if w := post(t, h, "/v1/simulate", `{"cores": 4}`); w.Code != http.StatusBadRequest {
		t.Errorf("missing taskset: status %d, want 400", w.Code)
	}
}

// TestGenerateAnalyzePipeline generates task sets over HTTP, checks
// determinism, and feeds them straight back into /v1/analyze.
func TestGenerateAnalyzePipeline(t *testing.T) {
	h := newTestServer(t, engine.Config{}, engine.ServerConfig{})
	genBody := `{"seed": 42, "utilization": 1.5, "count": 2}`
	w1 := post(t, h, "/v1/generate", genBody)
	if w1.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w1.Code, w1.Body)
	}
	w2 := post(t, h, "/v1/generate", genBody)
	if !bytes.Equal(w1.Body.Bytes(), w2.Body.Bytes()) {
		t.Error("same seed should generate byte-identical responses")
	}
	var resp struct {
		TaskSets []json.RawMessage `json:"tasksets"`
	}
	if err := json.Unmarshal(w1.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.TaskSets) != 2 {
		t.Fatalf("got %d task sets, want 2", len(resp.TaskSets))
	}
	items := make([]string, len(resp.TaskSets))
	for i, raw := range resp.TaskSets {
		items[i] = fmt.Sprintf(`{"taskset": %s}`, raw)
	}
	w := post(t, h, "/v1/analyze", fmt.Sprintf(`{"requests": [%s]}`, strings.Join(items, ",")))
	if w.Code != http.StatusOK {
		t.Fatalf("analyze of generated sets: status %d: %s", w.Code, w.Body)
	}
	if strings.Contains(w.Body.String(), `"error"`) {
		t.Errorf("generated sets should analyze cleanly: %s", w.Body)
	}

	if w := post(t, h, "/v1/generate", `{"group": "no-such-group"}`); w.Code != http.StatusBadRequest {
		t.Errorf("bad group: status %d, want 400", w.Code)
	}
}

func TestHealthz(t *testing.T) {
	h := newTestServer(t, engine.Config{}, engine.ServerConfig{})
	w := get(t, h, "/healthz")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, want 200", w.Code)
	}
	if !strings.Contains(w.Body.String(), `"ok"`) {
		t.Errorf("body %q should report ok", w.Body)
	}
}

// TestHealthzDraining pins the drain protocol: /healthz reports "ok"
// while serving, flips to 503 "draining" the moment StartDraining is
// called (NOT when the listener later closes), and /stats mirrors the
// flag together with the shard-load gauges.
func TestHealthzDraining(t *testing.T) {
	e := engine.New(engine.Config{})
	t.Cleanup(e.Close)
	s := engine.NewServer(e, engine.ServerConfig{})

	if w := get(t, s, "/healthz"); w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"ok"`) {
		t.Fatalf("pre-drain healthz: %d %s", w.Code, w.Body)
	}
	s.ShardStarted()
	if w := get(t, s, "/healthz"); !strings.Contains(w.Body.String(), `"active_shards": 1`) {
		t.Errorf("healthz should report the active shard: %s", w.Body)
	}
	s.ShardFinished()

	s.StartDraining()
	w := get(t, s, "/healthz")
	if w.Code != http.StatusServiceUnavailable {
		t.Errorf("draining healthz: status %d, want 503", w.Code)
	}
	if !strings.Contains(w.Body.String(), `"draining"`) {
		t.Errorf("draining healthz body: %s", w.Body)
	}
	if w := get(t, s, "/stats"); !strings.Contains(w.Body.String(), `"draining": true`) ||
		!strings.Contains(w.Body.String(), `"shards_served": 1`) {
		t.Errorf("stats should mirror draining + shard counters: %s", w.Body)
	}

	// Draining only affects health reporting here; in-flight and even
	// new engine requests still complete (the coordinator just stops
	// sending new shard leases).
	if w := get(t, s, "/stats"); w.Code != http.StatusOK {
		t.Errorf("stats while draining: %d", w.Code)
	}
}

// TestStatsMonotonic checks the cache and job counters only ever grow,
// and that repeating an identical batch turns misses into hits.
func TestStatsMonotonic(t *testing.T) {
	h := newTestServer(t, engine.Config{}, engine.ServerConfig{})
	type stats struct {
		Analyses     uint64 `json:"analyses"`
		HTTPRequests uint64 `json:"http_requests"`
		Cache        struct {
			Hits   uint64 `json:"hits"`
			Misses uint64 `json:"misses"`
		} `json:"cache"`
	}
	read := func() stats {
		w := get(t, h, "/stats")
		if w.Code != http.StatusOK {
			t.Fatalf("stats: status %d", w.Code)
		}
		var s stats
		if err := json.Unmarshal(w.Body.Bytes(), &s); err != nil {
			t.Fatal(err)
		}
		return s
	}
	body := fmt.Sprintf(`{"cores": %d, "requests": [{"taskset": %s}]}`,
		fixture.M, paperExampleJSON(t))

	s0 := read()
	if w := post(t, h, "/v1/analyze", body); w.Code != http.StatusOK {
		t.Fatalf("analyze: %d", w.Code)
	}
	s1 := read()
	if w := post(t, h, "/v1/analyze", body); w.Code != http.StatusOK {
		t.Fatalf("analyze: %d", w.Code)
	}
	s2 := read()

	if s1.Analyses != s0.Analyses+1 || s2.Analyses != s1.Analyses+1 {
		t.Errorf("analyses %d → %d → %d, want +1 each", s0.Analyses, s1.Analyses, s2.Analyses)
	}
	if s2.HTTPRequests <= s0.HTTPRequests {
		t.Errorf("http_requests should grow: %d → %d", s0.HTTPRequests, s2.HTTPRequests)
	}
	if s1.Cache.Misses == 0 {
		t.Error("first analysis should miss the cache")
	}
	if s2.Cache.Hits <= s1.Cache.Hits {
		t.Errorf("identical repeat should hit the cache: hits %d → %d", s1.Cache.Hits, s2.Cache.Hits)
	}
	if s2.Cache.Misses != s1.Cache.Misses {
		t.Errorf("identical repeat should add no misses: %d → %d", s1.Cache.Misses, s2.Cache.Misses)
	}
}

// TestConcurrentHTTPHammer fires parallel batches at the handler; with
// -race this exercises the full server→engine→cache stack.
func TestConcurrentHTTPHammer(t *testing.T) {
	h := newTestServer(t, engine.Config{Workers: 4}, engine.ServerConfig{})
	body := fmt.Sprintf(`{"cores": %d, "requests": [{"taskset": %s}, {"taskset": %s, "method": "lp-max"}]}`,
		fixture.M, paperExampleJSON(t), paperExampleJSON(t))
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				req := httptest.NewRequest(http.MethodPost, "/v1/analyze", strings.NewReader(body))
				w := httptest.NewRecorder()
				h.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					t.Errorf("status %d: %s", w.Code, w.Body)
				}
			}
		}()
	}
	wg.Wait()
}

// TestInFlightLimit saturates a MaxInFlight=1 server with a held
// request and checks the next one is shed with 503.
func TestInFlightLimit(t *testing.T) {
	e := engine.New(engine.Config{Workers: 1})
	t.Cleanup(e.Close)
	h := engine.NewServer(e, engine.ServerConfig{MaxInFlight: 1})

	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// A slow body keeps the handler (and its semaphore slot) busy
		// until release is closed.
		req := httptest.NewRequest(http.MethodPost, "/v1/analyze", &gatedReader{
			started: started, release: release,
		})
		h.ServeHTTP(httptest.NewRecorder(), req)
	}()
	<-started
	w := post(t, h, "/v1/analyze", `{"requests": []}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Errorf("status %d, want 503 while server is saturated", w.Code)
	}
	close(release)
	wg.Wait()
	// Capacity is released: the same request now gets through to
	// request validation (400, not 503).
	if w := post(t, h, "/v1/analyze", `{"requests": []}`); w.Code != http.StatusBadRequest {
		t.Errorf("status %d after release, want 400", w.Code)
	}
}

// gatedReader signals first use, then blocks until released, then EOFs.
type gatedReader struct {
	started chan struct{}
	release chan struct{}
	once    sync.Once
}

func (g *gatedReader) Read([]byte) (int, error) {
	g.once.Do(func() { close(g.started) })
	<-g.release
	return 0, fmt.Errorf("closed")
}

// Package engine is a long-running concurrent analysis service over the
// lpdag library: a bounded worker pool that executes analyze, simulate
// and generate jobs, backed by a shared content-addressed cache
// (internal/engine/cache) so that concurrent and repeated requests for
// structurally identical task graphs compute the expensive blocking
// quantities once.
//
// The engine is the process-wide singleton behind cmd/lpdag-serve (see
// server.go for the HTTP front end) but is equally usable embedded: the
// public methods are synchronous — they enqueue a job, wait for a
// worker, and return the result — so callers get backpressure for free
// and can fan out with their own goroutines.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine/cache"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Config parameterises an Engine.
type Config struct {
	// Workers is the number of concurrent job executors; 0 means
	// GOMAXPROCS.
	Workers int
	// QueueDepth is the pending-job buffer beyond the running workers;
	// 0 means 4× workers. When the queue is full, Submit blocks (or
	// fails when the caller's context expires), which is the engine's
	// admission control.
	QueueDepth int
	// CacheEntries bounds the shared result cache (0 =
	// cache.DefaultMaxEntries). Negative disables caching.
	CacheEntries int
	// Obs, when non-nil, is the metric registry the engine instruments
	// itself into: pool gauges and counters, per-kind job latency
	// histograms, cache counters, and the analysis-phase trace threaded
	// down to the rta layer. Nil — the default — means no metrics and
	// no overhead beyond one nil check per job.
	Obs *obs.Registry
}

// JobKind labels the work a job carries, for the stats counters.
type JobKind int

// Job kinds.
const (
	JobAnalyze JobKind = iota
	JobSimulate
	JobGenerate
	// JobSweep is one experiment-sweep point (generation plus the
	// per-method analyses of all its task sets), submitted by the
	// campaign orchestrator in internal/experiments.
	JobSweep
	// JobSession is one stateful-session operation (create, edit,
	// admission probe, sensitivity query), submitted by the session
	// registry so interactive what-if traffic shares the pool's
	// backpressure with everything else.
	JobSession
	numJobKinds
)

func (k JobKind) String() string {
	switch k {
	case JobAnalyze:
		return "analyze"
	case JobSimulate:
		return "simulate"
	case JobGenerate:
		return "generate"
	case JobSweep:
		return "sweep"
	case JobSession:
		return "session"
	}
	return fmt.Sprintf("JobKind(%d)", int(k))
}

// job is one queued unit of work. ctx is the submitter's context: a
// worker popping a job whose submitter has already given up skips the
// computation instead of burning a worker on a result nobody reads; the
// same context is passed into run, so an executing job (a long LP-ILP
// solve) observes cancellation mid-computation too.
type job struct {
	kind JobKind
	ctx  context.Context
	run  func(context.Context) (any, error)
	done chan jobResult
	enq  time.Time // submit time; set only when metrics are on
}

type jobResult struct {
	val any
	err error
}

// ErrClosed is returned by job submissions after Close.
var ErrClosed = fmt.Errorf("engine: closed")

// Engine is the concurrent analysis service. Construct with New; Close
// drains the queue and stops the workers.
type Engine struct {
	cfg  Config
	memo *cache.Cache // nil when caching is disabled
	jobs chan *job
	wg   sync.WaitGroup

	// mu guards closed and, held shared, every send on jobs, so Close
	// cannot close the channel under an in-flight send.
	mu     sync.RWMutex
	closed bool

	// analyzers maps AnalyzeSpec → *core.Analyzer so repeated requests
	// with the same spec share one analyzer (and thus its pool of warm
	// rta scratch states). Cores is client-controlled on the serving
	// path, so the memo is bounded: past maxMemoizedSpecs distinct
	// specs, new ones get transient analyzers instead (correct, just
	// cold) rather than growing the map forever.
	analyzers     sync.Map
	analyzerCount int64 // memoized specs (atomic; sync.Map has no Len)

	queued    int64 // jobs submitted but not yet finished (atomic)
	served    [numJobKinds]uint64
	failed    uint64
	abandoned uint64 // queued jobs skipped: submitter context expired

	// Observability (nil without Config.Obs): the registry itself (for
	// the session layer to attach to), the pre-resolved hot-path
	// histograms, and the analysis-phase trace every pooled analyzer
	// shares.
	obsReg  *obs.Registry
	metrics *engineMetrics
	trace   *obs.Trace
}

// New starts an Engine with the given configuration.
func New(cfg Config) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	e := &Engine{
		cfg:  cfg,
		jobs: make(chan *job, cfg.QueueDepth),
	}
	if cfg.CacheEntries >= 0 {
		e.memo = cache.New(cfg.CacheEntries)
	}
	if cfg.Obs != nil {
		e.registerMetrics(cfg.Obs)
	}
	e.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go e.worker()
	}
	return e
}

// Close stops accepting jobs, lets queued ones finish (except jobs
// whose submitter context is already cancelled, which are skipped),
// and waits for the workers to exit. Safe to call more than once.
func (e *Engine) Close() {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		close(e.jobs)
	}
	e.mu.Unlock()
	e.wg.Wait()
}

// Cache returns the engine's shared result cache (nil when disabled).
func (e *Engine) Cache() *cache.Cache { return e.memo }

// Obs returns the metrics registry the engine was configured with, or
// nil. Subsystems built on the engine (the campaign handler, the
// cluster shard worker) publish their series here, so one /metrics
// scrape covers the whole process.
func (e *Engine) Obs() *obs.Registry { return e.obsReg }

// Workers returns the configured worker count — the natural bound for
// callers fanning batches out over the pool.
func (e *Engine) Workers() int { return e.cfg.Workers }

// Stats is a point-in-time snapshot of the engine counters.
type Stats struct {
	Workers     int         `json:"workers"`
	QueueDepth  int         `json:"queue_depth"` // jobs in flight or waiting
	QueueCap    int         `json:"queue_cap"`
	Analyses    uint64      `json:"analyses"`
	Simulations uint64      `json:"simulations"`
	Generations uint64      `json:"generations"`
	Sweeps      uint64      `json:"sweeps"`
	SessionOps  uint64      `json:"session_ops"`
	Failed      uint64      `json:"failed"`
	Cache       cache.Stats `json:"cache"`
}

// JobsServed returns the total completed jobs of all kinds.
func (s Stats) JobsServed() uint64 {
	return s.Analyses + s.Simulations + s.Generations + s.Sweeps + s.SessionOps
}

// Stats snapshots the counters.
func (e *Engine) Stats() Stats {
	s := Stats{
		Workers:     e.cfg.Workers,
		QueueDepth:  int(atomic.LoadInt64(&e.queued)),
		QueueCap:    e.cfg.QueueDepth,
		Analyses:    atomic.LoadUint64(&e.served[JobAnalyze]),
		Simulations: atomic.LoadUint64(&e.served[JobSimulate]),
		Generations: atomic.LoadUint64(&e.served[JobGenerate]),
		Sweeps:      atomic.LoadUint64(&e.served[JobSweep]),
		SessionOps:  atomic.LoadUint64(&e.served[JobSession]),
		Failed:      atomic.LoadUint64(&e.failed),
	}
	if e.memo != nil {
		s.Cache = e.memo.Stats()
	}
	return s
}

func (e *Engine) worker() {
	defer e.wg.Done()
	m := e.metrics
	for j := range e.jobs {
		if err := j.ctx.Err(); err != nil {
			// Submitter abandoned the job while it was queued (request
			// cancelled, server shutting down): don't compute.
			atomic.AddUint64(&e.abandoned, 1)
			atomic.AddInt64(&e.queued, -1)
			j.done <- jobResult{err: err}
			continue
		}
		var t0 time.Time
		if m != nil {
			m.queueWait.Since(j.enq)
			t0 = time.Now()
		}
		val, err := j.run(j.ctx)
		if m != nil {
			m.jobDur[j.kind].Since(t0)
		}
		atomic.AddUint64(&e.served[j.kind], 1)
		if err != nil {
			atomic.AddUint64(&e.failed, 1)
		}
		atomic.AddInt64(&e.queued, -1)
		j.done <- jobResult{val: val, err: err}
	}
}

// submit enqueues fn and waits for its result. It returns ErrClosed
// after Close, and the context's error if ctx expires while the job is
// still queued (a running job observes the same context through its
// argument and aborts at the analysis layer's next cancellation check).
func (e *Engine) submit(ctx context.Context, kind JobKind, fn func(context.Context) (any, error)) (any, error) {
	j := &job{kind: kind, ctx: ctx, run: fn, done: make(chan jobResult, 1)}
	if e.metrics != nil {
		j.enq = time.Now()
	}
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return nil, ErrClosed
	}
	atomic.AddInt64(&e.queued, 1)
	select {
	case e.jobs <- j:
		e.mu.RUnlock()
	case <-ctx.Done():
		e.mu.RUnlock()
		atomic.AddInt64(&e.queued, -1)
		return nil, ctx.Err()
	}
	select {
	case res := <-j.done:
		return res.val, res.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Submit runs fn as a pooled job of the given kind and returns its
// result: the exported generic entry point for callers that orchestrate
// their own work units over the engine's worker pool (the experiment
// orchestrator submits one JobSweep per sweep point). fn MUST NOT submit
// further jobs to the same engine — a job waiting on a nested job can
// deadlock the pool once every worker does it. fn receives the
// submitter's context and should observe it during long computations.
func (e *Engine) Submit(ctx context.Context, kind JobKind, fn func(context.Context) (any, error)) (any, error) {
	if kind < 0 || kind >= numJobKinds {
		return nil, fmt.Errorf("engine: unknown job kind %d", int(kind))
	}
	return e.submit(ctx, kind, fn)
}

// AnalyzeSpec selects the analysis parameters of one request.
type AnalyzeSpec struct {
	Cores    int
	Method   core.Method
	Backend  core.Backend
	FinalNPR bool // Options.FinalNPRRefinement
}

// maxMemoizedSpecs bounds the per-spec analyzer memo. Legitimate
// workloads use a handful of (cores, method, backend) triples; a client
// sweeping arbitrary core counts past this bound still gets correct
// (transient) analyzers, it just stops accumulating warm state.
const maxMemoizedSpecs = 64

// analyzer returns the engine-wide analyzer for a spec, creating it on
// first use. Sharing per-spec analyzers keeps the warm rta scratch
// states (suffix aggregators, µ memos) alive across requests.
func (e *Engine) analyzer(spec AnalyzeSpec) (*core.Analyzer, error) {
	if v, ok := e.analyzers.Load(spec); ok {
		return v.(*core.Analyzer), nil
	}
	a, err := core.New(core.Options{
		Cores: spec.Cores, Method: spec.Method, Backend: spec.Backend,
		FinalNPRRefinement: spec.FinalNPR,
		Cache:              e.memo,
		Trace:              e.trace,
	})
	if err != nil {
		return nil, err
	}
	if atomic.LoadInt64(&e.analyzerCount) >= maxMemoizedSpecs {
		return a, nil // memo full: serve a transient analyzer
	}
	v, loaded := e.analyzers.LoadOrStore(spec, a)
	if !loaded {
		atomic.AddInt64(&e.analyzerCount, 1)
	}
	return v.(*core.Analyzer), nil
}

// Analyze runs the response-time analysis of ts as a pooled job. All
// engine analyses share the content-addressed cache and a per-spec
// analyzer, so concurrent requests for overlapping task sets dedupe the
// blocking computations and repeated requests reuse warm scratch state.
func (e *Engine) Analyze(ctx context.Context, ts *model.TaskSet, spec AnalyzeSpec) (*core.Report, error) {
	a, err := e.analyzer(spec)
	if err != nil {
		return nil, err
	}
	v, err := e.submit(ctx, JobAnalyze, func(jobCtx context.Context) (any, error) {
		return a.Analyze(jobCtx, ts)
	})
	if err != nil {
		return nil, err
	}
	return v.(*core.Report), nil
}

// AnalyzeBatch analyzes every (task set, spec) pair, fanning the jobs
// out over the worker pool and preserving order. Per-item failures are
// reported in errs; the call itself only fails when ctx expires.
//
// The fan-out is bounded at the engine's worker count — only that many
// jobs can execute at once, so goroutine-per-item would buy nothing but
// stacks (batches can be MaxBatch-sized and arrive MaxInFlight at a
// time from the HTTP front end).
func (e *Engine) AnalyzeBatch(ctx context.Context, sets []*model.TaskSet, specs []AnalyzeSpec) (reports []*core.Report, errs []error, err error) {
	if len(sets) != len(specs) {
		return nil, nil, fmt.Errorf("engine: %d task sets but %d specs", len(sets), len(specs))
	}
	reports = make([]*core.Report, len(sets))
	errs = make([]error, len(sets))
	forEachBounded(len(sets), e.cfg.Workers, func(i int) {
		reports[i], errs[i] = e.Analyze(ctx, sets[i], specs[i])
	})
	if ctxErr := ctx.Err(); ctxErr != nil {
		return nil, nil, ctxErr
	}
	return reports, errs, nil
}

// forEachBounded runs fn(0..n-1) on at most bound concurrent
// goroutines, returning when all calls finished. fn must handle its own
// cancellation (the engine's job layer does).
func forEachBounded(n, bound int, fn func(i int)) {
	if bound > n {
		bound = n
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < bound; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// SimulateSpec parameterises a simulation job.
type SimulateSpec struct {
	Cores    int
	Duration int64
	MaxJobs  int
}

// Simulate runs the discrete-event scheduler simulator as a pooled job.
func (e *Engine) Simulate(ctx context.Context, ts *model.TaskSet, spec SimulateSpec) (*sim.Result, error) {
	v, err := e.submit(ctx, JobSimulate, func(context.Context) (any, error) {
		return sim.Run(ts, sim.Config{M: spec.Cores, Duration: spec.Duration, MaxJobs: spec.MaxJobs})
	})
	if err != nil {
		return nil, err
	}
	return v.(*sim.Result), nil
}

// GenerateSpec parameterises a task-set generation job.
type GenerateSpec struct {
	Seed        int64
	Group       gen.Group
	Utilization float64
	Tasks       int // exact task count; 0 = add tasks until Utilization
	SeqProb     float64
}

// Generate produces a random task set as a pooled job, deterministic in
// the spec's seed.
func (e *Engine) Generate(ctx context.Context, spec GenerateSpec) (*model.TaskSet, error) {
	v, err := e.submit(ctx, JobGenerate, func(context.Context) (any, error) {
		params := gen.PaperParams(spec.Group)
		if spec.SeqProb > 0 {
			params.SeqProb = spec.SeqProb
		}
		g := gen.New(spec.Seed, params)
		if spec.Tasks > 0 {
			return g.TaskSetN(spec.Tasks, spec.Utilization), nil
		}
		return g.TaskSet(spec.Utilization), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*model.TaskSet), nil
}

package engine

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/session"
)

// Session-registry defaults.
const (
	// DefaultMaxSessions bounds the live sessions of one engine. Each
	// session pins an rta.Analyzer with its scratch arenas and suffix
	// checkpoints — cheap per session, but client-controlled, so the
	// count must be capped.
	DefaultMaxSessions = 1024
	// DefaultSessionTTL is how long an untouched session survives.
	DefaultSessionTTL = 15 * time.Minute
)

// ErrSessionNotFound is returned for unknown or expired session ids
// (the two are indistinguishable by design: expiry deletes).
var ErrSessionNotFound = fmt.Errorf("engine: session not found or expired")

// ErrTooManySessions is returned by Create when the registry is full
// even after evicting every expired session.
var ErrTooManySessions = fmt.Errorf("engine: session limit reached")

// SessionRegistryConfig parameterises a SessionRegistry.
type SessionRegistryConfig struct {
	// MaxSessions caps live sessions; 0 means DefaultMaxSessions.
	MaxSessions int
	// TTL evicts sessions untouched for this long; 0 means
	// DefaultSessionTTL. Negative disables expiry.
	TTL time.Duration
	// Clock overrides time.Now, for tests exercising TTL eviction.
	Clock func() time.Time
}

// SessionRegistry owns the live analysis sessions of an engine: id
// allocation, lookup-with-touch, bounded count, and TTL eviction
// (lazily, on every registry operation — a registry nobody talks to
// holds only memory, not goroutines). Session operations submitted
// through Do run on the engine's worker pool as JobSession jobs, so
// interactive what-if traffic shares the pool's backpressure with batch
// analyses.
type SessionRegistry struct {
	eng *Engine
	cfg SessionRegistryConfig

	// Metrics, resolved from the engine's registry at construction (all
	// nil when the engine has none). gateWait measures time spent in
	// Do's per-session serialization gate — queueing invisible to the
	// pool's own queue-wait histogram.
	created  *obs.Counter
	expired  *obs.Counter
	gateWait *obs.Histogram

	mu       sync.Mutex
	sessions map[string]*sessionEntry
}

type sessionEntry struct {
	sess     *session.Session
	lastUsed time.Time

	// op serializes this session's pooled operations BEFORE they reach
	// the worker pool (capacity 1). The session's own mutex would
	// serialize them too — but inside the pool, where every waiter
	// pins a worker in an uncancellable mutex sleep; W concurrent ops
	// on one session must park W-1 request goroutines here instead,
	// each still honouring its context.
	op chan struct{}
}

// NewSessionRegistry returns a registry whose session analyses share
// the engine's cache and worker pool.
func NewSessionRegistry(e *Engine, cfg SessionRegistryConfig) *SessionRegistry {
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	if cfg.TTL == 0 {
		cfg.TTL = DefaultSessionTTL
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	r := &SessionRegistry{
		eng:      e,
		cfg:      cfg,
		sessions: make(map[string]*sessionEntry),
	}
	if reg := e.obsReg; reg != nil {
		r.created = reg.Counter("lpdag_sessions_created_total",
			"Analysis sessions created.")
		r.expired = reg.Counter("lpdag_sessions_expired_total",
			"Analysis sessions evicted by the TTL sweep.")
		r.gateWait = reg.Histogram("lpdag_session_gate_wait_seconds",
			"Time a session operation waited on its per-session serialization gate.",
			obs.LatencyBuckets)
		reg.GaugeFunc("lpdag_sessions_active",
			"Live analysis sessions after sweeping expired ones.",
			func() float64 { return float64(r.Len()) })
	}
	return r
}

// Len returns the live session count (after sweeping expired ones).
func (r *SessionRegistry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sweepLocked()
	return len(r.sessions)
}

// sweepLocked drops every expired session.
func (r *SessionRegistry) sweepLocked() {
	if r.cfg.TTL < 0 {
		return
	}
	cutoff := r.cfg.Clock().Add(-r.cfg.TTL)
	for id, e := range r.sessions {
		if e.lastUsed.Before(cutoff) {
			delete(r.sessions, id)
			r.expired.Inc()
		}
	}
}

// Create validates the options and tasks, registers a new session, and
// returns its id. The session's analyses share the engine's cache.
func (r *SessionRegistry) Create(opts core.Options, tasks ...*model.Task) (string, *session.Session, error) {
	opts.Cache = r.eng.Cache()
	sess, err := session.New(opts, tasks...)
	if err != nil {
		return "", nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sweepLocked()
	if len(r.sessions) >= r.cfg.MaxSessions {
		return "", nil, ErrTooManySessions
	}
	id := newSessionID()
	r.sessions[id] = &sessionEntry{
		sess: sess, lastUsed: r.cfg.Clock(), op: make(chan struct{}, 1),
	}
	r.created.Inc()
	return id, sess, nil
}

// Get returns the session and refreshes its TTL.
func (r *SessionRegistry) Get(id string) (*session.Session, error) {
	e, err := r.entry(id)
	if err != nil {
		return nil, err
	}
	return e.sess, nil
}

// entry resolves a live entry and refreshes its TTL.
func (r *SessionRegistry) entry(id string) (*sessionEntry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sweepLocked()
	e, ok := r.sessions[id]
	if !ok {
		return nil, ErrSessionNotFound
	}
	e.lastUsed = r.cfg.Clock()
	return e, nil
}

// Delete removes the session, reporting whether it existed.
func (r *SessionRegistry) Delete(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sweepLocked()
	_, ok := r.sessions[id]
	delete(r.sessions, id)
	return ok
}

// Do resolves the session and runs fn against it as a JobSession job on
// the engine's worker pool. At most one pooled job per session runs at
// a time: concurrent operations on the same session queue here, on the
// caller's goroutine under the caller's context — never inside the
// pool, where each waiter would pin a worker in an uncancellable mutex
// sleep and one busy session could starve every other job.
func (r *SessionRegistry) Do(ctx context.Context, id string, fn func(ctx context.Context, s *session.Session) (any, error)) (any, error) {
	e, err := r.entry(id)
	if err != nil {
		return nil, err
	}
	var t0 time.Time
	if r.gateWait != nil {
		t0 = time.Now()
	}
	select {
	case e.op <- struct{}{}:
		r.gateWait.Since(t0)
		defer func() { <-e.op }()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return r.eng.Submit(ctx, JobSession, func(jobCtx context.Context) (any, error) {
		return fn(jobCtx, e.sess)
	})
}

// newSessionID returns a 128-bit random hex id.
func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("engine: session id randomness unavailable: %v", err))
	}
	return hex.EncodeToString(b[:])
}

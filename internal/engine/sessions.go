package engine

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/repair"
	"repro/internal/session"
)

// Session-registry defaults.
const (
	// DefaultMaxSessions bounds the live sessions of one engine. Each
	// session pins an rta.Analyzer with its scratch arenas and suffix
	// checkpoints — cheap per session, but client-controlled, so the
	// count must be capped.
	DefaultMaxSessions = 1024
	// DefaultSessionTTL is how long an untouched session survives.
	DefaultSessionTTL = 15 * time.Minute
)

// ErrSessionNotFound is returned for unknown or expired session ids
// (the two are indistinguishable by design: expiry deletes).
var ErrSessionNotFound = fmt.Errorf("engine: session not found or expired")

// ErrTooManySessions is returned by Create when the registry is full
// even after evicting every expired session.
var ErrTooManySessions = fmt.Errorf("engine: session limit reached")

// ErrStaleSnapshot is returned by Install when the registry already
// holds the session at an equal or later edit epoch — the push (a
// duplicate hand-off, a replayed restore) carries nothing newer.
var ErrStaleSnapshot = fmt.Errorf("engine: stale session snapshot")

// SessionRegistryConfig parameterises a SessionRegistry.
type SessionRegistryConfig struct {
	// MaxSessions caps live sessions; 0 means DefaultMaxSessions.
	MaxSessions int
	// TTL evicts sessions untouched for this long; 0 means
	// DefaultSessionTTL. Negative disables expiry.
	TTL time.Duration
	// Clock overrides time.Now, for tests exercising TTL eviction.
	Clock func() time.Time
	// Store, when non-nil, makes sessions durable: every committed edit
	// batch is snapshotted and fsynced to it, TTL eviction tombstones
	// the durable entry, and RestoreFromStore rebuilds the unexpired
	// sessions a previous process left behind.
	Store *SessionStore
	// OwnsID, when non-nil, constrains Create's id allocation to ids it
	// accepts — the consistent-hash session router's way of making every
	// locally created session locally owned.
	OwnsID func(id string) bool
}

// SessionRegistry owns the live analysis sessions of an engine: id
// allocation, lookup-with-touch, bounded count, and TTL eviction
// (lazily, on every registry operation — a registry nobody talks to
// holds only memory, not goroutines). Session operations submitted
// through Do run on the engine's worker pool as JobSession jobs, so
// interactive what-if traffic shares the pool's backpressure with batch
// analyses.
type SessionRegistry struct {
	eng *Engine
	cfg SessionRegistryConfig

	// Metrics, resolved from the engine's registry at construction (all
	// nil when the engine has none). gateWait measures time spent in
	// Do's per-session serialization gate — queueing invisible to the
	// pool's own queue-wait histogram.
	created   *obs.Counter
	expired   *obs.Counter
	snapshots *obs.Counter
	restores  *obs.Counter
	fsyncErrs *obs.Counter
	gateWait  *obs.Histogram

	// Repair-search metrics (PR 10): evaluated candidate placements,
	// searches that found a schedulable-flipping sequence, and
	// end-to-end search duration.
	repairCandidates *obs.Counter
	repairFlips      *obs.Counter
	repairDuration   *obs.Histogram

	mu       sync.Mutex
	sessions map[string]*sessionEntry
}

type sessionEntry struct {
	sess     *session.Session
	lastUsed time.Time

	// persisted is the last session epoch durably appended to the store
	// (0 = never; live epochs start at 1). Guarded by the registry
	// mutex.
	persisted uint64

	// op serializes this session's pooled operations BEFORE they reach
	// the worker pool (capacity 1). The session's own mutex would
	// serialize them too — but inside the pool, where every waiter
	// pins a worker in an uncancellable mutex sleep; W concurrent ops
	// on one session must park W-1 request goroutines here instead,
	// each still honouring its context.
	op chan struct{}
}

// NewSessionRegistry returns a registry whose session analyses share
// the engine's cache and worker pool.
func NewSessionRegistry(e *Engine, cfg SessionRegistryConfig) *SessionRegistry {
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	if cfg.TTL == 0 {
		cfg.TTL = DefaultSessionTTL
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	r := &SessionRegistry{
		eng:      e,
		cfg:      cfg,
		sessions: make(map[string]*sessionEntry),
	}
	if reg := e.obsReg; reg != nil {
		r.created = reg.Counter("lpdag_sessions_created_total",
			"Analysis sessions created.")
		r.expired = reg.Counter("lpdag_sessions_expired_total",
			"Analysis sessions evicted by the TTL sweep.")
		r.snapshots = reg.Counter("lpdag_session_snapshots_total",
			"Session snapshots durably appended to the session store.")
		r.restores = reg.Counter("lpdag_session_restores_total",
			"Sessions restored from the durable store at startup.")
		r.fsyncErrs = reg.Counter("lpdag_session_fsync_errors_total",
			"Durable session store append/fsync failures (durability degraded, serving continues).")
		r.gateWait = reg.Histogram("lpdag_session_gate_wait_seconds",
			"Time a session operation waited on its per-session serialization gate.",
			obs.LatencyBuckets)
		r.repairCandidates = reg.Counter("lpdag_repair_candidates_total",
			"Candidate placements evaluated by session repair searches.")
		r.repairFlips = reg.Counter("lpdag_repair_flips_total",
			"Repair searches that found a transform sequence flipping the set schedulable.")
		r.repairDuration = reg.Histogram("lpdag_repair_search_seconds",
			"End-to-end session repair search duration (gate and queue wait excluded).",
			obs.LatencyBuckets)
		reg.GaugeFunc("lpdag_sessions_active",
			"Live analysis sessions after sweeping expired ones.",
			func() float64 { return float64(r.Len()) })
	}
	return r
}

// ObserveRepair records one finished repair search: its candidate
// count, whether it flipped the set schedulable, and its duration.
// No-op without an observability registry.
func (r *SessionRegistry) ObserveRepair(res *repair.Result, d time.Duration) {
	if res == nil || r.repairCandidates == nil {
		return
	}
	r.repairCandidates.Add(uint64(res.Candidates))
	if res.Fixed && len(res.Transforms) > 0 {
		r.repairFlips.Inc()
	}
	r.repairDuration.Observe(d.Seconds())
}

// Len returns the live session count (after sweeping expired ones).
func (r *SessionRegistry) Len() int {
	r.mu.Lock()
	swept := r.sweepLocked()
	n := len(r.sessions)
	r.mu.Unlock()
	r.dropDurable(swept)
	return n
}

// Has reports whether id is live, without refreshing its TTL — the
// session router's "is this session local?" probe must not keep a
// session alive.
func (r *SessionRegistry) Has(id string) bool {
	r.mu.Lock()
	swept := r.sweepLocked()
	_, ok := r.sessions[id]
	r.mu.Unlock()
	r.dropDurable(swept)
	return ok
}

// sweepLocked drops every expired session and returns their ids; the
// caller must pass them to dropDurable AFTER releasing r.mu (tombstone
// appends fsync, and disk I/O under the registry lock would stall every
// session operation).
func (r *SessionRegistry) sweepLocked() []string {
	if r.cfg.TTL < 0 {
		return nil
	}
	cutoff := r.cfg.Clock().Add(-r.cfg.TTL)
	var swept []string
	for id, e := range r.sessions {
		if e.lastUsed.Before(cutoff) {
			delete(r.sessions, id)
			r.expired.Inc()
			swept = append(swept, id)
		}
	}
	return swept
}

// dropDurable tombstones swept ids in the store, so a restart never
// resurrects an expired session.
func (r *SessionRegistry) dropDurable(ids []string) {
	if r.cfg.Store == nil {
		return
	}
	for _, id := range ids {
		if err := r.cfg.Store.Delete(id); err != nil {
			r.fsyncErrs.Inc()
		}
	}
}

// Create validates the options and tasks, registers a new session, and
// returns its id. The session's analyses share the engine's cache.
func (r *SessionRegistry) Create(opts core.Options, tasks ...*model.Task) (string, *session.Session, error) {
	opts.Cache = r.eng.Cache()
	sess, err := session.New(opts, tasks...)
	if err != nil {
		return "", nil, err
	}
	r.mu.Lock()
	swept := r.sweepLocked()
	if len(r.sessions) >= r.cfg.MaxSessions {
		r.mu.Unlock()
		r.dropDurable(swept)
		return "", nil, ErrTooManySessions
	}
	id := r.newOwnedID()
	e := &sessionEntry{
		sess: sess, lastUsed: r.cfg.Clock(), op: make(chan struct{}, 1),
	}
	r.sessions[id] = e
	r.created.Inc()
	r.mu.Unlock()
	r.dropDurable(swept)
	r.persist(id, e)
	return id, sess, nil
}

// newOwnedID generates a session id the OwnsID policy accepts. With the
// consistent-hash router each member owns ~1/N of the 128-bit id space,
// so a handful of draws suffices; the attempt bound only guards a
// pathological policy.
func (r *SessionRegistry) newOwnedID() string {
	id := newSessionID()
	if r.cfg.OwnsID == nil {
		return id
	}
	for attempts := 0; attempts < 4096 && !r.cfg.OwnsID(id); attempts++ {
		id = newSessionID()
	}
	return id
}

// Get returns the session and refreshes its TTL.
func (r *SessionRegistry) Get(id string) (*session.Session, error) {
	e, err := r.entry(id)
	if err != nil {
		return nil, err
	}
	return e.sess, nil
}

// Epoch returns the live session's current edit epoch without
// refreshing its TTL (ok=false for unknown or expired ids).
func (r *SessionRegistry) Epoch(id string) (uint64, bool) {
	r.mu.Lock()
	e, ok := r.sessions[id]
	r.mu.Unlock()
	if !ok {
		return 0, false
	}
	return e.sess.Epoch(), true
}

// entry resolves a live entry and refreshes its TTL.
func (r *SessionRegistry) entry(id string) (*sessionEntry, error) {
	r.mu.Lock()
	swept := r.sweepLocked()
	e, ok := r.sessions[id]
	if ok {
		e.lastUsed = r.cfg.Clock()
	}
	r.mu.Unlock()
	r.dropDurable(swept)
	if !ok {
		return nil, ErrSessionNotFound
	}
	return e, nil
}

// Delete removes the session (and its durable entry), reporting whether
// it existed.
func (r *SessionRegistry) Delete(id string) bool {
	r.mu.Lock()
	swept := r.sweepLocked()
	_, ok := r.sessions[id]
	delete(r.sessions, id)
	r.mu.Unlock()
	r.dropDurable(swept)
	if ok {
		r.dropDurable([]string{id})
	}
	return ok
}

// Do resolves the session and runs fn against it as a JobSession job on
// the engine's worker pool. At most one pooled job per session runs at
// a time: concurrent operations on the same session queue here, on the
// caller's goroutine under the caller's context — never inside the
// pool, where each waiter would pin a worker in an uncancellable mutex
// sleep and one busy session could starve every other job.
func (r *SessionRegistry) Do(ctx context.Context, id string, fn func(ctx context.Context, s *session.Session) (any, error)) (any, error) {
	e, err := r.entry(id)
	if err != nil {
		return nil, err
	}
	var t0 time.Time
	if r.gateWait != nil {
		t0 = time.Now()
	}
	select {
	case e.op <- struct{}{}:
		r.gateWait.Since(t0)
		defer func() { <-e.op }()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	v, err := r.eng.Submit(ctx, JobSession, func(jobCtx context.Context) (any, error) {
		return fn(jobCtx, e.sess)
	})
	// Persist while still holding the op gate, so snapshots reach the
	// store in epoch order. The epoch comparison inside persist makes
	// query-only operations free; fn errors still persist whatever was
	// committed before the failure.
	r.persist(id, e)
	return v, err
}

// persist appends the entry's current snapshot to the durable store if
// its epoch moved past the last persisted one. An append/fsync failure
// degrades durability, not serving: it is counted
// (lpdag_session_fsync_errors_total) and the next committed edit (or
// drain flush) retries.
func (r *SessionRegistry) persist(id string, e *sessionEntry) {
	st := r.cfg.Store
	if st == nil {
		return
	}
	r.mu.Lock()
	lastUsed := e.lastUsed
	already := e.persisted
	r.mu.Unlock()
	snap := e.sess.Snapshot(id, lastUsed.UnixNano())
	if snap.Epoch == already {
		return
	}
	if err := st.Append(snap); err != nil {
		r.fsyncErrs.Inc()
		return
	}
	r.snapshots.Inc()
	r.mu.Lock()
	if e.persisted < snap.Epoch {
		e.persisted = snap.Epoch
	}
	r.mu.Unlock()
}

// Install registers a session rebuilt from a snapshot — a startup
// restore or an incoming drain hand-off. The epoch check makes it
// last-writer-wins and idempotent: a snapshot at an epoch the registry
// already has (or older) is rejected with ErrStaleSnapshot. markUsed
// stamps the session as touched now (hand-off: the conversation is
// live); otherwise the snapshot's own last-touch time carries over, so
// the TTL clock keeps running across restarts. persist re-appends the
// snapshot to this node's store (hand-off custody); restores from the
// node's own store skip it.
func (r *SessionRegistry) Install(snap *session.Snapshot, markUsed, persist bool) error {
	cp := *snap
	cp.Opts.Cache = r.eng.Cache()
	sess, err := session.Restore(&cp)
	if err != nil {
		return err
	}
	lastUsed := time.Unix(0, snap.LastTouch)
	if markUsed {
		lastUsed = r.cfg.Clock()
	}
	r.mu.Lock()
	swept := r.sweepLocked()
	if prev, ok := r.sessions[snap.ID]; ok && prev.sess.Epoch() >= snap.Epoch {
		r.mu.Unlock()
		r.dropDurable(swept)
		return ErrStaleSnapshot
	} else if !ok && len(r.sessions) >= r.cfg.MaxSessions {
		r.mu.Unlock()
		r.dropDurable(swept)
		return ErrTooManySessions
	}
	e := &sessionEntry{
		sess: sess, lastUsed: lastUsed, op: make(chan struct{}, 1),
	}
	if !persist {
		e.persisted = snap.Epoch
	}
	r.sessions[snap.ID] = e
	r.mu.Unlock()
	r.dropDurable(swept)
	if persist {
		r.persist(snap.ID, e)
	}
	return nil
}

// RestoreFromStore installs every unexpired session the store recovered
// at open time, tombstoning the expired ones (a restart must never
// resurrect a session its TTL already killed). It returns the number
// restored; calling it again — or concurrently with live traffic — is
// safe, the epoch check skips everything already present.
func (r *SessionRegistry) RestoreFromStore() int {
	st := r.cfg.Store
	if st == nil {
		return 0
	}
	now := r.cfg.Clock()
	n := 0
	for _, snap := range st.Recovered() {
		if r.cfg.TTL >= 0 && now.Sub(time.Unix(0, snap.LastTouch)) > r.cfg.TTL {
			if err := st.Delete(snap.ID); err != nil {
				r.fsyncErrs.Inc()
			}
			continue
		}
		if err := r.Install(snap, false, false); err == nil {
			r.restores.Inc()
			n++
		}
	}
	return n
}

// SnapshotAll snapshots every live session (drain hand-off source).
func (r *SessionRegistry) SnapshotAll() []*session.Snapshot {
	r.mu.Lock()
	swept := r.sweepLocked()
	type live struct {
		id       string
		e        *sessionEntry
		lastUsed time.Time
	}
	entries := make([]live, 0, len(r.sessions))
	for id, e := range r.sessions {
		entries = append(entries, live{id, e, e.lastUsed})
	}
	r.mu.Unlock()
	r.dropDurable(swept)
	snaps := make([]*session.Snapshot, 0, len(entries))
	for _, l := range entries {
		snaps = append(snaps, l.e.sess.Snapshot(l.id, l.lastUsed.UnixNano()))
	}
	return snaps
}

// FlushAll persists every live session whose committed state is ahead
// of the store (normally none — Do persists per edit batch — but fsync
// failures leave gaps this closes). It returns the snapshots appended.
func (r *SessionRegistry) FlushAll() int {
	if r.cfg.Store == nil {
		return 0
	}
	r.mu.Lock()
	type live struct {
		id string
		e  *sessionEntry
	}
	entries := make([]live, 0, len(r.sessions))
	for id, e := range r.sessions {
		entries = append(entries, live{id, e})
	}
	r.mu.Unlock()
	n := 0
	before := 0
	for _, l := range entries {
		r.mu.Lock()
		before = int(l.e.persisted)
		r.mu.Unlock()
		r.persist(l.id, l.e)
		r.mu.Lock()
		if int(l.e.persisted) != before {
			n++
		}
		r.mu.Unlock()
	}
	return n
}

// newSessionID returns a 128-bit random hex id.
func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("engine: session id randomness unavailable: %v", err))
	}
	return hex.EncodeToString(b[:])
}

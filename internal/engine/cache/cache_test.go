package cache

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/blocking"
	"repro/internal/dag"
	"repro/internal/fixture"
)

// buildGraph returns a small fork-join DAG whose shape depends on n, so
// tests can mint arbitrarily many distinct graphs.
func buildGraph(n int64) *dag.Graph {
	var b dag.Builder
	src := b.AddNode(n + 1)
	a := b.AddNode(n + 2)
	c := b.AddNode(2*n + 1)
	sink := b.AddNode(1)
	b.AddEdge(src, a)
	b.AddEdge(src, c)
	b.AddEdge(a, sink)
	b.AddEdge(c, sink)
	return b.MustBuild()
}

func TestCanonicalContentAddressing(t *testing.T) {
	g1 := buildGraph(3)
	g2 := buildGraph(3) // structurally identical, distinct allocation
	g3 := buildGraph(4)
	if g1.Fingerprint() != g2.Fingerprint() {
		t.Error("identical graphs should share a key")
	}
	if g1.Fingerprint() == g3.Fingerprint() {
		t.Error("different WCETs should change the key")
	}
	// Same nodes, different edges.
	var b dag.Builder
	for v := 0; v < g1.N(); v++ {
		b.AddNode(g1.WCET(v))
	}
	b.AddEdge(0, 3)
	chain := b.MustBuild()
	if g1.Fingerprint() == chain.Fingerprint() {
		t.Error("different edges should change the key")
	}
	// Suffix digest chains are order-sensitive and content-addressed.
	if SuffixDigest(g1, SuffixDigest(g3, "")) == SuffixDigest(g3, SuffixDigest(g1, "")) {
		t.Error("suffix digest chain must be order-sensitive")
	}
	if SuffixDigest(g1, SuffixDigest(g3, "")) != SuffixDigest(g2, SuffixDigest(g3, "")) {
		t.Error("structurally identical suffixes must share a digest")
	}
}

func TestMuTableMatchesBlockingAndHits(t *testing.T) {
	c := New(64)
	for _, g := range fixture.LowerPriorityGraphs() {
		want := blocking.Mu(g, fixture.M, blocking.Combinatorial)
		got := c.MuTable(g, fixture.M, blocking.Combinatorial)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("µ mismatch: got %v want %v", got, want)
		}
	}
	before := c.Stats()
	if before.Hits != 0 || before.Misses != 4 {
		t.Fatalf("expected 0 hits / 4 misses after first pass, got %+v", before)
	}
	// Structurally identical clones must hit, not miss.
	for _, g := range fixture.LowerPriorityGraphs() {
		c.MuTable(g.Clone(), fixture.M, blocking.Combinatorial)
	}
	after := c.Stats()
	if after.Hits != 4 || after.Misses != 4 {
		t.Fatalf("expected 4 hits / 4 misses after clone pass, got %+v", after)
	}
	if after.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", after.HitRate())
	}
}

// chainDigest folds SuffixDigest right-to-left over a graph list,
// yielding the key of the whole list — what rta.Analyzer computes for
// suffix k via its digest chain.
func chainDigest(graphs []*dag.Graph) string {
	d := ""
	for i := len(graphs) - 1; i >= 0; i-- {
		d = SuffixDigest(graphs[i], d)
	}
	return d
}

func TestSuffixInterferenceMatchesBlockingCompute(t *testing.T) {
	c := New(64)
	graphs := fixture.LowerPriorityGraphs()
	digest := chainDigest(graphs)
	for _, method := range []blocking.Method{blocking.LPILP, blocking.LPMax} {
		want := blocking.Compute(graphs, fixture.M, method, blocking.Combinatorial)
		computes := 0
		lookup := func() blocking.Interference {
			return c.SuffixInterference(method, fixture.M, blocking.Combinatorial, digest, func() blocking.Interference {
				computes++
				return blocking.Compute(graphs, fixture.M, method, blocking.Combinatorial)
			})
		}
		if got := lookup(); got != want {
			t.Errorf("%v interference: got %+v want %+v", method, got, want)
		}
		// Repeat lookups must be hits and identical.
		if again := lookup(); again != want || computes != 1 {
			t.Errorf("%v second lookup: got %+v (computes=%d), want %+v computed once",
				method, again, computes, want)
		}
	}
}

func TestTopNPRs(t *testing.T) {
	c := New(8)
	g := buildGraph(5)
	want := blocking.TopNPRs(g, 4)
	got := c.TopNPRs(g, 4)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("top NPRs %v disagree with blocking (%v)", got, want)
	}
	if again := c.TopNPRs(g.Clone(), 4); fmt.Sprint(again) != fmt.Sprint(want) {
		t.Fatalf("clone lookup returned %v, want %v", again, want)
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(4)
	for i := int64(0); i < 10; i++ {
		c.TopNPRs(buildGraph(i), 4)
	}
	s := c.Stats()
	if s.Entries != 4 {
		t.Errorf("entries = %d, want 4 (bounded)", s.Entries)
	}
	if s.Evictions != 6 {
		t.Errorf("evictions = %d, want 6", s.Evictions)
	}
	// The most recent entries survive; the oldest were evicted.
	c.TopNPRs(buildGraph(9), 4)
	if got := c.Stats(); got.Hits != s.Hits+1 {
		t.Errorf("most-recent entry should still be cached: %+v", got)
	}
	c.TopNPRs(buildGraph(0), 4)
	if got := c.Stats(); got.Misses != s.Misses+1 {
		t.Errorf("oldest entry should have been evicted: %+v", got)
	}
}

// TestSingleflight verifies concurrent requests for one missing key
// compute once: the compute function blocks until every goroutine has
// requested the key, so all but the first must wait on the in-flight
// entry rather than compute their own.
func TestSingleflight(t *testing.T) {
	c := New(16)
	const n = 8
	var computes int
	arrived := make(chan struct{}, n)
	release := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]any, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			arrived <- struct{}{}
			results[i] = c.do("k", func() any {
				computes++ // safe: only one goroutine may run this
				<-release
				return 42
			})
		}(i)
	}
	for i := 0; i < n; i++ {
		<-arrived
	}
	close(release)
	wg.Wait()
	if computes != 1 {
		t.Fatalf("compute ran %d times, want 1", computes)
	}
	for i, r := range results {
		if r != 42 {
			t.Fatalf("goroutine %d got %v, want 42", i, r)
		}
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != n-1 {
		t.Fatalf("stats = %+v, want 1 miss / %d hits", s, n-1)
	}
}

// TestConcurrentHammer drives the full typed API from many goroutines
// over a small key space with an eviction-prone bound; run with -race
// this is the cache's data-race certification.
func TestConcurrentHammer(t *testing.T) {
	c := New(8)
	graphs := fixture.LowerPriorityGraphs()
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				g := graphs[(w+i)%len(graphs)]
				c.MuTable(g, fixture.M, blocking.Combinatorial)
				c.TopNPRs(g, fixture.M)
				if i%5 == 0 {
					c.SuffixInterference(blocking.LPILP, fixture.M, blocking.Combinatorial, chainDigest(graphs), func() blocking.Interference {
						return blocking.Compute(graphs, fixture.M, blocking.LPILP, blocking.Combinatorial)
					})
					c.SuffixInterference(blocking.LPMax, fixture.M, blocking.Combinatorial, chainDigest(graphs), func() blocking.Interference {
						return blocking.Compute(graphs, fixture.M, blocking.LPMax, blocking.Combinatorial)
					})
				}
				c.Stats()
			}
		}(w)
	}
	wg.Wait()
	want := blocking.Compute(graphs, fixture.M, blocking.LPILP, blocking.Combinatorial)
	got := c.SuffixInterference(blocking.LPILP, fixture.M, blocking.Combinatorial, chainDigest(graphs), func() blocking.Interference {
		return blocking.Compute(graphs, fixture.M, blocking.LPILP, blocking.Combinatorial)
	})
	if got != want {
		t.Fatalf("post-hammer interference %+v, want %+v", got, want)
	}
}

// TestConcurrentStatsScrape hammers lookups while dedicated goroutines
// scrape Stats() in a tight loop — the /metrics-under-load shape. With
// the counters on atomics the scrape never takes the cache lock; -race
// certifies the combination, and the final snapshot must balance:
// monotone counters, hits+misses equal to the lookups issued, and the
// entry count within the LRU bound.
func TestConcurrentStatsScrape(t *testing.T) {
	c := New(8)
	graphs := fixture.LowerPriorityGraphs()
	const workers, iters = 8, 200
	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for s := 0; s < 4; s++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			var prev Stats
			for {
				select {
				case <-stop:
					return
				default:
					got := c.Stats()
					if got.Hits < prev.Hits || got.Misses < prev.Misses || got.Evictions < prev.Evictions {
						t.Errorf("counters went backwards: %+v after %+v", got, prev)
						return
					}
					prev = got
				}
			}
		}()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				g := graphs[(w+i)%len(graphs)]
				c.MuTable(g, fixture.M, blocking.Combinatorial)
				c.TopNPRs(g, fixture.M)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	scrapers.Wait()
	s := c.Stats()
	if got, want := s.Hits+s.Misses, uint64(workers*iters*2); got != want {
		t.Errorf("hits+misses = %d, want %d lookups", got, want)
	}
	if s.Entries < 0 || s.Entries > 8 {
		t.Errorf("entries = %d, want within LRU bound 8", s.Entries)
	}
}

package cache

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/blocking"
	"repro/internal/dag"
	"repro/internal/fixture"
)

// buildGraph returns a small fork-join DAG whose shape depends on n, so
// tests can mint arbitrarily many distinct graphs.
func buildGraph(n int64) *dag.Graph {
	var b dag.Builder
	src := b.AddNode(n + 1)
	a := b.AddNode(n + 2)
	c := b.AddNode(2*n + 1)
	sink := b.AddNode(1)
	b.AddEdge(src, a)
	b.AddEdge(src, c)
	b.AddEdge(a, sink)
	b.AddEdge(c, sink)
	return b.MustBuild()
}

// keyIn returns a distinct key pinned to a chosen shard: the shard index
// is fp[0] mod numShards, so tests can exercise one shard's bound and
// sweep deterministically.
func keyIn(shard, id int) key {
	var k key
	k.fp[0] = byte(shard)
	k.fp[1] = byte(id)
	k.fp[2] = byte(id >> 8)
	k.m = 4
	return k
}

func TestCanonicalContentAddressing(t *testing.T) {
	g1 := buildGraph(3)
	g2 := buildGraph(3) // structurally identical, distinct allocation
	g3 := buildGraph(4)
	if g1.Fingerprint() != g2.Fingerprint() {
		t.Error("identical graphs should share a key")
	}
	if g1.Fingerprint() == g3.Fingerprint() {
		t.Error("different WCETs should change the key")
	}
	// Same nodes, different edges.
	var b dag.Builder
	for v := 0; v < g1.N(); v++ {
		b.AddNode(g1.WCET(v))
	}
	b.AddEdge(0, 3)
	chain := b.MustBuild()
	if g1.Fingerprint() == chain.Fingerprint() {
		t.Error("different edges should change the key")
	}
}

func TestMuTableMatchesBlockingAndHits(t *testing.T) {
	c := New(64)
	for _, g := range fixture.LowerPriorityGraphs() {
		want := blocking.Mu(g, fixture.M, blocking.Combinatorial)
		got := c.MuTable(g, fixture.M, blocking.Combinatorial)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("µ mismatch: got %v want %v", got, want)
		}
	}
	before := c.Stats()
	if before.Hits != 0 || before.Misses != 4 {
		t.Fatalf("expected 0 hits / 4 misses after first pass, got %+v", before)
	}
	// Structurally identical clones must hit, not miss.
	for _, g := range fixture.LowerPriorityGraphs() {
		c.MuTable(g.Clone(), fixture.M, blocking.Combinatorial)
	}
	after := c.Stats()
	if after.Hits != 4 || after.Misses != 4 {
		t.Fatalf("expected 4 hits / 4 misses after clone pass, got %+v", after)
	}
	if after.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", after.HitRate())
	}
}

// TestMuTableKeySplitsOnParams pins that the analysis parameters are
// part of the key: the same graph at a different core count or solver
// backend must not share an entry.
func TestMuTableKeySplitsOnParams(t *testing.T) {
	c := New(64)
	g := fixture.Tau2()
	c.MuTable(g, 2, blocking.Combinatorial)
	c.MuTable(g, 4, blocking.Combinatorial)
	c.MuTable(g, 4, blocking.PaperILP)
	if s := c.Stats(); s.Misses != 3 || s.Hits != 0 {
		t.Fatalf("stats = %+v, want 3 distinct misses", s)
	}
	a := c.MuTable(g, 4, blocking.Combinatorial)
	b := c.MuTable(g, 4, blocking.PaperILP)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("backends disagree on µ: %v vs %v", a, b)
	}
}

// TestCacheHitZeroAlloc pins the tentpole contract: serving a
// materialized µ table allocates nothing — no key serialization, no
// boxing, no LRU bookkeeping, no channel receive. This is what makes a
// hit strictly cheaper than recompute.
func TestCacheHitZeroAlloc(t *testing.T) {
	c := New(64)
	g := fixture.Tau1()
	c.MuTable(g, fixture.M, blocking.Combinatorial) // materialize
	var sink []int64
	allocs := testing.AllocsPerRun(1000, func() {
		sink = c.MuTable(g, fixture.M, blocking.Combinatorial)
	})
	if allocs != 0 {
		t.Errorf("cache hit allocates %.1f objects/op, want 0", allocs)
	}
	if len(sink) == 0 {
		t.Fatal("hit returned empty table")
	}
}

func BenchmarkCacheHit(b *testing.B) {
	c := New(64)
	g := fixture.Tau1()
	c.MuTable(g, fixture.M, blocking.Combinatorial)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.MuTable(g, fixture.M, blocking.Combinatorial)
	}
}

// TestSingleflightWaits verifies concurrent requests for one missing
// key compute once, and that the accounting is honest: the goroutines
// that blocked on the in-flight entry are waits, not hits — they paid
// the full compute latency, so counting them as hits would inflate the
// hit ratio exactly when the cache is slow.
func TestSingleflightWaits(t *testing.T) {
	c := New(16)
	const n = 8
	k := keyIn(0, 1)
	var computes int
	computing := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	results := make([][]int64, n)
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0] = c.get(k, func() []int64 {
			computes++ // safe: only one goroutine may run this
			close(computing)
			<-release
			return []int64{42}
		})
	}()
	<-computing // the in-flight entry exists; everyone else must wait
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = c.get(k, func() []int64 {
				t.Error("waiter ran the compute")
				return nil
			})
		}(i)
	}
	// Wait until every waiter is counted before releasing the compute.
	for c.Stats().Waits != n-1 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	if computes != 1 {
		t.Fatalf("compute ran %d times, want 1", computes)
	}
	for i, r := range results {
		if len(r) != 1 || r[0] != 42 {
			t.Fatalf("goroutine %d got %v, want [42]", i, r)
		}
	}
	s := c.Stats()
	if s.Misses != 1 || s.Waits != n-1 || s.Hits != 0 {
		t.Fatalf("stats = %+v, want 1 miss / %d waits / 0 hits", s, n-1)
	}
	// A lookup after materialization is the genuine hit.
	c.get(k, func() []int64 { t.Error("hit ran the compute"); return nil })
	if s := c.Stats(); s.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 hit after materialization", s)
	}
}

// TestPanicPoisoning is the regression test for the waiter-poisoning
// bug: a panicking compute used to close the ready channel with a nil
// value, so blocked waiters woke into a confusing secondary failure on
// unrelated goroutines. Now the entry is poisoned with the original
// cause — the computer and every waiter re-panic with it — and the key
// is dropped so a later lookup recomputes cleanly.
func TestPanicPoisoning(t *testing.T) {
	c := New(16)
	const waiters = 4
	k := keyIn(0, 2)
	cause := fmt.Errorf("ilp backend rejected the model")
	computing := make(chan struct{})
	release := make(chan struct{})
	recovered := make(chan any, waiters+1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() { recovered <- recover() }()
		c.get(k, func() []int64 {
			close(computing)
			<-release
			panic(cause)
		})
	}()
	<-computing
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { recovered <- recover() }()
			c.get(k, func() []int64 {
				t.Error("waiter ran the compute")
				return nil
			})
		}()
	}
	for c.Stats().Waits != waiters {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	close(recovered)
	got := 0
	for r := range recovered {
		got++
		if r != cause {
			t.Errorf("goroutine panicked with %v, want the original cause", r)
		}
	}
	if got != waiters+1 {
		t.Fatalf("%d goroutines panicked, want %d", got, waiters+1)
	}
	// The poisoned entry must be gone: no phantom materialized entry,
	// and the next lookup recomputes successfully.
	if s := c.Stats(); s.Entries != 0 {
		t.Fatalf("stats = %+v, want 0 entries after poisoned compute", s)
	}
	v := c.get(k, func() []int64 { return []int64{7} })
	if len(v) != 1 || v[0] != 7 {
		t.Fatalf("recompute after poisoning returned %v, want [7]", v)
	}
	if s := c.Stats(); s.Misses != 2 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want 2 misses / 1 entry after recompute", s)
	}
}

// TestEntriesExcludeInFlight pins the gauge invariant: Stats.Entries
// counts materialized values only, so it can never transiently exceed
// the bound while concurrent misses are mid-compute (the old
// count-at-insertion scheme could).
func TestEntriesExcludeInFlight(t *testing.T) {
	c := New(numShards) // one materialized entry per shard
	const inflight = 6
	release := make(chan struct{})
	var started, wg sync.WaitGroup
	for i := 0; i < inflight; i++ {
		started.Add(1)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c.get(keyIn(i, 100+i), func() []int64 {
				started.Done()
				<-release
				return []int64{int64(i)}
			})
		}(i)
	}
	started.Wait() // all six computes are in flight
	if s := c.Stats(); s.Entries != 0 {
		t.Errorf("entries = %d with only in-flight computes, want 0", s.Entries)
	}
	close(release)
	wg.Wait()
	s := c.Stats()
	if s.Entries != inflight {
		t.Errorf("entries = %d after materialization, want %d", s.Entries, inflight)
	}
	if s.Entries > c.Cap() {
		t.Errorf("entries %d exceeds Cap %d", s.Entries, c.Cap())
	}
}

// TestSecondChanceEviction pins the eviction policy on one shard:
// inserting past the shard bound sweeps, and an entry referenced since
// the last sweep survives the round while unreferenced ones are
// evicted. No hit ever mutates shared eviction state — only its
// entry's reference bit.
func TestSecondChanceEviction(t *testing.T) {
	c := New(2 * numShards) // perShard = 2
	mk := func(id int) key { return keyIn(3, id) }
	val := func(id int) func() []int64 { return func() []int64 { return []int64{int64(id)} } }
	c.get(mk(1), val(1))
	c.get(mk(2), val(2))
	c.get(mk(1), val(1)) // hit: marks 1's reference bit
	c.get(mk(3), val(3)) // over bound → sweep
	s := c.Stats()
	if s.Evictions != 1 || s.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction / 2 entries", s)
	}
	// The referenced entry survived: looking it up again is a hit.
	c.get(mk(1), func() []int64 { t.Error("referenced entry was evicted"); return nil })
	if got := c.Stats(); got.Hits != s.Hits+1 {
		t.Fatalf("stats = %+v, want a hit on the surviving entry", got)
	}
}

// TestConcurrentHammer drives MuTable from many goroutines over a small
// key space with an eviction-prone bound; run with -race this is the
// cache's data-race certification.
func TestConcurrentHammer(t *testing.T) {
	c := New(8)
	graphs := fixture.LowerPriorityGraphs()
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				g := graphs[(w+i)%len(graphs)]
				c.MuTable(g, fixture.M, blocking.Combinatorial)
				c.MuTable(g, 2, blocking.Combinatorial)
				c.Stats()
			}
		}(w)
	}
	wg.Wait()
	for _, g := range graphs {
		want := blocking.Mu(g, fixture.M, blocking.Combinatorial)
		got := c.MuTable(g, fixture.M, blocking.Combinatorial)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("post-hammer µ %v, want %v", got, want)
		}
	}
}

// TestConcurrentStatsScrape hammers lookups while dedicated goroutines
// scrape Stats() in a tight loop — the /metrics-under-load shape. With
// the counters on atomics the scrape never takes a shard lock; -race
// certifies the combination, and the final snapshot must balance:
// monotone counters, hits+misses+waits equal to the lookups issued, and
// the materialized-entry count within the capacity bound.
func TestConcurrentStatsScrape(t *testing.T) {
	c := New(8)
	graphs := fixture.LowerPriorityGraphs()
	const workers, iters = 8, 200
	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for s := 0; s < 4; s++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			var prev Stats
			for {
				select {
				case <-stop:
					return
				default:
					got := c.Stats()
					if got.Hits < prev.Hits || got.Misses < prev.Misses ||
						got.Waits < prev.Waits || got.Evictions < prev.Evictions {
						t.Errorf("counters went backwards: %+v after %+v", got, prev)
						return
					}
					prev = got
				}
			}
		}()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				g := graphs[(w+i)%len(graphs)]
				c.MuTable(g, fixture.M, blocking.Combinatorial)
				c.MuTable(g, 2, blocking.Combinatorial)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	scrapers.Wait()
	s := c.Stats()
	if got, want := s.Hits+s.Misses+s.Waits, uint64(workers*iters*2); got != want {
		t.Errorf("hits+misses+waits = %d, want %d lookups", got, want)
	}
	if s.Entries < 0 || s.Entries > c.Cap() {
		t.Errorf("entries = %d, want within capacity %d", s.Entries, c.Cap())
	}
}

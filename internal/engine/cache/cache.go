// Package cache is a content-addressed memo store for the expensive
// derived quantities of the limited-preemption analysis: the per-graph
// µ[c] worst-case workload tables of Equation (6) (max-weight clique
// searches), the sorted top-NPR lists of Equation (5), and the
// aggregated Δ^m/Δ^{m-1} interference terms of Equations (5) and (8)
// for a whole lower-priority set. (Cheap O(graph) quantities like
// vol(G) and L are deliberately not memoized — a lookup would cost as
// much as recomputing them.)
//
// Entries are keyed by the graph's memoized content fingerprint — the
// SHA-256 of its canonical structure (node WCETs + edge list; see
// dag.(*Graph).Fingerprint) — combined with the analysis parameters
// (cores, method, backend), so two structurally identical graphs share
// one entry regardless of how or where they were built: a task set
// deserialized twice from JSON, or the same lower-priority suffix
// re-analyzed at every utilization point of a sweep, computes each
// quantity once. Suffix aggregates are keyed by a digest CHAIN
// (SuffixDigest) folded over the priority ordering, so keying all n
// suffixes of a set costs O(n) hashing total instead of re-serializing
// every suffix's whole graph list. A SHA-256 collision would be needed
// for distinct graphs to share an entry; we accept that risk as
// cryptographically negligible.
//
// The store is safe for concurrent use and bounds its footprint with an
// LRU eviction policy. Concurrent requests for a missing key are
// deduplicated singleflight-style: the first goroutine computes, the
// rest block on the in-flight entry and share the result. Hit, miss and
// eviction counters feed the engine's /stats endpoint.
package cache

import (
	"container/list"
	"crypto/sha256"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/blocking"
	"repro/internal/dag"
)

// DefaultMaxEntries bounds the LRU when New is given a non-positive
// size. An entry is a small slice or pair of int64s, so the default is
// generous without being a memory hazard.
const DefaultMaxEntries = 4096

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// entry is one cached value. ready is closed once val is populated;
// goroutines that find an in-flight entry wait on it (singleflight).
type entry struct {
	key   string
	val   any
	ready chan struct{}
	elem  *list.Element // position in the LRU list; nil while in flight
}

// Cache is a bounded, concurrency-safe, content-addressed memo store.
// The zero value is not usable; construct with New.
type Cache struct {
	mu         sync.Mutex
	entries    map[string]*entry
	lru        *list.List // front = most recently used
	maxEntries int

	// Counters live outside mu so a /metrics scrape under load reads
	// them without contending with the analysis hot path. count mirrors
	// len(entries) (updated under mu, read without it) for the same
	// reason.
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	count     atomic.Int64
}

// New returns a Cache bounded to maxEntries values (DefaultMaxEntries
// when non-positive).
func New(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	return &Cache{
		entries:    make(map[string]*entry),
		lru:        list.New(),
		maxEntries: maxEntries,
	}
}

// Stats returns a snapshot of the counters. It takes no lock: each
// counter is read atomically, so the snapshot is not a single linearized
// point in time, but every counter is individually exact and monotone —
// which is what scrapers difference anyway.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   int(c.count.Load()),
	}
}

// do returns the cached value for key, computing it with fn on a miss.
// Concurrent callers with the same key compute once: the first inserts
// an in-flight entry and runs fn outside the lock, the rest wait for it.
// In-flight entries don't count against maxEntries; they join the LRU
// only once materialized.
func (c *Cache) do(key string, fn func() any) any {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits.Add(1)
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
		c.mu.Unlock()
		<-e.ready
		return e.val
	}
	c.misses.Add(1)
	e := &entry{key: key, ready: make(chan struct{})}
	c.entries[key] = e
	c.count.Add(1)
	c.mu.Unlock()

	defer func() {
		if r := recover(); r != nil {
			// Don't strand waiters or poison the key on a panicking
			// compute (invalid inputs reach fn only through internal
			// misuse, but a stuck channel would deadlock the server).
			c.mu.Lock()
			delete(c.entries, key)
			c.count.Add(-1)
			c.mu.Unlock()
			close(e.ready)
			panic(r)
		}
	}()
	e.val = fn()
	close(e.ready)

	c.mu.Lock()
	e.elem = c.lru.PushFront(e)
	for c.lru.Len() > c.maxEntries {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*entry).key)
		c.count.Add(-1)
		c.evictions.Add(1)
	}
	c.mu.Unlock()
	return e.val
}

// SuffixDigest extends a suffix digest chain by one graph: the digest of
// the graph list (g, rest...) given the digest of (rest...). Seeding
// with "" for the empty list and folding right-to-left over a priority
// ordering yields a key for every suffix in O(1) hashing per task —
// the suffix-aggregate keying scheme of rta.Analyzer. Like the graph
// fingerprint it chains, the digest is content-addressed: structurally
// identical suffix lists share one digest no matter where their graphs
// were built.
func SuffixDigest(g *dag.Graph, rest string) string {
	h := sha256.New()
	h.Write([]byte(g.Fingerprint()))
	h.Write([]byte(rest))
	return string(h.Sum(nil))
}

// SuffixInterference returns the Δ^m/Δ^{m-1} pair of a lower-priority
// suffix keyed by its chain digest (see SuffixDigest), computing it with
// compute on a miss — singleflight-deduplicated like every entry.
func (c *Cache) SuffixInterference(method blocking.Method, m int, be blocking.Backend, digest string, compute func() blocking.Interference) blocking.Interference {
	if method == blocking.LPMax {
		be = 0 // Equation (5) has no solver backend; don't split entries
	}
	key := fmt.Sprintf("sfx|%d|%x|m=%d|be=%d", method, digest, m, be)
	return c.do(key, func() any {
		return compute()
	}).(blocking.Interference)
}

// MuTable returns the µ[c] table of g for m cores (Equation (6)),
// computing it with blocking.Mu on a miss. The returned slice is shared
// with the cache; callers must not modify it.
func (c *Cache) MuTable(g *dag.Graph, m int, be blocking.Backend) []int64 {
	key := fmt.Sprintf("mu|%x|m=%d|be=%d", g.Fingerprint(), m, be)
	return c.do(key, func() any {
		return blocking.Mu(g, m, be)
	}).([]int64)
}

// TopNPRs returns the min(m, |V|) largest node WCETs of g in
// non-increasing order (the Equation (5) ingredient). The returned
// slice is shared with the cache; callers must not modify it.
func (c *Cache) TopNPRs(g *dag.Graph, m int) []int64 {
	key := fmt.Sprintf("top|%x|m=%d", g.Fingerprint(), m)
	return c.do(key, func() any {
		return blocking.TopNPRs(g, m)
	}).([]int64)
}

// Package cache is a content-addressed memo store for the one derived
// quantity of the limited-preemption analysis that is genuinely more
// expensive to recompute than to look up: the per-graph µ[c] worst-case
// workload tables of Equation (6), whether produced by the
// combinatorial max-weight clique search or by the paper's ILP backend.
// Everything cheaper is deliberately not memoized: top-NPR lists are a
// copy of the graph's memoized sorted-WCET slice, and the Δ^m/Δ^{m-1}
// suffix aggregates are O(n·m) incremental work that the rta layer's
// SuffixAggregator already produces faster than a hash-keyed lookup
// could return it (the BENCH_analyze.json trajectory for PR 4-6 showed
// the old suffix-level memo costing 2× what it saved).
//
// Entries are keyed by the graph's memoized content fingerprint — the
// SHA-256 of its canonical structure (node WCETs + edge list; see
// dag.(*Graph).Fingerprint) — packed with the analysis parameters
// (cores, backend) into a fixed-size comparable struct, so two
// structurally identical graphs share one entry regardless of how or
// where they were built: a task set deserialized twice from JSON
// computes each table once. A SHA-256 collision would be needed for
// distinct graphs to share an entry; we accept that risk as
// cryptographically negligible.
//
// The store is safe for concurrent use and built so a hit is strictly
// cheaper than recompute: the map is sharded by the first fingerprint
// byte, a hit takes one shard RLock, one map probe of a fixed-size
// binary key, and two atomic operations — no allocation, no shared
// mutable LRU state, no channel receive. Footprint is bounded per shard
// by a second-chance (clock) sweep that runs only on insertion: hits
// mark a reference bit, the sweep clears bits and evicts the first
// unreferenced materialized entry. Concurrent requests for a missing
// key are deduplicated singleflight-style: the first goroutine
// computes, the rest block on the in-flight entry and share the result
// (counted as waits, not hits). Hit, miss, wait and eviction counters
// feed the engine's /stats endpoint.
package cache

import (
	"sync"
	"sync/atomic"

	"repro/internal/blocking"
	"repro/internal/dag"
)

// DefaultMaxEntries bounds the store when New is given a non-positive
// size. An entry is a small []int64 table, so the default is generous
// without being a memory hazard.
const DefaultMaxEntries = 4096

// numShards splits the key space by the first fingerprint byte so
// concurrent workers rarely contend on one RWMutex. Power of two, and
// small enough that even a tiny cache keeps a few entries per shard.
const numShards = 16

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Waits     uint64 `json:"waits"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
}

// HitRate returns hits/(hits+misses+waits), or 0 before any lookup.
// Waits are goroutines that blocked on another goroutine's in-flight
// compute: they share the result but pay the full compute latency, so
// counting them as hits would overstate cache value exactly when the
// cache is slow.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses + s.Waits
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// key identifies one µ table: the graph's content fingerprint packed
// with the analysis parameters. Fixed-size and comparable, so map
// probes neither hash a string nor allocate.
type key struct {
	fp [32]byte
	m  int32
	be int32
}

// entry is one cached table. done flips true once val is materialized;
// ready is closed at the same point (or on a panicking compute, with
// cause set) so in-flight waiters can block. used is the second-chance
// reference bit — the only state a hit ever writes.
type entry struct {
	val   []int64
	ready chan struct{}
	cause any // non-nil after a panicking compute (poisoned)
	done  atomic.Bool
	used  atomic.Bool
}

// shard is one slice of the key space. live counts materialized
// entries only — in-flight computes are in the map (for singleflight)
// but never against the bound.
type shard struct {
	mu      sync.RWMutex
	entries map[key]*entry
	live    int
}

// Cache is a bounded, concurrency-safe, content-addressed memo store
// for µ tables. The zero value is not usable; construct with New.
type Cache struct {
	shards   [numShards]shard
	perShard int

	// Counters live outside the shard locks so a /metrics scrape under
	// load reads them without contending with the analysis hot path.
	// count mirrors the materialized-entry total (updated under shard
	// locks, read without them) for the same reason.
	hits      atomic.Uint64
	misses    atomic.Uint64
	waits     atomic.Uint64
	evictions atomic.Uint64
	count     atomic.Int64
}

// New returns a Cache bounded to maxEntries materialized values
// (DefaultMaxEntries when non-positive), rounded up to a multiple of
// the shard count.
func New(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	c := &Cache{perShard: (maxEntries + numShards - 1) / numShards}
	for i := range c.shards {
		c.shards[i].entries = make(map[key]*entry)
	}
	return c
}

// Cap returns the bound on materialized entries (maxEntries rounded up
// to a multiple of the shard count).
func (c *Cache) Cap() int { return c.perShard * numShards }

// Stats returns a snapshot of the counters. It takes no lock: each
// counter is read atomically, so the snapshot is not a single
// linearized point in time, but every counter is individually exact
// and monotone — which is what scrapers difference anyway. Entries
// counts materialized values only, never in-flight computes, so it is
// always ≤ Cap().
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Waits:     c.waits.Load(),
		Evictions: c.evictions.Load(),
		Entries:   int(c.count.Load()),
	}
}

// MuTable returns the µ[c] table of g for m cores (Equation (6)),
// computing it with blocking.Mu on a miss. The returned slice is shared
// with the cache; callers must not modify it. The hit path is inlined
// ahead of the compute closure so a hit never constructs it.
func (c *Cache) MuTable(g *dag.Graph, m int, be blocking.Backend) []int64 {
	k := key{m: int32(m), be: int32(be)}
	copy(k.fp[:], g.Fingerprint())
	s := &c.shards[k.fp[0]%numShards]
	s.mu.RLock()
	e := s.entries[k]
	s.mu.RUnlock()
	if e != nil {
		return c.consume(e)
	}
	return c.miss(s, k, func() []int64 { return blocking.Mu(g, m, be) })
}

// get is the generic lookup path (hit probe + miss fill) with an
// injectable compute, used by tests to drive the concurrency and
// eviction machinery directly.
func (c *Cache) get(k key, compute func() []int64) []int64 {
	s := &c.shards[k.fp[0]%numShards]
	s.mu.RLock()
	e := s.entries[k]
	s.mu.RUnlock()
	if e != nil {
		return c.consume(e)
	}
	return c.miss(s, k, compute)
}

// consume serves a value from an entry found in the map. A
// materialized entry is a hit: one atomic load, at most one reference-
// bit store per clock round, no lock, no allocation. An in-flight
// entry is a singleflight wait: block until the computing goroutine
// finishes, then share its result — or re-panic with its cause if the
// compute panicked, so waiters fail the same way the computer did
// instead of tripping over a nil value.
func (c *Cache) consume(e *entry) []int64 {
	if e.done.Load() {
		c.hits.Add(1)
		if !e.used.Load() {
			e.used.Store(true)
		}
		return e.val
	}
	c.waits.Add(1)
	<-e.ready
	if e.cause != nil {
		panic(e.cause)
	}
	return e.val
}

// miss inserts an in-flight entry (double-checking under the write
// lock against a racing inserter) and materializes it outside the
// lock. On a panicking compute the entry is poisoned — cause recorded
// for blocked waiters, removed from the map so later lookups recompute
// — and the panic is re-raised with the original cause.
func (c *Cache) miss(s *shard, k key, compute func() []int64) []int64 {
	s.mu.Lock()
	if e := s.entries[k]; e != nil {
		s.mu.Unlock()
		return c.consume(e)
	}
	e := &entry{ready: make(chan struct{})}
	s.entries[k] = e
	s.mu.Unlock()
	c.misses.Add(1)

	defer func() {
		if r := recover(); r != nil {
			e.cause = r
			s.mu.Lock()
			delete(s.entries, k)
			s.mu.Unlock()
			close(e.ready)
			panic(r)
		}
	}()
	e.val = compute()
	e.done.Store(true)
	close(e.ready)

	s.mu.Lock()
	s.live++
	c.count.Add(1)
	if s.live > c.perShard {
		c.evictLocked(s)
	}
	s.mu.Unlock()
	return e.val
}

// evictLocked enforces the shard bound with a second-chance sweep:
// entries hit since the last sweep get their reference bit cleared and
// survive the round; the first unreferenced materialized entry found
// is evicted (map iteration order supplies the sampling). In-flight
// entries are skipped — they don't count as live. If every entry was
// referenced, the last one swept (bit now cleared) is evicted. Caller
// holds s.mu; the hit path never participates.
func (c *Cache) evictLocked(s *shard) {
	for s.live > c.perShard {
		var victimKey key
		var victim *entry
		for k, e := range s.entries {
			if !e.done.Load() {
				continue
			}
			victimKey, victim = k, e
			if !e.used.Load() {
				break
			}
			e.used.Store(false)
		}
		if victim == nil {
			return
		}
		delete(s.entries, victimKey)
		s.live--
		c.count.Add(-1)
		c.evictions.Add(1)
	}
}

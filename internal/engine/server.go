package engine

// HTTP front end of the engine: a stdlib-only JSON API served by
// cmd/lpdag-serve.
//
//	POST /v1/analyze   batch response-time analysis
//	POST /v1/simulate  discrete-event scheduler simulation
//	POST /v1/generate  random task-set generation (paper populations)
//	GET  /healthz      liveness probe
//	GET  /stats        engine + cache counters
//
// Every POST body is capped at ServerConfig.MaxBodyBytes and the number
// of concurrently served requests at MaxInFlight (excess requests get
// 503, the caller's signal to back off — the engine's own queue already
// provides backpressure per job).
//
// /v1/analyze and the session endpoints also speak a compact
// length-prefixed binary response framing (see internal/wire and
// server_bin.go), negotiated with "Accept: application/x-lpdag-bin".
// Error responses stay JSON regardless, so failure handling is
// codec-independent.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/ring"
	"repro/internal/wire"
)

// ServerConfig parameterises the HTTP handler.
type ServerConfig struct {
	// MaxBodyBytes caps a request body; 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// MaxInFlight caps concurrently served requests; 0 means
	// DefaultMaxInFlight.
	MaxInFlight int
	// MaxBatch caps the task sets in one analyze batch; 0 means
	// DefaultMaxBatch.
	MaxBatch int
	// MaxSessions caps live analysis sessions; 0 means
	// DefaultMaxSessions.
	MaxSessions int
	// SessionTTL evicts sessions untouched for this long; 0 means
	// DefaultSessionTTL, negative disables expiry.
	SessionTTL time.Duration
	// SessionClock overrides the registry's time source (TTL tests).
	SessionClock func() time.Time
	// SessionStore, when non-nil, makes sessions durable: snapshots are
	// fsynced per committed edit batch and the unexpired sessions it
	// recovered are restored into the registry at construction.
	SessionStore *SessionStore
	// SelfURL is this node's advertised base URL (e.g.
	// "http://host:8080") on the session ring; required when Peers is
	// set and implicitly a ring member.
	SelfURL string
	// Peers are the base URLs of every session-plane node. A non-empty
	// list enables consistent-hash session routing: requests for ids
	// another node owns answer 307 + X-Lpdag-Session-Owner unless the
	// session is present locally (restored or handed off here).
	Peers []string
	// Obs, when non-nil, mounts GET /metrics (Prometheus text format,
	// deliberately outside the MaxInFlight semaphore — a scrape must
	// succeed while the server sheds) and registers the server-level
	// series (in-flight requests, sheds, draining flag, shard load).
	// Nil falls back to the engine's registry, so passing Config.Obs to
	// New is enough to get the full serving surface.
	Obs *obs.Registry
}

// Server limits. The per-job compute caps exist because the HTTP
// boundary is where untrusted sizes arrive: a single tiny request must
// not be able to pin a worker on an effectively unbounded simulation or
// generation (the library-level engine API deliberately stays
// uncapped — embedders control their own inputs).
const (
	DefaultMaxBodyBytes = 8 << 20 // 8 MiB
	DefaultMaxInFlight  = 256
	DefaultMaxBatch     = 1024

	// MaxSimDuration bounds one simulation's horizon; at the paper's
	// time scales this is minutes of wall clock on one worker.
	MaxSimDuration = 100_000_000
	// MaxSimJobs bounds the released jobs of one simulation (applied
	// as the default when the request leaves max_jobs unset).
	MaxSimJobs = 10_000_000
	// MaxGenUtilization and MaxGenTasks bound one generated task set.
	MaxGenUtilization = 1024
	MaxGenTasks       = 4096
)

// Server dispatches HTTP requests onto an Engine. Beyond being the
// http.Handler for the engine endpoints it carries the node's worker
// state for cluster deployments: a draining flag (set by StartDraining
// when SIGTERM drain begins, reported by /healthz so coordinators stop
// scheduling here) and shard-load gauges fed by the /v1/shard handler
// (internal/experiments/cluster).
type Server struct {
	eng       *Engine
	cfg       ServerConfig
	sessions  *SessionRegistry
	inFlight  chan struct{}
	requests  uint64 // HTTP requests admitted (atomic)
	shed      uint64 // requests refused by the in-flight semaphore (atomic)
	writeErrs uint64 // response encode/write failures (atomic)
	start     time.Time

	draining     atomic.Bool
	activeShards atomic.Int64
	shardsServed atomic.Uint64
	mux          *http.ServeMux

	// Session-plane routing (nil ring = single node, no redirects).
	ring      *ring.Ring
	self      string
	redirects *obs.Counter
	handoffs  *obs.Counter
}

// NewServer returns the engine's HTTP server.
func NewServer(e *Engine, cfg ServerConfig) *Server {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.Obs == nil {
		cfg.Obs = e.obsReg
	}
	s := &Server{eng: e, cfg: cfg, inFlight: make(chan struct{}, cfg.MaxInFlight), start: time.Now()}
	if len(cfg.Peers) > 0 {
		// SelfURL is implicitly a member: a peer list that omits the
		// node itself would make it own nothing and redirect everything,
		// including its own creates.
		s.self = cfg.SelfURL
		s.ring = ring.New(append(append([]string(nil), cfg.Peers...), cfg.SelfURL), 0)
	}
	s.sessions = NewSessionRegistry(e, SessionRegistryConfig{
		MaxSessions: cfg.MaxSessions, TTL: cfg.SessionTTL, Clock: cfg.SessionClock,
		Store: cfg.SessionStore,
		OwnsID: func(id string) bool {
			return s.ring == nil || s.ring.Owner(id) == s.self
		},
	})
	if cfg.SessionStore != nil {
		s.sessions.RestoreFromStore()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", s.limited(s.handleAnalyze))
	mux.HandleFunc("POST /v1/simulate", s.limited(s.handleSimulate))
	mux.HandleFunc("POST /v1/generate", s.limited(s.handleGenerate))
	mux.HandleFunc("POST /v1/sessions", s.limited(s.handleSessionCreate))
	mux.HandleFunc("POST /v1/sessions/handoff", s.limited(s.handleSessionHandoff))
	mux.HandleFunc("GET /v1/sessions/{id}/report", s.limited(s.handleSessionReport))
	mux.HandleFunc("POST /v1/sessions/{id}/edits", s.limited(s.handleSessionEdits))
	mux.HandleFunc("POST /v1/sessions/{id}/admit", s.limited(s.handleSessionAdmit))
	mux.HandleFunc("POST /v1/sessions/{id}/sensitivity", s.limited(s.handleSessionSensitivity))
	mux.HandleFunc("POST /v1/sessions/{id}/repair", s.limited(s.handleSessionRepair))
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.limited(s.handleSessionDelete))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	if reg := cfg.Obs; reg != nil {
		// Unlimited like /healthz and /stats: observability endpoints
		// must answer while the data plane sheds or drains.
		mux.Handle("GET /metrics", reg.Handler())
		reg.RegisterRuntime(s.start)
		reg.GaugeFunc("lpdag_http_in_flight",
			"Requests currently inside the admission semaphore.",
			func() float64 { return float64(len(s.inFlight)) })
		reg.CounterFunc("lpdag_http_requests_shed_total",
			"Requests refused with 503 by the in-flight semaphore.",
			func() float64 { return float64(atomic.LoadUint64(&s.shed)) })
		reg.CounterFunc("lpdag_http_write_errors_total",
			"Responses lost to encode or mid-body write failures.",
			func() float64 { return float64(atomic.LoadUint64(&s.writeErrs)) })
		reg.GaugeFunc("lpdag_server_draining",
			"1 while SIGTERM drain is in progress, else 0.",
			func() float64 {
				if s.Draining() {
					return 1
				}
				return 0
			})
		reg.GaugeFunc("lpdag_cluster_active_shards",
			"Shard leases currently executing on this worker.",
			func() float64 { return float64(s.activeShards.Load()) })
		reg.CounterFunc("lpdag_cluster_shards_served_total",
			"Shard leases this worker finished (completed or failed).",
			func() float64 { return float64(s.shardsServed.Load()) })
		s.redirects = reg.Counter("lpdag_session_redirects_total",
			"Session requests answered 307 to the owning ring member.")
		s.handoffs = reg.Counter("lpdag_session_handoffs_total",
			"Session snapshots accepted over POST /v1/sessions/handoff.")
	}
	s.mux = mux
	return s
}

// Sessions returns the server's session registry (embedders wanting
// programmatic access to the sessions the HTTP surface manages).
func (s *Server) Sessions() *SessionRegistry { return s.sessions }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// StartDraining marks the node as draining: /healthz flips to 503
// "draining" immediately, and the shard endpoint refuses new leases, so
// cluster coordinators stop scheduling here while in-flight requests
// finish. It must be called when SIGTERM drain begins, not when the
// listener closes — a node that keeps reporting healthy through its
// drain window collects work it will never finish.
func (s *Server) StartDraining() { s.draining.Store(true) }

// Draining reports whether StartDraining has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// ShardStarted records a shard lease going active on this worker (load
// reporting for /healthz and /stats).
func (s *Server) ShardStarted() { s.activeShards.Add(1) }

// ShardFinished records a shard lease ending (completed or failed).
func (s *Server) ShardFinished() {
	s.activeShards.Add(-1)
	s.shardsServed.Add(1)
}

// limited wraps a handler with the in-flight semaphore and body cap.
func (s *Server) limited(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.inFlight <- struct{}{}:
			defer func() { <-s.inFlight }()
		default:
			atomic.AddUint64(&s.shed, 1)
			s.writeError(w, http.StatusServiceUnavailable, "server at capacity, retry later")
			return
		}
		atomic.AddUint64(&s.requests, 1)
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		h(w, r)
	}
}

// respBufPool holds the response-encode buffers shared by every
// endpoint: one buffer serves a whole response (JSON document or binary
// frame sequence), so the encode layer allocates O(1) per request in
// steady state.
var respBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// writeJSON encodes v (indented, as this API has always rendered JSON)
// into a pooled buffer and writes it in one shot. A failure here has no
// in-band signal left — the status line is already committed — so it is
// counted in lpdag_http_write_errors_total rather than dropped: a
// broken-pipe storm (load balancer timeouts, dying clients) becomes
// diagnosable from /metrics.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	buf := respBufPool.Get().(*bytes.Buffer)
	defer respBufPool.Put(buf)
	buf.Reset()
	enc := json.NewEncoder(buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Encode failed before any byte reached the wire, so a clean
		// error status is still possible (and still counts: the caller
		// lost a response either way).
		atomic.AddUint64(&s.writeErrs, 1)
		http.Error(w, fmt.Sprintf("response encoding failed: %v", err), http.StatusInternalServerError)
		return
	}
	s.writeBody(w, status, "application/json", buf.Bytes())
}

// writeBody sends one fully encoded response body, counting write
// failures in lpdag_http_write_errors_total.
func (s *Server) writeBody(w http.ResponseWriter, status int, contentType string, body []byte) {
	w.Header().Set("Content-Type", contentType)
	w.WriteHeader(status)
	if _, err := w.Write(body); err != nil {
		atomic.AddUint64(&s.writeErrs, 1)
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	s.writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// decode parses the body into v, mapping oversized bodies to 413 and
// malformed JSON to 400. It reports whether decoding succeeded.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooLarge.Limit)
			return false
		}
		s.writeError(w, http.StatusBadRequest, "invalid request: %v", err)
		return false
	}
	return true
}

// ParseMethod maps the API wire spelling to a core.Method ("" =
// LP-ILP). Shared by every HTTP surface speaking the /v1/ dialect
// (including the campaign endpoint in internal/experiments).
func ParseMethod(s string) (core.Method, error) {
	switch s {
	case "", "lp-ilp":
		return core.LPILP, nil
	case "lp-max":
		return core.LPMax, nil
	case "fp-ideal":
		return core.FPIdeal, nil
	}
	return 0, fmt.Errorf("unknown method %q (want fp-ideal | lp-ilp | lp-max)", s)
}

// MethodWire renders a core.Method in the wire spelling ParseMethod
// accepts (Method.String uses the paper's display capitalisation, which
// the API does not).
func MethodWire(m core.Method) (string, error) {
	switch m {
	case core.LPILP:
		return "lp-ilp", nil
	case core.LPMax:
		return "lp-max", nil
	case core.FPIdeal:
		return "fp-ideal", nil
	}
	return "", fmt.Errorf("engine: method %v has no wire spelling", m)
}

// ParseBackend maps the API wire spelling to a core.Backend ("" =
// combinatorial).
func ParseBackend(s string) (core.Backend, error) {
	switch s {
	case "", "combinatorial":
		return core.Combinatorial, nil
	case "paper-ilp":
		return core.PaperILP, nil
	}
	return 0, fmt.Errorf("unknown backend %q (want combinatorial | paper-ilp)", s)
}

// BackendWire renders a core.Backend in the wire spelling ParseBackend
// accepts (the String form capitalises for display).
func BackendWire(b core.Backend) (string, error) {
	switch b {
	case core.Combinatorial:
		return "combinatorial", nil
	case core.PaperILP:
		return "paper-ilp", nil
	}
	return "", fmt.Errorf("engine: backend %v has no wire spelling", b)
}

// analyzeItem is one batch element: a task set plus optional per-request
// overrides of the top-level defaults.
type analyzeItem struct {
	TaskSet  json.RawMessage `json:"taskset"`
	Cores    *int            `json:"cores,omitempty"`
	Method   *string         `json:"method,omitempty"`
	Backend  *string         `json:"backend,omitempty"`
	FinalNPR *bool           `json:"final_npr,omitempty"`
}

// analyzeRequest is the /v1/analyze body: defaults plus a batch.
type analyzeRequest struct {
	Cores    int           `json:"cores,omitempty"`     // default 4
	Method   string        `json:"method,omitempty"`    // default "lp-ilp"
	Backend  string        `json:"backend,omitempty"`   // default "combinatorial"
	FinalNPR bool          `json:"final_npr,omitempty"` // Options.FinalNPRRefinement
	Requests []analyzeItem `json:"requests"`
}

// taskReportJSON is the wire form of one core.TaskReport.
type taskReportJSON struct {
	Name         string `json:"name"`
	Schedulable  bool   `json:"schedulable"`
	Analyzed     bool   `json:"analyzed"`
	ResponseTime int64  `json:"response_time"`
	Deadline     int64  `json:"deadline"`
	DeltaM       int64  `json:"delta_m"`
	DeltaM1      int64  `json:"delta_m1"`
	Preemptions  int64  `json:"preemptions"`
	Iterations   int    `json:"iterations"`
}

// analyzeResponse is the POST /v1/analyze JSON response body.
type analyzeResponse struct {
	Results []analyzeResult `json:"results"`
}

// analyzeResult is one batch element's outcome; exactly one of Error or
// the report fields is meaningful.
type analyzeResult struct {
	Error       string           `json:"error,omitempty"`
	Schedulable bool             `json:"schedulable"`
	Method      string           `json:"method,omitempty"`
	Cores       int              `json:"cores,omitempty"`
	Utilization float64          `json:"utilization,omitempty"`
	Tasks       []taskReportJSON `json:"tasks,omitempty"`
}

func reportJSON(rep *core.Report) analyzeResult {
	out := analyzeResult{
		Schedulable: rep.Schedulable,
		Method:      rep.Method.String(),
		Cores:       rep.Cores,
		Utilization: rep.Utilization,
		Tasks:       make([]taskReportJSON, len(rep.Tasks)),
	}
	for i, tr := range rep.Tasks {
		out.Tasks[i] = taskReportJSON{
			Name:         tr.Name,
			Schedulable:  tr.Schedulable,
			Analyzed:     tr.Analyzed,
			ResponseTime: tr.ResponseTime,
			Deadline:     tr.Deadline,
			DeltaM:       tr.DeltaM,
			DeltaM1:      tr.DeltaM1,
			Preemptions:  tr.Preemptions,
			Iterations:   tr.Iterations,
		}
	}
	return out
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req analyzeRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Requests) == 0 {
		s.writeError(w, http.StatusBadRequest, "empty batch: requests must hold at least one task set")
		return
	}
	if len(req.Requests) > s.cfg.MaxBatch {
		s.writeError(w, http.StatusBadRequest, "batch of %d exceeds limit %d", len(req.Requests), s.cfg.MaxBatch)
		return
	}
	if req.Cores == 0 {
		req.Cores = 4
	}

	results := make([]analyzeResult, len(req.Requests))
	sets := make([]*model.TaskSet, 0, len(req.Requests))
	specs := make([]AnalyzeSpec, 0, len(req.Requests))
	slots := make([]int, 0, len(req.Requests)) // result index per submitted job
	for i, item := range req.Requests {
		spec := AnalyzeSpec{Cores: req.Cores, FinalNPR: req.FinalNPR}
		methodStr, backendStr := req.Method, req.Backend
		if item.Cores != nil {
			spec.Cores = *item.Cores
		}
		if item.FinalNPR != nil {
			spec.FinalNPR = *item.FinalNPR
		}
		if item.Method != nil {
			methodStr = *item.Method
		}
		if item.Backend != nil {
			backendStr = *item.Backend
		}
		var err error
		if spec.Method, err = ParseMethod(methodStr); err != nil {
			results[i].Error = err.Error()
			continue
		}
		if spec.Backend, err = ParseBackend(backendStr); err != nil {
			results[i].Error = err.Error()
			continue
		}
		if len(item.TaskSet) == 0 {
			results[i].Error = "missing taskset"
			continue
		}
		ts := new(model.TaskSet)
		if err := ts.UnmarshalJSON(item.TaskSet); err != nil {
			results[i].Error = err.Error()
			continue
		}
		sets = append(sets, ts)
		specs = append(specs, spec)
		slots = append(slots, i)
	}

	reports, errs, err := s.eng.AnalyzeBatch(r.Context(), sets, specs)
	if err != nil {
		s.writeError(w, http.StatusServiceUnavailable, "batch aborted: %v", err)
		return
	}
	for j, slot := range slots {
		if errs[j] != nil {
			results[slot].Error = errs[j].Error()
			continue
		}
		results[slot] = reportJSON(reports[j])
	}
	if binaryAccepted(r) {
		st := binBufPool.Get().(*binBuf)
		defer binBufPool.Put(st)
		frames := st.frames[:0]
		for _, res := range results {
			st.payload = appendAnalyzeResultBin(st.payload[:0], res)
			frames = wire.AppendFrame(frames, wire.FrameResult, st.payload)
		}
		st.frames = frames
		s.writeBody(w, http.StatusOK, wire.ContentType, frames)
		return
	}
	s.writeJSON(w, http.StatusOK, analyzeResponse{Results: results})
}

// simulateRequest is the /v1/simulate body.
type simulateRequest struct {
	TaskSet  json.RawMessage `json:"taskset"`
	Cores    int             `json:"cores,omitempty"`    // default 4
	Duration int64           `json:"duration,omitempty"` // default 10000
	MaxJobs  int             `json:"max_jobs,omitempty"`
}

// simulateResponse summarises a run.
type simulateResponse struct {
	Jobs        int     `json:"jobs"`
	Misses      int     `json:"misses"`
	MaxResponse []int64 `json:"max_response"`
	Horizon     int64   `json:"horizon"`
	CoreBusy    []int64 `json:"core_busy"`
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req simulateRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.TaskSet) == 0 {
		s.writeError(w, http.StatusBadRequest, "missing taskset")
		return
	}
	ts := new(model.TaskSet)
	if err := ts.UnmarshalJSON(req.TaskSet); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid taskset: %v", err)
		return
	}
	if req.Cores == 0 {
		req.Cores = 4
	}
	if req.Duration == 0 {
		req.Duration = 10000
	}
	if req.Duration > MaxSimDuration {
		s.writeError(w, http.StatusBadRequest, "duration %d exceeds limit %d", req.Duration, MaxSimDuration)
		return
	}
	if req.MaxJobs <= 0 || req.MaxJobs > MaxSimJobs {
		req.MaxJobs = MaxSimJobs
	}
	res, err := s.eng.Simulate(r.Context(), ts, SimulateSpec{
		Cores: req.Cores, Duration: req.Duration, MaxJobs: req.MaxJobs,
	})
	if err != nil {
		s.writeError(w, statusForJobError(err), "simulate: %v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, simulateResponse{
		Jobs:        len(res.Jobs),
		Misses:      res.Misses,
		MaxResponse: res.MaxResponse,
		Horizon:     res.Horizon,
		CoreBusy:    res.CoreBusy,
	})
}

// generateRequest is the /v1/generate body.
type generateRequest struct {
	Seed        int64   `json:"seed"`
	Group       string  `json:"group,omitempty"` // "mixed" (default) | "parallel"
	Utilization float64 `json:"utilization,omitempty"`
	Tasks       int     `json:"tasks,omitempty"`
	SeqProb     float64 `json:"seqprob,omitempty"`
	Count       int     `json:"count,omitempty"` // task sets to produce, default 1
}

func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	var req generateRequest
	if !s.decode(w, r, &req) {
		return
	}
	var group gen.Group
	switch req.Group {
	case "", "mixed":
		group = gen.GroupMixed
	case "parallel":
		group = gen.GroupParallel
	default:
		s.writeError(w, http.StatusBadRequest, "unknown group %q (want mixed | parallel)", req.Group)
		return
	}
	if req.Utilization <= 0 {
		req.Utilization = 2
	}
	if req.Utilization > MaxGenUtilization {
		s.writeError(w, http.StatusBadRequest, "utilization %g exceeds limit %d", req.Utilization, MaxGenUtilization)
		return
	}
	if req.Tasks > MaxGenTasks {
		s.writeError(w, http.StatusBadRequest, "tasks %d exceeds limit %d", req.Tasks, MaxGenTasks)
		return
	}
	if req.Count <= 0 {
		req.Count = 1
	}
	if req.Count > s.cfg.MaxBatch {
		s.writeError(w, http.StatusBadRequest, "count %d exceeds limit %d", req.Count, s.cfg.MaxBatch)
		return
	}
	// Fan the generations out over the worker pool (each is
	// deterministic in its own derived seed, so order is preserved by
	// slot, not by completion).
	sets := make([]json.RawMessage, req.Count)
	errs := make([]error, req.Count)
	forEachBounded(req.Count, s.eng.Workers(), func(i int) {
		ts, err := s.eng.Generate(r.Context(), GenerateSpec{
			Seed: req.Seed + int64(i), Group: group,
			Utilization: req.Utilization, Tasks: req.Tasks, SeqProb: req.SeqProb,
		})
		if err != nil {
			errs[i] = err
			return
		}
		sets[i], errs[i] = ts.MarshalJSON()
	})
	for _, err := range errs {
		if err != nil {
			s.writeError(w, statusForJobError(err), "generate: %v", err)
			return
		}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"tasksets": sets})
}

// healthzResponse is the /healthz body. Status is "ok" while serving
// and "draining" once SIGTERM drain has begun (with HTTP 503, so load
// balancers and cluster coordinators stop routing work here); the load
// fields let a coordinator prefer idle workers.
type healthzResponse struct {
	Status       string `json:"status"`
	Workers      int    `json:"workers"`
	QueueDepth   int    `json:"queue_depth"`
	ActiveShards int64  `json:"active_shards"`
	// Node-identity fields (additive, PR 6): dashboards and coordinators
	// need to tell nodes and builds apart from the probe alone.
	Version       string  `json:"version"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// ActiveSessions (additive, PR 9): live session count, so a drain
	// supervisor can see hand-off progress from the probe alone.
	ActiveSessions int `json:"active_sessions"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	st := s.eng.Stats()
	resp := healthzResponse{
		Status:         "ok",
		Workers:        st.Workers,
		QueueDepth:     st.QueueDepth,
		ActiveShards:   s.activeShards.Load(),
		Version:        obs.Version(),
		UptimeSeconds:  time.Since(s.start).Seconds(),
		ActiveSessions: s.sessions.Len(),
	}
	if s.Draining() {
		resp.Status = "draining"
		s.writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// statsResponse augments the engine stats with server-level counters.
type statsResponse struct {
	Stats
	HTTPRequests   uint64  `json:"http_requests"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
	ActiveShards   int64   `json:"active_shards"`
	ShardsServed   uint64  `json:"shards_served"`
	ActiveSessions int     `json:"active_sessions"`
	Draining       bool    `json:"draining"`
	// Node-identity and runtime fields (additive, PR 6; existing keys
	// above keep their names and order, so pre-PR-6 consumers parse
	// unchanged).
	Version        string  `json:"version"`
	UptimeSeconds  float64 `json:"uptime_seconds"`
	Goroutines     int     `json:"goroutines"`
	HeapInuseBytes uint64  `json:"heap_inuse_bytes"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.eng.Stats()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.writeJSON(w, http.StatusOK, statsResponse{
		Stats:          st,
		HTTPRequests:   atomic.LoadUint64(&s.requests),
		CacheHitRate:   st.Cache.HitRate(),
		ActiveShards:   s.activeShards.Load(),
		ShardsServed:   s.shardsServed.Load(),
		ActiveSessions: s.sessions.Len(),
		Draining:       s.Draining(),
		Version:        obs.Version(),
		UptimeSeconds:  time.Since(s.start).Seconds(),
		Goroutines:     runtime.NumGoroutine(),
		HeapInuseBytes: ms.HeapInuse,
	})
}

// statusForJobError maps engine-level submission failures to HTTP codes.
func statusForJobError(err error) int {
	if errors.Is(err, ErrClosed) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

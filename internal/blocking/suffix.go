package blocking

import "repro/internal/dag"

// Suffix-incremental aggregation of the lower-priority blocking terms.
//
// The response-time analysis needs, for every task k of a priority
// ordering, the Δ^m/Δ^{m-1} interference of the suffix graphs[k+1:].
// Computing each suffix independently repeats almost all the work of its
// neighbour: the suffixes form a chain, each one the previous plus one
// task. A SuffixAggregator exploits that — tasks are pushed one at a
// time from the lowest priority upward, and after every push the
// aggregate equals exactly what Compute/ComputeFromMus would return for
// the set pushed so far:
//
//   - LP-max (Equation (5)) maintains the m and m-1 largest pooled NPRs
//     in two bounded min-heaps with running sums. A push costs
//     O(m log m); the sum of a fixed multiset's top-k elements does not
//     depend on insertion order, so the result is identical to pooling
//     and sorting all suffixes from scratch.
//   - LP-ILP (Equations (6)-(8)) maintains the deltaDP knapsack rows for
//     m and m-1 cores and extends them in place by one task per push
//     (O(m²)). deltaDP is a fold over tasks whose result is the maximum
//     over task-subset assignments, so it is insertion-order independent
//     too, and — as TestDeltaILPEqualsScenarioSweep pins — it equals the
//     PaperILP partition sweep for either backend's µ tables.
//
// Aggregating all n suffixes therefore costs what the old per-suffix
// code paid for the longest one alone: O(n·m²) instead of O(n²·m²) DP
// work, and zero allocations in steady state (Reset reuses the heaps and
// DP rows). This is also why suffix aggregates are never memoized in
// the content-addressed cache: an O(m) push from memoized µ tables is
// cheaper than hashing a suffix to key it, let alone looking it up —
// only the µ tables themselves (Mu, the clique search or ILP solve)
// clear that bar.
type SuffixAggregator struct {
	m      int
	method Method
	be     Backend

	// LP-max state.
	topM  topHeap
	topM1 topHeap

	// LP-ILP state: dpM[j] (dpM1[j]) is the best workload of distinct
	// pushed tasks on at most j of m (m-1) cores.
	dpM  []int64
	dpM1 []int64
}

// NewSuffixAggregator returns an empty aggregator for the given core
// count, method and backend. m must be ≥ 1.
func NewSuffixAggregator(m int, method Method, be Backend) *SuffixAggregator {
	a := &SuffixAggregator{}
	a.Reset(m, method, be)
	return a
}

// Reset empties the aggregator and re-parameterises it, reusing the
// internal buffers (no allocation once they have grown to the largest m
// seen).
func (a *SuffixAggregator) Reset(m int, method Method, be Backend) {
	a.m = m
	a.method = method
	a.be = be
	a.topM.reset(m)
	a.topM1.reset(m - 1)
	a.dpM = resetDP(a.dpM, m)
	a.dpM1 = resetDP(a.dpM1, max(m-1, 0))
}

// resetDP returns a zeroed DP row of cores+1 entries, reusing dp's
// backing array when large enough.
func resetDP(dp []int64, cores int) []int64 {
	if cap(dp) < cores+1 {
		return make([]int64, cores+1)
	}
	dp = dp[:cores+1]
	for i := range dp {
		dp[i] = 0
	}
	return dp
}

// Push adds one lower-priority task, deriving its per-task ingredient —
// the top-NPR list for LP-max, the µ table for LP-ILP — from the graph's
// memoized quantities. This is the lazy path: a task's µ table is
// computed here, at the suffix step that first needs it, never up front.
func (a *SuffixAggregator) Push(g *dag.Graph) {
	switch a.method {
	case LPMax:
		a.PushTops(g.SortedWCETs())
	case LPILP:
		a.PushMu(Mu(g, a.m, a.be))
	}
}

// PushTops adds one task by its non-increasing NPR list (as
// dag.(*Graph).SortedWCETs or TopNPRs return); entries beyond the m
// largest cannot contribute and are ignored. LP-max only.
func (a *SuffixAggregator) PushTops(tops []int64) {
	n := min(len(tops), a.m)
	for _, v := range tops[:n] {
		a.topM.add(v)
		a.topM1.add(v)
	}
}

// PushMu adds one task by its µ[c] table (computed for a.m cores, as
// Mu returns). LP-ILP only.
func (a *SuffixAggregator) PushMu(mu []int64) {
	dpPush(a.dpM, mu)
	dpPush(a.dpM1, mu)
}

// dpPush extends the deltaDP row by one task in place. Descending j
// keeps dp[j-c] at its pre-push value, so each task is assigned at most
// one core budget — the same recurrence as deltaDP's copy-based fold.
func dpPush(dp []int64, mu []int64) {
	cores := len(dp) - 1
	for j := cores; j >= 1; j-- {
		limit := min(j, len(mu))
		best := dp[j]
		for c := 1; c <= limit; c++ {
			best = max(best, dp[j-c]+mu[c-1])
		}
		dp[j] = best
	}
}

// Interference returns the Δ^m/Δ^{m-1} pair of the tasks pushed so far —
// exactly Compute (LP-max) or ComputeFromMus (LP-ILP) of that set.
func (a *SuffixAggregator) Interference() Interference {
	switch a.method {
	case LPMax:
		return Interference{DeltaM: a.topM.sum, DeltaM1: a.topM1.sum}
	case LPILP:
		in := Interference{DeltaM: a.dpM[len(a.dpM)-1]}
		if a.m > 1 {
			in.DeltaM1 = a.dpM1[len(a.dpM1)-1]
		}
		return in
	}
	return Interference{}
}

// SuffixCheckpoint is a saved SuffixAggregator state: the full aggregate
// after some number of pushes. Saving after every push of a bottom-up
// priority scan gives the incremental analyzer (rta.AnalyzeIncremental) a
// restart point for any edit position — editing priority k leaves the
// suffix below it untouched, so the scan resumes from the checkpoint
// taken after the unchanged tail was pushed instead of replaying it.
// A checkpoint is O(m) int64s; it is only valid for the (m, method,
// backend) parameterisation it was saved under, which the owning
// analyzer guards.
type SuffixCheckpoint struct {
	topMVals  []int64
	topMSum   int64
	topM1Vals []int64
	topM1Sum  int64
	dpM       []int64
	dpM1      []int64
}

// Save copies the aggregator's state into c, reusing c's buffers
// (allocation-free once they have grown).
func (a *SuffixAggregator) Save(c *SuffixCheckpoint) {
	c.topMVals = append(c.topMVals[:0], a.topM.vals...)
	c.topMSum = a.topM.sum
	c.topM1Vals = append(c.topM1Vals[:0], a.topM1.vals...)
	c.topM1Sum = a.topM1.sum
	c.dpM = append(c.dpM[:0], a.dpM...)
	c.dpM1 = append(c.dpM1[:0], a.dpM1...)
}

// Restore rewinds the aggregator to a previously saved state. The
// checkpoint must have been saved by this aggregator (or one with the
// same m/method/backend parameterisation) — Restore does not
// re-parameterise.
func (a *SuffixAggregator) Restore(c *SuffixCheckpoint) {
	a.topM.vals = append(a.topM.vals[:0], c.topMVals...)
	a.topM.sum = c.topMSum
	a.topM1.vals = append(a.topM1.vals[:0], c.topM1Vals...)
	a.topM1.sum = c.topM1Sum
	a.dpM = append(a.dpM[:0], c.dpM...)
	a.dpM1 = append(a.dpM1[:0], c.dpM1...)
}

// topHeap keeps the k largest values pushed so far in a min-heap with a
// running sum; adds beyond capacity displace the smallest kept value.
type topHeap struct {
	k    int
	vals []int64
	sum  int64
}

func (h *topHeap) reset(k int) {
	h.k = max(k, 0)
	h.vals = h.vals[:0]
	h.sum = 0
}

func (h *topHeap) add(v int64) {
	if h.k == 0 {
		return
	}
	if len(h.vals) < h.k {
		h.vals = append(h.vals, v)
		h.sum += v
		h.siftUp(len(h.vals) - 1)
		return
	}
	if v <= h.vals[0] {
		return
	}
	h.sum += v - h.vals[0]
	h.vals[0] = v
	h.siftDown(0)
}

func (h *topHeap) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h.vals[p] <= h.vals[i] {
			return
		}
		h.vals[p], h.vals[i] = h.vals[i], h.vals[p]
		i = p
	}
}

func (h *topHeap) siftDown(i int) {
	n := len(h.vals)
	for {
		s := i
		if l := 2*i + 1; l < n && h.vals[l] < h.vals[s] {
			s = l
		}
		if r := 2*i + 2; r < n && h.vals[r] < h.vals[s] {
			s = r
		}
		if s == i {
			return
		}
		h.vals[s], h.vals[i] = h.vals[i], h.vals[s]
		i = s
	}
}

package blocking

import (
	"math/rand"
	"testing"

	"repro/internal/dag"
	"repro/internal/fixture"
	"repro/internal/partition"
)

// TestTableI reproduces Table I of the paper with both backends.
func TestTableI(t *testing.T) {
	want := fixture.TableI()
	for _, be := range []Backend{Combinatorial, PaperILP} {
		for i, g := range fixture.LowerPriorityGraphs() {
			mu := Mu(g, fixture.M, be)
			for c := 1; c <= fixture.M; c++ {
				if mu[c-1] != want[i][c-1] {
					t.Errorf("%v: µ%d[%d] = %d, want %d", be, i+1, c, mu[c-1], want[i][c-1])
				}
			}
		}
	}
}

// TestTableIII reproduces Table III: ρ_k[s_l] for every scenario of e_4,
// with both backends (m = 4 is leak-free, so they agree per scenario).
func TestTableIII(t *testing.T) {
	mus := MuTables(fixture.LowerPriorityGraphs(), fixture.M, Combinatorial)
	want := fixture.TableIII()
	for _, be := range []Backend{Combinatorial, PaperILP} {
		for _, s := range partition.All(fixture.M) {
			got := ScenarioWorkload(mus, fixture.M, s, be)
			if got != want[s.String()] {
				t.Errorf("%v: ρ[%s] = %d, want %d", be, s, got, want[s.String()])
			}
		}
	}
}

// TestWorkedExampleDeltas pins the headline numbers of Section IV-B3:
// Δ⁴ = 19 and Δ³ = 15 under LP-ILP versus 20 and 16 under LP-max.
func TestWorkedExampleDeltas(t *testing.T) {
	graphs := fixture.LowerPriorityGraphs()
	for _, be := range []Backend{Combinatorial, PaperILP} {
		ilpRes := Compute(graphs, fixture.M, LPILP, be)
		if ilpRes.DeltaM != fixture.DeltaILP4 || ilpRes.DeltaM1 != fixture.DeltaILP3 {
			t.Errorf("%v: LP-ILP Δ⁴/Δ³ = %d/%d, want %d/%d",
				be, ilpRes.DeltaM, ilpRes.DeltaM1, fixture.DeltaILP4, fixture.DeltaILP3)
		}
	}
	maxRes := Compute(graphs, fixture.M, LPMax, Combinatorial)
	if maxRes.DeltaM != fixture.DeltaMax4 || maxRes.DeltaM1 != fixture.DeltaMax3 {
		t.Errorf("LP-max Δ⁴/Δ³ = %d/%d, want %d/%d",
			maxRes.DeltaM, maxRes.DeltaM1, fixture.DeltaMax4, fixture.DeltaMax3)
	}
}

func TestTopNPRs(t *testing.T) {
	g := fixture.Tau3() // WCETs 6,2,4,3,2
	got := TopNPRs(g, 3)
	want := []int64{6, 4, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopNPRs = %v, want %v", got, want)
		}
	}
	if all := TopNPRs(g, 10); len(all) != 5 {
		t.Errorf("TopNPRs capped at node count: got %d entries", len(all))
	}
}

func TestDeltaMaxEdgeCases(t *testing.T) {
	if got := DeltaMax(nil, 4); got != 0 {
		t.Errorf("Δ of empty lp set = %d, want 0", got)
	}
	if got := DeltaMax(fixture.LowerPriorityGraphs(), 0); got != 0 {
		t.Errorf("Δ⁰ = %d, want 0", got)
	}
	// Single task, m larger than its node count: sum of all nodes.
	g := fixture.Tau2() // 1+4+3+2 = 10
	if got := DeltaMax([]*dag.Graph{g}, 16); got != 10 {
		t.Errorf("Δ with m=16, one 4-node task = %d, want 10", got)
	}
}

func TestDeltaILPEmptyAndZeroCores(t *testing.T) {
	for _, be := range []Backend{Combinatorial, PaperILP} {
		if got := DeltaILP(nil, 4, be); got != 0 {
			t.Errorf("%v: Δ of empty µ set = %d, want 0", be, got)
		}
		if got := DeltaILP([][]int64{{5, 7}}, 0, be); got != 0 {
			t.Errorf("%v: Δ⁰ = %d, want 0", be, got)
		}
	}
}

// TestDeltaILPEqualsScenarioSweep verifies the documented equivalence:
// the knapsack DP equals the explicit max over integer partitions of the
// strict per-scenario assignment.
func TestDeltaILPEqualsScenarioSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		m := 1 + rng.Intn(8)
		n := rng.Intn(5)
		mus := randomMus(rng, n, m)
		dp := DeltaILP(mus, m, Combinatorial)
		var sweep int64
		for _, s := range partition.All(m) {
			if v := ScenarioWorkload(mus, m, s, Combinatorial); v > sweep {
				sweep = v
			}
		}
		if dp != sweep {
			t.Fatalf("trial %d m=%d: DP %d != sweep %d (mus=%v)", trial, m, dp, sweep, mus)
		}
	}
}

// TestBackendsAgreeOnDelta cross-checks the two backends end to end on
// random DAG populations, including m ≥ 6 where per-scenario values may
// differ but Δ must not.
func TestBackendsAgreeOnDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		m := 2 + rng.Intn(5) // 2..6
		var graphs []*dag.Graph
		for i := 0; i < 1+rng.Intn(3); i++ {
			graphs = append(graphs, randomDAG(rng, 2+rng.Intn(7)))
		}
		a := Compute(graphs, m, LPILP, Combinatorial)
		b := Compute(graphs, m, LPILP, PaperILP)
		if a != b {
			t.Fatalf("trial %d m=%d: combinatorial %+v != paper ILP %+v", trial, m, a, b)
		}
	}
}

// TestLPMaxDominatesLPILP: LP-max ignores precedence constraints, so its
// Δ can never be smaller than LP-ILP's (Section IV-B3 argues exactly
// this). Property-tested over random task populations.
func TestLPMaxDominatesLPILP(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 60; trial++ {
		m := 2 + rng.Intn(7)
		var graphs []*dag.Graph
		for i := 0; i < 1+rng.Intn(4); i++ {
			graphs = append(graphs, randomDAG(rng, 2+rng.Intn(10)))
		}
		lmax := Compute(graphs, m, LPMax, Combinatorial)
		lilp := Compute(graphs, m, LPILP, Combinatorial)
		if lilp.DeltaM > lmax.DeltaM || lilp.DeltaM1 > lmax.DeltaM1 {
			t.Fatalf("trial %d m=%d: LP-ILP %+v exceeds LP-max %+v", trial, m, lilp, lmax)
		}
	}
}

// TestSequentialTasksCollapse: for fully sequential lower-priority tasks
// (chains), at most one NPR per task can run, so LP-ILP reduces to the
// sequential-task bound of Thekkilakattil et al.: sum of the m largest
// per-task maxima.
func TestSequentialTasksCollapse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		m := 1 + rng.Intn(6)
		var graphs []*dag.Graph
		for i := 0; i < 1+rng.Intn(5); i++ {
			graphs = append(graphs, chainDAG(rng, 1+rng.Intn(6)))
		}
		got := Compute(graphs, m, LPILP, Combinatorial).DeltaM
		// Expected: m largest of the per-task max WCETs.
		var maxima []int64
		for _, g := range graphs {
			maxima = append(maxima, g.MaxWCET())
		}
		want := DeltaMaxFromTops(wrapSingles(maxima), m)
		if got != want {
			t.Fatalf("trial %d m=%d: Δ %d != sequential bound %d", trial, m, got, want)
		}
	}
}

func wrapSingles(v []int64) [][]int64 {
	out := make([][]int64, len(v))
	for i, x := range v {
		out[i] = []int64{x}
	}
	return out
}

// TestDeltaMonotoneInCores: more cores can only admit more blocking.
func TestDeltaMonotoneInCores(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 40; trial++ {
		var graphs []*dag.Graph
		for i := 0; i < 1+rng.Intn(4); i++ {
			graphs = append(graphs, randomDAG(rng, 2+rng.Intn(9)))
		}
		prevMax, prevILP := int64(0), int64(0)
		for m := 1; m <= 8; m++ {
			dm := DeltaMax(graphs, m)
			mus := MuTables(graphs, m, Combinatorial)
			di := DeltaILP(mus, m, Combinatorial)
			if dm < prevMax || di < prevILP {
				t.Fatalf("trial %d m=%d: Δ not monotone (max %d<%d or ilp %d<%d)",
					trial, m, dm, prevMax, di, prevILP)
			}
			prevMax, prevILP = dm, di
		}
	}
}

func randomMus(rng *rand.Rand, n, m int) [][]int64 {
	mus := make([][]int64, n)
	for i := range mus {
		mus[i] = make([]int64, m)
		width := 1 + rng.Intn(m)
		for c := 0; c < width; c++ {
			mus[i][c] = int64(1 + rng.Intn(50))
		}
	}
	return mus
}

func randomDAG(rng *rand.Rand, n int) *dag.Graph {
	var b dag.Builder
	for i := 0; i < n; i++ {
		b.AddNode(int64(1 + rng.Intn(100)))
	}
	for v := 1; v < n; v++ {
		p := rng.Intn(v)
		b.AddEdge(p, v)
		for u := 0; u < v; u++ {
			if u != p && rng.Float64() < 0.25 {
				b.AddEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}

func chainDAG(rng *rand.Rand, n int) *dag.Graph {
	var b dag.Builder
	prev := -1
	for i := 0; i < n; i++ {
		v := b.AddNode(int64(1 + rng.Intn(100)))
		if prev >= 0 {
			b.AddEdge(prev, v)
		}
		prev = v
	}
	return b.MustBuild()
}

func TestMethodBackendStrings(t *testing.T) {
	if LPMax.String() != "LP-max" || LPILP.String() != "LP-ILP" {
		t.Error("Method strings wrong")
	}
	if Combinatorial.String() != "combinatorial" || PaperILP.String() != "paper-ilp" {
		t.Error("Backend strings wrong")
	}
	if Method(9).String() == "" || Backend(9).String() == "" {
		t.Error("unknown values must still render")
	}
}

func BenchmarkComputeLPILPFigure1(b *testing.B) {
	graphs := fixture.LowerPriorityGraphs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(graphs, fixture.M, LPILP, Combinatorial)
	}
}

func BenchmarkComputeLPMaxFigure1(b *testing.B) {
	graphs := fixture.LowerPriorityGraphs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(graphs, fixture.M, LPMax, Combinatorial)
	}
}

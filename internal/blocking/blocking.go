// Package blocking computes the lower-priority interference terms of the
// limited-preemption response-time analysis of Serrano et al. (DATE
// 2016): the Δ^m and Δ^{m-1} bounds on the blocking a task suffers from
// non-preemptive regions (NPRs) of lower-priority DAG tasks.
//
// Two methods are provided, mirroring Section IV of the paper:
//
//   - LP-max (Equation (5)): sum of the m (resp. m-1) largest NPRs among
//     all lower-priority tasks, ignoring precedence constraints. Cheap and
//     pessimistic.
//   - LP-ILP (Equations (6)-(8)): per task, the worst-case workload
//     µ_i[c] on c cores considers only NPRs that can actually execute in
//     parallel; per execution scenario (integer partition of m), distinct
//     tasks are assigned to the parts maximizing the overall workload
//     ρ_k[s_l]; Δ is the maximum over scenarios.
//
// Each LP-ILP quantity can be computed by two interchangeable backends:
// exact combinatorial solvers (max-weight parallel c-set, Hungarian
// assignment, and a knapsack-style scenario sweep) or the paper-faithful
// 0-1 ILP encodings. Tests assert they agree; the combinatorial backend
// is the default and is orders of magnitude faster.
package blocking

import (
	"fmt"
	"sort"

	"repro/internal/clique"
	"repro/internal/dag"
	"repro/internal/ilp"
	"repro/internal/matching"
	"repro/internal/partition"
)

// Backend selects the solver used for the LP-ILP quantities.
type Backend int

// Available backends.
const (
	// Combinatorial uses the exact max-weight clique / assignment / DP
	// solvers. Default.
	Combinatorial Backend = iota
	// PaperILP uses the verbatim (erratum-corrected) 0-1 ILP encodings of
	// Sections V-A2 and V-B, solved by branch and bound.
	PaperILP
)

func (b Backend) String() string {
	switch b {
	case Combinatorial:
		return "combinatorial"
	case PaperILP:
		return "paper-ilp"
	}
	return fmt.Sprintf("Backend(%d)", int(b))
}

// Mu computes the worst-case workload table µ[c], c = 1..m (index c-1),
// of one task: the heaviest c pairwise-parallel NPRs, or 0 when fewer
// than c NPRs can run in parallel (Equation (6)). Per the paper this is a
// compile-time, task-local quantity.
func Mu(g *dag.Graph, m int, be Backend) []int64 {
	switch be {
	case Combinatorial:
		return clique.MuTable(g.WCETs(), g.Parallel(), m)
	case PaperILP:
		mu := make([]int64, m)
		isPar := g.IsParallelMatrix()
		w := g.WCETs()
		for c := 1; c <= m; c++ {
			mu[c-1] = ilp.SolveMu(w, isPar, c)
			if mu[c-1] == 0 && c > 1 {
				break // no c-clique ⇒ no larger one either
			}
		}
		return mu
	}
	panic(fmt.Sprintf("blocking: unknown backend %d", int(be)))
}

// MuTables computes Mu for every graph.
func MuTables(graphs []*dag.Graph, m int, be Backend) [][]int64 {
	out := make([][]int64, len(graphs))
	for i, g := range graphs {
		out[i] = Mu(g, m, be)
	}
	return out
}

// TopNPRs returns the min(m, |V|) largest node WCETs of g in
// non-increasing order — the per-task ingredient of LP-max. The result
// is a view of the graph's memoized sorted-WCET list; callers must not
// modify it.
func TopNPRs(g *dag.Graph, m int) []int64 {
	c := g.SortedWCETs()
	return c[:min(len(c), m)]
}

// DeltaMaxFromTops computes the Equation (5) bound for a given core
// count: the sum of the cores largest values among the pooled per-task
// top lists. tops[i] must be sorted non-increasing (as TopNPRs returns)
// and contain at least min(cores, available) entries per task.
func DeltaMaxFromTops(tops [][]int64, cores int) int64 {
	if cores <= 0 {
		return 0
	}
	var pool []int64
	for _, t := range tops {
		pool = append(pool, t[:min(len(t), cores)]...)
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i] > pool[j] })
	if len(pool) > cores {
		pool = pool[:cores]
	}
	var s int64
	for _, v := range pool {
		s += v
	}
	return s
}

// DeltaMax computes Δ^cores under LP-max (Equation (5)) directly from the
// lower-priority graphs.
func DeltaMax(graphs []*dag.Graph, cores int) int64 {
	tops := make([][]int64, len(graphs))
	for i, g := range graphs {
		tops[i] = TopNPRs(g, cores)
	}
	return DeltaMaxFromTops(tops, cores)
}

// ScenarioWorkload computes ρ[s_l] (Equation (7)): the maximum total
// workload of distinct tasks assigned to the parts of the scenario, task
// on part of size c contributing µ[c]. Parts without a matching task
// contribute zero (dummy-task padding; see DESIGN.md).
//
// The Combinatorial backend solves the strict assignment with the
// Hungarian algorithm. The PaperILP backend solves the printed encoding,
// which for m ≥ 6 may exceed the strict value on scenarios whose part
// sizes can be re-profiled (see ilp.RhoProblem); the Δ aggregation below
// is unaffected.
func ScenarioWorkload(mus [][]int64, m int, scenario []int, be Backend) int64 {
	switch be {
	case Combinatorial:
		w := make([][]int64, len(scenario))
		for p, size := range scenario {
			if size < 1 || size > m {
				panic(fmt.Sprintf("blocking: scenario part %d out of range 1..%d", size, m))
			}
			w[p] = make([]int64, len(mus))
			for i := range mus {
				w[p][i] = mus[i][size-1]
			}
		}
		v, _ := matching.MaxWeightAssignment(w)
		return v
	case PaperILP:
		return ilp.SolveRho(mus, m, scenario)
	}
	panic(fmt.Sprintf("blocking: unknown backend %d", int(be)))
}

// DeltaILP computes Δ^cores under LP-ILP (Equation (8)): the maximum
// over all execution scenarios e_cores of the overall worst-case
// workload.
//
// The Combinatorial backend does not enumerate partitions at all: the
// maximum over partitions of the strict assignment equals the best way
// of giving distinct tasks disjoint core budgets summing to at most
// cores, which a small knapsack-style DP over tasks computes directly.
// TestDeltaILPEqualsScenarioSweep pins the equivalence. The PaperILP
// backend performs the paper's explicit sweep over partitions.
func DeltaILP(mus [][]int64, cores int, be Backend) int64 {
	if cores <= 0 {
		return 0
	}
	switch be {
	case Combinatorial:
		return deltaDP(mus, cores)
	case PaperILP:
		var best int64
		for _, s := range partition.All(cores) {
			best = max(best, ilp.SolveRho(mus, cores, s))
		}
		return best
	}
	panic(fmt.Sprintf("blocking: unknown backend %d", int(be)))
}

// deltaDP maximizes Σ µ_i[c_i] over distinct tasks with Σ c_i ≤ cores,
// c_i ≥ 1. dp[j] is the best workload using at most j cores.
func deltaDP(mus [][]int64, cores int) int64 {
	dp := make([]int64, cores+1)
	for _, mu := range mus {
		next := append([]int64(nil), dp...)
		for j := 1; j <= cores; j++ {
			for c := 1; c <= min(j, len(mu)); c++ {
				next[j] = max(next[j], dp[j-c]+mu[c-1])
			}
		}
		dp = next
	}
	// dp is already monotone in j by construction (dp[j] ≥ dp[j-1]
	// because every c ≤ j-1 choice is also available at j), so dp[cores]
	// is the maximum over all scenarios of e_cores with padding.
	return dp[cores]
}

// Interference bundles the two blocking bounds of a task under analysis.
type Interference struct {
	DeltaM  int64 // Δ^m: blocking on the first NPR (Equation (3))
	DeltaM1 int64 // Δ^{m-1}: blocking at each later preemption point
}

// Method selects how the lower-priority interference is bounded.
type Method int

// Available methods.
const (
	// LPMax is the pessimistic Equation (5) bound.
	LPMax Method = iota
	// LPILP is the precedence-aware Equations (6)-(8) bound.
	LPILP
)

func (m Method) String() string {
	switch m {
	case LPMax:
		return "LP-max"
	case LPILP:
		return "LP-ILP"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Compute derives Δ^m and Δ^{m-1} for a task whose lower-priority set has
// the given graphs, on m cores.
func Compute(graphs []*dag.Graph, m int, method Method, be Backend) Interference {
	switch method {
	case LPMax:
		return Interference{
			DeltaM:  DeltaMax(graphs, m),
			DeltaM1: DeltaMax(graphs, m-1),
		}
	case LPILP:
		mus := MuTables(graphs, m, be)
		return ComputeFromMus(mus, m, be)
	}
	panic(fmt.Sprintf("blocking: unknown method %d", int(method)))
}

// ComputeFromMus is Compute for LP-ILP when the µ tables are already
// available (they are task-local and cached by the analyzer).
//
// Δ^{m-1} needs µ entries only up to c = m-1, which a table computed for
// m cores contains.
func ComputeFromMus(mus [][]int64, m int, be Backend) Interference {
	trunc := make([][]int64, len(mus))
	for i, mu := range mus {
		if len(mu) >= m {
			trunc[i] = mu[:m-1]
		} else {
			trunc[i] = mu
		}
	}
	return Interference{
		DeltaM:  DeltaILP(mus, m, be),
		DeltaM1: DeltaILP(trunc, m-1, be),
	}
}

package blocking

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dag"
)

// randomGraph builds a random DAG: 1..maxNodes nodes, WCETs 1..20, each
// forward pair (i,j) an edge with probability p.
func randomGraph(rng *rand.Rand, maxNodes int, p float64) *dag.Graph {
	n := 1 + rng.Intn(maxNodes)
	var b dag.Builder
	for i := 0; i < n; i++ {
		b.AddNode(1 + rng.Int63n(20))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				b.AddEdge(i, j)
			}
		}
	}
	return b.MustBuild()
}

// suffixesViaAggregator pushes graphs from the back and records the
// aggregate after each push, i.e. the interference of every suffix.
func suffixesViaAggregator(graphs []*dag.Graph, m int, method Method, be Backend) []Interference {
	agg := NewSuffixAggregator(m, method, be)
	out := make([]Interference, len(graphs)+1)
	out[len(graphs)] = agg.Interference() // empty suffix
	for k := len(graphs) - 1; k >= 0; k-- {
		agg.Push(graphs[k])
		out[k] = agg.Interference()
	}
	return out
}

// TestSuffixAggregatorEquivalence quick-checks that the one-pass
// suffix-incremental aggregation matches the independent per-suffix
// Compute for every suffix of random graph lists, for both methods and
// both backends.
func TestSuffixAggregatorEquivalence(t *testing.T) {
	check := func(seed int64, method Method, be Backend, maxM, maxGraphs int) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(maxM)
		graphs := make([]*dag.Graph, rng.Intn(maxGraphs+1))
		for i := range graphs {
			graphs[i] = randomGraph(rng, 8, 0.3)
		}
		got := suffixesViaAggregator(graphs, m, method, be)
		for k := 0; k <= len(graphs); k++ {
			want := Compute(graphs[k:], m, method, be)
			if got[k] != want {
				t.Logf("seed=%d method=%v be=%v m=%d suffix=%d: got %+v want %+v",
					seed, method, be, m, k, got[k], want)
				return false
			}
		}
		return true
	}

	cfg := &quick.Config{MaxCount: 60}
	for _, tc := range []struct {
		name          string
		method        Method
		be            Backend
		maxM, maxList int
	}{
		{"lpmax-combinatorial", LPMax, Combinatorial, 16, 8},
		{"lpilp-combinatorial", LPILP, Combinatorial, 8, 6},
		// The paper's partition-sweep backend is slow; keep it small. It
		// pins that the aggregator's DP aggregation equals the printed
		// scenario enumeration even when µ comes from the ILP encoding.
		{"lpilp-paper-ilp", LPILP, PaperILP, 4, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if err := quick.Check(func(seed int64) bool {
				return check(seed, tc.method, tc.be, tc.maxM, tc.maxList)
			}, cfg); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestSuffixAggregatorReset pins that Reset fully clears state: an
// aggregator reused across parameter changes matches a fresh one.
func TestSuffixAggregatorReset(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	graphs := make([]*dag.Graph, 5)
	for i := range graphs {
		graphs[i] = randomGraph(rng, 8, 0.3)
	}
	agg := NewSuffixAggregator(16, LPMax, Combinatorial)
	for _, g := range graphs {
		agg.Push(g)
	}
	for _, method := range []Method{LPMax, LPILP} {
		for m := 1; m <= 6; m++ {
			agg.Reset(m, method, Combinatorial)
			for _, g := range graphs {
				agg.Push(g)
			}
			if got, want := agg.Interference(), Compute(graphs, m, method, Combinatorial); got != want {
				t.Errorf("reused aggregator m=%d method=%v: got %+v want %+v", m, method, got, want)
			}
		}
	}
}

// TestSuffixCheckpointSaveRestore pins the checkpoint contract the
// incremental analyzer builds on: restoring a mid-scan checkpoint and
// replaying a different upper set yields exactly what a fresh aggregator
// computes for (tail + new upper set), for both methods, repeatedly on
// the same reused checkpoint.
func TestSuffixCheckpointSaveRestore(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, method := range []Method{LPMax, LPILP} {
		for m := 1; m <= 5; m++ {
			tail := make([]*dag.Graph, 4)
			for i := range tail {
				tail[i] = randomGraph(rng, 8, 0.3)
			}
			agg := NewSuffixAggregator(m, method, Combinatorial)
			for _, g := range tail {
				agg.Push(g)
			}
			var chk SuffixCheckpoint
			agg.Save(&chk)
			for trial := 0; trial < 3; trial++ {
				upper := make([]*dag.Graph, 1+rng.Intn(3))
				for i := range upper {
					upper[i] = randomGraph(rng, 8, 0.3)
				}
				agg.Restore(&chk)
				for _, g := range upper {
					agg.Push(g)
				}
				want := Compute(append(append([]*dag.Graph(nil), tail...), upper...), m, method, Combinatorial)
				if got := agg.Interference(); got != want {
					t.Errorf("method=%v m=%d trial=%d: got %+v want %+v", method, m, trial, got, want)
				}
			}
			// The checkpoint itself must be unscathed by the replays.
			agg.Restore(&chk)
			if got, want := agg.Interference(), Compute(tail, m, method, Combinatorial); got != want {
				t.Errorf("method=%v m=%d: checkpoint corrupted by replays: got %+v want %+v", method, m, got, want)
			}
		}
	}
}

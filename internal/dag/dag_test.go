package dag

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/bitset"
)

// diamond builds s -> {a, b} -> t with the given WCETs.
func diamond(t *testing.T, c ...int64) *Graph {
	t.Helper()
	var b Builder
	s := b.AddNode(c[0])
	a := b.AddNode(c[1])
	bb := b.AddNode(c[2])
	tt := b.AddNode(c[3])
	b.AddEdge(s, a)
	b.AddEdge(s, bb)
	b.AddEdge(a, tt)
	b.AddEdge(bb, tt)
	return b.MustBuild()
}

func TestBuilderSingleNode(t *testing.T) {
	var b Builder
	b.AddNode(7)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.N() != 1 || g.Volume() != 7 || g.LongestPath() != 7 {
		t.Errorf("got N=%d vol=%d L=%d, want 1,7,7", g.N(), g.Volume(), g.LongestPath())
	}
	if g.PreemptionPoints() != 0 {
		t.Errorf("q = %d, want 0", g.PreemptionPoints())
	}
}

func TestBuilderRejectsEmpty(t *testing.T) {
	var b Builder
	if _, err := b.Build(); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestBuilderRejectsNonPositiveWCET(t *testing.T) {
	for _, w := range []int64{0, -3} {
		var b Builder
		b.AddNode(w)
		if _, err := b.Build(); err == nil {
			t.Errorf("WCET %d accepted", w)
		}
	}
}

func TestBuilderRejectsBadEdges(t *testing.T) {
	cases := []struct {
		name string
		mk   func(b *Builder)
	}{
		{"out of range target", func(b *Builder) { b.AddEdge(0, 5) }},
		{"out of range source", func(b *Builder) { b.AddEdge(-1, 0) }},
		{"self loop", func(b *Builder) { b.AddEdge(0, 0) }},
		{"duplicate", func(b *Builder) { b.AddEdge(0, 1); b.AddEdge(0, 1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var b Builder
			b.AddNode(1)
			b.AddNode(1)
			tc.mk(&b)
			if _, err := b.Build(); err == nil {
				t.Fatal("bad edge accepted")
			}
		})
	}
}

func TestBuilderRejectsCycle(t *testing.T) {
	var b Builder
	x := b.AddNode(1)
	y := b.AddNode(1)
	z := b.AddNode(1)
	b.AddEdge(x, y)
	b.AddEdge(y, z)
	b.AddEdge(z, x)
	if _, err := b.Build(); err == nil {
		t.Fatal("cyclic graph accepted")
	}
}

func TestTopologicalOrderRespectsEdges(t *testing.T) {
	g := diamond(t, 1, 2, 3, 4)
	pos := make([]int, g.N())
	for i, v := range g.TopologicalOrder() {
		pos[v] = i
	}
	for _, e := range g.Edges() {
		if pos[e[0]] >= pos[e[1]] {
			t.Errorf("edge (%d,%d) violates topological order", e[0], e[1])
		}
	}
}

func TestVolumeAndLongestPath(t *testing.T) {
	g := diamond(t, 1, 2, 3, 4)
	if got := g.Volume(); got != 10 {
		t.Errorf("Volume = %d, want 10", got)
	}
	// Longest path goes through the heavier branch: 1+3+4.
	if got := g.LongestPath(); got != 8 {
		t.Errorf("LongestPath = %d, want 8", got)
	}
}

func TestCriticalPath(t *testing.T) {
	g := diamond(t, 1, 2, 3, 4)
	want := []int{0, 2, 3}
	if got := g.CriticalPath(); !reflect.DeepEqual(got, want) {
		t.Errorf("CriticalPath = %v, want %v", got, want)
	}
	var sum int64
	for _, v := range g.CriticalPath() {
		sum += g.WCET(v)
	}
	if sum != g.LongestPath() {
		t.Errorf("critical path weight %d != L %d", sum, g.LongestPath())
	}
}

func TestCriticalPathIsAPath(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		g := randomSingleSourceDAG(rng, 2+rng.Intn(20))
		p := g.CriticalPath()
		for i := 0; i+1 < len(p); i++ {
			if !g.HasEdge(p[i], p[i+1]) {
				t.Fatalf("trial %d: critical path %v has no edge (%d,%d)", trial, p, p[i], p[i+1])
			}
		}
	}
}

func TestSourcesSinks(t *testing.T) {
	g := diamond(t, 1, 1, 1, 1)
	if got := g.Sources(); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("Sources = %v", got)
	}
	if got := g.Sinks(); !reflect.DeepEqual(got, []int{3}) {
		t.Errorf("Sinks = %v", got)
	}
}

func TestReachAndCoReach(t *testing.T) {
	g := diamond(t, 1, 1, 1, 1)
	reach := g.Reach()
	if got := reach[0].Indices(); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Errorf("Reach(0) = %v", got)
	}
	if !reach[1].Equal(bitset.FromIndices(4, 3)) {
		t.Errorf("Reach(1) = %v", reach[1])
	}
	co := g.CoReach()
	if got := co[3].Indices(); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("CoReach(3) = %v", got)
	}
	if got := co[0].Indices(); len(got) != 0 {
		t.Errorf("CoReach(0) = %v, want empty", got)
	}
}

func TestReachCoReachAreTransposes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		g := randomSingleSourceDAG(rng, 2+rng.Intn(25))
		reach := g.Reach()
		co := g.CoReach()
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				if reach[u].Contains(v) != co[v].Contains(u) {
					t.Fatalf("trial %d: reach(%d,%d) mismatch with coreach", trial, u, v)
				}
			}
		}
	}
}

func TestSiblings(t *testing.T) {
	g := diamond(t, 1, 1, 1, 1)
	sib := g.Siblings()
	if got := sib[1].Indices(); !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("Siblings(1) = %v, want {2}", got)
	}
	if got := sib[0].Indices(); len(got) != 0 {
		t.Errorf("Siblings(0) = %v, want empty", got)
	}
}

func TestParallelDiamond(t *testing.T) {
	g := diamond(t, 1, 1, 1, 1)
	par := g.Parallel()
	if got := par[1].Indices(); !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("Par(1) = %v, want {2}", got)
	}
	for _, v := range []int{0, 3} {
		if !par[v].Empty() {
			t.Errorf("Par(%d) = %v, want empty", v, par[v])
		}
	}
}

// TestAlgorithm1PaperWalkthrough reproduces the worked example of
// Section V-A1: for the τ1 graph of Figure 1,
// Par(v1,3) = {v1,2, v1,4, v1,5, v1,7} and Par(v1,7) ⊇ {v1,2, v1,3, v1,6}.
func TestAlgorithm1PaperWalkthrough(t *testing.T) {
	var b Builder
	v := make([]int, 8)
	for i := range v {
		v[i] = b.AddNode(int64(i + 1)) // WCETs irrelevant here
	}
	for _, e := range [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 5}, {2, 5}, {3, 6}, {4, 6}, {5, 7}, {6, 7}} {
		b.AddEdge(v[e[0]], v[e[1]])
	}
	g := b.MustBuild()
	par := g.Algorithm1Parallel()
	// Node v1,3 is index 2; expected parallel {v1,2, v1,4, v1,5, v1,7} =
	// indices {1, 3, 4, 6}.
	if got := par[2].Indices(); !reflect.DeepEqual(got, []int{1, 3, 4, 6}) {
		t.Errorf("Par(v1,3) = %v, want [1 3 4 6]", got)
	}
	for _, want := range []int{1, 2, 5} { // v1,2, v1,3, v1,6
		if !par[6].Contains(want) {
			t.Errorf("Par(v1,7) missing index %d", want)
		}
	}
	// And the exact definition must agree on this single-source DAG.
	exact := g.Parallel()
	for i := range par {
		if !par[i].Equal(exact[i]) {
			t.Errorf("node %d: Algorithm1 %v != exact %v", i, par[i], exact[i])
		}
	}
}

// randomSingleSourceDAG builds a connected DAG with one source: every node
// other than node 0 gets at least one predecessor among earlier nodes.
func randomSingleSourceDAG(rng *rand.Rand, n int) *Graph {
	var b Builder
	for i := 0; i < n; i++ {
		b.AddNode(int64(1 + rng.Intn(100)))
	}
	for v := 1; v < n; v++ {
		p := rng.Intn(v)
		b.AddEdge(p, v)
		for u := 0; u < v; u++ {
			if u != p && rng.Float64() < 0.2 {
				b.AddEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}

// randomMultiSourceDAG may leave nodes without predecessors.
func randomMultiSourceDAG(rng *rand.Rand, n int) *Graph {
	var b Builder
	for i := 0; i < n; i++ {
		b.AddNode(int64(1 + rng.Intn(100)))
	}
	for v := 1; v < n; v++ {
		for u := 0; u < v; u++ {
			if rng.Float64() < 0.15 {
				b.AddEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}

// TestAlgorithm1MatchesExactOnSingleSource is the key structural property:
// on single-source DAGs (the population of the paper's generator),
// Algorithm 1 computes exactly the mutual-non-reachability relation.
func TestAlgorithm1MatchesExactOnSingleSource(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		g := randomSingleSourceDAG(rng, 1+rng.Intn(28))
		a1 := g.Algorithm1Parallel()
		exact := g.Parallel()
		for v := 0; v < g.N(); v++ {
			if !a1[v].Equal(exact[v]) {
				t.Fatalf("trial %d node %d: Algorithm1 %v != exact %v\nDOT:\n%s",
					trial, v, a1[v], exact[v], g.DOT("g"))
			}
		}
	}
}

// TestAlgorithm1UnderApproximatesOnMultiSource documents the multi-source
// limitation: Algorithm 1 never *over*-approximates, and there exist
// multi-source DAGs where it strictly under-approximates (two disconnected
// chains), which would make blocking bounds unsound — hence the exact
// Parallel is the production path.
func TestAlgorithm1UnderApproximatesOnMultiSource(t *testing.T) {
	var b Builder
	a := b.AddNode(1)
	c := b.AddNode(1)
	d := b.AddNode(1)
	b.AddEdge(a, c)
	_ = d // disconnected node
	g := b.MustBuild()
	a1 := g.Algorithm1Parallel()
	exact := g.Parallel()
	if !exact[d].Contains(a) || !exact[d].Contains(c) {
		t.Fatal("exact Parallel must see the disconnected node as parallel")
	}
	if !a1[d].Empty() {
		t.Errorf("Algorithm1 Par(disconnected) = %v, expected empty (documented gap)", a1[d])
	}

	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		g := randomMultiSourceDAG(rng, 1+rng.Intn(25))
		a1 := g.Algorithm1Parallel()
		exact := g.Parallel()
		for v := 0; v < g.N(); v++ {
			if !a1[v].SubsetOf(exact[v]) {
				t.Fatalf("trial %d node %d: Algorithm1 over-approximates: %v vs %v",
					trial, v, a1[v], exact[v])
			}
		}
	}
}

func TestParallelIsSymmetricAndIrreflexive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		g := randomMultiSourceDAG(rng, 1+rng.Intn(24))
		par := g.Parallel()
		for u := 0; u < g.N(); u++ {
			if par[u].Contains(u) {
				t.Fatalf("Par(%d) contains itself", u)
			}
			for v := 0; v < g.N(); v++ {
				if par[u].Contains(v) != par[v].Contains(u) {
					t.Fatalf("parallel relation asymmetric at (%d,%d)", u, v)
				}
			}
		}
	}
}

func TestIsParallelMatrixMatchesParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := randomSingleSourceDAG(rng, 15)
	m := g.IsParallelMatrix()
	par := g.Parallel()
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if m[u][v] != par[u].Contains(v) {
				t.Fatalf("matrix mismatch at (%d,%d)", u, v)
			}
		}
	}
}

func TestWidthDiamond(t *testing.T) {
	g := diamond(t, 1, 1, 1, 1)
	if got := g.Width(); got != 2 {
		t.Errorf("Width = %d, want 2", got)
	}
}

func TestWidthChainAndStar(t *testing.T) {
	var b Builder
	n0 := b.AddNode(1)
	n1 := b.AddNode(1)
	n2 := b.AddNode(1)
	b.AddEdge(n0, n1)
	b.AddEdge(n1, n2)
	chain := b.MustBuild()
	if got := chain.Width(); got != 1 {
		t.Errorf("chain Width = %d, want 1", got)
	}

	var s Builder
	root := s.AddNode(1)
	for i := 0; i < 5; i++ {
		leaf := s.AddNode(1)
		s.AddEdge(root, leaf)
	}
	star := s.MustBuild()
	if got := star.Width(); got != 5 {
		t.Errorf("star Width = %d, want 5", got)
	}
}

// bruteWidth computes the maximum antichain by subset enumeration.
func bruteWidth(g *Graph) int {
	n := g.N()
	reach := g.Reach()
	best := 0
	for mask := 1; mask < 1<<uint(n); mask++ {
		var nodes []int
		for v := 0; v < n; v++ {
			if mask&(1<<uint(v)) != 0 {
				nodes = append(nodes, v)
			}
		}
		ok := true
		for i := 0; i < len(nodes) && ok; i++ {
			for j := i + 1; j < len(nodes) && ok; j++ {
				u, v := nodes[i], nodes[j]
				if reach[u].Contains(v) || reach[v].Contains(u) {
					ok = false
				}
			}
		}
		if ok && len(nodes) > best {
			best = len(nodes)
		}
	}
	return best
}

func TestWidthMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 150; trial++ {
		g := randomMultiSourceDAG(rng, 1+rng.Intn(10))
		if got, want := g.Width(), bruteWidth(g); got != want {
			t.Fatalf("trial %d: Width = %d, brute force = %d\n%s", trial, got, want, g.DOT("g"))
		}
	}
}

func TestMaxAntichainIsValidAndMaximum(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 150; trial++ {
		g := randomMultiSourceDAG(rng, 1+rng.Intn(12))
		ac := g.MaxAntichain()
		if len(ac) != g.Width() {
			t.Fatalf("trial %d: antichain size %d != width %d", trial, len(ac), g.Width())
		}
		reach := g.Reach()
		for i := 0; i < len(ac); i++ {
			for j := i + 1; j < len(ac); j++ {
				u, v := ac[i], ac[j]
				if reach[u].Contains(v) || reach[v].Contains(u) {
					t.Fatalf("trial %d: antichain %v not an antichain (%d,%d ordered)", trial, ac, u, v)
				}
			}
		}
		if !sort.IntsAreSorted(ac) {
			t.Fatalf("antichain %v not sorted", ac)
		}
	}
}

func TestSortedWCETsAndMax(t *testing.T) {
	g := diamond(t, 5, 2, 9, 1)
	if got := g.SortedWCETs(); !reflect.DeepEqual(got, []int64{9, 5, 2, 1}) {
		t.Errorf("SortedWCETs = %v", got)
	}
	if got := g.MaxWCET(); got != 9 {
		t.Errorf("MaxWCET = %d, want 9", got)
	}
}

func TestNamesAndDOT(t *testing.T) {
	var b Builder
	x := b.AddNamedNode("entry", 3)
	y := b.AddNode(4)
	b.AddEdge(x, y)
	g := b.MustBuild()
	if got := g.Name(x); got != "entry" {
		t.Errorf("Name(x) = %q", got)
	}
	if got := g.Name(y); got != "v2" {
		t.Errorf("Name(y) = %q, want v2 (1-based default)", got)
	}
	dot := g.DOT("task")
	for _, want := range []string{"digraph \"task\"", "entry (3)", "v2 (4)", "n0 -> n1"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestEdgesAndHasEdge(t *testing.T) {
	g := diamond(t, 1, 1, 1, 1)
	want := [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}}
	if got := g.Edges(); !reflect.DeepEqual(got, want) {
		t.Errorf("Edges = %v, want %v", got, want)
	}
	if g.NumEdges() != 4 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) || g.HasEdge(0, 3) {
		t.Error("HasEdge gave wrong answers")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := diamond(t, 1, 2, 3, 4)
	c := g.Clone()
	if !reflect.DeepEqual(g.WCETs(), c.WCETs()) {
		t.Fatal("clone differs")
	}
	c.wcet[0] = 99
	if g.wcet[0] == 99 {
		t.Error("clone shares WCET storage")
	}
	c.succ[0][0] = 3
	if g.succ[0][0] == 3 {
		t.Error("clone shares adjacency storage")
	}
}

func TestWCETsReturnsCopy(t *testing.T) {
	g := diamond(t, 1, 2, 3, 4)
	w := g.WCETs()
	w[0] = 50
	if g.WCET(0) == 50 {
		t.Error("WCETs exposes internal storage")
	}
}

func TestLongestPathAtMostVolume(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 100; trial++ {
		g := randomSingleSourceDAG(rng, 1+rng.Intn(30))
		l, vol := g.LongestPath(), g.Volume()
		if l > vol {
			t.Fatalf("L %d > vol %d", l, vol)
		}
		if l < g.MaxWCET() {
			t.Fatalf("L %d < max node %d", l, g.MaxWCET())
		}
		if g.Width() == 1 && l != vol {
			t.Fatalf("sequential DAG must have L == vol (got %d, %d)", l, vol)
		}
	}
}

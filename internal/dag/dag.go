// Package dag implements the directed-acyclic-graph machinery underlying
// the limited-preemption response-time analysis of Serrano et al.
// (DATE 2016).
//
// A Graph models one sporadic DAG task: nodes are non-preemptive regions
// (NPRs, "task parts" in OpenMP nomenclature) labelled with their WCET,
// and edges are precedence constraints. The package provides the
// structural quantities the analysis needs — longest path L, volume
// vol(G), topological order, transitive successor/predecessor sets,
// sibling sets — together with the two ways of deriving, for every node,
// the set of nodes that may execute in parallel with it:
//
//   - Parallel: the exact definition (two nodes are parallel iff neither
//     is reachable from the other), which is what the analysis must use to
//     stay sound on arbitrary DAGs; and
//   - Algorithm1Parallel: a verbatim implementation of Algorithm 1 of the
//     paper, which matches Parallel on every single-source DAG (the only
//     kind the paper's generator emits) but under-approximates on DAGs
//     with several sources. Tests pin both behaviours.
package dag

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/bitset"
)

// Graph is an immutable directed acyclic graph of non-preemptive regions.
// Build one with a Builder. Node indices run from 0 to N()-1; in the
// paper's notation node v_{i,j} of task τ_i is index j-1.
//
// Because a Graph never changes after Build, every derived quantity is
// a pure function of it and is memoized: the cheap O(V+E) scalars
// (volume, longest path) are computed once at Build time, the heavier
// structures (sorted WCETs, reachability and parallelism bitsets, the
// content fingerprint) lazily on first use, concurrency-safely. The
// memos live and die with the Graph, so analyses that revisit a graph —
// every fixed-point iteration, every suffix of a priority ordering,
// every method of a comparison sweep — pay for each quantity once.
type Graph struct {
	wcet  []int64
	succ  [][]int // direct successors, each sorted ascending
	pred  [][]int // direct predecessors, each sorted ascending
	topo  []int   // one fixed topological order
	names []string

	volume  int64 // Σ wcet, fixed at Build
	longest int64 // longest-path length L, fixed at Build

	sortedOnce sync.Once
	sorted     []int64 // WCETs, non-increasing

	reachOnce sync.Once
	reach     []*bitset.Set // SUCC(v) per node

	parOnce sync.Once
	par     []*bitset.Set // Par(v) per node (exact definition)

	parMatOnce sync.Once
	parMat     [][]bool // IsPar matrix over par

	fpOnce sync.Once
	fp     string // sha256 over canonical content
}

// Builder accumulates nodes and edges and validates them into a Graph.
// The zero value is ready to use.
type Builder struct {
	wcet  []int64
	names []string
	edges [][2]int
}

// AddNode appends a node with the given worst-case execution time and
// returns its index. WCETs must be positive; Build reports violations.
func (b *Builder) AddNode(wcet int64) int {
	b.wcet = append(b.wcet, wcet)
	b.names = append(b.names, "")
	return len(b.wcet) - 1
}

// AddNamedNode appends a node with an explicit display name.
func (b *Builder) AddNamedNode(name string, wcet int64) int {
	i := b.AddNode(wcet)
	b.names[i] = name
	return i
}

// AddEdge records a precedence constraint from node u to node v.
func (b *Builder) AddEdge(u, v int) {
	b.edges = append(b.edges, [2]int{u, v})
}

// Build validates the accumulated nodes and edges and returns the Graph.
// It reports an error if the builder is empty, a WCET is non-positive, an
// edge endpoint is out of range, an edge is duplicated or a self-loop, or
// the edge set contains a cycle.
func (b *Builder) Build() (*Graph, error) {
	n := len(b.wcet)
	if n == 0 {
		return nil, fmt.Errorf("dag: graph must have at least one node")
	}
	for i, c := range b.wcet {
		if c <= 0 {
			return nil, fmt.Errorf("dag: node %d has non-positive WCET %d", i, c)
		}
	}
	succ := make([][]int, n)
	pred := make([][]int, n)
	seen := make(map[[2]int]bool, len(b.edges))
	for _, e := range b.edges {
		u, v := e[0], e[1]
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, fmt.Errorf("dag: edge (%d,%d) out of range [0,%d)", u, v, n)
		}
		if u == v {
			return nil, fmt.Errorf("dag: self-loop on node %d", u)
		}
		if seen[e] {
			return nil, fmt.Errorf("dag: duplicate edge (%d,%d)", u, v)
		}
		seen[e] = true
		succ[u] = append(succ[u], v)
		pred[v] = append(pred[v], u)
	}
	for i := range succ {
		sort.Ints(succ[i])
		sort.Ints(pred[i])
	}
	g := &Graph{wcet: append([]int64(nil), b.wcet...), succ: succ, pred: pred,
		names: append([]string(nil), b.names...)}
	topo, err := g.computeTopo()
	if err != nil {
		return nil, err
	}
	g.topo = topo
	for _, c := range g.wcet {
		g.volume += c
	}
	g.longest = g.computeLongestPath()
	return g, nil
}

// MustBuild is Build that panics on error, for fixtures and tests.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// computeTopo returns a deterministic topological order (Kahn's algorithm
// with smallest-index tie-breaking) or an error if the graph is cyclic.
func (g *Graph) computeTopo() ([]int, error) {
	n := g.N()
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		indeg[v] = len(g.pred[v])
	}
	// Min-heap-free variant: scan for the smallest ready index. n ≤ a few
	// dozen in this domain, so O(n²) keeps the code obvious.
	done := make([]bool, n)
	order := make([]int, 0, n)
	for len(order) < n {
		next := -1
		for v := 0; v < n; v++ {
			if !done[v] && indeg[v] == 0 {
				next = v
				break
			}
		}
		if next == -1 {
			return nil, fmt.Errorf("dag: cycle detected")
		}
		done[next] = true
		order = append(order, next)
		for _, w := range g.succ[next] {
			indeg[w]--
		}
	}
	return order, nil
}

// N returns the number of nodes (NPRs). In the paper's notation this is
// q_k + 1.
func (g *Graph) N() int { return len(g.wcet) }

// PreemptionPoints returns q_k = |V_k| - 1, the number of potential
// preemption points of the task.
func (g *Graph) PreemptionPoints() int { return g.N() - 1 }

// WCET returns the worst-case execution time C of node v.
func (g *Graph) WCET(v int) int64 { return g.wcet[v] }

// WCETs returns a copy of all node WCETs indexed by node.
func (g *Graph) WCETs() []int64 { return append([]int64(nil), g.wcet...) }

// Name returns the display name of node v, or "v<i+1>" if none was set
// (mirroring the paper's v_{i,j} labels, which are 1-based).
func (g *Graph) Name(v int) string {
	if g.names[v] != "" {
		return g.names[v]
	}
	return fmt.Sprintf("v%d", v+1)
}

// Successors returns the direct successors of v in ascending order. The
// returned slice is shared; callers must not modify it.
func (g *Graph) Successors(v int) []int { return g.succ[v] }

// Predecessors returns the direct predecessors of v in ascending order.
// The returned slice is shared; callers must not modify it.
func (g *Graph) Predecessors(v int) []int { return g.pred[v] }

// HasEdge reports whether the direct edge (u,v) exists.
func (g *Graph) HasEdge(u, v int) bool {
	s := g.succ[u]
	i := sort.SearchInts(s, v)
	return i < len(s) && s[i] == v
}

// Edges returns all direct edges in deterministic (source, target) order.
func (g *Graph) Edges() [][2]int {
	var out [][2]int
	for u := 0; u < g.N(); u++ {
		for _, v := range g.succ[u] {
			out = append(out, [2]int{u, v})
		}
	}
	return out
}

// NumEdges returns the number of direct edges.
func (g *Graph) NumEdges() int {
	n := 0
	for _, s := range g.succ {
		n += len(s)
	}
	return n
}

// TopologicalOrder returns a topological order of the nodes. The returned
// slice is shared; callers must not modify it.
func (g *Graph) TopologicalOrder() []int { return g.topo }

// Sources returns the nodes with no predecessors, ascending.
func (g *Graph) Sources() []int {
	var out []int
	for v := 0; v < g.N(); v++ {
		if len(g.pred[v]) == 0 {
			out = append(out, v)
		}
	}
	return out
}

// Sinks returns the nodes with no successors, ascending.
func (g *Graph) Sinks() []int {
	var out []int
	for v := 0; v < g.N(); v++ {
		if len(g.succ[v]) == 0 {
			out = append(out, v)
		}
	}
	return out
}

// Volume returns vol(G): the sum of all node WCETs, i.e. the WCET of the
// task on a dedicated single core. Memoized at Build time; O(1).
func (g *Graph) Volume() int64 { return g.volume }

// LongestPath returns L: the maximum, over all paths, of the summed node
// WCETs — the minimum time the task needs on infinitely many cores.
// Memoized at Build time; O(1).
func (g *Graph) LongestPath() int64 { return g.longest }

// computeLongestPath is the Build-time longest-path DP.
func (g *Graph) computeLongestPath() int64 {
	best := make([]int64, g.N())
	var l int64
	for _, v := range g.topo {
		best[v] = g.wcet[v]
		for _, u := range g.pred[v] {
			if best[u]+g.wcet[v] > best[v] {
				best[v] = best[u] + g.wcet[v]
			}
		}
		if best[v] > l {
			l = best[v]
		}
	}
	return l
}

// CriticalPath returns one longest path as a node sequence from a source
// to a sink, deterministically (smallest-index tie-break).
func (g *Graph) CriticalPath() []int {
	n := g.N()
	best := make([]int64, n)
	from := make([]int, n)
	for i := range from {
		from[i] = -1
	}
	end, endLen := -1, int64(-1)
	for _, v := range g.topo {
		best[v] = g.wcet[v]
		for _, u := range g.pred[v] {
			if best[u]+g.wcet[v] > best[v] {
				best[v] = best[u] + g.wcet[v]
				from[v] = u
			}
		}
		if best[v] > endLen {
			endLen = best[v]
			end = v
		}
	}
	var rev []int
	for v := end; v != -1; v = from[v] {
		rev = append(rev, v)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Reach returns, for every node v, the set SUCC(v) of nodes reachable
// from v by one or more edges (v itself excluded). The result is
// memoized on the graph and shared; callers must not modify the sets.
func (g *Graph) Reach() []*bitset.Set {
	g.reachOnce.Do(func() {
		n := g.N()
		out := bitset.Slab(n, n)
		// Reverse topological order: successors' reach is complete first.
		for i := n - 1; i >= 0; i-- {
			v := g.topo[i]
			for _, w := range g.succ[v] {
				out[v].Add(w)
				out[v].UnionWith(out[w])
			}
		}
		g.reach = out
	})
	return g.reach
}

// CoReach returns, for every node v, the set PRED(v) of nodes from which
// v is reachable (v itself excluded).
func (g *Graph) CoReach() []*bitset.Set {
	n := g.N()
	out := bitset.Slab(n, n)
	for _, v := range g.topo {
		for _, u := range g.pred[v] {
			out[v].Add(u)
			out[v].UnionWith(out[u])
		}
	}
	return out
}

// Siblings returns, for every node v, the set SIBLING(v) of nodes (other
// than v) that share at least one direct predecessor with v. This is one
// of the three inputs of Algorithm 1.
func (g *Graph) Siblings() []*bitset.Set {
	n := g.N()
	out := bitset.Slab(n, n)
	for u := 0; u < n; u++ {
		children := g.succ[u]
		for _, a := range children {
			for _, b := range children {
				if a != b {
					out[a].Add(b)
				}
			}
		}
	}
	return out
}

// Parallel returns, for every node v, the exact set Par(v) of nodes that
// can execute in parallel with v: the nodes u ≠ v such that u is not
// reachable from v and v is not reachable from u. This is the definition
// the blocking analysis relies on; it is sound for arbitrary DAGs. The
// result is memoized on the graph and shared; callers must not modify
// the sets.
func (g *Graph) Parallel() []*bitset.Set {
	g.parOnce.Do(func() {
		n := g.N()
		succ := g.Reach()
		out := bitset.Slab(n, n)
		for v := 0; v < n; v++ {
			s := out[v]
			for u := 0; u < n; u++ {
				if u != v && !succ[v].Contains(u) && !succ[u].Contains(v) {
					s.Add(u)
				}
			}
		}
		g.par = out
	})
	return g.par
}

// Algorithm1Parallel is a verbatim implementation of Algorithm 1 of
// Serrano et al. (DATE 2016): it derives Par(v) from the SIBLING, SUCC
// and PRED sets in two passes, the second in topological order.
//
// On single-source DAGs — the only shape the paper's generator produces —
// the result equals Parallel. On multi-source DAGs Algorithm 1 misses
// pairs whose only "common ancestor" would be a virtual root (e.g. two
// disconnected chains), so the exact Parallel must be preferred for
// soundness; the discrepancy is documented and tested.
func (g *Graph) Algorithm1Parallel() []*bitset.Set {
	n := g.N()
	succ := g.Reach()
	pred := g.CoReach()
	sib := g.Siblings()
	par := bitset.Slab(n, n)
	// First loop (lines 2-10): unconnected siblings and their successors.
	for vj := 0; vj < n; vj++ {
		sib[vj].ForEach(func(vl int) bool {
			if !succ[vj].Contains(vl) && !succ[vl].Contains(vj) {
				// Succ ← SUCC(v_l) \ SUCC(v_j); Par(v_j) ∪= {v_l} ∪ Succ.
				s := succ[vl].Clone()
				s.DifferenceWith(succ[vj])
				par[vj].Add(vl)
				par[vj].UnionWith(s)
			}
			return true
		})
	}
	// Second loop (lines 11-16): inherit from predecessors in topological
	// order, discarding own ancestors.
	for _, vj := range g.topo {
		for _, vl := range g.pred[vj] {
			p := par[vl].Clone()
			p.DifferenceWith(pred[vj])
			par[vj].UnionWith(p)
		}
	}
	// A node is never parallel with itself or with anything the first
	// loop accidentally added that is ordered with it. The verbatim
	// algorithm can momentarily include ancestors through the sibling
	// successor union; scrub exactly as the paper's set algebra implies.
	for v := 0; v < n; v++ {
		par[v].Remove(v)
	}
	return par
}

// IsParallelMatrix returns the symmetric boolean matrix IsPar of the
// paper's first ILP: IsPar[j][k] is true iff nodes j and k can execute in
// parallel (exact reachability definition). The result is memoized on
// the graph and shared; callers must not modify it.
func (g *Graph) IsParallelMatrix() [][]bool {
	g.parMatOnce.Do(func() {
		n := g.N()
		par := g.Parallel()
		m := make([][]bool, n)
		for j := 0; j < n; j++ {
			m[j] = make([]bool, n)
			par[j].ForEach(func(k int) bool {
				m[j][k] = true
				return true
			})
		}
		g.parMat = m
	})
	return g.parMat
}

// Width returns the maximum number of nodes that can execute in parallel:
// the maximum antichain of the precedence partial order. By Dilworth's
// theorem this equals n minus the maximum matching of the bipartite graph
// over the transitive closure, which is what this method computes
// (Hopcroft-Karp-free augmenting paths; n is small in this domain).
func (g *Graph) Width() int {
	n := g.N()
	reach := g.Reach()
	// Bipartite graph: left copy u — right copy v iff u precedes v.
	matchL := make([]int, n) // left u -> right v or -1
	matchR := make([]int, n) // right v -> left u or -1
	for i := range matchL {
		matchL[i] = -1
		matchR[i] = -1
	}
	var try func(u int, seen []bool) bool
	try = func(u int, seen []bool) bool {
		found := false
		reach[u].ForEach(func(v int) bool {
			if seen[v] {
				return true
			}
			seen[v] = true
			if matchR[v] == -1 || try(matchR[v], seen) {
				matchL[u] = v
				matchR[v] = u
				found = true
				return false
			}
			return true
		})
		return found
	}
	matching := 0
	for u := 0; u < n; u++ {
		seen := make([]bool, n)
		if try(u, seen) {
			matching++
		}
	}
	return n - matching
}

// MaxAntichain returns one maximum antichain (a largest set of mutually
// parallel nodes), ascending. Its length equals Width. It is derived from
// the minimum chain cover via the König construction.
func (g *Graph) MaxAntichain() []int {
	n := g.N()
	reach := g.Reach()
	matchL := make([]int, n)
	matchR := make([]int, n)
	for i := range matchL {
		matchL[i] = -1
		matchR[i] = -1
	}
	var try func(u int, seen []bool) bool
	try = func(u int, seen []bool) bool {
		found := false
		reach[u].ForEach(func(v int) bool {
			if seen[v] {
				return true
			}
			seen[v] = true
			if matchR[v] == -1 || try(matchR[v], seen) {
				matchL[u] = v
				matchR[v] = u
				found = true
				return false
			}
			return true
		})
		return found
	}
	for u := 0; u < n; u++ {
		seen := make([]bool, n)
		try(u, seen)
	}
	// König: minimum vertex cover from unmatched-left alternating
	// reachability; antichain = nodes not in the cover, mapped back.
	visitedL := make([]bool, n)
	visitedR := make([]bool, n)
	var alt func(u int)
	alt = func(u int) {
		visitedL[u] = true
		reach[u].ForEach(func(v int) bool {
			if !visitedR[v] {
				visitedR[v] = true
				if matchR[v] != -1 && !visitedL[matchR[v]] {
					alt(matchR[v])
				}
			}
			return true
		})
	}
	for u := 0; u < n; u++ {
		if matchL[u] == -1 {
			alt(u)
		}
	}
	// Cover = (left not visited) ∪ (right visited). A node i is in the
	// antichain iff left-i not in cover and right-i not in cover.
	var out []int
	for i := 0; i < n; i++ {
		leftInCover := !visitedL[i]
		rightInCover := visitedR[i]
		if !leftInCover && !rightInCover {
			out = append(out, i)
		}
	}
	return out
}

// SortedWCETs returns the node WCETs in non-increasing order — the
// top-NPR list of the Equation (5) blocking bound. The result is
// memoized on the graph and shared; callers must not modify it.
func (g *Graph) SortedWCETs() []int64 {
	g.sortedOnce.Do(func() {
		c := g.WCETs()
		sort.Slice(c, func(i, j int) bool { return c[i] > c[j] })
		g.sorted = c
	})
	return g.sorted
}

// Fingerprint returns a collision-resistant content digest of the graph:
// the SHA-256 of its canonical form (node count, node WCETs, and the
// deterministic edge list; display names are excluded because they never
// affect analysis). Structurally identical graphs — however and wherever
// they were built — share one fingerprint, which makes it the O(1)
// content-addressing key of the analysis cache. Memoized on the graph.
func (g *Graph) Fingerprint() string {
	g.fpOnce.Do(func() {
		buf := make([]byte, 0, 16*g.N())
		buf = strconv.AppendInt(buf, int64(g.N()), 10)
		buf = append(buf, ';')
		for _, c := range g.wcet {
			buf = strconv.AppendInt(buf, c, 10)
			buf = append(buf, ',')
		}
		buf = append(buf, ';')
		for u := 0; u < g.N(); u++ {
			for _, v := range g.succ[u] {
				buf = strconv.AppendInt(buf, int64(u), 10)
				buf = append(buf, '>')
				buf = strconv.AppendInt(buf, int64(v), 10)
				buf = append(buf, ',')
			}
		}
		sum := sha256.Sum256(buf)
		g.fp = string(sum[:])
	})
	return g.fp
}

// MaxWCET returns the largest node WCET — the longest NPR of the task.
func (g *Graph) MaxWCET() int64 {
	var m int64
	for _, c := range g.wcet {
		if c > m {
			m = c
		}
	}
	return m
}

// DOT renders the graph in Graphviz DOT syntax, labelling each node with
// its name and WCET, for the examples and command-line tools.
func (g *Graph) DOT(graphName string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", graphName)
	b.WriteString("  rankdir=TB;\n  node [shape=ellipse];\n")
	for v := 0; v < g.N(); v++ {
		fmt.Fprintf(&b, "  n%d [label=\"%s (%d)\"];\n", v, g.Name(v), g.wcet[v])
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  n%d -> n%d;\n", e[0], e[1])
	}
	b.WriteString("}\n")
	return b.String()
}

// Clone returns a deep copy of the graph. The Build-time scalars carry
// over; the lazy memos are recomputed on demand by the copy.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		wcet:    append([]int64(nil), g.wcet...),
		succ:    make([][]int, g.N()),
		pred:    make([][]int, g.N()),
		topo:    append([]int(nil), g.topo...),
		names:   append([]string(nil), g.names...),
		volume:  g.volume,
		longest: g.longest,
	}
	for i := range g.succ {
		c.succ[i] = append([]int(nil), g.succ[i]...)
		c.pred[i] = append([]int(nil), g.pred[i]...)
	}
	return c
}

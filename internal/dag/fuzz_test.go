package dag

import "testing"

// FuzzBuilder drives the builder with an arbitrary byte script: the
// builder must either reject the graph or produce one whose invariants
// hold (valid topological order, L ≤ vol, symmetric parallel relation).
func FuzzBuilder(f *testing.F) {
	f.Add([]byte{3, 0, 1, 1, 2})
	f.Add([]byte{1})
	f.Add([]byte{5, 0, 1, 1, 2, 2, 3, 3, 4, 0, 4})
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) == 0 {
			return
		}
		var b Builder
		n := int(script[0]%16) + 1
		for i := 0; i < n; i++ {
			b.AddNode(int64(i%7) + 1)
		}
		rest := script[1:]
		for i := 0; i+1 < len(rest); i += 2 {
			// Deliberately unfiltered: may produce self-loops, cycles,
			// duplicates or out-of-range endpoints — Build must catch
			// every such case instead of panicking.
			b.AddEdge(int(rest[i]%32)-8, int(rest[i+1]%32)-8)
		}
		g, err := b.Build()
		if err != nil {
			return
		}
		if g.N() != n {
			t.Fatalf("node count changed: %d vs %d", g.N(), n)
		}
		pos := make([]int, g.N())
		for i, v := range g.TopologicalOrder() {
			pos[v] = i
		}
		for _, e := range g.Edges() {
			if pos[e[0]] >= pos[e[1]] {
				t.Fatalf("edge %v violates topological order", e)
			}
		}
		if l, vol := g.LongestPath(), g.Volume(); l > vol || l < g.MaxWCET() {
			t.Fatalf("L=%d outside [maxC=%d, vol=%d]", l, g.MaxWCET(), vol)
		}
		par := g.Parallel()
		for u := 0; u < g.N(); u++ {
			if par[u].Contains(u) {
				t.Fatalf("node %d parallel with itself", u)
			}
			par[u].ForEach(func(v int) bool {
				if !par[v].Contains(u) {
					t.Fatalf("parallel relation asymmetric at (%d,%d)", u, v)
				}
				return true
			})
		}
	})
}

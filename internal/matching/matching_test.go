package matching

import (
	"math/rand"
	"testing"
)

// bruteMax tries every injective row→column mapping (columns may exceed
// rows; surplus rows allowed onto a virtual 0 column when allowDummy).
func bruteMax(w [][]int64, allowDummy bool) int64 {
	r := len(w)
	if r == 0 {
		return 0
	}
	c := len(w[0])
	usedCol := make([]bool, c)
	best := int64(-1 << 62)
	var rec func(row int, sum int64)
	rec = func(row int, sum int64) {
		if row == r {
			if sum > best {
				best = sum
			}
			return
		}
		for j := 0; j < c; j++ {
			if !usedCol[j] {
				usedCol[j] = true
				rec(row+1, sum+w[row][j])
				usedCol[j] = false
			}
		}
		if allowDummy {
			rec(row+1, sum)
		}
	}
	rec(0, 0)
	return best
}

func randMatrix(rng *rand.Rand, r, c int, lo, hi int64) [][]int64 {
	w := make([][]int64, r)
	for i := range w {
		w[i] = make([]int64, c)
		for j := range w[i] {
			w[i][j] = lo + rng.Int63n(hi-lo+1)
		}
	}
	return w
}

func TestMinCostSmallKnown(t *testing.T) {
	a := [][]int64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	cost, assign := MinCostAssignment(a)
	if cost != 5 { // 1 + 2 + 2
		t.Fatalf("cost = %d, want 5", cost)
	}
	seen := map[int]bool{}
	var check int64
	for i, j := range assign {
		if seen[j] {
			t.Fatalf("column %d assigned twice", j)
		}
		seen[j] = true
		check += a[i][j]
	}
	if check != cost {
		t.Fatalf("assignment sums to %d, reported %d", check, cost)
	}
}

func TestMinCostRectangular(t *testing.T) {
	a := [][]int64{
		{10, 1, 10, 10},
		{10, 10, 2, 10},
	}
	cost, assign := MinCostAssignment(a)
	if cost != 3 {
		t.Fatalf("cost = %d, want 3", cost)
	}
	if assign[0] != 1 || assign[1] != 2 {
		t.Fatalf("assign = %v, want [1 2]", assign)
	}
}

func TestMinCostEmptyAndPanics(t *testing.T) {
	if cost, assign := MinCostAssignment(nil); cost != 0 || assign != nil {
		t.Fatal("empty input should be (0, nil)")
	}
	assertPanics(t, func() { MinCostAssignment([][]int64{{1}, {2}}) })      // rows > cols
	assertPanics(t, func() { MinCostAssignment([][]int64{{1, 2}, {3}}) })   // ragged
	assertPanics(t, func() { MaxWeightAssignment([][]int64{{1, 2}, {3}}) }) // ragged
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

func TestMaxWeightMatchesBruteForceSquare(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(6)
		w := randMatrix(rng, n, n, -50, 100)
		got, assign := MaxWeightAssignment(w)
		want := bruteMax(w, false)
		// With possible negative weights, leaving a row unassigned (dummy
		// column) may beat a full assignment; brute force with dummies is
		// the reference.
		wantDummy := bruteMax(w, true)
		if got != wantDummy {
			t.Fatalf("trial %d: got %d, brute(dummy) %d, brute(full) %d\n%v",
				trial, got, wantDummy, want, w)
		}
		seen := map[int]bool{}
		for _, j := range assign {
			if j == -1 {
				continue
			}
			if seen[j] {
				t.Fatalf("column %d used twice", j)
			}
			seen[j] = true
		}
	}
}

func TestMaxWeightNonNegativeEqualsFullAssignment(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		r := 1 + rng.Intn(5)
		c := r + rng.Intn(3)
		w := randMatrix(rng, r, c, 0, 100)
		got, _ := MaxWeightAssignment(w)
		if want := bruteMax(w, false); got != want {
			t.Fatalf("trial %d (%dx%d): got %d, want %d\n%v", trial, r, c, got, want, w)
		}
	}
}

// TestMaxWeightMoreRowsThanColumns exercises the dummy-column padding:
// surplus rows end up at -1 with weight 0.
func TestMaxWeightMoreRowsThanColumns(t *testing.T) {
	w := [][]int64{
		{5},
		{9},
		{7},
	}
	got, assign := MaxWeightAssignment(w)
	if got != 9 {
		t.Fatalf("got %d, want 9", got)
	}
	nAssigned := 0
	for i, j := range assign {
		if j == 0 {
			nAssigned++
			if w[i][0] != 9 {
				t.Fatalf("wrong row assigned: %v", assign)
			}
		} else if j != -1 {
			t.Fatalf("unexpected column %d", j)
		}
	}
	if nAssigned != 1 {
		t.Fatalf("assign = %v, want exactly one real assignment", assign)
	}
}

func TestMaxWeightScenarioShape(t *testing.T) {
	// Emulates the paper's s3 = {2,1,1} scenario over Table I:
	// rows are parts (sizes 2,1,1), columns tasks; w[part][task] = µ_task[size].
	mu := [][]int64{ // µ1..µ4 from Table I
		{3, 5, 6, 5},
		{4, 7, 0, 0},
		{6, 7, 9, 11},
		{5, 9, 12, 0},
	}
	parts := []int{2, 1, 1}
	w := make([][]int64, len(parts))
	for p, size := range parts {
		w[p] = make([]int64, len(mu))
		for i := range mu {
			w[p][i] = mu[i][size-1]
		}
	}
	got, _ := MaxWeightAssignment(w)
	if got != 19 { // µ4[2] + µ3[1] + µ2[1] = 9 + 6 + 4
		t.Fatalf("ρ[s3] = %d, want 19 (Table III)", got)
	}
}

func TestMaxBipartiteKnown(t *testing.T) {
	// Perfect matching on a 3x3 cycle-ish graph.
	adj := [][]int{{0, 1}, {1, 2}, {0}}
	size, matchL := MaxBipartite(3, 3, adj)
	if size != 3 {
		t.Fatalf("size = %d, want 3", size)
	}
	if matchL[0] != 1 || matchL[1] != 2 || matchL[2] != 0 {
		t.Fatalf("matchL = %v", matchL)
	}
}

func TestMaxBipartiteNoEdges(t *testing.T) {
	size, matchL := MaxBipartite(2, 2, [][]int{{}, {}})
	if size != 0 || matchL[0] != -1 || matchL[1] != -1 {
		t.Fatalf("got (%d, %v)", size, matchL)
	}
}

// bruteBipartite enumerates subsets of edges.
func bruteBipartite(nLeft, nRight int, adj [][]int) int {
	var edges [][2]int
	for u, vs := range adj {
		for _, v := range vs {
			edges = append(edges, [2]int{u, v})
		}
	}
	best := 0
	var rec func(i int, usedL, usedR uint64, size int)
	rec = func(i int, usedL, usedR uint64, size int) {
		if size > best {
			best = size
		}
		if i == len(edges) {
			return
		}
		rec(i+1, usedL, usedR, size)
		e := edges[i]
		if usedL&(1<<uint(e[0])) == 0 && usedR&(1<<uint(e[1])) == 0 {
			rec(i+1, usedL|1<<uint(e[0]), usedR|1<<uint(e[1]), size+1)
		}
	}
	rec(0, 0, 0, 0)
	return best
}

func TestMaxBipartiteMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		nL := 1 + rng.Intn(5)
		nR := 1 + rng.Intn(5)
		adj := make([][]int, nL)
		for u := range adj {
			for v := 0; v < nR; v++ {
				if rng.Float64() < 0.4 {
					adj[u] = append(adj[u], v)
				}
			}
		}
		got, matchL := MaxBipartite(nL, nR, adj)
		if want := bruteBipartite(nL, nR, adj); got != want {
			t.Fatalf("trial %d: got %d, want %d", trial, got, want)
		}
		// Verify matchL is a valid matching consistent with the size.
		seen := map[int]bool{}
		count := 0
		for u, v := range matchL {
			if v == -1 {
				continue
			}
			count++
			if seen[v] {
				t.Fatalf("right vertex %d matched twice", v)
			}
			seen[v] = true
			found := false
			for _, x := range adj[u] {
				if x == v {
					found = true
				}
			}
			if !found {
				t.Fatalf("matched pair (%d,%d) is not an edge", u, v)
			}
		}
		if count != got {
			t.Fatalf("matchL size %d != reported %d", count, got)
		}
	}
}

func BenchmarkHungarian16x16(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	w := randMatrix(rng, 16, 16, 0, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxWeightAssignment(w)
	}
}

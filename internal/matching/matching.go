// Package matching provides exact assignment solvers.
//
// The LP-ILP analysis of Serrano et al. (DATE 2016) needs, for every
// execution scenario s_l (an integer partition of the core count m), the
// maximum-weight assignment of distinct lower-priority tasks to the parts
// of the partition, where assigning task τ_i to a part of size c yields
// weight µ_i[c] (Equation (7)). That is a rectangular assignment problem,
// solved here with the O(n³) Hungarian algorithm over int64 weights.
//
// The package also provides Kuhn's unweighted bipartite maximum matching,
// used elsewhere (e.g. Dilworth-style width computations) and as a
// cross-check in tests.
package matching

import "math"

const inf = int64(math.MaxInt64) / 4

// MinCostAssignment solves the rectangular assignment problem: given an
// r×c cost matrix a with r ≤ c, assign each row a distinct column
// minimizing the total cost. It returns the minimum cost and, for each
// row, the chosen column. It panics if r > c or the matrix is ragged.
//
// Costs may be negative; the implementation is the classic potentials
// ("Hungarian") algorithm and runs in O(r·c²).
func MinCostAssignment(a [][]int64) (int64, []int) {
	r := len(a)
	if r == 0 {
		return 0, nil
	}
	c := len(a[0])
	if r > c {
		panic("matching: more rows than columns")
	}
	for _, row := range a {
		if len(row) != c {
			panic("matching: ragged cost matrix")
		}
	}

	u := make([]int64, r+1)
	v := make([]int64, c+1)
	p := make([]int, c+1)   // p[j]: row (1-based) matched to column j; 0 = free
	way := make([]int, c+1) // alternating-path bookkeeping

	for i := 1; i <= r; i++ {
		p[0] = i
		j0 := 0
		minv := make([]int64, c+1)
		used := make([]bool, c+1)
		for j := range minv {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := -1
			for j := 1; j <= c; j++ {
				if used[j] {
					continue
				}
				cur := a[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= c; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	assign := make([]int, r)
	var cost int64
	for j := 1; j <= c; j++ {
		if p[j] != 0 {
			assign[p[j]-1] = j - 1
			cost += a[p[j]-1][j-1]
		}
	}
	return cost, assign
}

// MaxWeightAssignment maximizes the total weight of an injective partial
// assignment of rows to columns: every row either takes a distinct column
// (earning w[row][col]) or stays unassigned at weight 0. The matrix may
// be rectangular in either direction; it is padded internally with
// zero-weight dummy columns. It returns the maximum total weight and,
// for each row, the assigned column or -1 if the row stayed unassigned.
//
// Two consequences of the opt-out semantics: with non-negative weights
// and at least as many columns as rows the result coincides with the
// classic full assignment, and when there are more rows than columns the
// surplus rows simply contribute 0 — exactly what the scenario workload
// of the paper needs when there are fewer lower-priority tasks than parts
// in the partition (see DESIGN.md, "paper errata handled").
func MaxWeightAssignment(w [][]int64) (int64, []int) {
	r := len(w)
	if r == 0 {
		return 0, nil
	}
	c := len(w[0])
	width := c + r // always enough dummy columns for every row to opt out
	neg := make([][]int64, r)
	for i, row := range w {
		if len(row) != c {
			panic("matching: ragged weight matrix")
		}
		neg[i] = make([]int64, width)
		for j, x := range row {
			neg[i][j] = -x
		}
		// Columns c..width-1 stay 0: dummy columns.
	}
	cost, assign := MinCostAssignment(neg)
	for i, j := range assign {
		if j >= c {
			assign[i] = -1
		}
	}
	return -cost, assign
}

// MaxBipartite computes a maximum-cardinality matching of the bipartite
// graph with nLeft left vertices, nRight right vertices and adjacency
// adj (adj[u] lists the right neighbours of left vertex u), using Kuhn's
// augmenting-path algorithm. It returns the matching size and, for each
// left vertex, its matched right vertex or -1.
func MaxBipartite(nLeft, nRight int, adj [][]int) (int, []int) {
	matchL := make([]int, nLeft)
	matchR := make([]int, nRight)
	for i := range matchL {
		matchL[i] = -1
	}
	for i := range matchR {
		matchR[i] = -1
	}
	var try func(u int, seen []bool) bool
	try = func(u int, seen []bool) bool {
		for _, v := range adj[u] {
			if seen[v] {
				continue
			}
			seen[v] = true
			if matchR[v] == -1 || try(matchR[v], seen) {
				matchL[u] = v
				matchR[v] = u
				return true
			}
		}
		return false
	}
	size := 0
	for u := 0; u < nLeft; u++ {
		seen := make([]bool, nRight)
		if try(u, seen) {
			size++
		}
	}
	return size, matchL
}

package ilp

import "fmt"

// MuProblem builds the Section V-A2 ILP of the paper, which computes the
// worst-case workload µ_i[c]: select exactly c nodes of the task, pairwise
// able to run in parallel, maximizing total WCET.
//
// Variables: b_j for every node j (selected), followed by one auxiliary
// b_{jk} = b_j ∧ b_k for every unordered pair j < k.
//
// Constraints, following the paper with one correction:
//
//	(1) Σ_j b_j = c
//	(2) Σ_{j<k} b_{jk}·IsPar_{jk} = c(c-1)/2
//	(3) b_{jk} ≥ b_j + b_k - 1;  b_{jk} ≤ b_j;  b_{jk} ≤ b_k
//
// The paper prints constraint (2) with right-hand side c, but c mutually
// parallel nodes induce c(c-1)/2 selected pairs, not c: the printed form
// is infeasible already for c = 1 (it demands one parallel pair with a
// single selected node) and for every c ≥ 4. The corrected right-hand
// side is the evidently intended one; TestPaperConstraintErratum pins the
// difference, and the corrected encoding reproduces Table I exactly.
func MuProblem(wcets []int64, isPar [][]bool, c int) *Problem {
	n := len(wcets)
	pairIdx := func(j, k int) int { // j < k
		// Offset of pair (j,k) among pairs ordered lexicographically,
		// after the n node variables.
		return n + j*(2*n-j-1)/2 + (k - j - 1)
	}
	numPairs := n * (n - 1) / 2
	p := &Problem{NumVars: n + numPairs, Objective: make([]int64, n+numPairs)}
	for j := 0; j < n; j++ {
		p.Objective[j] = wcets[j]
	}

	card := Constraint{Name: "cardinality", Sense: EQ, RHS: int64(c)}
	for j := 0; j < n; j++ {
		card.Terms = append(card.Terms, Term{Var: j, Coeff: 1})
	}
	p.Constraints = append(p.Constraints, card)

	parallel := Constraint{
		Name:  "parallel-pairs",
		Sense: EQ,
		RHS:   int64(c * (c - 1) / 2),
	}
	for j := 0; j < n; j++ {
		for k := j + 1; k < n; k++ {
			pj := pairIdx(j, k)
			if isPar[j][k] {
				parallel.Terms = append(parallel.Terms, Term{Var: pj, Coeff: 1})
			}
			// AND-linking constraints for every pair.
			p.Constraints = append(p.Constraints,
				Constraint{
					Name:  fmt.Sprintf("and-ge-%d-%d", j, k),
					Terms: []Term{{pj, 1}, {j, -1}, {k, -1}},
					Sense: GE, RHS: -1, // b_jk - b_j - b_k ≥ -1
				},
				Constraint{
					Name:  fmt.Sprintf("and-le1-%d-%d", j, k),
					Terms: []Term{{pj, 1}, {j, -1}},
					Sense: LE, RHS: 0,
				},
				Constraint{
					Name:  fmt.Sprintf("and-le2-%d-%d", j, k),
					Terms: []Term{{pj, 1}, {k, -1}},
					Sense: LE, RHS: 0,
				},
			)
		}
	}
	p.Constraints = append(p.Constraints, parallel)
	return p
}

// MuProblemVerbatim builds the encoding exactly as printed in the paper,
// i.e. with constraint (2) demanding Σ b_{jk}·IsPar_{jk} = c. It exists
// only to document the erratum; see TestPaperConstraintErratum.
func MuProblemVerbatim(wcets []int64, isPar [][]bool, c int) *Problem {
	p := MuProblem(wcets, isPar, c)
	for i := range p.Constraints {
		if p.Constraints[i].Name == "parallel-pairs" {
			p.Constraints[i].RHS = int64(c)
		}
	}
	return p
}

// SolveMu solves the corrected µ encoding and returns µ_i[c]: the optimum
// if a feasible selection exists, else 0 (the paper's convention for
// "fewer than c nodes can run in parallel", cf. µ2[3] = 0 in Table I).
func SolveMu(wcets []int64, isPar [][]bool, c int) int64 {
	if c <= 0 || c > len(wcets) {
		return 0
	}
	sol := MuProblem(wcets, isPar, c).Solve()
	if !sol.Feasible {
		return 0
	}
	return sol.Value
}

// RhoProblem builds the Section V-B ILP of the paper, which computes the
// overall worst-case workload ρ_k[s_l] of the lower-priority tasks under
// execution scenario s_l (a partition of the m cores).
//
// mu[i][c-1] is the per-task worst-case workload table µ_i[c] for
// c = 1..m; scenario lists the parts of the partition.
//
// Variables: w_i^c, indexed i·m + (c-1), true when task i contributes its
// µ_i[c] to the scenario.
//
// Constraints, following the paper:
//
//	(1) Σ_{i,c} w_i^c = |s_l|          (as many tasks as parts)
//	(2) ∀i: Σ_c w_i^c ≤ 1              (a task used at most once)
//	(3) ∀c ∈ s_l: Σ_i w_i^c ≥ 1        (every part size represented)
//	(4) Σ_{i,c} c·w_i^c = m            (all m cores accounted for)
//
// When there are fewer tasks than parts the printed encoding is
// infeasible; RhoProblem pads the instance with zero-workload dummy tasks
// (DESIGN.md "paper errata handled"), which never changes the optimum
// when enough real tasks exist.
//
// Note a second, more subtle property of the printed encoding: for m ≥ 6
// a scenario such as {2,2,2} admits solutions whose core counts form a
// different partition (e.g. {3,2,1}), because constraint (3) constrains
// only the part sizes that occur in s_l. The optimum per scenario can
// therefore exceed the strict "assign tasks to exactly these parts"
// value, but the maximum over all scenarios — the only quantity the
// analysis uses (Equation (8)) — is unchanged, because every leaked
// solution is the strict solution of its own partition.
// TestRhoScenarioLeak pins this behaviour.
func RhoProblem(mu [][]int64, m int, scenario []int) *Problem {
	nReal := len(mu)
	need := len(scenario)
	n := nReal
	if n < need {
		n = need // pad with dummy zero-workload tasks
	}
	idx := func(i, c int) int { return i*m + (c - 1) }
	p := &Problem{NumVars: n * m, Objective: make([]int64, n*m)}
	for i := 0; i < nReal; i++ {
		for c := 1; c <= m; c++ {
			p.Objective[idx(i, c)] = mu[i][c-1]
		}
	}

	count := Constraint{Name: "task-count", Sense: EQ, RHS: int64(need)}
	cores := Constraint{Name: "core-count", Sense: EQ, RHS: int64(m)}
	for i := 0; i < n; i++ {
		once := Constraint{Name: fmt.Sprintf("once-%d", i), Sense: LE, RHS: 1}
		for c := 1; c <= m; c++ {
			v := idx(i, c)
			count.Terms = append(count.Terms, Term{Var: v, Coeff: 1})
			cores.Terms = append(cores.Terms, Term{Var: v, Coeff: int64(c)})
			once.Terms = append(once.Terms, Term{Var: v, Coeff: 1})
		}
		p.Constraints = append(p.Constraints, once)
	}
	p.Constraints = append(p.Constraints, count, cores)

	seen := map[int]bool{}
	for _, c := range scenario {
		if seen[c] {
			continue
		}
		seen[c] = true
		cover := Constraint{Name: fmt.Sprintf("cover-%d", c), Sense: GE, RHS: 1}
		for i := 0; i < n; i++ {
			cover.Terms = append(cover.Terms, Term{Var: idx(i, c), Coeff: 1})
		}
		p.Constraints = append(p.Constraints, cover)
	}
	return p
}

// SolveRho solves the ρ encoding for one scenario and returns the
// optimum, or 0 if the padded encoding is still infeasible (it cannot be
// for a valid partition of m).
func SolveRho(mu [][]int64, m int, scenario []int) int64 {
	sol := RhoProblem(mu, m, scenario).Solve()
	if !sol.Feasible {
		return 0
	}
	return sol.Value
}

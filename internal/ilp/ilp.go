// Package ilp provides an exact 0-1 integer linear program solver and the
// two ILP encodings of Serrano et al. (DATE 2016): the per-task worst-case
// workload µ_i[c] (Section V-A2) and the per-scenario overall workload
// ρ_k[s_l] (Section V-B).
//
// The paper solved these with IBM ILOG CPLEX; this package replaces it
// with a self-contained branch-and-bound over binary variables with
// activity-based constraint propagation. It is exact (tests cross-check
// it against brute force and against the combinatorial solvers in
// internal/clique and internal/matching) but deliberately simple — the
// production path of the analysis uses the combinatorial solvers, and
// this one exists for paper fidelity and for the ablation benchmarks.
package ilp

import (
	"fmt"
	"math"
)

// Sense is the comparison direction of a constraint.
type Sense int

// Constraint senses.
const (
	LE Sense = iota // Σ a_j x_j ≤ rhs
	GE              // Σ a_j x_j ≥ rhs
	EQ              // Σ a_j x_j = rhs
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return fmt.Sprintf("Sense(%d)", int(s))
}

// Term is one coefficient-variable product.
type Term struct {
	Var   int
	Coeff int64
}

// Constraint is a linear constraint over binary variables.
type Constraint struct {
	Name  string
	Terms []Term
	Sense Sense
	RHS   int64
}

// Problem is a maximization 0-1 ILP.
type Problem struct {
	NumVars     int
	Objective   []int64 // length NumVars; maximize Σ Objective[j]·x[j]
	Constraints []Constraint
}

// Solution is the result of Solve.
type Solution struct {
	Feasible bool
	Value    int64
	X        []bool
	Nodes    int64 // branch-and-bound nodes explored
}

// Validate reports structural errors: missing objective entries or
// out-of-range variable indices.
func (p *Problem) Validate() error {
	if len(p.Objective) != p.NumVars {
		return fmt.Errorf("ilp: objective has %d entries for %d vars", len(p.Objective), p.NumVars)
	}
	for ci, c := range p.Constraints {
		for _, t := range c.Terms {
			if t.Var < 0 || t.Var >= p.NumVars {
				return fmt.Errorf("ilp: constraint %d (%s) references var %d out of range",
					ci, c.Name, t.Var)
			}
		}
	}
	return nil
}

// DefaultNodeLimit bounds the search so that a pathological instance
// fails loudly instead of hanging. The paper-sized instances explored in
// this repository stay far below it.
const DefaultNodeLimit = 50_000_000

// Solve runs branch and bound to optimality with the default node limit.
// It panics if the problem fails Validate, mirroring the programming
// error. It returns Feasible == false for infeasible problems.
func (p *Problem) Solve() Solution {
	s, err := p.SolveWithLimit(DefaultNodeLimit)
	if err != nil {
		panic(err)
	}
	return s
}

// SolveWithLimit is Solve with an explicit search-node budget. It returns
// an error if the budget is exhausted before optimality is proven.
func (p *Problem) SolveWithLimit(maxNodes int64) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	s := &solver{p: p, maxNodes: maxNodes}
	return s.run()
}

type solver struct {
	p        *Problem
	maxNodes int64

	assign   []int8 // -1 unknown, 0, 1
	nodes    int64
	bestVal  int64
	bestSet  bool
	bestX    []bool
	order    []int // variable branching order (|objective| descending)
	overflow bool
}

func (s *solver) run() (Solution, error) {
	n := s.p.NumVars
	s.assign = make([]int8, n)
	for i := range s.assign {
		s.assign[i] = -1
	}
	s.order = make([]int, n)
	for i := range s.order {
		s.order[i] = i
	}
	// Branch on high-|objective| variables first; stable order keeps the
	// search deterministic.
	obj := s.p.Objective
	abs := func(x int64) int64 {
		if x < 0 {
			return -x
		}
		return x
	}
	sortByKey(s.order, func(v int) int64 { return -abs(obj[v]) })

	s.branch()
	if s.overflow {
		return Solution{}, fmt.Errorf("ilp: node limit %d exhausted", s.maxNodes)
	}
	if !s.bestSet {
		return Solution{Feasible: false, Nodes: s.nodes}, nil
	}
	return Solution{Feasible: true, Value: s.bestVal, X: s.bestX, Nodes: s.nodes}, nil
}

// sortByKey sorts ints by an int64 key, stably, without reflection.
func sortByKey(a []int, key func(int) int64) {
	// Insertion sort: n is small (hundreds at most) and this preserves
	// determinism with zero allocation.
	for i := 1; i < len(a); i++ {
		v := a[i]
		k := key(v)
		j := i - 1
		for j >= 0 && key(a[j]) > k {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// propagate applies activity-based inference until fixpoint. It returns
// false on infeasibility and appends every variable it fixes to trail.
func (s *solver) propagate(trail *[]int) bool {
	changed := true
	for changed {
		changed = false
		for ci := range s.p.Constraints {
			c := &s.p.Constraints[ci]
			var minAct, maxAct int64
			for _, t := range c.Terms {
				switch s.assign[t.Var] {
				case 1:
					minAct += t.Coeff
					maxAct += t.Coeff
				case -1:
					if t.Coeff > 0 {
						maxAct += t.Coeff
					} else {
						minAct += t.Coeff
					}
				}
			}
			needLE := c.Sense == LE || c.Sense == EQ
			needGE := c.Sense == GE || c.Sense == EQ
			if needLE && minAct > c.RHS {
				return false
			}
			if needGE && maxAct < c.RHS {
				return false
			}
			for _, t := range c.Terms {
				if s.assign[t.Var] != -1 {
					continue
				}
				fixed := int8(-1)
				if needLE {
					if t.Coeff > 0 && minAct+t.Coeff > c.RHS {
						fixed = 0 // setting it to 1 would violate ≤
					} else if t.Coeff < 0 && minAct-t.Coeff > c.RHS {
						fixed = 1 // setting it to 0 would violate ≤
					}
				}
				if needGE {
					if t.Coeff > 0 && maxAct-t.Coeff < c.RHS {
						if fixed == 0 {
							return false
						}
						fixed = 1 // must take its positive contribution
					} else if t.Coeff < 0 && maxAct+t.Coeff < c.RHS {
						if fixed == 1 {
							return false
						}
						fixed = 0
					}
				}
				if fixed != -1 {
					s.assign[t.Var] = fixed
					*trail = append(*trail, t.Var)
					changed = true
					if fixed == 1 {
						minAct += t.Coeff
						maxAct += t.Coeff
					} else {
						if t.Coeff > 0 {
							maxAct -= t.Coeff
						} else {
							minAct -= t.Coeff
						}
					}
					if needLE && minAct > c.RHS {
						return false
					}
					if needGE && maxAct < c.RHS {
						return false
					}
				}
			}
		}
	}
	return true
}

// objBound returns the objective value of the current partial assignment
// plus the best possible contribution of the unassigned variables.
func (s *solver) objBound() (current, bound int64) {
	for j, o := range s.p.Objective {
		switch s.assign[j] {
		case 1:
			current += o
			bound += o
		case -1:
			if o > 0 {
				bound += o
			}
		}
	}
	return current, bound
}

func (s *solver) branch() {
	if s.overflow {
		return
	}
	s.nodes++
	if s.nodes > s.maxNodes {
		s.overflow = true
		return
	}
	var trail []int
	if !s.propagate(&trail) {
		s.undo(trail)
		return
	}
	current, bound := s.objBound()
	if s.bestSet && bound <= s.bestVal {
		s.undo(trail)
		return
	}
	// Find the first unassigned variable in branching order.
	v := -1
	for _, j := range s.order {
		if s.assign[j] == -1 {
			v = j
			break
		}
	}
	if v == -1 {
		// Complete assignment; propagate already verified feasibility of
		// bounds, but EQ constraints need an exact check.
		if s.feasibleComplete() && (!s.bestSet || current > s.bestVal) {
			s.bestSet = true
			s.bestVal = current
			s.bestX = make([]bool, s.p.NumVars)
			for j, a := range s.assign {
				s.bestX[j] = a == 1
			}
		}
		s.undo(trail)
		return
	}
	// Try the objective-improving value first.
	first := int8(1)
	if s.p.Objective[v] < 0 {
		first = 0
	}
	for _, val := range [2]int8{first, 1 - first} {
		s.assign[v] = val
		s.branch()
		if s.overflow {
			break
		}
	}
	s.assign[v] = -1
	s.undo(trail)
}

func (s *solver) undo(trail []int) {
	for _, v := range trail {
		s.assign[v] = -1
	}
}

// feasibleComplete evaluates every constraint exactly on a complete
// assignment.
func (s *solver) feasibleComplete() bool {
	for _, c := range s.p.Constraints {
		var act int64
		for _, t := range c.Terms {
			if s.assign[t.Var] == 1 {
				act += t.Coeff
			}
		}
		switch c.Sense {
		case LE:
			if act > c.RHS {
				return false
			}
		case GE:
			if act < c.RHS {
				return false
			}
		case EQ:
			if act != c.RHS {
				return false
			}
		}
	}
	return true
}

// maxInt64 guards against accidental overflow in tests.
const maxInt64 = math.MaxInt64

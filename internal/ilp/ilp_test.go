package ilp

import (
	"math/rand"
	"testing"
)

// bruteSolve enumerates all assignments.
func bruteSolve(p *Problem) Solution {
	best := Solution{Feasible: false}
	n := p.NumVars
	for mask := 0; mask < 1<<uint(n); mask++ {
		ok := true
		for _, c := range p.Constraints {
			var act int64
			for _, t := range c.Terms {
				if mask&(1<<uint(t.Var)) != 0 {
					act += t.Coeff
				}
			}
			switch c.Sense {
			case LE:
				ok = ok && act <= c.RHS
			case GE:
				ok = ok && act >= c.RHS
			case EQ:
				ok = ok && act == c.RHS
			}
			if !ok {
				break
			}
		}
		if !ok {
			continue
		}
		var val int64
		for j := 0; j < n; j++ {
			if mask&(1<<uint(j)) != 0 {
				val += p.Objective[j]
			}
		}
		if !best.Feasible || val > best.Value {
			x := make([]bool, n)
			for j := 0; j < n; j++ {
				x[j] = mask&(1<<uint(j)) != 0
			}
			best = Solution{Feasible: true, Value: val, X: x}
		}
	}
	return best
}

func randProblem(rng *rand.Rand, n int) *Problem {
	p := &Problem{NumVars: n, Objective: make([]int64, n)}
	for j := range p.Objective {
		p.Objective[j] = int64(rng.Intn(41) - 10)
	}
	nc := 1 + rng.Intn(5)
	for i := 0; i < nc; i++ {
		c := Constraint{Sense: Sense(rng.Intn(3))}
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.6 {
				c.Terms = append(c.Terms, Term{Var: j, Coeff: int64(rng.Intn(9) - 4)})
			}
		}
		c.RHS = int64(rng.Intn(11) - 5)
		if len(c.Terms) == 0 {
			continue
		}
		p.Constraints = append(p.Constraints, c)
	}
	return p
}

func TestSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 400; trial++ {
		p := randProblem(rng, 1+rng.Intn(11))
		got := p.Solve()
		want := bruteSolve(p)
		if got.Feasible != want.Feasible {
			t.Fatalf("trial %d: feasible %v, want %v", trial, got.Feasible, want.Feasible)
		}
		if got.Feasible && got.Value != want.Value {
			t.Fatalf("trial %d: value %d, want %d", trial, got.Value, want.Value)
		}
		if got.Feasible {
			// The returned X must actually achieve the value feasibly.
			var val int64
			for j, set := range got.X {
				if set {
					val += p.Objective[j]
				}
			}
			if val != got.Value {
				t.Fatalf("trial %d: X sums to %d, reported %d", trial, val, got.Value)
			}
		}
	}
}

func TestUnconstrainedTakesPositives(t *testing.T) {
	p := &Problem{NumVars: 4, Objective: []int64{3, -2, 0, 7}}
	sol := p.Solve()
	if !sol.Feasible || sol.Value != 10 {
		t.Fatalf("got %+v, want value 10", sol)
	}
	if !sol.X[0] || sol.X[1] || !sol.X[3] {
		t.Fatalf("X = %v", sol.X)
	}
}

func TestInfeasible(t *testing.T) {
	p := &Problem{
		NumVars:   2,
		Objective: []int64{1, 1},
		Constraints: []Constraint{
			{Terms: []Term{{0, 1}, {1, 1}}, Sense: GE, RHS: 3},
		},
	}
	if sol := p.Solve(); sol.Feasible {
		t.Fatalf("infeasible problem reported feasible: %+v", sol)
	}
}

func TestValidateErrors(t *testing.T) {
	p := &Problem{NumVars: 2, Objective: []int64{1}}
	if err := p.Validate(); err == nil {
		t.Error("short objective accepted")
	}
	p = &Problem{NumVars: 1, Objective: []int64{1},
		Constraints: []Constraint{{Terms: []Term{{Var: 3, Coeff: 1}}}}}
	if err := p.Validate(); err == nil {
		t.Error("out-of-range var accepted")
	}
}

func TestNodeLimit(t *testing.T) {
	// A problem large enough that one node is not sufficient.
	rng := rand.New(rand.NewSource(9))
	p := randProblem(rng, 12)
	if _, err := p.SolveWithLimit(1); err == nil {
		t.Error("expected node-limit error")
	}
}

func TestSenseString(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Error("Sense strings wrong")
	}
	if Sense(9).String() == "" {
		t.Error("unknown sense must still render")
	}
}

package ilp

import (
	"math/rand"
	"testing"

	"repro/internal/clique"
	"repro/internal/dag"
	"repro/internal/fixture"
	"repro/internal/matching"
	"repro/internal/partition"
)

// TestMuTableI reproduces Table I of the paper through the ILP path.
func TestMuTableI(t *testing.T) {
	want := fixture.TableI()
	for i, g := range fixture.LowerPriorityGraphs() {
		isPar := g.IsParallelMatrix()
		for c := 1; c <= fixture.M; c++ {
			got := SolveMu(g.WCETs(), isPar, c)
			if got != want[i][c-1] {
				t.Errorf("ILP µ%d[%d] = %d, want %d", i+1, c, got, want[i][c-1])
			}
		}
	}
}

// TestMuMatchesClique cross-checks the ILP encoding against the
// combinatorial solver on random DAG parallelism structures.
func TestMuMatchesClique(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		g := randomDAG(rng, 2+rng.Intn(9))
		isPar := g.IsParallelMatrix()
		par := g.Parallel()
		w := g.WCETs()
		for c := 1; c <= 4 && c <= g.N(); c++ {
			gotILP := SolveMu(w, isPar, c)
			gotCombi, _ := clique.MaxWeightKSet(w, par, c)
			if gotILP != gotCombi {
				t.Fatalf("trial %d c=%d: ILP %d != clique %d\n%s",
					trial, c, gotILP, gotCombi, g.DOT("g"))
			}
		}
	}
}

// TestPaperConstraintErratum documents why constraint (2) of Section V-A2
// cannot be the printed "= c": with the verbatim right-hand side the
// encoding is infeasible for c = 1 on any graph, and infeasible for every
// c with c(c-1)/2 ≠ c (i.e. c ≠ 3) whenever a parallel c-set exists.
func TestPaperConstraintErratum(t *testing.T) {
	g := fixture.Tau3() // star: leaves 2,3,4,5 mutually parallel
	isPar := g.IsParallelMatrix()
	w := g.WCETs()

	// Verbatim c=1: demands one selected parallel pair with one selected
	// node — infeasible.
	if sol := MuProblemVerbatim(w, isPar, 1).Solve(); sol.Feasible {
		t.Errorf("verbatim c=1 unexpectedly feasible: %+v", sol)
	}
	// Verbatim c=3: 3 selected nodes induce 3 pairs = c, so it happens to
	// agree with the corrected encoding.
	v3 := MuProblemVerbatim(w, isPar, 3).Solve()
	c3 := MuProblem(w, isPar, 3).Solve()
	if !v3.Feasible || !c3.Feasible || v3.Value != c3.Value {
		t.Errorf("c=3: verbatim %+v vs corrected %+v should agree", v3, c3)
	}
	// Verbatim c=4: demands 4 parallel pairs among C(4,2)=6 — infeasible
	// for mutually-parallel selections.
	if sol := MuProblemVerbatim(w, isPar, 4).Solve(); sol.Feasible {
		t.Errorf("verbatim c=4 unexpectedly feasible: %+v", sol)
	}
	// Corrected c=4 reproduces µ3[4] = 11.
	if sol := MuProblem(w, isPar, 4).Solve(); !sol.Feasible || sol.Value != 11 {
		t.Errorf("corrected c=4: %+v, want 11", sol)
	}
}

// TestRhoTableIII reproduces Table III of the paper through the ILP path:
// the per-scenario overall worst-case workloads of the Figure 1 tasks.
func TestRhoTableIII(t *testing.T) {
	mu := muRows(fixture.TableI())
	want := fixture.TableIII()
	for _, s := range partition.All(fixture.M) {
		got := SolveRho(mu, fixture.M, s)
		if got != want[s.String()] {
			t.Errorf("ρ[%s] = %d, want %d", s, got, want[s.String()])
		}
	}
}

func muRows(tbl [4][4]int64) [][]int64 {
	mu := make([][]int64, len(tbl))
	for i := range tbl {
		mu[i] = tbl[i][:]
	}
	return mu
}

// TestRhoMatchesMatchingSmallM: for m ≤ 5 the printed scenario encoding
// cannot leak into other partitions, so the ILP and the strict
// assignment solver agree on every scenario.
func TestRhoMatchesMatchingSmallM(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		m := 2 + rng.Intn(4) // 2..5
		n := 1 + rng.Intn(4)
		mu := randomMuTable(rng, n, m)
		for _, s := range partition.All(m) {
			gotILP := SolveRho(mu, m, s)
			gotMatch := strictRho(mu, s)
			if gotILP != gotMatch {
				t.Fatalf("trial %d m=%d s=%s: ILP %d != matching %d (mu=%v)",
					trial, m, s, gotILP, gotMatch, mu)
			}
		}
	}
}

// strictRho assigns distinct tasks to exactly the parts of the scenario
// via the Hungarian solver, parts short of tasks padded at zero.
func strictRho(mu [][]int64, scenario []int) int64 {
	w := make([][]int64, len(scenario))
	for p, size := range scenario {
		w[p] = make([]int64, len(mu))
		for i := range mu {
			w[p][i] = mu[i][size-1]
		}
	}
	v, _ := matching.MaxWeightAssignment(w)
	return v
}

// TestRhoScenarioLeak pins the documented looseness of the printed
// encoding for m ≥ 6: scenario {2,2,2} admits the core profile {3,2,1},
// so its ILP value can exceed the strict per-scenario value — while the
// maximum over all scenarios (the only quantity Equation (8) uses) is
// identical.
func TestRhoScenarioLeak(t *testing.T) {
	// One task dominant on 3 cores, one on 2, one on 1; µ chosen so the
	// strict {2,2,2} assignment is clearly worse.
	mu := [][]int64{
		{1, 2, 90, 90, 90, 90},
		{1, 50, 50, 50, 50, 50},
		{40, 41, 41, 41, 41, 41},
	}
	m := 6
	leaky := []int{2, 2, 2}
	gotILP := SolveRho(mu, m, leaky)
	strict := strictRho(mu, leaky)
	if gotILP <= strict {
		t.Fatalf("expected leak: ILP %d should exceed strict %d", gotILP, strict)
	}
	// The leaked profile {3,2,1} must itself be a scenario whose strict
	// value equals the leaked optimum.
	if want := strictRho(mu, []int{3, 2, 1}); gotILP != want {
		t.Fatalf("leaked value %d != strict ρ[{3,2,1}] %d", gotILP, want)
	}
	// And the analysis-level quantity, the max over scenarios, agrees
	// between the two solvers.
	var maxILP, maxStrict int64
	for _, s := range partition.All(m) {
		if v := SolveRho(mu, m, s); v > maxILP {
			maxILP = v
		}
		if v := strictRho(mu, s); v > maxStrict {
			maxStrict = v
		}
	}
	if maxILP != maxStrict {
		t.Fatalf("Δ disagreement: ILP %d vs strict %d", maxILP, maxStrict)
	}
}

// TestRhoFewerTasksThanParts exercises the dummy-task padding.
func TestRhoFewerTasksThanParts(t *testing.T) {
	mu := [][]int64{{4, 7, 0, 0}} // a single τ2-like task
	got := SolveRho(mu, 4, []int{1, 1, 1, 1})
	if got != 4 {
		t.Errorf("ρ[{1,1,1,1}] with one task = %d, want 4", got)
	}
	got = SolveRho(mu, 4, []int{2, 1, 1})
	if got != 7 {
		t.Errorf("ρ[{2,1,1}] with one task = %d, want 7", got)
	}
}

func randomMuTable(rng *rand.Rand, n, m int) [][]int64 {
	mu := make([][]int64, n)
	for i := range mu {
		mu[i] = make([]int64, m)
		width := 1 + rng.Intn(m)
		for c := 0; c < width; c++ {
			mu[i][c] = int64(1 + rng.Intn(100))
		}
	}
	return mu
}

func randomDAG(rng *rand.Rand, n int) *dag.Graph {
	var b dag.Builder
	for i := 0; i < n; i++ {
		b.AddNode(int64(1 + rng.Intn(100)))
	}
	for v := 1; v < n; v++ {
		p := rng.Intn(v)
		b.AddEdge(p, v)
		for u := 0; u < v; u++ {
			if u != p && rng.Float64() < 0.2 {
				b.AddEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}

func BenchmarkMuILPFigure1(b *testing.B) {
	graphs := fixture.LowerPriorityGraphs()
	for i := 0; i < b.N; i++ {
		for _, g := range graphs {
			isPar := g.IsParallelMatrix()
			for c := 1; c <= fixture.M; c++ {
				SolveMu(g.WCETs(), isPar, c)
			}
		}
	}
}

func BenchmarkRhoILPFigure1(b *testing.B) {
	mu := muRows(fixture.TableI())
	scenarios := partition.All(fixture.M)
	for i := 0; i < b.N; i++ {
		for _, s := range scenarios {
			SolveRho(mu, fixture.M, s)
		}
	}
}
